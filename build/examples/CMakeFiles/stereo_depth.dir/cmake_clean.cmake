file(REMOVE_RECURSE
  "CMakeFiles/stereo_depth.dir/stereo_depth.cpp.o"
  "CMakeFiles/stereo_depth.dir/stereo_depth.cpp.o.d"
  "stereo_depth"
  "stereo_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stereo_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
