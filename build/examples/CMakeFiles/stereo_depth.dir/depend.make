# Empty dependencies file for stereo_depth.
# This may be replaced when dependencies are built.
