# Empty dependencies file for optical_flow.
# This may be replaced when dependencies are built.
