
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/optical_flow.cpp" "examples/CMakeFiles/optical_flow.dir/optical_flow.cpp.o" "gcc" "examples/CMakeFiles/optical_flow.dir/optical_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/vip_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/vip_system.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/vip_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vip_model.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/vip_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/vip_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/vip_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vip_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vip_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
