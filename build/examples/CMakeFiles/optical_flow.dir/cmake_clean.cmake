file(REMOVE_RECURSE
  "CMakeFiles/optical_flow.dir/optical_flow.cpp.o"
  "CMakeFiles/optical_flow.dir/optical_flow.cpp.o.d"
  "optical_flow"
  "optical_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optical_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
