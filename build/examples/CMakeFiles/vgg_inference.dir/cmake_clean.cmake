file(REMOVE_RECURSE
  "CMakeFiles/vgg_inference.dir/vgg_inference.cpp.o"
  "CMakeFiles/vgg_inference.dir/vgg_inference.cpp.o.d"
  "vgg_inference"
  "vgg_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgg_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
