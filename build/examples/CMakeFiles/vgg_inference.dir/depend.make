# Empty dependencies file for vgg_inference.
# This may be replaced when dependencies are built.
