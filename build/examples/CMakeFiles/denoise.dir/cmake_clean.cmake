file(REMOVE_RECURSE
  "CMakeFiles/denoise.dir/denoise.cpp.o"
  "CMakeFiles/denoise.dir/denoise.cpp.o.d"
  "denoise"
  "denoise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denoise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
