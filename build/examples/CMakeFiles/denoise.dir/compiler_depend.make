# Empty compiler generated dependencies file for denoise.
# This may be replaced when dependencies are built.
