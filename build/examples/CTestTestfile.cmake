# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stereo_depth "/root/repo/build/examples/stereo_depth" "48" "24" "6" "2")
set_tests_properties(example_stereo_depth PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vgg_inference "/root/repo/build/examples/vgg_inference")
set_tests_properties(example_vgg_inference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_kernel "/root/repo/build/examples/custom_kernel")
set_tests_properties(example_custom_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_denoise "/root/repo/build/examples/denoise" "40" "20" "6" "2")
set_tests_properties(example_denoise PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_optical_flow "/root/repo/build/examples/optical_flow" "32" "16" "1" "2")
set_tests_properties(example_optical_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
