file(REMOVE_RECURSE
  "CMakeFiles/vip_isa.dir/assembler.cc.o"
  "CMakeFiles/vip_isa.dir/assembler.cc.o.d"
  "CMakeFiles/vip_isa.dir/builder.cc.o"
  "CMakeFiles/vip_isa.dir/builder.cc.o.d"
  "CMakeFiles/vip_isa.dir/isa.cc.o"
  "CMakeFiles/vip_isa.dir/isa.cc.o.d"
  "libvip_isa.a"
  "libvip_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
