# Empty compiler generated dependencies file for vip_isa.
# This may be replaced when dependencies are built.
