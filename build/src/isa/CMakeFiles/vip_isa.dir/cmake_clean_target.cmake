file(REMOVE_RECURSE
  "libvip_isa.a"
)
