
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/bp_kernel.cc" "src/kernels/CMakeFiles/vip_kernels.dir/bp_kernel.cc.o" "gcc" "src/kernels/CMakeFiles/vip_kernels.dir/bp_kernel.cc.o.d"
  "/root/repo/src/kernels/conv_kernel.cc" "src/kernels/CMakeFiles/vip_kernels.dir/conv_kernel.cc.o" "gcc" "src/kernels/CMakeFiles/vip_kernels.dir/conv_kernel.cc.o.d"
  "/root/repo/src/kernels/fc_kernel.cc" "src/kernels/CMakeFiles/vip_kernels.dir/fc_kernel.cc.o" "gcc" "src/kernels/CMakeFiles/vip_kernels.dir/fc_kernel.cc.o.d"
  "/root/repo/src/kernels/hier_kernel.cc" "src/kernels/CMakeFiles/vip_kernels.dir/hier_kernel.cc.o" "gcc" "src/kernels/CMakeFiles/vip_kernels.dir/hier_kernel.cc.o.d"
  "/root/repo/src/kernels/layout.cc" "src/kernels/CMakeFiles/vip_kernels.dir/layout.cc.o" "gcc" "src/kernels/CMakeFiles/vip_kernels.dir/layout.cc.o.d"
  "/root/repo/src/kernels/pool_kernel.cc" "src/kernels/CMakeFiles/vip_kernels.dir/pool_kernel.cc.o" "gcc" "src/kernels/CMakeFiles/vip_kernels.dir/pool_kernel.cc.o.d"
  "/root/repo/src/kernels/sync.cc" "src/kernels/CMakeFiles/vip_kernels.dir/sync.cc.o" "gcc" "src/kernels/CMakeFiles/vip_kernels.dir/sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/vip_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vip_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/vip_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/vip_system.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/vip_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/vip_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vip_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
