file(REMOVE_RECURSE
  "CMakeFiles/vip_kernels.dir/bp_kernel.cc.o"
  "CMakeFiles/vip_kernels.dir/bp_kernel.cc.o.d"
  "CMakeFiles/vip_kernels.dir/conv_kernel.cc.o"
  "CMakeFiles/vip_kernels.dir/conv_kernel.cc.o.d"
  "CMakeFiles/vip_kernels.dir/fc_kernel.cc.o"
  "CMakeFiles/vip_kernels.dir/fc_kernel.cc.o.d"
  "CMakeFiles/vip_kernels.dir/hier_kernel.cc.o"
  "CMakeFiles/vip_kernels.dir/hier_kernel.cc.o.d"
  "CMakeFiles/vip_kernels.dir/layout.cc.o"
  "CMakeFiles/vip_kernels.dir/layout.cc.o.d"
  "CMakeFiles/vip_kernels.dir/pool_kernel.cc.o"
  "CMakeFiles/vip_kernels.dir/pool_kernel.cc.o.d"
  "CMakeFiles/vip_kernels.dir/sync.cc.o"
  "CMakeFiles/vip_kernels.dir/sync.cc.o.d"
  "libvip_kernels.a"
  "libvip_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
