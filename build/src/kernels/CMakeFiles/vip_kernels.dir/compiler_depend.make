# Empty compiler generated dependencies file for vip_kernels.
# This may be replaced when dependencies are built.
