file(REMOVE_RECURSE
  "libvip_kernels.a"
)
