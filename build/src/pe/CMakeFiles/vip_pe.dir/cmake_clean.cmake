file(REMOVE_RECURSE
  "CMakeFiles/vip_pe.dir/arc.cc.o"
  "CMakeFiles/vip_pe.dir/arc.cc.o.d"
  "CMakeFiles/vip_pe.dir/pe.cc.o"
  "CMakeFiles/vip_pe.dir/pe.cc.o.d"
  "CMakeFiles/vip_pe.dir/scratchpad.cc.o"
  "CMakeFiles/vip_pe.dir/scratchpad.cc.o.d"
  "libvip_pe.a"
  "libvip_pe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
