# Empty compiler generated dependencies file for vip_pe.
# This may be replaced when dependencies are built.
