
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pe/arc.cc" "src/pe/CMakeFiles/vip_pe.dir/arc.cc.o" "gcc" "src/pe/CMakeFiles/vip_pe.dir/arc.cc.o.d"
  "/root/repo/src/pe/pe.cc" "src/pe/CMakeFiles/vip_pe.dir/pe.cc.o" "gcc" "src/pe/CMakeFiles/vip_pe.dir/pe.cc.o.d"
  "/root/repo/src/pe/scratchpad.cc" "src/pe/CMakeFiles/vip_pe.dir/scratchpad.cc.o" "gcc" "src/pe/CMakeFiles/vip_pe.dir/scratchpad.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vip_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/vip_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vip_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
