file(REMOVE_RECURSE
  "libvip_pe.a"
)
