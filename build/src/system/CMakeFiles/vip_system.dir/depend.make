# Empty dependencies file for vip_system.
# This may be replaced when dependencies are built.
