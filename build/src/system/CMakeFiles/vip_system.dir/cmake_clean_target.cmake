file(REMOVE_RECURSE
  "libvip_system.a"
)
