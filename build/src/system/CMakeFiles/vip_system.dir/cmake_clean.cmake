file(REMOVE_RECURSE
  "CMakeFiles/vip_system.dir/system.cc.o"
  "CMakeFiles/vip_system.dir/system.cc.o.d"
  "libvip_system.a"
  "libvip_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
