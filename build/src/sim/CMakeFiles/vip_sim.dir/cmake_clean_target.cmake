file(REMOVE_RECURSE
  "libvip_sim.a"
)
