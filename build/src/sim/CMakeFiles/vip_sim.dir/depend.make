# Empty dependencies file for vip_sim.
# This may be replaced when dependencies are built.
