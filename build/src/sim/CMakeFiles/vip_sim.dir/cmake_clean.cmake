file(REMOVE_RECURSE
  "CMakeFiles/vip_sim.dir/logging.cc.o"
  "CMakeFiles/vip_sim.dir/logging.cc.o.d"
  "CMakeFiles/vip_sim.dir/stats.cc.o"
  "CMakeFiles/vip_sim.dir/stats.cc.o.d"
  "libvip_sim.a"
  "libvip_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
