
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/addrmap.cc" "src/mem/CMakeFiles/vip_mem.dir/addrmap.cc.o" "gcc" "src/mem/CMakeFiles/vip_mem.dir/addrmap.cc.o.d"
  "/root/repo/src/mem/hmc.cc" "src/mem/CMakeFiles/vip_mem.dir/hmc.cc.o" "gcc" "src/mem/CMakeFiles/vip_mem.dir/hmc.cc.o.d"
  "/root/repo/src/mem/storage.cc" "src/mem/CMakeFiles/vip_mem.dir/storage.cc.o" "gcc" "src/mem/CMakeFiles/vip_mem.dir/storage.cc.o.d"
  "/root/repo/src/mem/vault.cc" "src/mem/CMakeFiles/vip_mem.dir/vault.cc.o" "gcc" "src/mem/CMakeFiles/vip_mem.dir/vault.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vip_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
