file(REMOVE_RECURSE
  "CMakeFiles/vip_mem.dir/addrmap.cc.o"
  "CMakeFiles/vip_mem.dir/addrmap.cc.o.d"
  "CMakeFiles/vip_mem.dir/hmc.cc.o"
  "CMakeFiles/vip_mem.dir/hmc.cc.o.d"
  "CMakeFiles/vip_mem.dir/storage.cc.o"
  "CMakeFiles/vip_mem.dir/storage.cc.o.d"
  "CMakeFiles/vip_mem.dir/vault.cc.o"
  "CMakeFiles/vip_mem.dir/vault.cc.o.d"
  "libvip_mem.a"
  "libvip_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
