# Empty compiler generated dependencies file for vip_mem.
# This may be replaced when dependencies are built.
