file(REMOVE_RECURSE
  "libvip_mem.a"
)
