
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/baselines.cc" "src/model/CMakeFiles/vip_model.dir/baselines.cc.o" "gcc" "src/model/CMakeFiles/vip_model.dir/baselines.cc.o.d"
  "/root/repo/src/model/gpu_model.cc" "src/model/CMakeFiles/vip_model.dir/gpu_model.cc.o" "gcc" "src/model/CMakeFiles/vip_model.dir/gpu_model.cc.o.d"
  "/root/repo/src/model/power.cc" "src/model/CMakeFiles/vip_model.dir/power.cc.o" "gcc" "src/model/CMakeFiles/vip_model.dir/power.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vip_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/vip_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/vip_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vip_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
