file(REMOVE_RECURSE
  "CMakeFiles/vip_model.dir/baselines.cc.o"
  "CMakeFiles/vip_model.dir/baselines.cc.o.d"
  "CMakeFiles/vip_model.dir/gpu_model.cc.o"
  "CMakeFiles/vip_model.dir/gpu_model.cc.o.d"
  "CMakeFiles/vip_model.dir/power.cc.o"
  "CMakeFiles/vip_model.dir/power.cc.o.d"
  "libvip_model.a"
  "libvip_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
