# Empty compiler generated dependencies file for vip_model.
# This may be replaced when dependencies are built.
