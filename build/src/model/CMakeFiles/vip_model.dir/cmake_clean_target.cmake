file(REMOVE_RECURSE
  "libvip_model.a"
)
