file(REMOVE_RECURSE
  "libvip_noc.a"
)
