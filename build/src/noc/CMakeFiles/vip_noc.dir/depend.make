# Empty dependencies file for vip_noc.
# This may be replaced when dependencies are built.
