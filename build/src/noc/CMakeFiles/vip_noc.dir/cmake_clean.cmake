file(REMOVE_RECURSE
  "CMakeFiles/vip_noc.dir/torus.cc.o"
  "CMakeFiles/vip_noc.dir/torus.cc.o.d"
  "libvip_noc.a"
  "libvip_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
