
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/fixed.cc" "src/workloads/CMakeFiles/vip_workloads.dir/fixed.cc.o" "gcc" "src/workloads/CMakeFiles/vip_workloads.dir/fixed.cc.o.d"
  "/root/repo/src/workloads/flow.cc" "src/workloads/CMakeFiles/vip_workloads.dir/flow.cc.o" "gcc" "src/workloads/CMakeFiles/vip_workloads.dir/flow.cc.o.d"
  "/root/repo/src/workloads/mrf.cc" "src/workloads/CMakeFiles/vip_workloads.dir/mrf.cc.o" "gcc" "src/workloads/CMakeFiles/vip_workloads.dir/mrf.cc.o.d"
  "/root/repo/src/workloads/nn.cc" "src/workloads/CMakeFiles/vip_workloads.dir/nn.cc.o" "gcc" "src/workloads/CMakeFiles/vip_workloads.dir/nn.cc.o.d"
  "/root/repo/src/workloads/stereo.cc" "src/workloads/CMakeFiles/vip_workloads.dir/stereo.cc.o" "gcc" "src/workloads/CMakeFiles/vip_workloads.dir/stereo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vip_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
