file(REMOVE_RECURSE
  "libvip_workloads.a"
)
