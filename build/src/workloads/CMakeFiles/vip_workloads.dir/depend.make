# Empty dependencies file for vip_workloads.
# This may be replaced when dependencies are built.
