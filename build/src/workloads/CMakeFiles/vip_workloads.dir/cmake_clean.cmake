file(REMOVE_RECURSE
  "CMakeFiles/vip_workloads.dir/fixed.cc.o"
  "CMakeFiles/vip_workloads.dir/fixed.cc.o.d"
  "CMakeFiles/vip_workloads.dir/flow.cc.o"
  "CMakeFiles/vip_workloads.dir/flow.cc.o.d"
  "CMakeFiles/vip_workloads.dir/mrf.cc.o"
  "CMakeFiles/vip_workloads.dir/mrf.cc.o.d"
  "CMakeFiles/vip_workloads.dir/nn.cc.o"
  "CMakeFiles/vip_workloads.dir/nn.cc.o.d"
  "CMakeFiles/vip_workloads.dir/stereo.cc.o"
  "CMakeFiles/vip_workloads.dir/stereo.cc.o.d"
  "libvip_workloads.a"
  "libvip_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
