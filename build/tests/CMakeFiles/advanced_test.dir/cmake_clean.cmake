file(REMOVE_RECURSE
  "CMakeFiles/advanced_test.dir/advanced_test.cc.o"
  "CMakeFiles/advanced_test.dir/advanced_test.cc.o.d"
  "advanced_test"
  "advanced_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
