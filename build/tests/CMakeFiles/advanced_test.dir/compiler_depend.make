# Empty compiler generated dependencies file for advanced_test.
# This may be replaced when dependencies are built.
