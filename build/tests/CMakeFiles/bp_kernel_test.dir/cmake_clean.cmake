file(REMOVE_RECURSE
  "CMakeFiles/bp_kernel_test.dir/bp_kernel_test.cc.o"
  "CMakeFiles/bp_kernel_test.dir/bp_kernel_test.cc.o.d"
  "bp_kernel_test"
  "bp_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
