file(REMOVE_RECURSE
  "CMakeFiles/nn_kernel_test.dir/nn_kernel_test.cc.o"
  "CMakeFiles/nn_kernel_test.dir/nn_kernel_test.cc.o.d"
  "nn_kernel_test"
  "nn_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
