# Empty compiler generated dependencies file for nn_kernel_test.
# This may be replaced when dependencies are built.
