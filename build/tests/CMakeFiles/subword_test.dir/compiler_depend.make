# Empty compiler generated dependencies file for subword_test.
# This may be replaced when dependencies are built.
