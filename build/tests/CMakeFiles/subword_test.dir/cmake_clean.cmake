file(REMOVE_RECURSE
  "CMakeFiles/subword_test.dir/subword_test.cc.o"
  "CMakeFiles/subword_test.dir/subword_test.cc.o.d"
  "subword_test"
  "subword_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subword_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
