# Empty dependencies file for pe_test.
# This may be replaced when dependencies are built.
