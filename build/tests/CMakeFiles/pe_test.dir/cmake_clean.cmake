file(REMOVE_RECURSE
  "CMakeFiles/pe_test.dir/pe_test.cc.o"
  "CMakeFiles/pe_test.dir/pe_test.cc.o.d"
  "pe_test"
  "pe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
