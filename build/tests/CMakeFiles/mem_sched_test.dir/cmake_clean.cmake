file(REMOVE_RECURSE
  "CMakeFiles/mem_sched_test.dir/mem_sched_test.cc.o"
  "CMakeFiles/mem_sched_test.dir/mem_sched_test.cc.o.d"
  "mem_sched_test"
  "mem_sched_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
