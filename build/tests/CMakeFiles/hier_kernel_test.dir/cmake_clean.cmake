file(REMOVE_RECURSE
  "CMakeFiles/hier_kernel_test.dir/hier_kernel_test.cc.o"
  "CMakeFiles/hier_kernel_test.dir/hier_kernel_test.cc.o.d"
  "hier_kernel_test"
  "hier_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hier_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
