# Empty dependencies file for hier_kernel_test.
# This may be replaced when dependencies are built.
