file(REMOVE_RECURSE
  "CMakeFiles/asm_corpus_test.dir/asm_corpus_test.cc.o"
  "CMakeFiles/asm_corpus_test.dir/asm_corpus_test.cc.o.d"
  "asm_corpus_test"
  "asm_corpus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asm_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
