# Empty dependencies file for asm_corpus_test.
# This may be replaced when dependencies are built.
