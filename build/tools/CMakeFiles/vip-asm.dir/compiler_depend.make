# Empty compiler generated dependencies file for vip-asm.
# This may be replaced when dependencies are built.
