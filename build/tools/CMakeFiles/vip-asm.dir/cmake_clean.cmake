file(REMOVE_RECURSE
  "CMakeFiles/vip-asm.dir/vip-asm.cc.o"
  "CMakeFiles/vip-asm.dir/vip-asm.cc.o.d"
  "vip-asm"
  "vip-asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip-asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
