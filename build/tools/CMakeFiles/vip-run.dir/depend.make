# Empty dependencies file for vip-run.
# This may be replaced when dependencies are built.
