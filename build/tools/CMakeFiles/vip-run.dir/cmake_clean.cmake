file(REMOVE_RECURSE
  "CMakeFiles/vip-run.dir/vip-run.cc.o"
  "CMakeFiles/vip-run.dir/vip-run.cc.o.d"
  "vip-run"
  "vip-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
