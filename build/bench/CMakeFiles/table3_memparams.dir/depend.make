# Empty dependencies file for table3_memparams.
# This may be replaced when dependencies are built.
