file(REMOVE_RECURSE
  "CMakeFiles/table3_memparams.dir/table3_memparams.cc.o"
  "CMakeFiles/table3_memparams.dir/table3_memparams.cc.o.d"
  "table3_memparams"
  "table3_memparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_memparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
