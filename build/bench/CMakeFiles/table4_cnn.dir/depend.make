# Empty dependencies file for table4_cnn.
# This may be replaced when dependencies are built.
