file(REMOVE_RECURSE
  "CMakeFiles/table4_cnn.dir/table4_cnn.cc.o"
  "CMakeFiles/table4_cnn.dir/table4_cnn.cc.o.d"
  "table4_cnn"
  "table4_cnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
