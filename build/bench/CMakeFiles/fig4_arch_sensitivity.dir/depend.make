# Empty dependencies file for fig4_arch_sensitivity.
# This may be replaced when dependencies are built.
