file(REMOVE_RECURSE
  "CMakeFiles/table4_mrf.dir/table4_mrf.cc.o"
  "CMakeFiles/table4_mrf.dir/table4_mrf.cc.o.d"
  "table4_mrf"
  "table4_mrf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_mrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
