# Empty compiler generated dependencies file for table4_mrf.
# This may be replaced when dependencies are built.
