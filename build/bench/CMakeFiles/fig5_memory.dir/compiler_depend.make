# Empty compiler generated dependencies file for fig5_memory.
# This may be replaced when dependencies are built.
