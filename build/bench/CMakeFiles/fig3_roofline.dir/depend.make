# Empty dependencies file for fig3_roofline.
# This may be replaced when dependencies are built.
