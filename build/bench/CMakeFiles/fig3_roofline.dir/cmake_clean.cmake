file(REMOVE_RECURSE
  "CMakeFiles/fig3_roofline.dir/fig3_roofline.cc.o"
  "CMakeFiles/fig3_roofline.dir/fig3_roofline.cc.o.d"
  "fig3_roofline"
  "fig3_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
