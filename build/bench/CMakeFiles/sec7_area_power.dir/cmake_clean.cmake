file(REMOVE_RECURSE
  "CMakeFiles/sec7_area_power.dir/sec7_area_power.cc.o"
  "CMakeFiles/sec7_area_power.dir/sec7_area_power.cc.o.d"
  "sec7_area_power"
  "sec7_area_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_area_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
