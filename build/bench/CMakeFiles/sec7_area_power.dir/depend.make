# Empty dependencies file for sec7_area_power.
# This may be replaced when dependencies are built.
