/**
 * @file
 * VIP assembly generators for convolutional layers (Sec. IV-B).
 *
 * The paper's template: keep a group of filters resident in the
 * scratchpad; keep a (k+1)-column ring of 1 x k x z input columns,
 * prefetching the next column while the resident filters are applied
 * to the current k x k x z window. A window column is applied with one
 * m.v.mul.add whose matrix holds each filter's kx-th column
 * (Eq. 5a/5b of the paper's vectorized decomposition); the per-column
 * partials combine with v.v.add (Eq. 5c); bias and ReLU fuse into the
 * same pass (Eq. 5d). Layers whose filters exceed the 4 KiB scratchpad
 * in z are sharded: each shard emits raw partial feature maps, and a
 * separate accumulation pass combines shards, adds bias, and applies
 * ReLU — with communication limited to that single pass, as in the
 * paper.
 *
 * Only k = 3 is generated (every VGG convolution); the ring and window
 * addressing use the k+1 = 4 modulus.
 */

#ifndef VIP_KERNELS_CONV_KERNEL_HH
#define VIP_KERNELS_CONV_KERNEL_HH

#include <vector>

#include "isa/isa.hh"
#include "kernels/layout.hh"
#include "workloads/nn.hh"

namespace vip {

/** One PE's slice of a convolution pass. */
struct ConvJob
{
    const FmapDramLayout *in = nullptr;   ///< input shard's layout
    const FmapDramLayout *out = nullptr;  ///< output (or partial) layout

    Addr filterBlob = 0;  ///< packFilters() blobs, one per group,
                          ///< packed back to back
    Addr biasBlob = 0;    ///< groups x F bias values (finalize mode)

    unsigned zShard = 0;      ///< input channels this shard covers
    unsigned zOffset = 0;     ///< first input channel of the shard
    unsigned filters = 0;     ///< F: filters resident per group
    unsigned filterOffset = 0; ///< first output channel of group 0
    unsigned groups = 1;      ///< filter groups cycled in-program

    unsigned rowBegin = 0;   ///< output rows [rowBegin, rowEnd)
    unsigned rowEnd = 0;
    unsigned width = 0;      ///< output row width (full tile width)

    /** true: add bias + ReLU and write the final output (single-shard
     *  layers); false: write raw partials for the accumulation pass. */
    bool finalize = true;
};

/**
 * Pack one filter group for the scratchpad-resident m.v layout:
 * kx-major matrices of F rows, each row ky-major then channel. Returns
 * the blob (upload at ConvJob::filterBlob).
 *
 * @param filters  full [out][in][ky][kx] tensor of the layer
 */
std::vector<Fx16> packFilters(const std::vector<Fx16> &filters,
                              unsigned in_channels, unsigned kernel,
                              unsigned filter_offset, unsigned num_filters,
                              unsigned z_offset, unsigned z_shard);

/** Generate one conv pass program (ends in halt). */
std::vector<Instruction> genConvPass(const ConvJob &job);

/** One PE's slice of the shard-accumulation pass. */
struct ConvAccumJob
{
    std::vector<const FmapDramLayout *> partials; ///< one per shard
    const FmapDramLayout *out = nullptr;
    Addr biasRowBlob = 0;   ///< repeating per-channel bias, chunkElems long
    unsigned rowBegin = 0;
    unsigned rowEnd = 0;
    unsigned chunkElems = 0;   ///< elements per vector chunk
    unsigned chunksPerRow = 0; ///< chunkElems * chunksPerRow = row elems
};

/**
 * Build the repeating bias blob for the accumulation pass: the
 * per-channel bias tiled to @p chunk_elems (chunk_elems must be a
 * multiple of the channel count).
 */
std::vector<Fx16> makeBiasRow(const std::vector<Fx16> &bias,
                              unsigned chunk_elems);

/** Generate the accumulation pass program (ends in halt). */
std::vector<Instruction> genConvAccum(const ConvAccumJob &job);

/** Filters the scratchpad can hold for a shard of @p z_shard channels. */
unsigned convFiltersResident(unsigned z_shard, unsigned kernel = 3);

} // namespace vip

#endif // VIP_KERNELS_CONV_KERNEL_HH
