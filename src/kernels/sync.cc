#include "kernels/sync.hh"

namespace vip {

void
emitBarrier(AsmBuilder &b, Addr flag_base, unsigned pe_index,
            unsigned num_pes, const SyncRegs &regs)
{
    if (num_pes <= 1)
        return;

    // Arrive: bump the generation and publish it after a fence so all
    // of this PE's prior stores are visible to whoever sees the flag.
    b.addImm(regs.gen, regs.gen, 1);
    b.memfence();
    b.movImm(regs.addr, static_cast<std::int64_t>(flag_base + pe_index * 8));
    b.stReg(regs.gen, regs.addr, ElemWidth::W64);

    if (pe_index == 0) {
        // Leader: wait for every arrival, then publish the release.
        for (unsigned j = 1; j < num_pes; ++j) {
            b.movImm(regs.addr,
                     static_cast<std::int64_t>(flag_base + j * 8));
            const auto spin = b.newLabel();
            b.bind(spin);
            b.ldReg(regs.val, regs.addr, ElemWidth::W64);
            b.branch(BranchCond::Lt, regs.val, regs.gen, spin);
        }
        b.movImm(regs.addr,
                 static_cast<std::int64_t>(flag_base + num_pes * 8));
        b.stReg(regs.gen, regs.addr, ElemWidth::W64);
    } else {
        b.movImm(regs.addr,
                 static_cast<std::int64_t>(flag_base + num_pes * 8));
        const auto spin = b.newLabel();
        b.bind(spin);
        b.ldReg(regs.val, regs.addr, ElemWidth::W64);
        b.branch(BranchCond::Lt, regs.val, regs.gen, spin);
    }
}

void
emitSignal(AsmBuilder &b, Addr flag_addr, std::int64_t value,
           const SyncRegs &regs)
{
    b.memfence();
    b.movImm(regs.addr, static_cast<std::int64_t>(flag_addr));
    b.movImm(regs.val, value);
    b.stReg(regs.val, regs.addr, ElemWidth::W64);
}

void
emitWaitGe(AsmBuilder &b, Addr flag_addr, std::int64_t value,
           const SyncRegs &regs)
{
    b.movImm(regs.addr, static_cast<std::int64_t>(flag_addr));
    b.movImm(regs.gen, value);
    const auto spin = b.newLabel();
    b.bind(spin);
    b.ldReg(regs.val, regs.addr, ElemWidth::W64);
    b.branch(BranchCond::Lt, regs.val, regs.gen, spin);
}

} // namespace vip
