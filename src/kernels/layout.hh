/**
 * @file
 * DRAM data layouts shared between the host side (which stages inputs
 * and retrieves results through DramStorage) and the kernel generators
 * (which bake the same addresses into VIP programs).
 *
 * BP arrays are padded by the software-pipelining prefetch depth on
 * all four sides so that the kernels' unguarded prefetches past a
 * sweep's end read (and never write) harmless padding instead of
 * faulting — the host allocates the pad, exactly as the paper's
 * hand-written assembly relies on its own allocation discipline.
 */

#ifndef VIP_KERNELS_LAYOUT_HH
#define VIP_KERNELS_LAYOUT_HH

#include "mem/storage.hh"
#include "sim/types.hh"
#include "workloads/mrf.hh"
#include "workloads/nn.hh"

namespace vip {

/** Placement of one MRF (data costs, four message fields, smoothness). */
class MrfDramLayout
{
  public:
    static constexpr unsigned kPad = 4;  ///< prefetch-depth padding

    MrfDramLayout(Addr base, unsigned width, unsigned height,
                  unsigned labels);

    unsigned width() const { return width_; }
    unsigned height() const { return height_; }
    unsigned labels() const { return labels_; }

    Addr dataAddr(unsigned x, unsigned y) const;
    Addr msgAddr(MsgDir d, unsigned x, unsigned y) const;
    Addr smoothAddr() const { return smooth_; }

    /** Bytes between vertically adjacent pixels' vectors. */
    std::uint64_t rowStrideBytes() const
    {
        return static_cast<std::uint64_t>(paddedW_) * labels_ * 2;
    }

    /** Bytes between horizontally adjacent pixels' vectors. */
    std::uint64_t colStrideBytes() const { return labels_ * 2ull; }

    std::uint64_t footprintBytes() const { return end_ - base_; }
    Addr end() const { return end_; }

    /** Stage data costs and the smoothness matrix. */
    void upload(const MrfProblem &problem, DramStorage &dram) const;

    /** Stage all four message fields from a BpState. */
    void uploadMessages(const BpState &bp, DramStorage &dram) const;

    /** Read all four message fields back into a BpState. */
    void downloadMessages(BpState &bp, DramStorage &dram) const;

  private:
    Addr fieldBase(unsigned field) const;  ///< 0 = data, 1..4 = messages

    Addr base_;
    unsigned width_, height_, labels_;
    unsigned paddedW_, paddedH_;
    Addr smooth_;
    Addr end_;
};

/**
 * Placement of one CNN feature map in a channel-last layout, padded
 * spatially by the convolution halo so the kernel's valid-mode walk
 * implements same-padding.
 *
 * Two orders are supported: row-major [y][x][c] and column-major
 * [x][y][c]. The conv kernel wants column-major inputs — a 1 x k x z
 * window column is then a single contiguous DRAM transfer, the
 * "right location" data placement the paper's hand-written code
 * arranges between layers (Sec. IV-B).
 */
class FmapDramLayout
{
  public:
    FmapDramLayout(Addr base, unsigned channels, unsigned height,
                   unsigned width, unsigned halo,
                   bool col_major = false);

    Addr at(unsigned x, unsigned y, unsigned c = 0) const;

    /** Like at(), but allows coordinates inside the halo (>= -halo). */
    Addr atSigned(int x, int y, unsigned c = 0) const;

    unsigned channels() const { return channels_; }
    unsigned height() const { return height_; }
    unsigned width() const { return width_; }
    unsigned halo() const { return halo_; }

    /** Bytes between (x, y) and (x, y + 1). */
    std::uint64_t
    rowStrideBytes() const
    {
        return colMajor_ ? channels_ * 2ull
                         : static_cast<std::uint64_t>(paddedW_) *
                               channels_ * 2;
    }

    /** Bytes between (x, y) and (x + 1, y). */
    std::uint64_t
    colStrideBytes() const
    {
        return colMajor_ ? static_cast<std::uint64_t>(paddedH_) *
                               channels_ * 2
                         : channels_ * 2ull;
    }

    /** True when vertically adjacent pixels are contiguous. */
    bool colMajor() const { return colMajor_; }

    std::uint64_t footprintBytes() const;
    Addr end() const { return base_ + footprintBytes(); }

    /** Stage a channel-major FeatureMap (converting layout). */
    void upload(const FeatureMap &fmap, DramStorage &dram) const;

    /** Read back into a channel-major FeatureMap. */
    FeatureMap download(DramStorage &dram) const;

  private:
    Addr base_;
    unsigned channels_, height_, width_, halo_;
    unsigned paddedW_, paddedH_;
    bool colMajor_;
};

} // namespace vip

#endif // VIP_KERNELS_LAYOUT_HH
