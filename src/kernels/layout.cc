#include "kernels/layout.hh"

#include "sim/logging.hh"

namespace vip {

MrfDramLayout::MrfDramLayout(Addr base, unsigned width, unsigned height,
                             unsigned labels)
    : base_(base), width_(width), height_(height), labels_(labels),
      paddedW_(width + 2 * kPad), paddedH_(height + 2 * kPad)
{
    const std::uint64_t field =
        static_cast<std::uint64_t>(paddedW_) * paddedH_ * labels_ * 2;
    smooth_ = base_ + 5 * field;
    end_ = smooth_ + static_cast<std::uint64_t>(labels_) * labels_ * 2;
}

Addr
MrfDramLayout::fieldBase(unsigned field) const
{
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(paddedW_) * paddedH_ * labels_ * 2;
    return base_ + field * bytes;
}

Addr
MrfDramLayout::dataAddr(unsigned x, unsigned y) const
{
    return fieldBase(0) +
           (static_cast<std::uint64_t>(y + kPad) * paddedW_ + (x + kPad)) *
               labels_ * 2;
}

Addr
MrfDramLayout::msgAddr(MsgDir d, unsigned x, unsigned y) const
{
    return fieldBase(1 + static_cast<unsigned>(d)) +
           (static_cast<std::uint64_t>(y + kPad) * paddedW_ + (x + kPad)) *
               labels_ * 2;
}

void
MrfDramLayout::upload(const MrfProblem &problem, DramStorage &dram) const
{
    vip_assert(problem.width == width_ && problem.height == height_ &&
                   problem.labels == labels_,
               "MRF does not match layout");
    for (unsigned y = 0; y < height_; ++y) {
        for (unsigned x = 0; x < width_; ++x) {
            dram.write(dataAddr(x, y), problem.dataAt(x, y),
                       labels_ * 2);
        }
    }
    dram.write(smooth_, problem.smoothCost.data(),
               problem.smoothCost.size() * 2);
}

void
MrfDramLayout::uploadMessages(const BpState &bp, DramStorage &dram) const
{
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        for (unsigned y = 0; y < height_; ++y) {
            for (unsigned x = 0; x < width_; ++x) {
                dram.write(msgAddr(static_cast<MsgDir>(d), x, y),
                           bp.msgAt(static_cast<MsgDir>(d), x, y),
                           labels_ * 2);
            }
        }
    }
}

void
MrfDramLayout::downloadMessages(BpState &bp, DramStorage &dram) const
{
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        for (unsigned y = 0; y < height_; ++y) {
            for (unsigned x = 0; x < width_; ++x) {
                dram.read(msgAddr(static_cast<MsgDir>(d), x, y),
                          bp.msgAt(static_cast<MsgDir>(d), x, y),
                          labels_ * 2);
            }
        }
    }
}

FmapDramLayout::FmapDramLayout(Addr base, unsigned channels,
                               unsigned height, unsigned width,
                               unsigned halo, bool col_major)
    : base_(base), channels_(channels), height_(height), width_(width),
      halo_(halo), paddedW_(width + 2 * halo),
      paddedH_(height + 2 * halo), colMajor_(col_major)
{
}

Addr
FmapDramLayout::at(unsigned x, unsigned y, unsigned c) const
{
    return atSigned(static_cast<int>(x), static_cast<int>(y), c);
}

Addr
FmapDramLayout::atSigned(int x, int y, unsigned c) const
{
    const int px = x + static_cast<int>(halo_);
    const int py = y + static_cast<int>(halo_);
    vip_assert(px >= 0 && py >= 0, "coordinate outside the halo");
    const std::uint64_t pixel =
        colMajor_ ? static_cast<std::uint64_t>(px) * paddedH_ +
                        static_cast<std::uint64_t>(py)
                  : static_cast<std::uint64_t>(py) * paddedW_ +
                        static_cast<std::uint64_t>(px);
    return base_ + (pixel * channels_ + c) * 2;
}

std::uint64_t
FmapDramLayout::footprintBytes() const
{
    return static_cast<std::uint64_t>(paddedW_) * paddedH_ * channels_ * 2;
}

void
FmapDramLayout::upload(const FeatureMap &fmap, DramStorage &dram) const
{
    vip_assert(fmap.channels == channels_ && fmap.height == height_ &&
                   fmap.width == width_,
               "feature map does not match layout");
    std::vector<Fx16> pixel(channels_);
    for (unsigned y = 0; y < height_; ++y) {
        for (unsigned x = 0; x < width_; ++x) {
            for (unsigned c = 0; c < channels_; ++c)
                pixel[c] = fmap.at(c, y, x);
            dram.write(at(x, y), pixel.data(), channels_ * 2);
        }
    }
}

FeatureMap
FmapDramLayout::download(DramStorage &dram) const
{
    FeatureMap fmap(channels_, height_, width_);
    std::vector<Fx16> pixel(channels_);
    for (unsigned y = 0; y < height_; ++y) {
        for (unsigned x = 0; x < width_; ++x) {
            dram.read(at(x, y), pixel.data(), channels_ * 2);
            for (unsigned c = 0; c < channels_; ++c)
                fmap.at(c, y, x) = pixel[c];
        }
    }
    return fmap;
}

} // namespace vip
