/**
 * @file
 * Convenience constructors for simulated machines of various sizes.
 *
 * The paper's methodology (Sec. V-A) simulates a single *independent
 * tile* — a slice of work that shares no PEs, memory, or network
 * bandwidth with other tiles — and scales, because all tiles perform
 * identical work. These helpers build correspondingly down-sized
 * systems (one vault for tile experiments, the full 8x4 machine for
 * end-to-end runs like the fully-connected layers).
 */

#ifndef VIP_KERNELS_RUNNER_HH
#define VIP_KERNELS_RUNNER_HH

#include "system/system.hh"

namespace vip {

/** NoC grid dimensions used for a given vault count. */
inline std::pair<unsigned, unsigned>
nocDimsFor(unsigned vaults)
{
    switch (vaults) {
      case 1: return {1, 1};
      case 2: return {2, 1};
      case 4: return {2, 2};
      case 8: return {4, 2};
      case 16: return {4, 4};
      case 32: return {8, 4};
      default: return {vaults, 1};
    }
}

/**
 * A system configuration with @p vaults vaults (DRAM capacity is held
 * at the full stack's per-vault share) and @p pes_per_vault PEs.
 */
inline SystemConfig
makeSystemConfig(unsigned vaults = 32, unsigned pes_per_vault = 4)
{
    SystemConfig cfg;
    cfg.mem.geom.vaults = vaults;
    const auto [x, y] = nocDimsFor(vaults);
    cfg.nocX = x;
    cfg.nocY = y;
    cfg.pesPerVault = pes_per_vault;
    return cfg;
}

} // namespace vip

#endif // VIP_KERNELS_RUNNER_HH
