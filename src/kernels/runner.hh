/**
 * @file
 * Convenience constructors for simulated machines of various sizes.
 *
 * The paper's methodology (Sec. V-A) simulates a single *independent
 * tile* — a slice of work that shares no PEs, memory, or network
 * bandwidth with other tiles — and scales, because all tiles perform
 * identical work. These helpers build correspondingly down-sized
 * systems (one vault for tile experiments, the full 8x4 machine for
 * end-to-end runs like the fully-connected layers).
 *
 * The implementations now live with the `Simulation` facade in
 * system/simulation.hh; this header remains a thin alias so kernel
 * code and existing users keep their familiar include.
 */

#ifndef VIP_KERNELS_RUNNER_HH
#define VIP_KERNELS_RUNNER_HH

#include "system/simulation.hh"

#endif // VIP_KERNELS_RUNNER_HH
