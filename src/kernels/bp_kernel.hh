/**
 * @file
 * VIP assembly generators for BP-M message-update sweeps (Sec. IV-A and
 * Fig. 2 of the paper).
 *
 * A sweep walks the grid along its sequential axis (the BP-M ordering
 * constraint) while lanes — the orthogonal coordinate — are divided
 * among PEs. Per update the kernel performs exactly the paper's
 * 3L + 2L^2 operations and 4L element transfers: three vector loads
 * (data cost + the two cross-direction messages), a three-step
 * v.v.add chain building theta-hat, one m.v.add.min against the
 * resident smoothness matrix, and one vector store. The along-sweep
 * input message is never re-loaded: it is the previous update's output,
 * carried in a ping-pong chain buffer (this is what makes the sweep
 * sequential). Loads are software-pipelined four iterations ahead
 * (Fig. 2's caption) with the ARC providing the use-before-load
 * interlock, and stores are deferred one iteration so they never read
 * the m.v result inside its timing shadow.
 *
 * Variants reproduce the Fig. 4 ablation:
 *  - reduction=false replaces m.v.add.min with an unrolled
 *    divide-and-conquer software reduction (the classic vector-ISA
 *    approach);
 *  - registerFile=true emulates a 16 x 256 B vector-register machine:
 *    operands live in 256 B-aligned slots holding eight packed 32 B
 *    vectors, with per-update unpack/repack copies and one contiguous
 *    256 B load/store per eight updates (the paper's maximally
 *    favorable register-file setup).
 */

#ifndef VIP_KERNELS_BP_KERNEL_HH
#define VIP_KERNELS_BP_KERNEL_HH

#include <vector>

#include "isa/isa.hh"
#include "kernels/layout.hh"
#include "workloads/mrf.hh"

namespace vip {

/** Fig. 4 configuration axes, plus the software-pipelining depth. */
struct BpVariant
{
    bool reduction = true;     ///< use the horizontal (reduction) unit
    bool registerFile = false; ///< emulate a vector-register file

    /** Iterations ahead loads are issued (1..4; the paper's code uses
     *  four). Scratchpad mode only. */
    unsigned prefetchDepth = 4;

    /**
     * Periodic message normalization (see BpState / kBpNormPeriod):
     * broadcast-subtract min(chain) via a resident zero matrix, which
     * keeps 16-bit messages bounded over any iteration count. Requires
     * the reduction unit and the scratchpad configuration.
     */
    bool normalize = true;
};

enum class SweepDir { Right, Left, Down, Up };

/** The slice of one sweep assigned to one PE. */
struct BpSweepJob
{
    SweepDir dir = SweepDir::Down;
    unsigned laneBegin = 0;  ///< first lane (column for Down/Up, row
                             ///< for Right/Left), inclusive
    unsigned laneEnd = 0;    ///< last lane, exclusive
};

/**
 * Generate a standalone program executing one sweep slice, ending in
 * halt. @p layout supplies every address; the program is fully
 * self-contained (no argument registers).
 */
std::vector<Instruction> genBpSweep(const MrfDramLayout &layout,
                                    const BpVariant &variant,
                                    const BpSweepJob &job);

/**
 * Generate a full BP-M program: @p iterations iterations of the
 * right, left, down, up sweep sequence with an all-PE barrier after
 * each sweep. @p jobs gives this PE's lane slice for each direction
 * (indexed by SweepDir). Flags for the barrier live at @p flag_base
 * (see emitBarrier for the layout); the host must zero them first.
 */
std::vector<Instruction> genBpIterations(
    const MrfDramLayout &layout, const BpVariant &variant,
    const BpSweepJob (&jobs)[4], unsigned iterations, Addr flag_base,
    unsigned pe_index, unsigned num_pes);

/** Ops performed per message update: 3L + 2L^2 (Sec. II-A). */
inline std::uint64_t
bpOpsPerUpdate(unsigned labels)
{
    return 3ull * labels + 2ull * labels * labels;
}

/** Bytes moved per message update: 4L elements (Sec. II-A). */
inline std::uint64_t
bpBytesPerUpdate(unsigned labels)
{
    return 4ull * labels * 2;
}

} // namespace vip

#endif // VIP_KERNELS_BP_KERNEL_HH
