#include "kernels/pool_kernel.hh"

#include "isa/builder.hh"
#include "pe/scratchpad.hh"
#include "sim/error.hh"
#include "sim/logging.hh"

namespace vip {

namespace {

constexpr unsigned RZ = 1;
constexpr unsigned RVL = 2;       // chunk
constexpr unsigned RP00 = 4;      // sp addrs of the four input vectors
constexpr unsigned RP01 = 5;
constexpr unsigned RP10 = 6;
constexpr unsigned RP11 = 7;
constexpr unsigned RRES = 8;      // result vector sp addr
constexpr unsigned RT = 15;
constexpr unsigned RX = 20;
constexpr unsigned RXEND = 21;
constexpr unsigned RY = 22;
constexpr unsigned RYEND = 23;
constexpr unsigned RC = 24;       // chunk counter
constexpr unsigned RCEND = 25;
constexpr unsigned RIN0 = 26;     // input pointers: row 2Y and 2Y+1
constexpr unsigned RIN1 = 27;
constexpr unsigned ROUT = 28;
constexpr unsigned RCOLS = 29;    // input column stride
constexpr unsigned RSTEP2 = 30;   // 2 * input column stride
constexpr unsigned ROSTEP = 31;   // output column stride
constexpr unsigned RROWB0 = 32;   // per-row bases
constexpr unsigned RROWB1 = 33;
constexpr unsigned RROWBO = 34;
constexpr unsigned RINADV = 35;   // 2 * input row stride
constexpr unsigned ROUTADV = 36;
constexpr unsigned RCHB = 37;     // chunk bytes

} // namespace

std::vector<Instruction>
genPool(const PoolJob &job)
{
    vip_assert(job.in && job.out, "job needs layouts");
    const unsigned C = job.in->channels();
    const unsigned chunk = job.chunk;
    vip_assert(chunk > 0 && C % chunk == 0,
               "chunk must divide the channel count");
    const unsigned chunk_bytes = chunk * 2;
    if (5 * chunk_bytes > Scratchpad::kBytes) {
        throw ConfigError(
            "pool chunk of " + std::to_string(chunk) +
            " channels needs 5 x " + std::to_string(chunk_bytes) +
            " B of scratchpad (capacity " +
            std::to_string(Scratchpad::kBytes) + " B); lower chunk");
    }
    vip_assert(job.out->channels() == C, "channel mismatch");

    const SpAddr sp_p00 = 0;
    const SpAddr sp_p01 = sp_p00 + chunk_bytes;
    const SpAddr sp_p10 = sp_p01 + chunk_bytes;
    const SpAddr sp_p11 = sp_p10 + chunk_bytes;
    const SpAddr sp_res = sp_p11 + chunk_bytes;

    AsmBuilder b;
    b.movImm(RZ, 0);
    b.movImm(RVL, chunk);
    b.setVl(RVL);
    b.movImm(RP00, sp_p00);
    b.movImm(RP01, sp_p01);
    b.movImm(RP10, sp_p10);
    b.movImm(RP11, sp_p11);
    b.movImm(RRES, sp_res);
    b.movImm(RCOLS, static_cast<std::int64_t>(job.in->colStrideBytes()));
    b.movImm(RSTEP2,
             2 * static_cast<std::int64_t>(job.in->colStrideBytes()));
    b.movImm(ROSTEP, static_cast<std::int64_t>(job.out->colStrideBytes()));
    b.movImm(RINADV,
             2 * static_cast<std::int64_t>(job.in->rowStrideBytes()));
    b.movImm(ROUTADV,
             static_cast<std::int64_t>(job.out->rowStrideBytes()));
    b.movImm(RCHB, chunk_bytes);
    b.movImm(RROWB0, static_cast<std::int64_t>(
                         job.in->at(0, 2 * job.rowBegin)));
    b.movImm(RROWB1, static_cast<std::int64_t>(
                         job.in->at(0, 2 * job.rowBegin + 1)));
    b.movImm(RROWBO, static_cast<std::int64_t>(
                         job.out->at(0, job.rowBegin)));
    b.movImm(RY, job.rowBegin);
    b.movImm(RYEND, job.rowEnd);
    b.movImm(RXEND, job.width);
    b.movImm(RCEND, C / chunk);

    const auto row_top = b.newLabel();
    b.bind(row_top);
    b.mov(RIN0, RROWB0);
    b.mov(RIN1, RROWB1);
    b.mov(ROUT, RROWBO);
    b.movImm(RX, 0);

    const auto x_loop = b.newLabel();
    b.bind(x_loop);
    b.movImm(RC, 0);

    const auto c_loop = b.newLabel();
    b.bind(c_loop);
    // Four loads issue together; the LSQ keeps them all in flight.
    b.ldSram(RP00, RIN0, RVL);
    b.scalar(ScalarOp::Add, RT, RIN0, RCOLS);
    b.ldSram(RP01, RT, RVL);
    b.ldSram(RP10, RIN1, RVL);
    b.scalar(ScalarOp::Add, RT, RIN1, RCOLS);
    b.ldSram(RP11, RT, RVL);
    // Element-wise maxima; ARC holds each until its data lands.
    b.vv(VecOp::Max, RRES, RP00, RP01);
    b.vv(VecOp::Max, RRES, RRES, RP10);
    b.vv(VecOp::Max, RRES, RRES, RP11);
    b.vdrain();
    b.stSram(RRES, ROUT, RVL);
    // Next channel chunk.
    b.scalar(ScalarOp::Add, RIN0, RIN0, RCHB);
    b.scalar(ScalarOp::Add, RIN1, RIN1, RCHB);
    b.scalar(ScalarOp::Add, ROUT, ROUT, RCHB);
    b.addImm(RC, RC, 1);
    b.branch(BranchCond::Lt, RC, RCEND, c_loop);

    // Next output pixel: the chunk loop advanced one full pixel of
    // channels; add the remaining column step.
    b.scalar(ScalarOp::Add, RIN0, RIN0, RCOLS);
    b.scalar(ScalarOp::Add, RIN1, RIN1, RCOLS);
    b.addImm(RX, RX, 1);
    b.branch(BranchCond::Lt, RX, RXEND, x_loop);

    b.scalar(ScalarOp::Add, RROWB0, RROWB0, RINADV);
    b.scalar(ScalarOp::Add, RROWB1, RROWB1, RINADV);
    b.scalar(ScalarOp::Add, RROWBO, RROWBO, ROUTADV);
    b.addImm(RY, RY, 1);
    b.branch(BranchCond::Lt, RY, RYEND, row_top);

    b.memfence();
    b.halt();
    return b.finish();
}

} // namespace vip
