/**
 * @file
 * Fully-connected layer kernel generators (Sec. IV-C).
 *
 * The paper executes an FC layer in three passes: (1) every vault
 * copies its input segment locally, (2) PEs compute partial products
 * of their weight-matrix tiles against the resident segment, (3)
 * accumulator PEs combine the per-vault partials, add biases, and
 * apply ReLU. genFcPartial covers passes 1-2 for one PE (the segment
 * load is the local copy); genFcAccum is pass 3. A single-segment
 * partial pass with finalize=true performs the entire layer on one PE
 * (used for verification).
 */

#ifndef VIP_KERNELS_FC_KERNEL_HH
#define VIP_KERNELS_FC_KERNEL_HH

#include <vector>

#include "isa/isa.hh"
#include "sim/types.hh"
#include "workloads/fixed.hh"

namespace vip {

struct FcPartialJob
{
    Addr weightBase = 0;  ///< row-major [outputs x inputs] matrix
    Addr inputBase = 0;   ///< the full input vector
    Addr outBase = 0;     ///< partials (or final outputs) for rowBegin..
    Addr biasBase = 0;    ///< finalize mode only

    unsigned inputs = 0;     ///< full layer input length
    unsigned segOffset = 0;  ///< this vault's segment start
    unsigned segLen = 0;     ///< segment length (elements)
    unsigned rowBegin = 0;   ///< output rows [rowBegin, rowEnd)
    unsigned rowEnd = 0;

    /** Outputs buffered in the scratchpad between stores. */
    unsigned outBlock = 64;

    /** Add bias + ReLU and write final outputs (single-segment only). */
    bool finalize = false;
};

std::vector<Instruction> genFcPartial(const FcPartialJob &job);

struct FcAccumJob
{
    /**
     * Partial arrays form a two-level grid: array (o, i) lives at
     * partialBase0 + o * strideOuter + i * strideInner. In the
     * machine-scale layout the outer level walks vaults (stride = one
     * vault's DRAM region) and the inner level the PEs within a vault.
     * Combination order is outer-major, inner-minor ascending, which
     * must equal input-segment order for bit-exactness against
     * fcLayerSegmented. Single-level walks set countInner = 1.
     */
    Addr partialBase0 = 0;
    std::uint64_t strideOuter = 0;
    unsigned countOuter = 0;
    std::uint64_t strideInner = 0;
    unsigned countInner = 1;

    Addr outBase = 0;
    Addr biasBase = 0;
    unsigned outBegin = 0;  ///< outputs [outBegin, outEnd)
    unsigned outEnd = 0;
    unsigned chunk = 256;   ///< outputs per vector chunk
};

std::vector<Instruction> genFcAccum(const FcAccumJob &job);

} // namespace vip

#endif // VIP_KERNELS_FC_KERNEL_HH
