#include "kernels/fc_kernel.hh"

#include "isa/builder.hh"
#include "kernels/emit_util.hh"
#include "pe/scratchpad.hh"
#include "sim/error.hh"
#include "sim/logging.hh"

namespace vip {

namespace {

constexpr unsigned RZ = 1;
constexpr unsigned RSEGL = 2;    // segment length (m.v VL)
constexpr unsigned RONE = 3;     // 1 (m.v MR)
constexpr unsigned ROBL = 4;     // out-block length
constexpr unsigned RSEG = 5;     // sp addr of the resident segment
constexpr unsigned RW0 = 6;      // sp addrs of the two weight slots
constexpr unsigned RW1 = 7;
constexpr unsigned ROB = 8;      // sp addr of the out block
constexpr unsigned RBIASB = 9;   // sp addr of the bias block
constexpr unsigned RT = 15;
constexpr unsigned RT2 = 16;
constexpr unsigned RT3 = 17;
constexpr unsigned RR = 20;      // row counter
constexpr unsigned RREND = 21;
constexpr unsigned RWP = 22;     // weight row load pointer
constexpr unsigned RWADV = 23;   // matrix row stride (inputs * 2)
constexpr unsigned ROUTP = 24;   // output store pointer
constexpr unsigned RBIASP = 25;  // bias load pointer
constexpr unsigned RMASK = 26;   // outBlock - 1
constexpr unsigned ROBB = 27;    // outBlock bytes

// Accumulation pass.
constexpr unsigned RCHUNK = 2;
constexpr unsigned RACC = 5;     // sp acc
constexpr unsigned RTMP0 = 6;    // ping-pong partial buffers
constexpr unsigned RTMP1 = 7;
constexpr unsigned RBIASC = 8;   // sp bias chunk
constexpr unsigned RS = 28;      // partial index
constexpr unsigned RSEND = 29;
constexpr unsigned RPP = 30;     // partial walk pointer
constexpr unsigned RPSTR = 31;   // partial stride
constexpr unsigned RO = 32;      // chunk cursor
constexpr unsigned ROEND = 33;
constexpr unsigned RCHB = 34;    // chunk bytes

} // namespace

std::vector<Instruction>
genFcPartial(const FcPartialJob &job)
{
    const unsigned seg = job.segLen;
    const unsigned ob = job.outBlock;
    const unsigned rows = job.rowEnd - job.rowBegin;
    vip_assert(seg > 0 && rows > 0, "degenerate FC job");
    vip_assert((ob & (ob - 1)) == 0, "outBlock must be a power of two");
    vip_assert(rows % ob == 0, "row count must be a multiple of outBlock");

    const unsigned seg_bytes = seg * 2;
    const SpAddr sp_seg = 0;
    const SpAddr sp_w0 = sp_seg + seg_bytes;
    const SpAddr sp_w1 = sp_w0 + seg_bytes;
    const SpAddr sp_ob = sp_w1 + seg_bytes;
    const SpAddr sp_bias = sp_ob + ob * 2;
    const SpAddr sp_end = sp_bias + (job.finalize ? ob * 2 : 0);
    if (sp_end > Scratchpad::kBytes) {
        throw ConfigError(
            "FC job does not fit the scratchpad: segment " +
            std::to_string(seg_bytes) + " B x3 + blocks need " +
            std::to_string(sp_end) + " B (capacity " +
            std::to_string(Scratchpad::kBytes) +
            " B); shorten the input segment or outBlock");
    }

    AsmBuilder b;
    b.movImm(RZ, 0);
    b.movImm(RSEGL, seg);
    b.movImm(RONE, 1);
    b.movImm(ROBL, ob);
    b.movImm(RSEG, sp_seg);
    b.movImm(RW0, sp_w0);
    b.movImm(RW1, sp_w1);
    b.movImm(ROB, sp_ob);
    b.movImm(RBIASB, sp_bias);
    b.movImm(RMASK, ob - 1);
    b.movImm(ROBB, 2ll * ob);
    b.setVl(RSEGL);
    b.setMr(RONE);

    // Pass 1 (the local copy): load the resident input segment.
    b.movImm(RT, static_cast<std::int64_t>(job.inputBase +
                                           2ull * job.segOffset));
    b.ldSram(RSEG, RT, RSEGL);

    // Weight pointer: row rowBegin, columns [segOffset, segOffset+seg).
    b.movImm(RWP, static_cast<std::int64_t>(
                      job.weightBase +
                      2ull * (static_cast<std::uint64_t>(job.rowBegin) *
                                  job.inputs +
                              job.segOffset)));
    b.movImm(RWADV, 2ll * job.inputs);
    b.movImm(ROUTP, static_cast<std::int64_t>(job.outBase));
    if (job.finalize) {
        b.movImm(RBIASP, static_cast<std::int64_t>(
                             job.biasBase + 2ull * job.rowBegin));
    }
    b.movImm(RR, 0);
    b.movImm(RREND, rows);

    // Prologue: prefetch the first two weight rows.
    b.ldSram(RW0, RWP, RSEGL);
    b.scalar(ScalarOp::Add, RWP, RWP, RWADV);
    b.ldSram(RW1, RWP, RSEGL);
    b.scalar(ScalarOp::Add, RWP, RWP, RWADV);

    const auto row_top = b.newLabel();
    b.bind(row_top);

    // Current weight slot: w0 + (r & 1) * seg_bytes.
    b.scalarImm(ScalarOp::And, RT, RR, 1);
    emitMulConst(b, RT2, RT, seg_bytes, RT3);
    b.scalar(ScalarOp::Add, RT2, RT2, RW0);

    // Destination element inside the out block.
    b.scalar(ScalarOp::And, RT, RR, RMASK);
    b.scalarImm(ScalarOp::Sll, RT, RT, 1);
    b.scalar(ScalarOp::Add, RT, RT, ROB);

    // partial[r] = dot(weight row, segment).
    b.mv(VecOp::Mul, RedOp::Add, RT, RT2, RSEG);

    // Prefetch row r+2 into the slot just consumed.
    b.ldSram(RT2, RWP, RSEGL);
    b.scalar(ScalarOp::Add, RWP, RWP, RWADV);

    // Flush the out block when it fills.
    const auto no_flush = b.newLabel();
    b.scalar(ScalarOp::And, RT, RR, RMASK);
    b.branch(BranchCond::Ne, RT, RMASK, no_flush);
    if (job.finalize) {
        b.ldSram(RBIASB, RBIASP, ROBL);
        b.scalar(ScalarOp::Add, RBIASP, RBIASP, ROBB);
        b.setVl(ROBL);
        b.vdrain();
        b.vv(VecOp::Add, ROB, ROB, RBIASB);
        b.vs(VecOp::Max, ROB, ROB, RZ);
    }
    b.vdrain();
    b.stSram(ROB, ROUTP, ROBL);
    b.scalar(ScalarOp::Add, ROUTP, ROUTP, ROBB);
    if (job.finalize)
        b.setVl(RSEGL);
    b.bind(no_flush);

    b.addImm(RR, RR, 1);
    b.branch(BranchCond::Lt, RR, RREND, row_top);

    b.memfence();
    b.halt();
    return b.finish();
}

std::vector<Instruction>
genFcAccum(const FcAccumJob &job)
{
    const unsigned chunk = job.chunk;
    const unsigned outs = job.outEnd - job.outBegin;
    vip_assert(job.countOuter * job.countInner >= 2 && chunk > 0 &&
                   outs > 0,
               "degenerate accum job");
    vip_assert(outs % chunk == 0, "chunk must divide the output range");

    const unsigned chunk_bytes = chunk * 2;
    const SpAddr sp_acc = 0;
    const SpAddr sp_tmp = sp_acc + chunk_bytes;
    const SpAddr sp_bias = sp_tmp + chunk_bytes;
    if (sp_bias + chunk_bytes > Scratchpad::kBytes) {
        throw ConfigError(
            "FC accumulation chunk of " + std::to_string(chunk) +
            " outputs needs " + std::to_string(sp_bias + chunk_bytes) +
            " B of scratchpad (capacity " +
            std::to_string(Scratchpad::kBytes) + " B); lower chunk");
    }

    // Extra registers for the two-level walk.
    constexpr unsigned ROUTERB = 35;  // outer-level walking base
    constexpr unsigned RI = 36;       // inner counter
    constexpr unsigned RIEND = 37;
    constexpr unsigned RPSTRI = 38;   // inner stride

    AsmBuilder b;
    b.movImm(RZ, 0);
    b.movImm(RCHUNK, chunk);
    b.setVl(RCHUNK);
    b.movImm(RACC, sp_acc);
    b.movImm(RTMP0, sp_tmp);
    b.movImm(RBIASC, sp_bias);
    b.movImm(RPSTR, static_cast<std::int64_t>(job.strideOuter));
    b.movImm(RPSTRI, static_cast<std::int64_t>(job.strideInner));
    b.movImm(RCHB, chunk_bytes);
    b.movImm(RSEND, job.countOuter);
    b.movImm(RIEND, job.countInner);

    b.movImm(RO, 0);
    b.movImm(ROEND, outs / chunk);
    b.movImm(ROUTP, static_cast<std::int64_t>(job.outBase +
                                              2ull * job.outBegin));
    b.movImm(RBIASP, static_cast<std::int64_t>(job.biasBase +
                                               2ull * job.outBegin));
    // RT3 tracks the chunk offset into every partial array.
    b.movImm(RT3, static_cast<std::int64_t>(job.partialBase0 +
                                            2ull * job.outBegin));

    const auto chunk_top = b.newLabel();
    b.bind(chunk_top);

    // ACC accumulates partials outer-major, inner-minor; the first
    // array initializes it with a plain load.
    b.mov(ROUTERB, RT3);
    b.ldSram(RACC, ROUTERB, RCHUNK);
    b.movImm(RS, 0);

    const auto outer_loop = b.newLabel();
    b.bind(outer_loop);
    b.mov(RPP, ROUTERB);
    b.movImm(RI, 0);

    const auto inner_loop = b.newLabel();
    b.bind(inner_loop);
    // Skip (o=0, i=0): it seeded ACC above.
    const auto skip_first = b.newLabel();
    b.scalar(ScalarOp::Or, RT, RS, RI);
    b.branch(BranchCond::Eq, RT, RZ, skip_first);
    b.ldSram(RTMP0, RPP, RCHUNK);
    b.vv(VecOp::Add, RACC, RACC, RTMP0);
    b.bind(skip_first);
    b.scalar(ScalarOp::Add, RPP, RPP, RPSTRI);
    b.addImm(RI, RI, 1);
    b.branch(BranchCond::Lt, RI, RIEND, inner_loop);

    b.scalar(ScalarOp::Add, ROUTERB, ROUTERB, RPSTR);
    b.addImm(RS, RS, 1);
    b.branch(BranchCond::Lt, RS, RSEND, outer_loop);

    b.ldSram(RBIASC, RBIASP, RCHUNK);
    b.scalar(ScalarOp::Add, RBIASP, RBIASP, RCHB);
    b.vv(VecOp::Add, RACC, RACC, RBIASC);
    b.vs(VecOp::Max, RACC, RACC, RZ);
    b.vdrain();
    b.stSram(RACC, ROUTP, RCHUNK);
    b.scalar(ScalarOp::Add, ROUTP, ROUTP, RCHB);
    b.scalar(ScalarOp::Add, RT3, RT3, RCHB);

    b.addImm(RO, RO, 1);
    b.branch(BranchCond::Lt, RO, ROEND, chunk_top);

    b.memfence();
    b.halt();
    return b.finish();
}

} // namespace vip
