#include "kernels/hier_kernel.hh"

#include "isa/builder.hh"
#include "sim/logging.hh"

namespace vip {

namespace {

constexpr unsigned RZ = 1;
constexpr unsigned RVL = 2;
constexpr unsigned RT = 15;

/**
 * From a 0/1 parity in @p rpar_in, compute p * slot_bytes into
 * @p rcur and (1-p) * slot_bytes into @p rother (slot_bytes is a
 * power of two). Clobbers @p rtmp.
 */
void
emitParityOffsets(AsmBuilder &b, unsigned rpar_in, unsigned slot_bytes,
                  unsigned rcur, unsigned rother, unsigned rtmp)
{
    unsigned shift = 0;
    while ((1u << shift) < slot_bytes)
        ++shift;
    b.scalarImm(ScalarOp::Sll, rcur, rpar_in, shift);
    b.movImm(rtmp, slot_bytes);
    b.scalar(ScalarOp::Sub, rother, rtmp, rcur);
}

} // namespace

std::vector<Instruction>
genConstruct(const ConstructJob &job)
{
    const MrfDramLayout &fine = *job.fine;
    const MrfDramLayout &coarse = *job.coarse;
    const unsigned L = fine.labels();
    vip_assert(coarse.labels() == L, "label mismatch");
    vip_assert(fine.width() % 2 == 0 && fine.height() % 2 == 0,
               "construct kernel needs even fine dimensions");
    vip_assert(job.rowEnd > job.rowBegin &&
                   job.rowEnd <= coarse.height(),
               "bad row range");
    const unsigned lw = L * 2;

    // Scratchpad: four child vectors + the accumulator.
    constexpr unsigned RP0 = 4, RP1 = 5, RP2 = 6, RP3 = 7, RACC = 8;
    constexpr unsigned RIN0 = 20, RIN1 = 21, ROUT = 22;
    constexpr unsigned RROW0 = 23, RROW1 = 24, RROWO = 25;
    constexpr unsigned RINSTEP = 26, ROUTSTEP = 27;
    constexpr unsigned RINADV = 28, ROUTADV = 29;
    constexpr unsigned RX = 40, RXEND = 41, RY = 42, RYEND = 43;

    AsmBuilder b;
    b.movImm(RZ, 0);
    b.movImm(RVL, L);
    b.setVl(RVL);
    for (unsigned s = 0; s < 4; ++s)
        b.movImm(RP0 + s, s * ((lw + 31) & ~31u));
    b.movImm(RACC, 4 * ((lw + 31) & ~31u));

    b.movImm(RINSTEP, 2ll * static_cast<std::int64_t>(
                               fine.colStrideBytes()));
    b.movImm(ROUTSTEP,
             static_cast<std::int64_t>(coarse.colStrideBytes()));
    b.movImm(RINADV, 2ll * static_cast<std::int64_t>(
                              fine.rowStrideBytes()));
    b.movImm(ROUTADV,
             static_cast<std::int64_t>(coarse.rowStrideBytes()));
    b.movImm(RROW0, static_cast<std::int64_t>(
                        fine.dataAddr(0, 2 * job.rowBegin)));
    b.movImm(RROW1, static_cast<std::int64_t>(
                        fine.dataAddr(0, 2 * job.rowBegin + 1)));
    b.movImm(RROWO, static_cast<std::int64_t>(
                        coarse.dataAddr(0, job.rowBegin)));
    b.movImm(RY, job.rowBegin);
    b.movImm(RYEND, job.rowEnd);
    b.movImm(RXEND, coarse.width());

    const auto row_top = b.newLabel();
    b.bind(row_top);
    b.mov(RIN0, RROW0);
    b.mov(RIN1, RROW1);
    b.mov(ROUT, RROWO);
    b.movImm(RX, 0);

    const auto x_loop = b.newLabel();
    b.bind(x_loop);
    // Four children, loaded in the reference coarsen() order.
    b.ldSram(RP0, RIN0, RVL);
    b.addImm(RT, RIN0, static_cast<std::int64_t>(
                           fine.colStrideBytes()));
    b.ldSram(RP1, RT, RVL);
    b.ldSram(RP2, RIN1, RVL);
    b.addImm(RT, RIN1, static_cast<std::int64_t>(
                           fine.colStrideBytes()));
    b.ldSram(RP3, RT, RVL);
    // acc = ((c0 + c1) + c2) + c3, the reference association order.
    b.vv(VecOp::Add, RACC, RP0, RP1);
    b.vv(VecOp::Add, RACC, RACC, RP2);
    b.vv(VecOp::Add, RACC, RACC, RP3);
    b.vdrain();
    b.stSram(RACC, ROUT, RVL);
    b.scalar(ScalarOp::Add, RIN0, RIN0, RINSTEP);
    b.scalar(ScalarOp::Add, RIN1, RIN1, RINSTEP);
    b.scalar(ScalarOp::Add, ROUT, ROUT, ROUTSTEP);
    b.addImm(RX, RX, 1);
    b.branch(BranchCond::Lt, RX, RXEND, x_loop);

    b.scalar(ScalarOp::Add, RROW0, RROW0, RINADV);
    b.scalar(ScalarOp::Add, RROW1, RROW1, RINADV);
    b.scalar(ScalarOp::Add, RROWO, RROWO, ROUTADV);
    b.addImm(RY, RY, 1);
    b.branch(BranchCond::Lt, RY, RYEND, row_top);

    b.memfence();
    b.halt();
    return b.finish();
}

std::vector<Instruction>
genCopyMessages(const CopyJob &job)
{
    const MrfDramLayout &coarse = *job.coarse;
    const MrfDramLayout &fine = *job.fine;
    const unsigned L = fine.labels();
    vip_assert(coarse.labels() == L, "label mismatch");
    vip_assert(job.rowEnd > job.rowBegin && job.rowEnd <= fine.height(),
               "bad row range");
    vip_assert(fine.width() % 2 == 0,
               "copy kernel needs an even fine width");
    const unsigned lw = L * 2;

    // Registers: per-direction pointer sets.
    constexpr unsigned RINROW0 = 20; // 20..23: coarse row bases
    constexpr unsigned ROUTROW0 = 24;// 24..27: fine row bases
    constexpr unsigned RIN0 = 30;    // 30..33: coarse walk pointers
    constexpr unsigned ROUT0 = 34;   // 34..37: fine walk pointers
    constexpr unsigned RX = 40, RXEND = 41, RY = 42, RYEND = 43;
    constexpr unsigned RT2 = 16;

    AsmBuilder b;
    b.movImm(RZ, 0);
    b.movImm(RVL, L);
    b.setVl(RVL);
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        b.movImm(RINROW0 + d,
                 static_cast<std::int64_t>(coarse.msgAddr(
                     static_cast<MsgDir>(d), 0, job.rowBegin / 2)));
        b.movImm(ROUTROW0 + d,
                 static_cast<std::int64_t>(fine.msgAddr(
                     static_cast<MsgDir>(d), 0, job.rowBegin)));
    }
    b.movImm(RY, job.rowBegin);
    b.movImm(RYEND, job.rowEnd);
    b.movImm(RXEND, fine.width() / 2);

    const auto row_top = b.newLabel();
    b.bind(row_top);
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        b.mov(RIN0 + d, RINROW0 + d);
        b.mov(ROUT0 + d, ROUTROW0 + d);
    }
    b.movImm(RX, 0);

    // Double-buffered: parent X's loads fly while parent X-1's fan-out
    // stores drain, so the load latency never serializes the stream.
    // Slot for (direction d, parity p) sits at (2d + p) * slot bytes.
    const unsigned slot_bytes = (lw + 31) & ~31u;
    constexpr unsigned RPAR = 17;   // parity offset (p * slot_bytes)
    constexpr unsigned RNPAR = 18;  // (1-p) * slot_bytes

    const auto x_loop = b.newLabel();
    b.bind(x_loop);
    b.scalarImm(ScalarOp::And, RT2, RX, 1);
    emitParityOffsets(b, RT2, slot_bytes, RPAR, RNPAR, RT);
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        // Load parent X into this parity's slot.
        b.addImm(RT, RPAR, 2 * d * slot_bytes);
        b.ldSram(RT, RIN0 + d, RVL);
        b.addImm(RIN0 + d, RIN0 + d,
                 static_cast<std::int64_t>(coarse.colStrideBytes()));
    }
    const auto no_store = b.newLabel();
    b.branch(BranchCond::Eq, RX, RZ, no_store);
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        // Fan parent X-1 out to its two fine columns.
        b.addImm(RT, RNPAR, 2 * d * slot_bytes);
        b.stSram(RT, ROUT0 + d, RVL);
        b.addImm(RT2, ROUT0 + d,
                 static_cast<std::int64_t>(fine.colStrideBytes()));
        b.stSram(RT, RT2, RVL);
        b.addImm(ROUT0 + d, ROUT0 + d,
                 2ll * static_cast<std::int64_t>(
                           fine.colStrideBytes()));
    }
    b.bind(no_store);
    b.addImm(RX, RX, 1);
    b.branch(BranchCond::Lt, RX, RXEND, x_loop);

    // Row epilogue: fan out the row's final parent, whose parity is
    // (XEND-1) & 1 — i.e. the *other* parity of RX == XEND.
    b.scalarImm(ScalarOp::And, RT2, RX, 1);
    emitParityOffsets(b, RT2, slot_bytes, RPAR, RNPAR, RT);
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        b.addImm(RT, RNPAR, 2 * d * slot_bytes);
        b.stSram(RT, ROUT0 + d, RVL);
        b.addImm(RT2, ROUT0 + d,
                 static_cast<std::int64_t>(fine.colStrideBytes()));
        b.stSram(RT, RT2, RVL);
    }

    // Fine rows advance every row; coarse rows every second one.
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        b.addImm(ROUTROW0 + d, ROUTROW0 + d,
                 static_cast<std::int64_t>(fine.rowStrideBytes()));
    }
    const auto skip_coarse = b.newLabel();
    b.scalarImm(ScalarOp::And, RT2, RY, 1);
    b.branch(BranchCond::Eq, RT2, RZ, skip_coarse);
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        b.addImm(RINROW0 + d, RINROW0 + d,
                 static_cast<std::int64_t>(coarse.rowStrideBytes()));
    }
    b.bind(skip_coarse);
    b.addImm(RY, RY, 1);
    b.branch(BranchCond::Lt, RY, RYEND, row_top);

    b.memfence();
    b.halt();
    return b.finish();
}

} // namespace vip
