/**
 * @file
 * Software synchronization emitters (Sec. IV-A).
 *
 * The VIP ISA has no atomics; the paper synchronizes PEs through
 * full/empty flag variables in DRAM (producer-consumer at tile
 * boundaries) and a barrier built from them (end of each message-update
 * direction). We emit the same idiom: each PE owns a private arrival
 * word (no write contention), a leader observes all arrivals and
 * publishes a release word, and generation counters make the barrier
 * reusable without re-zeroing.
 */

#ifndef VIP_KERNELS_SYNC_HH
#define VIP_KERNELS_SYNC_HH

#include "isa/builder.hh"
#include "sim/types.hh"

namespace vip {

/** Scratch registers the sync emitters may clobber. */
struct SyncRegs
{
    unsigned gen;   ///< generation counter; init to 0 once per program
    unsigned addr;  ///< address temporary
    unsigned val;   ///< value temporary
};

/**
 * Barrier across @p num_pes participants. Flag layout at @p flag_base:
 * words 0..num_pes-1 are arrival flags, word num_pes is the release
 * flag. Emits nothing when num_pes == 1.
 */
void emitBarrier(AsmBuilder &b, Addr flag_base, unsigned pe_index,
                 unsigned num_pes, const SyncRegs &regs);

/** Producer side of a full/empty variable: fence, then publish @p value. */
void emitSignal(AsmBuilder &b, Addr flag_addr, std::int64_t value,
                const SyncRegs &regs);

/** Consumer side: spin until the flag is >= @p value. */
void emitWaitGe(AsmBuilder &b, Addr flag_addr, std::int64_t value,
                const SyncRegs &regs);

} // namespace vip

#endif // VIP_KERNELS_SYNC_HH
