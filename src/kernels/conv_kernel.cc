#include "kernels/conv_kernel.hh"

#include "isa/builder.hh"
#include "kernels/emit_util.hh"
#include "pe/scratchpad.hh"
#include "sim/error.hh"
#include "sim/logging.hh"

namespace vip {

namespace {

// Register conventions for the conv pass.
constexpr unsigned RZ = 1;
constexpr unsigned RVLK = 2;    // k * zShard (window-column VL)
constexpr unsigned RMR = 3;     // F (matrix rows)
constexpr unsigned RFLEN = 4;   // F (accumulator VL / store length)
constexpr unsigned RZCLEN = 5;  // zShard (column-chunk load length)
constexpr unsigned RFILT0 = 6;  // sp addrs of the three kx matrices
constexpr unsigned RFILT1 = 7;
constexpr unsigned RFILT2 = 8;
constexpr unsigned RBIAS = 9;
constexpr unsigned RACCA = 10;  // acc ping-pong base / base+32
constexpr unsigned RACCB = 11;
constexpr unsigned RTMP1 = 12;
constexpr unsigned RTMP2 = 13;
constexpr unsigned RCOLBASE = 14;
constexpr unsigned RT = 15;
constexpr unsigned RT2 = 16;
constexpr unsigned RT3 = 17;
constexpr unsigned RT4 = 18;
constexpr unsigned RX = 20;
constexpr unsigned RXEND = 21;
constexpr unsigned RY = 22;
constexpr unsigned RYEND = 23;
constexpr unsigned RROWSTRIDE = 24;  // input row stride
constexpr unsigned RCOLSTRIDE = 25;  // input column stride
constexpr unsigned RCOLP = 26;       // leading column load pointer
constexpr unsigned ROUT = 27;
constexpr unsigned ROUTSTEP = 28;    // output column stride
constexpr unsigned RROWB_IN = 29;    // per-row window base (in)
constexpr unsigned RROWB_OUT = 30;   // per-row output base
constexpr unsigned RINROWADV = 31;
constexpr unsigned ROUTROWADV = 32;
constexpr unsigned RACCO = 34;       // current / previous accumulator
constexpr unsigned RACCP = 35;
constexpr unsigned RS0 = 36;         // window slot addresses
constexpr unsigned RS1 = 37;
constexpr unsigned RS2 = 38;
constexpr unsigned RS3 = 39;         // prefetch slot

constexpr unsigned kK = 3;  // the only generated kernel size

} // namespace

unsigned
convFiltersResident(unsigned z_shard, unsigned kernel)
{
    // Scratchpad budget: filters (k matrices of F x k*z) + bias +
    // 4 accumulato/temp vectors (32 B each) + (k+1) column slots.
    const unsigned cols = (kernel + 1) * kernel * z_shard * 2;
    const unsigned misc = 5 * 32;
    if (cols + misc >= Scratchpad::kBytes) {
        throw ConfigError(
            "conv z shard of " + std::to_string(z_shard) +
            " channels needs " + std::to_string(cols + misc) +
            " B of scratchpad for column slots alone (capacity " +
            std::to_string(Scratchpad::kBytes) +
            " B); shard the input channels further");
    }
    const unsigned left = Scratchpad::kBytes - cols - misc;
    const unsigned per_filter = kernel * kernel * z_shard * 2;
    // The parity-pair accumulators are sized to the group; cap at 32
    // filters (64 B buffers) to bound their scratchpad share.
    return std::min(32u, std::max(1u, left / per_filter));
}

std::vector<Fx16>
packFilters(const std::vector<Fx16> &filters, unsigned in_channels,
            unsigned kernel, unsigned filter_offset, unsigned num_filters,
            unsigned z_offset, unsigned z_shard)
{
    std::vector<Fx16> blob;
    blob.reserve(static_cast<std::size_t>(kernel) * num_filters * kernel *
                 z_shard);
    const auto filter_stride =
        static_cast<std::size_t>(in_channels) * kernel * kernel;
    for (unsigned kx = 0; kx < kernel; ++kx) {
        for (unsigned f = 0; f < num_filters; ++f) {
            const Fx16 *filt = filters.data() +
                               (filter_offset + f) * filter_stride;
            for (unsigned ky = 0; ky < kernel; ++ky) {
                for (unsigned zc = 0; zc < z_shard; ++zc) {
                    const unsigned ic = z_offset + zc;
                    blob.push_back(
                        filt[(static_cast<std::size_t>(ic) * kernel + ky) *
                                 kernel +
                             kx]);
                }
            }
        }
    }
    return blob;
}

std::vector<Instruction>
genConvPass(const ConvJob &job)
{
    vip_assert(job.in && job.out, "job needs layouts");
    const unsigned zc = job.zShard;
    const unsigned F = job.filters;
    vip_assert(zc > 0 && F > 0 && job.width > 0 &&
                   job.rowEnd > job.rowBegin,
               "degenerate conv job");
    vip_assert(job.in->halo() >= 1, "conv input needs a halo");

    // Accumulator slot: the group's output vector rounded to a power
    // of two so parity selection is a single shift.
    unsigned acc_slot = 32;
    while (acc_slot < F * 2)
        acc_slot *= 2;
    unsigned acc_shift = 0;
    while ((1u << acc_shift) < acc_slot)
        ++acc_shift;

    vip_assert(job.width >= 2, "conv needs at least two output columns");

    // Scratchpad map. The accumulator/temp buffers are duplicated per
    // output-column parity: the m.v partials of column x stream while
    // column x-1's partials are combined, so nothing ever waits for
    // the vector pipe to drain in steady state.
    const unsigned mat_bytes = F * kK * zc * 2;
    const SpAddr sp_filt = 0;
    const SpAddr sp_bias = sp_filt + kK * mat_bytes;
    const SpAddr sp_acca = sp_bias + acc_slot;   // ACC x2 parities
    const SpAddr sp_accb = sp_acca + acc_slot;
    const SpAddr sp_tmp1 = sp_accb + acc_slot;   // TMP1 x2 parities
    const SpAddr sp_tmp1b = sp_tmp1 + acc_slot;
    const SpAddr sp_tmp2 = sp_tmp1b + acc_slot;  // TMP2 x2 parities
    const SpAddr sp_tmp2b = sp_tmp2 + acc_slot;
    const SpAddr sp_col = sp_tmp2b + acc_slot;
    const unsigned col_slot = kK * zc * 2;
    if (sp_col + 4 * col_slot > Scratchpad::kBytes) {
        throw ConfigError(
            "conv job does not fit the scratchpad: filters " +
            std::to_string(kK * mat_bytes) + " B + columns " +
            std::to_string(4 * col_slot) + " B exceed " +
            std::to_string(Scratchpad::kBytes) +
            " B; reduce filtersResident or the z shard");
    }

    // Parity-pair buffer registers.
    constexpr unsigned RTWO = 33;
    constexpr unsigned RTM1C = 40;
    constexpr unsigned RTM2C = 41;
    constexpr unsigned RTM1P = 42;
    constexpr unsigned RTM2P = 43;
    constexpr unsigned RTMP1B = 44;
    constexpr unsigned RTMP2B = 45;

    AsmBuilder b;
    b.movImm(RZ, 0);
    b.movImm(RTWO, 2);
    b.movImm(RVLK, kK * zc);
    b.movImm(RMR, F);
    b.movImm(RFLEN, F);
    b.movImm(RZCLEN, zc);
    b.movImm(RFILT0, sp_filt);
    b.movImm(RFILT1, sp_filt + mat_bytes);
    b.movImm(RFILT2, sp_filt + 2 * mat_bytes);
    b.movImm(RBIAS, sp_bias);
    b.movImm(RACCA, sp_acca);
    b.movImm(RACCB, sp_accb);
    b.movImm(RTMP1, sp_tmp1);
    b.movImm(RTMP1B, sp_tmp1b);
    b.movImm(RTMP2, sp_tmp2);
    b.movImm(RTMP2B, sp_tmp2b);
    b.movImm(RCOLBASE, sp_col);
    b.setVl(RVLK);
    b.setMr(RMR);

    // Group-loop registers: walking filter/bias pointers and the
    // per-group output base (each group covers F more out channels).
    constexpr unsigned RGRP = 46;
    constexpr unsigned RGRPEND = 47;
    constexpr unsigned RROWB_IN0 = 48;
    constexpr unsigned RROWB_OUT0 = 49;
    constexpr unsigned RFILTP = 50;
    constexpr unsigned RBIASP = 51;
    constexpr unsigned RBLOBLEN = 52;

    b.movImm(RFILTP, static_cast<std::int64_t>(job.filterBlob));
    b.movImm(RBIASP, static_cast<std::int64_t>(job.biasBlob));
    b.movImm(RBLOBLEN, static_cast<std::int64_t>(kK) * F * kK * zc);
    b.movImm(RGRP, 0);
    b.movImm(RGRPEND, job.groups);

    b.movImm(RROWSTRIDE,
             static_cast<std::int64_t>(job.in->rowStrideBytes()));
    b.movImm(RCOLSTRIDE,
             static_cast<std::int64_t>(job.in->colStrideBytes()));
    b.movImm(ROUTSTEP,
             static_cast<std::int64_t>(job.out->colStrideBytes()));
    b.movImm(RINROWADV,
             static_cast<std::int64_t>(job.in->rowStrideBytes()));
    b.movImm(ROUTROWADV,
             static_cast<std::int64_t>(job.out->rowStrideBytes()));

    // Per-row bases: window column wx=-1 starts at input (-1, y-1).
    b.movImm(RROWB_IN0,
             static_cast<std::int64_t>(job.in->atSigned(
                 -1, static_cast<int>(job.rowBegin) - 1, job.zOffset)));
    b.movImm(RROWB_OUT0,
             static_cast<std::int64_t>(
                 job.out->at(0, job.rowBegin, job.filterOffset)));
    b.movImm(RYEND, job.rowEnd);
    b.movImm(RXEND, job.width);

    const auto group_top = b.newLabel();
    b.bind(group_top);

    // Bring in this group's filters (and bias); the ARC holds the
    // first m.v until they land. Drain first: the previous group's
    // last m.v must not still be streaming out of the filter region.
    b.vdrain();
    b.ldSram(RFILT0, RFILTP, RBLOBLEN);
    b.scalarImm(ScalarOp::Sll, RT, RBLOBLEN, 1);
    b.scalar(ScalarOp::Add, RFILTP, RFILTP, RT);
    if (job.finalize) {
        b.ldSram(RBIAS, RBIASP, RFLEN);
        b.addImm(RBIASP, RBIASP, 2ll * F);
    }
    b.mov(RROWB_IN, RROWB_IN0);
    b.mov(RROWB_OUT, RROWB_OUT0);
    b.movImm(RY, job.rowBegin);

    const auto row_top = b.newLabel();
    b.bind(row_top);

    b.mov(RCOLP, RROWB_IN);
    b.mov(ROUT, RROWB_OUT);
    b.movImm(RX, 0);

    // Row prologue: load window columns wx = -1, 0, 1 into slots 0..2.
    // A column-major input makes each 1 x k x z column one contiguous
    // transfer; a row-major one needs a chunk per window row.
    for (unsigned s = 0; s < 3; ++s) {
        b.movImm(RS0, sp_col + s * col_slot);
        if (job.in->colMajor()) {
            b.ldSram(RS0, RCOLP, RVLK);
        } else {
            b.mov(RT, RCOLP);
            for (unsigned ky = 0; ky < kK; ++ky) {
                b.addImm(RT4, RS0, ky * zc * 2);
                b.ldSram(RT4, RT, RZCLEN);
                if (ky + 1 < kK)
                    b.scalar(ScalarOp::Add, RT, RT, RROWSTRIDE);
            }
        }
        b.scalar(ScalarOp::Add, RCOLP, RCOLP, RCOLSTRIDE);
    }

    const auto x_loop = b.newLabel();
    b.bind(x_loop);

    // Window slot addresses: slot(wx) = (wx + 1) & 3.
    const unsigned slot_regs[4] = {RS0, RS1, RS2, RS3};
    for (unsigned j = 0; j < 4; ++j) {
        b.addImm(RT, RX, j);
        b.scalarImm(ScalarOp::And, RT, RT, 3);
        emitMulConst(b, RT2, RT, col_slot, RT3);
        b.scalar(ScalarOp::Add, slot_regs[j], RT2, RCOLBASE);
    }

    // Parity-selected buffers: current (written by this column's m.v
    // stream) and previous (finalized below while the stream runs).
    b.scalarImm(ScalarOp::And, RT, RX, 1);
    b.scalarImm(ScalarOp::Sll, RT, RT, acc_shift);
    b.scalar(ScalarOp::Add, RACCO, RT, RACCA);
    b.scalar(ScalarOp::Sub, RACCP, RACCB, RT);
    b.scalar(ScalarOp::Add, RTM1C, RT, RTMP1);
    b.scalar(ScalarOp::Sub, RTM1P, RTMP1B, RT);
    b.scalar(ScalarOp::Add, RTM2C, RT, RTMP2);
    b.scalar(ScalarOp::Sub, RTM2P, RTMP2B, RT);

    // Store column x-2's finalized output (same parity as x) before
    // the m.v stream overwrites its accumulator.
    const auto no_store = b.newLabel();
    b.branch(BranchCond::Lt, RX, RTWO, no_store);
    b.stSram(RACCO, ROUT, RFLEN);
    b.scalar(ScalarOp::Add, ROUT, ROUT, ROUTSTEP);
    b.bind(no_store);

    // Apply the three filter columns to the window (Eq. 5a/5b).
    b.mv(VecOp::Mul, RedOp::Add, RACCO, RFILT0, RS0);
    b.mv(VecOp::Mul, RedOp::Add, RTM1C, RFILT1, RS1);
    b.mv(VecOp::Mul, RedOp::Add, RTM2C, RFILT2, RS2);

    // Prefetch the next window column while the filters run.
    if (job.in->colMajor()) {
        b.ldSram(RS3, RCOLP, RVLK);
    } else {
        b.mov(RT, RCOLP);
        for (unsigned ky = 0; ky < kK; ++ky) {
            b.addImm(RT4, RS3, ky * zc * 2);
            b.ldSram(RT4, RT, RZCLEN);
            if (ky + 1 < kK)
                b.scalar(ScalarOp::Add, RT, RT, RROWSTRIDE);
        }
    }
    b.scalar(ScalarOp::Add, RCOLP, RCOLP, RCOLSTRIDE);

    // Combine column x-1's partials (Eq. 5c/5d): they finished while
    // this column streamed, so no drain is needed — the classic
    // software-pipelined schedule the exposed-latency ISA demands.
    const auto no_fin = b.newLabel();
    b.branch(BranchCond::Eq, RX, RZ, no_fin);
    b.setVl(RFLEN);
    b.vv(VecOp::Add, RACCP, RACCP, RTM1P);
    b.vv(VecOp::Add, RACCP, RACCP, RTM2P);
    if (job.finalize) {
        b.vv(VecOp::Add, RACCP, RACCP, RBIAS);
        b.vs(VecOp::Max, RACCP, RACCP, RZ);
    }
    b.setVl(RVLK);
    b.bind(no_fin);

    b.addImm(RX, RX, 1);
    b.branch(BranchCond::Lt, RX, RXEND, x_loop);

    // Row epilogue: finalize the last column, then flush the last two
    // outputs (one drain per row, not per column).
    const unsigned last_par = (job.width - 1) & 1;
    b.vdrain();
    b.movImm(RT, sp_acca + last_par * acc_slot);
    b.movImm(RT2, sp_tmp1 + last_par * acc_slot);
    b.movImm(RT3, sp_tmp2 + last_par * acc_slot);
    b.setVl(RFLEN);
    b.vv(VecOp::Add, RT, RT, RT2);
    b.vv(VecOp::Add, RT, RT, RT3);
    if (job.finalize) {
        b.vv(VecOp::Add, RT, RT, RBIAS);
        b.vs(VecOp::Max, RT, RT, RZ);
    }
    b.setVl(RVLK);
    b.movImm(RT2, sp_acca + ((job.width - 2) & 1) * acc_slot);
    b.stSram(RT2, ROUT, RFLEN);
    b.scalar(ScalarOp::Add, ROUT, ROUT, ROUTSTEP);
    b.vdrain();
    b.stSram(RT, ROUT, RFLEN);

    b.scalar(ScalarOp::Add, RROWB_IN, RROWB_IN, RINROWADV);
    b.scalar(ScalarOp::Add, RROWB_OUT, RROWB_OUT, ROUTROWADV);
    b.addImm(RY, RY, 1);
    b.branch(BranchCond::Lt, RY, RYEND, row_top);

    // Next filter group covers the next F output channels.
    b.addImm(RROWB_OUT0, RROWB_OUT0, 2ll * F);
    b.addImm(RGRP, RGRP, 1);
    b.branch(BranchCond::Lt, RGRP, RGRPEND, group_top);

    b.memfence();
    b.halt();
    return b.finish();
}

std::vector<Fx16>
makeBiasRow(const std::vector<Fx16> &bias, unsigned chunk_elems)
{
    vip_assert(!bias.empty() && chunk_elems % bias.size() == 0,
               "chunk must be a whole number of channel vectors");
    std::vector<Fx16> row(chunk_elems);
    for (unsigned i = 0; i < chunk_elems; ++i)
        row[i] = bias[i % bias.size()];
    return row;
}

std::vector<Instruction>
genConvAccum(const ConvAccumJob &job)
{
    const auto S = static_cast<unsigned>(job.partials.size());
    vip_assert(S >= 2 && job.out && job.chunkElems > 0 &&
                   job.chunksPerRow > 0,
               "degenerate accumulation job");
    vip_assert(S <= 16, "too many shards for the register map");

    const unsigned chunk_bytes = job.chunkElems * 2;
    const SpAddr sp_biasrow = 0;
    const SpAddr sp_acc = sp_biasrow + chunk_bytes;
    const SpAddr sp_tmp = sp_acc + chunk_bytes;
    if (sp_tmp + chunk_bytes > Scratchpad::kBytes) {
        throw ConfigError(
            "conv accumulation chunk of " +
            std::to_string(job.chunkElems) + " elements needs " +
            std::to_string(sp_tmp + chunk_bytes) +
            " B of scratchpad (capacity " +
            std::to_string(Scratchpad::kBytes) +
            " B); lower chunkElems");
    }

    // r40 + s: per-shard row pointers.
    constexpr unsigned RPART0 = 40;
    constexpr unsigned RCHUNKS = 33;

    AsmBuilder b;
    b.movImm(RZ, 0);
    b.movImm(RVLK, job.chunkElems);
    b.setVl(RVLK);
    b.movImm(RACCA, sp_acc);
    b.movImm(RTMP1, sp_tmp);
    b.movImm(RBIAS, sp_biasrow);

    b.movImm(RT, static_cast<std::int64_t>(job.biasRowBlob));
    b.ldSram(RBIAS, RT, RVLK);

    for (unsigned s = 0; s < S; ++s) {
        b.movImm(RPART0 + s,
                 static_cast<std::int64_t>(
                     job.partials[s]->at(0, job.rowBegin)));
    }
    b.movImm(ROUT, static_cast<std::int64_t>(
                       job.out->at(0, job.rowBegin)));
    b.movImm(RY, job.rowBegin);
    b.movImm(RYEND, job.rowEnd);
    b.movImm(RCHUNKS, job.chunksPerRow);
    // Row-stride corrections applied after each row: the chunk loop
    // advances pointers by a full row of data; halos (if any) need the
    // difference added.
    const std::int64_t row_data =
        static_cast<std::int64_t>(job.chunkElems) * job.chunksPerRow * 2;
    b.movImm(RINROWADV,
             static_cast<std::int64_t>(job.partials[0]->rowStrideBytes()) -
                 row_data);
    b.movImm(ROUTROWADV,
             static_cast<std::int64_t>(job.out->rowStrideBytes()) -
                 row_data);
    b.movImm(RT4, chunk_bytes);

    const auto row_top = b.newLabel();
    b.bind(row_top);
    b.movImm(RX, 0);

    const auto chunk_loop = b.newLabel();
    b.bind(chunk_loop);
    b.ldSram(RACCA, RPART0 + 0, RVLK);
    for (unsigned s = 1; s < S; ++s) {
        b.ldSram(RTMP1, RPART0 + s, RVLK);
        b.vv(VecOp::Add, RACCA, RACCA, RTMP1);
    }
    b.vv(VecOp::Add, RACCA, RACCA, RBIAS);
    b.vs(VecOp::Max, RACCA, RACCA, RZ);
    b.vdrain();
    b.stSram(RACCA, ROUT, RVLK);
    for (unsigned s = 0; s < S; ++s)
        b.scalar(ScalarOp::Add, RPART0 + s, RPART0 + s, RT4);
    b.scalar(ScalarOp::Add, ROUT, ROUT, RT4);
    b.addImm(RX, RX, 1);
    b.branch(BranchCond::Lt, RX, RCHUNKS, chunk_loop);

    for (unsigned s = 0; s < S; ++s)
        b.scalar(ScalarOp::Add, RPART0 + s, RPART0 + s, RINROWADV);
    b.scalar(ScalarOp::Add, ROUT, ROUT, ROUTROWADV);
    b.addImm(RY, RY, 1);
    b.branch(BranchCond::Lt, RY, RYEND, row_top);

    b.memfence();
    b.halt();
    return b.finish();
}

} // namespace vip
