#include "kernels/bp_kernel.hh"

#include "isa/builder.hh"
#include "kernels/sync.hh"
#include "sim/logging.hh"

namespace vip {

namespace {

// --- Register conventions (see header) -------------------------------
constexpr unsigned RZ = 1;        // constant 0
constexpr unsigned RVL = 2;       // L
constexpr unsigned RMR = 3;       // L
constexpr unsigned RSTRIDE = 4;   // sequential stride (bytes, signed)
constexpr unsigned RLSTRIDE = 5;  // lane stride (bytes)
constexpr unsigned RSM = 6;       // sp addr of smoothness matrix
constexpr unsigned RTH = 7;       // sp addr of theta-hat
constexpr unsigned RCH0 = 8;      // sp addr of chain buffer 0
constexpr unsigned RCH32 = 9;     // sp addr of chain buffer 1
constexpr unsigned RS = 10;       // slot/working vector A
constexpr unsigned RS1 = 11;      // slot/working vector B
constexpr unsigned RS2 = 12;      // slot/working vector C
constexpr unsigned RCHO = 13;     // chain-out address
constexpr unsigned RCHI = 14;     // chain-in address
constexpr unsigned RT = 15;       // temporary
constexpr unsigned RT2 = 16;      // temporary
constexpr unsigned RSPBUF = 17;   // slot buffer base
constexpr unsigned RT3 = 18;      // temporary
constexpr unsigned RBIG = 19;     // 8*L (RF packed load length)
constexpr unsigned RLD_A = 20;    // load pointer: data
constexpr unsigned RLD_B = 21;    // load pointer: cross message 1
constexpr unsigned RLD_C = 22;    // load pointer: cross message 2
constexpr unsigned ROUT = 23;     // store pointer
constexpr unsigned RY = 24;       // sequential counter
constexpr unsigned RYEND = 25;    // update count
constexpr unsigned RCB_CH = 26;   // lane base: chain init
constexpr unsigned RSEVEN = 27;   // constant 7 (RF store guard)
constexpr unsigned RLANE = 28;
constexpr unsigned RLANEEND = 29;
constexpr unsigned RCB_D = 30;    // lane bases
constexpr unsigned RCB_A = 31;
constexpr unsigned RCB_B = 32;
constexpr unsigned RCB_O = 33;
constexpr unsigned RGEN = 34;     // barrier generation
constexpr unsigned RBA = 35;      // barrier temporaries
constexpr unsigned RBV = 36;
constexpr unsigned RITER = 37;
constexpr unsigned RITEREND = 38;
constexpr unsigned RRED = 39;     // sp addr of reduction buffer
constexpr unsigned RSROW = 40;    // walking smoothness-row address
constexpr unsigned RPK_A = 45;    // RF packed slot bases
constexpr unsigned RPK_B = 46;
constexpr unsigned RPK_C = 47;
constexpr unsigned RPK_O = 48;
constexpr unsigned RSTR8 = 58;    // 8 * seq stride
// r50..r53: halving VL values; r54..r57: RRED + half*2 addresses.
constexpr unsigned RHALF0 = 50;
constexpr unsigned RHADDR0 = 54;
// Normalization (BpVariant::normalize).
constexpr unsigned RZMAT = 59;    // sp address of the all-zero matrix
constexpr unsigned RCBC = 60;     // sp address of the broadcast vector
constexpr unsigned RNB = 61;      // normalization anchor width

// --- Scratchpad map ---------------------------------------------------
constexpr SpAddr SP_SM = 0;       // smoothness, <= 512 B (L <= 16)
constexpr SpAddr SP_TH = 512;
constexpr SpAddr SP_CH = 544;     // two 32 B chain buffers
constexpr SpAddr SP_RED = 608;    // 64 B (reduction + overrun pad)
constexpr SpAddr SP_BUF = 672;    // 4 slots x 128 B (scratchpad mode)
constexpr SpAddr SP_ZMAT = 1184;  // all-zero L x L matrix (never
                                  // written; the scratchpad powers up
                                  // zeroed) for min broadcasting
constexpr SpAddr SP_CBC = 1696;   // broadcast min(chain) vector
constexpr SpAddr SP_WRK = 672;    // 3 working vectors (RF mode)
constexpr SpAddr SP_PK_A = 1024;  // RF double-buffered packed slots,
constexpr SpAddr SP_PK_B = 1536;  // 512 B each
constexpr SpAddr SP_PK_C = 2048;
constexpr SpAddr SP_PK_O = 2560;  // RF output pack, 256 B

struct SweepPlan
{
    Addr ldA0, ldB0, ldC0;
    Addr out0;
    Addr chain0;
    std::int64_t seqStride;
    std::int64_t laneStride;
    unsigned count;
    unsigned lanes;
    bool chainFirst;
};

SweepPlan
planSweep(const MrfDramLayout &lay, const BpSweepJob &job)
{
    const unsigned W = lay.width(), H = lay.height();
    vip_assert(job.laneEnd > job.laneBegin, "empty lane range");
    SweepPlan p{};
    p.lanes = job.laneEnd - job.laneBegin;
    const auto row = static_cast<std::int64_t>(lay.rowStrideBytes());
    const auto col = static_cast<std::int64_t>(lay.colStrideBytes());
    const unsigned lb = job.laneBegin;

    switch (job.dir) {
      case SweepDir::Down:
        vip_assert(job.laneEnd <= W, "lane range exceeds width");
        p.count = H - 1;
        p.ldA0 = lay.dataAddr(lb, 0);
        p.ldB0 = lay.msgAddr(FromLeft, lb, 0);
        p.ldC0 = lay.msgAddr(FromRight, lb, 0);
        p.out0 = lay.msgAddr(FromUp, lb, 1);
        p.chain0 = lay.msgAddr(FromUp, lb, 0);
        p.seqStride = row;
        p.laneStride = col;
        p.chainFirst = false;
        break;
      case SweepDir::Up:
        vip_assert(job.laneEnd <= W, "lane range exceeds width");
        p.count = H - 1;
        p.ldA0 = lay.dataAddr(lb, H - 1);
        p.ldB0 = lay.msgAddr(FromLeft, lb, H - 1);
        p.ldC0 = lay.msgAddr(FromRight, lb, H - 1);
        p.out0 = lay.msgAddr(FromDown, lb, H - 2);
        p.chain0 = lay.msgAddr(FromDown, lb, H - 1);
        p.seqStride = -row;
        p.laneStride = col;
        p.chainFirst = false;
        break;
      case SweepDir::Right:
        vip_assert(job.laneEnd <= H, "lane range exceeds height");
        p.count = W - 1;
        p.ldA0 = lay.dataAddr(0, lb);
        p.ldB0 = lay.msgAddr(FromUp, 0, lb);
        p.ldC0 = lay.msgAddr(FromDown, 0, lb);
        p.out0 = lay.msgAddr(FromLeft, 1, lb);
        p.chain0 = lay.msgAddr(FromLeft, 0, lb);
        p.seqStride = col;
        p.laneStride = row;
        p.chainFirst = true;
        break;
      case SweepDir::Left:
        vip_assert(job.laneEnd <= H, "lane range exceeds height");
        p.count = W - 1;
        p.ldA0 = lay.dataAddr(W - 1, lb);
        p.ldB0 = lay.msgAddr(FromUp, W - 1, lb);
        p.ldC0 = lay.msgAddr(FromDown, W - 1, lb);
        p.out0 = lay.msgAddr(FromRight, W - 2, lb);
        p.chain0 = lay.msgAddr(FromRight, W - 1, lb);
        p.seqStride = -col;
        p.laneStride = row;
        p.chainFirst = true;
        break;
    }
    return p;
}

bool
isPow2(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

unsigned
log2u(unsigned v)
{
    unsigned l = 0;
    while ((1u << l) < v)
        ++l;
    return l;
}

/** Emit the per-program constant setup (once per program). */
void
emitProgramInit(AsmBuilder &b, const MrfDramLayout &lay,
                const BpVariant &var)
{
    const unsigned L = lay.labels();
    vip_assert(L >= 2 && L <= 16, "BP kernel supports 2..16 labels");
    if (!var.reduction)
        vip_assert(isPow2(L),
                   "software reduction requires a power-of-two L");

    b.movImm(RZ, 0);
    b.movImm(RVL, L);
    b.movImm(RMR, L);
    b.movImm(RSM, SP_SM);
    b.movImm(RTH, SP_TH);
    b.movImm(RCH0, SP_CH);
    b.movImm(RCH32, SP_CH + 32);
    b.setVl(RVL);
    b.setMr(RMR);

    // Load the smoothness matrix once; it stays resident.
    b.movImm(RT, static_cast<std::int64_t>(L) * L);
    b.movImm(RT2, static_cast<std::int64_t>(lay.smoothAddr()));
    b.ldSram(RSM, RT2, RT);

    if (var.registerFile) {
        b.movImm(RS, SP_WRK);
        b.movImm(RS1, SP_WRK + 32);
        b.movImm(RS2, SP_WRK + 64);
        b.movImm(RPK_A, SP_PK_A);
        b.movImm(RPK_B, SP_PK_B);
        b.movImm(RPK_C, SP_PK_C);
        b.movImm(RPK_O, SP_PK_O);
        b.movImm(RSEVEN, 7);
        b.movImm(RBIG, 8ll * L);
    } else {
        b.movImm(RSPBUF, SP_BUF);
    }

    if (!var.reduction) {
        b.movImm(RRED, SP_RED);
        const unsigned steps = log2u(L);
        unsigned half = L / 2;
        for (unsigned k = 0; k < steps; ++k) {
            b.movImm(RHALF0 + k, half);
            b.movImm(RHADDR0 + k, SP_RED + half * 2);
            half /= 2;
        }
    }

    if (var.normalize) {
        vip_assert(var.reduction && !var.registerFile,
                   "normalization needs the reduction unit and the "
                   "scratchpad configuration");
        b.movImm(RZMAT, SP_ZMAT);
        b.movImm(RCBC, SP_CBC);
        b.movImm(RNB, std::min(L, kBpNormWidth));
    }
}

/** Emit theta-hat computation and the message reduction into RCHO. */
void
emitCompute(AsmBuilder &b, const MrfDramLayout &lay, const BpVariant &var,
            bool chain_first)
{
    const unsigned L = lay.labels();

    if (chain_first) {
        b.vv(VecOp::Add, RTH, RS, RCHI);   // data + chained message
        b.vv(VecOp::Add, RTH, RTH, RS1);
        b.vv(VecOp::Add, RTH, RTH, RS2);
    } else {
        b.vv(VecOp::Add, RTH, RS, RS1);
        b.vv(VecOp::Add, RTH, RTH, RS2);
        b.vv(VecOp::Add, RTH, RTH, RCHI); // chained message last
    }

    if (var.reduction) {
        // The paper's composed operation (Fig. 2 line 7).
        b.mv(VecOp::Add, RedOp::Min, RCHO, RSM, RTH);
        return;
    }

    // Fig. 4 ablation: divide-and-conquer software reduction per
    // output label on the vertical unit only.
    const unsigned steps = log2u(L);
    b.mov(RSROW, RSM);
    for (unsigned lo = 0; lo < L; ++lo) {
        b.vv(VecOp::Add, RRED, RSROW, RTH);  // S row + theta-hat
        for (unsigned k = 0; k < steps; ++k) {
            b.setVl(RHALF0 + k);
            b.vv(VecOp::Min, RRED, RRED, RHADDR0 + k);
        }
        // VL is now 1: copy the surviving scalar into the message.
        b.addImm(RT, RCHO, 2ll * lo);
        b.vs(VecOp::Add, RT, RRED, RZ);
        b.setVl(RVL);
        b.addImm(RSROW, RSROW, 2ll * L);
    }
}

/** Emit one full sweep (lane loop + pipelined sequential loop). */
void
emitSweep(AsmBuilder &b, const MrfDramLayout &lay, const BpVariant &var,
          const BpSweepJob &job)
{
    const SweepPlan p = planSweep(lay, job);
    const unsigned L = lay.labels();
    vip_assert(p.count >= 1, "sweep needs at least one update");
    if (var.registerFile) {
        vip_assert(p.seqStride ==
                       static_cast<std::int64_t>(lay.colStrideBytes()),
                   "register-file variant needs a sequentially "
                   "contiguous layout (use SweepDir::Right)");
    }

    b.movImm(RSTRIDE, p.seqStride);
    b.movImm(RLSTRIDE, p.laneStride);
    if (var.registerFile)
        b.movImm(RSTR8, 8 * p.seqStride);
    b.movImm(RCB_D, static_cast<std::int64_t>(p.ldA0));
    b.movImm(RCB_A, static_cast<std::int64_t>(p.ldB0));
    b.movImm(RCB_B, static_cast<std::int64_t>(p.ldC0));
    b.movImm(RCB_O, static_cast<std::int64_t>(p.out0));
    b.movImm(RCB_CH, static_cast<std::int64_t>(p.chain0));
    b.movImm(RLANE, 0);
    b.movImm(RLANEEND, p.lanes);
    b.movImm(RYEND, p.count);

    const auto lane_top = b.newLabel();
    b.bind(lane_top);

    b.mov(RLD_A, RCB_D);
    b.mov(RLD_B, RCB_A);
    b.mov(RLD_C, RCB_B);
    b.mov(ROUT, RCB_O);
    // Chain-in for iteration 0 comes from DRAM (it may be seeded, e.g.
    // by hierarchical BP's copy phase).
    b.ldSram(RCH32, RCB_CH, RVL);
    b.movImm(RY, 0);

    const unsigned pd = var.prefetchDepth;
    vip_assert(pd >= 1 && pd <= 4, "prefetch depth must be 1..4");
    if (!var.registerFile) {
        // Software-pipeline prologue: prefetch slots for i = 0..pd-1.
        for (unsigned pf = 0; pf < pd; ++pf) {
            b.movImm(RS, SP_BUF + pf * 128);
            b.addImm(RS1, RS, 32);
            b.addImm(RS2, RS, 64);
            b.ldSram(RS, RLD_A, RVL);
            b.ldSram(RS1, RLD_B, RVL);
            b.ldSram(RS2, RLD_C, RVL);
            b.scalar(ScalarOp::Add, RLD_A, RLD_A, RSTRIDE);
            b.scalar(ScalarOp::Add, RLD_B, RLD_B, RSTRIDE);
            b.scalar(ScalarOp::Add, RLD_C, RLD_C, RSTRIDE);
        }
    } else {
        // RF prologue: one contiguous 256 B load per operand fills
        // bank 0 with eight packed vectors (rows 0..7).
        b.ldSram(RPK_A, RLD_A, RBIG);
        b.ldSram(RPK_B, RLD_B, RBIG);
        b.ldSram(RPK_C, RLD_C, RBIG);
        b.scalar(ScalarOp::Add, RLD_A, RLD_A, RSTR8);
        b.scalar(ScalarOp::Add, RLD_B, RLD_B, RSTR8);
        b.scalar(ScalarOp::Add, RLD_C, RLD_C, RSTR8);
    }

    const auto loop_top = b.newLabel();
    b.bind(loop_top);

    if (!var.registerFile) {
        // Slot and chain addressing.
        b.scalarImm(ScalarOp::And, RT, RY, 3);
        b.scalarImm(ScalarOp::Sll, RT, RT, 7);
        b.scalar(ScalarOp::Add, RS, RT, RSPBUF);
        b.addImm(RS1, RS, 32);
        b.addImm(RS2, RS, 64);
        b.scalarImm(ScalarOp::And, RT3, RY, 1);
        b.scalarImm(ScalarOp::Sll, RT3, RT3, 5);
        b.scalar(ScalarOp::Add, RCHO, RT3, RCH0);
        b.scalar(ScalarOp::Sub, RCHI, RCH32, RT3);

        if (var.normalize) {
            // Broadcast the anchor min(chain[0..kBpNormWidth)) via the
            // resident zero matrix (a short-VL m.v.add.min) and
            // subtract it from the chained message. Zero staleness,
            // no scalar round trip; min-sum BP is invariant to the
            // shift and 16-bit messages stay bounded (see BpState).
            b.setVl(RNB);
            b.mv(VecOp::Add, RedOp::Min, RCBC, RZMAT, RCHI);
            b.setVl(RVL);
            // The short reduction's tail is still in flight when its
            // occupancy clears; drain the two-cycle remainder.
            b.vdrain();
            b.vv(VecOp::Sub, RCHI, RCHI, RCBC);
        }

        // Deferred store: write out(i-1), which finished long ago (and
        // was just normalized, so the field holds normalized values).
        const auto no_store = b.newLabel();
        b.branch(BranchCond::Eq, RY, RZ, no_store);
        b.stSram(RCHI, ROUT, RVL);
        b.scalar(ScalarOp::Add, ROUT, ROUT, RSTRIDE);
        b.bind(no_store);

        emitCompute(b, lay, var, p.chainFirst);

        // Prefetch i+pd. At full depth that is the slot just consumed;
        // at shallower depths compute the (i+pd) & 3 slot explicitly.
        if (pd != 4) {
            b.addImm(RT, RY, pd);
            b.scalarImm(ScalarOp::And, RT, RT, 3);
            b.scalarImm(ScalarOp::Sll, RT, RT, 7);
            b.scalar(ScalarOp::Add, RS, RT, RSPBUF);
            b.addImm(RS1, RS, 32);
            b.addImm(RS2, RS, 64);
        }
        b.ldSram(RS, RLD_A, RVL);
        b.ldSram(RS1, RLD_B, RVL);
        b.ldSram(RS2, RLD_C, RVL);
        b.scalar(ScalarOp::Add, RLD_A, RLD_A, RSTRIDE);
        b.scalar(ScalarOp::Add, RLD_B, RLD_B, RSTRIDE);
        b.scalar(ScalarOp::Add, RLD_C, RLD_C, RSTRIDE);

    } else {
        // RF mode: reload the spare bank every 8 iterations. A packed
        // row is L*2 bytes; a bank of eight rows is 8*L*2 bytes.
        const unsigned row_shift = log2u(L * 2);
        b.scalarImm(ScalarOp::And, RT, RY, 7);
        b.scalarImm(ScalarOp::And, RT2, RY, 15);
        b.scalarImm(ScalarOp::Sll, RT2, RT2, row_shift);

        const auto no_load = b.newLabel();
        b.branch(BranchCond::Ne, RT, RZ, no_load);
        b.scalarImm(ScalarOp::Srl, RT3, RY, 3);
        b.scalarImm(ScalarOp::And, RT3, RT3, 1);
        b.scalarImm(ScalarOp::Xor, RT3, RT3, 1);
        b.scalarImm(ScalarOp::Sll, RT3, RT3, row_shift + 3);
        b.scalar(ScalarOp::Add, RT, RT3, RPK_A);
        b.ldSram(RT, RLD_A, RBIG);
        b.scalar(ScalarOp::Add, RLD_A, RLD_A, RSTR8);
        b.scalar(ScalarOp::Add, RT, RT3, RPK_B);
        b.ldSram(RT, RLD_B, RBIG);
        b.scalar(ScalarOp::Add, RLD_B, RLD_B, RSTR8);
        b.scalar(ScalarOp::Add, RT, RT3, RPK_C);
        b.ldSram(RT, RLD_C, RBIG);
        b.scalar(ScalarOp::Add, RLD_C, RLD_C, RSTR8);
        b.bind(no_load);

        // Unpack the three operands into the working vectors.
        b.scalar(ScalarOp::Add, RT, RPK_A, RT2);
        b.vs(VecOp::Add, RS, RT, RZ);
        b.scalar(ScalarOp::Add, RT, RPK_B, RT2);
        b.vs(VecOp::Add, RS1, RT, RZ);
        b.scalar(ScalarOp::Add, RT, RPK_C, RT2);
        b.vs(VecOp::Add, RS2, RT, RZ);

        b.scalarImm(ScalarOp::And, RT3, RY, 1);
        b.scalarImm(ScalarOp::Sll, RT3, RT3, 5);
        b.scalar(ScalarOp::Add, RCHO, RT3, RCH0);
        b.scalar(ScalarOp::Sub, RCHI, RCH32, RT3);

        // Deferred store path: repack out(i-1); flush every 8th.
        const auto no_store = b.newLabel();
        const auto no_flush = b.newLabel();
        b.branch(BranchCond::Eq, RY, RZ, no_store);
        b.addImm(RT, RY, -1);
        b.scalarImm(ScalarOp::And, RT, RT, 7);
        b.scalarImm(ScalarOp::Sll, RT, RT, row_shift);
        b.scalar(ScalarOp::Add, RT, RT, RPK_O);
        b.vs(VecOp::Add, RT, RCHI, RZ);  // repack
        b.addImm(RT, RY, -1);
        b.scalarImm(ScalarOp::And, RT, RT, 7);
        b.branch(BranchCond::Ne, RT, RSEVEN, no_flush);
        b.stSram(RPK_O, ROUT, RBIG);
        b.scalar(ScalarOp::Add, ROUT, ROUT, RSTR8);
        b.bind(no_flush);
        b.bind(no_store);

        emitCompute(b, lay, var, p.chainFirst);
    }

    b.addImm(RY, RY, 1);
    b.branch(BranchCond::Lt, RY, RYEND, loop_top);

    // Epilogue: drain the vector pipe, then store the final output.
    b.vdrain();
    if (!var.registerFile) {
        b.movImm(RT, SP_CH + ((p.count - 1) & 1) * 32);
        b.stSram(RT, ROUT, RVL);
    } else {
        // Repack the final message, then flush the partial block.
        b.movImm(RT, SP_PK_O + ((p.count - 1) & 7) * 2 * L);
        b.movImm(RT2, SP_CH + ((p.count - 1) & 1) * 32);
        b.setVl(RVL);  // VL is L here already; explicit for clarity
        b.vs(VecOp::Add, RT, RT2, RZ);
        b.vdrain();
        b.movImm(RT, (((p.count - 1) & 7) + 1) *
                         static_cast<std::int64_t>(L));
        b.stSram(RPK_O, ROUT, RT);
    }

    // Next lane.
    b.scalar(ScalarOp::Add, RCB_D, RCB_D, RLSTRIDE);
    b.scalar(ScalarOp::Add, RCB_A, RCB_A, RLSTRIDE);
    b.scalar(ScalarOp::Add, RCB_B, RCB_B, RLSTRIDE);
    b.scalar(ScalarOp::Add, RCB_O, RCB_O, RLSTRIDE);
    b.scalar(ScalarOp::Add, RCB_CH, RCB_CH, RLSTRIDE);
    b.addImm(RLANE, RLANE, 1);
    b.branch(BranchCond::Lt, RLANE, RLANEEND, lane_top);
}

} // namespace

std::vector<Instruction>
genBpSweep(const MrfDramLayout &layout, const BpVariant &variant,
           const BpSweepJob &job)
{
    AsmBuilder b;
    emitProgramInit(b, layout, variant);
    emitSweep(b, layout, variant, job);
    b.memfence();
    b.halt();
    return b.finish();
}

std::vector<Instruction>
genBpIterations(const MrfDramLayout &layout, const BpVariant &variant,
                const BpSweepJob (&jobs)[4], unsigned iterations,
                Addr flag_base, unsigned pe_index, unsigned num_pes)
{
    vip_assert(variant.reduction && !variant.registerFile,
               "full BP-M iterations are generated for the baseline "
               "configuration only (Fig. 4 variants use genBpSweep)");
    vip_assert(iterations >= 1, "need at least one iteration");

    AsmBuilder b;
    emitProgramInit(b, layout, variant);
    b.movImm(RGEN, 0);
    b.movImm(RITER, 0);
    b.movImm(RITEREND, iterations);

    const auto iter_top = b.newLabel();
    b.bind(iter_top);

    const SyncRegs sync{RGEN, RBA, RBV};
    static constexpr SweepDir order[4] = {SweepDir::Right, SweepDir::Left,
                                          SweepDir::Down, SweepDir::Up};
    for (const SweepDir dir : order) {
        const BpSweepJob &job = jobs[static_cast<unsigned>(dir)];
        vip_assert(job.dir == dir, "jobs[] must be indexed by SweepDir");
        if (job.laneEnd > job.laneBegin)
            emitSweep(b, layout, variant, job);
        else
            b.memfence();  // idle PE still participates in the barrier
        emitBarrier(b, flag_base, pe_index, num_pes, sync);
    }

    b.addImm(RITER, RITER, 1);
    b.branch(BranchCond::Lt, RITER, RITEREND, iter_top);
    b.memfence();
    b.halt();
    return b.finish();
}

} // namespace vip
