/**
 * @file
 * Kernels for hierarchical BP-M's construct and copy phases
 * (Sec. VI-A): construct pools 2x2 neighborhoods of data-cost vectors
 * into the quarter-resolution MRF by saturating vector addition ("the
 * construct operation simply adds four vectors"); copy seeds every
 * fine-grid message with its coarse parent's, a pure fan-out of
 * vector stores. Both are bandwidth-bound streaming kernels — their
 * roofline placement in Fig. 3a is the paper's own observation.
 */

#ifndef VIP_KERNELS_HIER_KERNEL_HH
#define VIP_KERNELS_HIER_KERNEL_HH

#include <vector>

#include "isa/isa.hh"
#include "kernels/layout.hh"

namespace vip {

/** One PE's slice of the construct phase. */
struct ConstructJob
{
    const MrfDramLayout *fine = nullptr;
    const MrfDramLayout *coarse = nullptr;
    unsigned rowBegin = 0;  ///< coarse rows [rowBegin, rowEnd)
    unsigned rowEnd = 0;
};

/** Generate the construct program (ends in halt).
 *  @pre the fine grid's dimensions are even. */
std::vector<Instruction> genConstruct(const ConstructJob &job);

/** One PE's slice of the copy (message upsampling) phase. */
struct CopyJob
{
    const MrfDramLayout *coarse = nullptr;
    const MrfDramLayout *fine = nullptr;
    unsigned rowBegin = 0;  ///< fine rows [rowBegin, rowEnd)
    unsigned rowEnd = 0;
};

/** Generate the copy program (ends in halt). */
std::vector<Instruction> genCopyMessages(const CopyJob &job);

} // namespace vip

#endif // VIP_KERNELS_HIER_KERNEL_HH
