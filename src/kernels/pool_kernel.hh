/**
 * @file
 * Max-pooling kernel generator (2x2, stride 2 — every VGG pool).
 *
 * With the channel-last layout, a pooled output pixel is the
 * element-wise v.v.max of four input pixel vectors. Channels are
 * chunked so four input vectors plus the result fit the scratchpad;
 * the next pixel's loads are issued before the current maxes so the
 * (memory-bound, per the paper's roofline) kernel keeps requests in
 * flight.
 */

#ifndef VIP_KERNELS_POOL_KERNEL_HH
#define VIP_KERNELS_POOL_KERNEL_HH

#include <vector>

#include "isa/isa.hh"
#include "kernels/layout.hh"

namespace vip {

struct PoolJob
{
    const FmapDramLayout *in = nullptr;
    const FmapDramLayout *out = nullptr;
    unsigned rowBegin = 0;    ///< output rows [rowBegin, rowEnd)
    unsigned rowEnd = 0;
    unsigned width = 0;       ///< output row width
    unsigned chunk = 0;       ///< channels per vector chunk
};

std::vector<Instruction> genPool(const PoolJob &job);

} // namespace vip

#endif // VIP_KERNELS_POOL_KERNEL_HH
