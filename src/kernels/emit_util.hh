/**
 * @file
 * Small shared helpers for kernel generators.
 */

#ifndef VIP_KERNELS_EMIT_UTIL_HH
#define VIP_KERNELS_EMIT_UTIL_HH

#include "isa/builder.hh"
#include "sim/logging.hh"

namespace vip {

/**
 * Emit dst = src * constant using the shift-and-add decomposition of
 * the constant's set bits (the ISA has no scalar multiply; the paper's
 * address arithmetic does the same). Clobbers @p tmp. dst must differ
 * from src and tmp.
 */
inline void
emitMulConst(AsmBuilder &b, unsigned dst, unsigned src, std::uint64_t c,
             unsigned tmp)
{
    vip_assert(dst != src && dst != tmp && src != tmp,
               "emitMulConst needs three distinct registers");
    if (c == 0) {
        b.movImm(dst, 0);
        return;
    }
    bool first = true;
    for (unsigned bit = 0; bit < 64; ++bit) {
        if (!(c & (1ull << bit)))
            continue;
        if (first) {
            b.scalarImm(ScalarOp::Sll, dst, src, bit);
            first = false;
        } else {
            b.scalarImm(ScalarOp::Sll, tmp, src, bit);
            b.scalar(ScalarOp::Add, dst, dst, tmp);
        }
    }
}

/** Number of instructions emitMulConst will emit for @p c. */
inline unsigned
mulConstCost(std::uint64_t c)
{
    const unsigned bits = static_cast<unsigned>(__builtin_popcountll(c));
    return bits == 0 ? 1 : 2 * bits - 1;
}

} // namespace vip

#endif // VIP_KERNELS_EMIT_UTIL_HH
