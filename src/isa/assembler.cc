#include "isa/assembler.hh"

#include <cctype>
#include <charconv>
#include <map>
#include <optional>
#include <sstream>

#include "sim/logging.hh"

namespace vip {

namespace {

struct ParseState
{
    unsigned line = 0;
    std::string error;

    void
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg;
    }

    bool ok() const { return error.empty(); }
};

std::string
trim(std::string_view s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

/** Strip `;` and `#` comments. */
std::string
stripComment(std::string_view s)
{
    const auto pos = s.find_first_of(";#");
    return trim(pos == std::string_view::npos ? s : s.substr(0, pos));
}

/** Split "a, b, c" into trimmed operand strings. */
std::vector<std::string>
splitOperands(std::string_view s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const auto comma = s.find(',', start);
        if (comma == std::string_view::npos) {
            const auto piece = trim(s.substr(start));
            if (!piece.empty())
                out.push_back(piece);
            break;
        }
        out.push_back(trim(s.substr(start, comma - start)));
        start = comma + 1;
    }
    return out;
}

std::optional<unsigned>
parseReg(const std::string &tok)
{
    if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R'))
        return std::nullopt;
    unsigned v = 0;
    auto [p, ec] = std::from_chars(tok.data() + 1, tok.data() + tok.size(),
                                   v);
    if (ec != std::errc() || p != tok.data() + tok.size() ||
        v >= kNumScalarRegs) {
        return std::nullopt;
    }
    return v;
}

std::optional<std::int64_t>
parseImm(const std::string &tok)
{
    if (tok.empty())
        return std::nullopt;
    std::int64_t sign = 1;
    std::size_t i = 0;
    if (tok[0] == '-') {
        sign = -1;
        i = 1;
    } else if (tok[0] == '+') {
        i = 1;
    }
    int base = 10;
    if (tok.size() > i + 1 && tok[i] == '0' &&
        (tok[i + 1] == 'x' || tok[i + 1] == 'X')) {
        base = 16;
        i += 2;
    }
    std::int64_t v = 0;
    auto [p, ec] = std::from_chars(tok.data() + i, tok.data() + tok.size(),
                                   v, base);
    if (ec != std::errc() || p != tok.data() + tok.size())
        return std::nullopt;
    return sign * v;
}

/**
 * Split the mnemonic into dot-separated parts and an optional width
 * tag, e.g. "m.v.add.min[16]" -> {"m","v","add","min"}, W16.
 */
bool
splitMnemonic(const std::string &tok, std::vector<std::string> &parts,
              ElemWidth &width, ParseState &st)
{
    std::string name = tok;
    width = ElemWidth::W16;
    const auto bracket = name.find('[');
    if (bracket != std::string::npos) {
        std::string tag = name.substr(bracket);
        name = name.substr(0, bracket);
        if (tag == "[8]" || tag == "[8-bit]") {
            width = ElemWidth::W8;
        } else if (tag == "[16]" || tag == "[16-bit]") {
            width = ElemWidth::W16;
        } else if (tag == "[32]" || tag == "[32-bit]") {
            width = ElemWidth::W32;
        } else if (tag == "[64]" || tag == "[64-bit]") {
            width = ElemWidth::W64;
        } else {
            st.fail("bad width tag '" + tag + "'");
            return false;
        }
    }
    parts.clear();
    std::size_t start = 0;
    while (start <= name.size()) {
        const auto dot = name.find('.', start);
        if (dot == std::string::npos) {
            parts.push_back(name.substr(start));
            break;
        }
        parts.push_back(name.substr(start, dot - start));
        start = dot + 1;
    }
    return true;
}

std::optional<VecOp>
parseVecOp(const std::string &s)
{
    if (s == "mul") return VecOp::Mul;
    if (s == "add") return VecOp::Add;
    if (s == "sub") return VecOp::Sub;
    if (s == "min") return VecOp::Min;
    if (s == "max") return VecOp::Max;
    if (s == "nop") return VecOp::Nop;
    return std::nullopt;
}

std::optional<RedOp>
parseRedOp(const std::string &s)
{
    if (s == "add") return RedOp::Add;
    if (s == "min") return RedOp::Min;
    if (s == "max") return RedOp::Max;
    return std::nullopt;
}

std::optional<ScalarOp>
parseScalarOp(const std::string &s)
{
    if (s == "add") return ScalarOp::Add;
    if (s == "sub") return ScalarOp::Sub;
    if (s == "sll") return ScalarOp::Sll;
    if (s == "srl") return ScalarOp::Srl;
    if (s == "sra") return ScalarOp::Sra;
    if (s == "and") return ScalarOp::And;
    if (s == "or") return ScalarOp::Or;
    if (s == "xor") return ScalarOp::Xor;
    return std::nullopt;
}

std::optional<BranchCond>
parseBranch(const std::string &s)
{
    if (s == "blt") return BranchCond::Lt;
    if (s == "bge") return BranchCond::Ge;
    if (s == "beq") return BranchCond::Eq;
    if (s == "bne") return BranchCond::Ne;
    return std::nullopt;
}

struct PendingLabel
{
    std::size_t instIndex;
    std::string label;
    unsigned line;
};

} // namespace

std::vector<Instruction>
assemble(std::string_view source, AssemblyError *error)
{
    std::vector<Instruction> prog;
    std::map<std::string, std::size_t> labels;
    std::vector<PendingLabel> fixups;
    ParseState st;

    std::istringstream in{std::string(source)};
    std::string raw;
    unsigned line_no = 0;
    unsigned error_line = 0;

    auto failAt = [&](const std::string &msg) {
        if (st.ok())
            error_line = line_no;
        st.fail(msg);
    };

    while (std::getline(in, raw) && st.ok()) {
        ++line_no;
        std::string text = stripComment(raw);
        if (text.empty())
            continue;

        // Labels (possibly followed by an instruction on the same line).
        while (true) {
            const auto colon = text.find(':');
            if (colon == std::string::npos)
                break;
            const std::string label = trim(text.substr(0, colon));
            if (label.empty() || label.find(' ') != std::string::npos) {
                failAt("malformed label");
                break;
            }
            if (labels.count(label)) {
                failAt("duplicate label '" + label + "'");
                break;
            }
            labels[label] = prog.size();
            text = trim(text.substr(colon + 1));
        }
        if (!st.ok() || text.empty())
            continue;

        // Mnemonic and operands.
        const auto space = text.find_first_of(" \t");
        const std::string mnemonic =
            space == std::string::npos ? text : text.substr(0, space);
        const std::vector<std::string> ops = splitOperands(
            space == std::string::npos ? "" : text.substr(space + 1));

        std::vector<std::string> parts;
        Instruction inst;
        if (!splitMnemonic(mnemonic, parts, inst.width, st)) {
            error_line = line_no;
            continue;
        }

        auto needOps = [&](std::size_t n) {
            if (ops.size() != n) {
                failAt("expected " + std::to_string(n) + " operands, got " +
                       std::to_string(ops.size()));
                return false;
            }
            return true;
        };
        auto regOp = [&](std::size_t i, std::uint8_t &out) {
            const auto r = parseReg(ops[i]);
            if (!r) {
                failAt("bad register '" + ops[i] + "'");
                return false;
            }
            out = static_cast<std::uint8_t>(*r);
            return true;
        };

        const std::string &head = parts[0];

        if (head == "set" && parts.size() == 2) {
            inst.op = parts[1] == "vl" ? Opcode::SetVl : Opcode::SetMr;
            if (parts[1] != "vl" && parts[1] != "mr") {
                failAt("unknown config register '" + parts[1] + "'");
                continue;
            }
            if (!needOps(1) || !regOp(0, inst.rs1))
                continue;
        } else if (head == "v" && parts.size() == 2 && parts[1] == "drain") {
            inst.op = Opcode::VDrain;
            if (!needOps(0))
                continue;
        } else if (head == "m" && parts.size() == 4 && parts[1] == "v") {
            inst.op = Opcode::MatVec;
            const auto vop = parseVecOp(parts[2]);
            const auto rop = parseRedOp(parts[3]);
            if (!vop || !rop) {
                failAt("bad m.v operator composition '" + mnemonic + "'");
                continue;
            }
            inst.vop = *vop;
            inst.rop = *rop;
            if (!needOps(3) || !regOp(0, inst.rd) || !regOp(1, inst.rs1) ||
                !regOp(2, inst.rs2)) {
                continue;
            }
        } else if (head == "v" && parts.size() == 3 &&
                   (parts[1] == "v" || parts[1] == "s")) {
            inst.op = parts[1] == "v" ? Opcode::VecVec : Opcode::VecScalar;
            const auto vop = parseVecOp(parts[2]);
            if (!vop || *vop == VecOp::Nop) {
                failAt("bad vector operator '" + parts[2] + "'");
                continue;
            }
            inst.vop = *vop;
            if (!needOps(3) || !regOp(0, inst.rd) || !regOp(1, inst.rs1) ||
                !regOp(2, inst.rs2)) {
                continue;
            }
        } else if (head == "mov" && parts.size() == 1) {
            inst.op = Opcode::Mov;
            if (!needOps(2) || !regOp(0, inst.rd) || !regOp(1, inst.rs1))
                continue;
        } else if (head == "mov" && parts.size() == 2 && parts[1] == "imm") {
            inst.op = Opcode::MovImm;
            if (!needOps(2) || !regOp(0, inst.rd))
                continue;
            const auto imm = parseImm(ops[1]);
            if (!imm) {
                failAt("bad immediate '" + ops[1] + "'");
                continue;
            }
            inst.imm = *imm;
        } else if (parseScalarOp(head) && parts.size() <= 2) {
            inst.sop = *parseScalarOp(head);
            const bool has_imm = parts.size() == 2 && parts[1] == "imm";
            if (parts.size() == 2 && !has_imm) {
                failAt("unknown mnemonic '" + mnemonic + "'");
                continue;
            }
            inst.op = has_imm ? Opcode::ScalarRI : Opcode::ScalarRR;
            if (!needOps(3) || !regOp(0, inst.rd) || !regOp(1, inst.rs1))
                continue;
            if (has_imm) {
                const auto imm = parseImm(ops[2]);
                if (!imm) {
                    failAt("bad immediate '" + ops[2] + "'");
                    continue;
                }
                inst.imm = *imm;
            } else if (!regOp(2, inst.rs2)) {
                continue;
            }
        } else if (parseBranch(head) && parts.size() == 1) {
            inst.op = Opcode::Branch;
            inst.cond = *parseBranch(head);
            if (!needOps(3) || !regOp(0, inst.rs1) || !regOp(1, inst.rs2))
                continue;
            fixups.push_back({prog.size(), ops[2], line_no});
        } else if (head == "jmp" && parts.size() == 1) {
            inst.op = Opcode::Jmp;
            if (!needOps(1))
                continue;
            fixups.push_back({prog.size(), ops[0], line_no});
        } else if (head == "ld" && parts.size() == 2 && parts[1] == "sram") {
            inst.op = Opcode::LdSram;
            if (!needOps(3) || !regOp(0, inst.rd) || !regOp(1, inst.rs1) ||
                !regOp(2, inst.rs2)) {
                continue;
            }
        } else if (head == "st" && parts.size() == 2 && parts[1] == "sram") {
            inst.op = Opcode::StSram;
            if (!needOps(3) || !regOp(0, inst.rd) || !regOp(1, inst.rs1) ||
                !regOp(2, inst.rs2)) {
                continue;
            }
        } else if (head == "ld" && parts.size() == 2 && parts[1] == "reg") {
            inst.op = Opcode::LdReg;
            if (!needOps(2) || !regOp(0, inst.rd) || !regOp(1, inst.rs1))
                continue;
        } else if (head == "st" && parts.size() == 2 && parts[1] == "reg") {
            inst.op = Opcode::StReg;
            if (!needOps(2) || !regOp(0, inst.rd) || !regOp(1, inst.rs1))
                continue;
        } else if (head == "memfence" && parts.size() == 1) {
            inst.op = Opcode::Memfence;
            if (!needOps(0))
                continue;
        } else if (head == "halt" && parts.size() == 1) {
            inst.op = Opcode::Halt;
            if (!needOps(0))
                continue;
        } else if (head == "nop" && parts.size() == 1) {
            inst.op = Opcode::Nop;
            if (!needOps(0))
                continue;
        } else {
            failAt("unknown mnemonic '" + mnemonic + "'");
            continue;
        }

        prog.push_back(inst);
    }

    // Second pass: resolve branch/jump targets.
    if (st.ok()) {
        for (const auto &fix : fixups) {
            const auto it = labels.find(fix.label);
            if (it == labels.end()) {
                // Numeric absolute targets are accepted too.
                const auto imm = parseImm(fix.label);
                if (imm && *imm >= 0 &&
                    static_cast<std::size_t>(*imm) <= prog.size()) {
                    prog[fix.instIndex].imm = *imm;
                    continue;
                }
                line_no = fix.line;
                failAt("undefined label '" + fix.label + "'");
                error_line = fix.line;
                break;
            }
            prog[fix.instIndex].imm =
                static_cast<std::int64_t>(it->second);
        }
    }

    if (!st.ok()) {
        if (error) {
            *error = {error_line, st.error};
            return {};
        }
        vip_fatal("assembly error at line ", error_line, ": ", st.error);
    }

    if (prog.size() > kInstBufferEntries) {
        const std::string msg = "program has " + std::to_string(prog.size()) +
                                " instructions; the PE instruction buffer "
                                "holds " +
                                std::to_string(kInstBufferEntries);
        if (error) {
            *error = {0, msg};
            return {};
        }
        vip_fatal(msg);
    }

    if (error)
        *error = {0, ""};
    return prog;
}

} // namespace vip
