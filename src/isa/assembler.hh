/**
 * @file
 * Two-pass text assembler for the VIP ISA.
 *
 * Accepts the notation used in the paper's Figure 2: one instruction
 * per line, `;` or `#` comments, `name:` labels, an optional element
 * width tag (`[8]`, `[16]`, `[32]`, `[64]`, or the paper's verbose
 * `[16-bit]`), registers `r0`..`r63`, and decimal / 0x-hex immediates.
 *
 * Example:
 * @code
 * loop:
 *     ld.sram[16-bit] r11, r7, r61  ; load messages
 *     v.v.add[16] r11, r11, r12
 *     m.v.add.min[16] r10, r15, r11
 *     st.sram[16] r10, r14, r61
 *     add.imm r7, r7, 32
 *     blt r7, r20, loop
 *     halt
 * @endcode
 */

#ifndef VIP_ISA_ASSEMBLER_HH
#define VIP_ISA_ASSEMBLER_HH

#include <string>
#include <string_view>
#include <vector>

#include "isa/isa.hh"

namespace vip {

/** Result of assembling a source listing. */
struct AssemblyError
{
    unsigned line;        ///< 1-based source line
    std::string message;
};

/**
 * Assemble VIP source text into a program.
 * On any syntax error the first error is reported through vip_fatal
 * unless @p error is non-null, in which case it is filled and an empty
 * program returned.
 */
std::vector<Instruction> assemble(std::string_view source,
                                  AssemblyError *error = nullptr);

} // namespace vip

#endif // VIP_ISA_ASSEMBLER_HH
