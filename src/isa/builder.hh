/**
 * @file
 * Programmatic assembly builder used by the kernel generators.
 *
 * The paper's kernels are hand-written assembly; our generators build
 * the same programs parametrically (image size, labels, filter shapes)
 * through this interface, which handles forward label references and
 * enforces the 1,024-entry instruction buffer limit.
 */

#ifndef VIP_ISA_BUILDER_HH
#define VIP_ISA_BUILDER_HH

#include <cstdint>
#include <vector>

#include "isa/isa.hh"

namespace vip {

class AsmBuilder
{
  public:
    /** An abstract code position, bindable before or after use. */
    using Label = std::size_t;

    Label newLabel();

    /** Bind @p l to the next emitted instruction. */
    void bind(Label l);

    // --- Configuration ---
    void setVl(unsigned rs);
    void setMr(unsigned rs);
    void vdrain();

    // --- Vector ---
    void mv(VecOp vop, RedOp rop, unsigned rd, unsigned ra, unsigned rb,
            ElemWidth w = ElemWidth::W16);
    void vv(VecOp vop, unsigned rd, unsigned ra, unsigned rb,
            ElemWidth w = ElemWidth::W16);
    void vs(VecOp vop, unsigned rd, unsigned ra, unsigned rb,
            ElemWidth w = ElemWidth::W16);

    // --- Scalar ---
    void scalar(ScalarOp op, unsigned rd, unsigned rs1, unsigned rs2);
    void scalarImm(ScalarOp op, unsigned rd, unsigned rs1,
                   std::int64_t imm);
    void mov(unsigned rd, unsigned rs);
    void movImm(unsigned rd, std::int64_t imm);

    /** add.imm shorthand, the most common scalar instruction. */
    void
    addImm(unsigned rd, unsigned rs1, std::int64_t imm)
    {
        scalarImm(ScalarOp::Add, rd, rs1, imm);
    }

    // --- Control ---
    void branch(BranchCond cond, unsigned rs1, unsigned rs2, Label target);
    void jmp(Label target);

    // --- Load-store ---
    void ldSram(unsigned rd_sp, unsigned ra_dram, unsigned rb_len,
                ElemWidth w = ElemWidth::W16);
    void stSram(unsigned rd_sp, unsigned ra_dram, unsigned rb_len,
                ElemWidth w = ElemWidth::W16);
    void ldReg(unsigned rd, unsigned ra, ElemWidth w = ElemWidth::W64);
    void stReg(unsigned rd, unsigned ra, ElemWidth w = ElemWidth::W64);
    void memfence();

    // --- Simulator control ---
    void halt();
    void nop();

    std::size_t size() const { return prog_.size(); }

    /**
     * Patch all label references and return the program.
     * Fatal if a used label was never bound or the program exceeds the
     * instruction buffer.
     */
    std::vector<Instruction> finish();

  private:
    void emit(const Instruction &inst);

    struct Fixup
    {
        std::size_t instIndex;
        Label label;
    };

    std::vector<Instruction> prog_;
    std::vector<std::int64_t> labelTargets_;  ///< -1 while unbound
    std::vector<Fixup> fixups_;
};

} // namespace vip

#endif // VIP_ISA_BUILDER_HH
