#include "isa/builder.hh"

#include "sim/logging.hh"

namespace vip {

AsmBuilder::Label
AsmBuilder::newLabel()
{
    labelTargets_.push_back(-1);
    return labelTargets_.size() - 1;
}

void
AsmBuilder::bind(Label l)
{
    vip_assert(l < labelTargets_.size(), "unknown label ", l);
    vip_assert(labelTargets_[l] < 0, "label ", l, " bound twice");
    labelTargets_[l] = static_cast<std::int64_t>(prog_.size());
}

void
AsmBuilder::emit(const Instruction &inst)
{
    prog_.push_back(inst);
}

void
AsmBuilder::setVl(unsigned rs)
{
    Instruction i;
    i.op = Opcode::SetVl;
    i.rs1 = static_cast<std::uint8_t>(rs);
    emit(i);
}

void
AsmBuilder::setMr(unsigned rs)
{
    Instruction i;
    i.op = Opcode::SetMr;
    i.rs1 = static_cast<std::uint8_t>(rs);
    emit(i);
}

void
AsmBuilder::vdrain()
{
    Instruction i;
    i.op = Opcode::VDrain;
    emit(i);
}

void
AsmBuilder::mv(VecOp vop, RedOp rop, unsigned rd, unsigned ra, unsigned rb,
               ElemWidth w)
{
    Instruction i;
    i.op = Opcode::MatVec;
    i.vop = vop;
    i.rop = rop;
    i.width = w;
    i.rd = static_cast<std::uint8_t>(rd);
    i.rs1 = static_cast<std::uint8_t>(ra);
    i.rs2 = static_cast<std::uint8_t>(rb);
    emit(i);
}

void
AsmBuilder::vv(VecOp vop, unsigned rd, unsigned ra, unsigned rb, ElemWidth w)
{
    vip_assert(vop != VecOp::Nop, "v.v.nop is not a valid composition");
    Instruction i;
    i.op = Opcode::VecVec;
    i.vop = vop;
    i.width = w;
    i.rd = static_cast<std::uint8_t>(rd);
    i.rs1 = static_cast<std::uint8_t>(ra);
    i.rs2 = static_cast<std::uint8_t>(rb);
    emit(i);
}

void
AsmBuilder::vs(VecOp vop, unsigned rd, unsigned ra, unsigned rb, ElemWidth w)
{
    vip_assert(vop != VecOp::Nop, "v.s.nop is not a valid composition");
    Instruction i;
    i.op = Opcode::VecScalar;
    i.vop = vop;
    i.width = w;
    i.rd = static_cast<std::uint8_t>(rd);
    i.rs1 = static_cast<std::uint8_t>(ra);
    i.rs2 = static_cast<std::uint8_t>(rb);
    emit(i);
}

void
AsmBuilder::scalar(ScalarOp op, unsigned rd, unsigned rs1, unsigned rs2)
{
    Instruction i;
    i.op = Opcode::ScalarRR;
    i.sop = op;
    i.rd = static_cast<std::uint8_t>(rd);
    i.rs1 = static_cast<std::uint8_t>(rs1);
    i.rs2 = static_cast<std::uint8_t>(rs2);
    emit(i);
}

void
AsmBuilder::scalarImm(ScalarOp op, unsigned rd, unsigned rs1,
                      std::int64_t imm)
{
    Instruction i;
    i.op = Opcode::ScalarRI;
    i.sop = op;
    i.rd = static_cast<std::uint8_t>(rd);
    i.rs1 = static_cast<std::uint8_t>(rs1);
    i.imm = imm;
    emit(i);
}

void
AsmBuilder::mov(unsigned rd, unsigned rs)
{
    Instruction i;
    i.op = Opcode::Mov;
    i.rd = static_cast<std::uint8_t>(rd);
    i.rs1 = static_cast<std::uint8_t>(rs);
    emit(i);
}

void
AsmBuilder::movImm(unsigned rd, std::int64_t imm)
{
    Instruction i;
    i.op = Opcode::MovImm;
    i.rd = static_cast<std::uint8_t>(rd);
    i.imm = imm;
    emit(i);
}

void
AsmBuilder::branch(BranchCond cond, unsigned rs1, unsigned rs2, Label target)
{
    Instruction i;
    i.op = Opcode::Branch;
    i.cond = cond;
    i.rs1 = static_cast<std::uint8_t>(rs1);
    i.rs2 = static_cast<std::uint8_t>(rs2);
    fixups_.push_back({prog_.size(), target});
    emit(i);
}

void
AsmBuilder::jmp(Label target)
{
    Instruction i;
    i.op = Opcode::Jmp;
    fixups_.push_back({prog_.size(), target});
    emit(i);
}

void
AsmBuilder::ldSram(unsigned rd_sp, unsigned ra_dram, unsigned rb_len,
                   ElemWidth w)
{
    Instruction i;
    i.op = Opcode::LdSram;
    i.width = w;
    i.rd = static_cast<std::uint8_t>(rd_sp);
    i.rs1 = static_cast<std::uint8_t>(ra_dram);
    i.rs2 = static_cast<std::uint8_t>(rb_len);
    emit(i);
}

void
AsmBuilder::stSram(unsigned rd_sp, unsigned ra_dram, unsigned rb_len,
                   ElemWidth w)
{
    Instruction i;
    i.op = Opcode::StSram;
    i.width = w;
    i.rd = static_cast<std::uint8_t>(rd_sp);
    i.rs1 = static_cast<std::uint8_t>(ra_dram);
    i.rs2 = static_cast<std::uint8_t>(rb_len);
    emit(i);
}

void
AsmBuilder::ldReg(unsigned rd, unsigned ra, ElemWidth w)
{
    Instruction i;
    i.op = Opcode::LdReg;
    i.width = w;
    i.rd = static_cast<std::uint8_t>(rd);
    i.rs1 = static_cast<std::uint8_t>(ra);
    emit(i);
}

void
AsmBuilder::stReg(unsigned rd, unsigned ra, ElemWidth w)
{
    Instruction i;
    i.op = Opcode::StReg;
    i.width = w;
    i.rd = static_cast<std::uint8_t>(rd);
    i.rs1 = static_cast<std::uint8_t>(ra);
    emit(i);
}

void
AsmBuilder::memfence()
{
    Instruction i;
    i.op = Opcode::Memfence;
    emit(i);
}

void
AsmBuilder::halt()
{
    Instruction i;
    i.op = Opcode::Halt;
    emit(i);
}

void
AsmBuilder::nop()
{
    Instruction i;
    i.op = Opcode::Nop;
    emit(i);
}

std::vector<Instruction>
AsmBuilder::finish()
{
    for (const auto &fix : fixups_) {
        vip_assert(fix.label < labelTargets_.size(), "unknown label");
        const std::int64_t target = labelTargets_[fix.label];
        vip_assert(target >= 0, "label ", fix.label, " used but never bound");
        prog_[fix.instIndex].imm = target;
    }
    if (prog_.size() > kInstBufferEntries) {
        vip_fatal("generated program has ", prog_.size(),
                  " instructions; instruction buffer holds ",
                  kInstBufferEntries);
    }
    fixups_.clear();
    return prog_;
}

} // namespace vip
