#include "isa/isa.hh"

#include <sstream>

#include "sim/logging.hh"

namespace vip {

const char *
toString(Opcode op)
{
    switch (op) {
      case Opcode::SetVl: return "set.vl";
      case Opcode::SetMr: return "set.mr";
      case Opcode::VDrain: return "v.drain";
      case Opcode::MatVec: return "m.v";
      case Opcode::VecVec: return "v.v";
      case Opcode::VecScalar: return "v.s";
      case Opcode::ScalarRR: return "scalar.rr";
      case Opcode::ScalarRI: return "scalar.ri";
      case Opcode::Mov: return "mov";
      case Opcode::MovImm: return "mov.imm";
      case Opcode::Branch: return "branch";
      case Opcode::Jmp: return "jmp";
      case Opcode::LdSram: return "ld.sram";
      case Opcode::StSram: return "st.sram";
      case Opcode::LdReg: return "ld.reg";
      case Opcode::StReg: return "st.reg";
      case Opcode::Memfence: return "memfence";
      case Opcode::Halt: return "halt";
      case Opcode::Nop: return "nop";
    }
    return "?";
}

const char *
toString(VecOp op)
{
    switch (op) {
      case VecOp::Mul: return "mul";
      case VecOp::Add: return "add";
      case VecOp::Sub: return "sub";
      case VecOp::Min: return "min";
      case VecOp::Max: return "max";
      case VecOp::Nop: return "nop";
    }
    return "?";
}

const char *
toString(RedOp op)
{
    switch (op) {
      case RedOp::Add: return "add";
      case RedOp::Min: return "min";
      case RedOp::Max: return "max";
    }
    return "?";
}

const char *
toString(ScalarOp op)
{
    switch (op) {
      case ScalarOp::Add: return "add";
      case ScalarOp::Sub: return "sub";
      case ScalarOp::Sll: return "sll";
      case ScalarOp::Srl: return "srl";
      case ScalarOp::Sra: return "sra";
      case ScalarOp::And: return "and";
      case ScalarOp::Or: return "or";
      case ScalarOp::Xor: return "xor";
    }
    return "?";
}

const char *
toString(BranchCond c)
{
    switch (c) {
      case BranchCond::Lt: return "blt";
      case BranchCond::Ge: return "bge";
      case BranchCond::Eq: return "beq";
      case BranchCond::Ne: return "bne";
    }
    return "?";
}

namespace {

const char *
widthTag(ElemWidth w)
{
    switch (w) {
      case ElemWidth::W8: return "[8]";
      case ElemWidth::W16: return "[16]";
      case ElemWidth::W32: return "[32]";
      case ElemWidth::W64: return "[64]";
    }
    return "[?]";
}

std::string
reg(unsigned r)
{
    return "r" + std::to_string(r);
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    switch (inst.op) {
      case Opcode::SetVl:
        os << "set.vl " << reg(inst.rs1);
        break;
      case Opcode::SetMr:
        os << "set.mr " << reg(inst.rs1);
        break;
      case Opcode::VDrain:
        os << "v.drain";
        break;
      case Opcode::MatVec:
        os << "m.v." << toString(inst.vop) << "." << toString(inst.rop)
           << widthTag(inst.width) << " " << reg(inst.rd) << ", "
           << reg(inst.rs1) << ", " << reg(inst.rs2);
        break;
      case Opcode::VecVec:
        os << "v.v." << toString(inst.vop) << widthTag(inst.width) << " "
           << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
           << reg(inst.rs2);
        break;
      case Opcode::VecScalar:
        os << "v.s." << toString(inst.vop) << widthTag(inst.width) << " "
           << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
           << reg(inst.rs2);
        break;
      case Opcode::ScalarRR:
        os << toString(inst.sop) << " " << reg(inst.rd) << ", "
           << reg(inst.rs1) << ", " << reg(inst.rs2);
        break;
      case Opcode::ScalarRI:
        os << toString(inst.sop) << ".imm " << reg(inst.rd) << ", "
           << reg(inst.rs1) << ", " << inst.imm;
        break;
      case Opcode::Mov:
        os << "mov " << reg(inst.rd) << ", " << reg(inst.rs1);
        break;
      case Opcode::MovImm:
        os << "mov.imm " << reg(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::Branch:
        os << toString(inst.cond) << " " << reg(inst.rs1) << ", "
           << reg(inst.rs2) << ", @" << inst.imm;
        break;
      case Opcode::Jmp:
        os << "jmp @" << inst.imm;
        break;
      case Opcode::LdSram:
        os << "ld.sram" << widthTag(inst.width) << " " << reg(inst.rd)
           << ", " << reg(inst.rs1) << ", " << reg(inst.rs2);
        break;
      case Opcode::StSram:
        os << "st.sram" << widthTag(inst.width) << " " << reg(inst.rd)
           << ", " << reg(inst.rs1) << ", " << reg(inst.rs2);
        break;
      case Opcode::LdReg:
        os << "ld.reg" << widthTag(inst.width) << " " << reg(inst.rd)
           << ", " << reg(inst.rs1);
        break;
      case Opcode::StReg:
        os << "st.reg" << widthTag(inst.width) << " " << reg(inst.rd)
           << ", " << reg(inst.rs1);
        break;
      case Opcode::Memfence:
        os << "memfence";
        break;
      case Opcode::Halt:
        os << "halt";
        break;
      case Opcode::Nop:
        os << "nop";
        break;
    }
    return os.str();
}

namespace {

constexpr unsigned kOpShift = 0;
constexpr unsigned kWidthShift = 8;   // log2(bytes), 2 bits
constexpr unsigned kVopShift = 10;    // 3 bits
constexpr unsigned kRopShift = 13;    // 2 bits
constexpr unsigned kSopShift = 15;    // 3 bits
constexpr unsigned kCondShift = 18;   // 2 bits
constexpr unsigned kRdShift = 20;     // 6 bits
constexpr unsigned kRs1Shift = 26;    // 6 bits
constexpr unsigned kRs2Shift = 32;    // 6 bits
constexpr unsigned kImmShift = 38;    // 26 bits, signed

constexpr std::int64_t kImmMax = (1ll << 25) - 1;
constexpr std::int64_t kImmMin = -(1ll << 25);

unsigned
widthLog2(ElemWidth w)
{
    switch (w) {
      case ElemWidth::W8: return 0;
      case ElemWidth::W16: return 1;
      case ElemWidth::W32: return 2;
      case ElemWidth::W64: return 3;
    }
    return 1;
}

} // namespace

bool
immFitsEncoding(std::int64_t imm)
{
    return imm >= kImmMin && imm <= kImmMax;
}

std::uint64_t
encode(const Instruction &inst)
{
    vip_assert(immFitsEncoding(inst.imm) || inst.op == Opcode::MovImm,
               "immediate ", inst.imm, " does not fit the 26-bit field");
    const bool wide = inst.op == Opcode::MovImm &&
                      !immFitsEncoding(inst.imm);
    const std::int64_t imm = wide ? 0 : inst.imm;
    std::uint64_t w = 0;
    w |= static_cast<std::uint64_t>(inst.op) << kOpShift;
    w |= static_cast<std::uint64_t>(widthLog2(inst.width)) << kWidthShift;
    w |= static_cast<std::uint64_t>(inst.vop) << kVopShift;
    w |= static_cast<std::uint64_t>(inst.rop) << kRopShift;
    w |= static_cast<std::uint64_t>(inst.sop) << kSopShift;
    w |= static_cast<std::uint64_t>(inst.cond) << kCondShift;
    w |= static_cast<std::uint64_t>(inst.rd & 0x3f) << kRdShift;
    // For a wide mov.imm the rs2 field carries the literal-follows flag.
    const std::uint8_t rs2 = wide ? 1 : inst.rs2;
    w |= static_cast<std::uint64_t>(inst.rs1 & 0x3f) << kRs1Shift;
    w |= static_cast<std::uint64_t>(rs2 & 0x3f) << kRs2Shift;
    w |= (static_cast<std::uint64_t>(imm) & 0x3ffffff) << kImmShift;
    return w;
}

std::vector<std::uint64_t>
encodeProgram(const std::vector<Instruction> &prog)
{
    std::vector<std::uint64_t> words;
    words.reserve(prog.size());
    for (const auto &inst : prog) {
        words.push_back(encode(inst));
        if (inst.op == Opcode::MovImm && !immFitsEncoding(inst.imm))
            words.push_back(static_cast<std::uint64_t>(inst.imm));
    }
    return words;
}

std::vector<Instruction>
decodeProgram(const std::vector<std::uint64_t> &words)
{
    std::vector<Instruction> prog;
    prog.reserve(words.size());
    for (std::size_t i = 0; i < words.size(); ++i) {
        Instruction inst = decode(words[i]);
        if (inst.op == Opcode::MovImm && inst.rs2 == 1) {
            vip_assert(i + 1 < words.size(),
                       "truncated wide mov.imm literal");
            inst.imm = static_cast<std::int64_t>(words[++i]);
            inst.rs2 = 0;
        }
        prog.push_back(inst);
    }
    return prog;
}

Instruction
decode(std::uint64_t word)
{
    Instruction inst;
    const auto opv = (word >> kOpShift) & 0xff;
    if (opv > static_cast<std::uint64_t>(Opcode::Nop))
        vip_fatal("invalid opcode field ", opv, " in instruction word");
    inst.op = static_cast<Opcode>(opv);
    inst.width = static_cast<ElemWidth>(1u << ((word >> kWidthShift) & 0x3));
    inst.vop = static_cast<VecOp>((word >> kVopShift) & 0x7);
    inst.rop = static_cast<RedOp>((word >> kRopShift) & 0x3);
    inst.sop = static_cast<ScalarOp>((word >> kSopShift) & 0x7);
    inst.cond = static_cast<BranchCond>((word >> kCondShift) & 0x3);
    inst.rd = static_cast<std::uint8_t>((word >> kRdShift) & 0x3f);
    inst.rs1 = static_cast<std::uint8_t>((word >> kRs1Shift) & 0x3f);
    inst.rs2 = static_cast<std::uint8_t>((word >> kRs2Shift) & 0x3f);
    std::int64_t imm = static_cast<std::int64_t>((word >> kImmShift) &
                                                 0x3ffffff);
    if (imm > kImmMax)
        imm -= (1ll << 26);
    inst.imm = imm;
    return inst;
}

} // namespace vip
