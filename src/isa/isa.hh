/**
 * @file
 * The VIP instruction set (Table II of the paper).
 *
 * Vector operands are *scratchpad addresses held in scalar registers*
 * (the vector memory-memory paradigm): a vector instruction names three
 * scalar registers whose values are byte addresses into the PE's 4 KiB
 * scratchpad. Vector length (elements) and matrix rows come from the VL
 * and MR configuration registers set with set.vl / set.mr.
 *
 * Semantics summary (w = element width in bytes, VL/MR from config):
 *  - v.v.OP   rd, ra, rb : sp[rd][i]   = OP(sp[ra][i], sp[rb][i]), i<VL
 *  - v.s.OP   rd, ra, rb : sp[rd][i]   = OP(sp[ra][i], scalar rb),  i<VL
 *  - m.v.V.H  rd, ra, rb : sp[rd][r]   = Hreduce_i V(mat[r][i], sp[rb][i]),
 *                          mat = MR x VL row-major at sp[ra], r<MR
 *  - ld.sram  rd, ra, rb : sp[rd .. rd+rb*w) <- DRAM[ra ..)
 *  - st.sram  rd, ra, rb : DRAM[ra ..) <- sp[rd .. rd+rb*w)
 *  - ld.reg   rd, ra     : rd <- sign-extended DRAM[r[ra]] (w bytes)
 *  - st.reg   rd, ra     : DRAM[r[ra]] <- low w bytes of rd
 *  (for ld/st.sram the *values* of rd/ra/rb give sp addr, DRAM addr,
 *   element count)
 *
 * halt is a simulator convenience: it parks the PE. The paper's PEs run
 * kernels dispatched by a host; halt marks kernel completion.
 */

#ifndef VIP_ISA_ISA_HH
#define VIP_ISA_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vip {

/** Element width of a subword vector operation. */
enum class ElemWidth : std::uint8_t { W8 = 1, W16 = 2, W32 = 4, W64 = 8 };

inline unsigned widthBytes(ElemWidth w) { return static_cast<unsigned>(w); }

/** Vertical (element-wise) operator set. */
enum class VecOp : std::uint8_t { Mul, Add, Sub, Min, Max, Nop };

/** Horizontal (reduction) operator set. */
enum class RedOp : std::uint8_t { Add, Min, Max };

/** Scalar ALU operator set. */
enum class ScalarOp : std::uint8_t { Add, Sub, Sll, Srl, Sra, And, Or, Xor };

/** Branch conditions. */
enum class BranchCond : std::uint8_t { Lt, Ge, Eq, Ne };

enum class Opcode : std::uint8_t
{
    // Configuration
    SetVl, SetMr, VDrain,
    // Vector
    MatVec, VecVec, VecScalar,
    // Scalar
    ScalarRR, ScalarRI, Mov, MovImm, Branch, Jmp,
    // Load-store
    LdSram, StSram, LdReg, StReg, Memfence,
    // Simulator control
    Halt, Nop,
};

/** Number of scalar registers (Sec. III-B). */
inline constexpr unsigned kNumScalarRegs = 64;

/** Instruction buffer capacity per PE (Sec. III-B). */
inline constexpr unsigned kInstBufferEntries = 1024;

/** One decoded VIP instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    ElemWidth width = ElemWidth::W16;
    VecOp vop = VecOp::Add;
    RedOp rop = RedOp::Add;
    ScalarOp sop = ScalarOp::Add;
    BranchCond cond = BranchCond::Lt;

    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;

    /** Immediate operand, or resolved branch/jump target (instr index). */
    std::int64_t imm = 0;

    bool
    isVector() const
    {
        return op == Opcode::MatVec || op == Opcode::VecVec ||
               op == Opcode::VecScalar;
    }

    bool
    isMemory() const
    {
        return op == Opcode::LdSram || op == Opcode::StSram ||
               op == Opcode::LdReg || op == Opcode::StReg;
    }
};

const char *toString(Opcode op);
const char *toString(VecOp op);
const char *toString(RedOp op);
const char *toString(ScalarOp op);
const char *toString(BranchCond c);

/** Render one instruction as assembly text. */
std::string disassemble(const Instruction &inst);

/** True when @p imm fits the 26-bit signed immediate field. */
bool immFitsEncoding(std::int64_t imm);

/**
 * Pack an instruction into its 64-bit binary encoding.
 * @pre immFitsEncoding(inst.imm) unless inst is a mov.imm (which the
 *      program-level encoder expands to a two-word form).
 */
std::uint64_t encode(const Instruction &inst);

/** Unpack a 64-bit word; fatal on malformed encodings. */
Instruction decode(std::uint64_t word);

/**
 * Encode a whole program. mov.imm instructions whose immediate exceeds
 * the 26-bit field become two words: the instruction (with a
 * literal-follows flag in the unused rs2 field) plus a raw 64-bit
 * literal word. Branch targets are indices into the *instruction*
 * stream (not the word stream) in both representations, so round
 * trips preserve them unchanged.
 */
std::vector<std::uint64_t> encodeProgram(
    const std::vector<Instruction> &prog);

/** Inverse of encodeProgram. */
std::vector<Instruction> decodeProgram(
    const std::vector<std::uint64_t> &words);

} // namespace vip

#endif // VIP_ISA_ISA_HH
