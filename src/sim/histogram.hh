/**
 * @file
 * A fixed-bucket histogram statistic (power-of-two buckets), used for
 * request and packet latency distributions.
 */

#ifndef VIP_SIM_HISTOGRAM_HH
#define VIP_SIM_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <ostream>

namespace vip {

/** Histogram over log2 buckets: [0,1), [1,2), [2,4), ... [2^30, inf). */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 32;

    void
    sample(std::uint64_t v)
    {
        unsigned b = 0;
        while ((1ull << b) <= v && b + 1 < kBuckets)
            ++b;
        ++buckets_[b];
        sum_ += v;
        ++count_;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    /** Smallest bucket upper bound covering @p fraction of samples. */
    std::uint64_t
    percentileBound(double fraction) const
    {
        if (count_ == 0)
            return 0;
        const auto target = static_cast<std::uint64_t>(
            fraction * static_cast<double>(count_));
        std::uint64_t seen = 0;
        for (unsigned b = 0; b < kBuckets; ++b) {
            seen += buckets_[b];
            if (seen >= target)
                return 1ull << b;
        }
        return max_;
    }

    /** Fold another histogram in (bucket-wise sum). Used to merge
     *  per-island tallies after a partitioned run; commutative, but
     *  callers still merge in fixed island order by convention. */
    void
    merge(const Histogram &o)
    {
        for (unsigned b = 0; b < kBuckets; ++b)
            buckets_[b] += o.buckets_[b];
        sum_ += o.sum_;
        count_ += o.count_;
        if (o.max_ > max_)
            max_ = o.max_;
    }

    void
    reset()
    {
        buckets_.fill(0);
        sum_ = count_ = max_ = 0;
    }

    void
    dump(std::ostream &os, const char *name) const
    {
        os << name << ".count " << count_ << "\n"
           << name << ".mean " << mean() << "\n"
           << name << ".max " << max_ << "\n"
           << name << ".p99_bound " << percentileBound(0.99) << "\n";
    }

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t sum_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace vip

#endif // VIP_SIM_HISTOGRAM_HH
