/**
 * @file
 * Deterministic fault injection for the VIP machine.
 *
 * A FaultPlan describes *what* can go wrong (seeded rates for DRAM
 * read-disturb bit flips, refresh-interval retention errors, NoC packet
 * drop/corruption, scratchpad upsets, and whether SECDED ECC guards the
 * vault read path); a FaultInjector owned by the VipSystem decides
 * *where and when* each fault strikes and keeps the fault bookkeeping
 * (outstanding flipped bits per ECC word, counters, recorded sites).
 *
 * ## Determinism contract
 *
 * Every injection decision is a pure hash of (plan seed, site kind,
 * event identity) — a DRAM word address and the per-(word, reader)
 * read ordinal, a packet's source-lane key and delivery attempt, a
 * refresh index, an instruction count. Decisions are *never* keyed by
 * the current cycle: event-horizon fast-forward (sim/clocked.hh) warps
 * over dead cycles, so cycle-keyed sampling would inject differently
 * with and without the warp. Nor are they keyed by any *global*
 * running count: island partitioning (sim/island.hh) interleaves
 * reads from different host threads, so a machine-wide counter would
 * inject differently per interleaving and per island count. Keyed by
 * event identity, a fast-forwarded or island-partitioned run injects
 * bit-identically to a serial ticked run, and two runs with the same
 * seed and plan strike the same sites (fault_injection_test and
 * island_equivalence_test pin this).
 *
 * ## Concurrency
 *
 * One injector serves the whole machine; in island mode several host
 * threads call the hooks in the same quantum. All mutable state
 * (counters, the outstanding-flip record, recorded sites, read
 * ordinals) sits behind one annotated vip::Mutex — injection is a
 * rare, cold path, so a plain lock beats anything clever. Residual
 * limitation, by contract: when two islands read the *same* DRAM word
 * while flips on it are outstanding, the ECC scrub order follows host
 * scheduling; campaigns combining dram-read faults with cross-island
 * shared words are therefore outside the bit-identity guarantee
 * (docs/INTERNALS.md spells this out).
 *
 * ## Layering
 *
 * This file lives in vip_sim, *below* the memory model, so it cannot
 * touch DramStorage directly. The system binds a ToggleFn at
 * construction that flips one bit of backing store; retention victims
 * are picked by the vault controller itself from entropy this class
 * hands out (the vault owns the address mapping needed to turn
 * bank/row/column dice rolls into a physical address).
 *
 * ## ECC model
 *
 * SECDED over each aligned 8-byte DRAM word. The injector tracks the
 * set of outstanding flipped bits per word; on every read of a word it
 * scrubs: one flipped bit is corrected in place (counter
 * `eccCorrected`), two are detected but not corrected (`eccDetected`,
 * the data stays corrupt), three or more alias into a valid codeword
 * and pass silently (`eccSilent`). Writes overwrite the affected bytes
 * and heal their recorded flips. With `ecc=off` flips simply propagate.
 */

#ifndef VIP_SIM_FAULT_HH
#define VIP_SIM_FAULT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/mutex.hh"
#include "sim/types.hh"

namespace vip {

/** User-facing description of an injection campaign. */
struct FaultPlan
{
    /** Master switch; parse() and tests set it. All hooks are inert
     *  (and the system allocates no injector) when false. */
    bool enabled = false;

    std::uint64_t seed = 1;

    /** Probability an aligned 8-byte word suffers a transient bit flip
     *  on each functional DRAM read of it. */
    double dramReadBitFlipRate = 0.0;

    /** Probability one retention error strikes a vault per refresh
     *  interval (a weak cell lost its charge before being refreshed). */
    double retentionErrorRate = 0.0;

    /** Per-delivery-attempt probability a NoC packet is dropped at the
     *  ejection port (lost flit) and must be retransmitted. */
    double nocDropRate = 0.0;

    /** Per-delivery-attempt probability a packet arrives corrupted
     *  (link CRC failure) and must be retransmitted. */
    double nocCorruptRate = 0.0;

    /** Per-issued-instruction probability a random scratchpad bit
     *  flips in the issuing PE (SRAM soft error; no ECC). */
    double spBitFlipRate = 0.0;

    /** SECDED ECC on the vault read path. */
    bool eccEnabled = true;

    /**
     * Parse a spec string: comma-separated `key=value` with keys
     * `seed`, `dram-read`, `retention`, `noc-drop`, `noc-corrupt`,
     * `sp-flip`, and `ecc` (`on`/`off`), e.g.
     * `"seed=42,dram-read=1e-3,ecc=on"`. The result has
     * `enabled == true`. Throws ConfigError on unknown keys, bad
     * numbers, or rates outside [0, 1].
     */
    static FaultPlan parse(const std::string &spec);

    /** Canonical spec string (round-trips through parse()). */
    std::string toString() const;

    /** Throws ConfigError when any rate is non-finite or outside
     *  [0, 1]. Called by system-config validation. */
    void validate() const;
};

/** Counters exported through RunResult and `vip-run --json-stats`.
 *  Kept out of the StatGroup tree so stats dumps stay byte-identical
 *  when injection is disabled. */
struct FaultStats
{
    std::uint64_t dramBitFlips = 0;    ///< transient read-path flips
    std::uint64_t retentionErrors = 0; ///< refresh-interval cell losses
    std::uint64_t eccCorrected = 0;    ///< single-bit words corrected
    std::uint64_t eccDetected = 0;     ///< double-bit words detected
    std::uint64_t eccSilent = 0;       ///< >=3-bit words passed silently
    std::uint64_t nocDropped = 0;      ///< packets lost at ejection
    std::uint64_t nocCorrupted = 0;    ///< packets failing link CRC
    std::uint64_t nocRetransmits = 0;  ///< re-injections (drop+corrupt)
    std::uint64_t spBitFlips = 0;      ///< scratchpad upsets
};

/** One injected fault, recorded for reproducibility checks. */
struct FaultSite
{
    enum class Kind : std::uint8_t
    {
        DramRead,   ///< a = byte address, b = bit within byte
        Retention,  ///< a = byte address, b = bit within byte
        NocDrop,    ///< a = packet seq, b = delivery attempt
        NocCorrupt, ///< a = packet seq, b = delivery attempt
        SpFlip,     ///< a = PE id, b = bit within the scratchpad
        Planted,    ///< a = byte address, b = bit (test seam)
    };

    Kind kind;
    std::uint64_t a;
    std::uint64_t b;

    bool
    operator==(const FaultSite &o) const
    {
        return kind == o.kind && a == o.a && b == o.b;
    }
};

class FaultInjector
{
  public:
    /** Flip one bit of DRAM backing store: (byte address, bit 0-7). */
    using ToggleFn = std::function<void(Addr, unsigned)>;

    explicit FaultInjector(const FaultPlan &plan);

    /** Bind the storage mutator (the system does this once). Until
     *  bound, DRAM-touching hooks must not be called. */
    void bindStorage(ToggleFn toggle) { toggle_ = std::move(toggle); }

    /**
     * Functional DRAM read of [addr, addr+bytes) issued by reader
     * @p src (a PE id): roll for a transient flip per aligned 8-byte
     * word touched, then (when ECC is on) scrub each word against the
     * outstanding-flip record. Call *before* the data is consumed so
     * corruption and correction are architecturally visible. The roll
     * is keyed by (word, src, per-(word, src) read ordinal) — each
     * reader issues its reads in program order from one thread, so
     * the identity is independent of island count and host
     * interleaving.
     */
    void onDramRead(Addr addr, std::uint64_t bytes, unsigned src);

    /** Functional DRAM write of [addr, addr+bytes): the new data
     *  overwrites any recorded flips in the covered bytes. */
    void onDramWrite(Addr addr, std::uint64_t bytes);

    /**
     * Should refresh number @p refreshIndex of @p vault suffer a
     * retention error? On true, @p entropy receives deterministic dice
     * for the caller to pick the victim cell (the vault controller
     * owns the address mapping); it then reports the victim through
     * plantRetentionFlip().
     */
    bool retentionStrike(unsigned vault, std::uint64_t refreshIndex,
                         std::uint64_t *entropy);

    /** Flip the retention victim chosen by the vault controller. */
    void plantRetentionFlip(Addr addr, unsigned bit);

    /** What happens to a packet reaching its ejection port. Anything
     *  but Deliver means the NoC retransmits from the source. */
    enum class NocVerdict : std::uint8_t { Deliver, Drop, Corrupt };

    NocVerdict onNocArrival(std::uint64_t seq, unsigned attempts);

    /**
     * Roll for a scratchpad upset after PE @p peId issued its
     * instruction number @p instIndex. Returns the bit to flip in
     * [0, bitSpace), or -1 for no fault.
     */
    long spFlip(unsigned peId, std::uint64_t instIndex,
                std::uint64_t bitSpace);

    /** Test seam: flip one DRAM bit now and record it for ECC, as a
     *  retention/read fault would. */
    void plantBitFlip(Addr addr, unsigned bit);

    /** Outstanding (uncorrected, unoverwritten) flipped bits. */
    std::size_t
    outstandingFlippedWords() const
    {
        LockGuard lock(mu_);
        return flipped_.size();
    }

    /**
     * Snapshot of the outstanding flips as (word address, flipped-bit
     * mask) pairs in ascending address order. flipped_ is a hash map,
     * so anything reporting its contents (stats, diagnosis dumps,
     * JSON) must go through this sorted view, never iterate it
     * directly — hash-order output is the nondeterminism the
     * `unordered-iter` vip-lint rule exists to catch.
     */
    std::vector<std::pair<Addr, std::uint64_t>> outstandingFlips() const;

    const FaultPlan &plan() const { return plan_; }

    /** Snapshot of the counters. By value: the injector is shared
     *  across island threads, so references into it would race. */
    FaultStats
    stats() const
    {
        LockGuard lock(mu_);
        return stats_;
    }

    /** Snapshot of recorded injection sites, in strike order (capped;
     *  see sitesTruncated()). By value, as stats(). */
    std::vector<FaultSite>
    sites() const
    {
        LockGuard lock(mu_);
        return sites_;
    }

    bool
    sitesTruncated() const
    {
        LockGuard lock(mu_);
        return sitesTruncated_;
    }

  private:
    static constexpr std::size_t kMaxRecordedSites = 4096;

    /** Pure decision hash for (kind, a, b) under the plan seed. */
    std::uint64_t diceFor(FaultSite::Kind kind, std::uint64_t a,
                          std::uint64_t b) const;

    /** True with probability @p rate, from the dice's top 53 bits. */
    static bool hit(std::uint64_t dice, double rate);

    void toggleAndRecord(Addr addr, unsigned bit) VIP_REQUIRES(mu_);
    void scrubWord(Addr word) VIP_REQUIRES(mu_);
    void record(FaultSite::Kind kind, std::uint64_t a, std::uint64_t b)
        VIP_REQUIRES(mu_);

    FaultPlan plan_;
    ToggleFn toggle_;

    /** One lock over all mutable state: injection is a rare cold
     *  path, and a single lock keeps the roll/scrub/record sequence
     *  for one read atomic against concurrent islands. */
    mutable Mutex mu_;

    FaultStats stats_ VIP_GUARDED_BY(mu_);

    /** Word-aligned address -> mask of flipped bits in that word. */
    std::unordered_map<Addr, std::uint64_t> flipped_ VIP_GUARDED_BY(mu_);

    /**
     * ((word index) << 12 | reader id) -> how many times that reader
     * has read that word: the event identity keying read-disturb
     * rolls. Cycle-independent *and* placement-independent — a global
     * counter would depend on how island threads interleave. Only
     * populated when the plan can actually roll (dram-read rate > 0),
     * so fault-free and ECC-only runs pay no memory for it.
     */
    std::unordered_map<std::uint64_t, std::uint64_t> readOrdinal_
        VIP_GUARDED_BY(mu_);

    std::vector<FaultSite> sites_ VIP_GUARDED_BY(mu_);
    bool sitesTruncated_ VIP_GUARDED_BY(mu_) = false;
};

} // namespace vip

#endif // VIP_SIM_FAULT_HH
