/**
 * @file
 * Parallel sweep engine: a fixed-size thread pool for running many
 * independent simulations (bench sweep points, BP tiles, per-layer CNN
 * slices) concurrently on host threads.
 *
 * The paper's methodology (Sec. V-A) measures one *independent tile*
 * per data point — work that shares no simulated PEs, DRAM, or network
 * with its peers — so a sweep is embarrassingly parallel across host
 * cores. The engine enforces the determinism contract that makes this
 * safe to exploit:
 *
 *  - **One VipSystem per thread.** Every job constructs, runs, and
 *    destroys its own VipSystem; nothing simulated is shared between
 *    jobs. `VipSystem::run()` asserts it is never entered concurrently.
 *  - **Results keyed by submission index**, never by completion order:
 *    `SweepEngine::run()` returns `results[i]` for `jobs[i]` no matter
 *    which worker finished first.
 *  - **Per-job seeded Rng.** Jobs must not share generators; derive a
 *    seed from the submission index with `jobSeed()` (or seed locally
 *    with a constant, as the bench harness does) so a point's input
 *    data does not depend on scheduling.
 *
 * With `jobs == 1` the engine spawns no threads and runs every job
 * inline on the calling thread, byte-identically reproducing the old
 * serial behaviour.
 */

#ifndef VIP_SIM_SWEEP_HH
#define VIP_SIM_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "sim/mutex.hh"

namespace vip {

/**
 * What went wrong in one sweep job, captured structurally so a sweep
 * harness can attach the failure to its point instead of losing the
 * whole campaign. `kind` is SimError::kind() for simulator errors
 * ("config", "deadlock", ...), "exception" for other std::exceptions,
 * and "unknown" for anything else thrown.
 */
struct SweepFailure
{
    std::size_t index = 0;  ///< submission index of the failed job
    std::string kind;
    std::string message;    ///< one-line summary (what()/message())
    std::string detail;     ///< multi-line report (e.g. deadlock
                            ///< diagnosis); empty when there is none
    unsigned attempts = 1;  ///< executions including retries
};

/**
 * Bounded retry with exponential backoff for *transient host*
 * failures only — TransientError and std::bad_alloc. Deterministic
 * simulation failures (a bad config, a deadlock) recur identically
 * and are never retried. A retried job re-invokes the same callable,
 * which by the engine's contract rebuilds its simulation from the
 * spec, so a point that succeeds on attempt N is byte-identical to
 * one that succeeded on attempt 1.
 */
struct RetryPolicy
{
    /** Extra attempts after the first (0 = fail fast). */
    unsigned maxRetries = 0;

    /** Backoff before retry k is base << min(k, 10) milliseconds. */
    unsigned backoffBaseMs = 1;
};

/** Deterministic per-job RNG seed (SplitMix64 scramble of the index). */
inline std::uint64_t
jobSeed(std::size_t index, std::uint64_t base = 0x9e3779b97f4a7c15ull)
{
    std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * The host-thread budget for a composed run: @p jobs sweep workers,
 * each potentially driving an island-partitioned system on @p islands
 * threads (system/partition.hh), multiply. Zero for either argument
 * means "the default" (hardware concurrency for jobs, serial for
 * islands). Returns the product, and sets *oversubscribed when the
 * product exceeds the host's hardware concurrency — callers warn
 * (vip-run, vip-serve, the benches) so a 16-job x 8-island footgun is
 * visible before the machine starts thrashing.
 */
unsigned hostThreadBudget(unsigned jobs, unsigned islands,
                          bool *oversubscribed = nullptr);

class SweepEngine
{
  public:
    /**
     * @param jobs  worker count; 0 picks the host's hardware
     *              concurrency, 1 runs inline with no threads.
     */
    explicit SweepEngine(unsigned jobs = 0);

    /** Joins the workers; pending jobs are completed first. */
    ~SweepEngine();

    SweepEngine(const SweepEngine &) = delete;
    SweepEngine &operator=(const SweepEngine &) = delete;

    /** Number of jobs that can make progress at once (>= 1). */
    unsigned jobs() const { return jobs_; }

    /** The default worker count for `jobs == 0` (>= 1). */
    static unsigned hardwareJobs();

    /** Set the transient-failure retry policy for jobs submitted from
     *  now on (default: no retries). */
    void setRetryPolicy(const RetryPolicy &policy);

    /** Total transient-failure retries performed so far. */
    std::uint64_t
    retries() const
    {
        return retries_.load(std::memory_order_relaxed);
    }

    /**
     * Submit one job. Jobs may run on any worker thread, in any order;
     * never share mutable state (a VipSystem, an Rng, a StatGroup)
     * between jobs. @return the job's submission index.
     */
    std::size_t submit(std::function<void()> fn);

    /**
     * Block until every job submitted so far has finished. If any job
     * threw, rethrows the exception of the lowest-indexed failed job
     * (deterministic regardless of completion order).
     */
    void wait();

    /**
     * Block until every job submitted so far has finished and return
     * the failures (sorted by submission index) instead of throwing —
     * the isolation primitive: a wedged or misconfigured point reports
     * itself here while its siblings' results stand.
     */
    std::vector<SweepFailure> waitCollect();

    /**
     * Run a whole sweep: execute every callable and return its results
     * keyed by submission index. `R` must be default-constructible.
     */
    template <typename R>
    std::vector<R>
    run(const std::vector<std::function<R()>> &points)
    {
        std::vector<R> results(points.size());
        for (std::size_t i = 0; i < points.size(); ++i) {
            submit([&results, &points, i] { results[i] = points[i](); });
        }
        wait();
        return results;
    }

    /** One point's outcome from runResilient(). */
    template <typename R>
    struct Outcome
    {
        R result{};           ///< default-constructed when !ok
        bool ok = true;
        SweepFailure failure; ///< meaningful only when !ok
    };

    /**
     * Like run(), but a throwing point marks only its own outcome
     * failed (carrying the structured failure) and every other point
     * completes normally.
     */
    template <typename R>
    std::vector<Outcome<R>>
    runResilient(const std::vector<std::function<R()>> &points)
    {
        std::vector<Outcome<R>> outcomes(points.size());
        std::size_t base = 0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            const std::size_t idx = submit([&outcomes, &points, i] {
                outcomes[i].result = points[i]();
            });
            if (i == 0)
                base = idx;
        }
        for (SweepFailure &f : waitCollect()) {
            // Failures are keyed by global submission index; only map
            // the ones belonging to this batch.
            if (f.index < base || f.index - base >= outcomes.size())
                continue;
            const std::size_t i = f.index - base;
            outcomes[i].ok = false;
            outcomes[i].failure = std::move(f);
        }
        return outcomes;
    }

  private:
    struct Job
    {
        std::size_t index;
        std::function<void()> fn;
    };

    void workerLoop(unsigned worker_id);
    void runJob(const Job &job);

    unsigned jobs_ = 1;
    std::vector<std::thread> workers_;

    /** Guards every field below: the queue, the in-flight accounting,
     *  and the failure captures. Workers and the submitting thread
     *  meet nowhere else (jobs themselves share nothing by contract). */
    Mutex mutex_;
    CondVar workAvailable_;
    CondVar allDone_;
    std::deque<Job> queue_ VIP_GUARDED_BY(mutex_);
    std::size_t nextIndex_ VIP_GUARDED_BY(mutex_) = 0;  ///< submissions
    std::size_t inFlight_ VIP_GUARDED_BY(mutex_) = 0;   ///< queued+running
    bool shuttingDown_ VIP_GUARDED_BY(mutex_) = false;
    RetryPolicy retryPolicy_ VIP_GUARDED_BY(mutex_);
    std::atomic<std::uint64_t> retries_{0};

    /** (submission index, exception) for failed jobs, kept for
     *  wait()'s rethrow; failures_ carries the structured capture. */
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors_
        VIP_GUARDED_BY(mutex_);
    std::vector<SweepFailure> failures_ VIP_GUARDED_BY(mutex_);
};

} // namespace vip

#endif // VIP_SIM_SWEEP_HH
