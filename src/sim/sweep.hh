/**
 * @file
 * Parallel sweep engine: a fixed-size thread pool for running many
 * independent simulations (bench sweep points, BP tiles, per-layer CNN
 * slices) concurrently on host threads.
 *
 * The paper's methodology (Sec. V-A) measures one *independent tile*
 * per data point — work that shares no simulated PEs, DRAM, or network
 * with its peers — so a sweep is embarrassingly parallel across host
 * cores. The engine enforces the determinism contract that makes this
 * safe to exploit:
 *
 *  - **One VipSystem per thread.** Every job constructs, runs, and
 *    destroys its own VipSystem; nothing simulated is shared between
 *    jobs. `VipSystem::run()` asserts it is never entered concurrently.
 *  - **Results keyed by submission index**, never by completion order:
 *    `SweepEngine::run()` returns `results[i]` for `jobs[i]` no matter
 *    which worker finished first.
 *  - **Per-job seeded Rng.** Jobs must not share generators; derive a
 *    seed from the submission index with `jobSeed()` (or seed locally
 *    with a constant, as the bench harness does) so a point's input
 *    data does not depend on scheduling.
 *
 * With `jobs == 1` the engine spawns no threads and runs every job
 * inline on the calling thread, byte-identically reproducing the old
 * serial behaviour.
 */

#ifndef VIP_SIM_SWEEP_HH
#define VIP_SIM_SWEEP_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vip {

/** Deterministic per-job RNG seed (SplitMix64 scramble of the index). */
inline std::uint64_t
jobSeed(std::size_t index, std::uint64_t base = 0x9e3779b97f4a7c15ull)
{
    std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

class SweepEngine
{
  public:
    /**
     * @param jobs  worker count; 0 picks the host's hardware
     *              concurrency, 1 runs inline with no threads.
     */
    explicit SweepEngine(unsigned jobs = 0);

    /** Joins the workers; pending jobs are completed first. */
    ~SweepEngine();

    SweepEngine(const SweepEngine &) = delete;
    SweepEngine &operator=(const SweepEngine &) = delete;

    /** Number of jobs that can make progress at once (>= 1). */
    unsigned jobs() const { return jobs_; }

    /** The default worker count for `jobs == 0` (>= 1). */
    static unsigned hardwareJobs();

    /**
     * Submit one job. Jobs may run on any worker thread, in any order;
     * never share mutable state (a VipSystem, an Rng, a StatGroup)
     * between jobs. @return the job's submission index.
     */
    std::size_t submit(std::function<void()> fn);

    /**
     * Block until every job submitted so far has finished. If any job
     * threw, rethrows the exception of the lowest-indexed failed job
     * (deterministic regardless of completion order).
     */
    void wait();

    /**
     * Run a whole sweep: execute every callable and return its results
     * keyed by submission index. `R` must be default-constructible.
     */
    template <typename R>
    std::vector<R>
    run(const std::vector<std::function<R()>> &points)
    {
        std::vector<R> results(points.size());
        for (std::size_t i = 0; i < points.size(); ++i) {
            submit([&results, &points, i] { results[i] = points[i](); });
        }
        wait();
        return results;
    }

  private:
    struct Job
    {
        std::size_t index;
        std::function<void()> fn;
    };

    void workerLoop(unsigned worker_id);
    void runJob(const Job &job);

    unsigned jobs_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::deque<Job> queue_;
    std::size_t nextIndex_ = 0;   ///< submission counter
    std::size_t inFlight_ = 0;    ///< queued + currently running
    bool shuttingDown_ = false;

    /** (submission index, exception) for failed jobs. */
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors_;
};

} // namespace vip

#endif // VIP_SIM_SWEEP_HH
