#include "sim/fault.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "sim/error.hh"
#include "sim/logging.hh"

namespace vip {

namespace {

/** SplitMix64 finalizer: the same scramble Rng and jobSeed() use. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

double
toUnit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double
parseRate(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const double rate = std::strtod(value.c_str(), &end);
    if (end != value.c_str() + value.size() || !std::isfinite(rate) ||
        rate < 0.0 || rate > 1.0) {
        throw ConfigError("fault spec: " + key + "=" + value +
                          " is not a probability in [0, 1]");
    }
    return rate;
}

void
appendRate(std::ostringstream &os, const char *key, double rate)
{
    if (rate > 0.0)
        os << "," << key << "=" << rate;
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    plan.enabled = true;

    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            throw ConfigError("fault spec: '" + item +
                              "' is not key=value");
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "seed") {
            char *end = nullptr;
            plan.seed = std::strtoull(value.c_str(), &end, 0);
            if (end != value.c_str() + value.size()) {
                throw ConfigError("fault spec: seed=" + value +
                                  " is not an integer");
            }
        } else if (key == "dram-read") {
            plan.dramReadBitFlipRate = parseRate(key, value);
        } else if (key == "retention") {
            plan.retentionErrorRate = parseRate(key, value);
        } else if (key == "noc-drop") {
            plan.nocDropRate = parseRate(key, value);
        } else if (key == "noc-corrupt") {
            plan.nocCorruptRate = parseRate(key, value);
        } else if (key == "sp-flip") {
            plan.spBitFlipRate = parseRate(key, value);
        } else if (key == "ecc") {
            if (value == "on") {
                plan.eccEnabled = true;
            } else if (value == "off") {
                plan.eccEnabled = false;
            } else {
                throw ConfigError("fault spec: ecc=" + value +
                                  " (expected on or off)");
            }
        } else {
            throw ConfigError(
                "fault spec: unknown key '" + key +
                "' (expected seed, dram-read, retention, noc-drop, "
                "noc-corrupt, sp-flip, or ecc)");
        }
    }
    plan.validate();
    return plan;
}

std::string
FaultPlan::toString() const
{
    std::ostringstream os;
    os << "seed=" << seed;
    appendRate(os, "dram-read", dramReadBitFlipRate);
    appendRate(os, "retention", retentionErrorRate);
    appendRate(os, "noc-drop", nocDropRate);
    appendRate(os, "noc-corrupt", nocCorruptRate);
    appendRate(os, "sp-flip", spBitFlipRate);
    os << ",ecc=" << (eccEnabled ? "on" : "off");
    return os.str();
}

void
FaultPlan::validate() const
{
    const struct { const char *name; double rate; } rates[] = {
        {"dram-read", dramReadBitFlipRate},
        {"retention", retentionErrorRate},
        {"noc-drop", nocDropRate},
        {"noc-corrupt", nocCorruptRate},
        {"sp-flip", spBitFlipRate},
    };
    for (const auto &[name, rate] : rates) {
        if (!std::isfinite(rate) || rate < 0.0 || rate > 1.0) {
            throw ConfigError(std::string("fault plan: ") + name +
                              " rate must be in [0, 1]");
        }
    }
}

FaultInjector::FaultInjector(const FaultPlan &plan) : plan_(plan)
{
    plan_.validate();
}

std::uint64_t
FaultInjector::diceFor(FaultSite::Kind kind, std::uint64_t a,
                       std::uint64_t b) const
{
    std::uint64_t h = mix64(plan_.seed +
                            0x9e3779b97f4a7c15ull *
                                (static_cast<std::uint64_t>(kind) + 1));
    h = mix64(h ^ a);
    return mix64(h ^ b);
}

bool
FaultInjector::hit(std::uint64_t dice, double rate)
{
    return rate > 0.0 && toUnit(dice) < rate;
}

void
FaultInjector::record(FaultSite::Kind kind, std::uint64_t a,
                      std::uint64_t b)
{
    // Caller holds mu_ (VIP_REQUIRES in the header).
    if (sites_.size() >= kMaxRecordedSites) {
        sitesTruncated_ = true;
        return;
    }
    sites_.push_back({kind, a, b});
}

void
FaultInjector::toggleAndRecord(Addr addr, unsigned bit)
{
    vip_assert(toggle_, "fault injector used before bindStorage()");
    vip_assert(bit < 8, "bit index out of byte range");
    toggle_(addr, bit);
    const Addr word = addr & ~Addr{7};
    const unsigned word_bit = static_cast<unsigned>(addr - word) * 8 + bit;
    flipped_[word] ^= std::uint64_t{1} << word_bit;
    if (flipped_[word] == 0)
        flipped_.erase(word);
}

void
FaultInjector::scrubWord(Addr word)
{
    const auto it = flipped_.find(word);
    if (it == flipped_.end())
        return;
    const int n = std::popcount(it->second);
    if (n == 1) {
        // SECDED corrects the single-bit upset in place.
        const unsigned word_bit =
            static_cast<unsigned>(std::countr_zero(it->second));
        toggle_(word + word_bit / 8, word_bit % 8);
        flipped_.erase(it);
        ++stats_.eccCorrected;
    } else if (n == 2) {
        // Detected-uncorrectable: flagged, data stays corrupt.
        ++stats_.eccDetected;
    } else {
        // Three or more flips alias into a valid codeword.
        ++stats_.eccSilent;
    }
}

void
FaultInjector::onDramRead(Addr addr, std::uint64_t bytes, unsigned src)
{
    if (bytes == 0)
        return;
    LockGuard lock(mu_);
    const Addr first = addr & ~Addr{7};
    const Addr last = (addr + bytes - 1) & ~Addr{7};
    const bool roll = plan_.dramReadBitFlipRate > 0.0;
    const bool scrub = plan_.eccEnabled && !flipped_.empty();
    if (!roll && !scrub)
        return;
    for (Addr word = first;; word += 8) {
        if (roll) {
            // The event identity is (word, reader, how many times this
            // reader has read this word): program order per reader, so
            // deterministic under any host-thread interleaving. The
            // reader id shares the low 12 bits of the map key and the
            // dice's b operand with the ordinal shifted above it.
            const std::uint64_t key =
                ((word >> 3) << 12) | (src & 0xfffu);
            const std::uint64_t ordinal = ++readOrdinal_[key];
            const std::uint64_t dice =
                diceFor(FaultSite::Kind::DramRead, word,
                        (ordinal << 12) | (src & 0xfffu));
            if (hit(dice, plan_.dramReadBitFlipRate)) {
                const unsigned word_bit =
                    static_cast<unsigned>(mix64(dice) % 64);
                toggleAndRecord(word + word_bit / 8, word_bit % 8);
                ++stats_.dramBitFlips;
                record(FaultSite::Kind::DramRead, word + word_bit / 8,
                       word_bit % 8);
            }
        }
        if (plan_.eccEnabled)
            scrubWord(word);
        if (word == last)
            break;
    }
}

void
FaultInjector::onDramWrite(Addr addr, std::uint64_t bytes)
{
    if (bytes == 0)
        return;
    LockGuard lock(mu_);
    if (flipped_.empty())
        return;
    const Addr first = addr & ~Addr{7};
    const Addr last = (addr + bytes - 1) & ~Addr{7};
    for (Addr word = first;; word += 8) {
        const auto it = flipped_.find(word);
        if (it != flipped_.end()) {
            // Mask of bits in bytes the write covers within this word.
            const Addr lo = addr > word ? addr - word : 0;
            const Addr hi =
                addr + bytes < word + 8 ? addr + bytes - word : 8;
            std::uint64_t cover = ~std::uint64_t{0};
            if (hi - lo < 8) {
                cover = ((std::uint64_t{1} << ((hi - lo) * 8)) - 1)
                        << (lo * 8);
            }
            it->second &= ~cover;
            if (it->second == 0)
                flipped_.erase(it);
        }
        if (word == last)
            break;
    }
}

bool
FaultInjector::retentionStrike(unsigned vault, std::uint64_t refreshIndex,
                               std::uint64_t *entropy)
{
    // Pure hash of immutable state (plan_); no lock needed.
    const std::uint64_t dice =
        diceFor(FaultSite::Kind::Retention, vault, refreshIndex);
    if (!hit(dice, plan_.retentionErrorRate))
        return false;
    *entropy = mix64(dice);
    return true;
}

void
FaultInjector::plantRetentionFlip(Addr addr, unsigned bit)
{
    LockGuard lock(mu_);
    toggleAndRecord(addr, bit);
    ++stats_.retentionErrors;
    record(FaultSite::Kind::Retention, addr, bit);
}

FaultInjector::NocVerdict
FaultInjector::onNocArrival(std::uint64_t seq, unsigned attempts)
{
    if (hit(diceFor(FaultSite::Kind::NocDrop, seq, attempts),
            plan_.nocDropRate)) {
        LockGuard lock(mu_);
        ++stats_.nocDropped;
        ++stats_.nocRetransmits;
        record(FaultSite::Kind::NocDrop, seq, attempts);
        return NocVerdict::Drop;
    }
    if (hit(diceFor(FaultSite::Kind::NocCorrupt, seq, attempts),
            plan_.nocCorruptRate)) {
        LockGuard lock(mu_);
        ++stats_.nocCorrupted;
        ++stats_.nocRetransmits;
        record(FaultSite::Kind::NocCorrupt, seq, attempts);
        return NocVerdict::Corrupt;
    }
    return NocVerdict::Deliver;
}

long
FaultInjector::spFlip(unsigned peId, std::uint64_t instIndex,
                      std::uint64_t bitSpace)
{
    const std::uint64_t dice =
        diceFor(FaultSite::Kind::SpFlip, peId, instIndex);
    if (!hit(dice, plan_.spBitFlipRate))
        return -1;
    const auto bit = static_cast<long>(mix64(dice) % bitSpace);
    LockGuard lock(mu_);
    ++stats_.spBitFlips;
    record(FaultSite::Kind::SpFlip, peId,
           static_cast<std::uint64_t>(bit));
    return bit;
}

std::vector<std::pair<Addr, std::uint64_t>>
FaultInjector::outstandingFlips() const
{
    LockGuard lock(mu_);
    std::vector<std::pair<Addr, std::uint64_t>> flips;
    flips.reserve(flipped_.size());
    // Hash-order scan only collects entries; callers see the sorted
    // copy. // vip-lint: allow(unordered-iter)
    for (const auto &entry : flipped_)
        flips.emplace_back(entry.first, entry.second);
    std::sort(flips.begin(), flips.end());
    return flips;
}

void
FaultInjector::plantBitFlip(Addr addr, unsigned bit)
{
    LockGuard lock(mu_);
    toggleAndRecord(addr, bit);
    ++stats_.dramBitFlips;
    record(FaultSite::Kind::Planted, addr, bit);
}

} // namespace vip
