/**
 * @file
 * Fundamental types shared across the VIP simulator.
 */

#ifndef VIP_SIM_TYPES_HH
#define VIP_SIM_TYPES_HH

#include <cstdint>

namespace vip {

/** Simulated clock cycle count. The whole system runs at 1.25 GHz. */
using Cycles = std::uint64_t;

/** Physical DRAM byte address within the HMC stack. */
using Addr = std::uint64_t;

/** Byte address within a PE's 4 KiB scratchpad. */
using SpAddr = std::uint32_t;

/** System clock frequency (Hz): 1.25 GHz, 0.8 ns cycle (Sec. III). */
inline constexpr double kClockHz = 1.25e9;

/** Seconds per simulated cycle. */
inline constexpr double kSecondsPerCycle = 1.0 / kClockHz;

/** Convert a cycle count to milliseconds of simulated time. */
inline constexpr double
cyclesToMs(Cycles c)
{
    return static_cast<double>(c) * kSecondsPerCycle * 1e3;
}

/** Convert nanoseconds of DRAM timing into (rounded-up) clock cycles. */
inline constexpr Cycles
nsToCycles(double ns)
{
    double cycles = ns * 1e-9 * kClockHz;
    auto whole = static_cast<Cycles>(cycles);
    // Tolerate float fuzz: 0.8 ns is exactly one 1.25 GHz cycle.
    return (cycles - static_cast<double>(whole) > 1e-6) ? whole + 1
                                                        : whole;
}

} // namespace vip

#endif // VIP_SIM_TYPES_HH
