#include "sim/stats.hh"

#include "sim/logging.hh"

namespace vip {

Counter::Counter(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    vip_assert(parent != nullptr, "counter '", name_, "' needs a group");
    parent->addCounter(this);
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name))
{
    if (parent)
        parent->children_.push_back(this);
}

void
StatGroup::addCounter(Counter *c)
{
    counters_.push_back(c);
}

void
StatGroup::addFormula(std::string name, std::string desc,
                      std::function<double()> fn)
{
    formulas_.push_back({std::move(name), std::move(desc), std::move(fn)});
}

void
StatGroup::resetStats()
{
    for (auto *c : counters_)
        c->reset();
    for (auto *g : children_)
        g->resetStats();
}

void
StatGroup::dump(std::ostream &os) const
{
    dumpImpl(os, "");
}

void
StatGroup::dumpImpl(std::ostream &os, const std::string &prefix) const
{
    const std::string base = prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto *c : counters_) {
        os << base << "." << c->name() << " " << c->value() << " # "
           << c->desc() << "\n";
    }
    for (const auto &f : formulas_) {
        os << base << "." << f.name << " " << f.fn() << " # " << f.desc
           << "\n";
    }
    for (const auto *g : children_)
        g->dumpImpl(os, base);
}

const Counter *
StatGroup::findCounter(const std::string &name) const
{
    for (const auto *c : counters_) {
        if (c->name() == name)
            return c;
    }
    return nullptr;
}

double
StatGroup::evalFormula(const std::string &name) const
{
    for (const auto &f : formulas_) {
        if (f.name == name)
            return f.fn();
    }
    vip_panic("no formula named '", name, "' in group '", name_, "'");
}

} // namespace vip
