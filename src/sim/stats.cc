#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace vip {

namespace {

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default: os << c;
        }
    }
    os << '"';
}

void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";  // JSON has no NaN/Inf
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

} // namespace

Counter::Counter(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    vip_assert(parent != nullptr, "counter '", name_, "' needs a group");
    parent->addCounter(this);
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name))
{
    if (parent)
        parent->children_.push_back(this);
}

void
StatGroup::addCounter(Counter *c)
{
    counters_.push_back(c);
}

void
StatGroup::addFormula(std::string name, std::string desc,
                      std::function<double()> fn)
{
    formulas_.push_back({std::move(name), std::move(desc), std::move(fn)});
}

void
StatGroup::resetStats()
{
    for (auto *c : counters_)
        c->reset();
    for (auto *g : children_)
        g->resetStats();
}

void
StatGroup::dump(std::ostream &os) const
{
    dumpImpl(os, "");
}

void
StatGroup::dumpImpl(std::ostream &os, const std::string &prefix) const
{
    const std::string base = prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto *c : counters_) {
        os << base << "." << c->name() << " " << c->value() << " # "
           << c->desc() << "\n";
    }
    for (const auto &f : formulas_) {
        os << base << "." << f.name << " " << f.fn() << " # " << f.desc
           << "\n";
    }
    for (const auto *g : children_)
        g->dumpImpl(os, base);
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{\n  ";
    jsonEscape(os, name_);
    os << ": ";
    dumpJsonImpl(os, 1);
    os << "\n}\n";
}

void
StatGroup::dumpJsonImpl(std::ostream &os, unsigned depth) const
{
    // Gather every member under one sorted key list so the emitted
    // ordering is independent of registration order.
    struct Entry
    {
        const std::string *key;
        const Counter *counter = nullptr;
        const Formula *formula = nullptr;
        const StatGroup *group = nullptr;
    };
    std::vector<Entry> entries;
    entries.reserve(counters_.size() + formulas_.size() +
                    children_.size());
    for (const auto *c : counters_)
        entries.push_back({&c->name(), c, nullptr, nullptr});
    for (const auto &f : formulas_)
        entries.push_back({&f.name, nullptr, &f, nullptr});
    for (const auto *g : children_)
        entries.push_back({&g->name(), nullptr, nullptr, g});
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry &a, const Entry &b) {
                         return *a.key < *b.key;
                     });

    const std::string pad((depth + 1) * 2, ' ');
    os << "{";
    bool first = true;
    for (const auto &e : entries) {
        os << (first ? "\n" : ",\n") << pad;
        first = false;
        jsonEscape(os, *e.key);
        os << ": ";
        if (e.counter) {
            os << e.counter->value();
        } else if (e.formula) {
            jsonNumber(os, e.formula->fn());
        } else {
            e.group->dumpJsonImpl(os, depth + 1);
        }
    }
    if (!first)
        os << "\n" << std::string(depth * 2, ' ');
    os << "}";
}

void
StatGroup::visit(const Visitor &v) const
{
    visitImpl(v, "");
}

void
StatGroup::visitImpl(const Visitor &v, const std::string &prefix) const
{
    const std::string base = prefix.empty() ? name_ : prefix + "." + name_;
    if (v.onCounter) {
        for (const auto *c : counters_)
            v.onCounter(base + "." + c->name(), c->value(), c->desc());
    }
    if (v.onFormula) {
        for (const auto &f : formulas_)
            v.onFormula(base + "." + f.name, f.fn(), f.desc);
    }
    for (const auto *g : children_)
        g->visitImpl(v, base);
}

const Counter *
StatGroup::findCounterByPath(const std::string &dotted) const
{
    const StatGroup *group = this;
    std::size_t start = 0;
    for (;;) {
        const std::size_t dot = dotted.find('.', start);
        const std::string seg = dotted.substr(
            start, dot == std::string::npos ? std::string::npos
                                            : dot - start);
        if (dot == std::string::npos)
            return group->findCounter(seg);
        const StatGroup *next = nullptr;
        for (const auto *g : group->children_) {
            if (g->name() == seg) {
                next = g;
                break;
            }
        }
        if (!next)
            return nullptr;
        group = next;
        start = dot + 1;
    }
}

const Counter *
StatGroup::findCounter(const std::string &name) const
{
    for (const auto *c : counters_) {
        if (c->name() == name)
            return c;
    }
    return nullptr;
}

double
StatGroup::evalFormula(const std::string &name) const
{
    for (const auto &f : formulas_) {
        if (f.name == name)
            return f.fn();
    }
    vip_panic("no formula named '", name, "' in group '", name_, "'");
}

} // namespace vip
