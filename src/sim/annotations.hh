/**
 * @file
 * Clang thread-safety annotation macros.
 *
 * These wrap Clang's capability-analysis attributes so the compiler
 * itself checks the repo's locking contracts: a field marked
 * VIP_GUARDED_BY(m) may only be touched while `m` is held, a function
 * marked VIP_REQUIRES(m) may only be called with `m` held, and a
 * violation is a *compile error* under `-Wthread-safety
 * -Werror=thread-safety` (the CI clang leg). Under GCC (which has no
 * such analysis) every macro expands to nothing, so the annotations
 * cost zero and change nothing at runtime.
 *
 * The annotated lock types that carry these attributes — vip::Mutex,
 * vip::LockGuard, vip::CondVar — live in sim/mutex.hh; use those, not
 * raw std::mutex, for any state shared between host threads.
 * (libstdc++'s std::mutex is not annotated, so the analysis cannot
 * see through it.)
 *
 * Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
 * — the macro set below is the canonical mapping from that page,
 * prefixed VIP_ to keep the repo grep-able.
 */

#ifndef VIP_SIM_ANNOTATIONS_HH
#define VIP_SIM_ANNOTATIONS_HH

#if defined(__clang__)
#define VIP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VIP_THREAD_ANNOTATION(x)  // no-op: GCC has no capability analysis
#endif

/** Class attribute: instances are lockable capabilities ("mutex"). */
#define VIP_CAPABILITY(x) VIP_THREAD_ANNOTATION(capability(x))

/** Class attribute: RAII object that acquires on construction and
 *  releases on destruction (std::lock_guard shape). */
#define VIP_SCOPED_CAPABILITY VIP_THREAD_ANNOTATION(scoped_lockable)

/** Field attribute: reads/writes require holding the capability. */
#define VIP_GUARDED_BY(x) VIP_THREAD_ANNOTATION(guarded_by(x))

/** Field attribute: the *pointee* of this pointer is guarded. */
#define VIP_PT_GUARDED_BY(x) VIP_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function attribute: caller must hold the capability. */
#define VIP_REQUIRES(...)                                                   \
    VIP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function attribute: acquires the capability (must not be held). */
#define VIP_ACQUIRE(...)                                                    \
    VIP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function attribute: releases the capability (must be held). */
#define VIP_RELEASE(...)                                                    \
    VIP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function attribute: acquires on a @p b return value. */
#define VIP_TRY_ACQUIRE(b, ...)                                             \
    VIP_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/** Function attribute: caller must NOT hold the capability. */
#define VIP_EXCLUDES(...) VIP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function attribute: returns a reference to the capability. */
#define VIP_RETURN_CAPABILITY(x) VIP_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch for functions the analysis cannot model (condition
 *  variable wait re-acquisition, test scaffolding). Every use needs a
 *  comment saying why. */
#define VIP_NO_THREAD_SAFETY_ANALYSIS                                       \
    VIP_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // VIP_SIM_ANNOTATIONS_HH
