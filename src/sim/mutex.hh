/**
 * @file
 * Annotated lock primitives: thin wrappers over std::mutex /
 * std::condition_variable that carry the Clang thread-safety
 * attributes from sim/annotations.hh.
 *
 * libstdc++ does not annotate its synchronization types, so code
 * locking a raw std::mutex is invisible to `-Wthread-safety`. These
 * wrappers restore the analysis: declare shared state
 * `VIP_GUARDED_BY(mutex_)`, take a `LockGuard` where you would have
 * taken a `std::lock_guard`/`std::unique_lock`, and the clang CI leg
 * rejects any access that can race. The wrappers compile to exactly
 * the std calls (everything is inline and attribute-only), so GCC
 * builds are bit-identical in behaviour.
 *
 * `LockGuard` supports the unique_lock idioms the repo uses: manual
 * `unlock()`/`lock()` for hand-over-hand emission (serve.cc) and
 * condition waits through `CondVar`, which adopts the guard's
 * underlying mutex for the duration of the wait.
 */

#ifndef VIP_SIM_MUTEX_HH
#define VIP_SIM_MUTEX_HH

#include <condition_variable>
#include <mutex>

#include "sim/annotations.hh"

namespace vip {

class CondVar;

/** An annotated std::mutex: the capability the analysis tracks. */
class VIP_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() VIP_ACQUIRE() { m_.lock(); }
    void unlock() VIP_RELEASE() { m_.unlock(); }
    bool tryLock() VIP_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex m_;
};

/**
 * RAII guard over a Mutex, with std::unique_lock's manual
 * unlock()/lock() escape for hand-over-hand patterns. Non-movable:
 * a guard's scope IS the critical section.
 */
class VIP_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &m) VIP_ACQUIRE(m) : mutex_(m)
    {
        mutex_.lock();
    }

    ~LockGuard() VIP_RELEASE()
    {
        if (held_)
            mutex_.unlock();
    }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

    /** Temporarily exit the critical section (e.g. to do I/O). */
    void
    unlock() VIP_RELEASE()
    {
        mutex_.unlock();
        held_ = false;
    }

    /** Re-enter after unlock(). */
    void
    lock() VIP_ACQUIRE()
    {
        mutex_.lock();
        held_ = true;
    }

  private:
    friend class CondVar;
    Mutex &mutex_;
    bool held_ = true;
};

/**
 * Condition variable for Mutex/LockGuard. wait() adopts the guard's
 * underlying std::mutex, so it is exactly a
 * std::condition_variable::wait — no condition_variable_any overhead.
 *
 * The analysis cannot model a wait's release-and-reacquire cycle, so
 * the wait methods are opted out; the capability is held again when
 * they return, which is what callers observe.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

    /** Atomically release @p guard, block, re-acquire. @p guard must
     *  be held (locked) on entry; it is held again on return. */
    void
    wait(LockGuard &guard) VIP_NO_THREAD_SAFETY_ANALYSIS
    {
        std::unique_lock<std::mutex> native(guard.mutex_.m_,
                                            std::adopt_lock);
        cv_.wait(native);
        native.release();  // the LockGuard still owns the lock
    }

    /** wait() until @p pred holds; pred runs with the lock held. */
    template <typename Pred>
    void
    wait(LockGuard &guard, Pred pred) VIP_NO_THREAD_SAFETY_ANALYSIS
    {
        std::unique_lock<std::mutex> native(guard.mutex_.m_,
                                            std::adopt_lock);
        cv_.wait(native, std::move(pred));
        native.release();
    }

  private:
    std::condition_variable cv_;
};

} // namespace vip

#endif // VIP_SIM_MUTEX_HH
