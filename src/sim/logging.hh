/**
 * @file
 * Logging and error-reporting helpers for the VIP simulator.
 *
 * Follows the gem5 convention: panic() is for simulator bugs (conditions
 * that should never happen regardless of user input) and aborts; fatal()
 * is for user errors (bad configuration, malformed assembly) and exits
 * with an error code; warn()/inform() report conditions without stopping
 * the simulation.
 *
 * The sink is thread-safe: records are formatted off-lock, emitted as
 * one atomic write each, and can carry a per-thread label (see
 * setLogThreadLabel) so parallel sweep jobs remain attributable.
 */

#ifndef VIP_SIM_LOGGING_HH
#define VIP_SIM_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace vip {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Format and emit one log record; terminates for Fatal and Panic. */
[[noreturn]] void logAndDie(LogLevel level, const std::string &msg,
                            const char *file, int line);

void logMessage(LogLevel level, const std::string &msg);

template <typename... Args>
std::string
formatArgs(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Number of warnings emitted so far (exposed for tests). */
std::size_t warnCount();

/**
 * Tag every log record emitted by the calling thread with @p label
 * (e.g. "job7"); an empty label clears the tag. The SweepEngine sets
 * this around each job so concurrent workers' records are attributable.
 */
void setLogThreadLabel(std::string label);

template <typename... Args>
void
inform(Args &&...args)
{
    detail::logMessage(LogLevel::Inform,
                       detail::formatArgs(std::forward<Args>(args)...));
}

template <typename... Args>
void
warn(Args &&...args)
{
    detail::logMessage(LogLevel::Warn,
                       detail::formatArgs(std::forward<Args>(args)...));
}

} // namespace vip

/** Unrecoverable user error: print and exit(1). */
#define vip_fatal(...)                                                      \
    ::vip::detail::logAndDie(::vip::LogLevel::Fatal,                        \
                             ::vip::detail::formatArgs(__VA_ARGS__),        \
                             __FILE__, __LINE__)

/** Simulator bug: print and abort(). */
#define vip_panic(...)                                                      \
    ::vip::detail::logAndDie(::vip::LogLevel::Panic,                        \
                             ::vip::detail::formatArgs(__VA_ARGS__),        \
                             __FILE__, __LINE__)

/** Internal invariant check; panics with the expression text on failure. */
#define vip_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            vip_panic("assertion failed: " #cond " ", ##__VA_ARGS__);       \
        }                                                                   \
    } while (0)

#endif // VIP_SIM_LOGGING_HH
