#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <exception>

#include "sim/mutex.hh"

namespace vip {

namespace {

std::atomic<std::size_t> warn_counter{0};

/** Serializes writes to the sink so concurrent records never interleave. */
Mutex sink_mutex;

/** Per-thread record tag (empty = untagged), set by the sweep engine. */
thread_local std::string thread_label;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

/** Format the complete record off-lock; one write() under the lock. */
void
emit(LogLevel level, const std::string &msg, const std::string &suffix)
{
    std::string line = "[";
    line += levelName(level);
    line += "] ";
    if (!thread_label.empty()) {
        line += "[";
        line += thread_label;
        line += "] ";
    }
    line += msg;
    line += suffix;
    line += "\n";
    LockGuard lock(sink_mutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace

std::size_t
warnCount()
{
    return warn_counter.load();
}

void
setLogThreadLabel(std::string label)
{
    thread_label = std::move(label);
}

namespace detail {

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Warn)
        ++warn_counter;
    emit(level, msg, "");
}

void
logAndDie(LogLevel level, const std::string &msg, const char *file, int line)
{
    std::string suffix = " (";
    suffix += file;
    suffix += ":";
    suffix += std::to_string(line);
    suffix += ")";
    emit(level, msg, suffix);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace vip
