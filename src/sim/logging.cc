#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <exception>

namespace vip {

namespace {

std::atomic<std::size_t> warn_counter{0};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

std::size_t
warnCount()
{
    return warn_counter.load();
}

namespace detail {

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Warn)
        ++warn_counter;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

void
logAndDie(LogLevel level, const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "[%s] %s (%s:%d)\n", levelName(level), msg.c_str(),
                 file, line);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace vip
