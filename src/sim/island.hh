/**
 * @file
 * The island scheduler: runs N partition islands of one machine on N
 * host threads in conservative quanta, deterministically.
 *
 * ## The protocol
 *
 * Every island gets its own thread and tick cursor. Time advances in
 * quanta of `quantum` cycles (the system uses the minimum cross-island
 * NoC link latency plus one: a flit leaving an island at cycle t
 * cannot arrive at a neighbor before t + hopLatency + serialization,
 * so within one quantum no island can affect another). Each round:
 *
 *   phase A  every island ticks its own components from the cursor to
 *            the quantum end, thread-confined and lock-free (it may
 *            fast-forward locally over its own dead cycles);
 *   barrier
 *   phase B  every island drains the mailboxes its neighbors filled
 *            during phase A, then reports (idle? next event? progress);
 *   barrier  the last thread to arrive runs the round decision: stop
 *            (all idle / deadline / watchdog-deadlock), or pick the
 *            next quantum — warping globally over dead cycles when
 *            every island's next event lies beyond the quantum end.
 *
 * The two barriers make each phase's writes visible to all threads
 * before anyone reads them, so the per-link mailboxes and the shared
 * round state need no locks of their own. Determinism comes from the
 * client's hooks (canonical event order inside each island, exchange
 * only at boundaries), not from this file; the scheduler only
 * guarantees the same sequence of quantum boundaries for a given
 * (hooks, quantum, deadline) regardless of thread interleaving.
 *
 * Exceptions thrown by hooks are captured per island; the scheduler
 * aborts the run at the next barrier and rethrows the lowest-island
 * exception on the caller's thread, so a DeadlockError or ConfigError
 * surfaces exactly once no matter which island hit it.
 */

#ifndef VIP_SIM_ISLAND_HH
#define VIP_SIM_ISLAND_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#include "sim/clocked.hh"
#include "sim/types.hh"

namespace vip {

class CancelToken;

/**
 * A reusable spin barrier with a completion callback: the last thread
 * to arrive runs the callback while the others wait, then everyone is
 * released. Spinning (with yields) instead of a mutex/condvar because
 * island quanta are a few cycles of simulated work — microseconds —
 * and a futex round trip per quantum would dominate.
 *
 * Memory ordering: arrivals are acq_rel RMWs on one atomic, so every
 * thread's pre-barrier writes happen-before the completion callback,
 * and the generation bump (release, after the callback) happens-before
 * every waiter's acquire-observation of it — all-to-all visibility per
 * crossing, which is what lets the mailboxes and round state stay
 * plain data.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(unsigned parties) : parties_(parties) {}

    /** Block until all parties arrive; the last one runs @p completion
     *  (may be empty) before releasing the rest. */
    void arriveAndWait(const std::function<void()> &completion = {});

  private:
    const unsigned parties_;
    std::atomic<unsigned> arrived_{0};
    std::atomic<std::uint64_t> generation_{0};
};

/**
 * How the scheduler drives the client's islands. All hooks take the
 * island index and are called on that island's thread only, except
 * where noted. Mandatory: tick, idle, nextEventAt, drainInboxes,
 * progress. Optional (may be null): fastForward, catchUp.
 */
struct IslandHooks
{
    /** Advance island @p i through cycle @p now (thread-confined). */
    std::function<void(unsigned i, Cycles now)> tick;

    /** Island @p i has no pending work of its own (undrained inbound
     *  mail does not count; the scheduler accounts for it). */
    std::function<bool(unsigned i)> idle;

    /** Earliest cycle >= @p now at which island @p i could change
     *  state on its own (kIdleForever when externally driven). */
    std::function<Cycles(unsigned i, Cycles now)> nextEventAt;

    /** Move mail addressed to island @p i into its queues; return
     *  true if anything arrived (a reactivation). Called between the
     *  barriers, when all producers have quiesced. */
    std::function<bool(unsigned i)> drainInboxes;

    /** Monotonic work counter for island @p i (deadlock watchdog). */
    std::function<std::uint64_t(unsigned i)> progress;

    /** Cycles [@p from, @p to) are being skipped for island @p i:
     *  replicate per-cycle observable behaviour (stall counters). */
    std::function<void(unsigned i, Cycles from, Cycles to)> fastForward;

    /**
     * Island @p i's cursor is moving to @p until without ticking the
     * cycles in between (it was idle, or the machine warped): replay
     * any timer-driven events with deadlines strictly before @p until
     * at their exact deadlines (DRAM refresh). Also called once with
     * the final cycle when the run stops.
     */
    std::function<void(unsigned i, Cycles until)> catchUp;
};

/** Drives one partitioned machine to completion. Single-use. */
class IslandScheduler
{
  public:
    struct Options
    {
        /** Quantum length in cycles; must not exceed the minimum
         *  cross-island event latency the hooks guarantee. */
        Cycles quantum = 4;

        /** Declare deadlock when no island makes progress for this
         *  many cycles (checked at quantum granularity). */
        Cycles watchdogCycles = 2'000'000;

        /** Allow intra-quantum and cross-quantum time warps. */
        bool fastForward = true;

        /**
         * Cooperative stop signal, polled by the round decision
         * between quanta (the cancelled flag every round, the
         * clock-reading deadline every kCancelPollRounds rounds).
         * Null = never stops early.
         */
        const CancelToken *cancel = nullptr;
    };

    struct Outcome
    {
        /** First cycle at which the whole machine was idle, or the
         *  deadline / deadlock cycle. */
        Cycles finalCycle = 0;

        /** The watchdog fired: no progress for watchdogCycles. */
        bool deadlocked = false;

        /** The run stopped because Options::cancel tripped; the
         *  caller turns this into CancelledError/TimeoutError. */
        bool cancelStopped = false;
    };

    IslandScheduler(unsigned islands, IslandHooks hooks, Options opt);

    /**
     * Run all islands from cycle @p start until the machine drains or
     * @p deadline is reached. Spawns islands - 1 threads; the calling
     * thread drives island 0. Rethrows the first (lowest-island)
     * exception any hook raised.
     */
    Outcome run(Cycles start, Cycles deadline);

  private:
    /** Per-island report, written by its own thread in phase B and
     *  read by the round decision under barrier ordering. */
    struct Slot
    {
        Cycles next = 0;          ///< next event (kIdleForever if idle)
        Cycles idleSince = 0;     ///< cursor when the island went idle
        std::uint64_t progress = 0;
        bool idle = false;
        /** Pad to a cache line: slots are written per-round by
         *  different threads; keep them from false-sharing. */
        char pad[64 - 2 * sizeof(Cycles) - sizeof(std::uint64_t) -
                 sizeof(bool)];
    };

    /** The current round, written only by the barrier-2 completion
     *  callback (one thread, all others parked in the barrier). */
    struct Round
    {
        Cycles begin = 0;     ///< first cycle of the quantum
        Cycles end = 0;       ///< one past the last cycle
        Cycles warpedFrom = 0; ///< begin > warpedFrom => global warp
        bool stop = false;
        bool deadlocked = false;
        bool cancelStopped = false;
        Cycles final = 0;
    };

    void islandMain(unsigned i);
    void decideNextRound();

    const unsigned islands_;
    const IslandHooks hooks_;
    const Options opt_;

    SpinBarrier barrier_;
    std::vector<Slot> slots_;
    Round round_;
    Cycles deadline_ = 0;

    /** Watchdog state (touched only by the decision callback). */
    Cycles lastCheck_ = 0;
    std::uint64_t lastProgress_ = ~std::uint64_t{0};

    /** Rounds until the next clock-reading deadline poll (touched
     *  only by the decision callback). */
    unsigned cancelPollCountdown_ = 0;

    /** A hook threw somewhere: finish the round and stop. */
    std::atomic<bool> abort_{false};
    std::vector<std::exception_ptr> errors_;
};

} // namespace vip

#endif // VIP_SIM_ISLAND_HH
