/**
 * @file
 * A minimal JSON value type for the simulator's wire formats.
 *
 * The serve protocol, `RunSpec`, and `SystemConfig` all need to
 * round-trip structured data through text, and the container bakes in
 * no JSON dependency — so this is a deliberately small, deterministic
 * implementation:
 *
 *  - **Deterministic emission.** Object keys are stored in a std::map
 *    and always emitted sorted; integers print in decimal and doubles
 *    through "%.17g" (shortest round-trippable form gcc produces).
 *    Two equal values therefore serialize to identical bytes — the
 *    property the serve result cache's byte-identical-response
 *    guarantee and `RunSpec::fingerprint()` stand on.
 *  - **64-bit-clean numbers.** JSON numbers without a fraction or
 *    exponent parse as unsigned/signed 64-bit integers, not doubles,
 *    so a register value like 0xffffffffffffffff survives the trip.
 *  - **Structured failure.** Parse errors and type mismatches throw
 *    JsonError (a SimError with kind "json"), so the serve loop turns
 *    a malformed request line into an `{"error": ...}` response the
 *    same way it handles a bad config.
 *
 * Not supported (not needed here): duplicate object keys (last one
 * wins), non-BMP \u escapes beyond surrogate pairs, numbers outside
 * the uint64/int64/double ranges.
 */

#ifndef VIP_SIM_JSON_HH
#define VIP_SIM_JSON_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/error.hh"

namespace vip {

/** Malformed JSON text or a type/shape mismatch during decode. */
class JsonError : public SimError
{
  public:
    explicit JsonError(std::string message)
        : SimError("json", std::move(message))
    {}
};

class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        UInt,   ///< non-negative integer (uint64 range)
        Int,    ///< negative integer (int64 range)
        Double,
        String,
        Array,
        Object,
    };

    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(std::uint64_t v) : type_(Type::UInt), uint_(v) {}
    Json(std::int64_t v)
    {
        if (v < 0) {
            type_ = Type::Int;
            int_ = v;
        } else {
            type_ = Type::UInt;
            uint_ = static_cast<std::uint64_t>(v);
        }
    }
    Json(int v) : Json(static_cast<std::int64_t>(v)) {}
    Json(unsigned v) : Json(static_cast<std::uint64_t>(v)) {}
    Json(unsigned long long v) : Json(static_cast<std::uint64_t>(v)) {}
    Json(double v) : type_(Type::Double), dbl_(v) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}

    static Json
    array()
    {
        Json j;
        j.type_ = Type::Array;
        return j;
    }

    static Json
    object()
    {
        Json j;
        j.type_ = Type::Object;
        return j;
    }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool
    isNumber() const
    {
        return type_ == Type::UInt || type_ == Type::Int ||
               type_ == Type::Double;
    }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors; throw JsonError on a mismatch (integral
     *  doubles are accepted by the integer accessors and vice versa,
     *  so "1.0" and "1" decode interchangeably). */
    bool asBool() const;
    std::uint64_t asU64() const;
    std::int64_t asI64() const;
    double asDouble() const;
    const std::string &asString() const;

    const Array &asArray() const;
    const Object &asObject() const;

    /** Object lookup; null when absent (or not an object). */
    const Json *find(const std::string &key) const;

    /** Object lookup; throws JsonError when the key is absent. */
    const Json &at(const std::string &key) const;

    /** Object insert/overwrite; converts a Null value to an Object. */
    Json &set(const std::string &key, Json value);

    /** Array append; converts a Null value to an Array. */
    Json &push(Json value);

    std::size_t
    size() const
    {
        return isArray() ? arr_.size() : isObject() ? obj_.size() : 0;
    }

    bool operator==(const Json &o) const;
    bool operator!=(const Json &o) const { return !(*this == o); }

    /**
     * Serialize. @p indent < 0 emits the compact single-line form
     * (the wire format: JSON-lines requires no embedded newlines);
     * @p indent >= 0 pretty-prints with 2-space indentation starting
     * at that depth. Keys always emit in sorted order.
     */
    void dump(std::ostream &os, int indent = -1) const;

    /** dump() into a string. */
    std::string str(int indent = -1) const;

    /** Parse one JSON document; trailing garbage throws JsonError. */
    static Json parse(const std::string &text);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    std::int64_t int_ = 0;
    double dbl_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

/** FNV-1a over @p text, the repo's standard content-hash primitive
 *  (the same scheme DramStorage::fingerprint applies per page). */
inline std::uint64_t
fnv1a(const std::string &text, std::uint64_t seed = 0xcbf29ce484222325ULL)
{
    std::uint64_t h = seed;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace vip

#endif // VIP_SIM_JSON_HH
