/**
 * @file
 * The simulator's time model: the `Clocked` component interface and
 * the event-horizon fast-forward contract.
 *
 * Every tickable unit of the machine (PE, NoC, vault, the system's
 * ingress drains) implements `tick(now)` plus `nextEventAt(now)`: the
 * earliest future cycle at which the component, left alone, could
 * change architectural or statistical state. The system's run loop
 * computes the horizon `min(nextEventAt)` over all components each
 * iteration and, when it exceeds the next cycle, warps simulated time
 * directly to it — skipping cycles that would have been no-op ticks
 * for every component.
 *
 * The contract that keeps warping *exact* rather than approximate:
 *
 *  - `nextEventAt` may be conservative (early). Reporting a cycle at
 *    which the component turns out to do nothing merely shrinks the
 *    warp; the component is ticked there and re-reports.
 *  - `nextEventAt` must never be late. If the component would have
 *    changed any observable state (including statistics) at cycle t,
 *    it must report a value <= t. A busy or unknown component reports
 *    `now` (equivalently `now + 1` relative to the cycle it just
 *    ticked), which disables warping entirely.
 *  - External wake-ups need not be reported. A component waiting on
 *    another component's event (a PE waiting on a DRAM response that
 *    arrives through the NoC) may report `kIdleForever`; the event is
 *    already in the queue of the component that will deliver it, and
 *    that component's `nextEventAt` bounds the horizon.
 *  - Components whose per-cycle behaviour is observable even when
 *    "nothing happens" (the PE's per-cycle stall counters) implement
 *    `fastForward(from, to)` to account for the skipped cycles
 *    [from, to) exactly as the per-cycle ticks would have.
 */

#ifndef VIP_SIM_CLOCKED_HH
#define VIP_SIM_CLOCKED_HH

#include <limits>

#include "sim/types.hh"

namespace vip {

/** "No self-generated future event": the component is externally
 *  driven or fully idle. */
inline constexpr Cycles kIdleForever = std::numeric_limits<Cycles>::max();

/** A component driven by the global 1.25 GHz clock. */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Advance the component through cycle @p now. */
    virtual void tick(Cycles now) = 0;

    /**
     * Earliest cycle >= @p now at which this component could change
     * state on its own. May be early, must never be late; see the
     * file comment for the full contract.
     */
    virtual Cycles nextEventAt(Cycles now) const = 0;

    /**
     * Cycles [@p from, @p to) are being skipped: every component
     * reported no event in the interval, so a per-cycle tick would
     * have been a no-op. Components with per-cycle observable
     * behaviour (stall counters) replicate it here.
     */
    virtual void fastForward(Cycles from, Cycles to)
    {
        (void)from;
        (void)to;
    }
};

/** What the event-horizon fast-forward did during a run. */
struct FastForwardStats
{
    Cycles skippedCycles = 0;  ///< dead cycles warped over
    std::uint64_t warps = 0;   ///< number of time warps taken

    void
    reset()
    {
        skippedCycles = 0;
        warps = 0;
    }
};

} // namespace vip

#endif // VIP_SIM_CLOCKED_HH
