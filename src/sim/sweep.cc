#include "sim/sweep.hh"

#include <algorithm>
#include <chrono>
#include <new>

#include "sim/error.hh"
#include "sim/logging.hh"

namespace vip {

unsigned
SweepEngine::hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
hostThreadBudget(unsigned jobs, unsigned islands, bool *oversubscribed)
{
    const unsigned j = jobs ? jobs : SweepEngine::hardwareJobs();
    const unsigned i = islands ? islands : 1;
    const unsigned total = j * i;
    if (oversubscribed)
        *oversubscribed = total > SweepEngine::hardwareJobs();
    return total;
}

SweepEngine::SweepEngine(unsigned jobs)
    : jobs_(jobs ? jobs : hardwareJobs())
{
    if (jobs_ == 1)
        return;  // inline mode: no threads at all
    workers_.reserve(jobs_);
    for (unsigned w = 0; w < jobs_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

SweepEngine::~SweepEngine()
{
    {
        LockGuard lock(mutex_);
        shuttingDown_ = true;
    }
    workAvailable_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
SweepEngine::setRetryPolicy(const RetryPolicy &policy)
{
    LockGuard lock(mutex_);
    retryPolicy_ = policy;
}

void
SweepEngine::runJob(const Job &job)
{
    setLogThreadLabel("job" + std::to_string(job.index));
    RetryPolicy policy;
    {
        LockGuard lock(mutex_);
        policy = retryPolicy_;
    }
    SweepFailure failure;
    failure.index = job.index;
    std::exception_ptr eptr;
    for (unsigned attempt = 0;; ++attempt) {
        failure.attempts = attempt + 1;
        eptr = nullptr;
        bool transient = false;
        try {
            job.fn();
        } catch (const TransientError &e) {
            // A host-level hiccup the policy may retry; the job
            // rebuilds its simulation from the spec, so a retried
            // success is byte-identical to a first-try one.
            eptr = std::current_exception();
            failure.kind = e.kind();
            failure.message = e.message();
            failure.detail = e.detail();
            transient = true;
        } catch (const std::bad_alloc &e) {
            eptr = std::current_exception();
            failure.kind = "transient";
            failure.message = e.what();
            transient = true;
        } catch (const SimError &e) {
            // Deterministic simulation failure: retrying would recur
            // identically. Fail fast.
            eptr = std::current_exception();
            failure.kind = e.kind();
            failure.message = e.message();
            failure.detail = e.detail();
        } catch (const std::exception &e) {
            eptr = std::current_exception();
            failure.kind = "exception";
            failure.message = e.what();
        } catch (...) {
            eptr = std::current_exception();
            failure.kind = "unknown";
            failure.message = "non-exception object thrown";
        }
        if (!eptr || !transient || attempt >= policy.maxRetries)
            break;
        retries_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::uint64_t{policy.backoffBaseMs}
            << std::min(attempt, 10u)));
    }
    if (eptr) {
        LockGuard lock(mutex_);
        errors_.emplace_back(job.index, eptr);
        failures_.push_back(std::move(failure));
    }
    setLogThreadLabel("");
}

void
SweepEngine::workerLoop(unsigned)
{
    for (;;) {
        Job job;
        {
            LockGuard lock(mutex_);
            workAvailable_.wait(lock, [this]() VIP_REQUIRES(mutex_) {
                return !queue_.empty() || shuttingDown_;
            });
            if (queue_.empty())
                return;  // shutting down and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        runJob(job);
        {
            LockGuard lock(mutex_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

std::size_t
SweepEngine::submit(std::function<void()> fn)
{
    if (jobs_ == 1) {
        // Inline mode: run immediately on the caller's thread, in
        // submission order — exactly the old serial behaviour. The
        // (uncontended) lock keeps the guarded-by contract uniform.
        std::size_t index;
        {
            LockGuard lock(mutex_);
            index = nextIndex_++;
        }
        runJob(Job{index, std::move(fn)});
        return index;
    }
    std::size_t index;
    {
        LockGuard lock(mutex_);
        vip_assert(!shuttingDown_, "submit after engine shutdown");
        index = nextIndex_++;
        queue_.push_back(Job{index, std::move(fn)});
        ++inFlight_;
    }
    workAvailable_.notify_one();
    return index;
}

void
SweepEngine::wait()
{
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
    {
        LockGuard lock(mutex_);
        // Inline mode never has work in flight here, so the wait is
        // an immediate pass-through.
        allDone_.wait(lock, [this]() VIP_REQUIRES(mutex_) {
            return inFlight_ == 0;
        });
        errors.swap(errors_);
        failures_.clear();
    }
    if (errors.empty())
        return;
    // Deterministic error reporting: the lowest submission index wins,
    // no matter which worker hit its exception first.
    const auto first = std::min_element(
        errors.begin(), errors.end(),
        [](const auto &a, const auto &b) { return a.first < b.first; });
    std::rethrow_exception(first->second);
}

std::vector<SweepFailure>
SweepEngine::waitCollect()
{
    std::vector<SweepFailure> failures;
    {
        LockGuard lock(mutex_);
        allDone_.wait(lock, [this]() VIP_REQUIRES(mutex_) {
            return inFlight_ == 0;
        });
        failures.swap(failures_);
        errors_.clear();
    }
    std::sort(failures.begin(), failures.end(),
              [](const SweepFailure &a, const SweepFailure &b) {
                  return a.index < b.index;
              });
    return failures;
}

} // namespace vip
