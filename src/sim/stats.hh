/**
 * @file
 * A small statistics framework in the spirit of gem5's stats package.
 *
 * Components own a StatGroup; scalar statistics register themselves with
 * the group under a dotted name. Groups can be nested, dumped as text,
 * and reset between simulation phases (e.g. between warm-up and the
 * measured region of a benchmark).
 */

#ifndef VIP_SIM_STATS_HH
#define VIP_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace vip {

class StatGroup;

/** A monotonically increasing (resettable) 64-bit counter statistic. */
class Counter
{
  public:
    Counter() = default;
    Counter(StatGroup *parent, std::string name, std::string desc);

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::uint64_t value_ = 0;
};

/**
 * A named collection of statistics belonging to one simulated component.
 * Child groups inherit the parent's name as a dotted prefix when dumped.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a counter (called from the Counter constructor). */
    void addCounter(Counter *c);

    /**
     * Register a derived statistic computed on demand at dump time
     * (e.g. a bandwidth formula over counters).
     */
    void addFormula(std::string name, std::string desc,
                    std::function<double()> fn);

    /** Reset every counter in this group and all child groups. */
    void resetStats();

    /** Write "name value # desc" lines for the whole subtree. */
    void dump(std::ostream &os) const;

    /**
     * Write the subtree as one JSON object, `{"<name>": {...}}`, with
     * counters as integers, formulas as doubles (non-finite values as
     * null), and child groups as nested objects. Keys are emitted in
     * sorted order regardless of registration order, so two dumps of
     * equal stats are byte-identical and machine-diffable.
     */
    void dumpJson(std::ostream &os) const;

    /**
     * Write just this subtree's JSON object value (`{...}`, no
     * enclosing `{"<name>": ...}` wrapper), indented as if it sat at
     * @p depth nesting levels. Lets callers splice the tree into a
     * larger JSON document (e.g. vip-run's `{"host": ..., "system":
     * ...}` output) while keeping the byte-stable sorted-key format.
     */
    void
    dumpJsonValue(std::ostream &os, unsigned depth = 0) const
    {
        dumpJsonImpl(os, depth);
    }

    /**
     * Walk the whole subtree in dump order, reporting every counter
     * and formula under its dotted path rooted at this group's name
     * (e.g. "system.pe0.issued"). This is the programmatic face of
     * the statistics tree: RunResult's typed counter map, the serve
     * protocol's stats section, and tests that used to grep the text
     * dump all read through it. Either callback may be empty.
     */
    struct Visitor
    {
        std::function<void(const std::string &path,
                           std::uint64_t value,
                           const std::string &desc)> onCounter;
        std::function<void(const std::string &path, double value,
                           const std::string &desc)> onFormula;
    };
    void visit(const Visitor &v) const;

    /**
     * Typed lookup by dotted path relative to this group (the leading
     * group name is *not* part of the path: on the system root,
     * "pe0.issued", not "system.pe0.issued"). Null when any segment
     * is missing.
     */
    const Counter *findCounterByPath(const std::string &dotted) const;

    /** Find a counter by name within this group only; null if absent. */
    const Counter *findCounter(const std::string &name) const;

    /** Evaluate a formula by name within this group only. */
    double evalFormula(const std::string &name) const;

    const std::string &name() const { return name_; }

  private:
    struct Formula
    {
        std::string name;
        std::string desc;
        std::function<double()> fn;
    };

    void dumpImpl(std::ostream &os, const std::string &prefix) const;
    void dumpJsonImpl(std::ostream &os, unsigned depth) const;
    void visitImpl(const Visitor &v, const std::string &prefix) const;

    std::string name_;
    std::vector<Counter *> counters_;
    std::vector<Formula> formulas_;
    std::vector<StatGroup *> children_;
};

} // namespace vip

#endif // VIP_SIM_STATS_HH
