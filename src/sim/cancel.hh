/**
 * @file
 * Cooperative cancellation and wall-clock deadlines for runs.
 *
 * A CancelToken is the one-way stop signal for a simulation in
 * flight: the owner (a serve connection handling {"cmd":"cancel"}, a
 * SIGINT handler in vip-run, a test) flips it from any thread, and
 * the run loop polls it at fast-forward/quantum boundaries —
 * VipSystem::run() every kCancelPollCycles simulated cycles on the
 * serial path, IslandScheduler::decideNextRound() between quanta —
 * and surfaces the stop as a structured CancelledError or
 * TimeoutError (sim/error.hh) on the calling thread.
 *
 * Two independent triggers share the token:
 *
 *  - cancel(): an explicit request. Sticky; safe to call from a
 *    signal handler (a lock-free atomic store) or any thread.
 *  - setBudgetMs(): arms a host wall-clock deadline. This is the
 *    *only* place simulated execution is allowed to read a host
 *    clock besides the host-timing fields of RunResult: a budget
 *    bounds host execution, never simulated behaviour. A run that
 *    completes within its budget is byte-identical to an unbudgeted
 *    run — which is why RunSpec::fingerprint() excludes budgetMs and
 *    cached responses stay valid for any budget.
 *
 * Polling cost: cancelled() is one relaxed atomic load; expired()
 * reads the clock, so run loops rate-limit it (every
 * kCancelPollCycles cycles / kCancelPollRounds quanta), bounding
 * cancellation latency to a few host milliseconds without taxing the
 * tick loop.
 */

#ifndef VIP_SIM_CANCEL_HH
#define VIP_SIM_CANCEL_HH

#include <atomic>
#include <chrono>
#include <cstdint>

#include "sim/error.hh"

namespace vip {

class CancelToken
{
  public:
    CancelToken() = default;
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Request a stop. Sticky, idempotent, callable from any thread
     *  or a signal handler (one lock-free atomic store). */
    void
    cancel()
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    /** Has cancel() been called? One relaxed load — cheap enough for
     *  hot loops. */
    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /**
     * Arm a wall-clock deadline @p budget_ms from now (0 disarms).
     * Call before handing the token to a run; the deadline is not
     * synchronized against concurrent polls.
     */
    void
    setBudgetMs(std::uint64_t budget_ms)
    {
        budgetMs_ = budget_ms;
        if (budget_ms == 0) {
            armed_.store(false, std::memory_order_relaxed);
            return;
        }
        deadline_ = std::chrono::steady_clock::now() +  // vip-lint: allow(wall-clock)
                    std::chrono::milliseconds(budget_ms);
        armed_.store(true, std::memory_order_release);
    }

    /** A deadline is armed (setBudgetMs with a nonzero budget). */
    bool
    hasDeadline() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** The armed deadline has passed. Reads the host clock — poll at
     *  boundaries, not per tick. */
    bool
    expired() const
    {
        if (!armed_.load(std::memory_order_acquire))
            return false;
        return std::chrono::steady_clock::now() >= deadline_;  // vip-lint: allow(wall-clock)
    }

    /** Either trigger fired: stop at the next boundary. */
    bool
    shouldStop() const
    {
        return cancelled() || expired();
    }

    /**
     * Throw the structured error for whichever trigger fired:
     * CancelledError for an explicit cancel (it wins when both
     * fired — the explicit request is the stronger statement),
     * TimeoutError for an expired budget, nothing when neither did.
     */
    void
    check() const
    {
        if (cancelled())
            throw CancelledError("run cancelled");
        if (expired()) {
            throw TimeoutError("run exceeded its wall-clock budget of " +
                               std::to_string(budgetMs_) + "ms");
        }
    }

  private:
    std::atomic<bool> cancelled_{false};
    std::atomic<bool> armed_{false};
    std::uint64_t budgetMs_ = 0;
    std::chrono::steady_clock::time_point deadline_{};  // vip-lint: allow(wall-clock)
};

/** Serial-loop poll cadence: check the token every this many
 *  simulated cycles (and after every fast-forward warp). */
constexpr std::uint64_t kCancelPollCycles = 65'536;

/** Island-scheduler poll cadence for the clock-reading expired()
 *  check; the cancelled() flag is checked every round. */
constexpr unsigned kCancelPollRounds = 1'024;

} // namespace vip

#endif // VIP_SIM_CANCEL_HH
