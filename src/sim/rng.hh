/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All synthetic inputs (stereo pairs, network weights, MRF costs) are
 * produced with this generator so that tests and benchmarks are exactly
 * reproducible across runs and platforms.
 */

#ifndef VIP_SIM_RNG_HH
#define VIP_SIM_RNG_HH

#include <cstdint>

namespace vip {

/** SplitMix64: small, fast, well-distributed, and seed-robust. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    nextRange(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        nextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state_;
};

} // namespace vip

#endif // VIP_SIM_RNG_HH
