#include "sim/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace vip {

namespace {

[[noreturn]] void
fail(const std::string &what)
{
    throw JsonError(what);
}

const char *
typeName(Json::Type t)
{
    switch (t) {
      case Json::Type::Null: return "null";
      case Json::Type::Bool: return "bool";
      case Json::Type::UInt:
      case Json::Type::Int: return "integer";
      case Json::Type::Double: return "number";
      case Json::Type::String: return "string";
      case Json::Type::Array: return "array";
      case Json::Type::Object: return "object";
    }
    return "?";
}

void
escapeString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** One-pass recursive-descent parser over the request line. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    document()
    {
        const Json v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document at offset " +
                 std::to_string(pos_));
        return v;
    }

  private:
    static constexpr int kMaxDepth = 64;

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of JSON input");
        return text_[pos_];
    }

    char get() { const char c = peek(); ++pos_; return c; }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    void
    expect(const char *literal)
    {
        for (const char *p = literal; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("invalid JSON literal (expected '") +
                     literal + "')");
            ++pos_;
        }
    }

    Json
    value()
    {
        if (++depth_ > kMaxDepth)
            fail("JSON nesting deeper than " +
                 std::to_string(kMaxDepth));
        skipWs();
        Json out;
        switch (peek()) {
          case '{': out = object(); break;
          case '[': out = array(); break;
          case '"': out = Json(string()); break;
          case 't': expect("true"); out = Json(true); break;
          case 'f': expect("false"); out = Json(false); break;
          case 'n': expect("null"); break;
          default: out = number(); break;
        }
        --depth_;
        return out;
    }

    Json
    object()
    {
        Json out = Json::object();
        get();  // '{'
        skipWs();
        if (peek() == '}') {
            get();
            return out;
        }
        for (;;) {
            skipWs();
            if (peek() != '"')
                fail("expected string key in JSON object at offset " +
                     std::to_string(pos_));
            std::string key = string();
            skipWs();
            if (get() != ':')
                fail("expected ':' after JSON object key \"" + key +
                     "\"");
            out.set(key, value());
            skipWs();
            const char c = get();
            if (c == '}')
                return out;
            if (c != ',')
                fail("expected ',' or '}' in JSON object at offset " +
                     std::to_string(pos_ - 1));
        }
    }

    Json
    array()
    {
        Json out = Json::array();
        get();  // '['
        skipWs();
        if (peek() == ']') {
            get();
            return out;
        }
        for (;;) {
            out.push(value());
            skipWs();
            const char c = get();
            if (c == ']')
                return out;
            if (c != ',')
                fail("expected ',' or ']' in JSON array at offset " +
                     std::to_string(pos_ - 1));
        }
    }

    std::string
    string()
    {
        get();  // '"'
        std::string out;
        for (;;) {
            const char c = get();
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = get();
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': out += unicodeEscape(); break;
              default:
                fail(std::string("invalid JSON escape '\\") + esc +
                     "'");
            }
        }
    }

    unsigned
    hex4()
    {
        unsigned v = 0;
        for (int k = 0; k < 4; ++k) {
            const char c = get();
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid \\u escape in JSON string");
        }
        return v;
    }

    std::string
    unicodeEscape()
    {
        unsigned cp = hex4();
        if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
                fail("unpaired surrogate in JSON string");
            pos_ += 2;
            const unsigned lo = hex4();
            if (lo < 0xdc00 || lo > 0xdfff)
                fail("unpaired surrogate in JSON string");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
        } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired surrogate in JSON string");
        }
        // UTF-8 encode.
        std::string out;
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
        return out;
    }

    Json
    number()
    {
        const std::size_t start = pos_;
        bool negative = false, integral = true;
        if (peek() == '-') {
            negative = true;
            get();
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        const std::string tok = text_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-")
            fail("invalid JSON number at offset " +
                 std::to_string(start));
        errno = 0;
        if (integral) {
            char *end = nullptr;
            if (negative) {
                const long long v = std::strtoll(tok.c_str(), &end, 10);
                if (errno == ERANGE)
                    fail("JSON integer out of range: " + tok);
                if (end != tok.c_str() + tok.size())
                    fail("invalid JSON number: " + tok);
                return Json(static_cast<std::int64_t>(v));
            }
            const unsigned long long v =
                std::strtoull(tok.c_str(), &end, 10);
            if (errno == ERANGE)
                fail("JSON integer out of range: " + tok);
            if (end != tok.c_str() + tok.size())
                fail("invalid JSON number: " + tok);
            return Json(static_cast<std::uint64_t>(v));
        }
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size() || !std::isfinite(v))
            fail("invalid JSON number: " + tok);
        return Json(v);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        fail(std::string("expected bool, got ") + typeName(type_));
    return bool_;
}

std::uint64_t
Json::asU64() const
{
    switch (type_) {
      case Type::UInt:
        return uint_;
      case Type::Int:
        fail("expected non-negative integer, got " +
             std::to_string(int_));
      case Type::Double:
        if (dbl_ >= 0 && dbl_ <= 1.8446744073709550e19 &&
            dbl_ == std::floor(dbl_))
            return static_cast<std::uint64_t>(dbl_);
        fail("expected non-negative integer, got non-integral number");
      default:
        fail(std::string("expected integer, got ") + typeName(type_));
    }
}

std::int64_t
Json::asI64() const
{
    switch (type_) {
      case Type::UInt:
        if (uint_ > 0x7fffffffffffffffULL)
            fail("integer out of int64 range: " + std::to_string(uint_));
        return static_cast<std::int64_t>(uint_);
      case Type::Int:
        return int_;
      case Type::Double:
        if (dbl_ == std::floor(dbl_) && dbl_ >= -9.2233720368547758e18 &&
            dbl_ <= 9.2233720368547758e18)
            return static_cast<std::int64_t>(dbl_);
        fail("expected integer, got non-integral number");
      default:
        fail(std::string("expected integer, got ") + typeName(type_));
    }
}

double
Json::asDouble() const
{
    switch (type_) {
      case Type::UInt: return static_cast<double>(uint_);
      case Type::Int: return static_cast<double>(int_);
      case Type::Double: return dbl_;
      default:
        fail(std::string("expected number, got ") + typeName(type_));
    }
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        fail(std::string("expected string, got ") + typeName(type_));
    return str_;
}

const Json::Array &
Json::asArray() const
{
    if (type_ != Type::Array)
        fail(std::string("expected array, got ") + typeName(type_));
    return arr_;
}

const Json::Object &
Json::asObject() const
{
    if (type_ != Type::Object)
        fail(std::string("expected object, got ") + typeName(type_));
    return obj_;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    const auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *v = find(key);
    if (!v)
        fail("missing required key \"" + key + "\"");
    return *v;
}

Json &
Json::set(const std::string &key, Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        fail(std::string("set() on a ") + typeName(type_));
    obj_[key] = std::move(value);
    return *this;
}

Json &
Json::push(Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        fail(std::string("push() on a ") + typeName(type_));
    arr_.push_back(std::move(value));
    return *this;
}

bool
Json::operator==(const Json &o) const
{
    if (isNumber() && o.isNumber()) {
        // Integers compare exactly when both sides are integral so
        // uint64 values beyond 2^53 don't collapse through double.
        const bool li = type_ != Type::Double;
        const bool ri = o.type_ != Type::Double;
        if (li && ri) {
            if ((type_ == Type::Int) != (o.type_ == Type::Int))
                return false;
            return type_ == Type::Int ? int_ == o.int_
                                      : uint_ == o.uint_;
        }
        return asDouble() == o.asDouble();
    }
    if (type_ != o.type_)
        return false;
    switch (type_) {
      case Type::Null: return true;
      case Type::Bool: return bool_ == o.bool_;
      case Type::String: return str_ == o.str_;
      case Type::Array: return arr_ == o.arr_;
      case Type::Object: return obj_ == o.obj_;
      default: return true;  // numbers handled above
    }
}

void
Json::dump(std::ostream &os, int indent) const
{
    switch (type_) {
      case Type::Null:
        os << "null";
        return;
      case Type::Bool:
        os << (bool_ ? "true" : "false");
        return;
      case Type::UInt:
        os << uint_;
        return;
      case Type::Int:
        os << int_;
        return;
      case Type::Double: {
        if (!std::isfinite(dbl_)) {
            os << "null";  // JSON has no NaN/Inf
            return;
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", dbl_);
        os << buf;
        return;
      }
      case Type::String:
        escapeString(os, str_);
        return;
      case Type::Array: {
        if (arr_.empty()) {
            os << "[]";
            return;
        }
        const bool pretty = indent >= 0;
        const std::string pad(pretty ? (indent + 1) * 2 : 0, ' ');
        os << '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                os << ',';
            if (pretty)
                os << '\n' << pad;
            arr_[i].dump(os, pretty ? indent + 1 : -1);
        }
        if (pretty)
            os << '\n' << std::string(indent * 2, ' ');
        os << ']';
        return;
      }
      case Type::Object: {
        if (obj_.empty()) {
            os << "{}";
            return;
        }
        const bool pretty = indent >= 0;
        const std::string pad(pretty ? (indent + 1) * 2 : 0, ' ');
        os << '{';
        bool first = true;
        for (const auto &[key, val] : obj_) {
            if (!first)
                os << ',';
            first = false;
            if (pretty)
                os << '\n' << pad;
            escapeString(os, key);
            os << (pretty ? ": " : ":");
            val.dump(os, pretty ? indent + 1 : -1);
        }
        if (pretty)
            os << '\n' << std::string(indent * 2, ' ');
        os << '}';
        return;
      }
    }
}

std::string
Json::str(int indent) const
{
    std::ostringstream os;
    dump(os, indent);
    return os.str();
}

Json
Json::parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace vip
