#include "sim/island.hh"

#include <algorithm>
#include <thread>

#include "sim/cancel.hh"
#include "sim/logging.hh"

namespace vip {

void
SpinBarrier::arriveAndWait(const std::function<void()> &completion)
{
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        parties_) {
        // Last arriver: every other thread's phase writes are visible
        // here (the acq_rel RMW chain on arrived_), so the completion
        // callback may read and rewrite the shared round state.
        if (completion)
            completion();
        arrived_.store(0, std::memory_order_relaxed);
        generation_.store(gen + 1, std::memory_order_release);
        return;
    }
    unsigned spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
        // Quanta are microseconds of host work; spin, but let an
        // oversubscribed host make progress.
        if ((++spins & 1023u) == 0)
            std::this_thread::yield();
    }
}

IslandScheduler::IslandScheduler(unsigned islands, IslandHooks hooks,
                                 Options opt)
    : islands_(islands), hooks_(std::move(hooks)), opt_(opt),
      barrier_(islands), slots_(islands), errors_(islands)
{
    vip_assert(islands_ >= 1, "need at least one island");
    vip_assert(opt_.quantum >= 1, "degenerate quantum");
    vip_assert(hooks_.tick && hooks_.idle && hooks_.nextEventAt &&
                   hooks_.drainInboxes && hooks_.progress,
               "missing a mandatory island hook");
}

IslandScheduler::Outcome
IslandScheduler::run(Cycles start, Cycles deadline)
{
    vip_assert(start < deadline, "nothing to run");
    deadline_ = deadline;
    lastCheck_ = start;
    lastProgress_ = ~std::uint64_t{0};
    cancelPollCountdown_ = kCancelPollRounds;
    round_ = Round{};
    round_.begin = start;
    round_.end = start + std::min(opt_.quantum, deadline - start);
    round_.warpedFrom = start;
    for (Slot &s : slots_) {
        s = Slot{};
        s.idleSince = start;
    }

    std::vector<std::thread> threads;
    threads.reserve(islands_ - 1);
    for (unsigned i = 1; i < islands_; ++i)
        threads.emplace_back([this, i] { islandMain(i); });
    islandMain(0);
    for (std::thread &t : threads)
        t.join();

    // Rethrow deterministically: the lowest island's failure wins,
    // regardless of which thread hit a wall first.
    for (unsigned i = 0; i < islands_; ++i)
        if (errors_[i])
            std::rethrow_exception(errors_[i]);

    return {round_.final, round_.deadlocked, round_.cancelStopped};
}

void
IslandScheduler::islandMain(unsigned i)
{
    Slot &slot = slots_[i];
    for (;;) {
        // ---- Phase A: tick own components through the quantum,
        // thread-confined (reads of round_ are ordered by the
        // previous round's barrier-2 crossing).
        try {
            if (!abort_.load(std::memory_order_relaxed)) {
                if (hooks_.catchUp)
                    hooks_.catchUp(i, round_.begin);
                if (round_.begin > round_.warpedFrom &&
                    hooks_.fastForward) {
                    // The decision warped the machine over globally
                    // dead cycles; replicate what per-cycle ticks
                    // would have observed (stall counters), exactly
                    // as the serial warp does.
                    hooks_.fastForward(i, round_.warpedFrom,
                                       round_.begin);
                }
                Cycles c = round_.begin;
                while (c < round_.end) {
                    if (hooks_.idle(i))
                        break;
                    hooks_.tick(i, c);
                    ++c;
                    if (opt_.fastForward && c < round_.end &&
                        !hooks_.idle(i)) {
                        // Intra-quantum warp over the island's own
                        // dead cycles (its nextEventAt clamps to
                        // refresh deadlines, so none are jumped).
                        const Cycles to = std::min(
                            hooks_.nextEventAt(i, c), round_.end);
                        if (to > c) {
                            if (hooks_.fastForward)
                                hooks_.fastForward(i, c, to);
                            c = to;
                        }
                    }
                }
                if (hooks_.idle(i)) {
                    if (!slot.idle) {
                        slot.idle = true;
                        slot.idleSince = c;
                    }
                } else {
                    slot.idle = false;
                }
            }
        } catch (...) {
            if (!errors_[i])
                errors_[i] = std::current_exception();
            abort_.store(true, std::memory_order_relaxed);
        }

        barrier_.arriveAndWait();

        // ---- Phase B: all producers quiesced; drain the mail they
        // addressed to this island and publish the round report.
        try {
            if (!abort_.load(std::memory_order_relaxed)) {
                if (hooks_.drainInboxes(i))
                    slot.idle = false;  // reactivated by inbound mail
                slot.next = slot.idle ? kIdleForever
                                      : hooks_.nextEventAt(i, round_.end);
                slot.progress = hooks_.progress(i);
            }
        } catch (...) {
            if (!errors_[i])
                errors_[i] = std::current_exception();
            abort_.store(true, std::memory_order_relaxed);
        }

        barrier_.arriveAndWait([this] { decideNextRound(); });

        if (round_.stop) {
            if (!abort_.load(std::memory_order_relaxed) &&
                hooks_.catchUp) {
                // The machine stops at round_.final; timers with
                // deadlines strictly before it (DRAM refresh on
                // workload-idle islands) still owe their firings.
                try {
                    hooks_.catchUp(i, round_.final);
                } catch (...) {
                    if (!errors_[i])
                        errors_[i] = std::current_exception();
                    abort_.store(true, std::memory_order_relaxed);
                }
            }
            return;
        }
    }
}

void
IslandScheduler::decideNextRound()
{
    if (abort_.load(std::memory_order_relaxed)) {
        round_.stop = true;
        round_.final = round_.end;
        return;
    }

    bool all_idle = true;
    Cycles latest_idle = 0;
    Cycles global_next = kIdleForever;
    for (const Slot &s : slots_) {
        if (s.idle) {
            latest_idle = std::max(latest_idle, s.idleSince);
        } else {
            all_idle = false;
            global_next = std::min(global_next, s.next);
        }
    }

    if (all_idle) {
        // Every outbox was drained this round (phase B), so idleness
        // is global, and the machine's true halt cycle is when the
        // last island went idle — exactly the serial run's result.
        round_.stop = true;
        round_.final = latest_idle;
        return;
    }
    if (round_.end >= deadline_) {
        round_.stop = true;
        round_.final = deadline_;
        return;
    }

    // Cooperative stop, after the natural-completion checks so a run
    // that drains this very round reports its real result. The flag
    // is one relaxed load (every round); the clock-reading deadline
    // poll is rate-limited to every kCancelPollRounds rounds.
    if (opt_.cancel) {
        bool should_stop = opt_.cancel->cancelled();
        if (!should_stop && --cancelPollCountdown_ == 0) {
            cancelPollCountdown_ = kCancelPollRounds;
            should_stop = opt_.cancel->expired();
        }
        if (should_stop) {
            round_.stop = true;
            round_.cancelStopped = true;
            round_.final = round_.end;
            return;
        }
    }

    // Deadlock watchdog, at quantum granularity: the serial loop
    // checks every cycle, so the reported deadlock *cycle* can differ
    // by up to one quantum (or one warp) from a serial run; whether
    // it fires does not.
    if (round_.end - lastCheck_ >= opt_.watchdogCycles) {
        std::uint64_t p = 0;
        for (const Slot &s : slots_)
            p += s.progress;
        if (p == lastProgress_) {
            round_.stop = true;
            round_.deadlocked = true;
            round_.final = round_.end;
            return;
        }
        lastProgress_ = p;
        lastCheck_ = round_.end;
    }

    Cycles begin = round_.end;
    round_.warpedFrom = round_.end;
    if (opt_.fastForward && global_next > round_.end) {
        // Globally dead span: no island has an event before
        // global_next and all mail is drained. Warp there, clamped so
        // the deadline and the watchdog still get their looks.
        Cycles target = std::min(global_next, deadline_);
        target = std::min(target, lastCheck_ + opt_.watchdogCycles);
        begin = target;
    }
    round_.begin = begin;
    round_.end = begin + std::min(opt_.quantum, deadline_ - begin);
}

} // namespace vip
