/**
 * @file
 * Structured, recoverable errors for the VIP simulator.
 *
 * The logging layer's contract (sim/logging.hh) divides failures into
 * simulator bugs (vip_panic/vip_assert — conditions no input should be
 * able to reach, which abort) and *user-recoverable* conditions: a bad
 * configuration, a malformed program, a machine that wedges under an
 * injected fault. The latter used to exit or abort the whole process,
 * which is fatal to long design-space campaigns — one bad sweep point
 * killed thousands of good ones. They now throw a SimError subclass
 * instead, so callers (the sweep engine, vip-run, tests) can attach
 * the failure to the point that caused it and keep going.
 *
 * Conventions:
 *  - library code throws; it never calls std::exit or abort for
 *    conditions a caller could reasonably recover from,
 *  - every error carries a machine-readable `kind()` (stable short
 *    token), a one-line `message()`, and an optional multi-line
 *    `detail()` (e.g. the deadlock diagnosis report),
 *  - what() always contains message + detail, so code catching plain
 *    std::exception still sees everything.
 */

#ifndef VIP_SIM_ERROR_HH
#define VIP_SIM_ERROR_HH

#include <stdexcept>
#include <string>
#include <utility>

namespace vip {

class SimError : public std::runtime_error
{
  public:
    SimError(std::string kind, std::string message, std::string detail = {})
        : std::runtime_error(detail.empty() ? message
                                            : message + "\n" + detail),
          kind_(std::move(kind)), message_(std::move(message)),
          detail_(std::move(detail))
    {}

    /** Stable short token ("config", "assembly", "deadlock", ...). */
    const std::string &kind() const { return kind_; }

    /** One-line summary, suitable for a table cell or a JSON field. */
    const std::string &message() const { return message_; }

    /** Optional multi-line report (empty when there is none). */
    const std::string &detail() const { return detail_; }

  private:
    std::string kind_;
    std::string message_;
    std::string detail_;
};

/** Invalid user configuration, rejected before it can wedge or UB. */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(std::string message)
        : SimError("config", std::move(message))
    {}
};

/** Source program failed to assemble. */
class AssemblyFailure : public SimError
{
  public:
    AssemblyFailure(unsigned line, const std::string &message)
        : SimError("assembly",
                   "assembly error at line " + std::to_string(line) +
                       ": " + message),
          line_(line)
    {}

    unsigned line() const { return line_; }

  private:
    unsigned line_;
};

/**
 * The watchdog found the machine making no progress. detail() carries
 * the deadlock diagnosis report: per-PE PC / stall reason / LSQ
 * occupancy and per-vault queue depths (see VipSystem::run).
 */
class DeadlockError : public SimError
{
  public:
    DeadlockError(std::string message, std::string diagnosis)
        : SimError("deadlock", std::move(message), std::move(diagnosis))
    {}
};

/**
 * A run exceeded its wall-clock budget (RunSpec::budgetMs /
 * vip-run --timeout-ms) and was stopped at a poll boundary by its
 * CancelToken (sim/cancel.hh). The machine's partial state is
 * discarded; re-running the same spec without (or within) a budget
 * produces the full deterministic result.
 */
class TimeoutError : public SimError
{
  public:
    explicit TimeoutError(std::string message)
        : SimError("timeout", std::move(message))
    {}
};

/**
 * A run was stopped by an explicit cancellation request (a
 * {"cmd":"cancel"} on vip-serve, SIGINT/SIGTERM on vip-run, or a
 * direct CancelToken::cancel()).
 */
class CancelledError : public SimError
{
  public:
    explicit CancelledError(std::string message)
        : SimError("cancelled", std::move(message))
    {}
};

/**
 * A transient *host-level* failure (an allocation that may succeed
 * on retry, a worker that died and was replaced) — as opposed to a
 * deterministic simulation failure, which would recur identically.
 * The sweep engine's retry policy (sim/sweep.hh) re-runs jobs that
 * throw this (or std::bad_alloc) from their spec, so a retried
 * point's output is byte-identical to a first-try success.
 */
class TransientError : public SimError
{
  public:
    explicit TransientError(std::string message)
        : SimError("transient", std::move(message))
    {}
};

} // namespace vip

#endif // VIP_SIM_ERROR_HH
