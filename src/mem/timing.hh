/**
 * @file
 * DRAM timing and geometry parameters for the HMC-like memory system.
 *
 * Defaults reproduce Table III of the paper (Kim et al. HMC timings with
 * the paper's modifications: open-page policy, vault-high address
 * mapping, refresh-4x). All values are stored in 1.25 GHz clock cycles
 * (tCK = 0.8 ns), rounded up from the nanosecond figures.
 */

#ifndef VIP_MEM_TIMING_HH
#define VIP_MEM_TIMING_HH

#include <cstdint>

#include "sim/types.hh"

namespace vip {

/** Row-buffer management policy (Sec. III-C / Fig. 5). */
enum class PagePolicy { Open, Closed };

/** Vault-index placement within the physical address (Sec. III-C). */
enum class AddrMap
{
    /** Paper's choice: vault in the MSBs => PE-local data stays local. */
    VaultRowBankCol,
    /** Default HMC scheme: vault in the LSBs (maximal interleave). */
    RowBankColVault,
};

/** DRAM timing constraints, in system clock cycles. */
struct DramTiming
{
    Cycles tCL = nsToCycles(13.75);   ///< CAS latency
    Cycles tRCD = nsToCycles(13.75);  ///< ACT to RD/WR
    Cycles tRP = nsToCycles(13.75);   ///< PRE to ACT
    Cycles tRAS = nsToCycles(27.5);   ///< ACT to PRE
    Cycles tWR = nsToCycles(15.0);    ///< write recovery before PRE
    Cycles tCCD = nsToCycles(5.0);    ///< column-to-column delay
    Cycles tRFC = nsToCycles(81.5);   ///< refresh cycle time
    Cycles tREFI = nsToCycles(1950.0); ///< refresh interval (4x mode)
    Cycles tBurst = 4;                ///< data-bus beats per column access

    /**
     * Move from the default refresh-4x mode toward 2x (factor 2) or
     * 1x (factor 4), per Fig. 5. tREFI scales linearly; tRFC follows
     * the JEDEC DDR4 fine-granularity ratios (tRFC1 : tRFC2 : tRFC4
     * ~= 2.2 : 1.6 : 1 for an 8 Gb device), so the rarer refreshes of
     * the 1x mode block the banks for much longer bursts.
     */
    void
    scaleRefresh(unsigned factor)
    {
        tREFI *= factor;
        if (factor == 2)
            tRFC = tRFC * 13 / 8;   // ~1.625x
        else if (factor >= 4)
            tRFC = tRFC * 11 / 5;   // ~2.2x
    }
};

/** DRAM organization. Defaults: 32 vaults x 16 banks x 64 Ki rows x 256 B. */
struct DramGeometry
{
    unsigned vaults = 32;
    unsigned banksPerVault = 16;
    std::uint64_t rowsPerBank = 65536;
    unsigned rowBytes = 256;
    unsigned colBytes = 32;

    std::uint64_t
    bytesPerVault() const
    {
        return static_cast<std::uint64_t>(banksPerVault) * rowsPerBank *
               rowBytes;
    }

    std::uint64_t capacity() const { return bytesPerVault() * vaults; }

    unsigned colsPerRow() const { return rowBytes / colBytes; }

    /**
     * Scale the number of banks ("ranks" in the paper: one bank per
     * rank) by 4x up or down, holding capacity constant (Fig. 5).
     */
    void
    scaleBanks(bool more)
    {
        if (more) {
            banksPerVault *= 4;
            rowsPerBank /= 4;
        } else {
            banksPerVault /= 4;
            rowsPerBank *= 4;
        }
    }

    /** Scale the row width by 4x, holding capacity constant (Fig. 5). */
    void
    scaleRowWidth(bool wider)
    {
        if (wider) {
            rowBytes *= 4;
            rowsPerBank /= 4;
        } else {
            rowBytes /= 4;
            rowsPerBank *= 4;
        }
    }
};

/** Complete memory-system configuration (Table III). */
struct MemConfig
{
    DramTiming timing;
    DramGeometry geom;
    PagePolicy pagePolicy = PagePolicy::Open;
    AddrMap addrMap = AddrMap::VaultRowBankCol;
    unsigned cmdQueueDepth = 32;
    unsigned transQueueDepth = 32;
};

} // namespace vip

#endif // VIP_MEM_TIMING_HH
