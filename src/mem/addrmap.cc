#include "mem/addrmap.hh"

#include "sim/logging.hh"

namespace vip {

DramCoord
AddressMapper::decode(Addr addr) const
{
    vip_assert(addr < geom_.capacity(), "address 0x", std::hex, addr,
               " beyond DRAM capacity");

    DramCoord c{};
    c.offset = static_cast<unsigned>(addr % geom_.colBytes);
    Addr rest = addr / geom_.colBytes;

    if (map_ == AddrMap::VaultRowBankCol) {
        // addr = ((vault * rows + row) * banks + bank) * cols + col
        c.col = static_cast<unsigned>(rest % geom_.colsPerRow());
        rest /= geom_.colsPerRow();
        c.bank = static_cast<unsigned>(rest % geom_.banksPerVault);
        rest /= geom_.banksPerVault;
        c.row = rest % geom_.rowsPerBank;
        rest /= geom_.rowsPerBank;
        c.vault = static_cast<unsigned>(rest);
    } else {
        // addr = ((row * banks + bank) * cols + col) * vaults + vault
        c.vault = static_cast<unsigned>(rest % geom_.vaults);
        rest /= geom_.vaults;
        c.col = static_cast<unsigned>(rest % geom_.colsPerRow());
        rest /= geom_.colsPerRow();
        c.bank = static_cast<unsigned>(rest % geom_.banksPerVault);
        rest /= geom_.banksPerVault;
        c.row = rest;
    }
    return c;
}

Addr
AddressMapper::encode(const DramCoord &c) const
{
    Addr rest;
    if (map_ == AddrMap::VaultRowBankCol) {
        rest = c.vault;
        rest = rest * geom_.rowsPerBank + c.row;
        rest = rest * geom_.banksPerVault + c.bank;
        rest = rest * geom_.colsPerRow() + c.col;
    } else {
        rest = c.row;
        rest = rest * geom_.banksPerVault + c.bank;
        rest = rest * geom_.colsPerRow() + c.col;
        rest = rest * geom_.vaults + c.vault;
    }
    return rest * geom_.colBytes + c.offset;
}

Addr
AddressMapper::vaultBase(unsigned vault) const
{
    vip_assert(vault < geom_.vaults, "vault ", vault, " out of range");
    return encode({vault, 0, 0, 0, 0});
}

} // namespace vip
