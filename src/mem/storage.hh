/**
 * @file
 * Sparse functional backing store for the 8 GiB HMC DRAM.
 *
 * Timing (vault controllers) and function (this store) are separated, as
 * in DRAMSim2-style simulators: data moves when the corresponding column
 * access is serviced. Pages are allocated on first touch and zero-filled
 * so untouched DRAM reads as zero.
 */

#ifndef VIP_MEM_STORAGE_HH
#define VIP_MEM_STORAGE_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace vip {

class DramStorage
{
  public:
    static constexpr std::size_t kPageBytes = 4096;

    void read(Addr addr, void *dst, std::size_t bytes) const;
    void write(Addr addr, const void *src, std::size_t bytes);

    /** Typed helpers for test and workload convenience. */
    template <typename T>
    T
    load(Addr addr) const
    {
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    store(Addr addr, T v)
    {
        write(addr, &v, sizeof(T));
    }

    /**
     * Zero-copy DMA endpoints: move bytes directly between the DRAM
     * pages and an SRAM's backing store (anything exposing
     * bytePtr(addr)), skipping the per-instruction staging buffer the
     * generic read()/write() path would need. Templated so this layer
     * stays independent of the PE scratchpad type.
     */
    template <typename Sram>
    void
    copyTo(Addr addr, Sram &sram, std::uint32_t sram_addr,
           std::size_t bytes) const
    {
        read(addr, sram.bytePtr(sram_addr), bytes);
    }

    template <typename Sram>
    void
    copyFrom(Addr addr, const Sram &sram, std::uint32_t sram_addr,
             std::size_t bytes)
    {
        write(addr, sram.bytePtr(sram_addr), bytes);
    }

    /** Number of pages touched so far (footprint proxy). */
    std::size_t touchedPages() const { return pages_.size(); }

    /**
     * Page numbers of every touched page, in ascending order. The
     * sanctioned way to walk the store for anything that reaches
     * output: pages_ is a hash map, and hash-order iteration leaking
     * into stats, JSON, or dumps is exactly the nondeterminism the
     * `unordered-iter` vip-lint rule bans.
     */
    std::vector<Addr> touchedPageNumbers() const;

    /**
     * Digest of DRAM contents, computed over pages in ascending
     * page-number order (never hash order). The per-page hashes are
     * XOR-combined, so the value is additionally order-independent by
     * construction — belt and braces. All-zero pages are ignored, so
     * a page that was touched but never written differs in nothing
     * from an untouched one — two runs of the same program are
     * content-equal iff their fingerprints match, regardless of which
     * pages each happened to allocate. Used by the fast-forward
     * equivalence tests to assert architectural state is identical.
     */
    std::uint64_t fingerprint() const;

  private:
    const std::uint8_t *pageFor(Addr addr) const;
    std::uint8_t *pageForWrite(Addr addr);

    std::unordered_map<Addr, std::unique_ptr<std::uint8_t[]>> pages_;
};

} // namespace vip

#endif // VIP_MEM_STORAGE_HH
