/**
 * @file
 * Sparse functional backing store for the 8 GiB HMC DRAM.
 *
 * Timing (vault controllers) and function (this store) are separated, as
 * in DRAMSim2-style simulators: data moves when the corresponding column
 * access is serviced. Pages are allocated on first touch and zero-filled
 * so untouched DRAM reads as zero.
 *
 * ## Concurrency
 *
 * One store backs the whole machine, and in island mode (see
 * sim/island.hh) several island threads touch it in the same quantum.
 * The page *table* is therefore a fixed two-level radix tree of atomic
 * pointers — lookup is two lock-free acquire-loads, first-touch
 * allocation is a CAS race whose loser frees its page and takes the
 * winner's — while the page *bytes* stay plain memory: simultaneous
 * access to the same byte from two islands would be a data race in the
 * *simulated* program (two PEs racing on one DRAM word), which the
 * workloads this supports do not do, and which TSan in the island test
 * suite would catch if one did. This replaced an unordered_map when
 * islands landed: a hash map cannot take concurrent first-touch
 * inserts, and rehashing invalidates every concurrent reader.
 */

#ifndef VIP_MEM_STORAGE_HH
#define VIP_MEM_STORAGE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "sim/types.hh"

namespace vip {

class DramStorage
{
  public:
    static constexpr std::size_t kPageBytes = 4096;

    DramStorage() = default;
    ~DramStorage();

    /** The table holds raw owning pointers; copying or moving a
     *  machine-sized backing store is never meaningful. */
    DramStorage(const DramStorage &) = delete;
    DramStorage &operator=(const DramStorage &) = delete;

    void read(Addr addr, void *dst, std::size_t bytes) const;
    void write(Addr addr, const void *src, std::size_t bytes);

    /** Typed helpers for test and workload convenience. */
    template <typename T>
    T
    load(Addr addr) const
    {
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    store(Addr addr, T v)
    {
        write(addr, &v, sizeof(T));
    }

    /**
     * Zero-copy DMA endpoints: move bytes directly between the DRAM
     * pages and an SRAM's backing store (anything exposing
     * bytePtr(addr)), skipping the per-instruction staging buffer the
     * generic read()/write() path would need. Templated so this layer
     * stays independent of the PE scratchpad type.
     */
    template <typename Sram>
    void
    copyTo(Addr addr, Sram &sram, std::uint32_t sram_addr,
           std::size_t bytes) const
    {
        read(addr, sram.bytePtr(sram_addr), bytes);
    }

    template <typename Sram>
    void
    copyFrom(Addr addr, const Sram &sram, std::uint32_t sram_addr,
             std::size_t bytes)
    {
        write(addr, sram.bytePtr(sram_addr), bytes);
    }

    /** Number of pages touched so far (footprint proxy). */
    std::size_t
    touchedPages() const
    {
        return touched_.load(std::memory_order_acquire);
    }

    /**
     * Page numbers of every touched page, in ascending order — the
     * radix walk visits them that way by construction, so consumers
     * (stats, JSON, dumps) can never observe allocation order.
     */
    std::vector<Addr> touchedPageNumbers() const;

    /**
     * Digest of DRAM contents, computed over pages in ascending
     * page-number order. The per-page hashes are XOR-combined, so the
     * value is additionally order-independent by construction — belt
     * and braces. All-zero pages are ignored, so a page that was
     * touched but never written differs in nothing from an untouched
     * one — two runs of the same program are content-equal iff their
     * fingerprints match, regardless of which pages each happened to
     * allocate (or which island allocated them). Used by the
     * fast-forward and island equivalence tests to assert
     * architectural state is identical.
     */
    std::uint64_t fingerprint() const;

  private:
    /** 12 + 12 page-table bits over 4 KiB pages: a 64 GiB address
     *  span, far beyond the modelled 8 GiB stack, at 32 KiB per
     *  machine for the root and 32 KiB per lazily-built leaf. */
    static constexpr unsigned kLeafBits = 12;
    static constexpr unsigned kRootBits = 12;
    static constexpr std::size_t kLeafSlots = std::size_t{1} << kLeafBits;
    static constexpr std::size_t kRootSlots = std::size_t{1} << kRootBits;

    struct Leaf
    {
        std::array<std::atomic<std::uint8_t *>, kLeafSlots> pages{};
    };

    const std::uint8_t *pageFor(Addr addr) const;
    std::uint8_t *pageForWrite(Addr addr);

    std::array<std::atomic<Leaf *>, kRootSlots> root_{};
    std::atomic<std::size_t> touched_{0};
};

} // namespace vip

#endif // VIP_MEM_STORAGE_HH
