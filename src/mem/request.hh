/**
 * @file
 * Memory request descriptor exchanged between PEs, NoC, and vaults.
 */

#ifndef VIP_MEM_REQUEST_HH
#define VIP_MEM_REQUEST_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace vip {

/**
 * One memory transaction. Requests larger than a DRAM column are split
 * by the vault controller into multiple column accesses internally; a
 * request completes when its last column access has been serviced.
 */
struct MemRequest
{
    Addr addr = 0;
    unsigned bytes = 0;
    bool isWrite = false;

    /** Issuing PE's global id, for response routing and stats. */
    unsigned sourcePe = 0;

    /** Invoked (once) at the cycle the request fully completes. */
    std::function<void(MemRequest &)> onComplete;

    /** Unique id assigned by the issuer; carried through for debugging. */
    std::uint64_t id = 0;

    /** Simulation bookkeeping. */
    Cycles issuedAt = 0;
    Cycles completedAt = 0;
};

} // namespace vip

#endif // VIP_MEM_REQUEST_HH
