/**
 * @file
 * Memory request descriptor exchanged between PEs, NoC, and vaults.
 */

#ifndef VIP_MEM_REQUEST_HH
#define VIP_MEM_REQUEST_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/types.hh"

namespace vip {

class MemRequestPool;

/**
 * One memory transaction. Requests larger than a DRAM column are split
 * by the vault controller into multiple column accesses internally; a
 * request completes when its last column access has been serviced.
 */
struct MemRequest
{
    Addr addr = 0;
    unsigned bytes = 0;
    bool isWrite = false;

    /** Issuing PE's global id, for response routing and stats. */
    unsigned sourcePe = 0;

    /** Invoked (once) at the cycle the request fully completes. */
    std::function<void(MemRequest &)> onComplete;

    /** Unique id assigned by the issuer; carried through for debugging. */
    std::uint64_t id = 0;

    /** Simulation bookkeeping. */
    Cycles issuedAt = 0;
    Cycles completedAt = 0;

    /**
     * The pool this request recycles through, or null for a plain
     * heap allocation. Set once by MemRequestPool::acquire(); the
     * completion endpoints (VipSystem's response delivery and
     * VaultController's direct-callback path) hand completed pooled
     * requests back instead of freeing them.
     */
    MemRequestPool *pool = nullptr;
};

/**
 * Free-list recycler for MemRequests. A steady-state PE↔memory hot
 * loop reuses a handful of descriptors instead of allocating one per
 * transfer piece; highWater() bounds the working set and
 * allocations() counts the fresh heap allocations (both exported via
 * `vip-run --json-stats` so perf PRs can spot allocation regressions).
 *
 * The pool is thread-confined to the host thread driving its
 * VipSystem (like every piece of simulated state — see the
 * concurrency contract on VipSystem::parkRequest): acquire/release
 * are unsynchronized by design, and sharing a pool across threads is
 * a caller bug, not a missing lock.
 *
 * The pool must outlive every completion callback of its requests
 * (the issuing PE owns both, and completions are delivered only while
 * the machine ticks). Requests still in flight at teardown are freed
 * by their owning container — a vault queue, the system's ingress
 * deques, or the system's NoC parking table (see
 * VipSystem::parkRequest) — never by the pool: release() is only
 * called from the completion paths, so a destroyed pool is never
 * touched, and a machine torn down mid-flight (expired budget,
 * deadlock throw) leaks nothing.
 */
class MemRequestPool
{
  public:
    std::unique_ptr<MemRequest> acquire()
    {
        ++live_;
        highWater_ = std::max(highWater_, live_);
        if (free_.empty()) {
            ++allocations_;
            auto req = std::make_unique<MemRequest>();
            req->pool = this;
            return req;
        }
        auto req = std::move(free_.back());
        free_.pop_back();
        return req;
    }

    /** Return a completed request; resets every field but the pool link. */
    void release(std::unique_ptr<MemRequest> req)
    {
        --live_;
        req->addr = 0;
        req->bytes = 0;
        req->isWrite = false;
        req->sourcePe = 0;
        req->onComplete = nullptr;
        req->id = 0;
        req->issuedAt = 0;
        req->completedAt = 0;
        free_.push_back(std::move(req));
    }

    /** Pooled requests currently in flight. */
    unsigned live() const { return live_; }

    /** Most requests ever simultaneously in flight. */
    unsigned highWater() const { return highWater_; }

    /** Fresh heap allocations (steady state: stops growing). */
    std::uint64_t allocations() const { return allocations_; }

  private:
    std::vector<std::unique_ptr<MemRequest>> free_;
    unsigned live_ = 0;
    unsigned highWater_ = 0;
    std::uint64_t allocations_ = 0;
};

} // namespace vip

#endif // VIP_MEM_REQUEST_HH
