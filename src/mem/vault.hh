/**
 * @file
 * Cycle-level model of one HMC vault: 16 banks sharing data TSVs, a
 * transaction queue, a command scheduler (FR-FCFS for the open-page
 * policy, auto-precharge for closed-page), and a refresh controller.
 */

#ifndef VIP_MEM_VAULT_HH
#define VIP_MEM_VAULT_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "mem/addrmap.hh"
#include "mem/request.hh"
#include "mem/timing.hh"
#include "sim/clocked.hh"
#include "sim/histogram.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vip {

class FaultInjector;

class VaultController : public Clocked
{
  public:
    VaultController(unsigned vaultId, const MemConfig &cfg,
                    const AddressMapper &mapper, StatGroup *parent);

    /**
     * Offer a transaction to this vault. Returns false (and leaves the
     * request with the caller) when the transaction queue is full.
     * @pre every byte of the request maps to this vault.
     */
    bool enqueue(std::unique_ptr<MemRequest> req);

    /** Advance one clock cycle: retire data, issue at most one command. */
    void tick(Cycles now) override;

    /**
     * Earliest cycle this vault could act: the head of the completion
     * queue, the next refresh deadline, or the earliest cycle any
     * queued column access clears its timing constraints (tRCD/tCCD/
     * tBurst for a row hit; tRP/tRAS precharge or tRFC/activate
     * windows for row-state progress). Conservative — the FR-FCFS
     * passes may pick a different access — but never late.
     */
    Cycles nextEventAt(Cycles now) const override;

    /** Head of the completion queue (kIdleForever when empty): the
     *  next cycle this vault could free a transaction slot. */
    Cycles
    nextCompletionAt() const
    {
        return completions_.empty() ? kIdleForever : completions_.top().at;
    }

    /**
     * Handler receiving ownership of completed transactions. When set
     * (by the system, which must route a response packet back through
     * the NoC before the issuer may observe completion), it is invoked
     * *instead of* the request's own onComplete callback.
     */
    using CompletionHandler =
        std::function<void(std::unique_ptr<MemRequest>)>;

    void setCompletionHandler(CompletionHandler h)
    {
        completionHandler_ = std::move(h);
    }

    bool idle() const;

    /**
     * Replay every refresh whose deadline lies strictly before
     * @p until, each at its exact deadline cycle. Island-mode support
     * (see sim/island.hh): a workload-idle vault on a skipped island
     * is never ticked, but its refresh timer — and the deterministic
     * retention-error draw each refresh makes — must fire exactly as
     * a serial run's per-cycle ticks (or clamped warps) would fire
     * them. A vault that has been ticked through cycle until - 1 owes
     * nothing and this is a no-op, so the scheduler may call it
     * unconditionally at every quantum boundary.
     */
    void catchUpRefreshes(Cycles until);

    /** Live (incomplete) transactions currently in the queue. */
    unsigned pendingTransactions() const;

    bool canAccept() const
    {
        return pendingTransactions() < cfg_.transQueueDepth;
    }

    /** Statistics, public so formulas and tests can read them. */
    struct Stats
    {
        Counter readBytes;
        Counter writeBytes;
        Counter rowHits;
        Counter rowMisses;
        Counter rowConflicts;
        Counter refreshes;
        Counter colCommands;
        Counter reqCount;
        Counter totalReqLatency;
    };

    const Stats &stats() const { return stats_; }

    /** Distribution of transaction latencies (cycles). */
    const Histogram &latencyHistogram() const { return latencyHist_; }

    /**
     * Attach a fault injector: each refresh interval rolls for a
     * retention error (a weak cell that decayed before the refresh
     * reached it); on a hit this vault picks the victim cell from the
     * injector's dice and plants the flip. Null detaches.
     */
    void setFaultInjector(FaultInjector *f) { injector_ = f; }

  private:
    /**
     * One pending DRAM column access derived from a transaction.
     * Accesses live in their bank's queue (oldest first); @c seq
     * records global arrival order so FR-FCFS age comparisons across
     * banks stay exact.
     */
    struct ColumnAccess
    {
        std::uint64_t seq;       ///< global arrival order (FCFS age)
        std::uint64_t row;
        unsigned col;
        bool isWrite;
        std::size_t transIndex;  ///< owning transaction slot
        Cycles arrivedAt;
    };

    /** An in-flight transaction and its split bookkeeping. */
    struct Transaction
    {
        std::unique_ptr<MemRequest> req;
        unsigned pendingColumns = 0;
        bool live = false;
    };

    /** Per-bank timing state and queued column accesses. */
    struct Bank
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        Cycles actAllowedAt = 0;
        Cycles colAllowedAt = 0;     ///< tRCD after ACT
        Cycles colCmdAllowedAt = 0;  ///< tCCD after this bank's last col
        Cycles preAllowedAt = 0;

        /** This bank's queued accesses, oldest first. */
        std::deque<ColumnAccess> cols;

        /** True while cols is nonempty (listed in activeBanks_). */
        bool active = false;

        /**
         * How many of @c cols target @c openRow, maintained while the
         * row is open (meaningless when closed). Lets the scheduler
         * and nextEventAt() classify a bank without scanning its
         * queue.
         */
        unsigned hitQueued = 0;
    };

    struct CompletionEvent
    {
        Cycles at;
        std::size_t transIndex;

        bool
        operator>(const CompletionEvent &o) const
        {
            return at > o.at;
        }
    };

    void splitIntoColumns(std::size_t trans_index);
    bool issueOldestHit(Cycles now);
    void issueColumn(unsigned bank_idx, Cycles now,
                     std::deque<ColumnAccess>::iterator it);
    void deactivateBank(unsigned bank_idx);
    void progressOldest(Cycles now);
    void beginRefresh(Cycles now);
    void retireCompletions(Cycles now);
    void finishColumn(std::size_t trans_index, Cycles now);

    unsigned vaultId_;
    MemConfig cfg_;
    const AddressMapper &mapper_;

    std::vector<Bank> banks_;

    /**
     * Indices of banks with queued accesses, unordered. The scheduler
     * passes and nextEventAt() are min-computations over banks, so
     * iteration order is free — which keeps ticks O(busy banks)
     * instead of O(all banks) for sparse traffic.
     */
    std::vector<unsigned> activeBanks_;

    std::vector<Transaction> trans_;
    std::vector<std::size_t> freeSlots_;  ///< free transaction slots
    unsigned liveTrans_ = 0;              ///< live entries in trans_
    std::size_t totalColumns_ = 0;        ///< queued accesses, all banks
    std::uint64_t nextSeq_ = 0;           ///< arrival-order stamp
    std::priority_queue<CompletionEvent, std::vector<CompletionEvent>,
                        std::greater<>> completions_;

    Cycles colIssueAllowedAt_ = 0;
    Cycles refreshUntil_ = 0;
    Cycles nextRefreshAt_;
    CompletionHandler completionHandler_;

    FaultInjector *injector_ = nullptr;
    std::uint64_t refreshIndex_ = 0;  ///< refreshes begun (event key)

    StatGroup statGroup_;
    Stats stats_;
    Histogram latencyHist_;
};

} // namespace vip

#endif // VIP_MEM_VAULT_HH
