/**
 * @file
 * Physical address decomposition for the HMC stack.
 *
 * The paper indexes vaults with the most-significant bits
 * (vault-row-bank-col) so that each PE's working set stays in its local
 * vault; the stock HMC scheme puts the vault index in the low bits for
 * maximal interleave. Both are supported (Fig. 5 / Sec. III-C).
 */

#ifndef VIP_MEM_ADDRMAP_HH
#define VIP_MEM_ADDRMAP_HH

#include <cstdint>

#include "mem/timing.hh"
#include "sim/types.hh"

namespace vip {

/** The DRAM coordinates a physical address decomposes into. */
struct DramCoord
{
    unsigned vault;
    unsigned bank;
    std::uint64_t row;
    unsigned col;       ///< column index within the row
    unsigned offset;    ///< byte offset within the column

    bool
    operator==(const DramCoord &o) const
    {
        return vault == o.vault && bank == o.bank && row == o.row &&
               col == o.col && offset == o.offset;
    }
};

/** Decodes/encodes addresses under a given geometry and mapping scheme. */
class AddressMapper
{
  public:
    AddressMapper(const DramGeometry &geom, AddrMap map)
        : geom_(geom), map_(map)
    {}

    /** Decompose a physical byte address. */
    DramCoord decode(Addr addr) const;

    /** Recompose DRAM coordinates into a physical byte address. */
    Addr encode(const DramCoord &c) const;

    /**
     * First byte address of vault @p vault under the current mapping.
     * With the vault-high mapping this yields a contiguous
     * bytesPerVault() region local to that vault.
     */
    Addr vaultBase(unsigned vault) const;

    const DramGeometry &geometry() const { return geom_; }
    AddrMap scheme() const { return map_; }

  private:
    DramGeometry geom_;
    AddrMap map_;
};

} // namespace vip

#endif // VIP_MEM_ADDRMAP_HH
