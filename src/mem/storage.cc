#include "mem/storage.hh"

#include <algorithm>

namespace vip {

const std::uint8_t *
DramStorage::pageFor(Addr addr) const
{
    auto it = pages_.find(addr / kPageBytes);
    return it == pages_.end() ? nullptr : it->second.get();
}

std::uint8_t *
DramStorage::pageForWrite(Addr addr)
{
    auto &slot = pages_[addr / kPageBytes];
    if (!slot) {
        slot = std::make_unique<std::uint8_t[]>(kPageBytes);
        std::memset(slot.get(), 0, kPageBytes);
    }
    return slot.get();
}

void
DramStorage::read(Addr addr, void *dst, std::size_t bytes) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (bytes > 0) {
        const std::size_t off = addr % kPageBytes;
        const std::size_t chunk = std::min(bytes, kPageBytes - off);
        const std::uint8_t *page = pageFor(addr);
        if (page)
            std::memcpy(out, page + off, chunk);
        else
            std::memset(out, 0, chunk);
        out += chunk;
        addr += chunk;
        bytes -= chunk;
    }
}

void
DramStorage::write(Addr addr, const void *src, std::size_t bytes)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (bytes > 0) {
        const std::size_t off = addr % kPageBytes;
        const std::size_t chunk = std::min(bytes, kPageBytes - off);
        std::memcpy(pageForWrite(addr) + off, in, chunk);
        in += chunk;
        addr += chunk;
        bytes -= chunk;
    }
}

std::vector<Addr>
DramStorage::touchedPageNumbers() const
{
    std::vector<Addr> numbers;
    numbers.reserve(pages_.size());
    // Hash-order scan only collects keys; every consumer walks the
    // sorted copy. // vip-lint: allow(unordered-iter)
    for (const auto &entry : pages_)
        numbers.push_back(entry.first);
    std::sort(numbers.begin(), numbers.end());
    return numbers;
}

std::uint64_t
DramStorage::fingerprint() const
{
    // FNV-1a per page (seeded with the page number so content at the
    // wrong address cannot cancel out), XOR-combined across pages and
    // walked in sorted page order — the digest is order-independent
    // twice over, and the walk itself can never leak hash order.
    std::uint64_t digest = 0;
    for (const Addr page_no : touchedPageNumbers()) {
        const std::uint8_t *bytes = pages_.at(page_no).get();
        const bool all_zero = std::all_of(bytes, bytes + kPageBytes,
                                          [](std::uint8_t b) {
                                              return b == 0;
                                          });
        if (all_zero)
            continue;
        std::uint64_t h = 0xcbf29ce484222325ULL ^ page_no;
        for (std::size_t i = 0; i < kPageBytes; ++i) {
            h ^= bytes[i];
            h *= 0x100000001b3ULL;
        }
        digest ^= h;
    }
    return digest;
}

} // namespace vip
