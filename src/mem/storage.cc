#include "mem/storage.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vip {

DramStorage::~DramStorage()
{
    for (auto &slot : root_) {
        Leaf *leaf = slot.load(std::memory_order_relaxed);
        if (!leaf)
            continue;
        for (auto &page : leaf->pages)
            delete[] page.load(std::memory_order_relaxed);
        delete leaf;
    }
}

const std::uint8_t *
DramStorage::pageFor(Addr addr) const
{
    const Addr page_no = addr / kPageBytes;
    const Leaf *leaf =
        root_[page_no >> kLeafBits].load(std::memory_order_acquire);
    if (!leaf)
        return nullptr;
    return leaf->pages[page_no & (kLeafSlots - 1)].load(
        std::memory_order_acquire);
}

std::uint8_t *
DramStorage::pageForWrite(Addr addr)
{
    const Addr page_no = addr / kPageBytes;
    vip_assert(page_no >> (kRootBits + kLeafBits) == 0,
               "DRAM address past the 64 GiB radix span");

    auto &root_slot = root_[page_no >> kLeafBits];
    Leaf *leaf = root_slot.load(std::memory_order_acquire);
    if (!leaf) {
        // First-touch CAS race: the loser frees its candidate and
        // adopts the winner's, so exactly one leaf is ever published.
        Leaf *fresh = new Leaf();
        if (root_slot.compare_exchange_strong(leaf, fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire))
            leaf = fresh;
        else
            delete fresh;
    }

    auto &page_slot = leaf->pages[page_no & (kLeafSlots - 1)];
    std::uint8_t *page = page_slot.load(std::memory_order_acquire);
    if (!page) {
        std::uint8_t *fresh = new std::uint8_t[kPageBytes]();
        if (page_slot.compare_exchange_strong(page, fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
            page = fresh;
            touched_.fetch_add(1, std::memory_order_acq_rel);
        } else {
            delete[] fresh;
        }
    }
    return page;
}

void
DramStorage::read(Addr addr, void *dst, std::size_t bytes) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (bytes > 0) {
        const std::size_t off = addr % kPageBytes;
        const std::size_t chunk = std::min(bytes, kPageBytes - off);
        const std::uint8_t *page = pageFor(addr);
        if (page)
            std::memcpy(out, page + off, chunk);
        else
            std::memset(out, 0, chunk);
        out += chunk;
        addr += chunk;
        bytes -= chunk;
    }
}

void
DramStorage::write(Addr addr, const void *src, std::size_t bytes)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (bytes > 0) {
        const std::size_t off = addr % kPageBytes;
        const std::size_t chunk = std::min(bytes, kPageBytes - off);
        std::memcpy(pageForWrite(addr) + off, in, chunk);
        in += chunk;
        addr += chunk;
        bytes -= chunk;
    }
}

std::vector<Addr>
DramStorage::touchedPageNumbers() const
{
    std::vector<Addr> numbers;
    numbers.reserve(touchedPages());
    for (std::size_t r = 0; r < kRootSlots; ++r) {
        const Leaf *leaf = root_[r].load(std::memory_order_acquire);
        if (!leaf)
            continue;
        for (std::size_t l = 0; l < kLeafSlots; ++l)
            if (leaf->pages[l].load(std::memory_order_acquire))
                numbers.push_back((Addr{r} << kLeafBits) | l);
    }
    return numbers;
}

std::uint64_t
DramStorage::fingerprint() const
{
    // FNV-1a per page (seeded with the page number so content at the
    // wrong address cannot cancel out), XOR-combined across pages and
    // walked in ascending radix order — the digest is order-independent
    // twice over.
    std::uint64_t digest = 0;
    for (std::size_t r = 0; r < kRootSlots; ++r) {
        const Leaf *leaf = root_[r].load(std::memory_order_acquire);
        if (!leaf)
            continue;
        for (std::size_t l = 0; l < kLeafSlots; ++l) {
            const std::uint8_t *bytes =
                leaf->pages[l].load(std::memory_order_acquire);
            if (!bytes)
                continue;
            const bool all_zero = std::all_of(bytes, bytes + kPageBytes,
                                              [](std::uint8_t b) {
                                                  return b == 0;
                                              });
            if (all_zero)
                continue;
            const Addr page_no = (Addr{r} << kLeafBits) | l;
            std::uint64_t h = 0xcbf29ce484222325ULL ^ page_no;
            for (std::size_t i = 0; i < kPageBytes; ++i) {
                h ^= bytes[i];
                h *= 0x100000001b3ULL;
            }
            digest ^= h;
        }
    }
    return digest;
}

} // namespace vip
