/**
 * @file
 * The complete HMC-like 3D-stacked memory: 32 vault controllers, a
 * shared functional backing store, and stack-level bandwidth statistics.
 */

#ifndef VIP_MEM_HMC_HH
#define VIP_MEM_HMC_HH

#include <algorithm>
#include <memory>
#include <vector>

#include "mem/addrmap.hh"
#include "mem/storage.hh"
#include "mem/vault.hh"
#include "sim/clocked.hh"
#include "sim/stats.hh"

namespace vip {

class HmcStack : public Clocked
{
  public:
    explicit HmcStack(const MemConfig &cfg, StatGroup *parent = nullptr);

    /** Route a transaction to its home vault. False if that vault is full. */
    bool enqueue(std::unique_ptr<MemRequest> req);

    /** Which vault services @p addr under the configured mapping. */
    unsigned homeVault(Addr addr) const { return mapper_.decode(addr).vault; }

    void
    tick(Cycles now) override
    {
        for (auto &v : vaults_)
            v->tick(now);
    }

    /** Earliest event over all vault controllers. */
    Cycles
    nextEventAt(Cycles now) const override
    {
        Cycles next = kIdleForever;
        for (const auto &v : vaults_) {
            next = std::min(next, v->nextEventAt(now));
            if (next <= now)
                break;
        }
        return next;
    }

    bool idle() const;

    VaultController &vault(unsigned i) { return *vaults_.at(i); }
    const VaultController &vault(unsigned i) const { return *vaults_.at(i); }
    unsigned numVaults() const { return static_cast<unsigned>(vaults_.size()); }

    DramStorage &storage() { return storage_; }
    const DramStorage &storage() const { return storage_; }
    const AddressMapper &mapper() const { return mapper_; }
    const MemConfig &config() const { return cfg_; }
    StatGroup &stats() { return statGroup_; }

    /** Total DRAM bytes moved (both directions) across all vaults. */
    std::uint64_t totalBytesMoved() const;

  private:
    MemConfig cfg_;
    AddressMapper mapper_;
    DramStorage storage_;
    StatGroup statGroup_;
    std::vector<std::unique_ptr<VaultController>> vaults_;
};

} // namespace vip

#endif // VIP_MEM_HMC_HH
