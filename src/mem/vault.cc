#include "mem/vault.hh"

#include <algorithm>

#include "sim/fault.hh"
#include "sim/logging.hh"

namespace vip {

VaultController::VaultController(unsigned vaultId, const MemConfig &cfg,
                                 const AddressMapper &mapper,
                                 StatGroup *parent)
    : vaultId_(vaultId), cfg_(cfg), mapper_(mapper),
      banks_(cfg.geom.banksPerVault),
      trans_(cfg.transQueueDepth),
      nextRefreshAt_(cfg.timing.tREFI),
      statGroup_("vault" + std::to_string(vaultId), parent),
      stats_{Counter(&statGroup_, "read_bytes", "bytes read from DRAM"),
             Counter(&statGroup_, "write_bytes", "bytes written to DRAM"),
             Counter(&statGroup_, "row_hits", "column accesses to open row"),
             Counter(&statGroup_, "row_misses",
                     "activates with bank precharged"),
             Counter(&statGroup_, "row_conflicts",
                     "precharges forced by a different open row"),
             Counter(&statGroup_, "refreshes", "refresh commands issued"),
             Counter(&statGroup_, "col_commands", "RD/WR commands issued"),
             Counter(&statGroup_, "req_count", "transactions completed"),
             Counter(&statGroup_, "req_latency_total",
                     "sum of transaction latencies (cycles)")}
{
    // Stacked descending so the next slot handed out is the lowest
    // index, matching the original linear free-slot search.
    freeSlots_.reserve(cfg.transQueueDepth);
    for (std::size_t i = cfg.transQueueDepth; i-- > 0;)
        freeSlots_.push_back(i);
}

bool
VaultController::enqueue(std::unique_ptr<MemRequest> req)
{
    if (freeSlots_.empty())
        return false;

    vip_assert(req->bytes > 0, "zero-length memory request");

    const std::size_t slot = freeSlots_.back();
    freeSlots_.pop_back();
    ++liveTrans_;
    trans_[slot].req = std::move(req);
    trans_[slot].live = true;
    trans_[slot].pendingColumns = 0;
    splitIntoColumns(slot);
    return true;
}

void
VaultController::splitIntoColumns(std::size_t trans_index)
{
    Transaction &t = trans_[trans_index];
    const MemRequest &req = *t.req;
    const unsigned col_bytes = cfg_.geom.colBytes;

    Addr addr = req.addr;
    std::uint64_t remaining = req.bytes;
    while (remaining > 0) {
        DramCoord c = mapper_.decode(addr);
        vip_assert(c.vault == vaultId_, "request for vault ", c.vault,
                   " enqueued at vault ", vaultId_);
        const unsigned within = col_bytes - c.offset;
        const std::uint64_t chunk = std::min<std::uint64_t>(remaining,
                                                            within);
        Bank &bank = banks_[c.bank];
        if (!bank.active) {
            bank.active = true;
            activeBanks_.push_back(c.bank);
        }
        bank.cols.push_back({nextSeq_++, c.row, c.col, req.isWrite,
                             trans_index, req.issuedAt});
        if (bank.rowOpen && bank.openRow == c.row)
            ++bank.hitQueued;
        ++totalColumns_;
        ++t.pendingColumns;
        addr += chunk;
        remaining -= chunk;
    }
}

void
VaultController::retireCompletions(Cycles now)
{
    while (!completions_.empty() && completions_.top().at <= now) {
        const auto ev = completions_.top();
        completions_.pop();
        finishColumn(ev.transIndex, ev.at);
    }
}

void
VaultController::finishColumn(std::size_t trans_index, Cycles now)
{
    Transaction &t = trans_[trans_index];
    vip_assert(t.live && t.pendingColumns > 0, "stray column completion");
    if (--t.pendingColumns == 0) {
        std::unique_ptr<MemRequest> req = std::move(t.req);
        t.live = false;
        freeSlots_.push_back(trans_index);
        --liveTrans_;
        req->completedAt = now;
        stats_.reqCount += 1;
        stats_.totalReqLatency += now - req->issuedAt;
        latencyHist_.sample(now - req->issuedAt);
        if (req->isWrite)
            stats_.writeBytes += req->bytes;
        else
            stats_.readBytes += req->bytes;
        if (completionHandler_) {
            completionHandler_(std::move(req));
        } else if (req->onComplete) {
            req->onComplete(*req);
        }
        // Direct-callback path: hand pooled descriptors back for reuse.
        if (req && req->pool)
            req->pool->release(std::move(req));
    }
}

void
VaultController::beginRefresh(Cycles now)
{
    for (auto &bank : banks_) {
        bank.rowOpen = false;
        bank.hitQueued = 0;
        bank.actAllowedAt = std::max(bank.actAllowedAt,
                                     now + cfg_.timing.tRFC);
    }
    refreshUntil_ = now + cfg_.timing.tRFC;
    nextRefreshAt_ += cfg_.timing.tREFI;
    stats_.refreshes += 1;

    // Retention errors: keyed by (vault, refresh ordinal), never the
    // cycle, so fast-forwarded and ticked runs strike identically.
    const std::uint64_t refresh_index = refreshIndex_++;
    if (injector_) {
        std::uint64_t dice = 0;
        if (injector_->retentionStrike(vaultId_, refresh_index, &dice)) {
            // Split the dice into a victim cell in this vault; the
            // injector cannot pick it itself because the address
            // mapping lives on this side of the layering.
            const DramGeometry &g = cfg_.geom;
            DramCoord c;
            c.vault = vaultId_;
            c.bank = static_cast<unsigned>(dice % g.banksPerVault);
            dice /= g.banksPerVault;
            c.row = dice % g.rowsPerBank;
            dice /= g.rowsPerBank;
            c.col = static_cast<unsigned>(dice % g.colsPerRow());
            dice /= g.colsPerRow();
            c.offset = static_cast<unsigned>(dice % g.colBytes);
            dice /= g.colBytes;
            injector_->plantRetentionFlip(
                mapper_.encode(c), static_cast<unsigned>(dice % 8));
        }
    }
}

void
VaultController::catchUpRefreshes(Cycles until)
{
    // beginRefresh(deadline) — not (now) — so bank timing windows,
    // stats_.refreshes, and the (vault, refreshIndex_) retention draw
    // are byte-identical to a run that ticked through the deadline.
    while (nextRefreshAt_ < until)
        beginRefresh(nextRefreshAt_);
}

void
VaultController::deactivateBank(unsigned bank_idx)
{
    banks_[bank_idx].active = false;
    auto it = std::find(activeBanks_.begin(), activeBanks_.end(),
                        bank_idx);
    vip_assert(it != activeBanks_.end(), "bank missing from active list");
    *it = activeBanks_.back();
    activeBanks_.pop_back();
}

void
VaultController::issueColumn(unsigned bank_idx, Cycles now,
                             std::deque<ColumnAccess>::iterator it)
{
    Bank &bank = banks_[bank_idx];
    const ColumnAccess ca = *it;
    const DramTiming &t = cfg_.timing;

    // Data occupies the shared TSVs for tBurst beats (the vault-wide
    // constraint); tCCD paces column commands within one bank.
    colIssueAllowedAt_ = now + t.tBurst;
    bank.colCmdAllowedAt = now + t.tCCD;
    stats_.colCommands += 1;
    stats_.rowHits += 1;

    const Cycles done_at = now + t.tCL + t.tBurst;
    if (ca.isWrite) {
        bank.preAllowedAt = std::max(bank.preAllowedAt,
                                     done_at + t.tWR);
    }
    completions_.push({done_at, ca.transIndex});

    bank.cols.erase(it);
    --totalColumns_;
    if (bank.cols.empty())
        deactivateBank(bank_idx);
    vip_assert(bank.hitQueued > 0, "issued hit was not counted");
    --bank.hitQueued;

    if (cfg_.pagePolicy == PagePolicy::Closed && bank.hitQueued == 0) {
        // Auto-precharge: no other queued access needs this row.
        bank.rowOpen = false;
        bank.actAllowedAt = std::max(bank.preAllowedAt,
                                     ca.isWrite ? done_at + t.tWR
                                                : done_at) +
                            t.tRP;
    }
}

bool
VaultController::issueOldestHit(Cycles now)
{
    // FR-FCFS first pass. Within one bank every open-row access shares
    // the same timing gates, so the bank's oldest hit is its only
    // candidate; across banks the globally oldest eligible candidate
    // is exactly the access a front-to-back scan of one combined
    // arrival-ordered queue would have issued.
    unsigned best_bank = 0;
    std::deque<ColumnAccess>::iterator best_it;
    std::uint64_t best_seq = ~0ull;
    for (const unsigned bi : activeBanks_) {
        Bank &bank = banks_[bi];
        if (!bank.rowOpen || bank.hitQueued == 0)
            continue;
        if (now < bank.colAllowedAt || now < bank.colCmdAllowedAt ||
            now < colIssueAllowedAt_) {
            continue;
        }
        auto it = bank.cols.begin();
        while (it->row != bank.openRow)
            ++it;
        if (it->seq < best_seq) {
            best_seq = it->seq;
            best_bank = bi;
            best_it = it;
        }
    }
    if (best_seq == ~0ull)
        return false;
    issueColumn(best_bank, now, best_it);
    return true;
}

void
VaultController::progressOldest(Cycles now)
{
    // Oldest-first row-state progress. A bank contributes one
    // candidate: with its row open, the oldest access needing a
    // different row (precharge); with its row closed, its oldest
    // access (activate). Same-class accesses within a bank share the
    // timing gate, so taking the globally oldest eligible candidate
    // reproduces the arrival-ordered scan exactly.
    const DramTiming &t = cfg_.timing;
    Bank *best = nullptr;
    std::uint64_t best_seq = ~0ull;
    bool best_is_activate = false;
    for (const unsigned bi : activeBanks_) {
        Bank &bank = banks_[bi];
        if (bank.rowOpen) {
            if (bank.cols.size() == bank.hitQueued)
                continue;  // everything queued hits the open row
            if (now < bank.preAllowedAt)
                continue;
            auto it = bank.cols.begin();
            while (it->row == bank.openRow)
                ++it;
            if (it->seq < best_seq) {
                best_seq = it->seq;
                best = &bank;
                best_is_activate = false;
            }
        } else {
            if (now < bank.actAllowedAt)
                continue;
            if (bank.cols.front().seq < best_seq) {
                best_seq = bank.cols.front().seq;
                best = &bank;
                best_is_activate = true;
            }
        }
    }
    if (best == nullptr)
        return;

    if (best_is_activate) {
        best->rowOpen = true;
        best->openRow = best->cols.front().row;
        best->colAllowedAt = now + t.tRCD;
        best->preAllowedAt = now + t.tRAS;
        best->hitQueued = static_cast<unsigned>(std::count_if(
            best->cols.begin(), best->cols.end(),
            [&](const ColumnAccess &c) { return c.row == best->openRow; }));
        stats_.rowMisses += 1;
    } else {
        best->rowOpen = false;
        best->hitQueued = 0;
        best->actAllowedAt = std::max(best->actAllowedAt, now + t.tRP);
        stats_.rowConflicts += 1;
    }
}

void
VaultController::tick(Cycles now)
{
    retireCompletions(now);

    if (now < refreshUntil_)
        return;
    if (now >= nextRefreshAt_) {
        beginRefresh(now);
        return;
    }
    if (totalColumns_ == 0)
        return;

    // First pass (FR-FCFS): issue the oldest row-hit column access.
    if (issueOldestHit(now))
        return;
    // Second pass: make row-state progress for the oldest access.
    progressOldest(now);
}

Cycles
VaultController::nextEventAt(Cycles now) const
{
    Cycles next = kIdleForever;
    if (!completions_.empty())
        next = std::max(completions_.top().at, now);

    // Refresh fires unconditionally at its deadline (and changes bank
    // state and the refresh counter), so it is always a hard event.
    next = std::min(next, std::max(nextRefreshAt_, now));

    if (totalColumns_ == 0 || next <= now)
        return next;

    // No command issues while the refresh window is open. Each bank
    // contributes at most one candidate per access class it has
    // queued; the per-access minimum collapses to this because
    // same-class accesses within a bank share every timing gate.
    const Cycles floor = std::max(now, refreshUntil_);
    for (const unsigned bi : activeBanks_) {
        const Bank &bank = banks_[bi];
        if (bank.rowOpen) {
            if (bank.hitQueued > 0) {
                // Row hit: gated by tRCD, this bank's tCCD, and the
                // vault-wide data-bus (tBurst) constraint.
                next = std::min(next,
                                std::max({floor, bank.colAllowedAt,
                                          bank.colCmdAllowedAt,
                                          colIssueAllowedAt_}));
            }
            if (bank.cols.size() > bank.hitQueued) {
                // Conflict: the wrong row closes once tRAS/tWR allow.
                next = std::min(next, std::max(floor, bank.preAllowedAt));
            }
        } else {
            // Precharged: activates once tRP/tRFC allow.
            next = std::min(next, std::max(floor, bank.actAllowedAt));
        }
        if (next <= now)
            break;
    }
    return next;
}

unsigned
VaultController::pendingTransactions() const
{
    return liveTrans_;
}

bool
VaultController::idle() const
{
    return totalColumns_ == 0 && completions_.empty() && liveTrans_ == 0;
}

} // namespace vip
