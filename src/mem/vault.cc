#include "mem/vault.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vip {

VaultController::VaultController(unsigned vaultId, const MemConfig &cfg,
                                 const AddressMapper &mapper,
                                 StatGroup *parent)
    : vaultId_(vaultId), cfg_(cfg), mapper_(mapper),
      banks_(cfg.geom.banksPerVault),
      trans_(cfg.transQueueDepth),
      nextRefreshAt_(cfg.timing.tREFI),
      statGroup_("vault" + std::to_string(vaultId), parent),
      stats_{Counter(&statGroup_, "read_bytes", "bytes read from DRAM"),
             Counter(&statGroup_, "write_bytes", "bytes written to DRAM"),
             Counter(&statGroup_, "row_hits", "column accesses to open row"),
             Counter(&statGroup_, "row_misses",
                     "activates with bank precharged"),
             Counter(&statGroup_, "row_conflicts",
                     "precharges forced by a different open row"),
             Counter(&statGroup_, "refreshes", "refresh commands issued"),
             Counter(&statGroup_, "col_commands", "RD/WR commands issued"),
             Counter(&statGroup_, "req_count", "transactions completed"),
             Counter(&statGroup_, "req_latency_total",
                     "sum of transaction latencies (cycles)")}
{
}

bool
VaultController::enqueue(std::unique_ptr<MemRequest> req)
{
    // Find a free transaction slot.
    std::size_t slot = trans_.size();
    for (std::size_t i = 0; i < trans_.size(); ++i) {
        if (!trans_[i].live) {
            slot = i;
            break;
        }
    }
    if (slot == trans_.size())
        return false;

    vip_assert(req->bytes > 0, "zero-length memory request");

    trans_[slot].req = std::move(req);
    trans_[slot].live = true;
    trans_[slot].pendingColumns = 0;
    splitIntoColumns(slot);
    return true;
}

void
VaultController::splitIntoColumns(std::size_t trans_index)
{
    Transaction &t = trans_[trans_index];
    const MemRequest &req = *t.req;
    const unsigned col_bytes = cfg_.geom.colBytes;

    Addr addr = req.addr;
    std::uint64_t remaining = req.bytes;
    while (remaining > 0) {
        DramCoord c = mapper_.decode(addr);
        vip_assert(c.vault == vaultId_, "request for vault ", c.vault,
                   " enqueued at vault ", vaultId_);
        const unsigned within = col_bytes - c.offset;
        const std::uint64_t chunk = std::min<std::uint64_t>(remaining,
                                                            within);
        columns_.push_back({c.bank, c.row, c.col, req.isWrite, trans_index,
                            req.issuedAt});
        ++t.pendingColumns;
        addr += chunk;
        remaining -= chunk;
    }
}

void
VaultController::retireCompletions(Cycles now)
{
    while (!completions_.empty() && completions_.top().at <= now) {
        const auto ev = completions_.top();
        completions_.pop();
        finishColumn(ev.transIndex, ev.at);
    }
}

void
VaultController::finishColumn(std::size_t trans_index, Cycles now)
{
    Transaction &t = trans_[trans_index];
    vip_assert(t.live && t.pendingColumns > 0, "stray column completion");
    if (--t.pendingColumns == 0) {
        std::unique_ptr<MemRequest> req = std::move(t.req);
        t.live = false;
        req->completedAt = now;
        stats_.reqCount += 1;
        stats_.totalReqLatency += now - req->issuedAt;
        latencyHist_.sample(now - req->issuedAt);
        if (req->isWrite)
            stats_.writeBytes += req->bytes;
        else
            stats_.readBytes += req->bytes;
        if (completionHandler_)
            completionHandler_(std::move(req));
        else if (req->onComplete)
            req->onComplete(*req);
    }
}

void
VaultController::beginRefresh(Cycles now)
{
    for (auto &bank : banks_) {
        bank.rowOpen = false;
        bank.actAllowedAt = std::max(bank.actAllowedAt,
                                     now + cfg_.timing.tRFC);
    }
    refreshUntil_ = now + cfg_.timing.tRFC;
    nextRefreshAt_ += cfg_.timing.tREFI;
    stats_.refreshes += 1;
}

bool
VaultController::tryIssueColumn(std::deque<ColumnAccess>::iterator it,
                                Cycles now)
{
    const ColumnAccess &ca = *it;
    Bank &bank = banks_[ca.bank];
    if (!bank.rowOpen || bank.openRow != ca.row)
        return false;
    if (now < bank.colAllowedAt || now < bank.colCmdAllowedAt ||
        now < colIssueAllowedAt_) {
        return false;
    }

    const DramTiming &t = cfg_.timing;

    // Data occupies the shared TSVs for tBurst beats (the vault-wide
    // constraint); tCCD paces column commands within one bank.
    colIssueAllowedAt_ = now + t.tBurst;
    bank.colCmdAllowedAt = now + t.tCCD;
    stats_.colCommands += 1;
    stats_.rowHits += 1;

    const Cycles done_at = now + t.tCL + t.tBurst;
    if (ca.isWrite) {
        bank.preAllowedAt = std::max(bank.preAllowedAt,
                                     done_at + t.tWR);
    }
    completions_.push({done_at, ca.transIndex});

    if (cfg_.pagePolicy == PagePolicy::Closed) {
        // Auto-precharge unless another queued access needs this row.
        const bool more = std::any_of(
            columns_.begin(), columns_.end(), [&](const ColumnAccess &o) {
                return &o != &ca && o.bank == ca.bank && o.row == ca.row;
            });
        if (!more) {
            bank.rowOpen = false;
            bank.actAllowedAt = std::max(bank.preAllowedAt,
                                         ca.isWrite ? done_at + t.tWR
                                                    : done_at) +
                                t.tRP;
        }
    }

    columns_.erase(it);
    return true;
}

void
VaultController::progressOldest(Cycles now)
{
    if (columns_.empty())
        return;

    // Oldest-first: open the row (or close the wrong one) for the head
    // access whose bank can accept a command this cycle.
    for (auto it = columns_.begin(); it != columns_.end(); ++it) {
        Bank &bank = banks_[it->bank];
        const DramTiming &t = cfg_.timing;
        if (bank.rowOpen && bank.openRow != it->row) {
            if (now >= bank.preAllowedAt) {
                bank.rowOpen = false;
                bank.actAllowedAt = std::max(bank.actAllowedAt,
                                             now + t.tRP);
                stats_.rowConflicts += 1;
                return;
            }
        } else if (!bank.rowOpen) {
            if (now >= bank.actAllowedAt) {
                bank.rowOpen = true;
                bank.openRow = it->row;
                bank.colAllowedAt = now + t.tRCD;
                bank.preAllowedAt = now + t.tRAS;
                stats_.rowMisses += 1;
                return;
            }
        } else {
            // Row already open and matching: column issue is handled by
            // the row-hit pass; nothing to do for this access here.
            continue;
        }
    }
}

void
VaultController::tick(Cycles now)
{
    retireCompletions(now);

    if (now < refreshUntil_)
        return;
    if (now >= nextRefreshAt_) {
        beginRefresh(now);
        return;
    }

    // First pass (FR-FCFS): issue the oldest row-hit column access.
    for (auto it = columns_.begin(); it != columns_.end(); ++it) {
        if (tryIssueColumn(it, now))
            return;
    }
    // Second pass: make row-state progress for the oldest access.
    progressOldest(now);
}

Cycles
VaultController::nextEventAt(Cycles now) const
{
    Cycles next = kIdleForever;
    if (!completions_.empty())
        next = std::max(completions_.top().at, now);

    // Refresh fires unconditionally at its deadline (and changes bank
    // state and the refresh counter), so it is always a hard event.
    next = std::min(next, std::max(nextRefreshAt_, now));

    if (columns_.empty() || next <= now)
        return next;

    // No command issues while the refresh window is open.
    const Cycles floor = std::max(now, refreshUntil_);
    for (const ColumnAccess &ca : columns_) {
        const Bank &bank = banks_[ca.bank];
        Cycles cand;
        if (bank.rowOpen && bank.openRow == ca.row) {
            // Row hit: gated by tRCD, this bank's tCCD, and the
            // vault-wide data-bus (tBurst) constraint.
            cand = std::max({floor, bank.colAllowedAt,
                             bank.colCmdAllowedAt, colIssueAllowedAt_});
        } else if (bank.rowOpen) {
            // Conflict: the wrong row closes once tRAS/tWR allow.
            cand = std::max(floor, bank.preAllowedAt);
        } else {
            // Precharged: activates once tRP/tRFC allow.
            cand = std::max(floor, bank.actAllowedAt);
        }
        next = std::min(next, cand);
        if (next <= now)
            break;
    }
    return next;
}

unsigned
VaultController::pendingTransactions() const
{
    unsigned live = 0;
    for (const auto &t : trans_) {
        if (t.live)
            ++live;
    }
    return live;
}

bool
VaultController::idle() const
{
    return columns_.empty() && completions_.empty() &&
           std::none_of(trans_.begin(), trans_.end(),
                        [](const Transaction &t) { return t.live; });
}

} // namespace vip
