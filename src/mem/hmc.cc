#include "mem/hmc.hh"

#include "sim/logging.hh"

namespace vip {

HmcStack::HmcStack(const MemConfig &cfg, StatGroup *parent)
    : cfg_(cfg), mapper_(cfg.geom, cfg.addrMap), statGroup_("hmc", parent)
{
    vaults_.reserve(cfg.geom.vaults);
    for (unsigned v = 0; v < cfg.geom.vaults; ++v) {
        vaults_.push_back(std::make_unique<VaultController>(
            v, cfg_, mapper_, &statGroup_));
    }
}

bool
HmcStack::enqueue(std::unique_ptr<MemRequest> req)
{
    const unsigned home = homeVault(req->addr);
    const unsigned tail_vault = homeVault(req->addr + req->bytes - 1);
    vip_assert(home == tail_vault,
               "request spans vaults ", home, " and ", tail_vault,
               "; the issuer must split at vault boundaries");
    return vaults_[home]->enqueue(std::move(req));
}

bool
HmcStack::idle() const
{
    for (const auto &v : vaults_) {
        if (!v->idle())
            return false;
    }
    return true;
}

std::uint64_t
HmcStack::totalBytesMoved() const
{
    std::uint64_t total = 0;
    for (const auto &v : vaults_) {
        total += v->stats().readBytes.value();
        total += v->stats().writeBytes.value();
    }
    return total;
}

} // namespace vip
