/**
 * @file
 * The partition layer of island-partitioned execution: how the machine
 * (PEs + torus routers + vaults) is cut into islands that can tick on
 * separate host threads (see sim/island.hh for the scheduler and
 * docs/INTERNALS.md "Island partitioning & conservative quanta").
 *
 * Islands are contiguous bands of NoC X columns: island i owns columns
 * [i * nocX/islands, (i+1) * nocX/islands), every router in them, the
 * vault behind each router, and the PEs on each router's star lanes.
 * Column bands keep each island's footprint contiguous in the address
 * map (vault-major interleaving) and make the partition a pure
 * function of the node coordinate — no placement state to serialize.
 *
 * `islands` must divide nocX so island boundaries fall on column cuts;
 * anything else (including 0) is a ConfigError, caught by
 * validateSystemConfig() before the machine is built.
 */

#ifndef VIP_SYSTEM_PARTITION_HH
#define VIP_SYSTEM_PARTITION_HH

#include <vector>

namespace vip {

/** A concrete cut of the machine into islands (see file comment). */
struct IslandPartition
{
    unsigned islands = 1;

    /** NoC node (== vault id) -> owning island. */
    std::vector<unsigned> islandOfNode;

    /** Island -> its nodes, ascending. Fixed order: merge layers walk
     *  this to combine per-island state deterministically. */
    std::vector<std::vector<unsigned>> nodesOf;

    unsigned
    islandOf(unsigned node) const
    {
        return islandOfNode[node];
    }

    /**
     * Build the column-band partition of an @p noc_x by @p noc_y
     * torus. Requires validateIslandCount(@p islands, @p noc_x) to
     * have passed.
     */
    static IslandPartition make(unsigned islands, unsigned noc_x,
                                unsigned noc_y);
};

/**
 * Reject island counts the column-band partition cannot honor: 0, or
 * any count that does not divide the NoC X dimension. Throws
 * ConfigError with the dotted config path ("islands = ...").
 */
void validateIslandCount(unsigned islands, unsigned noc_x);

} // namespace vip

#endif // VIP_SYSTEM_PARTITION_HH
