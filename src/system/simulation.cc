#include "system/simulation.hh"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "isa/assembler.hh"
#include "sim/error.hh"

namespace vip {

Simulation &
Simulation::loadProgram(unsigned pe, const std::string &source)
{
    AssemblyError err;
    auto prog = assemble(source, &err);
    if (!err.message.empty())
        throw AssemblyFailure(err.line, err.message);
    sys_.pe(pe).loadProgram(std::move(prog));
    return *this;
}

RunResult
Simulation::run(Cycles max_cycles)
{
    RunResult result;
    const Cycles start_cycle = sys_.now();
    const auto start = std::chrono::steady_clock::now();
    result.cycles = sys_.run(max_cycles);
    const auto end = std::chrono::steady_clock::now();
    result.hostSeconds =
        std::chrono::duration<double>(end - start).count();
    if (result.hostSeconds > 0.0) {
        result.simCyclesPerHostSecond =
            static_cast<double>(result.cycles - start_cycle) /
            result.hostSeconds;
    }
    result.fastForwardedCycles = sys_.fastForwardStats().skippedCycles;
    result.haltedCleanly = sys_.allIdle();
    result.peRequestAllocations.reserve(sys_.numPes());
    for (unsigned pe = 0; pe < sys_.numPes(); ++pe) {
        const MemRequestPool &pool = sys_.pe(pe).requestPool();
        result.memRequestPoolHighWater =
            std::max(result.memRequestPoolHighWater, pool.highWater());
        result.peRequestAllocations.push_back(pool.allocations());
    }
    if (const FaultInjector *f = sys_.faultInjector()) {
        result.faultInjectionEnabled = true;
        result.faults = f->stats();
    }
    std::ostringstream os;
    sys_.stats().dump(os);
    result.stats = os.str();
    return result;
}

std::vector<std::int16_t>
Simulation::peekDram(Addr addr, std::size_t count) const
{
    std::vector<std::int16_t> values;
    values.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        values.push_back(sys_.dram().load<std::int16_t>(
            addr + 2 * static_cast<Addr>(i)));
    }
    return values;
}

} // namespace vip
