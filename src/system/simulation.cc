#include "system/simulation.hh"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "isa/assembler.hh"
#include "sim/error.hh"
#include "sim/json.hh"

namespace vip {

Simulation &
Simulation::loadProgram(unsigned pe, const std::string &source)
{
    AssemblyError err;
    auto prog = assemble(source, &err);
    if (!err.message.empty())
        throw AssemblyFailure(err.line, err.message);
    sys_.pe(pe).loadProgram(std::move(prog));
    return *this;
}

RunResult
Simulation::run(Cycles max_cycles, const CancelToken *cancel)
{
    RunResult result;
    const Cycles start_cycle = sys_.now();
    // Host-timing site: hostSeconds/simCyclesPerHostSecond measure the
    // simulator, feed no simulated state, and are excluded from
    // RunResult::toJson() — the one sanctioned use of a host clock.
    const auto start = std::chrono::steady_clock::now();  // vip-lint: allow(wall-clock)
    result.cycles = sys_.run(max_cycles, cancel);
    const auto end = std::chrono::steady_clock::now();  // vip-lint: allow(wall-clock)
    result.hostSeconds =
        std::chrono::duration<double>(end - start).count();
    if (result.hostSeconds > 0.0) {
        result.simCyclesPerHostSecond =
            static_cast<double>(result.cycles - start_cycle) /
            result.hostSeconds;
    }
    result.fastForwardedCycles = sys_.fastForwardStats().skippedCycles;
    result.fastPathEnabled = sys_.config().fastPath;
    for (unsigned pe = 0; pe < sys_.numPes(); ++pe) {
        sys_.pe(pe).fastPathGroup().visit({
            [&result](const std::string &path, std::uint64_t value,
                      const std::string &) {
                // Aggregate by counter name: the path is
                // "peN.fastpath.<name>"; keep just <name>.
                result.fastpath[path.substr(path.rfind('.') + 1)] += value;
            },
            nullptr,
        });
    }
    result.haltedCleanly = sys_.allIdle();
    result.peRequestAllocations.reserve(sys_.numPes());
    for (unsigned pe = 0; pe < sys_.numPes(); ++pe) {
        const MemRequestPool &pool = sys_.pe(pe).requestPool();
        result.memRequestPoolHighWater =
            std::max(result.memRequestPoolHighWater, pool.highWater());
        result.peRequestAllocations.push_back(pool.allocations());
    }
    if (const FaultInjector *f = sys_.faultInjector()) {
        result.faultInjectionEnabled = true;
        result.faults = f->stats();
        result.outstandingFlippedWords = f->outstandingFlippedWords();
    }
    std::ostringstream os;
    sys_.stats().dump(os);
    result.stats = os.str();
    sys_.stats().visit({
        [&result](const std::string &path, std::uint64_t value,
                  const std::string &) {
            result.counters[path] = value;
        },
        [&result](const std::string &path, double value,
                  const std::string &) {
            result.formulas[path] = value;
        },
    });
    return result;
}

Json
RunResult::toJson() const
{
    Json j = Json::object();
    j.set("cycles", static_cast<std::uint64_t>(cycles));
    j.set("haltedCleanly", haltedCleanly);
    // fastForwardedCycles and the fastpath counter map stay on the
    // struct (tools/logs read them) but out of the JSON: they are
    // host-side tuning observables — fast-forward's per-island
    // aggregate differs from the serial value, and the fastpath
    // counters differ with the fast path on vs. off — and keeping
    // either here would break the bit-identical-RunResult contract
    // island_equivalence_test and fastpath_equivalence_test pin.
    j.set("memRequestPoolHighWater", memRequestPoolHighWater);
    Json allocs = Json::array();
    for (const std::uint64_t a : peRequestAllocations)
        allocs.push(a);
    j.set("peRequestAllocations", std::move(allocs));
    Json cj = Json::object();
    for (const auto &[path, value] : counters)
        cj.set(path, value);
    j.set("counters", std::move(cj));
    Json fj = Json::object();
    for (const auto &[path, value] : formulas)
        fj.set(path, value);
    j.set("formulas", std::move(fj));
    if (faultInjectionEnabled) {
        Json f = Json::object();
        f.set("dramBitFlips", faults.dramBitFlips);
        f.set("retentionErrors", faults.retentionErrors);
        f.set("eccCorrected", faults.eccCorrected);
        f.set("eccDetected", faults.eccDetected);
        f.set("eccSilent", faults.eccSilent);
        f.set("nocDropped", faults.nocDropped);
        f.set("nocCorrupted", faults.nocCorrupted);
        f.set("nocRetransmits", faults.nocRetransmits);
        f.set("spBitFlips", faults.spBitFlips);
        f.set("outstandingFlippedWords", outstandingFlippedWords);
        j.set("faults", std::move(f));
    }
    return j;
}

std::vector<std::int16_t>
Simulation::peekDram(Addr addr, std::size_t count) const
{
    std::vector<std::int16_t> values;
    values.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        values.push_back(sys_.dram().load<std::int16_t>(
            addr + 2 * static_cast<Addr>(i)));
    }
    return values;
}

} // namespace vip
