#include "system/partition.hh"

#include <string>

#include "sim/error.hh"
#include "sim/logging.hh"

namespace vip {

void
validateIslandCount(unsigned islands, unsigned noc_x)
{
    if (islands == 0) {
        throw ConfigError(
            "islands = 0; at least one island is required (1 = the "
            "serial path)");
    }
    if (noc_x % islands != 0) {
        throw ConfigError(
            "islands = " + std::to_string(islands) +
            "; must divide the NoC X dimension (nocX = " +
            std::to_string(noc_x) +
            ") so island boundaries fall on torus column cuts");
    }
}

IslandPartition
IslandPartition::make(unsigned islands, unsigned noc_x, unsigned noc_y)
{
    vip_assert(islands >= 1 && noc_x % islands == 0,
               "unvalidated island count");
    IslandPartition p;
    p.islands = islands;
    const unsigned nodes = noc_x * noc_y;
    const unsigned cols_per_island = noc_x / islands;
    p.islandOfNode.resize(nodes);
    p.nodesOf.resize(islands);
    for (unsigned n = 0; n < nodes; ++n) {
        const unsigned island = (n % noc_x) / cols_per_island;
        p.islandOfNode[n] = island;
        p.nodesOf[island].push_back(n);  // ascending by construction
    }
    return p;
}

} // namespace vip
