/**
 * @file
 * RunSpec: one complete simulation run as a value.
 *
 * Everything `vip-run` used to assemble imperatively — the system
 * configuration, the programs to load, DRAM contents to stage,
 * argument registers, the cycle budget — captured in one struct that
 * round-trips through JSON. This is the unit of the serializable
 * request/response API: the CLI runner builds a RunSpec from flags,
 * the `vip-serve` daemon decodes one per request line, and both
 * execute it through the same buildSimulation()/run() path, so a
 * request answered over the wire is bit-identical to the same run
 * launched locally.
 *
 * A RunSpec is also the *content address* of its result: two specs
 * with equal canonical JSON produce equal run output (the simulator
 * is deterministic; host wall-clock timing is deliberately excluded
 * from RunResult::toJson()), so fingerprint() — the repo's FNV-1a
 * hash primitive over the canonical encoding — keys the serve
 * result cache.
 */

#ifndef VIP_SYSTEM_RUNSPEC_HH
#define VIP_SYSTEM_RUNSPEC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/json.hh"
#include "system/simulation.hh"

namespace vip {

struct RunSpec
{
    /** The machine, including fault plan and fast-forward switch. */
    SystemConfig config = makeSystemConfig(1, 1);

    /** One program per entry, assembled at build time. */
    struct Program
    {
        unsigned pe = 0;
        std::string source;  ///< assembly text (paper notation)

        bool
        operator==(const Program &o) const
        {
            return pe == o.pe && source == o.source;
        }
    };
    std::vector<Program> programs;

    /** 16-bit values staged into DRAM before the run. */
    struct DramPoke
    {
        Addr addr = 0;
        std::vector<std::int16_t> values;

        bool
        operator==(const DramPoke &o) const
        {
            return addr == o.addr && values == o.values;
        }
    };
    std::vector<DramPoke> pokes;

    /** Argument registers seeded before the run. */
    struct RegSet
    {
        unsigned pe = 0;
        unsigned reg = 0;
        std::uint64_t value = 0;

        bool
        operator==(const RegSet &o) const
        {
            return pe == o.pe && reg == o.reg && value == o.value;
        }
    };
    std::vector<RegSet> regs;

    /** Simulation budget; 0 = run until the machine drains. */
    Cycles maxCycles = 100'000'000;

    /**
     * Host wall-clock budget in milliseconds; 0 = none. A run that
     * exceeds it is stopped at the next poll boundary and fails with
     * a structured "timeout" error (sim/cancel.hh). Bounds *host*
     * execution, never simulated behaviour: a run that finishes
     * within any budget is byte-identical to an unbudgeted run, so
     * fingerprint() excludes this field and cached results stay
     * valid for every budget. Omitted from the JSON form when 0.
     */
    std::uint64_t budgetMs = 0;

    /** Canonical JSON encoding (sorted keys, full config). */
    Json toJson() const;

    /**
     * Decode a spec. `config` may be partial (see
     * SystemConfig::fromJson); unknown keys anywhere throw
     * ConfigError. Accepted shape:
     *
     *   {"config": {...}, "programs": [{"pe": 0, "source": "..."}],
     *    "pokes": [{"addr": 4096, "values": [1, 2, 3]}],
     *    "regs": [{"pe": 0, "reg": 4, "value": 7}],
     *    "maxCycles": 100000000}
     */
    static RunSpec fromJson(const Json &j);

    /**
     * Content-address of this spec (FNV-1a over the canonical compact
     * JSON): equal fingerprints => equal specs => equal run output.
     * budgetMs is excluded (hashed as if 0): it bounds host
     * execution, not results, so a cached success answers the same
     * spec under any budget.
     */
    std::uint64_t fingerprint() const;

    bool
    operator==(const RunSpec &o) const
    {
        // Configs compare through their canonical encoding; the
        // struct has no operator== of its own.
        return programs == o.programs && pokes == o.pokes &&
               regs == o.regs && maxCycles == o.maxCycles &&
               budgetMs == o.budgetMs &&
               config.toJson() == o.config.toJson();
    }
};

/**
 * Construct the simulation a spec describes: validate and build the
 * system, stage DRAM, seed registers, assemble and load every
 * program. Throws ConfigError / AssemblyFailure. The caller runs it
 * (runSpec() does both steps) or keeps the Simulation around to
 * inspect memory afterwards, as vip-run does for its --dump flags.
 * Returned by pointer because a Simulation owns a VipSystem full of
 * internal references and is neither movable nor copyable.
 */
std::unique_ptr<Simulation> buildSimulation(const RunSpec &spec);

/**
 * Build and run in one step: the shared CLI/service code path.
 * When @p cancel is given it is armed with spec.budgetMs (replacing
 * any previous deadline) and polled throughout the run; when it is
 * null and the spec carries a budget, a run-local token enforces the
 * deadline. Throws TimeoutError / CancelledError on a tripped token.
 */
RunResult runSpec(const RunSpec &spec, CancelToken *cancel = nullptr);

} // namespace vip

#endif // VIP_SYSTEM_RUNSPEC_HH
