/**
 * @file
 * SystemConfig <-> JSON, the config half of the serializable run API.
 *
 * The schema mirrors the struct: nested "mem" (with "timing" and
 * "geom" sections) and "pe" objects, scalar knobs at the top level,
 * the fault plan as its canonical `FaultPlan::toString()` spec string.
 * Decoding is strict about *names* (an unknown key is a ConfigError —
 * a typo must not silently become a default) but lenient about
 * *presence* (absent keys keep their defaults, so requests only say
 * what they change). Value validation stays where it always was, in
 * validateSystemConfig() at VipSystem construction.
 */

#include <functional>
#include <initializer_list>

#include "sim/json.hh"
#include "system/simulation.hh"
#include "system/system.hh"

namespace vip {

namespace {

/**
 * Strict object decoder: the caller registers a handler per known
 * key, then decode() walks the object and throws ConfigError for any
 * key without a handler, naming it with its dotted path.
 */
class StrictObject
{
  public:
    StrictObject(const Json &j, std::string path)
        : obj_(j.asObject()), path_(std::move(path))
    {}

    /** Register @p fn to decode @p key when present. */
    StrictObject &
    key(const std::string &key, std::function<void(const Json &)> fn)
    {
        handlers_.emplace_back(key, std::move(fn));
        return *this;
    }

    /** Run every registered handler, then reject unknown keys. */
    void
    decode() const
    {
        for (const auto &[name, fn] : handlers_) {
            const auto it = obj_.find(name);
            if (it != obj_.end())
                fn(it->second);
        }
        for (const auto &[name, value] : obj_) {
            bool known = false;
            for (const auto &[hname, fn] : handlers_) {
                if (hname == name) {
                    known = true;
                    break;
                }
            }
            if (!known) {
                throw ConfigError("unknown config key \"" + path_ +
                                  name + "\"");
            }
        }
    }

  private:
    const Json::Object &obj_;
    std::string path_;
    std::vector<std::pair<std::string,
                          std::function<void(const Json &)>>> handlers_;
};

template <typename T>
std::function<void(const Json &)>
intoUnsigned(T &field)
{
    return [&field](const Json &v) { field = static_cast<T>(v.asU64()); };
}

std::function<void(const Json &)>
intoBool(bool &field)
{
    return [&field](const Json &v) { field = v.asBool(); };
}

const char *
pagePolicyName(PagePolicy p)
{
    return p == PagePolicy::Open ? "open" : "closed";
}

PagePolicy
pagePolicyFrom(const Json &v)
{
    const std::string &s = v.asString();
    if (s == "open")
        return PagePolicy::Open;
    if (s == "closed")
        return PagePolicy::Closed;
    throw ConfigError("mem.pagePolicy must be \"open\" or \"closed\", "
                      "got \"" + s + "\"");
}

const char *
addrMapName(AddrMap m)
{
    return m == AddrMap::VaultRowBankCol ? "vault-row-bank-col"
                                         : "row-bank-col-vault";
}

AddrMap
addrMapFrom(const Json &v)
{
    const std::string &s = v.asString();
    if (s == "vault-row-bank-col")
        return AddrMap::VaultRowBankCol;
    if (s == "row-bank-col-vault")
        return AddrMap::RowBankColVault;
    throw ConfigError("mem.addrMap must be \"vault-row-bank-col\" or "
                      "\"row-bank-col-vault\", got \"" + s + "\"");
}

} // namespace

Json
SystemConfig::toJson() const
{
    Json timing = Json::object();
    timing.set("tCL", static_cast<std::uint64_t>(mem.timing.tCL));
    timing.set("tRCD", static_cast<std::uint64_t>(mem.timing.tRCD));
    timing.set("tRP", static_cast<std::uint64_t>(mem.timing.tRP));
    timing.set("tRAS", static_cast<std::uint64_t>(mem.timing.tRAS));
    timing.set("tWR", static_cast<std::uint64_t>(mem.timing.tWR));
    timing.set("tCCD", static_cast<std::uint64_t>(mem.timing.tCCD));
    timing.set("tRFC", static_cast<std::uint64_t>(mem.timing.tRFC));
    timing.set("tREFI", static_cast<std::uint64_t>(mem.timing.tREFI));
    timing.set("tBurst", static_cast<std::uint64_t>(mem.timing.tBurst));

    Json geom = Json::object();
    geom.set("vaults", mem.geom.vaults);
    geom.set("banksPerVault", mem.geom.banksPerVault);
    geom.set("rowsPerBank", mem.geom.rowsPerBank);
    geom.set("rowBytes", mem.geom.rowBytes);
    geom.set("colBytes", mem.geom.colBytes);

    Json memj = Json::object();
    memj.set("timing", std::move(timing));
    memj.set("geom", std::move(geom));
    memj.set("pagePolicy", pagePolicyName(mem.pagePolicy));
    memj.set("addrMap", addrMapName(mem.addrMap));
    memj.set("cmdQueueDepth", mem.cmdQueueDepth);
    memj.set("transQueueDepth", mem.transQueueDepth);

    Json pej = Json::object();
    pej.set("lsqEntries", pe.lsqEntries);
    pej.set("arcEntries", pe.arcEntries);
    pej.set("mulStages", pe.mulStages);
    pej.set("aluStages", pe.aluStages);
    pej.set("reduceStages", pe.reduceStages);
    pej.set("strictHazards", pe.strictHazards);
    pej.set("enableReduction", pe.enableReduction);
    pej.set("arcCoversVector", pe.arcCoversVector);

    Json j = Json::object();
    j.set("mem", std::move(memj));
    j.set("pe", std::move(pej));
    j.set("pesPerVault", pesPerVault);
    j.set("nocX", nocX);
    j.set("nocY", nocY);
    j.set("watchdogCycles", static_cast<std::uint64_t>(watchdogCycles));
    j.set("fastForward", fastForward);
    // Only serialize a non-default island count: the serial default
    // stays absent so pre-island RunSpec fingerprints are unchanged.
    if (islands != 1)
        j.set("islands", islands);
    // Same treatment for the µop fast path: absent when on (the
    // default), so pre-fast-path fingerprints — and cached serve
    // responses — stay valid.
    if (!fastPath)
        j.set("fastPath", fastPath);
    if (faults.enabled)
        j.set("faults", faults.toString());
    return j;
}

SystemConfig
SystemConfig::fromJson(const Json &j)
{
    SystemConfig cfg;
    bool sawVaults = false, sawNocX = false, sawNocY = false;

    StrictObject root(j, "");
    root.key("mem", [&cfg, &sawVaults](const Json &m) {
        StrictObject memj(m, "mem.");
        memj.key("timing", [&cfg](const Json &t) {
            DramTiming &dt = cfg.mem.timing;
            StrictObject tj(t, "mem.timing.");
            tj.key("tCL", intoUnsigned(dt.tCL))
                .key("tRCD", intoUnsigned(dt.tRCD))
                .key("tRP", intoUnsigned(dt.tRP))
                .key("tRAS", intoUnsigned(dt.tRAS))
                .key("tWR", intoUnsigned(dt.tWR))
                .key("tCCD", intoUnsigned(dt.tCCD))
                .key("tRFC", intoUnsigned(dt.tRFC))
                .key("tREFI", intoUnsigned(dt.tREFI))
                .key("tBurst", intoUnsigned(dt.tBurst))
                .decode();
        });
        memj.key("geom", [&cfg, &sawVaults](const Json &g) {
            DramGeometry &dg = cfg.mem.geom;
            StrictObject gj(g, "mem.geom.");
            gj.key("vaults",
                   [&dg, &sawVaults](const Json &v) {
                       dg.vaults = static_cast<unsigned>(v.asU64());
                       sawVaults = true;
                   })
                .key("banksPerVault", intoUnsigned(dg.banksPerVault))
                .key("rowsPerBank", intoUnsigned(dg.rowsPerBank))
                .key("rowBytes", intoUnsigned(dg.rowBytes))
                .key("colBytes", intoUnsigned(dg.colBytes))
                .decode();
        });
        memj.key("pagePolicy", [&cfg](const Json &v) {
            cfg.mem.pagePolicy = pagePolicyFrom(v);
        });
        memj.key("addrMap", [&cfg](const Json &v) {
            cfg.mem.addrMap = addrMapFrom(v);
        });
        memj.key("cmdQueueDepth", intoUnsigned(cfg.mem.cmdQueueDepth));
        memj.key("transQueueDepth",
                 intoUnsigned(cfg.mem.transQueueDepth));
        memj.decode();
    });
    root.key("pe", [&cfg](const Json &p) {
        PeConfig &pc = cfg.pe;
        StrictObject pj(p, "pe.");
        pj.key("lsqEntries", intoUnsigned(pc.lsqEntries))
            .key("arcEntries", intoUnsigned(pc.arcEntries))
            .key("mulStages", intoUnsigned(pc.mulStages))
            .key("aluStages", intoUnsigned(pc.aluStages))
            .key("reduceStages", intoUnsigned(pc.reduceStages))
            .key("strictHazards", intoBool(pc.strictHazards))
            .key("enableReduction", intoBool(pc.enableReduction))
            .key("arcCoversVector", intoBool(pc.arcCoversVector))
            .decode();
    });
    root.key("pesPerVault", intoUnsigned(cfg.pesPerVault));
    root.key("nocX", [&cfg, &sawNocX](const Json &v) {
        cfg.nocX = static_cast<unsigned>(v.asU64());
        sawNocX = true;
    });
    root.key("nocY", [&cfg, &sawNocY](const Json &v) {
        cfg.nocY = static_cast<unsigned>(v.asU64());
        sawNocY = true;
    });
    root.key("watchdogCycles", intoUnsigned(cfg.watchdogCycles));
    root.key("fastForward", intoBool(cfg.fastForward));
    root.key("islands", intoUnsigned(cfg.islands));
    root.key("fastPath", intoBool(cfg.fastPath));
    root.key("faults", [&cfg](const Json &v) {
        cfg.faults = FaultPlan::parse(v.asString());
    });
    root.decode();

    // A request that resizes the machine shouldn't have to know the
    // grid arithmetic: derive the torus shape unless given explicitly.
    if (sawVaults && !sawNocX && !sawNocY) {
        const auto [x, y] = nocDimsFor(cfg.mem.geom.vaults);
        cfg.nocX = x;
        cfg.nocY = y;
    }
    return cfg;
}

} // namespace vip
