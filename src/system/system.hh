/**
 * @file
 * VipSystem: the complete simulated machine (Fig. 1).
 *
 * 32 HMC vaults in an 8x4 grid connected by a 2D torus, four PEs per
 * vault attached to the vault router in a star, and a global 1.25 GHz
 * clock. The system owns the request/response plumbing: a PE's memory
 * transaction travels to its home vault over the NoC (injection port,
 * torus hops if remote, ejection port), queues at the vault, is
 * serviced by the DRAM model, and a response travels back before the
 * PE observes completion.
 */

#ifndef VIP_SYSTEM_SYSTEM_HH
#define VIP_SYSTEM_SYSTEM_HH

#include <atomic>
#include <deque>
#include <memory>
#include <vector>

#include "mem/hmc.hh"
#include "noc/torus.hh"
#include "pe/pe.hh"
#include "sim/clocked.hh"
#include "sim/fault.hh"
#include "sim/stats.hh"

namespace vip {

class Json;

/** Full-machine configuration (defaults = the paper's system). */
struct SystemConfig
{
    MemConfig mem;
    unsigned pesPerVault = 4;
    unsigned nocX = 8;
    unsigned nocY = 4;

    /** Template for every PE (id/vault fields are filled per PE). */
    PeConfig pe;

    /** Give up if the machine makes no progress for this many cycles. */
    Cycles watchdogCycles = 2'000'000;

    /**
     * Warp over cycles in which no component can change state (see
     * sim/clocked.hh). Exact by construction — every statistic and
     * every byte of architectural state matches a cycle-by-cycle run —
     * but can be disabled (--no-fast-forward) to test exactly that.
     */
    bool fastForward = true;

    /** Fault-injection campaign; disabled (and costless) by default. */
    FaultPlan faults;

    /**
     * The wire form: every knob above as a JSON object (nested
     * "mem"/"pe" sections mirroring the struct layout; the fault
     * plan as its canonical spec string under "faults", omitted when
     * injection is disabled). fromJson(toJson(cfg)) reproduces the
     * config exactly.
     */
    Json toJson() const;

    /**
     * Decode a config, starting from defaults: absent keys keep their
     * default, so a request only has to name what it changes. When
     * "mem.geom.vaults" is given without "nocX"/"nocY" the NoC grid
     * is derived with nocDimsFor(). Unknown keys anywhere in the
     * object throw ConfigError naming the offending key — a typo'd
     * knob must not silently fall back to the default. Does not
     * validate the result; VipSystem's constructor does.
     */
    static SystemConfig fromJson(const Json &j);
};

/**
 * Reject configurations that would wedge, corrupt, or UB downstream,
 * with messages naming the offending parameter. Throws ConfigError.
 * VipSystem's constructor calls this before building anything.
 */
void validateSystemConfig(const SystemConfig &cfg);

class VipSystem
{
  public:
    explicit VipSystem(const SystemConfig &cfg);

    unsigned numPes() const { return static_cast<unsigned>(pes_.size()); }
    Pe &pe(unsigned id) { return *pes_.at(id); }
    const Pe &pe(unsigned id) const { return *pes_.at(id); }

    /** The vault a PE sits in. */
    unsigned
    vaultOf(unsigned pe_id) const
    {
        return pe_id / cfg_.pesPerVault;
    }

    HmcStack &hmc() { return hmc_; }
    const HmcStack &hmc() const { return hmc_; }
    DramStorage &dram() { return hmc_.storage(); }
    const DramStorage &dram() const { return hmc_.storage(); }
    TorusNoc &noc() { return noc_; }
    const SystemConfig &config() const { return cfg_; }

    /** Start address of vault @p v's local DRAM region. */
    Addr
    vaultBase(unsigned v) const
    {
        return hmc_.mapper().vaultBase(v);
    }

    /** Advance the whole machine one cycle. */
    void tick();

    /**
     * Run until every PE is idle (halted, no outstanding memory) and
     * the memory system has drained, or @p max_cycles elapse.
     * @return total cycles simulated so far.
     *
     * A VipSystem is confined to one host thread at a time: nothing in
     * the machine is synchronized, so concurrent run()/tick() calls on
     * the same instance are a caller bug (parallel sweeps must build
     * one system per job — see sim/sweep.hh). run() asserts this.
     */
    Cycles run(Cycles max_cycles = 0);

    Cycles now() const { return now_; }

    bool allIdle() const;

    /** What the event-horizon fast-forward skipped so far. */
    const FastForwardStats &fastForwardStats() const { return ff_; }

    /**
     * Earliest cycle >= now() at which any component of the machine
     * can change state; kIdleForever when fully drained. Exposed for
     * tests and for callers driving tick() themselves.
     */
    Cycles nextEventAt() const;

    StatGroup &stats() { return statGroup_; }

    /** The fault injector, or null when injection is disabled. */
    FaultInjector *faultInjector() { return injector_.get(); }
    const FaultInjector *faultInjector() const { return injector_.get(); }

    /**
     * Snapshot of the machine's stuck state, formatted for humans: the
     * non-idle PEs (PC, current instruction, stall reason, LSQ
     * occupancy), backed-up vaults (queued transactions, parked
     * ingress requests, next completion), and NoC in-flight count.
     * run() attaches this to the DeadlockError its watchdog throws.
     */
    std::string deadlockDiagnosis() const;

    /** Total vector ALU operations across all PEs. */
    std::uint64_t totalVectorOps() const;

    /** Achieved compute throughput in GOp/s over the interval. */
    double achievedGops() const;

    /** Achieved DRAM bandwidth in GB/s over the interval. */
    double achievedBandwidthGBs() const;

  private:
    void routeRequest(std::unique_ptr<MemRequest> req, unsigned src_vault);
    void deliverToVault(unsigned vault, std::unique_ptr<MemRequest> req);
    void onVaultComplete(unsigned vault, std::unique_ptr<MemRequest> req);

    /**
     * Park a request travelling inside a NoC packet; the slot table —
     * not the packet's copyable onArrive closure — owns the
     * descriptor. This keeps teardown leak-free when the machine is
     * destroyed with packets still in flight (a deadlock throw or an
     * expired cycle budget), which a raw release() into the closure
     * could not: destroying a std::function does not free what a
     * captured raw pointer points at.
     *
     * Concurrency contract: the slot table, the free list, and the
     * per-PE MemRequestPools are *thread-confined*, not
     * mutex-protected — they are only ever touched from the one host
     * thread driving this VipSystem (run() asserts the confinement
     * via running_; see "Static analysis & concurrency contracts" in
     * docs/INTERNALS.md). Do not share them across threads; a future
     * intra-run-parallelism PR must partition them per island, not
     * add a lock here.
     */
    std::size_t
    parkRequest(std::unique_ptr<MemRequest> req)
    {
        std::size_t slot;
        if (nocParkedFree_.empty()) {
            slot = nocParked_.size();
            nocParked_.emplace_back();
        } else {
            slot = nocParkedFree_.back();
            nocParkedFree_.pop_back();
        }
        nocParked_[slot] = std::move(req);
        return slot;
    }

    std::unique_ptr<MemRequest>
    unparkRequest(std::size_t slot)
    {
        auto req = std::move(nocParked_[slot]);
        nocParkedFree_.push_back(slot);
        return req;
    }

    /**
     * The per-vault queues of requests that reached their home vault
     * while its transaction queue was full, modelled as a clocked
     * component so warps can never jump a drain opportunity: capacity
     * only frees when a vault completes a transaction, so the next
     * event of a backed-up queue is its vault's next completion.
     */
    class IngressDrain : public Clocked
    {
      public:
        explicit IngressDrain(VipSystem &sys) : sys_(sys) {}
        void tick(Cycles now) override;
        Cycles nextEventAt(Cycles now) const override;

      private:
        VipSystem &sys_;
    };

    SystemConfig cfg_;
    StatGroup statGroup_;
    HmcStack hmc_;
    TorusNoc noc_;
    std::vector<std::unique_ptr<Pe>> pes_;
    std::unique_ptr<FaultInjector> injector_;

    /** Requests in flight inside NoC packets (see parkRequest). */
    std::vector<std::unique_ptr<MemRequest>> nocParked_;
    std::vector<std::size_t> nocParkedFree_;

    /** Requests that reached their vault but found its queue full. */
    std::vector<std::deque<std::unique_ptr<MemRequest>>> ingress_;
    IngressDrain ingressDrain_{*this};

    /** Every tickable unit, in the machine's tick order. */
    std::vector<Clocked *> clocked_;

    FastForwardStats ff_;

    Cycles now_ = 0;

    /** Runtime check of the one-thread-per-system invariant (see
     *  run()): the machine's state is confined, not synchronized, so
     *  concurrent entry is a caller bug, caught here instead of as a
     *  silent race. TSan builds (-DVIP_SANITIZE=thread) verify the
     *  confinement holds in the parallel sweep and serve paths. */
    std::atomic<bool> running_{false};
};

} // namespace vip

#endif // VIP_SYSTEM_SYSTEM_HH
