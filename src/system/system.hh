/**
 * @file
 * VipSystem: the complete simulated machine (Fig. 1).
 *
 * 32 HMC vaults in an 8x4 grid connected by a 2D torus, four PEs per
 * vault attached to the vault router in a star, and a global 1.25 GHz
 * clock. The system owns the request/response plumbing: a PE's memory
 * transaction travels to its home vault over the NoC (injection port,
 * torus hops if remote, ejection port), queues at the vault, is
 * serviced by the DRAM model, and a response travels back before the
 * PE observes completion.
 *
 * With cfg.islands > 1 a run shards across host threads: the machine
 * is cut into islands of NoC columns (system/partition.hh), each
 * island's components tick on their own thread in conservative quanta
 * (sim/island.hh), and per-island state merges in fixed island order
 * after the join — producing bit-identical results to islands == 1
 * (see docs/INTERNALS.md "Island partitioning & conservative quanta").
 */

#ifndef VIP_SYSTEM_SYSTEM_HH
#define VIP_SYSTEM_SYSTEM_HH

#include <atomic>
#include <deque>
#include <memory>
#include <vector>

#include "mem/hmc.hh"
#include "noc/torus.hh"
#include "pe/pe.hh"
#include "sim/clocked.hh"
#include "sim/fault.hh"
#include "sim/stats.hh"
#include "system/partition.hh"

namespace vip {

class CancelToken;
class Json;

/** Full-machine configuration (defaults = the paper's system). */
struct SystemConfig
{
    MemConfig mem;
    unsigned pesPerVault = 4;
    unsigned nocX = 8;
    unsigned nocY = 4;

    /** Template for every PE (id/vault fields are filled per PE). */
    PeConfig pe;

    /** Give up if the machine makes no progress for this many cycles. */
    Cycles watchdogCycles = 2'000'000;

    /**
     * Warp over cycles in which no component can change state (see
     * sim/clocked.hh). Exact by construction — every statistic and
     * every byte of architectural state matches a cycle-by-cycle run —
     * but can be disabled (--no-fast-forward) to test exactly that.
     */
    bool fastForward = true;

    /**
     * Host threads one run may use: the machine is cut into this many
     * islands of NoC columns that tick concurrently (see file
     * comment). Must divide nocX. 1 (the default) is the serial path
     * and is byte-identical to every other value — islands changes
     * host time, never the simulation — so it is a host knob like
     * fastForward, not part of the machine being modelled.
     */
    unsigned islands = 1;

    /**
     * Replay each PE's decoded-µop stream and execute stall-free basic
     * blocks functionally in bulk (pe/decode.hh). Bit-identical to the
     * per-cycle interpreter — a host knob like fastForward and islands
     * — and false (--no-fast-path) keeps the interpreter as the
     * oracle. Omitted from the JSON wire form when true, so existing
     * RunSpec fingerprints are unchanged.
     */
    bool fastPath = true;

    /** Fault-injection campaign; disabled (and costless) by default. */
    FaultPlan faults;

    /**
     * The wire form: every knob above as a JSON object (nested
     * "mem"/"pe" sections mirroring the struct layout; the fault
     * plan as its canonical spec string under "faults", omitted when
     * injection is disabled; "islands" likewise omitted when 1, so
     * pre-island RunSpec fingerprints are unchanged).
     * fromJson(toJson(cfg)) reproduces the config exactly.
     */
    Json toJson() const;

    /**
     * Decode a config, starting from defaults: absent keys keep their
     * default, so a request only has to name what it changes. When
     * "mem.geom.vaults" is given without "nocX"/"nocY" the NoC grid
     * is derived with nocDimsFor(). Unknown keys anywhere in the
     * object throw ConfigError naming the offending key — a typo'd
     * knob must not silently fall back to the default. Does not
     * validate the result; VipSystem's constructor does.
     */
    static SystemConfig fromJson(const Json &j);
};

/**
 * Reject configurations that would wedge, corrupt, or UB downstream,
 * with messages naming the offending parameter. Throws ConfigError.
 * VipSystem's constructor calls this before building anything.
 */
void validateSystemConfig(const SystemConfig &cfg);

class VipSystem
{
  public:
    explicit VipSystem(const SystemConfig &cfg);

    unsigned numPes() const { return static_cast<unsigned>(pes_.size()); }
    Pe &pe(unsigned id) { return *pes_.at(id); }
    const Pe &pe(unsigned id) const { return *pes_.at(id); }

    /** The vault a PE sits in. */
    unsigned
    vaultOf(unsigned pe_id) const
    {
        return pe_id / cfg_.pesPerVault;
    }

    HmcStack &hmc() { return hmc_; }
    const HmcStack &hmc() const { return hmc_; }
    DramStorage &dram() { return hmc_.storage(); }
    const DramStorage &dram() const { return hmc_.storage(); }
    TorusNoc &noc() { return noc_; }
    const SystemConfig &config() const { return cfg_; }

    /** The machine's island cut (islands == 1: one island, all nodes). */
    const IslandPartition &partition() const { return partition_; }

    /** Start address of vault @p v's local DRAM region. */
    Addr
    vaultBase(unsigned v) const
    {
        return hmc_.mapper().vaultBase(v);
    }

    /** Advance the whole machine one cycle (serial path only). */
    void tick();

    /**
     * Run until every PE is idle (halted, no outstanding memory) and
     * the memory system has drained, or @p max_cycles elapse.
     * @return total cycles simulated so far.
     *
     * With cfg.islands == 1 the run is confined to the calling host
     * thread: nothing in the machine is synchronized, so concurrent
     * run()/tick() calls on the same instance are a caller bug
     * (parallel sweeps must build one system per job — see
     * sim/sweep.hh). run() asserts this. With islands > 1 the run
     * *internally* spawns islands - 1 worker threads, but the
     * confinement contract for callers is unchanged: one run() at a
     * time, and the per-island state is thread-confined to each
     * island's thread between barriers.
     *
     * @p cancel, when given, is polled cooperatively (every
     * kCancelPollCycles on the serial path, between quanta on the
     * island path): a tripped token stops the run at the next
     * boundary and throws CancelledError / TimeoutError
     * (sim/cancel.hh). The machine is left mid-flight but
     * destructible; the run's partial results are discarded.
     */
    Cycles run(Cycles max_cycles = 0,
               const CancelToken *cancel = nullptr);

    Cycles now() const { return now_; }

    bool allIdle() const;

    /**
     * What the event-horizon fast-forward skipped so far. In island
     * mode the numbers aggregate per-island horizons (an island
     * warping 100 cycles counts 100 regardless of what the others
     * did), so they measure work saved, not wall-clock cycles.
     */
    const FastForwardStats &fastForwardStats() const { return ff_; }

    /**
     * Earliest cycle >= now() at which any component of the machine
     * can change state; kIdleForever when fully drained. Exposed for
     * tests and for callers driving tick() themselves.
     */
    Cycles nextEventAt() const;

    StatGroup &stats() { return statGroup_; }

    /** The fault injector, or null when injection is disabled. */
    FaultInjector *faultInjector() { return injector_.get(); }
    const FaultInjector *faultInjector() const { return injector_.get(); }

    /**
     * Snapshot of the machine's stuck state, formatted for humans: the
     * non-idle PEs (PC, current instruction, stall reason, LSQ
     * occupancy), backed-up vaults (queued transactions, parked
     * ingress requests, next completion), and NoC in-flight count.
     * run() attaches this to the DeadlockError its watchdog throws.
     */
    std::string deadlockDiagnosis() const;

    /** Total vector ALU operations across all PEs. */
    std::uint64_t totalVectorOps() const;

    /** Achieved compute throughput in GOp/s over the interval. */
    double achievedGops() const;

    /** Achieved DRAM bandwidth in GB/s over the interval. */
    double achievedBandwidthGBs() const;

  private:
    void routeRequest(std::unique_ptr<MemRequest> req, unsigned src_vault);
    void deliverToVault(unsigned vault, std::unique_ptr<MemRequest> req);
    void onVaultComplete(unsigned vault, std::unique_ptr<MemRequest> req);

    /** Drain vault @p v's parked ingress queue into freed slots. */
    void drainIngress(unsigned v);

    // ---- island mode (cfg_.islands > 1) ----------------------------
    Cycles islandRun(Cycles deadline, const CancelToken *cancel);
    void tickIsland(unsigned island, Cycles now);
    bool islandIdle(unsigned island) const;
    Cycles islandNextEventAt(unsigned island, Cycles now) const;
    std::uint64_t islandProgress(unsigned island) const;
    void fastForwardIsland(unsigned island, Cycles from, Cycles to);
    void catchUpIsland(unsigned island, Cycles until);

    /**
     * The current cycle as seen by @p vault's island: the per-island
     * tick cursor while that island's thread is inside a quantum, the
     * global clock otherwise. Request/response routing runs on island
     * threads and must timestamp packets with *its* island's time.
     */
    Cycles
    localNow(unsigned vault) const
    {
        if (cfg_.islands == 1)
            return now_;
        return islandNow_[partition_.islandOf(vault)].v;
    }

    /**
     * The per-vault queues of requests that reached their home vault
     * while its transaction queue was full, modelled as a clocked
     * component so warps can never jump a drain opportunity: capacity
     * only frees when a vault completes a transaction, so the next
     * event of a backed-up queue is its vault's next completion.
     */
    class IngressDrain : public Clocked
    {
      public:
        explicit IngressDrain(VipSystem &sys) : sys_(sys) {}
        void tick(Cycles now) override;
        Cycles nextEventAt(Cycles now) const override;

      private:
        VipSystem &sys_;
    };

    SystemConfig cfg_;
    StatGroup statGroup_;
    HmcStack hmc_;
    TorusNoc noc_;
    std::vector<std::unique_ptr<Pe>> pes_;
    std::unique_ptr<FaultInjector> injector_;

    /** The island cut (a single all-nodes island when islands == 1). */
    IslandPartition partition_;

    /** Requests that reached their vault but found its queue full.
     *  Per-vault, hence island-confined like the vaults themselves. */
    std::vector<std::deque<std::unique_ptr<MemRequest>>> ingress_;
    IngressDrain ingressDrain_{*this};

    /** Every tickable unit, in the machine's tick order (serial path;
     *  island threads tick the same components in the same per-node
     *  order, restricted to their own island). */
    std::vector<Clocked *> clocked_;

    FastForwardStats ff_;

    /** Per-island fast-forward tallies, merged into ff_ (in island
     *  order) after the threads join. */
    std::vector<FastForwardStats> ffIsland_;

    /** Per-island tick cursors for localNow(); cache-line padded —
     *  each island's thread rewrites its own entry every tick. */
    struct alignas(64) PaddedCycles
    {
        Cycles v = 0;
    };
    std::vector<PaddedCycles> islandNow_;

    Cycles now_ = 0;

    /** Runtime check of the one-run-at-a-time invariant (see run()):
     *  the machine's state is confined (per thread, or per island
     *  between barriers), not synchronized, so concurrent entry is a
     *  caller bug, caught here instead of as a silent race. TSan
     *  builds (-DVIP_SANITIZE=thread) verify the confinement holds in
     *  the sweep, serve, and island paths. */
    std::atomic<bool> running_{false};
};

} // namespace vip

#endif // VIP_SYSTEM_SYSTEM_HH
