#include "system/system.hh"

#include <sstream>

#include "sim/logging.hh"

namespace vip {

VipSystem::VipSystem(const SystemConfig &cfg)
    : cfg_(cfg), statGroup_("system"), hmc_(cfg.mem, &statGroup_),
      noc_(cfg.nocX, cfg.nocY, &statGroup_),
      ingress_(cfg.mem.geom.vaults)
{
    vip_assert(cfg_.nocX * cfg_.nocY == cfg_.mem.geom.vaults,
               "NoC grid ", cfg_.nocX, "x", cfg_.nocY,
               " does not match ", cfg_.mem.geom.vaults, " vaults");

    const unsigned num_pes = cfg_.mem.geom.vaults * cfg_.pesPerVault;
    pes_.reserve(num_pes);
    for (unsigned id = 0; id < num_pes; ++id) {
        PeConfig pe_cfg = cfg_.pe;
        pe_cfg.peId = id;
        pe_cfg.vault = id / cfg_.pesPerVault;
        const unsigned src_vault = pe_cfg.vault;
        pes_.push_back(std::make_unique<Pe>(
            pe_cfg, hmc_.storage(), hmc_.mapper(),
            [this, src_vault](std::unique_ptr<MemRequest> req) {
                routeRequest(std::move(req), src_vault);
            },
            &statGroup_));
    }

    for (unsigned v = 0; v < cfg_.mem.geom.vaults; ++v) {
        hmc_.vault(v).setCompletionHandler(
            [this, v](std::unique_ptr<MemRequest> req) {
                onVaultComplete(v, std::move(req));
            });
    }

    // The machine's tick order: network deliveries first (they may
    // complete PE transactions and park requests at full vaults), then
    // the vault controllers, then the ingress drains (a completion this
    // cycle frees a slot this cycle), then the PE front ends.
    clocked_.reserve(3 + pes_.size());
    clocked_.push_back(&noc_);
    clocked_.push_back(&hmc_);
    clocked_.push_back(&ingressDrain_);
    for (auto &pe : pes_)
        clocked_.push_back(pe.get());
}

void
VipSystem::routeRequest(std::unique_ptr<MemRequest> req, unsigned src_vault)
{
    const unsigned home = hmc_.homeVault(req->addr);
    Packet pkt;
    pkt.src = src_vault;
    pkt.dst = home;
    pkt.srcLane = req->sourcePe % cfg_.pesPerVault;  // the PE's star link
    pkt.dstLane = TorusNoc::kLanes - 1;              // vault controller
    // A write carries its data; a read request is command-only (the
    // 8-byte NoC header covers the address/command fields).
    pkt.payloadBytes = req->isWrite ? req->bytes : 0;
    MemRequest *raw = req.release();
    pkt.onArrive = [this, raw, home](Packet &) {
        deliverToVault(home, std::unique_ptr<MemRequest>(raw));
    };
    noc_.send(std::move(pkt), now_);
}

void
VipSystem::deliverToVault(unsigned vault, std::unique_ptr<MemRequest> req)
{
    // Preserve arrival order: drain behind anything already parked.
    if (ingress_[vault].empty() && hmc_.vault(vault).canAccept()) {
        const bool ok = hmc_.vault(vault).enqueue(std::move(req));
        vip_assert(ok, "vault rejected a request it could accept");
        return;
    }
    ingress_[vault].push_back(std::move(req));
}

void
VipSystem::onVaultComplete(unsigned vault, std::unique_ptr<MemRequest> req)
{
    Packet pkt;
    pkt.src = vault;
    pkt.dst = vaultOf(req->sourcePe);
    pkt.srcLane = TorusNoc::kLanes - 1;
    pkt.dstLane = req->sourcePe % cfg_.pesPerVault;
    pkt.payloadBytes = req->isWrite ? 0 : req->bytes;
    MemRequest *raw = req.release();
    pkt.onArrive = [raw](Packet &p) {
        std::unique_ptr<MemRequest> owned(raw);
        owned->completedAt = p.deliveredAt;
        if (owned->onComplete)
            owned->onComplete(*owned);
        // The issuer is done with the descriptor; recycle pooled ones.
        if (owned->pool)
            owned->pool->release(std::move(owned));
    };
    noc_.send(std::move(pkt), now_);
}

void
VipSystem::IngressDrain::tick(Cycles)
{
    auto &ingress = sys_.ingress_;
    for (unsigned v = 0; v < ingress.size(); ++v) {
        while (!ingress[v].empty() && sys_.hmc_.vault(v).canAccept()) {
            const bool ok = sys_.hmc_.vault(v).enqueue(
                std::move(ingress[v].front()));
            vip_assert(ok, "vault rejected a request it could accept");
            ingress[v].pop_front();
        }
    }
}

Cycles
VipSystem::IngressDrain::nextEventAt(Cycles now) const
{
    // A parked request drains when its vault frees a slot, and slots
    // free only when a transaction completes.
    Cycles next = kIdleForever;
    for (unsigned v = 0; v < sys_.ingress_.size(); ++v) {
        if (sys_.ingress_[v].empty())
            continue;
        next = std::min(next, sys_.hmc_.vault(v).nextCompletionAt());
        if (next <= now)
            break;
    }
    return std::max(next, now);
}

void
VipSystem::tick()
{
    for (Clocked *c : clocked_)
        c->tick(now_);
    ++now_;
}

Cycles
VipSystem::nextEventAt() const
{
    Cycles horizon = kIdleForever;
    for (Clocked *c : clocked_) {
        horizon = std::min(horizon, c->nextEventAt(now_));
        if (horizon <= now_)
            break;
    }
    return horizon;
}

bool
VipSystem::allIdle() const
{
    for (const auto &pe : pes_) {
        if (!pe->idle())
            return false;
    }
    for (const auto &q : ingress_) {
        if (!q.empty())
            return false;
    }
    return hmc_.idle() && noc_.idle();
}

Cycles
VipSystem::run(Cycles max_cycles)
{
    vip_assert(!running_.exchange(true, std::memory_order_acquire),
               "VipSystem::run() entered concurrently; a system must "
               "be confined to one thread (one system per sweep job)");
    const Cycles deadline = max_cycles == 0 ? ~Cycles{0}
                                            : now_ + max_cycles;
    std::uint64_t last_progress = ~std::uint64_t{0};
    Cycles last_check = now_;

    auto progress = [this]() {
        std::uint64_t p = noc_.delivered();
        for (const auto &pe : pes_)
            p += pe->stats().instructions.value();
        return p;
    };

    while (now_ < deadline && !allIdle()) {
        tick();
        if (now_ - last_check >= cfg_.watchdogCycles) {
            const std::uint64_t p = progress();
            if (p == last_progress) {
                std::ostringstream os;
                for (unsigned i = 0; i < numPes(); ++i) {
                    if (!pes_[i]->idle())
                        os << " pe" << i;
                }
                vip_panic("system deadlocked at cycle ", now_,
                          "; non-idle PEs:", os.str());
            }
            last_progress = p;
            last_check = now_;
        }
        if (!cfg_.fastForward || allIdle())
            continue;

        // Event-horizon warp: every cycle in [now_, horizon) is dead —
        // ticking through it would change nothing but the PE stall
        // counters, which fastForward() replicates. Clamp to the
        // deadline and to the cycle where the watchdog would next look,
        // so both fire at exactly the same now_ as an unwarped run.
        const Cycles horizon = nextEventAt();
        Cycles target = std::min(horizon, deadline);
        target = std::min(target, last_check + cfg_.watchdogCycles - 1);
        if (target > now_) {
            for (auto &pe : pes_)
                pe->fastForward(now_, target);
            ff_.skippedCycles += target - now_;
            ff_.warps += 1;
            now_ = target;
        }
    }
    running_.store(false, std::memory_order_release);
    return now_;
}

double
VipSystem::achievedBandwidthGBs() const
{
    if (now_ == 0)
        return 0.0;
    const double seconds = static_cast<double>(now_) * kSecondsPerCycle;
    return static_cast<double>(hmc_.totalBytesMoved()) / seconds / 1e9;
}

std::uint64_t
VipSystem::totalVectorOps() const
{
    std::uint64_t total = 0;
    for (const auto &pe : pes_)
        total += pe->vectorOps();
    return total;
}

double
VipSystem::achievedGops() const
{
    if (now_ == 0)
        return 0.0;
    const double seconds = static_cast<double>(now_) * kSecondsPerCycle;
    return static_cast<double>(totalVectorOps()) / seconds / 1e9;
}

} // namespace vip
