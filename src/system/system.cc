#include "system/system.hh"

#include <sstream>

#include "sim/cancel.hh"
#include "sim/error.hh"
#include "sim/island.hh"
#include "sim/logging.hh"

namespace vip {

namespace {

void
require(bool ok, const std::string &message)
{
    if (!ok)
        throw ConfigError(message);
}

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Validation gate for the constructor's init list: members (the NoC,
 *  the vaults) must never see a bad config, even transiently. */
const SystemConfig &
validated(const SystemConfig &cfg)
{
    validateSystemConfig(cfg);
    return cfg;
}

/**
 * Park a request inside the packet that carries it: the packet — not
 * a side table indexed by a slot captured in onArrive — owns the
 * descriptor while it is in flight. This keeps teardown leak-free
 * when the machine is destroyed with packets still in flight (a
 * deadlock throw or an expired cycle budget), and it is what lets a
 * packet cross island threads: ownership travels with the packet, so
 * the request needs no shared table and no lock (the pre-island slot
 * table would have been cross-thread state).
 */
PacketPayload
parkRequest(std::unique_ptr<MemRequest> req)
{
    return PacketPayload(req.release(), +[](void *p) {
        delete static_cast<MemRequest *>(p);
    });
}

std::unique_ptr<MemRequest>
unparkRequest(PacketPayload &payload)
{
    return std::unique_ptr<MemRequest>(
        static_cast<MemRequest *>(payload.release()));
}

} // namespace

void
validateSystemConfig(const SystemConfig &cfg)
{
    const DramGeometry &g = cfg.mem.geom;
    require(isPowerOfTwo(g.vaults),
            "mem.geom.vaults = " + std::to_string(g.vaults) +
                "; must be a nonzero power of two so vault index bits "
                "split cleanly out of the address");
    require(g.banksPerVault > 0 && g.rowsPerBank > 0,
            "mem.geom: banksPerVault and rowsPerBank must be nonzero");
    require(g.rowBytes > 0 && g.colBytes > 0 &&
                g.colBytes <= g.rowBytes &&
                g.rowBytes % g.colBytes == 0,
            "mem.geom: need 0 < colBytes <= rowBytes with colBytes "
            "dividing rowBytes (got rowBytes=" +
                std::to_string(g.rowBytes) +
                ", colBytes=" + std::to_string(g.colBytes) + ")");

    const DramTiming &t = cfg.mem.timing;
    require(t.tCL > 0 && t.tRCD > 0 && t.tRP > 0 && t.tRAS > 0 &&
                t.tWR > 0 && t.tCCD > 0 && t.tBurst > 0 && t.tRFC > 0 &&
                t.tREFI > 0,
            "mem.timing: every DRAM timing parameter must be nonzero");
    require(t.tREFI > t.tRFC,
            "mem.timing: tREFI (" + std::to_string(t.tREFI) +
                ") must exceed tRFC (" + std::to_string(t.tRFC) +
                ") or the vault never leaves refresh");

    require(cfg.mem.cmdQueueDepth > 0 && cfg.mem.transQueueDepth > 0,
            "mem: cmdQueueDepth and transQueueDepth must be nonzero");

    require(cfg.nocX > 0 && cfg.nocY > 0 &&
                cfg.nocX * cfg.nocY == g.vaults,
            "NoC grid " + std::to_string(cfg.nocX) + "x" +
                std::to_string(cfg.nocY) + " does not match " +
                std::to_string(g.vaults) +
                " vaults (use makeSystemConfig() or set nocX*nocY to "
                "the vault count)");

    validateIslandCount(cfg.islands, cfg.nocX);

    require(cfg.pesPerVault >= 1 &&
                cfg.pesPerVault <= TorusNoc::kLanes - 1,
            "pesPerVault = " + std::to_string(cfg.pesPerVault) +
                "; each vault router has " +
                std::to_string(TorusNoc::kLanes - 1) +
                " PE star lanes");

    require(cfg.pe.lsqEntries > 0, "pe.lsqEntries must be nonzero");
    require(cfg.pe.arcEntries > 0, "pe.arcEntries must be nonzero");
    require(cfg.pe.mulStages >= 1 && cfg.pe.aluStages >= 1 &&
                cfg.pe.reduceStages >= 1,
            "pe: pipeline depths (mulStages/aluStages/reduceStages) "
            "must be at least 1");

    require(cfg.watchdogCycles > 0,
            "watchdogCycles must be nonzero (it bounds deadlock "
            "detection latency)");

    cfg.faults.validate();
}

VipSystem::VipSystem(const SystemConfig &cfg)
    : cfg_(validated(cfg)), statGroup_("system"),
      hmc_(cfg.mem, &statGroup_), noc_(cfg.nocX, cfg.nocY, &statGroup_),
      partition_(IslandPartition::make(cfg.islands, cfg.nocX, cfg.nocY)),
      ingress_(cfg.mem.geom.vaults)
{
    if (cfg_.islands > 1)
        noc_.setPartition(partition_.islandOfNode, cfg_.islands);
    islandNow_.resize(cfg_.islands);
    ffIsland_.resize(cfg_.islands);

    const unsigned num_pes = cfg_.mem.geom.vaults * cfg_.pesPerVault;
    pes_.reserve(num_pes);
    for (unsigned id = 0; id < num_pes; ++id) {
        PeConfig pe_cfg = cfg_.pe;
        pe_cfg.peId = id;
        pe_cfg.vault = id / cfg_.pesPerVault;
        pe_cfg.fastPath = cfg_.fastPath;
        // Half the watchdog period bounds a bulk charge, so a progress
        // bump always lands inside every watchdog window (serial and
        // island) and a natively-executed mega-loop can't be mistaken
        // for a hang.
        pe_cfg.fastPathChunk =
            std::min<Cycles>(pe_cfg.fastPathChunk,
                             std::max<Cycles>(1, cfg_.watchdogCycles / 2));
        const unsigned src_vault = pe_cfg.vault;
        pes_.push_back(std::make_unique<Pe>(
            pe_cfg, hmc_.storage(), hmc_.mapper(),
            [this, src_vault](std::unique_ptr<MemRequest> req) {
                routeRequest(std::move(req), src_vault);
            },
            &statGroup_));
    }

    for (unsigned v = 0; v < cfg_.mem.geom.vaults; ++v) {
        hmc_.vault(v).setCompletionHandler(
            [this, v](std::unique_ptr<MemRequest> req) {
                onVaultComplete(v, std::move(req));
            });
    }

    // The machine's tick order: network deliveries first (they may
    // complete PE transactions and park requests at full vaults), then
    // the vault controllers, then the ingress drains (a completion this
    // cycle frees a slot this cycle), then the PE front ends.
    // tickIsland() ticks the same classes in the same per-node order,
    // restricted to one island's nodes.
    clocked_.reserve(3 + pes_.size());
    clocked_.push_back(&noc_);
    clocked_.push_back(&hmc_);
    clocked_.push_back(&ingressDrain_);
    for (auto &pe : pes_)
        clocked_.push_back(pe.get());

    if (cfg_.faults.enabled) {
        injector_ = std::make_unique<FaultInjector>(cfg_.faults);
        injector_->bindStorage([this](Addr addr, unsigned bit) {
            DramStorage &storage = hmc_.storage();
            const auto byte = storage.load<std::uint8_t>(addr);
            storage.store<std::uint8_t>(
                addr, byte ^ static_cast<std::uint8_t>(1u << bit));
        });
        noc_.setFaultInjector(injector_.get());
        for (unsigned v = 0; v < cfg_.mem.geom.vaults; ++v)
            hmc_.vault(v).setFaultInjector(injector_.get());
        for (auto &pe : pes_)
            pe->setFaultInjector(injector_.get());
    }
}

void
VipSystem::routeRequest(std::unique_ptr<MemRequest> req, unsigned src_vault)
{
    const unsigned home = hmc_.homeVault(req->addr);
    Packet pkt;
    pkt.src = src_vault;
    pkt.dst = home;
    pkt.srcLane = req->sourcePe % cfg_.pesPerVault;  // the PE's star link
    pkt.dstLane = TorusNoc::kLanes - 1;              // vault controller
    // A write carries its data; a read request is command-only (the
    // 8-byte NoC header covers the address/command fields).
    pkt.payloadBytes = req->isWrite ? req->bytes : 0;
    pkt.payload = parkRequest(std::move(req));
    // Runs on the *destination* island's thread; everything it touches
    // (the packet, the home vault, its ingress queue) lives there.
    pkt.onArrive = [this](Packet &p) {
        deliverToVault(p.dst, unparkRequest(p.payload));
    };
    noc_.send(std::move(pkt), localNow(src_vault));
}

void
VipSystem::deliverToVault(unsigned vault, std::unique_ptr<MemRequest> req)
{
    // Preserve arrival order: drain behind anything already parked.
    if (ingress_[vault].empty() && hmc_.vault(vault).canAccept()) {
        const bool ok = hmc_.vault(vault).enqueue(std::move(req));
        vip_assert(ok, "vault rejected a request it could accept");
        return;
    }
    ingress_[vault].push_back(std::move(req));
}

void
VipSystem::onVaultComplete(unsigned vault, std::unique_ptr<MemRequest> req)
{
    Packet pkt;
    pkt.src = vault;
    pkt.dst = vaultOf(req->sourcePe);
    pkt.srcLane = TorusNoc::kLanes - 1;
    pkt.dstLane = req->sourcePe % cfg_.pesPerVault;
    pkt.payloadBytes = req->isWrite ? 0 : req->bytes;
    pkt.payload = parkRequest(std::move(req));
    // Runs on the issuing PE's island thread (the response's dst is
    // the PE's own vault router), so the completion callback and the
    // per-PE request pool stay island-confined.
    pkt.onArrive = [](Packet &p) {
        std::unique_ptr<MemRequest> owned = unparkRequest(p.payload);
        owned->completedAt = p.deliveredAt;
        if (owned->onComplete)
            owned->onComplete(*owned);
        // The issuer is done with the descriptor; recycle pooled ones.
        if (owned->pool)
            owned->pool->release(std::move(owned));
    };
    noc_.send(std::move(pkt), localNow(vault));
}

void
VipSystem::drainIngress(unsigned v)
{
    while (!ingress_[v].empty() && hmc_.vault(v).canAccept()) {
        const bool ok =
            hmc_.vault(v).enqueue(std::move(ingress_[v].front()));
        vip_assert(ok, "vault rejected a request it could accept");
        ingress_[v].pop_front();
    }
}

void
VipSystem::IngressDrain::tick(Cycles)
{
    for (unsigned v = 0; v < sys_.ingress_.size(); ++v)
        sys_.drainIngress(v);
}

Cycles
VipSystem::IngressDrain::nextEventAt(Cycles now) const
{
    // A parked request drains when its vault frees a slot, and slots
    // free only when a transaction completes.
    Cycles next = kIdleForever;
    for (unsigned v = 0; v < sys_.ingress_.size(); ++v) {
        if (sys_.ingress_[v].empty())
            continue;
        next = std::min(next, sys_.hmc_.vault(v).nextCompletionAt());
        if (next <= now)
            break;
    }
    return std::max(next, now);
}

void
VipSystem::tick()
{
    vip_assert(cfg_.islands == 1,
               "tick() drives the serial path; an island machine is "
               "driven by run()");
    for (Clocked *c : clocked_)
        c->tick(now_);
    ++now_;
}

Cycles
VipSystem::nextEventAt() const
{
    Cycles horizon = kIdleForever;
    for (Clocked *c : clocked_) {
        horizon = std::min(horizon, c->nextEventAt(now_));
        if (horizon <= now_)
            break;
    }
    return horizon;
}

bool
VipSystem::allIdle() const
{
    for (const auto &pe : pes_) {
        if (!pe->idle())
            return false;
    }
    for (const auto &q : ingress_) {
        if (!q.empty())
            return false;
    }
    return hmc_.idle() && noc_.idle();
}

Cycles
VipSystem::run(Cycles max_cycles, const CancelToken *cancel)
{
    vip_assert(!running_.exchange(true, std::memory_order_acquire),
               "VipSystem::run() entered concurrently; a system must "
               "be confined to one caller at a time (one system per "
               "sweep job)");
    const Cycles deadline = max_cycles == 0 ? ~Cycles{0}
                                            : now_ + max_cycles;
    // The fast path must not charge a block past the budget: a run cut
    // mid-loop has to leave the same architectural state as a
    // cycle-by-cycle run would (the partial block re-executes per-µop).
    for (auto &pe : pes_)
        pe->setRunDeadline(deadline);
    if (cfg_.islands > 1)
        return islandRun(deadline, cancel);

    std::uint64_t last_progress = ~std::uint64_t{0};
    Cycles last_check = now_;
    Cycles next_cancel_poll = now_ + kCancelPollCycles;

    auto progress = [this]() {
        std::uint64_t p = noc_.delivered();
        for (const auto &pe : pes_)
            p += pe->stats().instructions.value();
        return p;
    };

    while (now_ < deadline && !allIdle()) {
        tick();
        if (cancel && now_ >= next_cancel_poll) {
            // Cooperative stop point: a fast-forward warp below can
            // jump now_ far past the cadence mark, so the poll also
            // lands right after every warp. shouldStop() reads the
            // host clock only here, never per tick.
            next_cancel_poll = now_ + kCancelPollCycles;
            if (cancel->shouldStop()) {
                running_.store(false, std::memory_order_release);
                cancel->check();  // throws Timeout/CancelledError
            }
        }
        if (now_ - last_check >= cfg_.watchdogCycles) {
            const std::uint64_t p = progress();
            if (p == last_progress) {
                // Genuine deadlock. Diagnose rather than die: a sweep
                // harness marks this one point failed (carrying the
                // report) and the rest of the campaign completes.
                const std::string diagnosis = deadlockDiagnosis();
                running_.store(false, std::memory_order_release);
                throw DeadlockError("system deadlocked at cycle " +
                                        std::to_string(now_),
                                    diagnosis);
            }
            last_progress = p;
            last_check = now_;
        }
        if (!cfg_.fastForward || allIdle())
            continue;

        // Event-horizon warp: every cycle in [now_, horizon) is dead —
        // ticking through it would change nothing but the PE stall
        // counters, which fastForward() replicates. Clamp to the
        // deadline and to the cycle where the watchdog would next look,
        // so both fire at exactly the same now_ as an unwarped run.
        const Cycles horizon = nextEventAt();
        Cycles target = std::min(horizon, deadline);
        target = std::min(target, last_check + cfg_.watchdogCycles - 1);
        if (target > now_) {
            for (auto &pe : pes_)
                pe->fastForward(now_, target);
            ff_.skippedCycles += target - now_;
            ff_.warps += 1;
            now_ = target;
        }
    }
    running_.store(false, std::memory_order_release);
    return now_;
}

Cycles
VipSystem::islandRun(Cycles deadline, const CancelToken *cancel)
{
    const unsigned n = cfg_.islands;
    for (unsigned i = 0; i < n; ++i) {
        islandNow_[i].v = now_;
        ffIsland_[i].reset();
    }

    IslandHooks hooks;
    hooks.tick = [this](unsigned i, Cycles now) { tickIsland(i, now); };
    hooks.idle = [this](unsigned i) { return islandIdle(i); };
    hooks.nextEventAt = [this](unsigned i, Cycles now) {
        return islandNextEventAt(i, now);
    };
    hooks.drainInboxes = [this](unsigned i) {
        return noc_.drainInboxes(i);
    };
    hooks.progress = [this](unsigned i) { return islandProgress(i); };
    hooks.fastForward = [this](unsigned i, Cycles from, Cycles to) {
        fastForwardIsland(i, from, to);
    };
    hooks.catchUp = [this](unsigned i, Cycles until) {
        catchUpIsland(i, until);
    };

    IslandScheduler::Options opt;
    // The conservative quantum: a cross-island packet sent at cycle t
    // is next visible at t + kHopLatency + serialization (>= 1 cycle
    // for the 8-byte header), so within kHopLatency + 1 cycles no
    // island can affect another and quantum-boundary mail exchange
    // loses nothing.
    opt.quantum = TorusNoc::kHopLatency + 1;
    opt.watchdogCycles = cfg_.watchdogCycles;
    opt.fastForward = cfg_.fastForward;
    opt.cancel = cancel;

    IslandScheduler sched(n, std::move(hooks), opt);
    IslandScheduler::Outcome out;
    try {
        out = sched.run(now_, deadline);
    } catch (...) {
        noc_.flushIslandStats();
        running_.store(false, std::memory_order_release);
        throw;
    }

    now_ = out.finalCycle;
    // Merge layer: fold per-island state into the shared aggregates in
    // fixed island order, after the threads have joined.
    for (unsigned i = 0; i < n; ++i) {
        ff_.skippedCycles += ffIsland_[i].skippedCycles;
        ff_.warps += ffIsland_[i].warps;
    }
    noc_.flushIslandStats();

    if (out.deadlocked) {
        const std::string diagnosis = deadlockDiagnosis();
        running_.store(false, std::memory_order_release);
        throw DeadlockError("system deadlocked at cycle " +
                                std::to_string(now_),
                            diagnosis);
    }
    if (out.cancelStopped) {
        running_.store(false, std::memory_order_release);
        vip_assert(cancel, "scheduler stopped on a token it was "
                           "never given");
        cancel->check();
        // check() is throw-by-trigger; both triggers are sticky
        // (cancelled is a flag, the clock only moves forward), so
        // this line is unreachable — but keep control flow total.
        throw CancelledError("run cancelled");
    }
    running_.store(false, std::memory_order_release);
    return now_;
}

void
VipSystem::tickIsland(unsigned island, Cycles now)
{
    islandNow_[island].v = now;
    noc_.tickIsland(island, now);
    const std::vector<unsigned> &nodes = partition_.nodesOf[island];
    for (const unsigned v : nodes)
        hmc_.vault(v).tick(now);
    for (const unsigned v : nodes)
        drainIngress(v);
    for (const unsigned v : nodes) {
        const unsigned base = v * cfg_.pesPerVault;
        for (unsigned k = 0; k < cfg_.pesPerVault; ++k)
            pes_[base + k]->tick(now);
    }
}

bool
VipSystem::islandIdle(unsigned island) const
{
    for (const unsigned v : partition_.nodesOf[island]) {
        if (!ingress_[v].empty() || !hmc_.vault(v).idle())
            return false;
        const unsigned base = v * cfg_.pesPerVault;
        for (unsigned k = 0; k < cfg_.pesPerVault; ++k)
            if (!pes_[base + k]->idle())
                return false;
    }
    return noc_.islandIdle(island);
}

Cycles
VipSystem::islandNextEventAt(unsigned island, Cycles now) const
{
    Cycles next = noc_.islandNextEventAt(island, now);
    for (const unsigned v : partition_.nodesOf[island]) {
        if (next <= now)
            return now;
        // Vault nextEventAt includes its refresh deadline, which is
        // what clamps island-local warps so refreshes fire on time.
        next = std::min(next, hmc_.vault(v).nextEventAt(now));
        if (!ingress_[v].empty())
            next = std::min(next, hmc_.vault(v).nextCompletionAt());
        const unsigned base = v * cfg_.pesPerVault;
        for (unsigned k = 0; k < cfg_.pesPerVault; ++k)
            next = std::min(next, pes_[base + k]->nextEventAt(now));
    }
    return std::max(next, now);
}

std::uint64_t
VipSystem::islandProgress(unsigned island) const
{
    std::uint64_t p = noc_.islandDelivered(island);
    for (const unsigned v : partition_.nodesOf[island]) {
        const unsigned base = v * cfg_.pesPerVault;
        for (unsigned k = 0; k < cfg_.pesPerVault; ++k)
            p += pes_[base + k]->stats().instructions.value();
    }
    return p;
}

void
VipSystem::fastForwardIsland(unsigned island, Cycles from, Cycles to)
{
    for (const unsigned v : partition_.nodesOf[island]) {
        const unsigned base = v * cfg_.pesPerVault;
        for (unsigned k = 0; k < cfg_.pesPerVault; ++k)
            pes_[base + k]->fastForward(from, to);
    }
    ffIsland_[island].skippedCycles += to - from;
    ffIsland_[island].warps += 1;
    islandNow_[island].v = to;
}

void
VipSystem::catchUpIsland(unsigned island, Cycles until)
{
    if (islandNow_[island].v < until)
        islandNow_[island].v = until;
    for (const unsigned v : partition_.nodesOf[island])
        hmc_.vault(v).catchUpRefreshes(until);
}

std::string
VipSystem::deadlockDiagnosis() const
{
    // Keep reports readable on the full 128-PE machine: list the
    // first few stuck components per class and summarize the rest.
    constexpr unsigned kMaxLines = 16;

    std::ostringstream os;
    os << "no progress for " << cfg_.watchdogCycles
       << " cycles; machine state at cycle " << now_ << ":";

    unsigned stuck = 0, shown = 0;
    for (unsigned i = 0; i < numPes(); ++i) {
        const Pe &pe = *pes_[i];
        if (pe.idle())
            continue;
        ++stuck;
        if (shown >= kMaxLines)
            continue;
        ++shown;
        os << "\n  pe" << i << " (vault " << vaultOf(i)
           << "): pc=" << pe.pc();
        if (const Instruction *inst = pe.currentInstruction())
            os << " '" << disassemble(*inst) << "'";
        os << " stall=" << pe.stallReason()
           << " lsq=" << pe.lsqOutstanding();
    }
    if (stuck > shown)
        os << "\n  ... and " << stuck - shown << " more stuck PEs";

    stuck = shown = 0;
    for (unsigned v = 0; v < hmc_.numVaults(); ++v) {
        const unsigned queued = hmc_.vault(v).pendingTransactions();
        const std::size_t parked = ingress_[v].size();
        if (queued == 0 && parked == 0)
            continue;
        ++stuck;
        if (shown >= kMaxLines)
            continue;
        ++shown;
        os << "\n  vault" << v << ": queued=" << queued
           << " ingress=" << parked;
        const Cycles at = hmc_.vault(v).nextCompletionAt();
        if (at != kIdleForever)
            os << " nextCompletionAt=" << at;
    }
    if (stuck > shown)
        os << "\n  ... and " << stuck - shown << " more busy vaults";

    os << "\n  noc: in-flight=" << noc_.inFlight()
       << " delivered=" << noc_.delivered();
    if (injector_) {
        const FaultStats f = injector_->stats();
        os << "\n  faults: nocDropped=" << f.nocDropped
           << " nocCorrupted=" << f.nocCorrupted
           << " retransmits=" << f.nocRetransmits;
        // Sorted view, so the diagnosis is byte-stable run to run.
        const auto flips = injector_->outstandingFlips();
        if (!flips.empty()) {
            os << "\n  outstanding flips:";
            constexpr std::size_t kMaxFlips = 8;
            for (std::size_t i = 0;
                 i < flips.size() && i < kMaxFlips; ++i) {
                os << " 0x" << std::hex << flips[i].first << ":"
                   << flips[i].second << std::dec;
            }
            if (flips.size() > kMaxFlips)
                os << " ... and " << flips.size() - kMaxFlips << " more";
        }
    }
    return os.str();
}

double
VipSystem::achievedBandwidthGBs() const
{
    if (now_ == 0)
        return 0.0;
    const double seconds = static_cast<double>(now_) * kSecondsPerCycle;
    return static_cast<double>(hmc_.totalBytesMoved()) / seconds / 1e9;
}

std::uint64_t
VipSystem::totalVectorOps() const
{
    std::uint64_t total = 0;
    for (const auto &pe : pes_)
        total += pe->vectorOps();
    return total;
}

double
VipSystem::achievedGops() const
{
    if (now_ == 0)
        return 0.0;
    const double seconds = static_cast<double>(now_) * kSecondsPerCycle;
    return static_cast<double>(totalVectorOps()) / seconds / 1e9;
}

} // namespace vip
