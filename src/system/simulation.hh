/**
 * @file
 * The front door of the simulator: configuration helpers and the
 * `Simulation` facade.
 *
 * Every host-side user of the machine — the command-line runner, the
 * examples, the bench harness, tests — performs the same ritual:
 * build a SystemConfig, construct a VipSystem, stage DRAM, assemble
 * and load programs, run, then inspect memory and statistics. The
 * facade packages that ritual behind a fluent API:
 *
 *   RunResult r = Simulation(makeSystemConfig(1, 1))
 *                     .loadProgram(0, source_text)
 *                     .pokeDram(addr, {3, 1, 4})
 *                     .run(max_cycles);
 *
 * The facade owns its VipSystem and inherits its threading contract:
 * one Simulation is confined to one host thread, and a parallel sweep
 * (sim/sweep.hh) builds one Simulation per job.
 */

#ifndef VIP_SYSTEM_SIMULATION_HH
#define VIP_SYSTEM_SIMULATION_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/error.hh"
#include "system/system.hh"

namespace vip {

class Json;

/**
 * NoC grid dimensions used for a given vault count: the most-square
 * power-of-two factorization (32 -> 8x4, 16 -> 4x4, 64 -> 8x8).
 * Throws ConfigError for non-power-of-two counts — the address
 * mapper cannot split vault index bits out of such an address, so
 * the old silent `{vaults, 1}` fallback only deferred the failure to
 * a less helpful place.
 */
inline std::pair<unsigned, unsigned>
nocDimsFor(unsigned vaults)
{
    if (vaults == 0 || (vaults & (vaults - 1)) != 0) {
        throw ConfigError(
            "vaults = " + std::to_string(vaults) +
            "; the NoC grid (and the address mapper's vault index "
            "bits) requires a nonzero power-of-two vault count");
    }
    unsigned log2 = 0;
    while ((1u << log2) < vaults)
        ++log2;
    const unsigned x = 1u << ((log2 + 1) / 2);
    return {x, vaults / x};
}

/**
 * A system configuration with @p vaults vaults (DRAM capacity is held
 * at the full stack's per-vault share) and @p pes_per_vault PEs.
 */
inline SystemConfig
makeSystemConfig(unsigned vaults = 32, unsigned pes_per_vault = 4)
{
    SystemConfig cfg;
    cfg.mem.geom.vaults = vaults;
    const auto [x, y] = nocDimsFor(vaults);
    cfg.nocX = x;
    cfg.nocY = y;
    cfg.pesPerVault = pes_per_vault;
    return cfg;
}

/** What one Simulation::run() observed. */
struct RunResult
{
    Cycles cycles = 0;  ///< total cycles simulated so far

    /** Every PE halted and the machine drained (not a budget stop). */
    bool haltedCleanly = false;

    /**
     * Debug-only text dump of the statistics tree at run end, for
     * humans reading a terminal. Programs must read `counters` /
     * `formulas` (or toJson()) instead of parsing this: the text
     * format is not stable and parsing it is deprecated.
     */
    std::string stats;

    /** Every counter in the statistics tree, keyed by dotted path
     *  ("system.pe0.issued", ...). The typed face of `stats`. */
    std::map<std::string, std::uint64_t> counters;

    /** Every derived statistic (rates, bandwidth formulas), keyed by
     *  dotted path. Deterministic: formulas only combine counters and
     *  simulated time, never host wall-clock. */
    std::map<std::string, double> formulas;

    /** Host wall-clock seconds this run() call took. */
    double hostSeconds = 0.0;

    /** Simulated cycles advanced this run() per host second. */
    double simCyclesPerHostSecond = 0.0;

    /** Dead cycles warped over so far (0 with --no-fast-forward). */
    Cycles fastForwardedCycles = 0;

    /** True when the run executed with the decoded-µop fast path. */
    bool fastPathEnabled = false;

    /**
     * µop-cache / fast-path counters summed across PEs, keyed by
     * counter name ("block_runs", "fast_uops", "fallback_regs", ...)
     * — see Pe::FastPathStats. Like fastForwardedCycles these measure
     * the host-side execution strategy, live outside the system stats
     * tree, and are excluded from toJson(): RunResult JSON is
     * identical with the fast path on or off.
     */
    std::map<std::string, std::uint64_t> fastpath;

    /** Largest MemRequest-pool working set across PEs: the most
     *  descriptors any one PE ever had in flight at once. */
    unsigned memRequestPoolHighWater = 0;

    /** Per-PE fresh MemRequest heap allocations. Steady state this
     *  stops growing; a perf PR that reintroduces per-transfer
     *  allocation shows up here immediately. */
    std::vector<std::uint64_t> peRequestAllocations;

    /** True when the run executed under a FaultPlan; the counters
     *  below are only meaningful then. */
    bool faultInjectionEnabled = false;

    /** Injection and ECC counters (see sim/fault.hh). */
    FaultStats faults;

    /** Flipped words still uncorrected/unoverwritten at run end
     *  (FaultInjector::outstandingFlippedWords()). */
    std::uint64_t outstandingFlippedWords = 0;

    double ms() const { return cyclesToMs(cycles); }

    /** Value of one counter by dotted path; 0 when absent. */
    std::uint64_t
    counter(const std::string &path) const
    {
        const auto it = counters.find(path);
        return it == counters.end() ? 0 : it->second;
    }

    /**
     * The structured result: cycles, halt state, the typed counter
     * and formula maps, and the fault section when injection ran.
     * Deliberately excludes host wall-clock timing (hostSeconds,
     * simCyclesPerHostSecond) so the JSON of two identical runs is
     * byte-identical — the property the serve result cache serves
     * repeated requests on.
     */
    Json toJson() const;
};

/**
 * Owns one simulated machine and exposes the whole
 * stage-load-run-inspect workflow as a fluent API.
 */
class Simulation
{
  public:
    /** Defaults to the paper's full 32-vault, 128-PE machine. */
    explicit Simulation(const SystemConfig &cfg = makeSystemConfig())
        : sys_(cfg)
    {}

    /**
     * Assemble @p source (the paper's assembly notation) and load it
     * onto PE @p pe; throws AssemblyFailure (with the 1-based source
     * line) on assembly errors. Use assemble() + the Instruction
     * overload to inspect errors without exceptions.
     */
    Simulation &loadProgram(unsigned pe, const std::string &source);

    /** Load an already-assembled program onto PE @p pe. */
    Simulation &
    loadProgram(unsigned pe, std::vector<Instruction> prog)
    {
        sys_.pe(pe).loadProgram(std::move(prog));
        return *this;
    }

    /** Seed an argument register on PE @p pe. */
    Simulation &
    setReg(unsigned pe, unsigned reg, std::uint64_t value)
    {
        sys_.pe(pe).setReg(reg, value);
        return *this;
    }

    /** Store one 16-bit value into DRAM before (or between) runs.
     *  Host writes overwrite any injected flips in the covered bytes
     *  (the injector's ECC record is healed to match). */
    Simulation &
    pokeDram(Addr addr, std::int16_t value)
    {
        sys_.dram().store<std::int16_t>(addr, value);
        if (FaultInjector *f = sys_.faultInjector())
            f->onDramWrite(addr, 2);
        return *this;
    }

    /** Store consecutive 16-bit values starting at @p addr. */
    Simulation &
    pokeDram(Addr addr, const std::vector<std::int16_t> &values)
    {
        for (std::size_t i = 0; i < values.size(); ++i) {
            sys_.dram().store<std::int16_t>(
                addr + 2 * static_cast<Addr>(i), values[i]);
        }
        if (FaultInjector *f = sys_.faultInjector())
            f->onDramWrite(addr, 2 * values.size());
        return *this;
    }

    /** Attach a per-issue trace hook to PE @p pe. */
    Simulation &
    trace(unsigned pe, Pe::Tracer tracer)
    {
        sys_.pe(pe).setTracer(std::move(tracer));
        return *this;
    }

    /**
     * Run until the machine drains or @p max_cycles elapse (0 = no
     * budget). Can be called again after loading further programs;
     * cycles accumulate. @p cancel, when given, is polled
     * cooperatively and stops the run with CancelledError /
     * TimeoutError (see VipSystem::run and sim/cancel.hh).
     */
    RunResult run(Cycles max_cycles = 0,
                  const CancelToken *cancel = nullptr);

    /** Read one 16-bit value back from DRAM. */
    std::int16_t
    peekDram(Addr addr) const
    {
        return sys_.dram().load<std::int16_t>(addr);
    }

    /** Read @p count consecutive 16-bit values starting at @p addr. */
    std::vector<std::int16_t> peekDram(Addr addr, std::size_t count) const;

    /** Start address of vault @p v's local DRAM region. */
    Addr vaultBase(unsigned v = 0) const { return sys_.vaultBase(v); }

    /** Escape hatch: the underlying machine, for anything not wrapped. */
    VipSystem &system() { return sys_; }
    const VipSystem &system() const { return sys_; }

  private:
    VipSystem sys_;
};

} // namespace vip

#endif // VIP_SYSTEM_SIMULATION_HH
