#include "system/runspec.hh"

#include <utility>

#include "sim/cancel.hh"
#include "sim/json.hh"

namespace vip {

namespace {

/** Reject keys outside @p allowed, naming the path (the RunSpec
 *  analogue of config_json.cc's StrictObject, for flat objects). */
void
rejectUnknown(const Json &j, const std::string &path,
              std::initializer_list<const char *> allowed)
{
    for (const auto &[key, value] : j.asObject()) {
        bool known = false;
        for (const char *a : allowed) {
            if (key == a) {
                known = true;
                break;
            }
        }
        if (!known)
            throw ConfigError("unknown key \"" + path + key + "\"");
    }
}

} // namespace

Json
RunSpec::toJson() const
{
    Json j = Json::object();
    j.set("config", config.toJson());
    Json progs = Json::array();
    for (const Program &p : programs) {
        Json pj = Json::object();
        pj.set("pe", p.pe);
        pj.set("source", p.source);
        progs.push(std::move(pj));
    }
    j.set("programs", std::move(progs));
    Json pokesj = Json::array();
    for (const DramPoke &p : pokes) {
        Json pj = Json::object();
        pj.set("addr", static_cast<std::uint64_t>(p.addr));
        Json values = Json::array();
        for (const std::int16_t v : p.values)
            values.push(static_cast<std::int64_t>(v));
        pj.set("values", std::move(values));
        pokesj.push(std::move(pj));
    }
    j.set("pokes", std::move(pokesj));
    Json regsj = Json::array();
    for (const RegSet &r : regs) {
        Json rj = Json::object();
        rj.set("pe", r.pe);
        rj.set("reg", r.reg);
        rj.set("value", r.value);
        regsj.push(std::move(rj));
    }
    j.set("regs", std::move(regsj));
    j.set("maxCycles", static_cast<std::uint64_t>(maxCycles));
    if (budgetMs != 0)
        j.set("budgetMs", budgetMs);
    return j;
}

RunSpec
RunSpec::fromJson(const Json &j)
{
    RunSpec spec;
    rejectUnknown(j, "",
                  {"config", "programs", "pokes", "regs", "maxCycles",
                   "budgetMs"});
    if (const Json *c = j.find("config"))
        spec.config = SystemConfig::fromJson(*c);
    if (const Json *progs = j.find("programs")) {
        for (const Json &pj : progs->asArray()) {
            rejectUnknown(pj, "programs[].", {"pe", "source"});
            Program p;
            p.pe = static_cast<unsigned>(pj.at("pe").asU64());
            p.source = pj.at("source").asString();
            spec.programs.push_back(std::move(p));
        }
    }
    if (const Json *pokes = j.find("pokes")) {
        for (const Json &pj : pokes->asArray()) {
            rejectUnknown(pj, "pokes[].", {"addr", "values"});
            DramPoke p;
            p.addr = static_cast<Addr>(pj.at("addr").asU64());
            for (const Json &v : pj.at("values").asArray()) {
                const std::int64_t val = v.asI64();
                if (val < -32768 || val > 32767) {
                    throw ConfigError(
                        "pokes[].values: " + std::to_string(val) +
                        " does not fit in a 16-bit DRAM word");
                }
                p.values.push_back(static_cast<std::int16_t>(val));
            }
            spec.pokes.push_back(std::move(p));
        }
    }
    if (const Json *regs = j.find("regs")) {
        for (const Json &rj : regs->asArray()) {
            rejectUnknown(rj, "regs[].", {"pe", "reg", "value"});
            RegSet r;
            r.pe = static_cast<unsigned>(rj.at("pe").asU64());
            r.reg = static_cast<unsigned>(rj.at("reg").asU64());
            r.value = rj.at("value").asU64();
            spec.regs.push_back(r);
        }
    }
    if (const Json *mc = j.find("maxCycles"))
        spec.maxCycles = static_cast<Cycles>(mc->asU64());
    if (const Json *bm = j.find("budgetMs"))
        spec.budgetMs = bm->asU64();
    return spec;
}

std::uint64_t
RunSpec::fingerprint() const
{
    if (budgetMs != 0) {
        // The budget bounds host execution, not results: hash as if
        // unbudgeted so a cached success answers any budget.
        RunSpec unbudgeted = *this;
        unbudgeted.budgetMs = 0;
        return fnv1a(unbudgeted.toJson().str());
    }
    return fnv1a(toJson().str());
}

std::unique_ptr<Simulation>
buildSimulation(const RunSpec &spec)
{
    auto sim = std::make_unique<Simulation>(spec.config);
    for (const RunSpec::DramPoke &p : spec.pokes)
        sim->pokeDram(p.addr, p.values);
    for (const RunSpec::RegSet &r : spec.regs)
        sim->setReg(r.pe, r.reg, r.value);
    for (const RunSpec::Program &p : spec.programs)
        sim->loadProgram(p.pe, p.source);
    return sim;
}

RunResult
runSpec(const RunSpec &spec, CancelToken *cancel)
{
    CancelToken local;
    CancelToken *tok = cancel;
    if (tok) {
        tok->setBudgetMs(spec.budgetMs);
    } else if (spec.budgetMs != 0) {
        local.setBudgetMs(spec.budgetMs);
        tok = &local;
    }
    auto sim = buildSimulation(spec);
    return sim->run(spec.maxCycles, tok);
}

} // namespace vip
