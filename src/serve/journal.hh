/**
 * @file
 * Write-ahead campaign journal: crash-recoverable vip-serve runs.
 *
 * A campaign driven through vip-serve can take hours; a daemon crash
 * (OOM kill, host reboot, operator SIGKILL) used to lose every
 * completed point. With `--journal PATH` the daemon appends one line
 * per event to an append-only JSON-lines file:
 *
 *   {"req": N, "line": "<request line>"}    before dispatching, and
 *   {"rsp": N, "body": "<response line>"}   after answering,
 *
 * where N is a per-journal sequence number pairing the two. A request
 * with a matching response is *completed*; one without is the
 * *in-flight tail* the crash interrupted. Recovery replays the file:
 *
 *  - a restarted `vip-serve --journal PATH` preloads every completed
 *    run response into its result cache, so re-sending the campaign
 *    re-answers completed points from cache (byte-identical — the
 *    journal stores the exact emitted line) and re-runs only the
 *    tail;
 *  - `vip-run --resume PATH` finishes the campaign offline: it emits
 *    completed responses verbatim, runs the unanswered tail, and
 *    appends the new responses under their original sequence numbers
 *    (no duplicate request lines, so repeated resumes are
 *    idempotent).
 *
 * Torn tails are expected: a crash mid-write leaves a truncated last
 * line, which load() skips (along with any other unparseable line) —
 * the corresponding request simply counts as in-flight. Every append
 * is flushed before the dispatch/emit proceeds, so the journal never
 * claims a response the client could not have seen.
 *
 * Thread safety: append* are serialized by an internal mutex (serve
 * handles concurrent connections); load() is a static snapshot for
 * startup/resume, not synchronized against a live writer.
 */

#ifndef VIP_SERVE_JOURNAL_HH
#define VIP_SERVE_JOURNAL_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/mutex.hh"

namespace vip {

class CampaignJournal
{
  public:
    /** One request line and (when answered) its response line. */
    struct Entry
    {
        std::uint64_t seq = 0;
        std::string request;   ///< the raw request line
        bool answered = false;
        std::string response;  ///< the raw emitted response line
    };

    /**
     * Open @p path for appending, creating it if absent. Throws
     * SimError("config") when the file cannot be opened. Sequence
     * numbers continue after the highest one already present.
     */
    explicit CampaignJournal(const std::string &path);

    /**
     * Parse a journal into entries ordered by sequence number. A
     * missing file is an empty campaign; unparseable lines (torn
     * tail, stray garbage) are skipped; a response without a request
     * is dropped (its request line was torn away — nothing to rerun).
     */
    static std::vector<Entry> load(const std::string &path);

    /** Record @p line as about to be dispatched; returns its
     *  sequence number. Flushed before returning. */
    std::uint64_t appendRequest(const std::string &line);

    /** Record the response for request @p seq. Flushed before
     *  returning. */
    void appendResponse(std::uint64_t seq, const std::string &body);

  private:
    Mutex mutex_;
    std::ofstream out_ VIP_GUARDED_BY(mutex_);
    std::uint64_t nextSeq_ VIP_GUARDED_BY(mutex_) = 1;
};

} // namespace vip

#endif // VIP_SERVE_JOURNAL_HH
