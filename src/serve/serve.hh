/**
 * @file
 * The vip-serve daemon loop: simulation as a service.
 *
 * A VipServer reads JSON-lines requests from a stream (stdin in
 * tests and piped use, a unix-socket connection in daemon mode —
 * tools/vip-serve.cc owns the socket), executes them on a pool of
 * warm worker threads, and writes exactly one JSON line back per
 * request line, in request order.
 *
 * ## Protocol (one JSON object per line)
 *
 * Run request — the object under "run" is a RunSpec
 * (system/runspec.hh):
 *
 *   {"run": {"config": {...}, "programs": [...], "maxCycles": N}}
 *   -> {"key":"<16 hex>","result":{...}}
 *
 * The "result" value is RunResult::toJson(): deterministic, no host
 * wall-clock fields — so two identical requests produce byte-identical
 * response lines, and a cache hit emits the stored bytes verbatim.
 * Whether a request hit the cache is observable only through the
 * stats command, never through the response body.
 *
 * A run may carry "budgetMs": a host wall-clock budget. A run that
 * exceeds it fails with {"error":{"kind":"timeout",...}} and the
 * daemon keeps serving; the budget is excluded from the cache key
 * (it bounds host execution, never results).
 *
 * Control requests:
 *
 *   {"cmd": "stats"}    -> {"serve": {"cacheEntries": ..., ...}}
 *   {"cmd": "cancel"}   -> {"cancelled": N, "ok": true} — trips the
 *                          CancelToken of every run in flight; each
 *                          answers {"error":{"kind":"cancelled"}} on
 *                          its own request slot
 *   {"cmd": "shutdown"} -> {"ok": true}, then the loop returns
 *
 * Failures — a malformed line, an oversized line, an unknown key, a
 * config the validator rejects, an assembly error, a deadlocked or
 * timed-out run — come back as a structured response on the same
 * line slot and the loop keeps serving (the SimError hierarchy is
 * the contract: nothing a request can say kills the daemon):
 *
 *   {"error": {"kind": "config", "message": "...", "detail": "..."}}
 *
 * When more runs are in flight than the admission bound
 * (maxQueuedRuns), new run requests are shed immediately with
 * {"error":{"kind":"overloaded",...}} instead of queueing without
 * bound — a loaded daemon stays responsive and its memory bounded.
 *
 * ## Caching
 *
 * Results are content-addressed: the key is
 * RunSpec::fingerprint() — the repo's FNV-1a hash primitive (the
 * same scheme DramStorage::fingerprint uses per page) over the
 * spec's canonical JSON. The simulator is deterministic, so equal
 * keys mean equal results, and a bounded LRU cache of serialized
 * responses makes repeated sweep points free. Error responses are
 * never cached. Hit/miss/eviction counters live in a "serve"
 * StatGroup reported by the stats command.
 *
 * ## Journaling & recovery
 *
 * With a journalPath the server write-ahead-journals every request
 * line before dispatch and every response after emission
 * (serve/journal.hh). On construction it preloads completed run
 * responses into the cache, so a daemon restarted after a crash
 * re-answers completed campaign points byte-identically from cache
 * and re-runs only the interrupted tail; `vip-run --resume` finishes
 * the same journal offline.
 *
 * ## Concurrency
 *
 * Requests dispatch onto a SweepEngine (one warm Simulation per job,
 * the sweep determinism contract); responses are reordered back into
 * request order by a bounded per-connection window, so a stream of N
 * requests pipelines across the pool while the client still sees
 * responses 1..N in order. With jobs == 1 everything runs inline on
 * the caller's thread — byte-for-byte deterministic, which is what
 * the tests pin. serve() may be called concurrently from several
 * transport threads (one per socket connection): the window is local
 * to each call, and all shared state — cache, counters, journal, the
 * in-flight run registry — is mutex-guarded. Transient host failures
 * (TransientError, std::bad_alloc) are retried with exponential
 * backoff per the retry policy before a run is reported failed.
 */

#ifndef VIP_SERVE_SERVE_HH
#define VIP_SERVE_SERVE_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <istream>
#include <list>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>

#include "serve/journal.hh"
#include "sim/cancel.hh"
#include "sim/mutex.hh"
#include "sim/stats.hh"
#include "sim/sweep.hh"
#include "system/runspec.hh"

namespace vip {

struct ServeOptions
{
    /** Worker pool size; 1 (default) runs requests inline, 0 picks
     *  the host's hardware concurrency. */
    unsigned jobs = 1;

    /** Result-cache capacity in entries; 0 disables caching. */
    std::size_t cacheEntries = 256;

    /**
     * Island count applied to run requests that don't set one
     * (config.islands == 1). A host-side execution knob, not part of
     * the request: results are bit-identical for any island count, so
     * the cache key is computed before the default is applied and a
     * cached response stays valid across default changes.
     */
    unsigned defaultIslands = 1;

    /**
     * Fast-path default for run requests that don't turn it off
     * (config.fastPath == true). The same host-side knob shape as
     * defaultIslands: the decoded-µop replay is bit-identical to the
     * interpreter, so the cache key is computed before this default
     * is applied and cached responses stay valid across it.
     */
    bool defaultFastPath = true;

    /** Longest accepted request line; longer lines are consumed and
     *  answered with {"error":{"kind":"protocol"}} — a runaway client
     *  cannot balloon the daemon. */
    std::size_t maxLineBytes = 1u << 20;

    /** Admission bound: run requests arriving while this many runs
     *  are already in flight (across all connections) are shed with
     *  "overloaded". 0 = auto (4 * jobs + 4). */
    std::size_t maxQueuedRuns = 0;

    /** Transient host-failure retry policy (sim/sweep.hh). */
    RetryPolicy retry{2, 10};

    /** Write-ahead campaign journal path; empty disables journaling
     *  (see file comment, "Journaling & recovery"). */
    std::string journalPath;

    /**
     * Polled between request lines; returning true makes serve()
     * drain its window and return, as if the stream hit EOF. The
     * transport's drain-then-exit hook for SIGINT/SIGTERM.
     */
    std::function<bool()> stopRequested;
};

class VipServer
{
  public:
    explicit VipServer(const ServeOptions &opts = {});

    /**
     * Serve until @p in hits EOF, a shutdown request arrives, or
     * opts.stopRequested returns true. Emits exactly one
     * '\n'-terminated JSON response per request line, in request
     * order, flushing after each; returns early (after completing
     * in-flight work) when @p out fails — a vanished client must not
     * wedge a worker. May be called concurrently from multiple
     * transport threads; response ordering is per call (the stats
     * command's drain barrier likewise covers only the calling
     * connection's window).
     */
    void serve(std::istream &in, std::ostream &out);

    /** The "serve" statistics section. */
    const StatGroup &stats() const { return statGroup_; }

    /** True once a {"cmd":"shutdown"} request has been served; lets
     *  a multi-connection transport tell a client disconnect (serve
     *  again) from a daemon shutdown (stop accepting). */
    bool
    shutdownRequested() const
    {
        return shutdownRequested_.load(std::memory_order_acquire);
    }

    /** Trip the CancelToken of every run in flight (the programmatic
     *  form of {"cmd":"cancel"}); returns how many were signalled. */
    std::size_t cancelActiveRuns();

    /** Counter snapshots (locked: safe while connections are live). */
    std::uint64_t requests() const { return counter(requests_); }
    std::uint64_t cacheHits() const { return counter(cacheHits_); }
    std::uint64_t cacheMisses() const { return counter(cacheMisses_); }
    std::uint64_t
    cacheEvictions() const
    {
        return counter(cacheEvictions_);
    }
    std::uint64_t errors() const { return counter(errors_); }
    std::uint64_t timeouts() const { return counter(timeouts_); }
    std::uint64_t cancelledRuns() const { return counter(cancelledRuns_); }
    std::uint64_t shed() const { return counter(shed_); }
    std::uint64_t retries() const { return engine_.retries(); }

  private:
    /** One request's slot in a connection's in-order response window.
     *  `response`/`done`/`isError` are written by the completing
     *  worker (then read by the serving thread after observing `done`
     *  under mutex_); `seq`/`journaled` are written and read only by
     *  the serving thread. */
    struct Pending
    {
        std::string response;
        bool done = false;
        bool isError = false;
        std::uint64_t seq = 0;    ///< journal sequence number
        bool journaled = false;   ///< emit appends a journal response
    };
    using PendingPtr = std::shared_ptr<Pending>;

    /** Dispatch one parsed request line; returns the slot to emit. */
    PendingPtr dispatch(const std::string &line, bool *shutdown);

    /** Schedule a run request (cache lookup, admission check, or
     *  worker execution). */
    PendingPtr dispatchRun(const Json &spec_json);

    /** A slot completed immediately on the serving thread. */
    PendingPtr immediate(std::string response, bool is_error);

    /** Locked read of one counter (bumps happen under mutex_). */
    std::uint64_t
    counter(const Counter &c) const
    {
        LockGuard lock(mutex_);
        return c.value();
    }

    std::string statsResponse();

    /** LRU lookup; touches the entry. Null when absent. */
    const std::string *cacheFind(std::uint64_t key) VIP_REQUIRES(mutex_);
    void cacheInsert(std::uint64_t key, std::string response)
        VIP_REQUIRES(mutex_);

    /** Emit (and journal) every completed slot at @p window's head. */
    void emitReady(std::deque<PendingPtr> &window, std::ostream &out);

    /** Block until the whole @p window has been emitted. */
    void drain(std::deque<PendingPtr> &window, std::ostream &out);

    ServeOptions opts_;
    std::atomic<bool> shutdownRequested_{false};

    /** Counters are registered in statGroup_; every bump and every
     *  statGroup_ visit happens under mutex_ (Counter is a plain
     *  uint64, and serve() runs on multiple connection threads). */
    StatGroup statGroup_;
    Counter requests_;
    Counter cacheHits_;
    Counter cacheMisses_;
    Counter cacheEvictions_;
    Counter errors_;
    Counter timeouts_;
    Counter cancelledRuns_;
    Counter shed_;

    /** Guards the cache, the counters, the in-flight run registry,
     *  and Pending completion handoff; cv_ signals slot completion.
     *  The journal has its own internal lock. Mutable: the const
     *  counter accessors lock it. */
    mutable Mutex mutex_;
    CondVar cv_;

    /** Server-lifetime µop fast-path counters summed over every run
     *  executed (cache hits skip simulation and add nothing), keyed
     *  by counter name; reported by the stats command's "fastpath"
     *  section. */
    std::map<std::string, std::uint64_t> fastpath_ VIP_GUARDED_BY(mutex_);

    /** LRU: most-recent at the front; map points into the list. */
    std::list<std::pair<std::uint64_t, std::string>> lru_
        VIP_GUARDED_BY(mutex_);
    std::unordered_map<
        std::uint64_t,
        std::list<std::pair<std::uint64_t, std::string>>::iterator>
        cache_ VIP_GUARDED_BY(mutex_);

    /** Runs in flight: admission control and the cancel command.
     *  Tokens are owned by their worker lambdas; the registry holds
     *  weak refs so a finished run needs no cross-thread teardown
     *  beyond its erase. std::map: the cancel command iterates. */
    std::uint64_t nextRunId_ VIP_GUARDED_BY(mutex_) = 1;
    std::map<std::uint64_t, std::weak_ptr<CancelToken>> active_
        VIP_GUARDED_BY(mutex_);
    std::size_t inFlight_ VIP_GUARDED_BY(mutex_) = 0;

    std::unique_ptr<CampaignJournal> journal_;

    /** Declared last on purpose: destroyed first, which joins the
     *  worker threads while every member they touch (mutex_, cache,
     *  journal_, the registry) is still alive. */
    SweepEngine engine_;
};

/** {"error": {...}} response body for @p e (shared with vip-run). */
std::string errorResponse(const SimError &e);

} // namespace vip

#endif // VIP_SERVE_SERVE_HH
