/**
 * @file
 * The vip-serve daemon loop: simulation as a service.
 *
 * A VipServer reads JSON-lines requests from a stream (stdin in
 * tests and piped use, a unix-socket connection in daemon mode —
 * tools/vip-serve.cc owns the socket), executes them on a pool of
 * warm worker threads, and writes exactly one JSON line back per
 * request line, in request order.
 *
 * ## Protocol (one JSON object per line)
 *
 * Run request — the object under "run" is a RunSpec
 * (system/runspec.hh):
 *
 *   {"run": {"config": {...}, "programs": [...], "maxCycles": N}}
 *   -> {"key":"<16 hex>","result":{...}}
 *
 * The "result" value is RunResult::toJson(): deterministic, no host
 * wall-clock fields — so two identical requests produce byte-identical
 * response lines, and a cache hit emits the stored bytes verbatim.
 * Whether a request hit the cache is observable only through the
 * stats command, never through the response body.
 *
 * Control requests:
 *
 *   {"cmd": "stats"}    -> {"serve": {"cacheEntries": ..., ...}}
 *   {"cmd": "shutdown"} -> {"ok": true}, then the loop returns
 *
 * Failures — a malformed line, an unknown key, a config the
 * validator rejects, an assembly error, a deadlocked run — come back
 * as a structured response on the same line slot and the loop keeps
 * serving (the SimError hierarchy is the contract: nothing a request
 * can say kills the daemon):
 *
 *   {"error": {"kind": "config", "message": "...", "detail": "..."}}
 *
 * ## Caching
 *
 * Results are content-addressed: the key is
 * RunSpec::fingerprint() — the repo's FNV-1a hash primitive (the
 * same scheme DramStorage::fingerprint uses per page) over the
 * spec's canonical JSON. The simulator is deterministic, so equal
 * keys mean equal results, and a bounded LRU cache of serialized
 * responses makes repeated sweep points free. Error responses are
 * never cached. Hit/miss/eviction counters live in a "serve"
 * StatGroup reported by the stats command.
 *
 * ## Concurrency
 *
 * Requests dispatch onto a SweepEngine (one warm Simulation per job,
 * the sweep determinism contract); responses are reordered back into
 * request order by a bounded window, so a stream of N requests
 * pipelines across the pool while the client still sees responses
 * 1..N in order. With jobs == 1 everything runs inline on the
 * caller's thread — byte-for-byte deterministic, which is what the
 * tests pin.
 */

#ifndef VIP_SERVE_SERVE_HH
#define VIP_SERVE_SERVE_HH

#include <cstdint>
#include <deque>
#include <istream>
#include <list>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>

#include "sim/mutex.hh"
#include "sim/stats.hh"
#include "sim/sweep.hh"
#include "system/runspec.hh"

namespace vip {

struct ServeOptions
{
    /** Worker pool size; 1 (default) runs requests inline, 0 picks
     *  the host's hardware concurrency. */
    unsigned jobs = 1;

    /** Result-cache capacity in entries; 0 disables caching. */
    std::size_t cacheEntries = 256;

    /**
     * Island count applied to run requests that don't set one
     * (config.islands == 1). A host-side execution knob, not part of
     * the request: results are bit-identical for any island count, so
     * the cache key is computed before the default is applied and a
     * cached response stays valid across default changes.
     */
    unsigned defaultIslands = 1;

    /**
     * Fast-path default for run requests that don't turn it off
     * (config.fastPath == true). The same host-side knob shape as
     * defaultIslands: the decoded-µop replay is bit-identical to the
     * interpreter, so the cache key is computed before this default
     * is applied and cached responses stay valid across it.
     */
    bool defaultFastPath = true;
};

class VipServer
{
  public:
    explicit VipServer(const ServeOptions &opts = {});

    /**
     * Serve until @p in hits EOF or a shutdown request arrives.
     * Emits exactly one '\n'-terminated JSON response per request
     * line, in request order, flushing after each. Reentrant per
     * server: one serve() at a time.
     */
    void serve(std::istream &in, std::ostream &out);

    /** The "serve" statistics section. */
    const StatGroup &stats() const { return statGroup_; }

    /** True once a {"cmd":"shutdown"} request has been served; lets
     *  a multi-connection transport tell a client disconnect (serve
     *  again) from a daemon shutdown (stop accepting). */
    bool shutdownRequested() const { return shutdownRequested_; }

    std::uint64_t requests() const { return requests_.value(); }
    std::uint64_t cacheHits() const { return cacheHits_.value(); }
    std::uint64_t cacheMisses() const { return cacheMisses_.value(); }
    std::uint64_t cacheEvictions() const { return cacheEvictions_.value(); }
    std::uint64_t errors() const { return errors_.value(); }

  private:
    /** One request's slot in the in-order response window. */
    struct Pending
    {
        std::string response;
        bool done = false;
        bool isError = false;
    };
    using PendingPtr = std::shared_ptr<Pending>;

    /** Dispatch one parsed request line; returns the slot to emit. */
    PendingPtr dispatch(const std::string &line, bool *shutdown);

    /** Schedule a run request (cache lookup or worker execution). */
    PendingPtr dispatchRun(const Json &spec_json);

    /** A slot completed immediately on the serving thread. */
    PendingPtr immediate(std::string response, bool is_error);

    std::string statsResponse();

    /** LRU lookup; touches the entry. Null when absent. */
    const std::string *cacheFind(std::uint64_t key) VIP_REQUIRES(mutex_);
    void cacheInsert(std::uint64_t key, std::string response)
        VIP_REQUIRES(mutex_);

    /** Emit every completed slot at the window head. */
    void emitReady(std::ostream &out);

    /** Block until the whole window has been emitted. */
    void drain(std::ostream &out);

    ServeOptions opts_;
    SweepEngine engine_;
    bool shutdownRequested_ = false;

    StatGroup statGroup_;
    Counter requests_;
    Counter cacheHits_;
    Counter cacheMisses_;
    Counter cacheEvictions_;
    Counter errors_;

    /** Guards window_ and the cache (the only state the serving
     *  thread and the worker-pool completion lambdas share); cv_
     *  signals slot completion. The Pending slots themselves are
     *  written by exactly one worker and only read by the serving
     *  thread after `done` is observed true under this mutex. */
    Mutex mutex_;
    CondVar cv_;
    std::deque<PendingPtr> window_ VIP_GUARDED_BY(mutex_);

    /** Server-lifetime µop fast-path counters summed over every run
     *  executed (cache hits skip simulation and add nothing), keyed
     *  by counter name; reported by the stats command's "fastpath"
     *  section. */
    std::map<std::string, std::uint64_t> fastpath_ VIP_GUARDED_BY(mutex_);

    /** LRU: most-recent at the front; map points into the list. */
    std::list<std::pair<std::uint64_t, std::string>> lru_
        VIP_GUARDED_BY(mutex_);
    std::unordered_map<
        std::uint64_t,
        std::list<std::pair<std::uint64_t, std::string>>::iterator>
        cache_ VIP_GUARDED_BY(mutex_);
};

/** {"error": {...}} response body for @p e (shared with vip-run). */
std::string errorResponse(const SimError &e);

} // namespace vip

#endif // VIP_SERVE_SERVE_HH
