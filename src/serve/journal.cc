#include "serve/journal.hh"

#include <algorithm>
#include <map>
#include <utility>

#include "sim/error.hh"
#include "sim/json.hh"

namespace vip {

CampaignJournal::CampaignJournal(const std::string &path)
{
    // Continue numbering after anything already journaled, so a
    // restarted daemon's new requests never collide with recovered
    // ones.
    for (const Entry &e : load(path))
        nextSeq_ = std::max(nextSeq_, e.seq + 1);
    out_.open(path, std::ios::app);
    if (!out_) {
        throw SimError("config",
                       "cannot open journal file \"" + path + "\"");
    }
}

std::vector<CampaignJournal::Entry>
CampaignJournal::load(const std::string &path)
{
    std::map<std::uint64_t, Entry> by_seq;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        Json j;
        try {
            j = Json::parse(line);
        } catch (const JsonError &) {
            continue;  // torn tail or stray garbage: skip
        }
        try {
            if (const Json *req = j.find("req")) {
                Entry &e = by_seq[req->asU64()];
                e.seq = req->asU64();
                e.request = j.at("line").asString();
            } else if (const Json *rsp = j.find("rsp")) {
                auto it = by_seq.find(rsp->asU64());
                if (it == by_seq.end())
                    continue;  // request line torn away
                it->second.answered = true;
                it->second.response = j.at("body").asString();
            }
        } catch (const JsonError &) {
            continue;  // well-formed JSON, wrong shape: skip
        }
    }
    std::vector<Entry> entries;
    entries.reserve(by_seq.size());
    for (auto &[seq, e] : by_seq)
        entries.push_back(std::move(e));
    return entries;
}

std::uint64_t
CampaignJournal::appendRequest(const std::string &line)
{
    LockGuard lock(mutex_);
    const std::uint64_t seq = nextSeq_++;
    Json j = Json::object();
    j.set("req", seq);
    j.set("line", line);
    out_ << j.str() << "\n";
    out_.flush();
    return seq;
}

void
CampaignJournal::appendResponse(std::uint64_t seq, const std::string &body)
{
    LockGuard lock(mutex_);
    Json j = Json::object();
    j.set("rsp", seq);
    j.set("body", body);
    out_ << j.str() << "\n";
    out_.flush();
}

} // namespace vip
