#include "serve/serve.hh"

#include <cstdio>
#include <cstdlib>

#include "sim/json.hh"

namespace vip {

namespace {

std::string
hexKey(std::uint64_t key)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

/** Is the line all JSON whitespace (skip it without a response)? */
bool
isBlank(const std::string &line)
{
    for (const char c : line) {
        if (c != ' ' && c != '\t' && c != '\r')
            return false;
    }
    return true;
}

/**
 * Read one '\n'-terminated line of at most @p max_bytes into @p line.
 * A longer line is consumed to its newline (the stream stays in sync)
 * but reported via *overflow with only the first max_bytes kept — the
 * caller answers with a structured protocol error instead of letting
 * a runaway client balloon the daemon. Returns false only at EOF with
 * nothing read; an unterminated final line is still delivered.
 */
bool
readLineBounded(std::istream &in, std::size_t max_bytes,
                std::string *line, bool *overflow)
{
    line->clear();
    *overflow = false;
    bool any = false;
    std::istream::int_type c;
    while ((c = in.get()) != std::istream::traits_type::eof()) {
        any = true;
        if (c == '\n')
            return true;
        if (line->size() < max_bytes)
            line->push_back(static_cast<char>(c));
        else
            *overflow = true;
    }
    return any;
}

} // namespace

std::string
errorResponse(const SimError &e)
{
    Json err = Json::object();
    err.set("kind", e.kind());
    err.set("message", e.message());
    err.set("detail", e.detail());
    Json body = Json::object();
    body.set("error", std::move(err));
    return body.str();
}

VipServer::VipServer(const ServeOptions &opts)
    : opts_(opts), statGroup_("serve"),
      requests_(&statGroup_, "requests", "request lines received"),
      cacheHits_(&statGroup_, "cacheHits",
                 "run requests answered from the result cache"),
      cacheMisses_(&statGroup_, "cacheMisses",
                   "run requests that had to simulate"),
      cacheEvictions_(&statGroup_, "cacheEvictions",
                      "cached results evicted by the LRU bound"),
      errors_(&statGroup_, "errors",
              "requests answered with an error response"),
      timeouts_(&statGroup_, "timeouts",
                "runs stopped by their wall-clock budget"),
      cancelledRuns_(&statGroup_, "cancelledRuns",
                     "runs stopped by an explicit cancel"),
      shed_(&statGroup_, "shed",
            "run requests rejected by the admission bound"),
      engine_(opts.jobs)
{
    engine_.setRetryPolicy(opts_.retry);
    if (opts_.journalPath.empty())
        return;
    // Recovery: every completed run response in the journal becomes a
    // cache entry, so a re-sent campaign re-answers completed points
    // byte-identically from cache and re-runs only the interrupted
    // tail. Error and command responses carry no "key" and are
    // (correctly) not preloaded.
    for (const CampaignJournal::Entry &e :
         CampaignJournal::load(opts_.journalPath)) {
        if (!e.answered)
            continue;
        Json j;
        try {
            j = Json::parse(e.response);
        } catch (const JsonError &) {
            continue;
        }
        const Json *keyj = j.find("key");
        if (!keyj || !keyj->isString())
            continue;
        const std::uint64_t key =
            std::strtoull(keyj->asString().c_str(), nullptr, 16);
        LockGuard lock(mutex_);
        cacheInsert(key, e.response);
    }
    journal_ = std::make_unique<CampaignJournal>(opts_.journalPath);
}

const std::string *
VipServer::cacheFind(std::uint64_t key)
{
    const auto it = cache_.find(key);
    if (it == cache_.end())
        return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->second;
}

void
VipServer::cacheInsert(std::uint64_t key, std::string response)
{
    if (opts_.cacheEntries == 0)
        return;
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
        // A concurrent miss on the same key already inserted the
        // (identical) response; just refresh its position.
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    while (cache_.size() >= opts_.cacheEntries) {
        cache_.erase(lru_.back().first);
        lru_.pop_back();
        ++cacheEvictions_;
    }
    lru_.emplace_front(key, std::move(response));
    cache_.emplace(key, lru_.begin());
}

VipServer::PendingPtr
VipServer::immediate(std::string response, bool is_error)
{
    auto p = std::make_shared<Pending>();
    p->response = std::move(response);
    p->done = true;
    p->isError = is_error;
    return p;
}

std::size_t
VipServer::cancelActiveRuns()
{
    LockGuard lock(mutex_);
    std::size_t n = 0;
    for (const auto &[id, weak] : active_) {
        if (const auto token = weak.lock()) {
            token->cancel();
            ++n;
        }
    }
    return n;
}

VipServer::PendingPtr
VipServer::dispatchRun(const Json &spec_json)
{
    RunSpec spec = RunSpec::fromJson(spec_json);
    const std::uint64_t key = spec.fingerprint();
    // Host execution defaults, applied after fingerprinting: island
    // count and the µop fast path never change the result bytes,
    // only how they are computed.
    if (spec.config.islands == 1)
        spec.config.islands = opts_.defaultIslands;
    if (spec.config.fastPath)
        spec.config.fastPath = opts_.defaultFastPath;

    auto token = std::make_shared<CancelToken>();
    std::uint64_t run_id = 0;
    {
        LockGuard lock(mutex_);
        if (const std::string *cached = cacheFind(key)) {
            ++cacheHits_;
            // Emit the stored bytes verbatim: a hit's response is
            // byte-identical to the miss that populated it. Whether
            // a request hit is observable through the stats command,
            // never through the response body.
            return immediate(*cached, false);
        }
        const std::size_t bound =
            opts_.maxQueuedRuns ? opts_.maxQueuedRuns
                                : 4 * std::size_t{engine_.jobs()} + 4;
        if (inFlight_ >= bound) {
            // Shed instead of queueing without bound: a loaded
            // daemon answers immediately and its memory stays
            // bounded. The client retries later.
            ++shed_;
            return immediate(
                errorResponse(SimError(
                    "overloaded",
                    "daemon at capacity (" +
                        std::to_string(inFlight_) +
                        " runs in flight, bound " +
                        std::to_string(bound) + "); retry later")),
                true);
        }
        ++cacheMisses_;
        ++inFlight_;
        run_id = nextRunId_++;
        active_.emplace(run_id, token);
    }

    auto p = std::make_shared<Pending>();
    // Invocation count across the engine's transient retries; only
    // the worker running this job touches it (retries re-invoke on
    // the same thread, sequentially).
    auto attempts = std::make_shared<unsigned>(0);
    engine_.submit([this, spec, key, p, token, run_id, attempts] {
        const unsigned attempt = (*attempts)++;
        std::string response;
        bool is_error = false;
        bool timed_out = false;
        bool was_cancelled = false;
        std::map<std::string, std::uint64_t> fp;
        try {
            const RunResult result = runSpec(spec, token.get());
            Json body = Json::object();
            body.set("key", hexKey(key));
            body.set("result", result.toJson());
            response = body.str();
            fp = result.fastpath;
        } catch (const TransientError &) {
            // Let the engine's retry policy re-run us from the spec
            // (byte-identical on success); answer only once retries
            // are exhausted — an unfinished slot would wedge the
            // window.
            if (attempt < opts_.retry.maxRetries)
                throw;
            response = errorResponse(SimError(
                "transient",
                "run failed after " + std::to_string(attempt + 1) +
                    " attempts"));
            is_error = true;
        } catch (const std::bad_alloc &e) {
            if (attempt < opts_.retry.maxRetries)
                throw;
            response = errorResponse(SimError("transient", e.what()));
            is_error = true;
        } catch (const SimError &e) {
            response = errorResponse(e);
            is_error = true;
            timed_out = e.kind() == "timeout";
            was_cancelled = e.kind() == "cancelled";
        } catch (const std::exception &e) {
            response = errorResponse(SimError("exception", e.what()));
            is_error = true;
        }
        LockGuard lock(mutex_);
        active_.erase(run_id);
        --inFlight_;
        if (timed_out)
            ++timeouts_;
        if (was_cancelled)
            ++cancelledRuns_;
        if (!is_error) {
            cacheInsert(key, response);
            for (const auto &[name, value] : fp)
                fastpath_[name] += value;
        }
        p->response = std::move(response);
        p->isError = is_error;
        p->done = true;
        cv_.notify_all();
    });
    return p;
}

std::string
VipServer::statsResponse()
{
    Json serve = Json::object();
    Json fp = Json::object();
    fp.set("enabled", opts_.defaultFastPath);
    {
        // Counters are bumped under the lock by every connection and
        // worker; snapshot them the same way.
        LockGuard lock(mutex_);
        statGroup_.visit({
            [&serve, this](const std::string &path, std::uint64_t value,
                           const std::string &) {
                // Strip the "serve." prefix: the section name is the
                // response's top-level key.
                serve.set(path.substr(statGroup_.name().size() + 1),
                          value);
            },
            nullptr,
        });
        serve.set("cacheEntries", cache_.size());
        serve.set("inFlight", inFlight_);
        for (const auto &[name, value] : fastpath_)
            fp.set(name, value);
    }
    serve.set("retries", engine_.retries());
    serve.set("cacheCapacity", opts_.cacheEntries);
    serve.set("jobs", engine_.jobs());
    serve.set("fastpath", std::move(fp));
    Json body = Json::object();
    body.set("serve", std::move(serve));
    return body.str();
}

VipServer::PendingPtr
VipServer::dispatch(const std::string &line, bool *shutdown)
{
    try {
        const Json req = Json::parse(line);
        if (const Json *spec_json = req.find("run")) {
            if (req.size() != 1) {
                throw ConfigError(
                    "a run request must contain only the \"run\" key");
            }
            return dispatchRun(*spec_json);
        }
        if (const Json *cmd = req.find("cmd")) {
            if (req.size() != 1) {
                throw ConfigError(
                    "a command request must contain only the \"cmd\" "
                    "key");
            }
            const std::string &name = cmd->asString();
            if (name == "stats") {
                // Barrier: this connection's in-flight runs must land
                // in the counters (and the cache) before the report.
                return nullptr;  // handled by caller after drain
            }
            if (name == "cancel") {
                const std::size_t n = cancelActiveRuns();
                Json body = Json::object();
                body.set("cancelled",
                         static_cast<std::uint64_t>(n));
                body.set("ok", true);
                return immediate(body.str(), false);
            }
            if (name == "shutdown") {
                *shutdown = true;
                shutdownRequested_.store(true,
                                         std::memory_order_release);
                Json body = Json::object();
                body.set("ok", true);
                return immediate(body.str(), false);
            }
            throw ConfigError("unknown command \"" + name + "\"");
        }
        throw ConfigError(
            "request must be {\"run\": {...}} or {\"cmd\": \"...\"}");
    } catch (const SimError &e) {
        return immediate(errorResponse(e), true);
    } catch (const std::exception &e) {
        return immediate(errorResponse(SimError("exception", e.what())),
                         true);
    }
}

void
VipServer::emitReady(std::deque<PendingPtr> &window, std::ostream &out)
{
    LockGuard lock(mutex_);
    while (!window.empty() && window.front()->done) {
        const PendingPtr p = window.front();
        window.pop_front();
        if (p->isError)
            ++errors_;
        lock.unlock();
        out << p->response << '\n' << std::flush;
        // Journal the response after the client had its chance to see
        // it; a completed entry answers resumes byte-identically.
        if (p->journaled && journal_)
            journal_->appendResponse(p->seq, p->response);
        lock.lock();
    }
}

void
VipServer::drain(std::deque<PendingPtr> &window, std::ostream &out)
{
    LockGuard lock(mutex_);
    while (!window.empty()) {
        const PendingPtr head = window.front();
        cv_.wait(lock, [&head] { return head->done; });
        window.pop_front();
        if (head->isError)
            ++errors_;
        lock.unlock();
        out << head->response << '\n' << std::flush;
        if (head->journaled && journal_)
            journal_->appendResponse(head->seq, head->response);
        lock.lock();
    }
}

void
VipServer::serve(std::istream &in, std::ostream &out)
{
    std::deque<PendingPtr> window;
    std::string line;
    bool shutdown = false;
    while (!shutdown) {
        if (opts_.stopRequested && opts_.stopRequested())
            break;  // transport asked for a drain-then-return
        bool overflow = false;
        if (!readLineBounded(in, opts_.maxLineBytes, &line, &overflow))
            break;
        if (!overflow && isBlank(line))
            continue;
        {
            LockGuard lock(mutex_);
            ++requests_;
        }
        std::uint64_t seq = 0;
        bool journaled = false;
        PendingPtr p;
        if (overflow) {
            // Oversized lines are answered but never journaled or
            // dispatched: the stored prefix is not the request.
            p = immediate(
                errorResponse(SimError(
                    "protocol",
                    "request line exceeds " +
                        std::to_string(opts_.maxLineBytes) + " bytes")),
                true);
        } else {
            // Write-ahead: the request is journaled before anything
            // can run, so a crash can lose at most responses, never
            // the knowledge that a request was accepted.
            if (journal_) {
                seq = journal_->appendRequest(line);
                journaled = true;
            }
            p = dispatch(line, &shutdown);
            if (!p) {
                // Stats command: everything this connection has in
                // flight must complete and be counted first.
                drain(window, out);
                p = immediate(statsResponse(), false);
            }
        }
        p->seq = seq;
        p->journaled = journaled;
        window.push_back(std::move(p));
        emitReady(window, out);
        if (!out)
            break;  // client vanished; finish in-flight work and return
        // Bound the pipeline: never more than two batches of work
        // queued ahead of the slowest outstanding request.
        LockGuard lock(mutex_);
        while (window.size() >= 2 * engine_.jobs() + 1) {
            const PendingPtr head = window.front();
            cv_.wait(lock, [&head] { return head->done; });
            lock.unlock();
            emitReady(window, out);
            lock.lock();
        }
    }
    drain(window, out);
}

} // namespace vip
