#include "serve/serve.hh"

#include <cstdio>

#include "sim/json.hh"

namespace vip {

namespace {

std::string
hexKey(std::uint64_t key)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

/** Is the line all JSON whitespace (skip it without a response)? */
bool
isBlank(const std::string &line)
{
    for (const char c : line) {
        if (c != ' ' && c != '\t' && c != '\r')
            return false;
    }
    return true;
}

} // namespace

std::string
errorResponse(const SimError &e)
{
    Json err = Json::object();
    err.set("kind", e.kind());
    err.set("message", e.message());
    err.set("detail", e.detail());
    Json body = Json::object();
    body.set("error", std::move(err));
    return body.str();
}

VipServer::VipServer(const ServeOptions &opts)
    : opts_(opts), engine_(opts.jobs), statGroup_("serve"),
      requests_(&statGroup_, "requests", "request lines received"),
      cacheHits_(&statGroup_, "cacheHits",
                 "run requests answered from the result cache"),
      cacheMisses_(&statGroup_, "cacheMisses",
                   "run requests that had to simulate"),
      cacheEvictions_(&statGroup_, "cacheEvictions",
                      "cached results evicted by the LRU bound"),
      errors_(&statGroup_, "errors",
              "requests answered with an error response")
{}

const std::string *
VipServer::cacheFind(std::uint64_t key)
{
    const auto it = cache_.find(key);
    if (it == cache_.end())
        return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->second;
}

void
VipServer::cacheInsert(std::uint64_t key, std::string response)
{
    if (opts_.cacheEntries == 0)
        return;
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
        // A concurrent miss on the same key already inserted the
        // (identical) response; just refresh its position.
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    while (cache_.size() >= opts_.cacheEntries) {
        cache_.erase(lru_.back().first);
        lru_.pop_back();
        ++cacheEvictions_;
    }
    lru_.emplace_front(key, std::move(response));
    cache_.emplace(key, lru_.begin());
}

VipServer::PendingPtr
VipServer::immediate(std::string response, bool is_error)
{
    auto p = std::make_shared<Pending>();
    p->response = std::move(response);
    p->done = true;
    p->isError = is_error;
    return p;
}

VipServer::PendingPtr
VipServer::dispatchRun(const Json &spec_json)
{
    RunSpec spec = RunSpec::fromJson(spec_json);
    const std::uint64_t key = spec.fingerprint();
    // Host execution defaults, applied after fingerprinting: island
    // count and the µop fast path never change the result bytes,
    // only how they are computed.
    if (spec.config.islands == 1)
        spec.config.islands = opts_.defaultIslands;
    if (spec.config.fastPath)
        spec.config.fastPath = opts_.defaultFastPath;

    {
        LockGuard lock(mutex_);
        if (const std::string *cached = cacheFind(key)) {
            ++cacheHits_;
            // Emit the stored bytes verbatim: a hit's response is
            // byte-identical to the miss that populated it. Whether
            // a request hit is observable through the stats command,
            // never through the response body.
            return immediate(*cached, false);
        }
        ++cacheMisses_;
    }

    auto p = std::make_shared<Pending>();
    engine_.submit([this, spec, key, p] {
        std::string response;
        bool is_error = false;
        std::map<std::string, std::uint64_t> fp;
        try {
            const RunResult result = runSpec(spec);
            Json body = Json::object();
            body.set("key", hexKey(key));
            body.set("result", result.toJson());
            response = body.str();
            fp = result.fastpath;
        } catch (const SimError &e) {
            response = errorResponse(e);
            is_error = true;
        } catch (const std::exception &e) {
            response = errorResponse(
                SimError("exception", e.what()));
            is_error = true;
        }
        LockGuard lock(mutex_);
        if (!is_error) {
            cacheInsert(key, response);
            for (const auto &[name, value] : fp)
                fastpath_[name] += value;
        }
        p->response = std::move(response);
        p->isError = is_error;
        p->done = true;
        cv_.notify_all();
    });
    return p;
}

std::string
VipServer::statsResponse()
{
    Json serve = Json::object();
    statGroup_.visit({
        [&serve, this](const std::string &path, std::uint64_t value,
                       const std::string &) {
            // Strip the "serve." prefix: the section name is the
            // response's top-level key.
            serve.set(path.substr(statGroup_.name().size() + 1), value);
        },
        nullptr,
    });
    Json fp = Json::object();
    fp.set("enabled", opts_.defaultFastPath);
    {
        // The serving thread only calls this after drain(), but the
        // cache is guarded state: read its size under the lock.
        LockGuard lock(mutex_);
        serve.set("cacheEntries", cache_.size());
        for (const auto &[name, value] : fastpath_)
            fp.set(name, value);
    }
    serve.set("cacheCapacity", opts_.cacheEntries);
    serve.set("jobs", engine_.jobs());
    serve.set("fastpath", std::move(fp));
    Json body = Json::object();
    body.set("serve", std::move(serve));
    return body.str();
}

VipServer::PendingPtr
VipServer::dispatch(const std::string &line, bool *shutdown)
{
    try {
        const Json req = Json::parse(line);
        if (const Json *spec_json = req.find("run")) {
            if (req.size() != 1) {
                throw ConfigError(
                    "a run request must contain only the \"run\" key");
            }
            return dispatchRun(*spec_json);
        }
        if (const Json *cmd = req.find("cmd")) {
            if (req.size() != 1) {
                throw ConfigError(
                    "a command request must contain only the \"cmd\" "
                    "key");
            }
            const std::string &name = cmd->asString();
            if (name == "stats") {
                // Barrier: in-flight runs must land in the counters
                // (and the cache) before they are reported.
                return nullptr;  // handled by caller after drain
            }
            if (name == "shutdown") {
                *shutdown = true;
                shutdownRequested_ = true;
                Json body = Json::object();
                body.set("ok", true);
                return immediate(body.str(), false);
            }
            throw ConfigError("unknown command \"" + name + "\"");
        }
        throw ConfigError(
            "request must be {\"run\": {...}} or {\"cmd\": \"...\"}");
    } catch (const SimError &e) {
        return immediate(errorResponse(e), true);
    } catch (const std::exception &e) {
        return immediate(errorResponse(SimError("exception", e.what())),
                         true);
    }
}

void
VipServer::emitReady(std::ostream &out)
{
    LockGuard lock(mutex_);
    while (!window_.empty() && window_.front()->done) {
        const PendingPtr p = window_.front();
        window_.pop_front();
        if (p->isError)
            ++errors_;
        lock.unlock();
        out << p->response << '\n' << std::flush;
        lock.lock();
    }
}

void
VipServer::drain(std::ostream &out)
{
    LockGuard lock(mutex_);
    while (!window_.empty()) {
        const PendingPtr head = window_.front();
        cv_.wait(lock, [&head] { return head->done; });
        window_.pop_front();
        if (head->isError)
            ++errors_;
        lock.unlock();
        out << head->response << '\n' << std::flush;
        lock.lock();
    }
}

void
VipServer::serve(std::istream &in, std::ostream &out)
{
    std::string line;
    bool shutdown = false;
    while (!shutdown && std::getline(in, line)) {
        if (isBlank(line))
            continue;
        ++requests_;
        PendingPtr p = dispatch(line, &shutdown);
        if (!p) {
            // Stats command: everything in flight must complete and
            // be counted first.
            drain(out);
            p = immediate(statsResponse(), false);
        }
        {
            LockGuard lock(mutex_);
            window_.push_back(std::move(p));
        }
        emitReady(out);
        // Bound the pipeline: never more than two batches of work
        // queued ahead of the slowest outstanding request.
        LockGuard lock(mutex_);
        while (window_.size() >= 2 * engine_.jobs() + 1) {
            const PendingPtr head = window_.front();
            cv_.wait(lock, [&head] { return head->done; });
            lock.unlock();
            emitReady(out);
            lock.lock();
        }
    }
    drain(out);
}

} // namespace vip
