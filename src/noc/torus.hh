/**
 * @file
 * Packet-level model of VIP's on-chip network: an 8x4 2D torus of vault
 * routers with bidirectional 64-bit links (8 B/cycle => 10 GB/s at
 * 1.25 GHz) and 3 cycles of router+link latency per hop (Sec. V-A).
 *
 * Dimension-order (X then Y) routing with shortest-direction wraparound.
 * Contention is modelled at every traversed link, including the
 * injection and ejection ports, by per-link serialization: a packet of
 * S bytes occupies each link for ceil(S / 8) cycles.
 *
 * Intra-vault traffic (a PE talking to its own vault controller) uses
 * only the star's injection and ejection ports, never a torus link.
 *
 * ## Island partitioning
 *
 * The network can be split into islands (setPartition) so one run can
 * shard across host threads (see sim/island.hh and system/partition.hh).
 * Each island owns the packets, events, and link state of its nodes and
 * is ticked by exactly one thread; a packet hopping onto a node of
 * another island is handed over through a per-island-pair SPSC mailbox
 * that the receiving island drains only at quantum boundaries, so
 * intra-quantum execution is lock-free and thread-confined. Events are
 * processed in a canonical total order — (cycle, node, lane key) — in
 * both the serial and the island paths, which is what makes the two
 * bit-identical: same-cycle events at *different* nodes commute (they
 * touch disjoint link, slot, and vault state), and same-cycle events at
 * the *same* node are ordered the same way regardless of how many
 * islands processed the rest of the machine.
 */

#ifndef VIP_NOC_TORUS_HH
#define VIP_NOC_TORUS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/clocked.hh"
#include "sim/histogram.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vip {

class FaultInjector;

/**
 * Owned, type-erased cargo riding inside a packet (the system parks
 * the in-flight MemRequest here). Travelling *inside* the packet —
 * instead of in a side table indexed by a slot captured in onArrive —
 * is what lets a packet cross island threads: the payload is always
 * owned by whichever island currently holds the packet, and is freed
 * with it if the machine is torn down mid-flight.
 */
using PacketPayload = std::unique_ptr<void, void (*)(void *)>;

/** One message travelling between vault nodes. Move-only: it owns its
 *  payload. */
struct Packet
{
    unsigned src = 0;
    unsigned dst = 0;
    unsigned payloadBytes = 0;

    /**
     * Star-topology lane at each endpoint: lanes 0..3 are the four
     * PEs' private links to their vault router, lane 4 is the vault
     * controller's. Each lane is a separate physical link, so a PE's
     * injections never contend with its neighbors' (Sec. III-C).
     */
    unsigned srcLane = 4;
    unsigned dstLane = 4;

    /** Called at the cycle the packet is fully delivered at dst. In
     *  island mode this runs on the destination island's thread; the
     *  closure must only touch destination-island state. */
    std::function<void(Packet &)> onArrive;

    /** Owned cargo (see PacketPayload). */
    PacketPayload payload{nullptr, +[](void *) {}};

    Cycles injectedAt = 0;
    Cycles deliveredAt = 0;

    /** Internal: set once the ejection port has been reserved. */
    bool ejected = false;

    /** Delivery attempts so far (> 0 after an injected drop/CRC
     *  failure forced a retransmission). Saturates rather than wraps
     *  so a forced-drop campaign cannot recycle attempt identities. */
    std::uint16_t attempts = 0;

    /**
     * Per-source-lane sequence number, assigned by send(). Stable
     * across retransmissions. Together with the source lane it forms
     * the packet's canonical identity (TorusNoc::laneKeyOf): the event
     * tie-break and the deterministic fault-injection key. Per-lane —
     * not a global injection stamp — because each lane's send order is
     * island-local and deterministic, so the identity is the same for
     * any island count (a deterministic wrap after 2^32 packets per
     * lane keeps runs reproducible).
     */
    std::uint32_t seq = 0;
};

class TorusNoc : public Clocked
{
  public:
    /** Per-hop router+link latency (cycles). Also the conservative
     *  lookahead islands rely on: a cross-island packet launched at
     *  cycle t cannot arrive before t + kHopLatency + 1. */
    static constexpr Cycles kHopLatency = 3;
    /** Link width: 64 bit per direction per cycle. */
    static constexpr unsigned kBytesPerCycle = 8;
    /** Header overhead added to every packet's serialization. */
    static constexpr unsigned kHeaderBytes = 8;

    TorusNoc(unsigned xdim, unsigned ydim, StatGroup *parent = nullptr);

    unsigned numNodes() const { return xdim_ * ydim_; }
    unsigned nodeX(unsigned n) const { return n % xdim_; }
    unsigned nodeY(unsigned n) const { return n / xdim_; }
    unsigned nodeAt(unsigned x, unsigned y) const { return y * xdim_ + x; }

    /** Minimal hop count between two nodes on the torus. */
    unsigned hopCount(unsigned src, unsigned dst) const;

    /** Inject a packet at its source node at cycle @p now. In island
     *  mode, must be called from the source node's island thread. */
    void send(Packet pkt, Cycles now);

    /** Deliver every packet whose arrival time has been reached.
     *  Serial (single-island) entry point. */
    void tick(Cycles now) override;

    /** The network is purely event-driven: its next state change is
     *  the head of the (time-ordered) event queue. */
    Cycles nextEventAt(Cycles now) const override;

    bool idle() const;

    /** Packets delivered so far (merged counter plus any island
     *  tallies not yet flushed). */
    std::uint64_t delivered() const;

    /** Packets currently in flight (injected, not yet delivered). */
    std::size_t inFlight() const;

    /**
     * Attach a fault injector: each packet reaching its ejection port
     * rolls for loss/corruption and, on a hit, is retransmitted from
     * its source injection link (link-level retry). Null detaches.
     */
    void setFaultInjector(FaultInjector *f) { injector_ = f; }

    /** Distribution of packet latencies (cycles). */
    const Histogram &latencyHistogram() const { return latencyHist_; }

    double
    avgLatency() const
    {
        const auto n = delivered();
        const auto lat = statLatency_.value() + talliedLatency();
        return n == 0 ? 0.0
                      : static_cast<double>(lat) /
                            static_cast<double>(n);
    }

    /** Star lanes per node: four PEs plus the vault controller. */
    static constexpr unsigned kLanes = 5;

    /** Canonical, placement-independent packet identity:
     *  (source lane id << 32) | per-lane sequence number. */
    std::uint64_t
    laneKeyOf(const Packet &pkt) const
    {
        return (static_cast<std::uint64_t>(pkt.src * kLanes +
                                           pkt.srcLane)
                << 32) |
               pkt.seq;
    }

    // ---- Island partition API (see file comment) -------------------

    /**
     * Split the network into islands: @p island_of_node maps every
     * node to its island in [0, islands). Must be called before any
     * traffic. islands == 1 (the construction default) is the serial
     * path and is byte-identical to the pre-partition network.
     */
    void setPartition(const std::vector<unsigned> &island_of_node,
                      unsigned islands);

    unsigned islands() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** Deliver island-local events due by @p now. Island-mode analogue
     *  of tick(); call only from @p island's thread. */
    void tickIsland(unsigned island, Cycles now);

    /** Earliest event queued on @p island's nodes (mailboxes are the
     *  scheduler's job: undrained mail is not visible here). */
    Cycles islandNextEventAt(unsigned island, Cycles now) const;

    /** No events pending on @p island's nodes and nothing waiting in
     *  its outboxes. */
    bool islandIdle(unsigned island) const;

    /**
     * Move every packet mailed to @p island into its event queue
     * (quantum-boundary handover; the island barrier provides the
     * cross-thread ordering). Returns true if anything arrived.
     */
    bool drainInboxes(unsigned island);

    /** Packets delivered so far by @p island alone (thread-confined:
     *  the island's own progress report). */
    std::uint64_t islandDelivered(unsigned island) const;

    /**
     * Fold every island's deferred stat tallies into the shared
     * counters, in fixed island order (0, 1, ...). Called once per
     * run, from one thread, after the islands have joined. The serial
     * path updates the counters directly and never needs this.
     */
    void flushIslandStats();

  private:
    /** Link classes out of a router: four torus directions, then
     *  kLanes ejection and kLanes injection star links. */
    enum Port : unsigned
    {
        XPlus = 0,
        XMinus,
        YPlus,
        YMinus,
        EjectBase,                      // kLanes links
        InjectBase = EjectBase + kLanes, // kLanes links
        NumPorts = InjectBase + kLanes,
    };

    struct Event
    {
        Cycles at;
        std::size_t packetIndex;
        unsigned node;
        std::uint64_t key;  ///< laneKeyOf() — canonical tie-break

        /** Canonical total order (min-heap via std::greater): cycle,
         *  then node, then packet identity. Identical in the serial
         *  and island paths — the determinism linchpin. */
        bool
        operator>(const Event &o) const
        {
            if (at != o.at)
                return at > o.at;
            if (node != o.node)
                return node > o.node;
            return key > o.key;
        }
    };

    /**
     * One unit of cross-island handover, exchanged at quantum
     * boundaries. Plain data, written by exactly one producer island
     * during a quantum and consumed by exactly one receiver island
     * after the barrier — an SPSC mailbox whose synchronization is the
     * barrier itself, so the hot path needs no locks or atomics.
     * vip-lint knows this type is cross-thread by design; it is the
     * sanctioned way to move simulation state between islands.
     */
    struct Mail
    {
        Cycles at;      ///< when the event resumes at @c node
        unsigned node;  ///< node (in the receiving island) to resume at
        /** Retransmission handover: re-occupy @c node's injection lane
         *  from @c at instead of resuming a routed hop. */
        bool reinject;
        Packet pkt;
    };

    /** Everything one island owns: slot table, event heap, deferred
     *  stat tallies, and one outbox per destination island. */
    struct Shard
    {
        std::vector<Packet> packets;
        std::vector<std::size_t> freeSlots;
        std::priority_queue<Event, std::vector<Event>, std::greater<>>
            events;

        /** Deferred stats (multi-island mode only): merged into the
         *  shared counters by flushIslandStats() in island order. */
        std::uint64_t delivered = 0;
        std::uint64_t bytes = 0;
        std::uint64_t latencyTotal = 0;
        std::uint64_t hops = 0;
        Histogram hist;

        std::vector<std::vector<Mail>> outbox;  ///< one per island
    };

    std::size_t linkId(unsigned node, Port port) const
    {
        return node * NumPorts + port;
    }

    /** Next hop (node, port) toward dst using dimension-order routing. */
    std::pair<unsigned, Port> route(unsigned node, unsigned dst) const;

    /**
     * Occupy @p link from @p ready: returns the cycle the transfer
     * starts (>= ready) and bumps the link's next-free time.
     */
    Cycles occupy(std::size_t link, Cycles ready, unsigned bytes);

    std::size_t allocSlot(Shard &sh, Packet pkt);

    void advance(unsigned island, std::size_t packet_index,
                 unsigned node, Cycles now);

    unsigned xdim_;
    unsigned ydim_;

    /**
     * Per-link next-free cycles, indexed node * NumPorts + port. One
     * flat vector even in island mode: an event at node n only ever
     * occupies links *out of* n, and n belongs to exactly one island,
     * so the entries are naturally partitioned by island (disjoint
     * index ranges, no sharing).
     */
    std::vector<Cycles> linkFreeAt_;

    /** Per-source-lane sequence counters (node * kLanes + lane); each
     *  lane injects from one island only, so these partition the same
     *  way linkFreeAt_ does. */
    std::vector<std::uint32_t> laneSeq_;

    std::vector<unsigned> islandOf_;  ///< node -> owning island
    std::vector<Shard> shards_;       ///< size 1 = serial path

    FaultInjector *injector_ = nullptr;

    std::uint64_t talliedLatency() const;

    StatGroup statGroup_;
    Counter statDelivered_;
    Counter statBytes_;
    Counter statLatency_;
    Counter statHops_;
    Histogram latencyHist_;
};

} // namespace vip

#endif // VIP_NOC_TORUS_HH
