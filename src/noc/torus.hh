/**
 * @file
 * Packet-level model of VIP's on-chip network: an 8x4 2D torus of vault
 * routers with bidirectional 64-bit links (8 B/cycle => 10 GB/s at
 * 1.25 GHz) and 3 cycles of router+link latency per hop (Sec. V-A).
 *
 * Dimension-order (X then Y) routing with shortest-direction wraparound.
 * Contention is modelled at every traversed link, including the
 * injection and ejection ports, by per-link serialization: a packet of
 * S bytes occupies each link for ceil(S / 8) cycles.
 *
 * Intra-vault traffic (a PE talking to its own vault controller) uses
 * only the star's injection and ejection ports, never a torus link.
 */

#ifndef VIP_NOC_TORUS_HH
#define VIP_NOC_TORUS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/clocked.hh"
#include "sim/histogram.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vip {

class FaultInjector;

/** One message travelling between vault nodes. */
struct Packet
{
    unsigned src = 0;
    unsigned dst = 0;
    unsigned payloadBytes = 0;

    /**
     * Star-topology lane at each endpoint: lanes 0..3 are the four
     * PEs' private links to their vault router, lane 4 is the vault
     * controller's. Each lane is a separate physical link, so a PE's
     * injections never contend with its neighbors' (Sec. III-C).
     */
    unsigned srcLane = 4;
    unsigned dstLane = 4;

    /** Called at the cycle the packet is fully delivered at dst. */
    std::function<void(Packet &)> onArrive;

    Cycles injectedAt = 0;
    Cycles deliveredAt = 0;

    /** Internal: set once the ejection port has been reserved. */
    bool ejected = false;

    /** Delivery attempts so far (> 0 after an injected drop/CRC
     *  failure forced a retransmission). Saturates rather than wraps
     *  so a forced-drop campaign cannot recycle attempt identities. */
    std::uint16_t attempts = 0;

    /** Injection-order sequence number, assigned by send(). Stable
     *  across retransmissions — it is the packet's event identity for
     *  deterministic fault injection (a deterministic wrap after 2^32
     *  packets keeps runs reproducible). Narrow on purpose: together
     *  with `attempts` it fits the padding after `ejected`, keeping
     *  the hot slot table at its pre-fault-subsystem footprint. */
    std::uint32_t seq = 0;
};

class TorusNoc : public Clocked
{
  public:
    /** Per-hop router+link latency (cycles). */
    static constexpr Cycles kHopLatency = 3;
    /** Link width: 64 bit per direction per cycle. */
    static constexpr unsigned kBytesPerCycle = 8;
    /** Header overhead added to every packet's serialization. */
    static constexpr unsigned kHeaderBytes = 8;

    TorusNoc(unsigned xdim, unsigned ydim, StatGroup *parent = nullptr);

    unsigned numNodes() const { return xdim_ * ydim_; }
    unsigned nodeX(unsigned n) const { return n % xdim_; }
    unsigned nodeY(unsigned n) const { return n / xdim_; }
    unsigned nodeAt(unsigned x, unsigned y) const { return y * xdim_ + x; }

    /** Minimal hop count between two nodes on the torus. */
    unsigned hopCount(unsigned src, unsigned dst) const;

    /** Inject a packet at its source node at cycle @p now. */
    void send(Packet pkt, Cycles now);

    /** Deliver every packet whose arrival time has been reached. */
    void tick(Cycles now) override;

    /** The network is purely event-driven: its next state change is
     *  the head of the (time-ordered) event queue. */
    Cycles
    nextEventAt(Cycles now) const override
    {
        return events_.empty() ? kIdleForever
                               : std::max(events_.top().at, now);
    }

    bool idle() const { return events_.empty(); }

    /** Packets delivered so far. */
    std::uint64_t delivered() const { return statDelivered_.value(); }

    /** Packets currently in flight (injected, not yet delivered). */
    std::size_t
    inFlight() const
    {
        return packets_.size() - freeSlots_.size();
    }

    /**
     * Attach a fault injector: each packet reaching its ejection port
     * rolls for loss/corruption and, on a hit, is retransmitted from
     * its source injection link (link-level retry). Null detaches.
     */
    void setFaultInjector(FaultInjector *f) { injector_ = f; }

    /** Distribution of packet latencies (cycles). */
    const Histogram &latencyHistogram() const { return latencyHist_; }

    double
    avgLatency() const
    {
        const auto n = statDelivered_.value();
        return n == 0 ? 0.0
                      : static_cast<double>(statLatency_.value()) /
                            static_cast<double>(n);
    }

    /** Star lanes per node: four PEs plus the vault controller. */
    static constexpr unsigned kLanes = 5;

  private:
    /** Link classes out of a router: four torus directions, then
     *  kLanes ejection and kLanes injection star links. */
    enum Port : unsigned
    {
        XPlus = 0,
        XMinus,
        YPlus,
        YMinus,
        EjectBase,                      // kLanes links
        InjectBase = EjectBase + kLanes, // kLanes links
        NumPorts = InjectBase + kLanes,
    };

    struct Event
    {
        Cycles at;
        std::size_t packetIndex;
        unsigned node;

        bool operator>(const Event &o) const { return at > o.at; }
    };

    std::size_t linkId(unsigned node, Port port) const
    {
        return node * NumPorts + port;
    }

    /** Next hop (node, port) toward dst using dimension-order routing. */
    std::pair<unsigned, Port> route(unsigned node, unsigned dst) const;

    /**
     * Occupy @p link from @p ready: returns the cycle the transfer
     * starts (>= ready) and bumps the link's next-free time.
     */
    Cycles occupy(std::size_t link, Cycles ready, unsigned bytes);

    void advance(std::size_t packet_index, unsigned node, Cycles now);

    unsigned xdim_;
    unsigned ydim_;

    std::vector<Packet> packets_;      ///< slot table for in-flight packets
    std::vector<std::size_t> freeSlots_;
    std::vector<Cycles> linkFreeAt_;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;

    std::uint32_t nextSeq_ = 0;        ///< injection-order stamp
    FaultInjector *injector_ = nullptr;

    StatGroup statGroup_;
    Counter statDelivered_;
    Counter statBytes_;
    Counter statLatency_;
    Counter statHops_;
    Histogram latencyHist_;
};

} // namespace vip

#endif // VIP_NOC_TORUS_HH
