#include "noc/torus.hh"

#include <algorithm>

#include "sim/fault.hh"
#include "sim/logging.hh"

namespace vip {

TorusNoc::TorusNoc(unsigned xdim, unsigned ydim, StatGroup *parent)
    : xdim_(xdim), ydim_(ydim),
      linkFreeAt_(static_cast<std::size_t>(xdim) * ydim * NumPorts, 0),
      statGroup_("noc", parent),
      statDelivered_(&statGroup_, "delivered", "packets delivered"),
      statBytes_(&statGroup_, "bytes", "payload bytes delivered"),
      statLatency_(&statGroup_, "latency_total",
                   "sum of packet latencies (cycles)"),
      statHops_(&statGroup_, "hops_total", "torus hops traversed")
{
    vip_assert(xdim_ > 0 && ydim_ > 0, "degenerate torus");
}

unsigned
TorusNoc::hopCount(unsigned src, unsigned dst) const
{
    auto ringDist = [](unsigned a, unsigned b, unsigned dim) {
        const unsigned fwd = (b + dim - a) % dim;
        return std::min(fwd, dim - fwd);
    };
    return ringDist(nodeX(src), nodeX(dst), xdim_) +
           ringDist(nodeY(src), nodeY(dst), ydim_);
}

std::pair<unsigned, TorusNoc::Port>
TorusNoc::route(unsigned node, unsigned dst) const
{
    const unsigned x = nodeX(node), y = nodeY(node);
    const unsigned dx = nodeX(dst), dy = nodeY(dst);

    if (x != dx) {
        const unsigned fwd = (dx + xdim_ - x) % xdim_;
        const bool plus = fwd <= xdim_ - fwd;
        const unsigned nx = plus ? (x + 1) % xdim_ : (x + xdim_ - 1) % xdim_;
        return {nodeAt(nx, y), plus ? XPlus : XMinus};
    }
    vip_assert(y != dy, "route() called at destination");
    const unsigned fwd = (dy + ydim_ - y) % ydim_;
    const bool plus = fwd <= ydim_ - fwd;
    const unsigned ny = plus ? (y + 1) % ydim_ : (y + ydim_ - 1) % ydim_;
    return {nodeAt(x, ny), plus ? YPlus : YMinus};
}

Cycles
TorusNoc::occupy(std::size_t link, Cycles ready, unsigned bytes)
{
    const Cycles start = std::max(ready, linkFreeAt_[link]);
    const Cycles ser = (bytes + kBytesPerCycle - 1) / kBytesPerCycle;
    linkFreeAt_[link] = start + ser;
    return start;
}

void
TorusNoc::send(Packet pkt, Cycles now)
{
    vip_assert(pkt.src < numNodes() && pkt.dst < numNodes(),
               "packet endpoints out of range");
    pkt.injectedAt = now;
    pkt.seq = nextSeq_++;

    std::size_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
        packets_[slot] = std::move(pkt);
    } else {
        slot = packets_.size();
        packets_.push_back(std::move(pkt));
    }

    vip_assert(pkt.srcLane < kLanes && pkt.dstLane < kLanes,
               "bad star lane");
    const unsigned bytes = packets_[slot].payloadBytes + kHeaderBytes;
    const Cycles start = occupy(
        linkId(packets_[slot].src,
               static_cast<Port>(InjectBase + packets_[slot].srcLane)),
        now, bytes);
    const Cycles ser = (bytes + kBytesPerCycle - 1) / kBytesPerCycle;
    events_.push({start + ser, slot, packets_[slot].src});
}

void
TorusNoc::advance(std::size_t packet_index, unsigned node, Cycles now)
{
    Packet &pkt = packets_[packet_index];
    const unsigned bytes = pkt.payloadBytes + kHeaderBytes;
    const Cycles ser = (bytes + kBytesPerCycle - 1) / kBytesPerCycle;

    if (node == pkt.dst) {
        if (!pkt.ejected) {
            if (injector_ &&
                injector_->onNocArrival(pkt.seq, pkt.attempts) !=
                    FaultInjector::NocVerdict::Deliver) {
                // Lost at the ejection port (dropped flit or link CRC
                // failure): the link-level retry re-injects the whole
                // packet from its source, re-paying serialization on
                // the injection link and every hop. injectedAt is
                // preserved so latency statistics absorb the retry.
                if (pkt.attempts < UINT16_MAX)
                    ++pkt.attempts;
                const Cycles start = occupy(
                    linkId(pkt.src,
                           static_cast<Port>(InjectBase + pkt.srcLane)),
                    now, bytes);
                events_.push({start + ser, packet_index, pkt.src});
                return;
            }
            // Reserve the ejection port; deliver when the tail clears it.
            const Cycles start = occupy(
                linkId(node, static_cast<Port>(EjectBase + pkt.dstLane)),
                now, bytes);
            pkt.ejected = true;
            pkt.deliveredAt = start + ser;
            events_.push({pkt.deliveredAt, packet_index, node});
            return;
        }
        statDelivered_ += 1;
        statBytes_ += pkt.payloadBytes;
        statLatency_ += pkt.deliveredAt - pkt.injectedAt;
        latencyHist_.sample(pkt.deliveredAt - pkt.injectedAt);
        if (pkt.onArrive)
            pkt.onArrive(pkt);
        freeSlots_.push_back(packet_index);
        return;
    }

    const auto [next, port] = route(node, pkt.dst);
    const Cycles start = occupy(linkId(node, port), now, bytes);
    statHops_ += 1;
    events_.push({start + kHopLatency + ser, packet_index, next});
}

void
TorusNoc::tick(Cycles now)
{
    while (!events_.empty() && events_.top().at <= now) {
        const Event ev = events_.top();
        events_.pop();
        advance(ev.packetIndex, ev.node, ev.at);
    }
}

} // namespace vip
