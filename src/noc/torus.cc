#include "noc/torus.hh"

#include <algorithm>
#include <utility>

#include "sim/fault.hh"
#include "sim/logging.hh"

namespace vip {

TorusNoc::TorusNoc(unsigned xdim, unsigned ydim, StatGroup *parent)
    : xdim_(xdim), ydim_(ydim),
      linkFreeAt_(static_cast<std::size_t>(xdim) * ydim * NumPorts, 0),
      laneSeq_(static_cast<std::size_t>(xdim) * ydim * kLanes, 0),
      islandOf_(static_cast<std::size_t>(xdim) * ydim, 0),
      shards_(1),
      statGroup_("noc", parent),
      statDelivered_(&statGroup_, "delivered", "packets delivered"),
      statBytes_(&statGroup_, "bytes", "payload bytes delivered"),
      statLatency_(&statGroup_, "latency_total",
                   "sum of packet latencies (cycles)"),
      statHops_(&statGroup_, "hops_total", "torus hops traversed")
{
    vip_assert(xdim_ > 0 && ydim_ > 0, "degenerate torus");
    shards_[0].outbox.resize(1);
}

void
TorusNoc::setPartition(const std::vector<unsigned> &island_of_node,
                       unsigned islands)
{
    vip_assert(islands >= 1, "need at least one island");
    vip_assert(island_of_node.size() == numNodes(),
               "partition map does not cover the torus");
    for (Shard &sh : shards_)
        vip_assert(sh.events.empty() && sh.packets.size() ==
                                            sh.freeSlots.size(),
                   "repartitioning a network with traffic in flight");
    for (const unsigned i : island_of_node)
        vip_assert(i < islands, "node mapped past the last island");
    islandOf_ = island_of_node;
    shards_.clear();
    shards_.resize(islands);
    for (Shard &sh : shards_)
        sh.outbox.resize(islands);
}

unsigned
TorusNoc::hopCount(unsigned src, unsigned dst) const
{
    auto ringDist = [](unsigned a, unsigned b, unsigned dim) {
        const unsigned fwd = (b + dim - a) % dim;
        return std::min(fwd, dim - fwd);
    };
    return ringDist(nodeX(src), nodeX(dst), xdim_) +
           ringDist(nodeY(src), nodeY(dst), ydim_);
}

std::pair<unsigned, TorusNoc::Port>
TorusNoc::route(unsigned node, unsigned dst) const
{
    const unsigned x = nodeX(node), y = nodeY(node);
    const unsigned dx = nodeX(dst), dy = nodeY(dst);

    if (x != dx) {
        const unsigned fwd = (dx + xdim_ - x) % xdim_;
        const bool plus = fwd <= xdim_ - fwd;
        const unsigned nx = plus ? (x + 1) % xdim_ : (x + xdim_ - 1) % xdim_;
        return {nodeAt(nx, y), plus ? XPlus : XMinus};
    }
    vip_assert(y != dy, "route() called at destination");
    const unsigned fwd = (dy + ydim_ - y) % ydim_;
    const bool plus = fwd <= ydim_ - fwd;
    const unsigned ny = plus ? (y + 1) % ydim_ : (y + ydim_ - 1) % ydim_;
    return {nodeAt(x, ny), plus ? YPlus : YMinus};
}

Cycles
TorusNoc::occupy(std::size_t link, Cycles ready, unsigned bytes)
{
    const Cycles start = std::max(ready, linkFreeAt_[link]);
    const Cycles ser = (bytes + kBytesPerCycle - 1) / kBytesPerCycle;
    linkFreeAt_[link] = start + ser;
    return start;
}

std::size_t
TorusNoc::allocSlot(Shard &sh, Packet pkt)
{
    if (!sh.freeSlots.empty()) {
        const std::size_t slot = sh.freeSlots.back();
        sh.freeSlots.pop_back();
        sh.packets[slot] = std::move(pkt);
        return slot;
    }
    sh.packets.push_back(std::move(pkt));
    return sh.packets.size() - 1;
}

void
TorusNoc::send(Packet pkt, Cycles now)
{
    vip_assert(pkt.src < numNodes() && pkt.dst < numNodes(),
               "packet endpoints out of range");
    vip_assert(pkt.srcLane < kLanes && pkt.dstLane < kLanes,
               "bad star lane");
    pkt.injectedAt = now;
    pkt.seq = laneSeq_[pkt.src * kLanes + pkt.srcLane]++;

    Shard &sh = shards_[islandOf_[pkt.src]];
    const std::size_t slot = allocSlot(sh, std::move(pkt));
    Packet &p = sh.packets[slot];

    const unsigned bytes = p.payloadBytes + kHeaderBytes;
    const Cycles start = occupy(
        linkId(p.src, static_cast<Port>(InjectBase + p.srcLane)), now,
        bytes);
    const Cycles ser = (bytes + kBytesPerCycle - 1) / kBytesPerCycle;
    sh.events.push({start + ser, slot, p.src, laneKeyOf(p)});
}

void
TorusNoc::advance(unsigned island, std::size_t packet_index,
                  unsigned node, Cycles now)
{
    Shard &sh = shards_[island];
    Packet &pkt = sh.packets[packet_index];
    const unsigned bytes = pkt.payloadBytes + kHeaderBytes;
    const Cycles ser = (bytes + kBytesPerCycle - 1) / kBytesPerCycle;
    const bool serial = shards_.size() == 1;

    if (node == pkt.dst) {
        if (!pkt.ejected) {
            if (injector_ &&
                injector_->onNocArrival(laneKeyOf(pkt), pkt.attempts) !=
                    FaultInjector::NocVerdict::Deliver) {
                // Lost at the ejection port (dropped flit or link CRC
                // failure): the link-level retry re-injects the whole
                // packet from its source, re-paying serialization on
                // the injection link and every hop. injectedAt is
                // preserved so latency statistics absorb the retry.
                if (pkt.attempts < UINT16_MAX)
                    ++pkt.attempts;
                const unsigned home = islandOf_[pkt.src];
                if (home != island) {
                    // Cross-island retry: the verdict lands on the
                    // destination island but the injection link lives
                    // on the source island, so hand the packet back by
                    // mail; the source re-occupies its lane when it
                    // drains (documented timing divergence for faulty
                    // cross-island traffic, see docs/INTERNALS.md).
                    Packet moved = std::move(pkt);
                    sh.freeSlots.push_back(packet_index);
                    sh.outbox[home].push_back(
                        {now, moved.src, true, std::move(moved)});
                    return;
                }
                const Cycles start = occupy(
                    linkId(pkt.src,
                           static_cast<Port>(InjectBase + pkt.srcLane)),
                    now, bytes);
                sh.events.push(
                    {start + ser, packet_index, pkt.src, laneKeyOf(pkt)});
                return;
            }
            // Reserve the ejection port; deliver when the tail clears it.
            const Cycles start = occupy(
                linkId(node, static_cast<Port>(EjectBase + pkt.dstLane)),
                now, bytes);
            pkt.ejected = true;
            pkt.deliveredAt = start + ser;
            sh.events.push(
                {pkt.deliveredAt, packet_index, node, laneKeyOf(pkt)});
            return;
        }
        const Cycles latency = pkt.deliveredAt - pkt.injectedAt;
        if (serial) {
            statDelivered_ += 1;
            statBytes_ += pkt.payloadBytes;
            statLatency_ += latency;
            latencyHist_.sample(latency);
        } else {
            sh.delivered += 1;
            sh.bytes += pkt.payloadBytes;
            sh.latencyTotal += latency;
            sh.hist.sample(latency);
        }
        if (pkt.onArrive)
            pkt.onArrive(pkt);
        sh.freeSlots.push_back(packet_index);
        return;
    }

    const auto [next, port] = route(node, pkt.dst);
    const Cycles start = occupy(linkId(node, port), now, bytes);
    if (serial)
        statHops_ += 1;
    else
        sh.hops += 1;
    const Cycles at = start + kHopLatency + ser;
    const unsigned dst_island = islandOf_[next];
    if (dst_island != island) {
        // Handing the packet over at the island boundary: the event
        // resumes on the neighbor's heap after its next inbox drain.
        // Conservative-quantum guarantee: at >= now + kHopLatency + 1
        // (ser >= 1 for the 8-byte header), so with quanta of
        // kHopLatency + 1 cycles the event is never already overdue
        // when the neighbor picks it up.
        Packet moved = std::move(pkt);
        sh.freeSlots.push_back(packet_index);
        sh.outbox[dst_island].push_back(
            {at, next, false, std::move(moved)});
        return;
    }
    sh.events.push({at, packet_index, next, laneKeyOf(pkt)});
}

void
TorusNoc::tick(Cycles now)
{
    vip_assert(shards_.size() == 1,
               "tick() is the serial path; islands use tickIsland()");
    tickIsland(0, now);
}

void
TorusNoc::tickIsland(unsigned island, Cycles now)
{
    auto &events = shards_[island].events;
    while (!events.empty() && events.top().at <= now) {
        const Event ev = events.top();
        events.pop();
        advance(island, ev.packetIndex, ev.node, ev.at);
    }
}

Cycles
TorusNoc::nextEventAt(Cycles now) const
{
    Cycles next = kIdleForever;
    for (unsigned i = 0; i < shards_.size(); ++i)
        next = std::min(next, islandNextEventAt(i, now));
    return next;
}

Cycles
TorusNoc::islandNextEventAt(unsigned island, Cycles now) const
{
    const auto &events = shards_[island].events;
    if (events.empty())
        return kIdleForever;
    return std::max(events.top().at, now);
}

bool
TorusNoc::islandIdle(unsigned island) const
{
    const Shard &sh = shards_[island];
    if (!sh.events.empty())
        return false;
    for (const auto &box : sh.outbox)
        if (!box.empty())
            return false;
    return true;
}

bool
TorusNoc::idle() const
{
    for (unsigned i = 0; i < shards_.size(); ++i)
        if (!islandIdle(i))
            return false;
    return true;
}

bool
TorusNoc::drainInboxes(unsigned island)
{
    bool any = false;
    Shard &mine = shards_[island];
    for (Shard &src : shards_) {
        auto &box = src.outbox[island];
        for (Mail &m : box) {
            const Cycles at = m.at;
            const unsigned node = m.node;
            const bool reinject = m.reinject;
            const std::size_t slot = allocSlot(mine, std::move(m.pkt));
            Packet &p = mine.packets[slot];
            if (reinject) {
                // Retransmission handed back by the destination
                // island: occupy our injection lane now that we own
                // the packet again.
                const unsigned bytes = p.payloadBytes + kHeaderBytes;
                const Cycles start = occupy(
                    linkId(p.src,
                           static_cast<Port>(InjectBase + p.srcLane)),
                    at, bytes);
                const Cycles ser =
                    (bytes + kBytesPerCycle - 1) / kBytesPerCycle;
                mine.events.push(
                    {start + ser, slot, p.src, laneKeyOf(p)});
            } else {
                mine.events.push({at, slot, node, laneKeyOf(p)});
            }
            any = true;
        }
        box.clear();
    }
    return any;
}

std::uint64_t
TorusNoc::islandDelivered(unsigned island) const
{
    return shards_[island].delivered;
}

std::uint64_t
TorusNoc::delivered() const
{
    std::uint64_t n = statDelivered_.value();
    for (const Shard &sh : shards_)
        n += sh.delivered;
    return n;
}

std::uint64_t
TorusNoc::talliedLatency() const
{
    std::uint64_t lat = 0;
    for (const Shard &sh : shards_)
        lat += sh.latencyTotal;
    return lat;
}

std::size_t
TorusNoc::inFlight() const
{
    std::size_t n = 0;
    for (const Shard &sh : shards_) {
        n += sh.packets.size() - sh.freeSlots.size();
        for (const auto &box : sh.outbox)
            n += box.size();
    }
    return n;
}

void
TorusNoc::flushIslandStats()
{
    for (Shard &sh : shards_) {
        statDelivered_ += sh.delivered;
        statBytes_ += sh.bytes;
        statLatency_ += sh.latencyTotal;
        statHops_ += sh.hops;
        latencyHist_.merge(sh.hist);
        sh.delivered = sh.bytes = sh.latencyTotal = sh.hops = 0;
        sh.hist.reset();
    }
}

} // namespace vip
