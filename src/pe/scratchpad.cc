#include "pe/scratchpad.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vip {

void
Scratchpad::read(SpAddr addr, void *dst, unsigned bytes) const
{
    vip_assert(addr + bytes <= kBytes, "scratchpad read [", addr, ", ",
               addr + bytes, ") out of bounds");
    std::memcpy(dst, data_.data() + addr, bytes);
}

void
Scratchpad::write(SpAddr addr, const void *src, unsigned bytes)
{
    vip_assert(addr + bytes <= kBytes, "scratchpad write [", addr, ", ",
               addr + bytes, ") out of bounds");
    std::memcpy(data_.data() + addr, src, bytes);
}

void
Scratchpad::markReadyAt(SpAddr addr, unsigned bytes, Cycles at)
{
    vip_assert(addr + bytes <= kBytes, "scratchpad mark out of bounds");
    for (unsigned i = 0; i < bytes; ++i)
        readyAt_[addr + i] = std::max(readyAt_[addr + i], at);
}

void
Scratchpad::markReadyStream(SpAddr addr, unsigned bytes, Cycles base)
{
    vip_assert(addr + bytes <= kBytes, "scratchpad mark out of bounds");
    for (unsigned i = 0; i < bytes; ++i) {
        readyAt_[addr + i] = std::max(readyAt_[addr + i], base + i / 8);
    }
}

bool
Scratchpad::hazardousStreamRead(SpAddr addr, unsigned bytes,
                                Cycles base) const
{
    vip_assert(addr + bytes <= kBytes, "scratchpad query out of bounds");
    for (unsigned i = 0; i < bytes; ++i) {
        if (readyAt_[addr + i] > base + i / 8)
            return true;
    }
    return false;
}

Cycles
Scratchpad::readyAt(SpAddr addr, unsigned bytes) const
{
    vip_assert(addr + bytes <= kBytes, "scratchpad query out of bounds");
    Cycles latest = 0;
    for (unsigned i = 0; i < bytes; ++i)
        latest = std::max(latest, readyAt_[addr + i]);
    return latest;
}

} // namespace vip
