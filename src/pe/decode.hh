/**
 * @file
 * Decoded-µop trace cache for the PE front end.
 *
 * The interpreter in pe.cc used to re-run two switch ladders per
 * simulated cycle: the opcode dispatch in Pe::tick and the per-issue
 * operand/kernel selection inside Pe::issue*. This module hoists all
 * of that to program-load time: translateProgram() turns each static
 * Instruction into a dense Uop whose issue-path class, gating-register
 * set, operand widths and width-specialized vector kernels are already
 * resolved, so the per-cycle loop replays a flat array.
 *
 * On top of the µop stream it also computes, per program counter, the
 * straight-line *fast block* starting there: the longest run of µops
 * that provably cannot stall once its live-in registers are ready —
 * scalar ALU ops, set.vl/set.mr, nops, and at most one terminating
 * branch/jump; nothing that touches the LSQ, the ARC table, the
 * scratchpad streams, or DRAM. A fast block's register effects can be
 * executed functionally in one step with its timing charged in bulk
 * (see Pe::tryFastPath); any µop outside these classes ends the block
 * and takes the cycle-accurate path. Translation is pure and
 * deterministic — the tables are a function of the program text only —
 * so the fast path changes host time, never simulated observables.
 */

#ifndef VIP_PE_DECODE_HH
#define VIP_PE_DECODE_HH

#include <cstdint>
#include <vector>

#include "isa/isa.hh"

namespace vip {

/*
 * Width-specialized vector kernels (moved here from pe.cc so they can
 * be pre-resolved at translation time): the instruction selects one
 * fully-specialized function pointer whose inner loop is branch-free
 * element arithmetic on raw scratchpad bytes.
 */
using VecVecFn = void (*)(std::uint8_t *, const std::uint8_t *,
                          const std::uint8_t *, unsigned);
using VecScalarFn = void (*)(std::uint8_t *, const std::uint8_t *,
                             std::int64_t, unsigned);
using MatVecRowFn = std::int64_t (*)(const std::uint8_t *,
                                     const std::uint8_t *, unsigned);

VecVecFn vecVecFnFor(ElemWidth w, VecOp op);
VecScalarFn vecScalarFnFor(ElemWidth w, VecOp op);
MatVecRowFn matVecRowFnFor(ElemWidth w, VecOp vop, RedOp rop);

/** 64-bit scalar ALU semantics (shifts mask to 6 bits, Srl/Sll via
 *  unsigned arithmetic). Shared by the interpreter and the fast path. */
std::int64_t applyScalarOp(ScalarOp op, std::int64_t a, std::int64_t b);

/** Signed saturation of a 64-bit value to an element width. */
std::int64_t saturateToWidth(std::int64_t v, ElemWidth w);

/** Issue path a µop dispatches to — the tick() switch, pre-selected. */
enum class UopClass : std::uint8_t {
    Config,  ///< set.vl / set.mr
    Drain,   ///< v.drain
    Vector,  ///< m.v / v.v / v.s
    Scalar,  ///< scalar ALU, mov, mov-immediate
    Branch,  ///< conditional branch / jmp
    Memory,  ///< ld.sram / st.sram / ld.reg / st.reg
    Fence,   ///< memfence
    Halt,
    Nop,
};

/** Operand shape of a Scalar-class µop. */
enum class ScalarForm : std::uint8_t {
    RR,  ///< rd <- rs1 op rs2
    RI,  ///< rd <- rs1 op imm (mov folds to rs1 | 0 here)
    Imm, ///< rd <- imm (no gating registers)
};

/** One pre-decoded µop: dispatch class, gating registers and kernels
 *  resolved once so issue re-runs no switch ladder. */
struct Uop
{
    UopClass cls = UopClass::Nop;
    Opcode op = Opcode::Nop;     ///< architectural opcode (subtype)
    ScalarForm form = ScalarForm::Imm;
    ScalarOp sop = ScalarOp::Add;
    BranchCond cond = BranchCond::Lt;
    ElemWidth width = ElemWidth::W16;
    VecOp vop = VecOp::Nop;
    RedOp rop = RedOp::Add;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::uint8_t nGating = 0;    ///< registers gating issue (<= 3)
    std::uint8_t gating[3] = {0, 0, 0};
    unsigned wBytes = 2;         ///< widthBytes(width)
    std::int64_t imm = 0;
    VecVecFn vecVec = nullptr;       ///< v.v kernel, pre-resolved
    VecScalarFn vecScalar = nullptr; ///< v.s kernel, pre-resolved
    MatVecRowFn matVecRow = nullptr; ///< m.v row kernel, pre-resolved
};

/**
 * The stall-free straight-line block starting at one program counter
 * (len == 0: the µop here is not fast-path eligible). Register masks
 * are bitsets over the 64 scalar registers.
 */
struct FastBlock
{
    std::uint16_t len = 0;      ///< µops in the block (incl. terminator)
    std::uint64_t liveIn = 0;   ///< registers read before written
    std::uint64_t writes = 0;   ///< registers the block writes
};

/** A translated program: the µop stream plus per-pc fast-block table. */
struct DecodedProgram
{
    std::vector<Uop> uops;
    std::vector<FastBlock> blocks;
    std::size_t entryPoints = 0; ///< pcs from which a fast block starts

    void clear()
    {
        uops.clear();
        blocks.clear();
        entryPoints = 0;
    }
};

/** Translate one instruction (the oracle path re-translates per issue;
 *  the cached path calls this once per static instruction). */
Uop translateUop(const Instruction &inst);

/** Translate a program once at load; pure and deterministic. */
DecodedProgram translateProgram(const std::vector<Instruction> &prog);

} // namespace vip

#endif // VIP_PE_DECODE_HH
