#include "pe/arc.hh"

#include "sim/logging.hh"

namespace vip {

ArcTable::ArcTable(unsigned entries) : entries_(entries)
{
    vip_assert(entries > 0, "ARC needs at least one entry");
}

int
ArcTable::allocate(SpAddr start, SpAddr end)
{
    vip_assert(start < end, "empty ARC range");
    if (full())
        return -1;
    for (unsigned i = 0; i < entries_.size(); ++i) {
        if (!entries_[i].live) {
            entries_[i] = {start, end, true};
            ++liveCount_;
            return static_cast<int>(i);
        }
    }
    return -1;
}

void
ArcTable::clear(int id)
{
    vip_assert(id >= 0 && id < static_cast<int>(entries_.size()),
               "bad ARC id");
    vip_assert(entries_[id].live, "clearing a dead ARC entry");
    entries_[id].live = false;
    --liveCount_;
}

bool
ArcTable::overlaps(SpAddr start, SpAddr end) const
{
    for (const auto &e : entries_) {
        if (e.live && start < e.end && e.start < end)
            return true;
    }
    return false;
}

} // namespace vip
