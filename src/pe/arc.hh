/**
 * @file
 * Array range check (ARC): the associative array that detects hazards
 * between in-flight DRAM->scratchpad loads and later instructions
 * (Sec. III-B).
 *
 * An entry holding [start, end) is created when a ld.sram issues and
 * cleared when the load's data has been written to the scratchpad. Any
 * instruction whose scratchpad operands overlap a live entry must stall
 * in the issue stage. The paper's table has twenty entries (more would
 * strain the 0.8 ns cycle); the size is a constructor parameter here so
 * the ablation bench can sweep it. Issue also stalls when a new load
 * finds the table full.
 *
 * The paper notes the ARC could additionally interlock the vector
 * pipeline's own output ranges, freeing the programmer from latency
 * scheduling at the cost of a bigger table and more lookups; the PE
 * model exposes that option (PeConfig::arcCoversVector) and the
 * ablation bench measures it.
 */

#ifndef VIP_PE_ARC_HH
#define VIP_PE_ARC_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace vip {

class ArcTable
{
  public:
    /** The paper's synthesized configuration. */
    static constexpr unsigned kEntries = 20;

    explicit ArcTable(unsigned entries = kEntries);

    /** Allocate an entry for [start, end). Returns the entry id, or -1
     *  when the table is full (issue must stall). */
    int allocate(SpAddr start, SpAddr end);

    /** Clear entry @p id when its load completes. */
    void clear(int id);

    /** True if [start, end) overlaps any live entry. */
    bool overlaps(SpAddr start, SpAddr end) const;

    bool full() const { return liveCount_ == entries_.size(); }
    unsigned liveCount() const { return liveCount_; }
    unsigned capacity() const
    {
        return static_cast<unsigned>(entries_.size());
    }

  private:
    struct Entry
    {
        SpAddr start = 0;
        SpAddr end = 0;
        bool live = false;
    };

    std::vector<Entry> entries_;
    unsigned liveCount_ = 0;
};

} // namespace vip

#endif // VIP_PE_ARC_HH
