/**
 * @file
 * Cycle-level model of one VIP processing engine (Sec. III-B).
 *
 * Pipeline structure (matching Fig. 1): a unified fetch/decode/issue
 * front end feeding three independent back ends — the vector unit
 * (vertical element-wise stage chained into a horizontal reduction
 * stage, 64-bit subword datapath), the scalar unit (64 x 64-bit
 * register file with per-register valid bits), and the load-store unit
 * (64 outstanding accesses). Issue is strictly in order: a stalled
 * instruction stalls everything behind it. Completion is out of order
 * and there are no precise exceptions.
 *
 * Functional execution happens at issue, in program order; timing is
 * tracked alongside (vector completion times, DRAM round trips,
 * register valid bits). The vector pipeline's latency is exposed to the
 * programmer exactly as in the paper: the issue stage does *not*
 * interlock on scratchpad ranges written by earlier vector
 * instructions. A built-in hazard checker records (or, in strict mode,
 * panics on) reads scheduled inside a producer's timing shadow, which
 * is how we verify that generated kernels are legally scheduled.
 */

#ifndef VIP_PE_PE_HH
#define VIP_PE_PE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "isa/isa.hh"
#include "mem/addrmap.hh"
#include "mem/request.hh"
#include "mem/storage.hh"
#include "pe/arc.hh"
#include "pe/decode.hh"
#include "pe/scratchpad.hh"
#include "sim/clocked.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vip {

class FaultInjector;

/** Static configuration of one PE. */
struct PeConfig
{
    unsigned peId = 0;        ///< global PE id (0..127)
    unsigned vault = 0;       ///< home vault
    unsigned lsqEntries = 64; ///< outstanding loads/stores (Sec. III-B)
    unsigned arcEntries = ArcTable::kEntries; ///< ARC table size
    unsigned mulStages = 4;   ///< multiplier pipeline depth
    unsigned aluStages = 1;   ///< add-like vertical op latency
    unsigned reduceStages = 2; ///< horizontal unit latency
    bool strictHazards = false; ///< panic on vector timing hazards
    bool enableReduction = true; ///< false emulates a no-reduction ISA

    /**
     * Also allocate ARC entries for vector-pipeline destination
     * ranges, interlocking issue on every scratchpad hazard — the
     * hardware alternative to exposed latency the paper sketches in
     * Sec. III-B (bigger table, extra lookups, more power) in exchange
     * for schedule-free correctness.
     */
    bool arcCoversVector = false;

    /**
     * Replay the decoded-µop stream and execute stall-free basic
     * blocks functionally in bulk (see decode.hh). A host-speed knob
     * only — results are bit-identical either way — so it is not part
     * of the serialized PE-config JSON. False keeps the per-cycle
     * interpreter as the oracle.
     */
    bool fastPath = true;

    /**
     * Most cycles one fast-path tick may charge in bulk. Bounded so a
     * progress bump lands inside every watchdog window (the system
     * clamps this to half its watchdog period) — a mega-loop executed
     * natively would otherwise look like a hang to the deadlock check.
     */
    Cycles fastPathChunk = 65536;
};

/** How the PE hands memory transactions to the system. */
using MemIssueFn = std::function<void(std::unique_ptr<MemRequest>)>;

class Pe : public Clocked
{
  public:
    Pe(const PeConfig &cfg, DramStorage &dram, const AddressMapper &mapper,
       MemIssueFn issue, StatGroup *parent);

    /** Load a program and reset PC; registers are preserved so the host
     *  can pass arguments via setReg() before or after. */
    void loadProgram(std::vector<Instruction> prog);

    /** Host interface: seed an argument register. */
    void setReg(unsigned r, std::uint64_t v);
    std::uint64_t reg(unsigned r) const;

    /** Per-issue trace hook: (cycle, pc, instruction). */
    using Tracer =
        std::function<void(Cycles, std::size_t, const Instruction &)>;

    void setTracer(Tracer t) { tracer_ = std::move(t); }

    /** Advance one clock cycle (issue at most one instruction). */
    void tick(Cycles now) override;

    /**
     * Exclusive cycle bound of the current run: the fast path never
     * charges a block past it, so `run(N)` observes the same
     * cut-mid-loop architectural state either way (the partial final
     * block falls back to per-µop issue). VipSystem sets this at the
     * top of every run; the default never limits.
     */
    void setRunDeadline(Cycles deadline) { runDeadline_ = deadline; }

    /**
     * Earliest cycle the front end could make progress again. An
     * actively issuing PE reports @p now; a PE stalled on a resource
     * with a known completion time (vector occupancy, a register's
     * valid cycle, a pipeline ARC retirement, v.drain) reports that
     * time; a PE waiting on a memory response (or halted) reports
     * kIdleForever — the response is an event of the NoC/vault that
     * will deliver it.
     */
    Cycles nextEventAt(Cycles now) const override;

    /**
     * Replicate the per-cycle stall accounting for skipped cycles
     * [from, to): the stall reason recorded at the last tick cannot
     * change inside a warp window, so the same counter is charged.
     */
    void fastForward(Cycles from, Cycles to) override;

    bool halted() const { return halted_; }

    /** Halted with no outstanding memory traffic. */
    bool idle() const { return halted_ && lsqLive_ == 0; }

    /**
     * Attach a fault injector: functional DRAM reads/writes pass
     * through it (transient flips + ECC scrub on the read path) and
     * each issued instruction rolls for a scratchpad upset. Null
     * detaches; the hooks cost nothing when detached.
     */
    void setFaultInjector(FaultInjector *f) { injector_ = f; }

    // --- deadlock-diagnosis observers (see VipSystem::run) ---

    /** Current program counter. */
    std::size_t pc() const { return pc_; }

    /** Outstanding LSQ entries (issued, response not yet seen). */
    unsigned lsqOutstanding() const { return lsqLive_; }

    /**
     * Why the front end is not issuing: the stall counter charged at
     * the last tick ("stall_lsq", "stall_scalar", ...), "halted" when
     * halted, or "ready" when actively issuing.
     */
    std::string stallReason() const;

    /** The instruction at the PC, or null when halted/out of range. */
    const Instruction *currentInstruction() const;

    Scratchpad &scratchpad() { return scratchpad_; }
    const Scratchpad &scratchpad() const { return scratchpad_; }

    const PeConfig &config() const { return cfg_; }

    /** Observable statistics. */
    struct Stats
    {
        Counter instructions;
        Counter vectorInstructions;
        Counter vectorLaneOps;   ///< 16-bit-equivalent ALU ops (Sec. VI-A)
        Counter stallScalar;
        Counter stallVectorBusy;
        Counter stallArc;
        Counter stallLsq;
        Counter stallFence;
        Counter stallDrain;
        Counter dramReadBytes;
        Counter dramWriteBytes;
        Counter timingHazards;
        Counter busyCycles;
    };

    const Stats &stats() const { return stats_; }

    /**
     * µop-cache / fast-path observability. These counters measure the
     * host-side execution strategy, not the simulated machine, so they
     * live in a standalone StatGroup *outside* the system stats tree:
     * RunResult counters (and thus run JSON, fingerprinted cache
     * entries, and every bit-identity test) are unchanged by the fast
     * path being on or off.
     */
    struct FastPathStats
    {
        Counter uopsTranslated;   ///< static instructions decoded
        Counter blocksTranslated; ///< pcs starting a fast block
        Counter blockRuns;        ///< blocks executed functionally
        Counter fastUops;         ///< µops retired via the fast path
        Counter fallbackIneligible; ///< block table says not eligible
        Counter fallbackRegs;     ///< live-in register not ready
        Counter fallbackPendingLoad; ///< block writes an ld.reg target
        Counter fallbackHorizon;  ///< chunk/deadline cut the block
        Counter fallbackTracer;   ///< tracer attached (per-µop only)
    };

    const FastPathStats &fastPathStats() const { return fpStats_; }

    /** The standalone "pe<N>.fastpath" group holding FastPathStats. */
    const StatGroup &fastPathGroup() const { return fpGroup_; }

    /** Pool the PE's DRAM request descriptors recycle through. */
    const MemRequestPool &requestPool() const { return reqPool_; }

    /** Total 16-bit-equivalent vector ALU operations executed. */
    std::uint64_t vectorOps() const { return stats_.vectorLaneOps.value(); }

  private:
    // --- issue helpers; each returns true when the µop issued.
    // All issue-path semantics take pre-decoded Uops; the oracle mode
    // (fastPath off) re-translates the Instruction at the PC every
    // tick, so both modes execute the one and only semantic path.
    bool issueUop(const Uop &u, Cycles now);
    bool issueScalar(const Uop &u, Cycles now);
    bool issueBranch(const Uop &u, Cycles now);
    bool issueVector(const Uop &u, Cycles now);
    bool issueMemory(const Uop &u, Cycles now);
    bool issueConfig(const Uop &u, Cycles now);

    bool regsReady(const Uop &u, Cycles now) const;
    bool regReady(unsigned r, Cycles now) const;

    /** Cycle every gating register becomes ready (kIdleForever if one
     *  waits on a memory response). */
    Cycles regsWakeAt(const Uop &u) const;

    /**
     * Execute as many whole fast blocks as fit before the chunk cap /
     * run deadline, charging their timing in bulk; true when at least
     * one block ran (the PE is then busy until fpBusyUntil_).
     */
    bool tryFastPath(Cycles now);

    /** Functionally execute one fast block entered at cycle @p at. */
    void execFastBlock(const FastBlock &b, Cycles at);

    /** Earliest vector-pipeline ARC retirement (kIdleForever if none). */
    Cycles earliestVecArcRetireAt() const;

    /** Record a stall: bump @p counter, remember it and the wake cycle
     *  for nextEventAt()/fastForward(). Always returns false. */
    bool stallFor(Counter &counter, Cycles wake_at);

    void execVector(const Uop &u, Cycles now, Cycles done_at);
    void checkReadHazard(SpAddr addr, unsigned bytes, Cycles now);

    /** Issue a DRAM transfer, splitting at vault boundaries.
     *  @return false if the LSQ cannot hold all the pieces. */
    bool issueDramTransfer(Addr dram, unsigned bytes, bool is_write,
                           int arc_id, int dest_reg, Cycles now);

    /**
     * In-flight multi-piece transfer bookkeeping. Slots live in a
     * free-listed vector so the completion lambdas capture only
     * (this, slot) — small enough for std::function's inline buffer,
     * so the steady-state DRAM loop allocates nothing.
     */
    struct Transfer
    {
        unsigned pending = 0; ///< outstanding vault-split pieces
        int arcId = -1;       ///< ARC entry to clear on last piece
        int destReg = -1;     ///< register made valid on last piece
        int nextFree = -1;    ///< free-list link when retired
    };

    int allocTransfer(unsigned pieces, int arc_id, int dest_reg);
    void completeTransferPiece(int slot, const MemRequest &done);

    void storeElemSaturating(SpAddr a, ElemWidth w, std::int64_t v);

    PeConfig cfg_;
    DramStorage &dram_;
    const AddressMapper &mapper_;
    MemIssueFn memIssue_;

    std::vector<Instruction> prog_;
    DecodedProgram decoded_; ///< µop stream + block table (fastPath)
    std::size_t pc_ = 0;
    bool halted_ = true;

    /**
     * End of the last bulk-charged fast-block window: ticks inside it
     * are no-ops (the work already happened functionally) and
     * nextEventAt() reports it so fast-forward warps the dead cycles.
     */
    Cycles fpBusyUntil_ = 0;

    /** Exclusive run bound fast blocks may not charge past. */
    Cycles runDeadline_ = ~Cycles{0};

    /**
     * Registers with an outstanding ld.reg: the completion event will
     * overwrite regReadyAt_ later, so a fast block must not write them
     * (reads are already fenced by the never-ready valid bit). Mask
     * plus per-register depth — two loads to one register can overlap.
     */
    std::uint64_t pendingLoadRegs_ = 0;
    std::array<std::uint8_t, kNumScalarRegs> pendingLoadCount_{};

    std::array<std::uint64_t, kNumScalarRegs> regs_{};
    std::array<Cycles, kNumScalarRegs> regReadyAt_{};

    std::uint64_t vl_ = 0;  ///< vector length (elements)
    std::uint64_t mr_ = 0;  ///< matrix rows

    Scratchpad scratchpad_;
    ArcTable arc_;

    /** (completion time, ARC id) for vector writes when the ARC also
     *  covers the vector pipeline. */
    std::vector<std::pair<Cycles, int>> vecArcPending_;

    Cycles vectorBusyUntil_ = 0;   ///< structural: streaming occupancy
    Cycles vectorDrainedAt_ = 0;   ///< last vector completion time

    unsigned lsqLive_ = 0;
    std::uint64_t nextReqId_ = 0;
    FaultInjector *injector_ = nullptr;
    std::vector<Transfer> transfers_;
    int freeTransfer_ = -1;
    MemRequestPool reqPool_;
    Tracer tracer_;

    /** Stall recorded at the last tick: which counter the front end
     *  charged and the earliest cycle the stall could break. Cleared
     *  when an instruction issues. */
    Counter *stallCounter_ = nullptr;
    Cycles stallWakeAt_ = 0;

    StatGroup statGroup_;
    Stats stats_;

    // Standalone on purpose — never parented into the system tree; see
    // FastPathStats.
    StatGroup fpGroup_;
    FastPathStats fpStats_;
};

} // namespace vip

#endif // VIP_PE_PE_HH
