/**
 * @file
 * Program translation for the PE front end: Instruction -> Uop, plus
 * the per-pc fast-block table (see decode.hh for the model).
 *
 * The width-specialized vector kernels live here too — they used to be
 * an anonymous namespace in pe.cc, but translation wants to resolve
 * them once per static instruction instead of once per issue, and the
 * interpreter path keeps calling the same resolvers so both paths
 * execute literally the same kernel code.
 */

#include "pe/decode.hh"

#include <algorithm>
#include <cstring>
#include <limits>

namespace vip {

namespace {

std::int64_t
redIdentity(RedOp op)
{
    switch (op) {
      case RedOp::Add: return 0;
      case RedOp::Min: return std::numeric_limits<std::int64_t>::max();
      case RedOp::Max: return std::numeric_limits<std::int64_t>::min();
    }
    return 0;
}

/*
 * Width-specialized vector kernels. The interpreter used to re-dispatch
 * ElemWidth (and apply the VecOp/RedOp switches) per element; these
 * templates hoist every dispatch out of the element loop — the
 * instruction selects one fully-specialized kernel, whose inner loop is
 * branch-free element arithmetic on raw scratchpad bytes. Semantics are
 * bit-identical to the switch ladders they replace: elements are
 * sign-extended to 64 bits, operated on in 64-bit arithmetic, and
 * saturated back to the element width on store, in the same element
 * order (memcpy keeps unaligned starts well-defined — any byte address
 * may start a vector).
 */

template <typename T>
inline std::int64_t
loadElem(const std::uint8_t *p)
{
    T v;
    std::memcpy(&v, p, sizeof(T));
    return static_cast<std::int64_t>(v);
}

template <typename T>
inline void
storeElemSat(std::uint8_t *p, std::int64_t v)
{
    if constexpr (sizeof(T) < sizeof(std::int64_t)) {
        v = std::clamp<std::int64_t>(v, std::numeric_limits<T>::min(),
                                     std::numeric_limits<T>::max());
    }
    const T t = static_cast<T>(v);
    std::memcpy(p, &t, sizeof(T));
}

template <VecOp op>
inline std::int64_t
vecOp(std::int64_t a, std::int64_t b)
{
    if constexpr (op == VecOp::Mul) return a * b;
    if constexpr (op == VecOp::Add) return a + b;
    if constexpr (op == VecOp::Sub) return a - b;
    if constexpr (op == VecOp::Min) return std::min(a, b);
    if constexpr (op == VecOp::Max) return std::max(a, b);
    return a;  // Nop
}

template <RedOp op>
inline std::int64_t
redOp(std::int64_t acc, std::int64_t v)
{
    if constexpr (op == RedOp::Add) return acc + v;
    if constexpr (op == RedOp::Min) return std::min(acc, v);
    return std::max(acc, v);  // Max
}

template <typename T, VecOp op>
void
runVecVec(std::uint8_t *dst, const std::uint8_t *a, const std::uint8_t *b,
          unsigned vl)
{
    for (unsigned i = 0; i < vl; ++i) {
        storeElemSat<T>(dst + i * sizeof(T),
                        vecOp<op>(loadElem<T>(a + i * sizeof(T)),
                                  loadElem<T>(b + i * sizeof(T))));
    }
}

template <typename T, VecOp op>
void
runVecScalar(std::uint8_t *dst, const std::uint8_t *a, std::int64_t scalar,
             unsigned vl)
{
    for (unsigned i = 0; i < vl; ++i) {
        storeElemSat<T>(dst + i * sizeof(T),
                        vecOp<op>(loadElem<T>(a + i * sizeof(T)), scalar));
    }
}

template <typename T, VecOp vop, RedOp rop>
std::int64_t
runMatVecRow(const std::uint8_t *row, const std::uint8_t *vec, unsigned vl)
{
    std::int64_t acc = redIdentity(rop);
    for (unsigned i = 0; i < vl; ++i) {
        const std::int64_t m = loadElem<T>(row + i * sizeof(T));
        // applyVecOp(Nop, m, v) == m with v never loaded.
        const std::int64_t x =
            vop == VecOp::Nop ? m
                              : vecOp<vop>(m, loadElem<T>(vec +
                                                          i * sizeof(T)));
        acc = redOp<rop>(acc, x);
    }
    return acc;
}

template <typename T>
VecVecFn
vecVecFnForT(VecOp op)
{
    switch (op) {
      case VecOp::Mul: return &runVecVec<T, VecOp::Mul>;
      case VecOp::Add: return &runVecVec<T, VecOp::Add>;
      case VecOp::Sub: return &runVecVec<T, VecOp::Sub>;
      case VecOp::Min: return &runVecVec<T, VecOp::Min>;
      case VecOp::Max: return &runVecVec<T, VecOp::Max>;
      case VecOp::Nop: return &runVecVec<T, VecOp::Nop>;
    }
    return &runVecVec<T, VecOp::Nop>;
}

template <typename T>
VecScalarFn
vecScalarFnForT(VecOp op)
{
    switch (op) {
      case VecOp::Mul: return &runVecScalar<T, VecOp::Mul>;
      case VecOp::Add: return &runVecScalar<T, VecOp::Add>;
      case VecOp::Sub: return &runVecScalar<T, VecOp::Sub>;
      case VecOp::Min: return &runVecScalar<T, VecOp::Min>;
      case VecOp::Max: return &runVecScalar<T, VecOp::Max>;
      case VecOp::Nop: return &runVecScalar<T, VecOp::Nop>;
    }
    return &runVecScalar<T, VecOp::Nop>;
}

template <typename T, VecOp vop>
MatVecRowFn
matVecRowFnForR(RedOp rop)
{
    switch (rop) {
      case RedOp::Add: return &runMatVecRow<T, vop, RedOp::Add>;
      case RedOp::Min: return &runMatVecRow<T, vop, RedOp::Min>;
      case RedOp::Max: return &runMatVecRow<T, vop, RedOp::Max>;
    }
    return &runMatVecRow<T, vop, RedOp::Add>;
}

template <typename T>
MatVecRowFn
matVecRowFnForT(VecOp vop, RedOp rop)
{
    switch (vop) {
      case VecOp::Mul: return matVecRowFnForR<T, VecOp::Mul>(rop);
      case VecOp::Add: return matVecRowFnForR<T, VecOp::Add>(rop);
      case VecOp::Sub: return matVecRowFnForR<T, VecOp::Sub>(rop);
      case VecOp::Min: return matVecRowFnForR<T, VecOp::Min>(rop);
      case VecOp::Max: return matVecRowFnForR<T, VecOp::Max>(rop);
      case VecOp::Nop: return matVecRowFnForR<T, VecOp::Nop>(rop);
    }
    return matVecRowFnForR<T, VecOp::Nop>(rop);
}

} // namespace

VecVecFn
vecVecFnFor(ElemWidth w, VecOp op)
{
    switch (w) {
      case ElemWidth::W8: return vecVecFnForT<std::int8_t>(op);
      case ElemWidth::W16: return vecVecFnForT<std::int16_t>(op);
      case ElemWidth::W32: return vecVecFnForT<std::int32_t>(op);
      case ElemWidth::W64: return vecVecFnForT<std::int64_t>(op);
    }
    return vecVecFnForT<std::int64_t>(op);
}

VecScalarFn
vecScalarFnFor(ElemWidth w, VecOp op)
{
    switch (w) {
      case ElemWidth::W8: return vecScalarFnForT<std::int8_t>(op);
      case ElemWidth::W16: return vecScalarFnForT<std::int16_t>(op);
      case ElemWidth::W32: return vecScalarFnForT<std::int32_t>(op);
      case ElemWidth::W64: return vecScalarFnForT<std::int64_t>(op);
    }
    return vecScalarFnForT<std::int64_t>(op);
}

MatVecRowFn
matVecRowFnFor(ElemWidth w, VecOp vop, RedOp rop)
{
    switch (w) {
      case ElemWidth::W8: return matVecRowFnForT<std::int8_t>(vop, rop);
      case ElemWidth::W16: return matVecRowFnForT<std::int16_t>(vop, rop);
      case ElemWidth::W32: return matVecRowFnForT<std::int32_t>(vop, rop);
      case ElemWidth::W64: return matVecRowFnForT<std::int64_t>(vop, rop);
    }
    return matVecRowFnForT<std::int64_t>(vop, rop);
}

std::int64_t
applyScalarOp(ScalarOp op, std::int64_t a, std::int64_t b)
{
    switch (op) {
      case ScalarOp::Add: return a + b;
      case ScalarOp::Sub: return a - b;
      case ScalarOp::Sll: return static_cast<std::int64_t>(
          static_cast<std::uint64_t>(a) << (b & 63));
      case ScalarOp::Srl: return static_cast<std::int64_t>(
          static_cast<std::uint64_t>(a) >> (b & 63));
      case ScalarOp::Sra: return a >> (b & 63);
      case ScalarOp::And: return a & b;
      case ScalarOp::Or: return a | b;
      case ScalarOp::Xor: return a ^ b;
    }
    return a;
}

std::int64_t
saturateToWidth(std::int64_t v, ElemWidth w)
{
    switch (w) {
      case ElemWidth::W8:
        return std::clamp<std::int64_t>(v, INT8_MIN, INT8_MAX);
      case ElemWidth::W16:
        return std::clamp<std::int64_t>(v, INT16_MIN, INT16_MAX);
      case ElemWidth::W32:
        return std::clamp<std::int64_t>(v, INT32_MIN, INT32_MAX);
      case ElemWidth::W64:
        return v;
    }
    return v;
}

namespace {

/** Append register @p r to the µop's gating set. */
inline void
addGating(Uop &u, std::uint8_t r)
{
    u.gating[u.nGating++] = r;
}

} // namespace

Uop
translateUop(const Instruction &inst)
{
    Uop u;
    u.op = inst.op;
    u.sop = inst.sop;
    u.cond = inst.cond;
    u.width = inst.width;
    u.vop = inst.vop;
    u.rop = inst.rop;
    u.rd = inst.rd;
    u.rs1 = inst.rs1;
    u.rs2 = inst.rs2;
    u.imm = inst.imm;
    u.wBytes = widthBytes(inst.width);

    // The gating sets below replicate the interpreter's old
    // Pe::gatingRegs() switch exactly; they are now assigned once at
    // translation instead of re-derived per issue attempt.
    switch (inst.op) {
      case Opcode::SetVl:
      case Opcode::SetMr:
        u.cls = UopClass::Config;
        addGating(u, inst.rs1);
        break;
      case Opcode::VDrain:
        u.cls = UopClass::Drain;
        break;
      case Opcode::MatVec:
        u.cls = UopClass::Vector;
        addGating(u, inst.rd);
        addGating(u, inst.rs1);
        addGating(u, inst.rs2);
        u.matVecRow = matVecRowFnFor(inst.width, inst.vop, inst.rop);
        break;
      case Opcode::VecVec:
        u.cls = UopClass::Vector;
        addGating(u, inst.rd);
        addGating(u, inst.rs1);
        addGating(u, inst.rs2);
        u.vecVec = vecVecFnFor(inst.width, inst.vop);
        break;
      case Opcode::VecScalar:
        u.cls = UopClass::Vector;
        addGating(u, inst.rd);
        addGating(u, inst.rs1);
        addGating(u, inst.rs2);
        u.vecScalar = vecScalarFnFor(inst.width, inst.vop);
        break;
      case Opcode::ScalarRR:
        u.cls = UopClass::Scalar;
        u.form = ScalarForm::RR;
        addGating(u, inst.rs1);
        addGating(u, inst.rs2);
        break;
      case Opcode::ScalarRI:
        u.cls = UopClass::Scalar;
        u.form = ScalarForm::RI;
        addGating(u, inst.rs1);
        break;
      case Opcode::Mov:
        // rd <- rs1, encoded as the RI form rs1 | 0: bit-identical to
        // the interpreter's plain copy, and one fewer case at issue.
        u.cls = UopClass::Scalar;
        u.form = ScalarForm::RI;
        u.sop = ScalarOp::Or;
        u.imm = 0;
        addGating(u, inst.rs1);
        break;
      case Opcode::MovImm:
        u.cls = UopClass::Scalar;
        u.form = ScalarForm::Imm;
        break;
      case Opcode::Branch:
        u.cls = UopClass::Branch;
        addGating(u, inst.rs1);
        addGating(u, inst.rs2);
        break;
      case Opcode::Jmp:
        u.cls = UopClass::Branch;
        break;
      case Opcode::LdSram:
      case Opcode::StSram:
        u.cls = UopClass::Memory;
        addGating(u, inst.rd);
        addGating(u, inst.rs1);
        addGating(u, inst.rs2);
        break;
      case Opcode::LdReg:
        u.cls = UopClass::Memory;
        addGating(u, inst.rs1);
        break;
      case Opcode::StReg:
        u.cls = UopClass::Memory;
        addGating(u, inst.rd);
        addGating(u, inst.rs1);
        break;
      case Opcode::Memfence:
        u.cls = UopClass::Fence;
        break;
      case Opcode::Halt:
        u.cls = UopClass::Halt;
        break;
      case Opcode::Nop:
        u.cls = UopClass::Nop;
        break;
    }
    return u;
}

DecodedProgram
translateProgram(const std::vector<Instruction> &prog)
{
    DecodedProgram d;
    const std::size_t n = prog.size();
    d.uops.reserve(n);
    for (const Instruction &inst : prog)
        d.uops.push_back(translateUop(inst));

    // Fast-block table, one reverse pass: block(i) extends block(i+1)
    // when the µop at i is a stall-free body class, and a branch/jump
    // may only terminate (len 1 on its own). Register masks compose
    // backwards — a register read at i is live-in unless i writes it
    // first, which for single-µop effects is never, so
    // liveIn(i) = gating(i) | (liveIn(i+1) & ~writes(i)).
    d.blocks.assign(n, FastBlock{});
    for (std::size_t i = n; i-- > 0;) {
        const Uop &u = d.uops[i];
        std::uint64_t gat = 0;
        for (unsigned g = 0; g < u.nGating; ++g)
            gat |= std::uint64_t{1} << u.gating[g];

        FastBlock b;
        switch (u.cls) {
          case UopClass::Branch:
            b.len = 1;
            b.liveIn = gat;
            break;
          case UopClass::Scalar:
          case UopClass::Config:
          case UopClass::Nop: {
            const std::uint64_t wr =
                u.cls == UopClass::Scalar ? std::uint64_t{1} << u.rd : 0;
            if (i + 1 < n && d.blocks[i + 1].len != 0) {
                const FastBlock &nx = d.blocks[i + 1];
                // len <= kInstBufferEntries (1024): fits uint16_t.
                b.len = static_cast<std::uint16_t>(nx.len + 1);
                b.liveIn = gat | (nx.liveIn & ~wr);
                b.writes = wr | nx.writes;
            } else {
                b.len = 1;
                b.liveIn = gat;
                b.writes = wr;
            }
            break;
          }
          default:
            break;  // Vector/Memory/Fence/Drain/Halt: not eligible.
        }
        d.blocks[i] = b;
        if (b.len != 0)
            ++d.entryPoints;
    }
    return d;
}

} // namespace vip
