/**
 * @file
 * The PE's 4 KiB SRAM scratchpad (Sec. III-A/III-B).
 *
 * Eight 512x8-bit banks whose ports are swizzled into 64-bit accesses;
 * any byte address may start a vector, so there are no alignment
 * constraints. Two read ports and one write port are dedicated to the
 * vector pipeline and one read + one write port to the load-store unit,
 * so the two never conflict — we model each port's 8 B/cycle bandwidth
 * at the consuming unit instead of per-bank arbitration.
 *
 * Function and timing are split: data moves at issue time (program
 * order), while a parallel "ready-at" clock per byte records when the
 * value would really have been produced. Reading a byte before its
 * ready time is a *timing hazard*: real VIP hardware exposes vector
 * latency to the programmer (Sec. III-A), so well-scheduled code never
 * does this. The hazard checker lets tests prove our generated kernels
 * are correctly scheduled.
 */

#ifndef VIP_PE_SCRATCHPAD_HH
#define VIP_PE_SCRATCHPAD_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "sim/types.hh"

namespace vip {

class Scratchpad
{
  public:
    static constexpr unsigned kBytes = 4096;
    static constexpr unsigned kBanks = 8;

    void read(SpAddr addr, void *dst, unsigned bytes) const;
    void write(SpAddr addr, const void *src, unsigned bytes);

    /**
     * Raw pointer into the backing store at @p addr. The hot paths
     * (width-specialized vector kernels, zero-copy DMA) operate on the
     * bytes in place; callers are responsible for range-checking the
     * full access (the vector issue stage asserts operand ranges, the
     * DMA path asserts the transfer range) — this only checks the
     * start address.
     */
    std::uint8_t *
    bytePtr(SpAddr addr)
    {
        return data_.data() + addr;
    }

    const std::uint8_t *
    bytePtr(SpAddr addr) const
    {
        return data_.data() + addr;
    }

    template <typename T>
    T
    load(SpAddr addr) const
    {
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    store(SpAddr addr, T v)
    {
        write(addr, &v, sizeof(T));
    }

    /** Record that [addr, addr+bytes) is produced at cycle @p at. */
    void markReadyAt(SpAddr addr, unsigned bytes, Cycles at);

    /**
     * Record a *streamed* write: byte j of the range is produced at
     * @p base + j/8 (the 64-bit datapath writes 8 bytes per cycle).
     * This is what makes classic vector chaining legal: a dependent
     * streamed read that starts late enough never observes a hazard.
     */
    void markReadyStream(SpAddr addr, unsigned bytes, Cycles base);

    /**
     * True if a streamed read of the range starting at cycle @p base
     * (byte j read at base + j/8) would observe any byte before its
     * ready time.
     */
    bool hazardousStreamRead(SpAddr addr, unsigned bytes,
                             Cycles base) const;

    /** Latest ready time over [addr, addr+bytes). */
    Cycles readyAt(SpAddr addr, unsigned bytes) const;

    /** True if reading [addr, addr+bytes) at @p now is a timing hazard. */
    bool
    hazardousRead(SpAddr addr, unsigned bytes, Cycles now) const
    {
        return readyAt(addr, bytes) > now;
    }

  private:
    std::array<std::uint8_t, kBytes> data_{};
    std::array<Cycles, kBytes> readyAt_{};
};

} // namespace vip

#endif // VIP_PE_SCRATCHPAD_HH
