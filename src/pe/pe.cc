#include "pe/pe.hh"

#include <algorithm>
#include <cstring>
#include <limits>

#include "sim/fault.hh"
#include "sim/logging.hh"

namespace vip {

namespace {

/** A register waiting on a memory response: ready only when the
 *  completion event (an external wake-up) lands. */
constexpr Cycles kNeverReady = kIdleForever;

std::int64_t
saturate(std::int64_t v, ElemWidth w)
{
    switch (w) {
      case ElemWidth::W8:
        return std::clamp<std::int64_t>(v, INT8_MIN, INT8_MAX);
      case ElemWidth::W16:
        return std::clamp<std::int64_t>(v, INT16_MIN, INT16_MAX);
      case ElemWidth::W32:
        return std::clamp<std::int64_t>(v, INT32_MIN, INT32_MAX);
      case ElemWidth::W64:
        return v;
    }
    return v;
}

std::int64_t
redIdentity(RedOp op)
{
    switch (op) {
      case RedOp::Add: return 0;
      case RedOp::Min: return std::numeric_limits<std::int64_t>::max();
      case RedOp::Max: return std::numeric_limits<std::int64_t>::min();
    }
    return 0;
}

/*
 * Width-specialized vector kernels. The interpreter used to re-dispatch
 * ElemWidth (and apply the VecOp/RedOp switches) per element; these
 * templates hoist every dispatch out of the element loop — the
 * instruction selects one fully-specialized kernel, whose inner loop is
 * branch-free element arithmetic on raw scratchpad bytes. Semantics are
 * bit-identical to the switch ladders they replace: elements are
 * sign-extended to 64 bits, operated on in 64-bit arithmetic, and
 * saturated back to the element width on store, in the same element
 * order (memcpy keeps unaligned starts well-defined — any byte address
 * may start a vector).
 */

template <typename T>
inline std::int64_t
loadElem(const std::uint8_t *p)
{
    T v;
    std::memcpy(&v, p, sizeof(T));
    return static_cast<std::int64_t>(v);
}

template <typename T>
inline void
storeElemSat(std::uint8_t *p, std::int64_t v)
{
    if constexpr (sizeof(T) < sizeof(std::int64_t)) {
        v = std::clamp<std::int64_t>(v, std::numeric_limits<T>::min(),
                                     std::numeric_limits<T>::max());
    }
    const T t = static_cast<T>(v);
    std::memcpy(p, &t, sizeof(T));
}

template <VecOp op>
inline std::int64_t
vecOp(std::int64_t a, std::int64_t b)
{
    if constexpr (op == VecOp::Mul) return a * b;
    if constexpr (op == VecOp::Add) return a + b;
    if constexpr (op == VecOp::Sub) return a - b;
    if constexpr (op == VecOp::Min) return std::min(a, b);
    if constexpr (op == VecOp::Max) return std::max(a, b);
    return a;  // Nop
}

template <RedOp op>
inline std::int64_t
redOp(std::int64_t acc, std::int64_t v)
{
    if constexpr (op == RedOp::Add) return acc + v;
    if constexpr (op == RedOp::Min) return std::min(acc, v);
    return std::max(acc, v);  // Max
}

template <typename T, VecOp op>
void
runVecVec(std::uint8_t *dst, const std::uint8_t *a, const std::uint8_t *b,
          unsigned vl)
{
    for (unsigned i = 0; i < vl; ++i) {
        storeElemSat<T>(dst + i * sizeof(T),
                        vecOp<op>(loadElem<T>(a + i * sizeof(T)),
                                  loadElem<T>(b + i * sizeof(T))));
    }
}

template <typename T, VecOp op>
void
runVecScalar(std::uint8_t *dst, const std::uint8_t *a, std::int64_t scalar,
             unsigned vl)
{
    for (unsigned i = 0; i < vl; ++i) {
        storeElemSat<T>(dst + i * sizeof(T),
                        vecOp<op>(loadElem<T>(a + i * sizeof(T)), scalar));
    }
}

template <typename T, VecOp vop, RedOp rop>
std::int64_t
runMatVecRow(const std::uint8_t *row, const std::uint8_t *vec, unsigned vl)
{
    std::int64_t acc = redIdentity(rop);
    for (unsigned i = 0; i < vl; ++i) {
        const std::int64_t m = loadElem<T>(row + i * sizeof(T));
        // applyVecOp(Nop, m, v) == m with v never loaded.
        const std::int64_t x =
            vop == VecOp::Nop ? m
                              : vecOp<vop>(m, loadElem<T>(vec +
                                                          i * sizeof(T)));
        acc = redOp<rop>(acc, x);
    }
    return acc;
}

using VecVecFn = void (*)(std::uint8_t *, const std::uint8_t *,
                          const std::uint8_t *, unsigned);
using VecScalarFn = void (*)(std::uint8_t *, const std::uint8_t *,
                             std::int64_t, unsigned);
using MatVecRowFn = std::int64_t (*)(const std::uint8_t *,
                                     const std::uint8_t *, unsigned);

template <typename T>
VecVecFn
vecVecFnFor(VecOp op)
{
    switch (op) {
      case VecOp::Mul: return &runVecVec<T, VecOp::Mul>;
      case VecOp::Add: return &runVecVec<T, VecOp::Add>;
      case VecOp::Sub: return &runVecVec<T, VecOp::Sub>;
      case VecOp::Min: return &runVecVec<T, VecOp::Min>;
      case VecOp::Max: return &runVecVec<T, VecOp::Max>;
      case VecOp::Nop: return &runVecVec<T, VecOp::Nop>;
    }
    return &runVecVec<T, VecOp::Nop>;
}

VecVecFn
vecVecFnFor(ElemWidth w, VecOp op)
{
    switch (w) {
      case ElemWidth::W8: return vecVecFnFor<std::int8_t>(op);
      case ElemWidth::W16: return vecVecFnFor<std::int16_t>(op);
      case ElemWidth::W32: return vecVecFnFor<std::int32_t>(op);
      case ElemWidth::W64: return vecVecFnFor<std::int64_t>(op);
    }
    return vecVecFnFor<std::int64_t>(op);
}

template <typename T>
VecScalarFn
vecScalarFnFor(VecOp op)
{
    switch (op) {
      case VecOp::Mul: return &runVecScalar<T, VecOp::Mul>;
      case VecOp::Add: return &runVecScalar<T, VecOp::Add>;
      case VecOp::Sub: return &runVecScalar<T, VecOp::Sub>;
      case VecOp::Min: return &runVecScalar<T, VecOp::Min>;
      case VecOp::Max: return &runVecScalar<T, VecOp::Max>;
      case VecOp::Nop: return &runVecScalar<T, VecOp::Nop>;
    }
    return &runVecScalar<T, VecOp::Nop>;
}

VecScalarFn
vecScalarFnFor(ElemWidth w, VecOp op)
{
    switch (w) {
      case ElemWidth::W8: return vecScalarFnFor<std::int8_t>(op);
      case ElemWidth::W16: return vecScalarFnFor<std::int16_t>(op);
      case ElemWidth::W32: return vecScalarFnFor<std::int32_t>(op);
      case ElemWidth::W64: return vecScalarFnFor<std::int64_t>(op);
    }
    return vecScalarFnFor<std::int64_t>(op);
}

template <typename T, VecOp vop>
MatVecRowFn
matVecRowFnFor(RedOp rop)
{
    switch (rop) {
      case RedOp::Add: return &runMatVecRow<T, vop, RedOp::Add>;
      case RedOp::Min: return &runMatVecRow<T, vop, RedOp::Min>;
      case RedOp::Max: return &runMatVecRow<T, vop, RedOp::Max>;
    }
    return &runMatVecRow<T, vop, RedOp::Add>;
}

template <typename T>
MatVecRowFn
matVecRowFnFor(VecOp vop, RedOp rop)
{
    switch (vop) {
      case VecOp::Mul: return matVecRowFnFor<T, VecOp::Mul>(rop);
      case VecOp::Add: return matVecRowFnFor<T, VecOp::Add>(rop);
      case VecOp::Sub: return matVecRowFnFor<T, VecOp::Sub>(rop);
      case VecOp::Min: return matVecRowFnFor<T, VecOp::Min>(rop);
      case VecOp::Max: return matVecRowFnFor<T, VecOp::Max>(rop);
      case VecOp::Nop: return matVecRowFnFor<T, VecOp::Nop>(rop);
    }
    return matVecRowFnFor<T, VecOp::Nop>(rop);
}

MatVecRowFn
matVecRowFnFor(ElemWidth w, VecOp vop, RedOp rop)
{
    switch (w) {
      case ElemWidth::W8: return matVecRowFnFor<std::int8_t>(vop, rop);
      case ElemWidth::W16: return matVecRowFnFor<std::int16_t>(vop, rop);
      case ElemWidth::W32: return matVecRowFnFor<std::int32_t>(vop, rop);
      case ElemWidth::W64: return matVecRowFnFor<std::int64_t>(vop, rop);
    }
    return matVecRowFnFor<std::int64_t>(vop, rop);
}

std::int64_t
applyScalarOp(ScalarOp op, std::int64_t a, std::int64_t b)
{
    switch (op) {
      case ScalarOp::Add: return a + b;
      case ScalarOp::Sub: return a - b;
      case ScalarOp::Sll: return static_cast<std::int64_t>(
          static_cast<std::uint64_t>(a) << (b & 63));
      case ScalarOp::Srl: return static_cast<std::int64_t>(
          static_cast<std::uint64_t>(a) >> (b & 63));
      case ScalarOp::Sra: return a >> (b & 63);
      case ScalarOp::And: return a & b;
      case ScalarOp::Or: return a | b;
      case ScalarOp::Xor: return a ^ b;
    }
    return a;
}

} // namespace

Pe::Pe(const PeConfig &cfg, DramStorage &dram, const AddressMapper &mapper,
       MemIssueFn issue, StatGroup *parent)
    : cfg_(cfg), dram_(dram), mapper_(mapper), memIssue_(std::move(issue)),
      arc_(cfg.arcEntries),
      statGroup_("pe" + std::to_string(cfg.peId), parent),
      stats_{Counter(&statGroup_, "instructions", "instructions committed"),
             Counter(&statGroup_, "vector_instructions",
                     "vector instructions committed"),
             Counter(&statGroup_, "vector_ops",
                     "vector ALU lane operations"),
             Counter(&statGroup_, "stall_scalar",
                     "cycles stalled on scalar register valid bits"),
             Counter(&statGroup_, "stall_vector_busy",
                     "cycles stalled on vector unit occupancy"),
             Counter(&statGroup_, "stall_arc",
                     "cycles stalled on ARC overlap or capacity"),
             Counter(&statGroup_, "stall_lsq",
                     "cycles stalled on load-store queue capacity"),
             Counter(&statGroup_, "stall_fence",
                     "cycles stalled in memfence"),
             Counter(&statGroup_, "stall_drain",
                     "cycles stalled in v.drain"),
             Counter(&statGroup_, "dram_read_bytes",
                     "bytes loaded from DRAM"),
             Counter(&statGroup_, "dram_write_bytes",
                     "bytes stored to DRAM"),
             Counter(&statGroup_, "timing_hazards",
                     "reads issued inside a producer's timing shadow"),
             Counter(&statGroup_, "busy_cycles",
                     "cycles an instruction issued")}
{
    vip_assert(memIssue_, "PE needs a memory issue function");
}

void
Pe::loadProgram(std::vector<Instruction> prog)
{
    vip_assert(prog.size() <= kInstBufferEntries, "program of ",
               prog.size(), " instructions exceeds the instruction buffer");
    prog_ = std::move(prog);
    pc_ = 0;
    halted_ = prog_.empty();
    stallCounter_ = nullptr;
    stallWakeAt_ = 0;
}

void
Pe::setReg(unsigned r, std::uint64_t v)
{
    vip_assert(r < kNumScalarRegs, "register r", r, " out of range");
    regs_[r] = v;
    regReadyAt_[r] = 0;
}

std::uint64_t
Pe::reg(unsigned r) const
{
    vip_assert(r < kNumScalarRegs, "register r", r, " out of range");
    return regs_[r];
}

bool
Pe::regReady(unsigned r, Cycles now) const
{
    return regReadyAt_[r] <= now;
}

unsigned
Pe::gatingRegs(const Instruction &inst, unsigned out[3]) const
{
    switch (inst.op) {
      case Opcode::SetVl:
      case Opcode::SetMr:
        out[0] = inst.rs1;
        return 1;
      case Opcode::MatVec:
      case Opcode::VecVec:
      case Opcode::VecScalar:
      case Opcode::LdSram:
      case Opcode::StSram:
        out[0] = inst.rd;
        out[1] = inst.rs1;
        out[2] = inst.rs2;
        return 3;
      case Opcode::ScalarRR:
      case Opcode::Branch:
        out[0] = inst.rs1;
        out[1] = inst.rs2;
        return 2;
      case Opcode::ScalarRI:
      case Opcode::Mov:
      case Opcode::LdReg:
        out[0] = inst.rs1;
        return 1;
      case Opcode::StReg:
        out[0] = inst.rd;
        out[1] = inst.rs1;
        return 2;
      default:
        return 0;
    }
}

bool
Pe::regsReady(const Instruction &inst, Cycles now) const
{
    unsigned regs[3];
    const unsigned n = gatingRegs(inst, regs);
    for (unsigned i = 0; i < n; ++i) {
        if (!regReady(regs[i], now))
            return false;
    }
    return true;
}

Cycles
Pe::regsWakeAt(const Instruction &inst) const
{
    unsigned regs[3];
    const unsigned n = gatingRegs(inst, regs);
    Cycles wake = 0;
    for (unsigned i = 0; i < n; ++i)
        wake = std::max(wake, regReadyAt_[regs[i]]);
    return wake;
}

Cycles
Pe::earliestVecArcRetireAt() const
{
    Cycles wake = kIdleForever;
    for (const auto &[at, id] : vecArcPending_)
        wake = std::min(wake, at);
    return wake;
}

bool
Pe::stallFor(Counter &counter, Cycles wake_at)
{
    counter += 1;
    stallCounter_ = &counter;
    stallWakeAt_ = wake_at;
    return false;
}

void
Pe::storeElemSaturating(SpAddr a, ElemWidth w, std::int64_t v)
{
    const std::int64_t s = saturate(v, w);
    switch (w) {
      case ElemWidth::W8:
        scratchpad_.store<std::int8_t>(a, static_cast<std::int8_t>(s));
        break;
      case ElemWidth::W16:
        scratchpad_.store<std::int16_t>(a, static_cast<std::int16_t>(s));
        break;
      case ElemWidth::W32:
        scratchpad_.store<std::int32_t>(a, static_cast<std::int32_t>(s));
        break;
      case ElemWidth::W64:
        scratchpad_.store<std::int64_t>(a, s);
        break;
    }
}

void
Pe::checkReadHazard(SpAddr addr, unsigned bytes, Cycles now)
{
    if (scratchpad_.hazardousStreamRead(addr, bytes, now)) {
        stats_.timingHazards += 1;
        if (cfg_.strictHazards) {
            vip_panic("pe", cfg_.peId, ": timing hazard reading sp[",
                      addr, ", ", addr + bytes, ") at cycle ", now,
                      " — kernel is mis-scheduled");
        }
    }
}

bool
Pe::issueConfig(const Instruction &inst, Cycles now)
{
    if (!regsReady(inst, now))
        return stallFor(stats_.stallScalar, regsWakeAt(inst));
    if (inst.op == Opcode::SetVl) {
        vl_ = regs_[inst.rs1];
        vip_assert(vl_ > 0 && vl_ <= Scratchpad::kBytes,
                   "set.vl with illegal length ", vl_);
    } else {
        mr_ = regs_[inst.rs1];
        vip_assert(mr_ > 0 && mr_ <= Scratchpad::kBytes,
                   "set.mr with illegal row count ", mr_);
    }
    return true;
}

bool
Pe::issueScalar(const Instruction &inst, Cycles now)
{
    if (!regsReady(inst, now))
        return stallFor(stats_.stallScalar, regsWakeAt(inst));
    const auto a = static_cast<std::int64_t>(regs_[inst.rs1]);
    std::int64_t result = 0;
    switch (inst.op) {
      case Opcode::ScalarRR:
        result = applyScalarOp(inst.sop, a,
                               static_cast<std::int64_t>(regs_[inst.rs2]));
        break;
      case Opcode::ScalarRI:
        result = applyScalarOp(inst.sop, a, inst.imm);
        break;
      case Opcode::Mov:
        result = a;
        break;
      case Opcode::MovImm:
        result = inst.imm;
        break;
      default:
        vip_panic("not a scalar instruction");
    }
    regs_[inst.rd] = static_cast<std::uint64_t>(result);
    regReadyAt_[inst.rd] = now + 1;
    return true;
}

bool
Pe::issueBranch(const Instruction &inst, Cycles now)
{
    if (!regsReady(inst, now))
        return stallFor(stats_.stallScalar, regsWakeAt(inst));
    if (inst.op == Opcode::Jmp) {
        pc_ = static_cast<std::size_t>(inst.imm);
        return true;
    }
    const auto a = static_cast<std::int64_t>(regs_[inst.rs1]);
    const auto b = static_cast<std::int64_t>(regs_[inst.rs2]);
    bool taken = false;
    switch (inst.cond) {
      case BranchCond::Lt: taken = a < b; break;
      case BranchCond::Ge: taken = a >= b; break;
      case BranchCond::Eq: taken = a == b; break;
      case BranchCond::Ne: taken = a != b; break;
    }
    pc_ = taken ? static_cast<std::size_t>(inst.imm) : pc_ + 1;
    return true;
}

void
Pe::execVector(const Instruction &inst, Cycles now, Cycles done_at)
{
    const unsigned w = widthBytes(inst.width);
    const auto vl = static_cast<unsigned>(vl_);

    if (inst.op == Opcode::VecVec || inst.op == Opcode::VecScalar) {
        const auto dst = static_cast<SpAddr>(regs_[inst.rd]);
        const auto src_a = static_cast<SpAddr>(regs_[inst.rs1]);
        checkReadHazard(src_a, vl * w, now);
        std::uint8_t *dp = scratchpad_.bytePtr(dst);
        const std::uint8_t *ap = scratchpad_.bytePtr(src_a);
        if (inst.op == Opcode::VecVec) {
            const auto src_b = static_cast<SpAddr>(regs_[inst.rs2]);
            checkReadHazard(src_b, vl * w, now);
            vecVecFnFor(inst.width, inst.vop)(
                dp, ap, scratchpad_.bytePtr(src_b), vl);
        } else {
            const std::int64_t scalar = saturate(
                static_cast<std::int64_t>(regs_[inst.rs2]), inst.width);
            vecScalarFnFor(inst.width, inst.vop)(dp, ap, scalar, vl);
        }
        // The destination streams out behind the pipeline depth.
        scratchpad_.markReadyStream(dst, vl * w, done_at - (vl * w) / 8);
        stats_.vectorLaneOps += vl;
        return;
    }

    // MatVec: MR x VL row-major matrix at rs1, vector at rs2, MR results.
    const auto mr = static_cast<unsigned>(mr_);
    const auto dst = static_cast<SpAddr>(regs_[inst.rd]);
    const auto mat = static_cast<SpAddr>(regs_[inst.rs1]);
    const auto vec = static_cast<SpAddr>(regs_[inst.rs2]);
    const Cycles row_cycles = std::max<Cycles>(1, (vl * w + 7) / 8);
    const Cycles depth = done_at - now - row_cycles * mr;

    checkReadHazard(vec, vl * w, now);
    const MatVecRowFn row_fn = matVecRowFnFor(inst.width, inst.vop,
                                              inst.rop);
    const std::uint8_t *vp = scratchpad_.bytePtr(vec);
    for (unsigned r = 0; r < mr; ++r) {
        checkReadHazard(mat + r * vl * w, vl * w, now + r * row_cycles);
        const std::int64_t acc =
            row_fn(scratchpad_.bytePtr(mat + r * vl * w), vp, vl);
        storeElemSaturating(dst + r * w, inst.width, acc);
        scratchpad_.markReadyAt(dst + r * w, w,
                                now + (r + 1) * row_cycles + depth);
    }
    stats_.vectorLaneOps += 2ull * mr * vl;
}

bool
Pe::issueVector(const Instruction &inst, Cycles now)
{
    if (!regsReady(inst, now))
        return stallFor(stats_.stallScalar, regsWakeAt(inst));
    if (now < vectorBusyUntil_)
        return stallFor(stats_.stallVectorBusy, vectorBusyUntil_);
    vip_assert(vl_ > 0, "vector instruction with VL unset");

    const unsigned w = widthBytes(inst.width);
    const auto vl = static_cast<unsigned>(vl_);

    // Gather the scratchpad ranges this instruction touches.
    struct Range { SpAddr start; unsigned bytes; };
    Range ranges[3];
    unsigned nranges = 0;
    Cycles occupancy = 0;

    if (inst.op == Opcode::MatVec) {
        vip_assert(mr_ > 0, "m.v with MR unset");
        vip_assert(cfg_.enableReduction,
                   "m.v issued on a configuration without the reduction "
                   "unit (Fig. 4 ablation)");
        const auto mr = static_cast<unsigned>(mr_);
        ranges[nranges++] = {static_cast<SpAddr>(regs_[inst.rs1]),
                             mr * vl * w};
        ranges[nranges++] = {static_cast<SpAddr>(regs_[inst.rs2]), vl * w};
        ranges[nranges++] = {static_cast<SpAddr>(regs_[inst.rd]), mr * w};
        occupancy = std::max<Cycles>(1, (vl * w + 7) / 8) * mr;
    } else {
        ranges[nranges++] = {static_cast<SpAddr>(regs_[inst.rs1]), vl * w};
        if (inst.op == Opcode::VecVec) {
            ranges[nranges++] = {static_cast<SpAddr>(regs_[inst.rs2]),
                                 vl * w};
        }
        ranges[nranges++] = {static_cast<SpAddr>(regs_[inst.rd]), vl * w};
        occupancy = std::max<Cycles>(1, (vl * w + 7) / 8);
    }

    for (unsigned i = 0; i < nranges; ++i) {
        vip_assert(ranges[i].start + ranges[i].bytes <= Scratchpad::kBytes,
                   "vector operand [", ranges[i].start, ", ",
                   ranges[i].start + ranges[i].bytes,
                   ") outside the scratchpad");
        if (arc_.overlaps(ranges[i].start,
                          ranges[i].start + ranges[i].bytes)) {
            // The blocking entry is either a vector-pipeline entry
            // (known retirement time) or a memory entry cleared by a
            // completion event; either way the earliest pipeline
            // retirement is a safe (never-late) wake estimate.
            return stallFor(stats_.stallArc, earliestVecArcRetireAt());
        }
    }

    const Cycles alu = inst.vop == VecOp::Mul ? cfg_.mulStages
                                              : cfg_.aluStages;
    const Cycles depth = alu + (inst.op == Opcode::MatVec
                                    ? cfg_.reduceStages
                                    : 0);
    // The last element enters the pipe at now + occupancy - 1 and its
    // result is written `depth` stages later.
    const Cycles done_at = now + occupancy - 1 + depth;

    if (cfg_.arcCoversVector) {
        // Hardware interlock mode: the destination range gets an ARC
        // entry held until the pipeline writes it back, so later
        // instructions stall instead of observing the timing shadow.
        const auto &dst = ranges[nranges - 1];
        const int id = arc_.allocate(dst.start, dst.start + dst.bytes);
        if (id < 0)
            return stallFor(stats_.stallArc, earliestVecArcRetireAt());
        vecArcPending_.emplace_back(done_at, id);
    }

    execVector(inst, now, done_at);

    vectorBusyUntil_ = now + occupancy;
    vectorDrainedAt_ = std::max(vectorDrainedAt_, done_at);
    stats_.vectorInstructions += 1;
    return true;
}

int
Pe::allocTransfer(unsigned pieces, int arc_id, int dest_reg)
{
    int idx;
    if (freeTransfer_ >= 0) {
        idx = freeTransfer_;
        freeTransfer_ = transfers_[idx].nextFree;
    } else {
        idx = static_cast<int>(transfers_.size());
        transfers_.emplace_back();
    }
    transfers_[idx] = Transfer{pieces, arc_id, dest_reg, -1};
    return idx;
}

void
Pe::completeTransferPiece(int slot, const MemRequest &done)
{
    vip_assert(lsqLive_ > 0, "LSQ underflow");
    --lsqLive_;
    Transfer &t = transfers_[slot];
    vip_assert(t.pending > 0, "stray transfer completion");
    if (--t.pending == 0) {
        if (t.arcId >= 0)
            arc_.clear(t.arcId);
        if (t.destReg >= 0)
            regReadyAt_[t.destReg] = done.completedAt;
        t.nextFree = freeTransfer_;
        freeTransfer_ = slot;
    }
}

bool
Pe::issueDramTransfer(Addr dram, unsigned bytes, bool is_write, int arc_id,
                      int dest_reg, Cycles now)
{
    // Split at vault-contiguity boundaries so each piece has one home.
    const auto &geom = mapper_.geometry();
    const std::uint64_t span = mapper_.scheme() == AddrMap::VaultRowBankCol
                                   ? geom.bytesPerVault()
                                   : geom.colBytes;

    // Count pieces first: the transfer issues atomically or not at all.
    unsigned pieces = 0;
    {
        Addr a = dram;
        std::uint64_t rem = bytes;
        while (rem > 0) {
            const std::uint64_t chunk = std::min<std::uint64_t>(
                rem, span - (a % span));
            ++pieces;
            a += chunk;
            rem -= chunk;
        }
    }
    if (lsqLive_ + pieces > cfg_.lsqEntries) {
        // Entries free when responses arrive: an external wake-up.
        return stallFor(stats_.stallLsq, kIdleForever);
    }

    // One pooled tracker slot per transfer (instead of a heap-allocated
    // shared counter), and pooled request descriptors: the steady-state
    // PE↔memory path allocates nothing. The [this, slot] capture fits
    // std::function's small-buffer storage, so assigning onComplete
    // does not allocate either.
    const int slot = allocTransfer(pieces, arc_id, dest_reg);
    Addr a = dram;
    std::uint64_t rem = bytes;
    while (rem > 0) {
        const auto chunk = static_cast<unsigned>(
            std::min<std::uint64_t>(rem, span - (a % span)));
        auto req = reqPool_.acquire();
        req->addr = a;
        req->bytes = chunk;
        req->isWrite = is_write;
        req->sourcePe = cfg_.peId;
        req->id = nextReqId_++;
        req->issuedAt = now;
        req->onComplete = [this, slot](MemRequest &done) {
            completeTransferPiece(slot, done);
        };
        ++lsqLive_;
        memIssue_(std::move(req));
        a += chunk;
        rem -= chunk;
    }

    if (is_write)
        stats_.dramWriteBytes += bytes;
    else
        stats_.dramReadBytes += bytes;
    return true;
}

bool
Pe::issueMemory(const Instruction &inst, Cycles now)
{
    if (!regsReady(inst, now))
        return stallFor(stats_.stallScalar, regsWakeAt(inst));
    const unsigned w = widthBytes(inst.width);

    switch (inst.op) {
      case Opcode::LdSram: {
        const auto sp = static_cast<SpAddr>(regs_[inst.rd]);
        const Addr dram = regs_[inst.rs1];
        const auto bytes = static_cast<unsigned>(regs_[inst.rs2] * w);
        vip_assert(bytes > 0 && sp + bytes <= Scratchpad::kBytes,
                   "ld.sram range [", sp, ", ", sp + bytes,
                   ") outside the scratchpad");
        if (arc_.overlaps(sp, sp + bytes))
            return stallFor(stats_.stallArc, earliestVecArcRetireAt());
        if (arc_.full())
            return stallFor(stats_.stallArc, earliestVecArcRetireAt());
        const int arc_id = arc_.allocate(sp, sp + bytes);
        vip_assert(arc_id >= 0, "ARC allocation failed after full check");
        if (!issueDramTransfer(dram, bytes, false, arc_id, -1, now)) {
            arc_.clear(arc_id);
            return false;
        }
        // Function: data lands now, in program order — straight from
        // the DRAM pages into the scratchpad, no staging buffer. Fault
        // injection hooks the same functional boundary: flips (and ECC
        // correction) happen before the data is copied, so corruption
        // is architecturally visible exactly when ECC misses it.
        if (injector_)
            injector_->onDramRead(dram, bytes, cfg_.peId);
        dram_.copyTo(dram, scratchpad_, sp, bytes);
        return true;
      }
      case Opcode::StSram: {
        const auto sp = static_cast<SpAddr>(regs_[inst.rd]);
        const Addr dram = regs_[inst.rs1];
        const auto bytes = static_cast<unsigned>(regs_[inst.rs2] * w);
        vip_assert(bytes > 0 && sp + bytes <= Scratchpad::kBytes,
                   "st.sram range [", sp, ", ", sp + bytes,
                   ") outside the scratchpad");
        if (arc_.overlaps(sp, sp + bytes))
            return stallFor(stats_.stallArc, earliestVecArcRetireAt());
        checkReadHazard(sp, bytes, now);
        if (!issueDramTransfer(dram, bytes, true, -1, -1, now))
            return false;
        dram_.copyFrom(dram, scratchpad_, sp, bytes);
        if (injector_)
            injector_->onDramWrite(dram, bytes);
        return true;
      }
      case Opcode::LdReg: {
        const Addr dram = regs_[inst.rs1];
        if (!issueDramTransfer(dram, w, false, -1,
                               static_cast<int>(inst.rd), now)) {
            return false;
        }
        // Sign-extended functional load at issue.
        if (injector_)
            injector_->onDramRead(dram, w, cfg_.peId);
        std::int64_t v = 0;
        switch (inst.width) {
          case ElemWidth::W8: v = dram_.load<std::int8_t>(dram); break;
          case ElemWidth::W16: v = dram_.load<std::int16_t>(dram); break;
          case ElemWidth::W32: v = dram_.load<std::int32_t>(dram); break;
          case ElemWidth::W64: v = dram_.load<std::int64_t>(dram); break;
        }
        regs_[inst.rd] = static_cast<std::uint64_t>(v);
        regReadyAt_[inst.rd] = kNeverReady;  // valid bit cleared
        return true;
      }
      case Opcode::StReg: {
        const Addr dram = regs_[inst.rs1];
        if (!issueDramTransfer(dram, w, true, -1, -1, now))
            return false;
        const std::uint64_t v = regs_[inst.rd];
        switch (inst.width) {
          case ElemWidth::W8:
            dram_.store<std::uint8_t>(dram, static_cast<std::uint8_t>(v));
            break;
          case ElemWidth::W16:
            dram_.store<std::uint16_t>(dram,
                                       static_cast<std::uint16_t>(v));
            break;
          case ElemWidth::W32:
            dram_.store<std::uint32_t>(dram,
                                       static_cast<std::uint32_t>(v));
            break;
          case ElemWidth::W64:
            dram_.store<std::uint64_t>(dram, v);
            break;
        }
        if (injector_)
            injector_->onDramWrite(dram, w);
        return true;
      }
      default:
        vip_panic("not a memory instruction");
    }
}

void
Pe::tick(Cycles now)
{
    // Retire vector-pipeline ARC entries whose writeback completed.
    if (!vecArcPending_.empty()) {
        for (auto it = vecArcPending_.begin();
             it != vecArcPending_.end();) {
            if (it->first <= now) {
                arc_.clear(it->second);
                it = vecArcPending_.erase(it);
            } else {
                ++it;
            }
        }
    }
    if (halted_)
        return;
    vip_assert(pc_ < prog_.size(), "pe", cfg_.peId,
               ": PC ran off the end of the program");

    const Instruction &inst = prog_[pc_];
    bool issued = false;
    bool is_branch = false;

    switch (inst.op) {
      case Opcode::SetVl:
      case Opcode::SetMr:
        issued = issueConfig(inst, now);
        break;
      case Opcode::VDrain:
        if (now < vectorDrainedAt_) {
            stallFor(stats_.stallDrain, vectorDrainedAt_);
        } else {
            issued = true;
        }
        break;
      case Opcode::MatVec:
      case Opcode::VecVec:
      case Opcode::VecScalar:
        issued = issueVector(inst, now);
        break;
      case Opcode::ScalarRR:
      case Opcode::ScalarRI:
      case Opcode::Mov:
      case Opcode::MovImm:
        issued = issueScalar(inst, now);
        break;
      case Opcode::Branch:
      case Opcode::Jmp:
        issued = issueBranch(inst, now);
        is_branch = issued;
        break;
      case Opcode::LdSram:
      case Opcode::StSram:
      case Opcode::LdReg:
      case Opcode::StReg:
        issued = issueMemory(inst, now);
        break;
      case Opcode::Memfence:
        if (lsqLive_ > 0) {
            // Drains on memory responses: an external wake-up.
            stallFor(stats_.stallFence, kIdleForever);
        } else {
            issued = true;
        }
        break;
      case Opcode::Halt:
        halted_ = true;
        issued = true;
        break;
      case Opcode::Nop:
        issued = true;
        break;
    }

    if (issued) {
        stallCounter_ = nullptr;
        stallWakeAt_ = 0;
        if (tracer_)
            tracer_(now, static_cast<std::size_t>(&inst - prog_.data()),
                    inst);
        stats_.instructions += 1;
        stats_.busyCycles += 1;
        if (injector_) {
            // Scratchpad upsets: keyed by (PE, instruction ordinal),
            // never the cycle, so fast-forward injects identically.
            const long bit = injector_->spFlip(
                cfg_.peId, stats_.instructions.value(),
                std::uint64_t{Scratchpad::kBytes} * 8);
            if (bit >= 0) {
                *scratchpad_.bytePtr(static_cast<SpAddr>(bit / 8)) ^=
                    static_cast<std::uint8_t>(1u << (bit % 8));
            }
        }
        // Branches set pc_ themselves; everything else — including
        // Halt, whose resume-at-next-instruction semantics the host
        // relies on when it reloads a program — falls through to the
        // next slot.
        if (!is_branch)
            ++pc_;
    }
}

std::string
Pe::stallReason() const
{
    if (halted_)
        return "halted";
    if (stallCounter_ == nullptr)
        return "ready";
    return stallCounter_->name();
}

const Instruction *
Pe::currentInstruction() const
{
    if (halted_ || pc_ >= prog_.size())
        return nullptr;
    return &prog_[pc_];
}

Cycles
Pe::nextEventAt(Cycles now) const
{
    if (halted_) {
        // Outstanding responses (if any) are events of the memory
        // system; pending pipeline-ARC retirements are retired lazily
        // by the tick prologue and have no observable effect while no
        // instruction can issue.
        return kIdleForever;
    }
    if (stallCounter_ == nullptr) {
        // Actively issuing (or not yet ticked): never warp past it.
        return now;
    }
    return std::max(stallWakeAt_, now);
}

void
Pe::fastForward(Cycles from, Cycles to)
{
    // Within a warp window no component changes state, so the front
    // end would have re-evaluated to the exact same stall every cycle.
    if (!halted_ && stallCounter_ != nullptr)
        *stallCounter_ += to - from;
}

} // namespace vip
