#include "pe/pe.hh"

#include <algorithm>
#include <bit>
#include <limits>

#include "sim/fault.hh"
#include "sim/logging.hh"

namespace vip {

namespace {

/** A register waiting on a memory response: ready only when the
 *  completion event (an external wake-up) lands. */
constexpr Cycles kNeverReady = kIdleForever;

/** Scalar-class µop result — the one definition both the per-cycle
 *  issue path and the fast-block executor evaluate. */
inline std::int64_t
scalarResult(const Uop &u, const std::uint64_t regs[])
{
    switch (u.form) {
      case ScalarForm::RR:
        return applyScalarOp(u.sop, static_cast<std::int64_t>(regs[u.rs1]),
                             static_cast<std::int64_t>(regs[u.rs2]));
      case ScalarForm::RI:
        return applyScalarOp(u.sop, static_cast<std::int64_t>(regs[u.rs1]),
                             u.imm);
      case ScalarForm::Imm:
        return u.imm;
    }
    return u.imm;
}

/** Branch-class µop next-pc — shared like scalarResult. */
inline std::size_t
branchTarget(const Uop &u, const std::uint64_t regs[], std::size_t pc)
{
    if (u.op == Opcode::Jmp)
        return static_cast<std::size_t>(u.imm);
    const auto a = static_cast<std::int64_t>(regs[u.rs1]);
    const auto b = static_cast<std::int64_t>(regs[u.rs2]);
    bool taken = false;
    switch (u.cond) {
      case BranchCond::Lt: taken = a < b; break;
      case BranchCond::Ge: taken = a >= b; break;
      case BranchCond::Eq: taken = a == b; break;
      case BranchCond::Ne: taken = a != b; break;
    }
    return taken ? static_cast<std::size_t>(u.imm) : pc + 1;
}

} // namespace

Pe::Pe(const PeConfig &cfg, DramStorage &dram, const AddressMapper &mapper,
       MemIssueFn issue, StatGroup *parent)
    : cfg_(cfg), dram_(dram), mapper_(mapper), memIssue_(std::move(issue)),
      arc_(cfg.arcEntries),
      statGroup_("pe" + std::to_string(cfg.peId), parent),
      stats_{Counter(&statGroup_, "instructions", "instructions committed"),
             Counter(&statGroup_, "vector_instructions",
                     "vector instructions committed"),
             Counter(&statGroup_, "vector_ops",
                     "vector ALU lane operations"),
             Counter(&statGroup_, "stall_scalar",
                     "cycles stalled on scalar register valid bits"),
             Counter(&statGroup_, "stall_vector_busy",
                     "cycles stalled on vector unit occupancy"),
             Counter(&statGroup_, "stall_arc",
                     "cycles stalled on ARC overlap or capacity"),
             Counter(&statGroup_, "stall_lsq",
                     "cycles stalled on load-store queue capacity"),
             Counter(&statGroup_, "stall_fence",
                     "cycles stalled in memfence"),
             Counter(&statGroup_, "stall_drain",
                     "cycles stalled in v.drain"),
             Counter(&statGroup_, "dram_read_bytes",
                     "bytes loaded from DRAM"),
             Counter(&statGroup_, "dram_write_bytes",
                     "bytes stored to DRAM"),
             Counter(&statGroup_, "timing_hazards",
                     "reads issued inside a producer's timing shadow"),
             Counter(&statGroup_, "busy_cycles",
                     "cycles an instruction issued")},
      fpGroup_("pe" + std::to_string(cfg.peId) + ".fastpath"),
      fpStats_{Counter(&fpGroup_, "uops_translated",
                       "static instructions decoded to µops at load"),
               Counter(&fpGroup_, "blocks_translated",
                       "pcs from which a stall-free fast block starts"),
               Counter(&fpGroup_, "block_runs",
                       "fast blocks executed functionally in bulk"),
               Counter(&fpGroup_, "fast_uops",
                       "µops retired via the fast path"),
               Counter(&fpGroup_, "fallback_ineligible",
                       "fast-path attempts stopped by an ineligible µop"),
               Counter(&fpGroup_, "fallback_regs",
                       "fast-path attempts stopped by a not-ready live-in"),
               Counter(&fpGroup_, "fallback_pending_load",
                       "fast-path attempts stopped by an outstanding "
                       "ld.reg target"),
               Counter(&fpGroup_, "fallback_horizon",
                       "fast-path attempts cut by the chunk cap or run "
                       "deadline"),
               Counter(&fpGroup_, "fallback_tracer",
                       "fast-path attempts skipped because a tracer is "
                       "attached")}
{
    vip_assert(memIssue_, "PE needs a memory issue function");
}

void
Pe::loadProgram(std::vector<Instruction> prog)
{
    vip_assert(prog.size() <= kInstBufferEntries, "program of ",
               prog.size(), " instructions exceeds the instruction buffer");
    prog_ = std::move(prog);
    decoded_.clear();
    if (cfg_.fastPath) {
        decoded_ = translateProgram(prog_);
        fpStats_.uopsTranslated += decoded_.uops.size();
        fpStats_.blocksTranslated += decoded_.entryPoints;
    }
    pc_ = 0;
    halted_ = prog_.empty();
    stallCounter_ = nullptr;
    stallWakeAt_ = 0;
    fpBusyUntil_ = 0;
}

void
Pe::setReg(unsigned r, std::uint64_t v)
{
    vip_assert(r < kNumScalarRegs, "register r", r, " out of range");
    regs_[r] = v;
    regReadyAt_[r] = 0;
}

std::uint64_t
Pe::reg(unsigned r) const
{
    vip_assert(r < kNumScalarRegs, "register r", r, " out of range");
    return regs_[r];
}

bool
Pe::regReady(unsigned r, Cycles now) const
{
    return regReadyAt_[r] <= now;
}

bool
Pe::regsReady(const Uop &u, Cycles now) const
{
    for (unsigned i = 0; i < u.nGating; ++i) {
        if (!regReady(u.gating[i], now))
            return false;
    }
    return true;
}

Cycles
Pe::regsWakeAt(const Uop &u) const
{
    Cycles wake = 0;
    for (unsigned i = 0; i < u.nGating; ++i)
        wake = std::max(wake, regReadyAt_[u.gating[i]]);
    return wake;
}

Cycles
Pe::earliestVecArcRetireAt() const
{
    Cycles wake = kIdleForever;
    for (const auto &[at, id] : vecArcPending_)
        wake = std::min(wake, at);
    return wake;
}

bool
Pe::stallFor(Counter &counter, Cycles wake_at)
{
    counter += 1;
    stallCounter_ = &counter;
    stallWakeAt_ = wake_at;
    return false;
}

void
Pe::storeElemSaturating(SpAddr a, ElemWidth w, std::int64_t v)
{
    const std::int64_t s = saturateToWidth(v, w);
    switch (w) {
      case ElemWidth::W8:
        scratchpad_.store<std::int8_t>(a, static_cast<std::int8_t>(s));
        break;
      case ElemWidth::W16:
        scratchpad_.store<std::int16_t>(a, static_cast<std::int16_t>(s));
        break;
      case ElemWidth::W32:
        scratchpad_.store<std::int32_t>(a, static_cast<std::int32_t>(s));
        break;
      case ElemWidth::W64:
        scratchpad_.store<std::int64_t>(a, s);
        break;
    }
}

void
Pe::checkReadHazard(SpAddr addr, unsigned bytes, Cycles now)
{
    if (scratchpad_.hazardousStreamRead(addr, bytes, now)) {
        stats_.timingHazards += 1;
        if (cfg_.strictHazards) {
            vip_panic("pe", cfg_.peId, ": timing hazard reading sp[",
                      addr, ", ", addr + bytes, ") at cycle ", now,
                      " — kernel is mis-scheduled");
        }
    }
}

bool
Pe::issueConfig(const Uop &u, Cycles now)
{
    if (!regsReady(u, now))
        return stallFor(stats_.stallScalar, regsWakeAt(u));
    if (u.op == Opcode::SetVl) {
        vl_ = regs_[u.rs1];
        vip_assert(vl_ > 0 && vl_ <= Scratchpad::kBytes,
                   "set.vl with illegal length ", vl_);
    } else {
        mr_ = regs_[u.rs1];
        vip_assert(mr_ > 0 && mr_ <= Scratchpad::kBytes,
                   "set.mr with illegal row count ", mr_);
    }
    return true;
}

bool
Pe::issueScalar(const Uop &u, Cycles now)
{
    if (!regsReady(u, now))
        return stallFor(stats_.stallScalar, regsWakeAt(u));
    regs_[u.rd] = static_cast<std::uint64_t>(scalarResult(u, regs_.data()));
    regReadyAt_[u.rd] = now + 1;
    return true;
}

bool
Pe::issueBranch(const Uop &u, Cycles now)
{
    if (!regsReady(u, now))
        return stallFor(stats_.stallScalar, regsWakeAt(u));
    pc_ = branchTarget(u, regs_.data(), pc_);
    return true;
}

void
Pe::execVector(const Uop &u, Cycles now, Cycles done_at)
{
    const unsigned w = u.wBytes;
    const auto vl = static_cast<unsigned>(vl_);

    if (u.op == Opcode::VecVec || u.op == Opcode::VecScalar) {
        const auto dst = static_cast<SpAddr>(regs_[u.rd]);
        const auto src_a = static_cast<SpAddr>(regs_[u.rs1]);
        checkReadHazard(src_a, vl * w, now);
        std::uint8_t *dp = scratchpad_.bytePtr(dst);
        const std::uint8_t *ap = scratchpad_.bytePtr(src_a);
        if (u.op == Opcode::VecVec) {
            const auto src_b = static_cast<SpAddr>(regs_[u.rs2]);
            checkReadHazard(src_b, vl * w, now);
            u.vecVec(dp, ap, scratchpad_.bytePtr(src_b), vl);
        } else {
            const std::int64_t scalar = saturateToWidth(
                static_cast<std::int64_t>(regs_[u.rs2]), u.width);
            u.vecScalar(dp, ap, scalar, vl);
        }
        // The destination streams out behind the pipeline depth.
        scratchpad_.markReadyStream(dst, vl * w, done_at - (vl * w) / 8);
        stats_.vectorLaneOps += vl;
        return;
    }

    // MatVec: MR x VL row-major matrix at rs1, vector at rs2, MR results.
    const auto mr = static_cast<unsigned>(mr_);
    const auto dst = static_cast<SpAddr>(regs_[u.rd]);
    const auto mat = static_cast<SpAddr>(regs_[u.rs1]);
    const auto vec = static_cast<SpAddr>(regs_[u.rs2]);
    const Cycles row_cycles = std::max<Cycles>(1, (vl * w + 7) / 8);
    const Cycles depth = done_at - now - row_cycles * mr;

    checkReadHazard(vec, vl * w, now);
    const MatVecRowFn row_fn = u.matVecRow;
    const std::uint8_t *vp = scratchpad_.bytePtr(vec);
    for (unsigned r = 0; r < mr; ++r) {
        checkReadHazard(mat + r * vl * w, vl * w, now + r * row_cycles);
        const std::int64_t acc =
            row_fn(scratchpad_.bytePtr(mat + r * vl * w), vp, vl);
        storeElemSaturating(dst + r * w, u.width, acc);
        scratchpad_.markReadyAt(dst + r * w, w,
                                now + (r + 1) * row_cycles + depth);
    }
    stats_.vectorLaneOps += 2ull * mr * vl;
}

bool
Pe::issueVector(const Uop &u, Cycles now)
{
    if (!regsReady(u, now))
        return stallFor(stats_.stallScalar, regsWakeAt(u));
    if (now < vectorBusyUntil_)
        return stallFor(stats_.stallVectorBusy, vectorBusyUntil_);
    vip_assert(vl_ > 0, "vector instruction with VL unset");

    const unsigned w = u.wBytes;
    const auto vl = static_cast<unsigned>(vl_);

    // Gather the scratchpad ranges this instruction touches.
    struct Range { SpAddr start; unsigned bytes; };
    Range ranges[3];
    unsigned nranges = 0;
    Cycles occupancy = 0;

    if (u.op == Opcode::MatVec) {
        vip_assert(mr_ > 0, "m.v with MR unset");
        vip_assert(cfg_.enableReduction,
                   "m.v issued on a configuration without the reduction "
                   "unit (Fig. 4 ablation)");
        const auto mr = static_cast<unsigned>(mr_);
        ranges[nranges++] = {static_cast<SpAddr>(regs_[u.rs1]),
                             mr * vl * w};
        ranges[nranges++] = {static_cast<SpAddr>(regs_[u.rs2]), vl * w};
        ranges[nranges++] = {static_cast<SpAddr>(regs_[u.rd]), mr * w};
        occupancy = std::max<Cycles>(1, (vl * w + 7) / 8) * mr;
    } else {
        ranges[nranges++] = {static_cast<SpAddr>(regs_[u.rs1]), vl * w};
        if (u.op == Opcode::VecVec) {
            ranges[nranges++] = {static_cast<SpAddr>(regs_[u.rs2]),
                                 vl * w};
        }
        ranges[nranges++] = {static_cast<SpAddr>(regs_[u.rd]), vl * w};
        occupancy = std::max<Cycles>(1, (vl * w + 7) / 8);
    }

    for (unsigned i = 0; i < nranges; ++i) {
        vip_assert(ranges[i].start + ranges[i].bytes <= Scratchpad::kBytes,
                   "vector operand [", ranges[i].start, ", ",
                   ranges[i].start + ranges[i].bytes,
                   ") outside the scratchpad");
        if (arc_.overlaps(ranges[i].start,
                          ranges[i].start + ranges[i].bytes)) {
            // The blocking entry is either a vector-pipeline entry
            // (known retirement time) or a memory entry cleared by a
            // completion event; either way the earliest pipeline
            // retirement is a safe (never-late) wake estimate.
            return stallFor(stats_.stallArc, earliestVecArcRetireAt());
        }
    }

    const Cycles alu = u.vop == VecOp::Mul ? cfg_.mulStages
                                           : cfg_.aluStages;
    const Cycles depth = alu + (u.op == Opcode::MatVec
                                    ? cfg_.reduceStages
                                    : 0);
    // The last element enters the pipe at now + occupancy - 1 and its
    // result is written `depth` stages later.
    const Cycles done_at = now + occupancy - 1 + depth;

    if (cfg_.arcCoversVector) {
        // Hardware interlock mode: the destination range gets an ARC
        // entry held until the pipeline writes it back, so later
        // instructions stall instead of observing the timing shadow.
        const auto &dst = ranges[nranges - 1];
        const int id = arc_.allocate(dst.start, dst.start + dst.bytes);
        if (id < 0)
            return stallFor(stats_.stallArc, earliestVecArcRetireAt());
        vecArcPending_.emplace_back(done_at, id);
    }

    execVector(u, now, done_at);

    vectorBusyUntil_ = now + occupancy;
    vectorDrainedAt_ = std::max(vectorDrainedAt_, done_at);
    stats_.vectorInstructions += 1;
    return true;
}

int
Pe::allocTransfer(unsigned pieces, int arc_id, int dest_reg)
{
    int idx;
    if (freeTransfer_ >= 0) {
        idx = freeTransfer_;
        freeTransfer_ = transfers_[idx].nextFree;
    } else {
        idx = static_cast<int>(transfers_.size());
        transfers_.emplace_back();
    }
    transfers_[idx] = Transfer{pieces, arc_id, dest_reg, -1};
    return idx;
}

void
Pe::completeTransferPiece(int slot, const MemRequest &done)
{
    vip_assert(lsqLive_ > 0, "LSQ underflow");
    --lsqLive_;
    Transfer &t = transfers_[slot];
    vip_assert(t.pending > 0, "stray transfer completion");
    if (--t.pending == 0) {
        if (t.arcId >= 0)
            arc_.clear(t.arcId);
        if (t.destReg >= 0) {
            regReadyAt_[t.destReg] = done.completedAt;
            if (--pendingLoadCount_[t.destReg] == 0)
                pendingLoadRegs_ &= ~(std::uint64_t{1} << t.destReg);
        }
        t.nextFree = freeTransfer_;
        freeTransfer_ = slot;
    }
}

bool
Pe::issueDramTransfer(Addr dram, unsigned bytes, bool is_write, int arc_id,
                      int dest_reg, Cycles now)
{
    // Split at vault-contiguity boundaries so each piece has one home.
    const auto &geom = mapper_.geometry();
    const std::uint64_t span = mapper_.scheme() == AddrMap::VaultRowBankCol
                                   ? geom.bytesPerVault()
                                   : geom.colBytes;

    // Count pieces first: the transfer issues atomically or not at all.
    unsigned pieces = 0;
    {
        Addr a = dram;
        std::uint64_t rem = bytes;
        while (rem > 0) {
            const std::uint64_t chunk = std::min<std::uint64_t>(
                rem, span - (a % span));
            ++pieces;
            a += chunk;
            rem -= chunk;
        }
    }
    if (lsqLive_ + pieces > cfg_.lsqEntries) {
        // Entries free when responses arrive: an external wake-up.
        return stallFor(stats_.stallLsq, kIdleForever);
    }

    // One pooled tracker slot per transfer (instead of a heap-allocated
    // shared counter), and pooled request descriptors: the steady-state
    // PE↔memory path allocates nothing. The [this, slot] capture fits
    // std::function's small-buffer storage, so assigning onComplete
    // does not allocate either.
    const int slot = allocTransfer(pieces, arc_id, dest_reg);
    Addr a = dram;
    std::uint64_t rem = bytes;
    while (rem > 0) {
        const auto chunk = static_cast<unsigned>(
            std::min<std::uint64_t>(rem, span - (a % span)));
        auto req = reqPool_.acquire();
        req->addr = a;
        req->bytes = chunk;
        req->isWrite = is_write;
        req->sourcePe = cfg_.peId;
        req->id = nextReqId_++;
        req->issuedAt = now;
        req->onComplete = [this, slot](MemRequest &done) {
            completeTransferPiece(slot, done);
        };
        ++lsqLive_;
        memIssue_(std::move(req));
        a += chunk;
        rem -= chunk;
    }

    if (is_write)
        stats_.dramWriteBytes += bytes;
    else
        stats_.dramReadBytes += bytes;
    return true;
}

bool
Pe::issueMemory(const Uop &u, Cycles now)
{
    if (!regsReady(u, now))
        return stallFor(stats_.stallScalar, regsWakeAt(u));
    const unsigned w = u.wBytes;

    switch (u.op) {
      case Opcode::LdSram: {
        const auto sp = static_cast<SpAddr>(regs_[u.rd]);
        const Addr dram = regs_[u.rs1];
        const auto bytes = static_cast<unsigned>(regs_[u.rs2] * w);
        vip_assert(bytes > 0 && sp + bytes <= Scratchpad::kBytes,
                   "ld.sram range [", sp, ", ", sp + bytes,
                   ") outside the scratchpad");
        if (arc_.overlaps(sp, sp + bytes))
            return stallFor(stats_.stallArc, earliestVecArcRetireAt());
        if (arc_.full())
            return stallFor(stats_.stallArc, earliestVecArcRetireAt());
        const int arc_id = arc_.allocate(sp, sp + bytes);
        vip_assert(arc_id >= 0, "ARC allocation failed after full check");
        if (!issueDramTransfer(dram, bytes, false, arc_id, -1, now)) {
            arc_.clear(arc_id);
            return false;
        }
        // Function: data lands now, in program order — straight from
        // the DRAM pages into the scratchpad, no staging buffer. Fault
        // injection hooks the same functional boundary: flips (and ECC
        // correction) happen before the data is copied, so corruption
        // is architecturally visible exactly when ECC misses it.
        if (injector_)
            injector_->onDramRead(dram, bytes, cfg_.peId);
        dram_.copyTo(dram, scratchpad_, sp, bytes);
        return true;
      }
      case Opcode::StSram: {
        const auto sp = static_cast<SpAddr>(regs_[u.rd]);
        const Addr dram = regs_[u.rs1];
        const auto bytes = static_cast<unsigned>(regs_[u.rs2] * w);
        vip_assert(bytes > 0 && sp + bytes <= Scratchpad::kBytes,
                   "st.sram range [", sp, ", ", sp + bytes,
                   ") outside the scratchpad");
        if (arc_.overlaps(sp, sp + bytes))
            return stallFor(stats_.stallArc, earliestVecArcRetireAt());
        checkReadHazard(sp, bytes, now);
        if (!issueDramTransfer(dram, bytes, true, -1, -1, now))
            return false;
        dram_.copyFrom(dram, scratchpad_, sp, bytes);
        if (injector_)
            injector_->onDramWrite(dram, bytes);
        return true;
      }
      case Opcode::LdReg: {
        const Addr dram = regs_[u.rs1];
        if (!issueDramTransfer(dram, w, false, -1,
                               static_cast<int>(u.rd), now)) {
            return false;
        }
        // Sign-extended functional load at issue.
        if (injector_)
            injector_->onDramRead(dram, w, cfg_.peId);
        std::int64_t v = 0;
        switch (u.width) {
          case ElemWidth::W8: v = dram_.load<std::int8_t>(dram); break;
          case ElemWidth::W16: v = dram_.load<std::int16_t>(dram); break;
          case ElemWidth::W32: v = dram_.load<std::int32_t>(dram); break;
          case ElemWidth::W64: v = dram_.load<std::int64_t>(dram); break;
        }
        regs_[u.rd] = static_cast<std::uint64_t>(v);
        regReadyAt_[u.rd] = kNeverReady;  // valid bit cleared
        // The completion event will set the valid bit; until then no
        // fast block may write this register (the completion would
        // overwrite the block's regReadyAt_ out of order).
        pendingLoadRegs_ |= std::uint64_t{1} << u.rd;
        ++pendingLoadCount_[u.rd];
        return true;
      }
      case Opcode::StReg: {
        const Addr dram = regs_[u.rs1];
        if (!issueDramTransfer(dram, w, true, -1, -1, now))
            return false;
        const std::uint64_t v = regs_[u.rd];
        switch (u.width) {
          case ElemWidth::W8:
            dram_.store<std::uint8_t>(dram, static_cast<std::uint8_t>(v));
            break;
          case ElemWidth::W16:
            dram_.store<std::uint16_t>(dram,
                                       static_cast<std::uint16_t>(v));
            break;
          case ElemWidth::W32:
            dram_.store<std::uint32_t>(dram,
                                       static_cast<std::uint32_t>(v));
            break;
          case ElemWidth::W64:
            dram_.store<std::uint64_t>(dram, v);
            break;
        }
        if (injector_)
            injector_->onDramWrite(dram, w);
        return true;
      }
      default:
        vip_panic("not a memory instruction");
    }
}

bool
Pe::issueUop(const Uop &u, Cycles now)
{
    const std::size_t pc_at_issue = pc_;
    bool issued = false;

    switch (u.cls) {
      case UopClass::Config:
        issued = issueConfig(u, now);
        break;
      case UopClass::Drain:
        if (now < vectorDrainedAt_) {
            stallFor(stats_.stallDrain, vectorDrainedAt_);
        } else {
            issued = true;
        }
        break;
      case UopClass::Vector:
        issued = issueVector(u, now);
        break;
      case UopClass::Scalar:
        issued = issueScalar(u, now);
        break;
      case UopClass::Branch:
        issued = issueBranch(u, now);
        break;
      case UopClass::Memory:
        issued = issueMemory(u, now);
        break;
      case UopClass::Fence:
        if (lsqLive_ > 0) {
            // Drains on memory responses: an external wake-up.
            stallFor(stats_.stallFence, kIdleForever);
        } else {
            issued = true;
        }
        break;
      case UopClass::Halt:
        halted_ = true;
        issued = true;
        break;
      case UopClass::Nop:
        issued = true;
        break;
    }

    if (!issued)
        return false;

    stallCounter_ = nullptr;
    stallWakeAt_ = 0;
    if (tracer_)
        tracer_(now, pc_at_issue, prog_[pc_at_issue]);
    stats_.instructions += 1;
    stats_.busyCycles += 1;
    if (injector_) {
        // Scratchpad upsets: keyed by (PE, instruction ordinal),
        // never the cycle, so fast-forward injects identically.
        const long bit = injector_->spFlip(
            cfg_.peId, stats_.instructions.value(),
            std::uint64_t{Scratchpad::kBytes} * 8);
        if (bit >= 0) {
            *scratchpad_.bytePtr(static_cast<SpAddr>(bit / 8)) ^=
                static_cast<std::uint8_t>(1u << (bit % 8));
        }
    }
    // Branches set pc_ themselves; everything else — including
    // Halt, whose resume-at-next-instruction semantics the host
    // relies on when it reloads a program — falls through to the
    // next slot.
    if (u.cls != UopClass::Branch)
        ++pc_;
    return true;
}

void
Pe::execFastBlock(const FastBlock &b, Cycles at)
{
    const Uop *uops = decoded_.uops.data();
    for (unsigned i = 0; i < b.len; ++i) {
        const Uop &u = uops[pc_];
        switch (u.cls) {
          case UopClass::Scalar:
            regs_[u.rd] =
                static_cast<std::uint64_t>(scalarResult(u, regs_.data()));
            // µop i of the block issues at cycle at + i; the scalar
            // write is architecturally ready one cycle later, exactly
            // as issueScalar would have recorded.
            regReadyAt_[u.rd] = at + i + 1;
            ++pc_;
            break;
          case UopClass::Config:
            if (u.op == Opcode::SetVl) {
                vl_ = regs_[u.rs1];
                vip_assert(vl_ > 0 && vl_ <= Scratchpad::kBytes,
                           "set.vl with illegal length ", vl_);
            } else {
                mr_ = regs_[u.rs1];
                vip_assert(mr_ > 0 && mr_ <= Scratchpad::kBytes,
                           "set.mr with illegal row count ", mr_);
            }
            ++pc_;
            break;
          case UopClass::Branch:
            pc_ = branchTarget(u, regs_.data(), pc_);
            break;
          default:  // Nop — no other class is block-eligible
            ++pc_;
            break;
        }
        if (injector_) {
            // Same per-µop ordinal roll as issueUop: the event-identity
            // key is (PE, instruction ordinal), so flips land on the
            // same instructions whether or not the block ran in bulk.
            stats_.instructions += 1;
            const long bit = injector_->spFlip(
                cfg_.peId, stats_.instructions.value(),
                std::uint64_t{Scratchpad::kBytes} * 8);
            if (bit >= 0) {
                *scratchpad_.bytePtr(static_cast<SpAddr>(bit / 8)) ^=
                    static_cast<std::uint8_t>(1u << (bit % 8));
            }
        }
    }
    if (!injector_)
        stats_.instructions += b.len;
    stats_.busyCycles += b.len;
    ++fpStats_.blockRuns;
    fpStats_.fastUops += b.len;
}

bool
Pe::tryFastPath(Cycles now)
{
    if (tracer_) {
        // The tracer observes every issue; stay on the per-µop path.
        ++fpStats_.fallbackTracer;
        return false;
    }

    const Cycles horizon =
        std::min(runDeadline_, now + cfg_.fastPathChunk);
    Cycles charged = 0;
    Counter *cause = nullptr;

    // Chain whole blocks (a self-looping block chains with itself, so
    // a hot loop executes natively until the horizon cuts it). Every
    // break either leaves the partial block to the cycle-accurate path
    // at the exact cycle the window ends, or records why nothing ran.
    while (pc_ < decoded_.blocks.size()) {
        const FastBlock &b = decoded_.blocks[pc_];
        if (b.len == 0) {
            cause = &fpStats_.fallbackIneligible;
            break;
        }
        const Cycles entry = now + charged;
        if (entry + b.len > horizon) {
            cause = &fpStats_.fallbackHorizon;
            break;
        }
        if ((b.writes & pendingLoadRegs_) != 0) {
            cause = &fpStats_.fallbackPendingLoad;
            break;
        }
        bool ready = true;
        for (std::uint64_t m = b.liveIn; m != 0; m &= m - 1) {
            // Live-ins checked at block entry (conservative: the
            // cycle-accurate path could begin a block whose later
            // µops' inputs become ready mid-block; we just fall back
            // there, which is exact).
            if (regReadyAt_[std::countr_zero(m)] > entry) {
                ready = false;
                break;
            }
        }
        if (!ready) {
            cause = &fpStats_.fallbackRegs;
            break;
        }
        execFastBlock(b, entry);
        charged += b.len;
    }

    if (charged == 0) {
        if (cause)
            ++*cause;
        return false;
    }
    // The simulated work of cycles [now, now + charged) is done; ticks
    // inside the window are no-ops and nextEventAt() lets fast-forward
    // warp it.
    fpBusyUntil_ = now + charged;
    stallCounter_ = nullptr;
    stallWakeAt_ = 0;
    return true;
}

void
Pe::tick(Cycles now)
{
    // Retire vector-pipeline ARC entries whose writeback completed.
    if (!vecArcPending_.empty()) {
        for (auto it = vecArcPending_.begin();
             it != vecArcPending_.end();) {
            if (it->first <= now) {
                arc_.clear(it->second);
                it = vecArcPending_.erase(it);
            } else {
                ++it;
            }
        }
    }
    if (halted_)
        return;
    if (now < fpBusyUntil_) {
        // Inside a bulk-charged fast-block window: the issue slots of
        // these cycles were consumed by execFastBlock already.
        return;
    }
    vip_assert(pc_ < prog_.size(), "pe", cfg_.peId,
               ": PC ran off the end of the program");

    if (cfg_.fastPath) {
        if (tryFastPath(now))
            return;
        issueUop(decoded_.uops[pc_], now);
    } else {
        // Oracle mode: re-decode the instruction at the PC every cycle
        // — the classic interpreter, expressed through the same
        // translation and the same issue path the fast mode replays.
        issueUop(translateUop(prog_[pc_]), now);
    }
}

std::string
Pe::stallReason() const
{
    if (halted_)
        return "halted";
    if (stallCounter_ == nullptr)
        return "ready";
    return stallCounter_->name();
}

const Instruction *
Pe::currentInstruction() const
{
    if (halted_ || pc_ >= prog_.size())
        return nullptr;
    return &prog_[pc_];
}

Cycles
Pe::nextEventAt(Cycles now) const
{
    if (halted_) {
        // Outstanding responses (if any) are events of the memory
        // system; pending pipeline-ARC retirements are retired lazily
        // by the tick prologue and have no observable effect while no
        // instruction can issue.
        return kIdleForever;
    }
    if (now < fpBusyUntil_) {
        // Bulk-charged window: nothing to do until it ends.
        return fpBusyUntil_;
    }
    if (stallCounter_ == nullptr) {
        // Actively issuing (or not yet ticked): never warp past it.
        return now;
    }
    return std::max(stallWakeAt_, now);
}

void
Pe::fastForward(Cycles from, Cycles to)
{
    // Within a warp window no component changes state, so the front
    // end would have re-evaluated to the exact same stall every cycle.
    // Inside a fast-block busy window stallCounter_ is null and the
    // cycles were already charged as busy, so nothing accrues here.
    if (!halted_ && stallCounter_ != nullptr)
        *stallCounter_ += to - from;
}

} // namespace vip
