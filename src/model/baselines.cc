#include "model/baselines.hh"

namespace vip {

std::vector<ReportedSystem>
tableIvBaselines()
{
    return {
        // Markov random fields (full-HD stereo unless noted).
        {"Optical Gibbs' Sampling", "MRF", 1100.0, 12.0, 15.0, 200.0, -1,
         5000, true},
        {"Tile BP (720p)", "MRF", 32.7, 0.242, 90.0, 12.0, -1, 1, true},
        {"Pascal Titan X", "MRF", 92.2, 250.0, 16.0, 471.0, -1, 8, false},
        // VGG-16 convolution layers only.
        {"Eyeriss", "VGG-16 conv", 4309.0, 0.236, 65.0, 12.0, 3, -1,
         false},
        // VGG-16 full network.
        {"Pascal Titan X", "VGG-16", 41.6, 250.0, 16.0, 471.0, 16, -1,
         false},
        // VGG-19 full network.
        {"Volta", "VGG-19", 2.2, 144.0, 12.0, 815.0, 1, -1, false},
        {"Jetson TX2", "VGG-19", 42.2, 10.0, 16.0, 0.0, 1, -1, false},
    };
}

double
eyerissScaledTimeMs(double reported_ms, double eyeriss_area_mm2,
                    double eyeriss_tech_nm, double eyeriss_clock_ghz)
{
    const double area = kVipAreaMm2 / eyeriss_area_mm2;
    const double tech = (eyeriss_tech_nm / kVipTechNm) *
                        (eyeriss_tech_nm / kVipTechNm);
    const double clock = kVipClockGhz / eyeriss_clock_ghz;
    return reported_ms / area / tech / clock;
}

double
areaRatioVsVip(double area_mm2, double tech_nm)
{
    const double scale = (kVipTechNm / tech_nm) * (kVipTechNm / tech_nm);
    return area_mm2 * scale / kVipAreaMm2;
}

} // namespace vip
