#include "model/power.hh"

namespace vip {

double
PePowerModel::peWatts(const Pe::Stats &stats, Cycles interval,
                      double mul_fraction) const
{
    if (interval == 0)
        return staticW;

    const auto lane_ops =
        static_cast<double>(stats.vectorLaneOps.value());
    const double lane_pj =
        lane_ops * (mul_fraction * mulLaneOpPj +
                    (1.0 - mul_fraction) * addLaneOpPj);

    // Scratchpad traffic: each lane op reads two operands and writes
    // one result element (2 B each at 16-bit); DRAM transfers cross it
    // once more.
    const double dram_bytes =
        static_cast<double>(stats.dramReadBytes.value()) +
        static_cast<double>(stats.dramWriteBytes.value());
    const double sp_pj =
        (lane_ops * 6.0 + dram_bytes) * scratchpadBytePj;

    const auto scalar_ops = static_cast<double>(
        stats.instructions.value() - stats.vectorInstructions.value());
    const double scalar_pj = scalar_ops * scalarOpPj;
    const double dram_pj = dram_bytes * dramBytePj;

    const double seconds = static_cast<double>(interval) *
                           kSecondsPerCycle;
    const double dynamic =
        (lane_pj + sp_pj + scalar_pj + dram_pj) * 1e-12 / seconds;
    return dynamic + staticW;
}

ArrayPowerSummary
arrayPowerSummary(double bp_pe_watts, double cnn_pe_watts)
{
    ArrayPowerSummary s{};
    s.peAreaMm2 = PeAreaBreakdown{}.total();
    s.arrayAreaMm2 = 128.0 * s.peAreaMm2;
    s.bpWatts = 128.0 * bp_pe_watts;
    s.cnnWatts = 128.0 * cnn_pe_watts;
    // 320 GB/s * 8 bit/B * 10 pJ/bit (Jeddeloh & Keeth prototype).
    s.hmcProtoWatts = 320e9 * 8 * 10e-12;
    s.hmcIbmWatts = 5.0;  // IBM 14 nm estimate for a 320 GB/s HMC
    return s;
}

} // namespace vip
