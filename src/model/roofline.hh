/**
 * @file
 * The roofline model used for Figure 3.
 *
 * Performance counts 16-bit vector-unit ALU operations only; memory
 * traffic counts every DRAM byte moved, including scalar-pipeline
 * accesses such as synchronization (the paper's accounting, Sec. VI-A).
 */

#ifndef VIP_MODEL_ROOFLINE_HH
#define VIP_MODEL_ROOFLINE_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace vip {

/** A machine's roofline: compute peak and memory-bandwidth slope. */
struct Roofline
{
    double peakGops;          ///< GOp/s at the plateau
    double peakBandwidthGBs;  ///< slope of the memory-bound region

    /** Attainable GOp/s at a given arithmetic intensity (op/byte). */
    double
    attainable(double ops_per_byte) const
    {
        const double mem = ops_per_byte * peakBandwidthGBs;
        return mem < peakGops ? mem : peakGops;
    }

    /** Arithmetic intensity of the ridge (knee) point. */
    double knee() const { return peakGops / peakBandwidthGBs; }
};

/**
 * VIP's roofline for a machine slice: each PE contributes
 * 8 ops/cycle at 16-bit (4 vertical + 4 horizontal lanes, Sec. III)
 * and each vault 10 GB/s. The full machine: 1,280 GOp/s and 320 GB/s.
 */
inline Roofline
vipRoofline(unsigned pes = 128, unsigned vaults = 32)
{
    return {pes * 8 * kClockHz / 1e9, vaults * 10.0};
}

/** One measured kernel on the roofline plot. */
struct RooflinePoint
{
    std::string name;
    double opsPerByte = 0;
    double gops = 0;

    /** Fraction of the attainable roofline actually achieved. */
    double
    efficiency(const Roofline &roof) const
    {
        const double cap = roof.attainable(opsPerByte);
        return cap > 0 ? gops / cap : 0.0;
    }
};

/** Compute a point from raw simulation observations. */
inline RooflinePoint
makePoint(std::string name, std::uint64_t ops, std::uint64_t bytes,
          Cycles cycles)
{
    RooflinePoint p;
    p.name = std::move(name);
    const double secs = static_cast<double>(cycles) * kSecondsPerCycle;
    p.opsPerByte = bytes ? static_cast<double>(ops) /
                               static_cast<double>(bytes)
                         : 0.0;
    p.gops = secs > 0 ? static_cast<double>(ops) / secs / 1e9 : 0.0;
    return p;
}

} // namespace vip

#endif // VIP_MODEL_ROOFLINE_HH
