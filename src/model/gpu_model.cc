#include "model/gpu_model.hh"

#include <algorithm>

namespace vip {

GpuBpEstimate
gpuBpIteration(unsigned width, unsigned height, unsigned labels,
               const GpuSpec &spec)
{
    const double L = labels;
    const double ops_per_update = 3 * L + 2 * L * L;
    const double bytes_per_update = 4 * L * 2;  // 16-bit messages

    double total = 0;
    double floor_steps = 0, steps_total = 0;

    // Two horizontal sweeps (W steps of H updates) and two vertical
    // ones (H steps of W updates).
    const struct { unsigned steps, updates; } sweeps[2] = {
        {width, height}, {height, width}};
    for (const auto &sw : sweeps) {
        // Throughput time for one step's worth of updates.
        const double compute = sw.updates * ops_per_update /
                               (spec.peakGops * 1e9);
        const double memory = sw.updates * bytes_per_update /
                              (spec.peakBandwidthGBs * 1e9);
        const double throughput = std::max(compute, memory);
        const double step = std::max(throughput, spec.stepLatencyFloor);
        total += 2.0 * sw.steps * step;
        steps_total += 2.0 * sw.steps;
        if (spec.stepLatencyFloor >= throughput)
            floor_steps += 2.0 * sw.steps;
    }

    return {total * 1e3, floor_steps / steps_total};
}

} // namespace vip
