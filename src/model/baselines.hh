/**
 * @file
 * Published baselines and the paper's normalization arithmetic
 * (Table IV and Sec. VI-A).
 *
 * The paper compares against *reported* numbers from Eyeriss, Tile-BP,
 * Optical Gibbs' sampling, the Pascal Titan X, Volta, and Jetson TX2,
 * normalizing for silicon area, technology node, and clock frequency
 * where a direct comparison would be unfair. We reproduce both the
 * constants and the normalization formulas.
 */

#ifndef VIP_MODEL_BASELINES_HH
#define VIP_MODEL_BASELINES_HH

#include <string>
#include <vector>

namespace vip {

/** One published system's reported figures (Table IV row). */
struct ReportedSystem
{
    std::string name;
    std::string workload;
    double timeMs = 0;
    double powerW = 0;
    double techNm = 0;
    double areaMm2 = 0;
    int batch = -1;        ///< -1: not applicable
    int iterations = -1;   ///< -1: not applicable
    bool differentAlgorithm = false;  ///< the paper's asterisk
};

/** All Table IV baseline rows, exactly as the paper reports them. */
std::vector<ReportedSystem> tableIvBaselines();

/** VIP's own constants. */
inline constexpr double kVipTechNm = 28.0;
inline constexpr double kVipAreaMm2 = 18.0;
inline constexpr double kVipClockGhz = 1.25;
inline constexpr double kVipPowerBpW = 3.5;
inline constexpr double kVipPowerCnnW = 4.8;

/**
 * The paper's Eyeriss normalization (Sec. VI-A): divide the reported
 * runtime by the area ratio, by the squared technology ratio, and by
 * the clock ratio — optimistically assuming Eyeriss scales linearly.
 * 4,309 ms becomes ~102 ms, which VIP's 91.6 ms is "less than 10%
 * worse than".
 */
double eyerissScaledTimeMs(double reported_ms,
                           double eyeriss_area_mm2 = 12.0,
                           double eyeriss_tech_nm = 65.0,
                           double eyeriss_clock_ghz = 0.2);

/**
 * Area of a system normalized to VIP's technology node, as a multiple
 * of VIP's area (the paper's ~250x figure for Volta).
 */
double areaRatioVsVip(double area_mm2, double tech_nm);

} // namespace vip

#endif // VIP_MODEL_BASELINES_HH
