/**
 * @file
 * Analytical model of the hand-tuned CUDA BP-M baseline on an Nvidia
 * Titan X (Pascal) — the paper's GPU comparison point (Sec. V-B).
 *
 * Substitution note (DESIGN.md): we have no GPU, so we model the
 * mechanism the paper's profiling identified — the GPU is limited by
 * instruction and memory *latency*, not throughput, because BP-M's
 * sequential sweep order leaves too little parallelism per step to
 * fill the machine. Each of the four sweeps serializes its W (or H)
 * steps; one step exposes only (orthogonal-dim x L) lanes of work, so
 * the time per step is the larger of its throughput time (compute or
 * bandwidth) and a latency floor spent filling/draining the machine.
 * The floor is calibrated once so the full-HD, 16-label configuration
 * reproduces the paper's measured 11.5 ms per iteration; every other
 * prediction (other sizes, label counts, and the iteration count in
 * Table IV) then follows from the model.
 */

#ifndef VIP_MODEL_GPU_MODEL_HH
#define VIP_MODEL_GPU_MODEL_HH

namespace vip {

/** Device peaks (Titan X Pascal, Sec. V-B). */
struct GpuSpec
{
    double peakGops = 11000.0;       ///< FP32 GOp/s
    double peakBandwidthGBs = 480.0;
    double smCount = 28;
    /** Latency floor per dependent sweep step (s), calibrated so the
     *  full-HD 16-label iteration lands on the measured 11.5 ms. */
    double stepLatencyFloor = 1.92e-6;
};

struct GpuBpEstimate
{
    double iterationMs;
    double latencyBoundFraction;  ///< share of steps at the floor
};

/** Predict one BP-M iteration (4 sweeps) on a W x H, L-label MRF. */
GpuBpEstimate gpuBpIteration(unsigned width, unsigned height,
                             unsigned labels,
                             const GpuSpec &spec = GpuSpec{});

} // namespace vip

#endif // VIP_MODEL_GPU_MODEL_HH
