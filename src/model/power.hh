/**
 * @file
 * Area and power model of a VIP PE (Sec. VII).
 *
 * Substitution note (DESIGN.md): the paper synthesizes a PE in TSMC
 * 28 nm with CACTI-modelled SRAM macros and drives Synopsys PrimeTime
 * with RTL switching activity. We reproduce the *methodology* with an
 * activity-based analytical model: per-event energies (vertical /
 * horizontal lane operations, multiplies, scratchpad and register
 * traffic, instruction issue) are driven by the simulator's statistics
 * counters, plus static leakage. Constants are calibrated so a PE
 * running the BP kernel dissipates ~27 mW and the CNN kernel ~38 mW,
 * the paper's two synthesis measurements; everything in between
 * (pooling, FC, idle PEs, the Fig. 4 variants) then follows from
 * activity.
 *
 * Area uses a per-component budget that sums to the paper's
 * 0.141 mm^2.
 */

#ifndef VIP_MODEL_POWER_HH
#define VIP_MODEL_POWER_HH

#include <string>
#include <vector>

#include "pe/pe.hh"
#include "sim/types.hh"

namespace vip {

/** Silicon area of one PE by component (mm^2, 28 nm). */
struct PeAreaBreakdown
{
    double scratchpad = 0.046;   ///< eight 512x8 SRAMs
    double vectorUnits = 0.038;  ///< vertical + horizontal datapaths
    double instBuffer = 0.022;   ///< 1024x32 SRAM
    double scalarUnit = 0.014;   ///< 64x64 regfile + ALU
    double loadStore = 0.012;    ///< LSQ (64x32 SRAM) + control
    double frontend = 0.006;     ///< fetch/decode/issue
    double arc = 0.003;          ///< 20-entry associative array

    double
    total() const
    {
        return scratchpad + vectorUnits + instBuffer + scalarUnit +
               loadStore + frontend + arc;
    }
};

/** Per-event dynamic energies (pJ) and leakage (W) for one PE. */
struct PePowerModel
{
    double addLaneOpPj = 1.05;   ///< one 16-bit add/min/max lane op
    double mulLaneOpPj = 4.30;   ///< one 16-bit multiply lane op
    double scratchpadBytePj = 0.18;
    double scalarOpPj = 2.2;     ///< issue + scalar datapath + regfile
    double dramBytePj = 0.9;     ///< PE-side LSQ/port cost only
    double staticW = 0.0042;

    /**
     * Average power over an interval, from the PE's statistics deltas.
     * @param mul_fraction share of vector lane ops that are multiplies
     *        (the stats counter aggregates lanes; kernels know their
     *        mix: BP = 0, CNN/FC ~= 0.5 with the reduction half adds)
     */
    double peWatts(const Pe::Stats &stats, Cycles interval,
                   double mul_fraction) const;
};

/** Sec. VII summary for the whole 128-PE array. */
struct ArrayPowerSummary
{
    double peAreaMm2;
    double arrayAreaMm2;
    double bpWatts;       ///< 128 PEs running the BP kernel
    double cnnWatts;      ///< 128 PEs running the CNN kernel
    double hmcProtoWatts; ///< 10 pJ/bit early-prototype HMC at 320 GB/s
    double hmcIbmWatts;   ///< IBM 14 nm estimate
};

ArrayPowerSummary arrayPowerSummary(double bp_pe_watts,
                                    double cnn_pe_watts);

} // namespace vip

#endif // VIP_MODEL_POWER_HH
