#include "workloads/nn.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vip {

unsigned
LayerDesc::outHeight() const
{
    switch (kind) {
      case Kind::Conv: return inHeight;  // stride 1, same padding
      case Kind::Pool: return inHeight / window;
      case Kind::Fc: return 1;
    }
    return 0;
}

unsigned
LayerDesc::outWidth() const
{
    switch (kind) {
      case Kind::Conv: return inWidth;
      case Kind::Pool: return inWidth / window;
      case Kind::Fc: return 1;
    }
    return 0;
}

std::uint64_t
LayerDesc::macs() const
{
    switch (kind) {
      case Kind::Conv:
        return static_cast<std::uint64_t>(outChannels) * outHeight() *
               outWidth() * inChannels * kernel * kernel;
      case Kind::Pool:
        return static_cast<std::uint64_t>(inChannels) * outHeight() *
               outWidth() * window * window;
      case Kind::Fc:
        return static_cast<std::uint64_t>(inputs) * outputs;
    }
    return 0;
}

std::uint64_t
LayerDesc::minBytesMoved() const
{
    constexpr unsigned b = sizeof(Fx16);
    switch (kind) {
      case Kind::Conv:
        return static_cast<std::uint64_t>(b) *
               (static_cast<std::uint64_t>(inChannels) * inHeight *
                    inWidth +
                static_cast<std::uint64_t>(outChannels) * inChannels *
                    kernel * kernel +
                outChannels +
                static_cast<std::uint64_t>(outChannels) * outHeight() *
                    outWidth());
      case Kind::Pool:
        return static_cast<std::uint64_t>(b) * inChannels *
               (static_cast<std::uint64_t>(inHeight) * inWidth +
                static_cast<std::uint64_t>(outHeight()) * outWidth());
      case Kind::Fc:
        return static_cast<std::uint64_t>(b) *
               (inputs + static_cast<std::uint64_t>(inputs) * outputs +
                2ull * outputs);
    }
    return 0;
}

FeatureMap
convLayer(const FeatureMap &in, const std::vector<Fx16> &filters,
          const std::vector<Fx16> &bias, unsigned out_channels,
          unsigned kernel, bool relu)
{
    vip_assert(kernel % 2 == 1, "even kernels unsupported");
    vip_assert(filters.size() == static_cast<std::size_t>(out_channels) *
                                     in.channels * kernel * kernel,
               "filter tensor size mismatch");
    vip_assert(bias.size() == out_channels, "bias size mismatch");

    const int pad = static_cast<int>(kernel) / 2;
    FeatureMap out(out_channels, in.height, in.width);

    for (unsigned oc = 0; oc < out_channels; ++oc) {
        const Fx16 *filt = filters.data() +
                           static_cast<std::size_t>(oc) * in.channels *
                               kernel * kernel;
        for (unsigned y = 0; y < in.height; ++y) {
            for (unsigned x = 0; x < in.width; ++x) {
                std::int64_t acc = bias[oc];
                for (unsigned ic = 0; ic < in.channels; ++ic) {
                    for (unsigned ky = 0; ky < kernel; ++ky) {
                        const int sy = static_cast<int>(y) +
                                       static_cast<int>(ky) - pad;
                        if (sy < 0 || sy >= static_cast<int>(in.height))
                            continue;
                        for (unsigned kx = 0; kx < kernel; ++kx) {
                            const int sx = static_cast<int>(x) +
                                           static_cast<int>(kx) - pad;
                            if (sx < 0 ||
                                sx >= static_cast<int>(in.width)) {
                                continue;
                            }
                            const Fx16 w =
                                filt[(static_cast<std::size_t>(ic) *
                                          kernel +
                                      ky) *
                                         kernel +
                                     kx];
                            acc += static_cast<std::int64_t>(w) *
                                   in.at(ic, static_cast<unsigned>(sy),
                                         static_cast<unsigned>(sx));
                        }
                    }
                }
                Fx16 v = sat16(acc);
                if (relu)
                    v = reluFx(v);
                out.at(oc, y, x) = v;
            }
        }
    }
    return out;
}

FeatureMap
maxPool(const FeatureMap &in, unsigned window)
{
    vip_assert(in.height % window == 0 && in.width % window == 0,
               "pool window must tile the feature map");
    FeatureMap out(in.channels, in.height / window, in.width / window);
    for (unsigned c = 0; c < in.channels; ++c) {
        for (unsigned y = 0; y < out.height; ++y) {
            for (unsigned x = 0; x < out.width; ++x) {
                Fx16 best = INT16_MIN;
                for (unsigned wy = 0; wy < window; ++wy) {
                    for (unsigned wx = 0; wx < window; ++wx) {
                        best = std::max(best, in.at(c, y * window + wy,
                                                    x * window + wx));
                    }
                }
                out.at(c, y, x) = best;
            }
        }
    }
    return out;
}

FeatureMap
convLayerVip(const FeatureMap &in, const std::vector<Fx16> &filters,
             const std::vector<Fx16> &bias, unsigned out_channels,
             unsigned kernel, unsigned z_shard, bool relu)
{
    vip_assert(kernel % 2 == 1, "even kernels unsupported");
    vip_assert(in.channels % z_shard == 0,
               "z_shard must divide the channel count");
    vip_assert(bias.size() == out_channels, "bias size mismatch");
    const unsigned shards = in.channels / z_shard;
    const int pad = static_cast<int>(kernel) / 2;
    FeatureMap out(out_channels, in.height, in.width);

    for (unsigned oc = 0; oc < out_channels; ++oc) {
        const Fx16 *filt = filters.data() +
                           static_cast<std::size_t>(oc) * in.channels *
                               kernel * kernel;
        for (unsigned y = 0; y < in.height; ++y) {
            for (unsigned x = 0; x < in.width; ++x) {
                // Shard-major, then kx-major saturated partials, the
                // order the kernel's v.v.add chain combines them.
                Fx16 total = 0;
                bool first = true;
                for (unsigned s = 0; s < shards; ++s) {
                    Fx16 shard_sum = 0;
                    bool shard_first = true;
                    for (unsigned kx = 0; kx < kernel; ++kx) {
                        const int sx = static_cast<int>(x) +
                                       static_cast<int>(kx) - pad;
                        std::int64_t acc = 0;
                        for (unsigned ky = 0; ky < kernel; ++ky) {
                            const int sy = static_cast<int>(y) +
                                           static_cast<int>(ky) - pad;
                            if (sx < 0 || sy < 0 ||
                                sx >= static_cast<int>(in.width) ||
                                sy >= static_cast<int>(in.height)) {
                                continue;
                            }
                            for (unsigned zc = 0; zc < z_shard; ++zc) {
                                const unsigned ic = s * z_shard + zc;
                                const Fx16 w =
                                    filt[(static_cast<std::size_t>(ic) *
                                              kernel +
                                          ky) *
                                             kernel +
                                         kx];
                                acc += static_cast<std::int64_t>(w) *
                                       in.at(ic,
                                             static_cast<unsigned>(sy),
                                             static_cast<unsigned>(sx));
                            }
                        }
                        const Fx16 partial = sat16(acc);
                        shard_sum = shard_first ? partial
                                                : addSat(shard_sum,
                                                         partial);
                        shard_first = false;
                    }
                    total = first ? shard_sum : addSat(total, shard_sum);
                    first = false;
                }
                Fx16 v = addSat(total, bias[oc]);
                if (relu)
                    v = reluFx(v);
                out.at(oc, y, x) = v;
            }
        }
    }
    return out;
}

std::vector<Fx16>
fcLayerSegmented(const std::vector<Fx16> &in,
                 const std::vector<Fx16> &weights,
                 const std::vector<Fx16> &bias, unsigned outputs,
                 unsigned segments, bool relu)
{
    vip_assert(in.size() % segments == 0,
               "segments must divide the input length");
    vip_assert(weights.size() ==
                   static_cast<std::size_t>(outputs) * in.size(),
               "weight matrix size mismatch");
    const std::size_t seg = in.size() / segments;
    std::vector<Fx16> out(outputs);
    for (unsigned o = 0; o < outputs; ++o) {
        const Fx16 *row = weights.data() +
                          static_cast<std::size_t>(o) * in.size();
        Fx16 total = 0;
        for (unsigned s = 0; s < segments; ++s) {
            const Fx16 partial = mulAddReduce(
                row + s * seg, in.data() + s * seg,
                static_cast<unsigned>(seg));
            total = s == 0 ? partial : addSat(total, partial);
        }
        Fx16 v = addSat(total, bias[o]);
        if (relu)
            v = reluFx(v);
        out[o] = v;
    }
    return out;
}

std::vector<Fx16>
fcLayer(const std::vector<Fx16> &in, const std::vector<Fx16> &weights,
        const std::vector<Fx16> &bias, unsigned outputs, bool relu)
{
    vip_assert(weights.size() ==
                   static_cast<std::size_t>(outputs) * in.size(),
               "weight matrix size mismatch");
    vip_assert(bias.size() == outputs, "bias size mismatch");
    std::vector<Fx16> out(outputs);
    for (unsigned o = 0; o < outputs; ++o) {
        // Matches m.v.mul.add (dot product, 64-bit accumulate) followed
        // by v.v.add of the bias.
        const Fx16 dot = mulAddReduce(weights.data() + static_cast<
                                          std::size_t>(o) * in.size(),
                                      in.data(),
                                      static_cast<unsigned>(in.size()));
        Fx16 v = addSat(dot, bias[o]);
        if (relu)
            v = reluFx(v);
        out[o] = v;
    }
    return out;
}

namespace {

std::vector<LayerDesc>
vggLayers(const std::vector<std::vector<unsigned>> &conv_blocks)
{
    std::vector<LayerDesc> layers;
    unsigned c = 3, h = 224, w = 224;
    unsigned block_no = 1;
    for (const auto &block : conv_blocks) {
        unsigned conv_no = 1;
        for (unsigned out_c : block) {
            LayerDesc l;
            l.kind = LayerDesc::Kind::Conv;
            l.name = "c" + std::to_string(block_no) + "_" +
                     std::to_string(conv_no);
            l.inChannels = c;
            l.outChannels = out_c;
            l.inHeight = h;
            l.inWidth = w;
            l.kernel = 3;
            layers.push_back(l);
            c = out_c;
            ++conv_no;
        }
        LayerDesc p;
        p.kind = LayerDesc::Kind::Pool;
        p.name = "p" + std::to_string(block_no);
        p.inChannels = c;
        p.inHeight = h;
        p.inWidth = w;
        p.window = 2;
        layers.push_back(p);
        h /= 2;
        w /= 2;
        ++block_no;
    }

    const unsigned flat = c * h * w;  // 512 * 7 * 7 = 25,088
    const std::vector<std::pair<unsigned, unsigned>> fcs = {
        {flat, 4096}, {4096, 4096}, {4096, 1000}};
    unsigned fc_no = 6;
    for (auto [in, out] : fcs) {
        LayerDesc l;
        l.kind = LayerDesc::Kind::Fc;
        l.name = "fc" + std::to_string(fc_no++);
        l.inputs = in;
        l.outputs = out;
        layers.push_back(l);
    }
    return layers;
}

} // namespace

std::vector<LayerDesc>
vgg16Layers()
{
    return vggLayers({{64, 64},
                      {128, 128},
                      {256, 256, 256},
                      {512, 512, 512},
                      {512, 512, 512}});
}

std::vector<LayerDesc>
vgg19Layers()
{
    return vggLayers({{64, 64},
                      {128, 128},
                      {256, 256, 256, 256},
                      {512, 512, 512, 512},
                      {512, 512, 512, 512}});
}

std::uint64_t
totalMacs(const std::vector<LayerDesc> &layers)
{
    std::uint64_t total = 0;
    for (const auto &l : layers)
        total += l.macs();
    return total;
}

std::vector<Fx16>
randomWeights(std::size_t n, Rng &rng, int magnitude)
{
    vip_assert(magnitude > 0, "magnitude must be positive");
    std::vector<Fx16> out(n);
    for (auto &v : out) {
        v = static_cast<Fx16>(rng.nextRange(-magnitude, magnitude));
    }
    return out;
}

} // namespace vip
