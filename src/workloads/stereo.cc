#include "workloads/stereo.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.hh"

namespace vip {

StereoPair
makeSyntheticStereo(unsigned width, unsigned height, unsigned max_disp,
                    Rng &rng)
{
    vip_assert(max_disp >= 2 && max_disp <= 64, "unreasonable max_disp");
    StereoPair pair;
    pair.width = width;
    pair.height = height;

    // Ground-truth disparity: background plane plus raised rectangles.
    pair.groundTruth.assign(static_cast<std::size_t>(width) * height, 1);
    const unsigned rects = 1 + static_cast<unsigned>(rng.nextBelow(3));
    for (unsigned r = 0; r < rects; ++r) {
        const unsigned rw = width / 4 + rng.nextBelow(width / 4 + 1);
        const unsigned rh = height / 4 + rng.nextBelow(height / 4 + 1);
        const unsigned rx = rng.nextBelow(width - rw);
        const unsigned ry = rng.nextBelow(height - rh);
        const auto disp = static_cast<std::uint8_t>(
            2 + rng.nextBelow(max_disp - 2));
        for (unsigned y = ry; y < ry + rh; ++y) {
            for (unsigned x = rx; x < rx + rw; ++x)
                pair.groundTruth[y * width + x] = disp;
        }
    }

    // Random-dot texture seen by the left eye; the right eye sees it
    // shifted by the local disparity.
    pair.left.resize(static_cast<std::size_t>(width) * height);
    for (auto &v : pair.left)
        v = static_cast<std::uint8_t>(rng.nextBelow(256));

    pair.right.assign(static_cast<std::size_t>(width) * height, 0);
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            const unsigned d = pair.groundTruth[y * width + x];
            if (x >= d)
                pair.right[y * width + x - d] = pair.left[y * width + x];
        }
    }
    return pair;
}

MrfProblem
stereoMrf(const StereoPair &pair, unsigned max_disp, Fx16 data_tau,
          Fx16 lambda, Fx16 smooth_tau)
{
    MrfProblem mrf;
    mrf.width = pair.width;
    mrf.height = pair.height;
    mrf.labels = max_disp;
    mrf.smoothCost = truncatedLinearSmoothness(max_disp, lambda,
                                               smooth_tau);
    mrf.dataCost.resize(static_cast<std::size_t>(pair.width) *
                        pair.height * max_disp);

    for (unsigned y = 0; y < pair.height; ++y) {
        for (unsigned x = 0; x < pair.width; ++x) {
            Fx16 *cost = mrf.dataCost.data() + mrf.pixelIndex(x, y);
            const int ref = pair.left[y * pair.width + x];
            for (unsigned l = 0; l < max_disp; ++l) {
                if (x >= l) {
                    const int cand =
                        pair.right[y * pair.width + x - l];
                    cost[l] = std::min<Fx16>(
                        static_cast<Fx16>(std::abs(ref - cand) / 8),
                        data_tau);
                } else {
                    cost[l] = data_tau;  // occluded: max cost
                }
            }
        }
    }
    return mrf;
}

double
disparityAccuracy(const StereoPair &pair,
                  const std::vector<std::uint8_t> &labels,
                  unsigned tolerance)
{
    vip_assert(labels.size() == pair.groundTruth.size(),
               "labeling size mismatch");
    std::size_t good = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        const int diff = static_cast<int>(labels[i]) -
                         static_cast<int>(pair.groundTruth[i]);
        if (static_cast<unsigned>(std::abs(diff)) <= tolerance)
            ++good;
    }
    return static_cast<double>(good) / static_cast<double>(labels.size());
}

} // namespace vip
