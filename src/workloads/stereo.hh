/**
 * @file
 * Depth-from-stereo workload synthesis (the paper's motivating PGM
 * application, Sec. II-A).
 *
 * The paper uses full-HD stereo video; we have no camera footage, so
 * we synthesize random-dot stereograms with a known ground-truth
 * disparity field — planes and raised rectangles — which exercises the
 * identical BP code path and lets tests measure labeling quality
 * against ground truth.
 */

#ifndef VIP_WORKLOADS_STEREO_HH
#define VIP_WORKLOADS_STEREO_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "workloads/mrf.hh"

namespace vip {

/** A rectified stereo pair with known ground truth. */
struct StereoPair
{
    unsigned width = 0;
    unsigned height = 0;
    std::vector<std::uint8_t> left;
    std::vector<std::uint8_t> right;
    std::vector<std::uint8_t> groundTruth;  ///< disparity per pixel
};

/**
 * Random-dot stereogram: a textured background at disparity
 * @p background plus raised rectangles at larger disparities (up to
 * @p max_disp - 1).
 */
StereoPair makeSyntheticStereo(unsigned width, unsigned height,
                               unsigned max_disp, Rng &rng);

/**
 * Build the MRF for @p pair: L = max_disp labels, data cost =
 * truncated absolute difference min(|left(x,y) - right(x-l,y)|, tau),
 * truncated-linear smoothness.
 */
MrfProblem stereoMrf(const StereoPair &pair, unsigned max_disp,
                     Fx16 data_tau, Fx16 lambda, Fx16 smooth_tau);

/** Fraction of pixels labeled within @p tolerance of ground truth. */
double disparityAccuracy(const StereoPair &pair,
                         const std::vector<std::uint8_t> &labels,
                         unsigned tolerance = 1);

} // namespace vip

#endif // VIP_WORKLOADS_STEREO_HH
