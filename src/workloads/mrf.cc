#include "workloads/mrf.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace vip {

std::vector<Fx16>
truncatedLinearSmoothness(unsigned labels, Fx16 lambda, Fx16 tau)
{
    std::vector<Fx16> cost(static_cast<std::size_t>(labels) * labels);
    for (unsigned i = 0; i < labels; ++i) {
        for (unsigned j = 0; j < labels; ++j) {
            const int diff = std::abs(static_cast<int>(i) -
                                      static_cast<int>(j));
            cost[i * labels + j] =
                std::min<Fx16>(static_cast<Fx16>(lambda * diff), tau);
        }
    }
    return cost;
}

BpState::BpState(const MrfProblem &problem, bool normalize)
    : problem_(problem), normalize_(normalize)
{
    vip_assert(problem.width > 0 && problem.height > 0 &&
                   problem.labels > 0,
               "degenerate MRF");
    vip_assert(problem.dataCost.size() ==
                   static_cast<std::size_t>(problem.width) *
                       problem.height * problem.labels,
               "data cost size mismatch");
    vip_assert(problem.smoothCost.size() ==
                   static_cast<std::size_t>(problem.labels) *
                       problem.labels,
               "smoothness cost size mismatch");
    const std::size_t n = static_cast<std::size_t>(problem.width) *
                          problem.height * problem.labels;
    for (auto &m : msgs_)
        m.assign(n, 0);
}

Fx16 *
BpState::msgAt(MsgDir d, unsigned x, unsigned y)
{
    return msgs_[d].data() + problem_.pixelIndex(x, y);
}

const Fx16 *
BpState::msgAt(MsgDir d, unsigned x, unsigned y) const
{
    return msgs_[d].data() + problem_.pixelIndex(x, y);
}

void
BpState::computeMessage(unsigned x, unsigned y, MsgDir exclude,
                        Fx16 *out) const
{
    const unsigned L = problem_.labels;
    const Fx16 *data = problem_.dataAt(x, y);

    // theta_hat: data + incoming messages except `exclude`, added in
    // the fixed order FromLeft, FromRight, FromUp, FromDown — the same
    // association order the VIP kernel's v.v.add chain uses.
    Fx16 theta_hat[256];
    vip_assert(L <= 256, "label count too large for reference buffer");
    for (unsigned l = 0; l < L; ++l)
        theta_hat[l] = data[l];
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        if (d == static_cast<unsigned>(exclude))
            continue;
        const Fx16 *m = msgAt(static_cast<MsgDir>(d), x, y);
        for (unsigned l = 0; l < L; ++l)
            theta_hat[l] = addSat(theta_hat[l], m[l]);
    }

    // Min-sum reduction against the smoothness matrix (Eq. 1b):
    // out[l_out] = min_{l_in} (S[l_out][l_in] + theta_hat[l_in]).
    for (unsigned lo = 0; lo < L; ++lo) {
        out[lo] = addMinReduce(problem_.smoothCost.data() + lo * L,
                               theta_hat, L);
    }
}

void
BpState::sweepLane(MsgDir chain_dir, MsgDir exclude, bool chain_first,
                   unsigned lane, bool vertical, bool forward)
{
    const unsigned L = problem_.labels;
    const unsigned len = vertical ? problem_.height : problem_.width;
    auto px = [&](unsigned j) {
        const unsigned s = forward ? j : len - 1 - j;
        return vertical ? std::pair<unsigned, unsigned>(lane, s)
                        : std::pair<unsigned, unsigned>(s, lane);
    };

    // The two cross-direction inputs, in the fixed summation order.
    MsgDir cross[2];
    unsigned nc = 0;
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        if (d != static_cast<unsigned>(chain_dir) &&
            d != static_cast<unsigned>(exclude)) {
            cross[nc++] = static_cast<MsgDir>(d);
        }
    }

    std::vector<Fx16> chain(L), theta(L), next(L);
    {
        const auto [x0, y0] = px(0);
        const Fx16 *src = msgAt(chain_dir, x0, y0);
        std::copy(src, src + L, chain.begin());
    }

    const unsigned count = len - 1;
    for (unsigned j = 0; j < count; ++j) {
        const auto [x, y] = px(j);

        if (normalize_) {
            // Broadcast-subtract the anchor min(chain[0..W)): exactly
            // what the kernel's short m.v.add.min against the zero
            // matrix followed by v.v.sub computes.
            Fx16 mn = INT16_MAX;
            for (unsigned l = 0; l < std::min(L, kBpNormWidth); ++l)
                mn = std::min(mn, chain[l]);
            for (unsigned l = 0; l < L; ++l)
                chain[l] = subSat(chain[l], mn);
        }

        // Write the (possibly normalized) incoming message back to its
        // field slot — the kernel's deferred store. j == 0 is the
        // field's own original value.
        if (j > 0)
            std::copy(chain.begin(), chain.end(), msgAt(chain_dir, x, y));

        const Fx16 *data = problem_.dataAt(x, y);
        if (chain_first) {
            for (unsigned l = 0; l < L; ++l)
                theta[l] = addSat(data[l], chain[l]);
            for (unsigned c = 0; c < 2; ++c) {
                const Fx16 *m = msgAt(cross[c], x, y);
                for (unsigned l = 0; l < L; ++l)
                    theta[l] = addSat(theta[l], m[l]);
            }
        } else {
            const Fx16 *m0 = msgAt(cross[0], x, y);
            for (unsigned l = 0; l < L; ++l)
                theta[l] = addSat(data[l], m0[l]);
            const Fx16 *m1 = msgAt(cross[1], x, y);
            for (unsigned l = 0; l < L; ++l)
                theta[l] = addSat(theta[l], m1[l]);
            for (unsigned l = 0; l < L; ++l)
                theta[l] = addSat(theta[l], chain[l]);
        }

        for (unsigned lo = 0; lo < L; ++lo) {
            next[lo] = addMinReduce(problem_.smoothCost.data() + lo * L,
                                    theta.data(), L);
        }
        chain.swap(next);
        ++updates_;
    }

    // The sweep's last output is stored as produced (the kernel's
    // epilogue store).
    const auto [fx, fy] = px(count);
    std::copy(chain.begin(), chain.end(), msgAt(chain_dir, fx, fy));
}

void
BpState::sweepRight()
{
    for (unsigned y = 0; y < problem_.height; ++y)
        sweepLane(FromLeft, FromRight, true, y, false, true);
}

void
BpState::sweepLeft()
{
    for (unsigned y = 0; y < problem_.height; ++y)
        sweepLane(FromRight, FromLeft, true, y, false, false);
}

void
BpState::sweepDown()
{
    for (unsigned x = 0; x < problem_.width; ++x)
        sweepLane(FromUp, FromDown, false, x, true, true);
}

void
BpState::sweepUp()
{
    for (unsigned x = 0; x < problem_.width; ++x)
        sweepLane(FromDown, FromUp, false, x, true, false);
}

void
BpState::iterate()
{
    sweepRight();
    sweepLeft();
    sweepDown();
    sweepUp();
}

std::vector<std::uint8_t>
BpState::decode() const
{
    const unsigned L = problem_.labels;
    std::vector<std::uint8_t> labels(
        static_cast<std::size_t>(problem_.width) * problem_.height);

    for (unsigned y = 0; y < problem_.height; ++y) {
        for (unsigned x = 0; x < problem_.width; ++x) {
            const Fx16 *data = problem_.dataAt(x, y);
            Fx16 best_cost = std::numeric_limits<Fx16>::max();
            unsigned best = 0;
            for (unsigned l = 0; l < L; ++l) {
                Fx16 belief = data[l];
                for (unsigned d = 0; d < NumMsgDirs; ++d) {
                    belief = addSat(
                        belief, msgAt(static_cast<MsgDir>(d), x, y)[l]);
                }
                if (belief < best_cost) {
                    best_cost = belief;
                    best = l;
                }
            }
            labels[static_cast<std::size_t>(y) * problem_.width + x] =
                static_cast<std::uint8_t>(best);
        }
    }
    return labels;
}

std::int64_t
BpState::energy(const std::vector<std::uint8_t> &labeling) const
{
    const unsigned W = problem_.width, H = problem_.height,
                   L = problem_.labels;
    vip_assert(labeling.size() == static_cast<std::size_t>(W) * H,
               "labeling size mismatch");
    std::int64_t e = 0;
    for (unsigned y = 0; y < H; ++y) {
        for (unsigned x = 0; x < W; ++x) {
            const unsigned l = labeling[y * W + x];
            e += problem_.dataAt(x, y)[l];
            if (x + 1 < W) {
                const unsigned r = labeling[y * W + x + 1];
                e += problem_.smoothCost[l * L + r];
            }
            if (y + 1 < H) {
                const unsigned d = labeling[(y + 1) * W + x];
                e += problem_.smoothCost[l * L + d];
            }
        }
    }
    return e;
}

MrfProblem
coarsen(const MrfProblem &fine)
{
    MrfProblem coarse;
    coarse.width = (fine.width + 1) / 2;
    coarse.height = (fine.height + 1) / 2;
    coarse.labels = fine.labels;
    coarse.smoothCost = fine.smoothCost;
    coarse.dataCost.assign(static_cast<std::size_t>(coarse.width) *
                               coarse.height * coarse.labels,
                           0);

    // construct: each coarse pixel's cost is the saturating vector sum
    // of its (up to) four children — the "adds four vectors" kernel.
    for (unsigned y = 0; y < fine.height; ++y) {
        for (unsigned x = 0; x < fine.width; ++x) {
            Fx16 *dst = coarse.dataCost.data() +
                        coarse.pixelIndex(x / 2, y / 2);
            const Fx16 *src = fine.dataAt(x, y);
            for (unsigned l = 0; l < fine.labels; ++l)
                dst[l] = addSat(dst[l], src[l]);
        }
    }
    return coarse;
}

void
copyMessages(const BpState &coarse, BpState &fine)
{
    const MrfProblem &fp = fine.problem();
    for (unsigned y = 0; y < fp.height; ++y) {
        for (unsigned x = 0; x < fp.width; ++x) {
            for (unsigned d = 0; d < NumMsgDirs; ++d) {
                const Fx16 *src = coarse.msgAt(static_cast<MsgDir>(d),
                                               x / 2, y / 2);
                Fx16 *dst = fine.msgAt(static_cast<MsgDir>(d), x, y);
                std::copy(src, src + fp.labels, dst);
            }
        }
    }
}

} // namespace vip
