/**
 * @file
 * Grid Markov random fields and the reference BP-M implementation
 * (Sec. II-A).
 *
 * The MRF is a 2D grid: each pixel holds an L-entry data-cost vector
 * and every edge shares one L x L smoothness-cost matrix (we make no
 * structural assumption about it, exactly as the paper's GPU baseline
 * does not). Belief propagation passes min-sum messages; BP-M (Tappen
 * & Freeman) performs four ordered sweeps per iteration — right, left,
 * down, up — where updates within a sweep consume messages updated
 * earlier in the same sweep (the strict sequential order of Sec. IV-A;
 * parallelism exists across the orthogonal dimension).
 *
 * All arithmetic uses the shared fixed-point semantics from fixed.hh
 * in a fixed association order so the simulated kernels reproduce the
 * reference bit-for-bit.
 */

#ifndef VIP_WORKLOADS_MRF_HH
#define VIP_WORKLOADS_MRF_HH

#include <cstdint>
#include <vector>

#include "workloads/fixed.hh"

namespace vip {

/** Direction a message *came from*, relative to the receiving pixel. */
enum MsgDir : unsigned
{
    FromLeft = 0,
    FromRight = 1,
    FromUp = 2,
    FromDown = 3,
    NumMsgDirs = 4,
};

/** An MRF labeling problem on a W x H grid with L labels. */
struct MrfProblem
{
    unsigned width = 0;
    unsigned height = 0;
    unsigned labels = 0;

    /** Data costs, [(y*width + x)*labels + l]. */
    std::vector<Fx16> dataCost;

    /** Smoothness costs, [l_out*labels + l_in], shared by all edges. */
    std::vector<Fx16> smoothCost;

    std::size_t
    pixelIndex(unsigned x, unsigned y) const
    {
        return (static_cast<std::size_t>(y) * width + x) * labels;
    }

    const Fx16 *
    dataAt(unsigned x, unsigned y) const
    {
        return dataCost.data() + pixelIndex(x, y);
    }
};

/** Truncated-linear smoothness matrix: S(i,j) = min(lambda*|i-j|, tau). */
std::vector<Fx16> truncatedLinearSmoothness(unsigned labels, Fx16 lambda,
                                            Fx16 tau);

/** Elements whose minimum anchors each message normalization. */
inline constexpr unsigned kBpNormWidth = 4;

/**
 * Messages + the BP-M schedule for one MRF.
 *
 * With @p normalize (the default), every update of a sweep lane
 * subtracts a per-message anchor — the minimum of the chained
 * message's first kBpNormWidth elements — from the chained message
 * before it is used and stored. Min-sum BP is invariant to
 * per-message constants, so the labeling is unchanged; anchoring a
 * subset minimum to zero bounds every stored message within the
 * smoothness truncation's spread, so 16-bit messages never saturate
 * (without this BP-M's chained updates compound into saturation
 * within a few iterations).
 *
 * The scheme is chosen for the VIP kernel: the ISA has no
 * scratchpad-to-register path, but a subset minimum can be
 * *broadcast entirely in vector space* — one short m.v.add.min
 * against a resident all-zero matrix yields a vector whose every
 * element is min(chain[0..kBpNormWidth)), ready for v.v.sub. Zero
 * staleness (delayed-feedback schemes through a DRAM round trip are
 * unstable), at ~20%% of an update's vector time.
 */
class BpState
{
  public:
    explicit BpState(const MrfProblem &problem, bool normalize = true);

    /** One BP-M iteration: right, left, down, up sweeps. */
    void iterate();

    void sweepRight();
    void sweepLeft();
    void sweepDown();
    void sweepUp();

    /** MAP label per pixel (Eq. 2): argmin of belief, first minimum. */
    std::vector<std::uint8_t> decode() const;

    /** Total labeling energy of an assignment (for convergence tests). */
    std::int64_t energy(const std::vector<std::uint8_t> &labeling) const;

    /** Message into pixel (x, y) from direction @p d. */
    Fx16 *msgAt(MsgDir d, unsigned x, unsigned y);
    const Fx16 *msgAt(MsgDir d, unsigned x, unsigned y) const;

    const MrfProblem &problem() const { return problem_; }

    /**
     * Compute one message update into the caller's buffer: the exact
     * arithmetic (and association order) of Eqs. 1a/1b as the VIP
     * kernel executes them. Exposed so tests can cross-check kernels
     * against single updates.
     *
     * @param x, y       sending pixel
     * @param exclude    the direction (into the sender) NOT summed,
     *                   i.e. where the message is headed
     * @param out        L-entry output message
     */
    void computeMessage(unsigned x, unsigned y, MsgDir exclude,
                        Fx16 *out) const;

    /** Total message updates performed so far. */
    std::uint64_t updatesPerformed() const { return updates_; }

  private:
    /** One lane of a sweep: sequential updates with the chained
     *  message, stale-min normalization, and field writeback. */
    void sweepLane(MsgDir chain_dir, MsgDir exclude, bool chain_first,
                   unsigned lane, bool vertical, bool forward);

    const MrfProblem &problem_;
    bool normalize_;
    std::vector<Fx16> msgs_[NumMsgDirs];
    std::uint64_t updates_ = 0;
};

/**
 * Hierarchical BP support (Felzenszwalb & Huttenlocher style,
 * Sec. VI-A "hierarchical BP-M"):
 * construct() pools 2x2 neighborhoods of data costs by vector addition
 * into a quarter-resolution MRF; copyMessages() seeds each fine pixel's
 * messages with its coarse parent's.
 */
MrfProblem coarsen(const MrfProblem &fine);
void copyMessages(const BpState &coarse, BpState &fine);

} // namespace vip

#endif // VIP_WORKLOADS_MRF_HH
