#include "workloads/flow.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.hh"

namespace vip {

FlowPair
makeSyntheticFlow(unsigned width, unsigned height, unsigned radius,
                  Rng &rng)
{
    vip_assert(radius >= 1 && radius <= 3, "unreasonable search radius");
    FlowPair pair;
    pair.width = width;
    pair.height = height;
    pair.radius = radius;

    // Random-dot texture, block-correlated so motion is observable.
    pair.frame0.resize(static_cast<std::size_t>(width) * height);
    for (auto &v : pair.frame0)
        v = static_cast<std::uint8_t>(rng.nextBelow(256));

    // Background moves (+1, 0); a foreground rectangle moves (0, +1).
    const int bg_dx = 1, bg_dy = 0;
    const int fg_dx = 0, fg_dy = 1;
    const unsigned rx = width / 4, ry = height / 4;
    const unsigned rw = width / 2, rh = height / 2;

    pair.groundTruth.resize(pair.frame0.size());
    pair.frame1.assign(pair.frame0.size(), 0);
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            const bool fg = x >= rx && x < rx + rw && y >= ry &&
                            y < ry + rh;
            const int dx = fg ? fg_dx : bg_dx;
            const int dy = fg ? fg_dy : bg_dy;
            pair.groundTruth[y * width + x] =
                static_cast<std::uint8_t>(pair.labelOf(dx, dy));
            const int nx = static_cast<int>(x) + dx;
            const int ny = static_cast<int>(y) + dy;
            if (nx >= 0 && ny >= 0 && nx < static_cast<int>(width) &&
                ny < static_cast<int>(height)) {
                pair.frame1[static_cast<unsigned>(ny) * width +
                            static_cast<unsigned>(nx)] =
                    pair.frame0[y * width + x];
            }
        }
    }
    return pair;
}

MrfProblem
flowMrf(const FlowPair &pair, Fx16 data_tau, Fx16 lambda, Fx16 smooth_tau)
{
    const unsigned L = pair.labels();
    MrfProblem mrf;
    mrf.width = pair.width;
    mrf.height = pair.height;
    mrf.labels = L;

    // Smoothness over Euclidean-ish displacement distance (L1 here):
    // a genuinely 2D label geometry.
    mrf.smoothCost.resize(static_cast<std::size_t>(L) * L);
    for (unsigned a = 0; a < L; ++a) {
        const auto [ax, ay] = pair.displacement(a);
        for (unsigned b = 0; b < L; ++b) {
            const auto [bx, by] = pair.displacement(b);
            const int dist = std::abs(ax - bx) + std::abs(ay - by);
            mrf.smoothCost[a * L + b] =
                std::min<Fx16>(static_cast<Fx16>(lambda * dist),
                               smooth_tau);
        }
    }

    mrf.dataCost.resize(static_cast<std::size_t>(pair.width) *
                        pair.height * L);
    for (unsigned y = 0; y < pair.height; ++y) {
        for (unsigned x = 0; x < pair.width; ++x) {
            Fx16 *cost = mrf.dataCost.data() + mrf.pixelIndex(x, y);
            const int ref = pair.frame0[y * pair.width + x];
            for (unsigned l = 0; l < L; ++l) {
                const auto [dx, dy] = pair.displacement(l);
                const int nx = static_cast<int>(x) + dx;
                const int ny = static_cast<int>(y) + dy;
                if (nx >= 0 && ny >= 0 &&
                    nx < static_cast<int>(pair.width) &&
                    ny < static_cast<int>(pair.height)) {
                    const int cand =
                        pair.frame1[static_cast<unsigned>(ny) *
                                        pair.width +
                                    static_cast<unsigned>(nx)];
                    cost[l] = std::min<Fx16>(
                        static_cast<Fx16>(std::abs(ref - cand) / 8),
                        data_tau);
                } else {
                    cost[l] = data_tau;
                }
            }
        }
    }
    return mrf;
}

double
flowAccuracy(const FlowPair &pair,
             const std::vector<std::uint8_t> &labels)
{
    vip_assert(labels.size() == pair.groundTruth.size(),
               "labeling size mismatch");
    std::size_t good = 0;
    for (std::size_t i = 0; i < labels.size(); ++i)
        good += labels[i] == pair.groundTruth[i];
    return static_cast<double>(good) /
           static_cast<double>(labels.size());
}

} // namespace vip
