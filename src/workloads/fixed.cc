#include "workloads/fixed.hh"

#include "sim/logging.hh"

namespace vip {

int
chooseScaleExponent(const std::vector<float> &data, unsigned target_bits)
{
    vip_assert(target_bits >= 1 && target_bits <= 15,
               "target_bits out of range");
    float max_mag = 0.0f;
    for (float v : data)
        max_mag = std::max(max_mag, std::fabs(v));
    if (max_mag == 0.0f)
        return 0;
    // Want max_mag * 2^e < 2^target_bits.
    const int e = static_cast<int>(
        std::floor(static_cast<double>(target_bits) -
                   std::log2(static_cast<double>(max_mag)) - 1e-9));
    return e;
}

std::vector<Fx16>
quantize(const std::vector<float> &data, int exponent)
{
    std::vector<Fx16> out(data.size());
    const double scale = std::ldexp(1.0, exponent);
    for (std::size_t i = 0; i < data.size(); ++i) {
        out[i] = sat16(static_cast<std::int64_t>(
            std::llround(static_cast<double>(data[i]) * scale)));
    }
    return out;
}

std::vector<float>
dequantize(const std::vector<Fx16> &data, int exponent)
{
    std::vector<float> out(data.size());
    const double inv = std::ldexp(1.0, -exponent);
    for (std::size_t i = 0; i < data.size(); ++i)
        out[i] = static_cast<float>(data[i] * inv);
    return out;
}

} // namespace vip
