/**
 * @file
 * Reference CNN / MLP layers and the VGG-16 / VGG-19 network tables
 * (Sec. II-B, II-C).
 *
 * All arithmetic matches the simulated datapath: products and sums
 * accumulate in 64-bit and saturate to int16 at writeback; ReLU is a
 * max against zero. Feature maps are stored channel-major
 * ([c][y][x] = fmap[(c*H + y)*W + x]) and filters as
 * [out][in][ky][kx].
 */

#ifndef VIP_WORKLOADS_NN_HH
#define VIP_WORKLOADS_NN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "workloads/fixed.hh"

namespace vip {

/** A 3D feature map, channel-major. */
struct FeatureMap
{
    unsigned channels = 0;
    unsigned height = 0;
    unsigned width = 0;
    std::vector<Fx16> data;

    FeatureMap() = default;
    FeatureMap(unsigned c, unsigned h, unsigned w)
        : channels(c), height(h), width(w),
          data(static_cast<std::size_t>(c) * h * w, 0)
    {}

    std::size_t
    index(unsigned c, unsigned y, unsigned x) const
    {
        return (static_cast<std::size_t>(c) * height + y) * width + x;
    }

    Fx16 at(unsigned c, unsigned y, unsigned x) const
    {
        return data[index(c, y, x)];
    }

    Fx16 &at(unsigned c, unsigned y, unsigned x)
    {
        return data[index(c, y, x)];
    }
};

/** One layer of a VGG-style network. */
struct LayerDesc
{
    enum class Kind { Conv, Pool, Fc };

    Kind kind = Kind::Conv;
    std::string name;

    // Conv: kernel x kernel filters, stride 1, pad (kernel-1)/2.
    unsigned inChannels = 0;
    unsigned outChannels = 0;
    unsigned inHeight = 0;
    unsigned inWidth = 0;
    unsigned kernel = 3;

    // Pool: window x window, stride = window.
    unsigned window = 2;

    // Fc: inputs -> outputs.
    unsigned inputs = 0;
    unsigned outputs = 0;

    unsigned outHeight() const;
    unsigned outWidth() const;

    /** Multiply-accumulates (or comparisons for pool) in this layer. */
    std::uint64_t macs() const;

    /** ALU operations: 2 per MAC, 1 per pooled comparison. */
    std::uint64_t ops() const { return kind == Kind::Pool ? macs()
                                                          : 2 * macs(); }

    /**
     * Minimum DRAM traffic in bytes with 16-bit data: inputs read once,
     * weights read once, outputs written once (the paper's arithmetic-
     * intensity accounting for the roofline, Fig. 3).
     */
    std::uint64_t minBytesMoved() const;

    double
    arithmeticIntensity() const
    {
        return static_cast<double>(ops()) /
               static_cast<double>(minBytesMoved());
    }
};

/** Convolution + bias + ReLU (Eq. 3), stride 1, same padding. */
FeatureMap convLayer(const FeatureMap &in,
                     const std::vector<Fx16> &filters,
                     const std::vector<Fx16> &bias, unsigned out_channels,
                     unsigned kernel, bool relu = true);

/** Max pooling, window x window, stride = window. */
FeatureMap maxPool(const FeatureMap &in, unsigned window);

/** Fully-connected layer + bias, optional ReLU (Eq. 4). */
std::vector<Fx16> fcLayer(const std::vector<Fx16> &in,
                          const std::vector<Fx16> &weights,
                          const std::vector<Fx16> &bias, unsigned outputs,
                          bool relu = true);

/**
 * Convolution with the generated VIP kernel's exact partial-sum
 * structure: the m.v.mul.add unit emits a *saturated* partial per
 * filter column (kx) and per z-shard, and partials combine through
 * saturating v.v.add in kx-then-shard order, followed by bias and
 * ReLU. Identical to convLayer() whenever nothing saturates; the
 * simulator is verified against this bit-for-bit.
 *
 * @param z_shard  channels per shard (the per-vault slice, Sec. IV-B);
 *                 must divide in.channels.
 */
FeatureMap convLayerVip(const FeatureMap &in,
                        const std::vector<Fx16> &filters,
                        const std::vector<Fx16> &bias,
                        unsigned out_channels, unsigned kernel,
                        unsigned z_shard, bool relu = true);

/**
 * Fully-connected layer with the VIP kernel's partial structure: the
 * input is split into @p segments equal segments, each contributing a
 * saturated partial dot; partials combine in segment order, then bias
 * and optional ReLU (Sec. IV-C's three-pass scheme).
 */
std::vector<Fx16> fcLayerSegmented(const std::vector<Fx16> &in,
                                   const std::vector<Fx16> &weights,
                                   const std::vector<Fx16> &bias,
                                   unsigned outputs, unsigned segments,
                                   bool relu = true);

/** The 16- and 19-layer VGG configurations on 224x224 inputs. */
std::vector<LayerDesc> vgg16Layers();
std::vector<LayerDesc> vgg19Layers();

/** Conv-only / fc-only subsets. */
std::uint64_t totalMacs(const std::vector<LayerDesc> &layers);

/** Small random tensors for deterministic test fixtures. */
std::vector<Fx16> randomWeights(std::size_t n, Rng &rng, int magnitude);

} // namespace vip

#endif // VIP_WORKLOADS_NN_HH
