/**
 * @file
 * Optical flow as MRF labeling — the third vision task the paper's
 * introduction motivates (Sec. II-A: de-noising, depth-from-stereo,
 * optical flow). Labels enumerate 2D displacements in a small search
 * window; data costs penalize intensity mismatch between the first
 * frame's pixel and the displaced pixel of the second frame, and the
 * usual truncated-linear prior (over displacement distance) favors
 * smooth motion fields.
 */

#ifndef VIP_WORKLOADS_FLOW_HH
#define VIP_WORKLOADS_FLOW_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "workloads/mrf.hh"

namespace vip {

/** Two consecutive frames with per-pixel ground-truth motion labels. */
struct FlowPair
{
    unsigned width = 0;
    unsigned height = 0;
    unsigned radius = 0;  ///< displacements span [-radius, +radius]^2
    std::vector<std::uint8_t> frame0;
    std::vector<std::uint8_t> frame1;
    std::vector<std::uint8_t> groundTruth;  ///< label per pixel

    unsigned labels() const { return (2 * radius + 1) * (2 * radius + 1); }

    /** Displacement encoded by @p label. */
    std::pair<int, int>
    displacement(unsigned label) const
    {
        const unsigned side = 2 * radius + 1;
        return {static_cast<int>(label % side) - static_cast<int>(radius),
                static_cast<int>(label / side) - static_cast<int>(radius)};
    }

    /** Label encoding displacement (dx, dy). */
    unsigned
    labelOf(int dx, int dy) const
    {
        const unsigned side = 2 * radius + 1;
        return static_cast<unsigned>(dy + static_cast<int>(radius)) * side +
               static_cast<unsigned>(dx + static_cast<int>(radius));
    }
};

/**
 * Synthesize a textured scene where a rectangular foreground moves by
 * one displacement and the background by another.
 */
FlowPair makeSyntheticFlow(unsigned width, unsigned height,
                           unsigned radius, Rng &rng);

/**
 * Build the flow MRF: truncated absolute-difference data costs and a
 * truncated-linear smoothness over *displacement distance* (so the
 * matrix is a general L x L table — exactly the case VIP's
 * programmable m.v.add.min handles and fixed-function BP accelerators
 * with hardwired 1D priors do not).
 */
MrfProblem flowMrf(const FlowPair &pair, Fx16 data_tau, Fx16 lambda,
                   Fx16 smooth_tau);

/** Fraction of pixels whose decoded displacement is exactly right. */
double flowAccuracy(const FlowPair &pair,
                    const std::vector<std::uint8_t> &labels);

} // namespace vip

#endif // VIP_WORKLOADS_FLOW_HH
