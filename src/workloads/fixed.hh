/**
 * @file
 * 16-bit fixed-point arithmetic semantics shared by the reference
 * implementations and (by construction) the simulated VIP datapath.
 *
 * The paper's benchmarks use 16-bit dynamic fixed point (Sec. IV). Our
 * datapath semantics: element-wise operators evaluate in 64-bit
 * precision, reductions accumulate in 64-bit, and results saturate to
 * the element width at writeback. Reference code *must* use these
 * helpers (in the same association order as the generated kernels) so
 * that simulator outputs can be compared bit-for-bit, which is the
 * paper's own correctness methodology (Sec. V-A).
 *
 * Dynamic fixed point enters through quantization: float inputs are
 * scaled per-tensor into int16. Because ReLU is positively homogeneous,
 * per-layer scale factors can be absorbed statically into the next
 * layer's quantized weights, so no runtime re-scaling instruction is
 * needed — matching the VIP ISA, which has no vector shift.
 */

#ifndef VIP_WORKLOADS_FIXED_HH
#define VIP_WORKLOADS_FIXED_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace vip {

using Fx16 = std::int16_t;

/** Saturate a 64-bit value to int16. */
inline Fx16
sat16(std::int64_t v)
{
    return static_cast<Fx16>(
        std::clamp<std::int64_t>(v, INT16_MIN, INT16_MAX));
}

/** Saturating elementwise add, the semantics of v.v.add[16]. */
inline Fx16
addSat(Fx16 a, Fx16 b)
{
    return sat16(static_cast<std::int64_t>(a) + b);
}

inline Fx16
subSat(Fx16 a, Fx16 b)
{
    return sat16(static_cast<std::int64_t>(a) - b);
}

inline Fx16
mulSat(Fx16 a, Fx16 b)
{
    return sat16(static_cast<std::int64_t>(a) * b);
}

/**
 * The semantics of m.v.add.min[16] for one output element: add a
 * matrix row to a vector and min-reduce, accumulating in 64-bit and
 * saturating once at writeback (the min-sum BP message update).
 */
inline Fx16
addMinReduce(const Fx16 *row, const Fx16 *vec, unsigned n)
{
    std::int64_t acc = INT64_MAX;
    for (unsigned i = 0; i < n; ++i) {
        acc = std::min<std::int64_t>(
            acc, static_cast<std::int64_t>(row[i]) + vec[i]);
    }
    return sat16(acc);
}

/** The semantics of m.v.mul.add[16] for one output element (dot). */
inline Fx16
mulAddReduce(const Fx16 *row, const Fx16 *vec, unsigned n)
{
    std::int64_t acc = 0;
    for (unsigned i = 0; i < n; ++i)
        acc += static_cast<std::int64_t>(row[i]) * vec[i];
    return sat16(acc);
}

/** ReLU as executed by v.s.max with a zero scalar. */
inline Fx16
reluFx(Fx16 v)
{
    return std::max<Fx16>(v, 0);
}

/**
 * Quantize a float tensor to int16 with a power-of-two scale chosen so
 * the largest magnitude fits in @p target_bits (dynamic fixed point).
 * @return the scale exponent e, with q = round(x * 2^e).
 */
int chooseScaleExponent(const std::vector<float> &data,
                        unsigned target_bits = 14);

/** Quantize with an explicit exponent. */
std::vector<Fx16> quantize(const std::vector<float> &data, int exponent);

/** Dequantize back to float. */
std::vector<float> dequantize(const std::vector<Fx16> &data, int exponent);

} // namespace vip

#endif // VIP_WORKLOADS_FIXED_HH
