#!/usr/bin/env python3
"""Capture host-performance numbers into BENCH_hotpath.json.

Runs the micro_components Google-Benchmark suite (JSON output) and a
small table4_cnn sweep from a Release build, then merges the results
under a label ("baseline" for the pre-PR commit, "optimized" for the
PR head) into a single checked-in file, so the speedup ratio survives
in-tree:

    tools/bench-baseline.py --build build-release --label baseline
    # ...apply the PR...
    tools/bench-baseline.py --build build-release --label optimized

Benchmarks that report items_per_second simulate that many machine
cycles per host second, so their entries carry the ISSUE-facing
triple (cycles, hostSeconds, simCyclesPerHostSecond); the rest record
wall time only. Run both labels on the same quiet machine — the file
documents a ratio, not an absolute.
"""

import argparse
import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Keep the checked-in file focused on the simulator's hot loops; the
# reference-model and assembler benches are not what perf PRs target.
MICRO_FILTER = ("BM_FastForwardStreamCopy|BM_PeScalarLoop|"
                "BM_SimulatedBpSweep|BM_VaultSequentialReads|"
                "BM_TorusAllToOne")

SWEEP_FRAC = "0.02"


def run_micro(build_dir):
    exe = os.path.join(build_dir, "bench", "micro_components")
    out = subprocess.run(
        [exe, "--benchmark_filter=" + MICRO_FILTER,
         "--benchmark_format=json"],
        check=True, capture_output=True, text=True).stdout
    results = {}
    for bench in json.loads(out)["benchmarks"]:
        if bench.get("run_type") == "aggregate":
            continue
        secs = bench["real_time"] * {"ns": 1e-9, "us": 1e-6,
                                     "ms": 1e-3, "s": 1.0}[
                                         bench["time_unit"]]
        entry = {"hostSeconds": secs}
        ips = bench.get("items_per_second")
        if ips is not None:
            # items == simulated cycles for these benches.
            entry["simCyclesPerHostSecond"] = ips
            entry["cycles"] = int(round(
                ips * secs * bench["iterations"]))
        results[bench["name"]] = entry
    return results


def run_sweep(build_dir):
    exe = os.path.join(build_dir, "bench", "table4_cnn")
    start = time.monotonic()
    subprocess.run([exe, SWEEP_FRAC, "--jobs", "1"], check=True,
                   capture_output=True, text=True)
    return {"hostSeconds": time.monotonic() - start,
            "frac": float(SWEEP_FRAC), "jobs": 1}


def main():
    ap = argparse.ArgumentParser(
        description="record host-perf numbers into BENCH_hotpath.json")
    ap.add_argument("--build", default="build-release",
                    help="Release build directory (default: %(default)s)")
    ap.add_argument("--label", required=True,
                    choices=["baseline", "optimized"],
                    help="which column of the file to (over)write")
    ap.add_argument("--out",
                    default=os.path.join(REPO_ROOT, "BENCH_hotpath.json"))
    ap.add_argument("--skip-sweep", action="store_true",
                    help="skip the table4_cnn end-to-end sweep")
    args = ap.parse_args()

    merged = {"benchmarks": {}, "sweep": {}}
    if os.path.exists(args.out):
        with open(args.out) as f:
            merged = json.load(f)

    for name, entry in run_micro(args.build).items():
        merged["benchmarks"].setdefault(name, {})[args.label] = entry
    if not args.skip_sweep:
        merged["sweep"].setdefault("table4_cnn", {})[args.label] = \
            run_sweep(args.build)

    head = merged["benchmarks"].get("BM_FastForwardStreamCopy/0", {})
    if "baseline" in head and "optimized" in head:
        merged["headlineSpeedup"] = round(
            head["optimized"]["simCyclesPerHostSecond"] /
            head["baseline"]["simCyclesPerHostSecond"], 3)

    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.label} numbers to {args.out}")
    if "headlineSpeedup" in merged:
        print(f"BM_FastForwardStreamCopy/0 speedup: "
              f"{merged['headlineSpeedup']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
