#!/usr/bin/env python3
"""Capture host-performance numbers into BENCH_hotpath.json.

Runs the micro_components Google-Benchmark suite (JSON output) and a
small table4_cnn sweep from a Release build, then merges the results
under a label ("baseline" for the pre-PR commit, "optimized" for the
PR head) into a single checked-in file, so the speedup ratio survives
in-tree:

    tools/bench-baseline.py --build build-release --label baseline
    # ...apply the PR...
    tools/bench-baseline.py --build build-release --label optimized

Benchmarks that report items_per_second simulate that many machine
cycles per host second, so their entries carry the ISSUE-facing
triple (cycles, hostSeconds, simCyclesPerHostSecond); the rest record
wall time only. Run both labels on the same quiet machine — the file
documents a ratio, not an absolute.

A second mode measures island partitioning (system/partition.hh) into
BENCH_islands.json — serial versus 2- and 4-island host time on the
island micro-benchmark and the table4_cnn sweep:

    tools/bench-baseline.py --mode islands --build build-release

Island speedup needs real cores: the file records the host's thread
count, and on a host with fewer threads than islands the ratios
document barrier overhead, not speedup (the warning every tool prints
in that situation).

A third mode measures the decoded-µop fast path (pe/decode.hh) into
BENCH_decode.json — the same binaries run twice, with --no-fast-path
(the interpreter baseline) and without (the µop replay), over the
fast-path-sensitive micro-benchmarks and the table4_cnn sweep:

    tools/bench-baseline.py --mode decode --build build-release

Simulated cycles are bit-identical between the two columns (that is
the fastpath_equivalence_test contract); only host time moves.
"""

import argparse
import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Keep the checked-in file focused on the simulator's hot loops; the
# reference-model and assembler benches are not what perf PRs target.
MICRO_FILTER = ("BM_FastForwardStreamCopy|BM_PeScalarLoop|"
                "BM_SimulatedBpSweep|BM_VaultSequentialReads|"
                "BM_TorusAllToOne")

SWEEP_FRAC = "0.02"


def run_micro(build_dir, bench_filter=MICRO_FILTER, extra_args=()):
    exe = os.path.join(build_dir, "bench", "micro_components")
    out = subprocess.run(
        [exe, *extra_args, "--benchmark_filter=" + bench_filter,
         "--benchmark_format=json"],
        check=True, capture_output=True, text=True).stdout
    results = {}
    for bench in json.loads(out)["benchmarks"]:
        if bench.get("run_type") == "aggregate":
            continue
        secs = bench["real_time"] * {"ns": 1e-9, "us": 1e-6,
                                     "ms": 1e-3, "s": 1.0}[
                                         bench["time_unit"]]
        entry = {"hostSeconds": secs}
        ips = bench.get("items_per_second")
        if ips is not None:
            # items == simulated cycles for these benches.
            entry["simCyclesPerHostSecond"] = ips
            entry["cycles"] = int(round(
                ips * secs * bench["iterations"]))
        results[bench["name"]] = entry
    return results


def run_sweep(build_dir, islands=1, fast_path=True):
    exe = os.path.join(build_dir, "bench", "table4_cnn")
    cmd = [exe, SWEEP_FRAC, "--jobs", "1", "--islands", str(islands)]
    if not fast_path:
        cmd.append("--no-fast-path")
    start = time.monotonic()
    subprocess.run(cmd, check=True, capture_output=True, text=True)
    return {"hostSeconds": time.monotonic() - start,
            "frac": float(SWEEP_FRAC), "jobs": 1, "islands": islands,
            "fastPath": fast_path}


def run_islands(build_dir, out_path):
    """Record serial vs 2/4-island host time into BENCH_islands.json."""
    exe = os.path.join(build_dir, "bench", "micro_components")
    out = subprocess.run(
        [exe, "--benchmark_filter=BM_IslandStreamCopy",
         "--benchmark_format=json"],
        check=True, capture_output=True, text=True).stdout
    micro = {}
    for bench in json.loads(out)["benchmarks"]:
        if bench.get("run_type") == "aggregate":
            continue
        secs = bench["real_time"] * {"ns": 1e-9, "us": 1e-6,
                                     "ms": 1e-3, "s": 1.0}[
                                         bench["time_unit"]]
        micro[bench["name"]] = {
            "hostSeconds": secs,
            "simCyclesPerHostSecond": bench.get("items_per_second"),
        }

    sweep = {f"islands{n}": run_sweep(build_dir, islands=n)
             for n in (1, 2, 4)}

    def ratio(base, other):
        return round(base / other, 3) if other > 0 else None

    doc = {
        "host": {"threads": os.cpu_count()},
        "micro": micro,
        "sweep": {"table4_cnn": sweep},
        "speedup": {
            # serial time / N-island time: > 1 means islands won.
            "BM_IslandStreamCopy": {
                str(n): ratio(
                    micro["BM_IslandStreamCopy/1"]["hostSeconds"],
                    micro[f"BM_IslandStreamCopy/{n}"]["hostSeconds"])
                for n in (2, 4)
                if f"BM_IslandStreamCopy/{n}" in micro
            },
            "table4_cnn": {
                str(n): ratio(sweep["islands1"]["hostSeconds"],
                              sweep[f"islands{n}"]["hostSeconds"])
                for n in (2, 4)
            },
        },
    }
    if (os.cpu_count() or 1) < 4:
        doc["note"] = (
            "host has fewer threads than islands; ratios below 1 "
            "measure barrier overhead under oversubscription, not the "
            "multi-core speedup (re-record on a >= 4-thread host)")
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote island numbers to {out_path}")
    for name, ratios in doc["speedup"].items():
        print(f"  {name}: " + ", ".join(
            f"{n} islands -> {r}x" for n, r in sorted(ratios.items())))
    return 0


def run_decode(build_dir, out_path):
    """Record interpreter vs µop-replay host time into BENCH_decode.json."""
    decode_filter = "BM_PeScalarLoop|BM_FastForwardStreamCopy"
    baseline = run_micro(build_dir, decode_filter, ["--no-fast-path"])
    optimized = run_micro(build_dir, decode_filter)
    micro = {name: {"baseline": baseline[name],
                    "optimized": optimized[name]}
             for name in sorted(set(baseline) | set(optimized))
             if name in baseline and name in optimized}

    sweep = {"baseline": run_sweep(build_dir, fast_path=False),
             "optimized": run_sweep(build_dir, fast_path=True)}

    def ratio(base, other):
        return round(base / other, 3) if other > 0 else None

    doc = {
        "host": {"threads": os.cpu_count()},
        "benchmarks": micro,
        "sweep": {"table4_cnn": sweep},
        "speedup": {
            # optimized rate / baseline rate (or baseline time /
            # optimized time): > 1 means the fast path won.
            **{name: ratio(
                   cols["optimized"]["simCyclesPerHostSecond"],
                   cols["baseline"]["simCyclesPerHostSecond"])
               for name, cols in micro.items()
               if "simCyclesPerHostSecond" in cols.get("baseline", {})
               and "simCyclesPerHostSecond" in cols.get("optimized", {})},
            "table4_cnn": ratio(sweep["baseline"]["hostSeconds"],
                                sweep["optimized"]["hostSeconds"]),
        },
    }
    if (os.cpu_count() or 1) < 4:
        doc["note"] = (
            "recorded on a small host: both columns ran on the same "
            "machine back to back, so the ratios are meaningful but "
            "the absolute rates are not (re-record on a quiet host "
            "for absolutes)")
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote decode numbers to {out_path}")
    for name, r in sorted(doc["speedup"].items()):
        print(f"  {name}: fast path -> {r}x")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="record host-perf numbers into BENCH_*.json")
    ap.add_argument("--build", default="build-release",
                    help="Release build directory (default: %(default)s)")
    ap.add_argument("--mode", default="hotpath",
                    choices=["hotpath", "islands", "decode"],
                    help="hotpath: BENCH_hotpath.json baseline/optimized "
                         "columns; islands: BENCH_islands.json serial vs "
                         "2/4-island snapshot; decode: BENCH_decode.json "
                         "interpreter vs decoded-µop fast path")
    ap.add_argument("--label",
                    choices=["baseline", "optimized"],
                    help="which column of the file to (over)write "
                         "(hotpath mode; required there)")
    ap.add_argument("--out", default=None,
                    help="output file (default: BENCH_<mode>.json)")
    ap.add_argument("--skip-sweep", action="store_true",
                    help="skip the table4_cnn end-to-end sweep")
    args = ap.parse_args()

    if args.out is None:
        args.out = os.path.join(REPO_ROOT, f"BENCH_{args.mode}.json")
    if args.mode == "islands":
        return run_islands(args.build, args.out)
    if args.mode == "decode":
        return run_decode(args.build, args.out)
    if args.label is None:
        ap.error("--label is required in hotpath mode")

    merged = {"benchmarks": {}, "sweep": {}}
    if os.path.exists(args.out):
        with open(args.out) as f:
            merged = json.load(f)

    for name, entry in run_micro(args.build).items():
        merged["benchmarks"].setdefault(name, {})[args.label] = entry
    if not args.skip_sweep:
        merged["sweep"].setdefault("table4_cnn", {})[args.label] = \
            run_sweep(args.build)

    head = merged["benchmarks"].get("BM_FastForwardStreamCopy/0", {})
    if "baseline" in head and "optimized" in head:
        merged["headlineSpeedup"] = round(
            head["optimized"]["simCyclesPerHostSecond"] /
            head["baseline"]["simCyclesPerHostSecond"], 3)

    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.label} numbers to {args.out}")
    if "headlineSpeedup" in merged:
        print(f"BM_FastForwardStreamCopy/0 speedup: "
              f"{merged['headlineSpeedup']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
