/**
 * @file
 * Command-line VIP assembler: assemble a source file into the 64-bit
 * binary encoding, or disassemble a binary back to text.
 *
 *   vip-asm prog.s -o prog.bin        assemble
 *   vip-asm -d prog.bin               disassemble to stdout
 *   vip-asm -l prog.s                 print a listing (addr, word, asm)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "isa/isa.hh"

using namespace vip;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "vip-asm: cannot open %s\n", path.c_str());
        std::exit(1);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: vip-asm <prog.s> [-o prog.bin]   assemble\n"
                 "       vip-asm -l <prog.s>              listing\n"
                 "       vip-asm -d <prog.bin>            disassemble\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool disasm = false, listing = false;
    std::string input, output;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-d") == 0) {
            disasm = true;
        } else if (std::strcmp(argv[i], "-l") == 0) {
            listing = true;
        } else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
            output = argv[++i];
        } else if (argv[i][0] == '-') {
            return usage();
        } else {
            input = argv[i];
        }
    }
    if (input.empty())
        return usage();

    if (disasm) {
        std::ifstream in(input, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "vip-asm: cannot open %s\n",
                         input.c_str());
            return 1;
        }
        std::vector<std::uint64_t> words;
        std::uint64_t w;
        while (in.read(reinterpret_cast<char *>(&w), sizeof(w)))
            words.push_back(w);
        const auto prog = decodeProgram(words);
        for (std::size_t i = 0; i < prog.size(); ++i)
            std::printf("%4zu: %s\n", i, disassemble(prog[i]).c_str());
        return 0;
    }

    AssemblyError err;
    const auto prog = assemble(readFile(input), &err);
    if (!err.message.empty()) {
        std::fprintf(stderr, "%s:%u: error: %s\n", input.c_str(),
                     err.line, err.message.c_str());
        return 1;
    }
    std::fprintf(stderr, "%zu instructions (buffer holds %u)\n",
                 prog.size(), kInstBufferEntries);

    const auto words = encodeProgram(prog);
    if (listing) {
        std::size_t wi = 0;
        for (std::size_t i = 0; i < prog.size(); ++i) {
            std::printf("%4zu: %016llx  %s\n", i,
                        static_cast<unsigned long long>(words[wi]),
                        disassemble(prog[i]).c_str());
            ++wi;
            if (prog[i].op == Opcode::MovImm &&
                !immFitsEncoding(prog[i].imm)) {
                std::printf("      %016llx  ; literal\n",
                            static_cast<unsigned long long>(words[wi]));
                ++wi;
            }
        }
    }
    if (!output.empty()) {
        std::ofstream out(output, std::ios::binary);
        out.write(reinterpret_cast<const char *>(words.data()),
                  static_cast<std::streamsize>(words.size() * 8));
        std::fprintf(stderr, "wrote %zu words to %s\n", words.size(),
                     output.c_str());
    }
    return 0;
}
