/**
 * @file
 * vip-serve: the persistent simulation service.
 *
 * A long-lived process that answers RunSpec requests over a
 * JSON-lines protocol (see serve/serve.hh for the request/response
 * schema): each line in is one request, each line out is the
 * matching response, in order. Two transports:
 *
 *   vip-serve [--stdin]            serve the stdin/stdout pipe until
 *                                  EOF or a {"cmd":"shutdown"} line
 *                                  (the default; what tests and CI
 *                                  drive)
 *   vip-serve --socket PATH        listen on a unix domain socket,
 *                                  serving one connection at a time;
 *                                  a shutdown request ends the whole
 *                                  daemon, a disconnect just ends
 *                                  that connection
 *
 * Options:
 *   --jobs N     worker pool size (default 1: inline, deterministic
 *                response order timing; 0 = hardware concurrency)
 *   --islands N  island count applied to run requests that don't set
 *                one (default 1 = serial; results are bit-identical
 *                either way, see system/partition.hh)
 *   --no-fast-path
 *                interpret every instruction on requests that don't
 *                ask otherwise (default: replay decoded µops; results
 *                are bit-identical either way, see pe/decode.hh)
 *   --cache N    result-cache capacity in entries (default 256;
 *                0 disables caching)
 *
 * The worker pool and the content-addressed result cache live in
 * VipServer; this file owns only transport and flag parsing. Every
 * failure a request can cause comes back as an {"error": ...}
 * response — the daemon survives malformed lines, bad configs,
 * assembly errors, and deadlocked runs alike.
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "cli.hh"
#include "serve/serve.hh"
#include "sim/sweep.hh"

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <ext/stdio_filebuf.h>
#endif

using namespace vip;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: vip-serve [--stdin | --socket PATH] "
                 "[--cache N] %s\n%s"
                 "  --stdin             serve stdin/stdout (default)\n"
                 "  --socket PATH       listen on a unix socket\n"
                 "  --cache N           result-cache entries "
                 "(default 256, 0 = off)\n",
                 cli::commonUsage(cli::kJobs | cli::kIslands |
                                  cli::kFastPath)
                     .c_str(),
                 cli::commonHelp(cli::kJobs | cli::kIslands |
                                 cli::kFastPath)
                     .c_str());
    return 2;
}

#ifdef __unix__
/** Serve connections on a unix socket until a shutdown request. */
int
serveSocket(VipServer &server, const std::string &path)
{
    const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
        std::perror("vip-serve: socket");
        return 1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "vip-serve: socket path too long: %s\n",
                     path.c_str());
        ::close(listener);
        return 1;
    }
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  path.c_str());
    ::unlink(path.c_str());  // stale socket from a previous run
    if (::bind(listener, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listener, 8) < 0) {
        std::perror("vip-serve: bind/listen");
        ::close(listener);
        return 1;
    }
    std::fprintf(stderr, "vip-serve: listening on %s\n", path.c_str());

    for (;;) {
        const int client = ::accept(listener, nullptr, nullptr);
        if (client < 0) {
            std::perror("vip-serve: accept");
            break;
        }
        // One connection at a time: requests within a connection
        // already pipeline across the worker pool.
        const std::uint64_t before = server.requests();
        {
            __gnu_cxx::stdio_filebuf<char> inbuf(client, std::ios::in);
            __gnu_cxx::stdio_filebuf<char> outbuf(::dup(client),
                                                  std::ios::out);
            std::istream in(&inbuf);
            std::ostream out(&outbuf);
            server.serve(in, out);
        }
        std::fprintf(stderr,
                     "vip-serve: connection closed after %llu "
                     "requests\n",
                     static_cast<unsigned long long>(server.requests() -
                                                     before));
        // serve() only returns early on EOF or shutdown; distinguish
        // by asking the server whether shutdown was requested.
        if (server.shutdownRequested())
            break;
    }
    ::close(listener);
    ::unlink(path.c_str());
    return 0;
}
#endif

} // namespace

int
main(int argc, char **argv)
{
    cli::CommonOptions common;
    common.jobs = 1;  // deterministic by default; opt into parallelism
    std::string socketPath;
    ServeOptions opts;
    bool useStdin = true;

    for (int i = 1; i < argc; ++i) {
        if (cli::consumeCommon(argc, argv, i,
                               cli::kJobs | cli::kIslands |
                                   cli::kFastPath,
                               common))
            continue;
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::exit(usage());
            }
            return argv[++i];
        };
        if (arg == "--stdin") {
            useStdin = true;
        } else if (arg == "--socket") {
            socketPath = next();
            useStdin = false;
        } else if (arg == "--cache") {
            opts.cacheEntries = static_cast<std::size_t>(
                cli::parseNum(argv[0], "--cache", next()));
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else {
            return usage();
        }
    }

    opts.jobs = common.jobs;
    opts.defaultIslands = common.islands;
    opts.defaultFastPath = common.fastPath;
    bool oversubscribed = false;
    const unsigned budget =
        hostThreadBudget(common.jobs, common.islands, &oversubscribed);
    if (oversubscribed) {
        std::fprintf(stderr,
                     "vip-serve: warning: --jobs x --islands wants %u "
                     "host threads but the host has %u; expect "
                     "thrashing, not throughput\n",
                     budget, SweepEngine::hardwareJobs());
    }
    VipServer server(opts);

    if (useStdin) {
        server.serve(std::cin, std::cout);
        return 0;
    }
#ifdef __unix__
    return serveSocket(server, socketPath);
#else
    std::fprintf(stderr,
                 "vip-serve: --socket requires a unix platform\n");
    return 1;
#endif
}
