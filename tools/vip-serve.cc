/**
 * @file
 * vip-serve: the persistent simulation service.
 *
 * A long-lived process that answers RunSpec requests over a
 * JSON-lines protocol (see serve/serve.hh for the request/response
 * schema): each line in is one request, each line out is the
 * matching response, in order. Two transports:
 *
 *   vip-serve [--stdin]            serve the stdin/stdout pipe until
 *                                  EOF or a {"cmd":"shutdown"} line
 *                                  (the default; what tests and CI
 *                                  drive)
 *   vip-serve --socket PATH        listen on a unix domain socket,
 *                                  serving connections concurrently
 *                                  (one thread each; requests within
 *                                  a connection stay ordered); a
 *                                  shutdown request ends the whole
 *                                  daemon, a disconnect just ends
 *                                  that connection
 *
 * Options:
 *   --jobs N     worker pool size (default 1: inline, deterministic
 *                response order timing; 0 = hardware concurrency)
 *   --islands N  island count applied to run requests that don't set
 *                one (default 1 = serial; results are bit-identical
 *                either way, see system/partition.hh)
 *   --no-fast-path
 *                interpret every instruction on requests that don't
 *                ask otherwise (default: replay decoded µops; results
 *                are bit-identical either way, see pe/decode.hh)
 *   --cache N    result-cache capacity in entries (default 256;
 *                0 disables caching)
 *   --journal PATH
 *                write-ahead campaign journal: requests are logged
 *                before dispatch, responses after emission, and a
 *                restarted daemon re-answers completed points from
 *                the journal (see serve/journal.hh)
 *   --max-queue N
 *                admission bound: shed run requests with
 *                {"error":{"kind":"overloaded"}} when this many runs
 *                are already in flight (default 4 * jobs + 4)
 *
 * Lifecycle: SIGINT/SIGTERM drain — in-flight runs complete, their
 * responses are written (and journaled), then the process exits. A
 * stale socket file from a crashed daemon is probed (a live daemon
 * answers connect) and removed only if dead; the socket file is
 * unlinked on every exit path. SIGPIPE is ignored so a client that
 * disconnects mid-response costs one failed write, not the daemon.
 *
 * The worker pool and the content-addressed result cache live in
 * VipServer; this file owns only transport, signals, and flag
 * parsing. Every failure a request can cause comes back as an
 * {"error": ...} response — the daemon survives malformed lines,
 * oversized lines, bad configs, assembly errors, and deadlocked or
 * timed-out runs alike.
 */

#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>

#include "cli.hh"
#include "serve/serve.hh"
#include "sim/sweep.hh"

#ifdef __unix__
#include <cerrno>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <ext/stdio_filebuf.h>

#include <list>
#include <memory>
#include <set>
#include <thread>

#include "sim/mutex.hh"
#endif

using namespace vip;

namespace {

/** Last delivered stop signal (0 = none). Handlers only store; the
 *  transport loops poll. Installed without SA_RESTART so a signal
 *  interrupts accept()/read() with EINTR instead of being invisible
 *  until the next request. */
volatile std::sig_atomic_t g_signal = 0;

void
onStopSignal(int sig)
{
    g_signal = sig;
}

void
installSignalHandlers()
{
#ifdef __unix__
    struct sigaction sa = {};
    sa.sa_handler = onStopSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: blocked syscalls must wake
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    // A client that disconnects mid-response must cost one failed
    // write, not the process.
    std::signal(SIGPIPE, SIG_IGN);
#else
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
#endif
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: vip-serve [--stdin | --socket PATH] "
                 "[--cache N] [--journal PATH] [--max-queue N] "
                 "%s\n%s"
                 "  --stdin             serve stdin/stdout (default)\n"
                 "  --socket PATH       listen on a unix socket\n"
                 "  --cache N           result-cache entries "
                 "(default 256, 0 = off)\n"
                 "  --journal PATH      write-ahead campaign journal "
                 "(crash recovery)\n"
                 "  --max-queue N       shed run requests beyond N in "
                 "flight (default 4*jobs+4)\n",
                 cli::commonUsage(cli::kJobs | cli::kIslands |
                                  cli::kFastPath)
                     .c_str(),
                 cli::commonHelp(cli::kJobs | cli::kIslands |
                                 cli::kFastPath)
                     .c_str());
    return 2;
}

#ifdef __unix__

/** Open client connections, so a stopping daemon can wake their
 *  (possibly read-blocked) serving threads with shutdown(SHUT_RD). A
 *  thread deregisters its fd before the streams close it, so no entry
 *  here is ever a recycled descriptor. */
struct ClientRegistry
{
    Mutex mutex;
    std::set<int> fds VIP_GUARDED_BY(mutex);

    void
    add(int fd)
    {
        LockGuard lock(mutex);
        fds.insert(fd);
    }

    void
    remove(int fd)
    {
        LockGuard lock(mutex);
        fds.erase(fd);
    }

    /** Half-close every live connection for reading: their serve()
     *  loops see EOF, drain, and return. */
    void
    shutdownAll()
    {
        LockGuard lock(mutex);
        for (const int fd : fds)
            ::shutdown(fd, SHUT_RD);
    }
};

/**
 * The stale-socket check: a previous daemon that crashed leaves its
 * socket file behind, and bind() would fail forever. Probe with a
 * connect(): a live daemon accepts (so refuse to steal its socket);
 * anything else means the file is dead and safe to remove.
 */
bool
removeStaleSocket(const sockaddr_un &addr, const std::string &path)
{
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe < 0)
        return true;  // can't probe; let bind() report the truth
    const bool live =
        ::connect(probe, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) == 0;
    ::close(probe);
    if (live) {
        std::fprintf(stderr,
                     "vip-serve: %s is already being served (connect "
                     "succeeded); refusing to replace a live daemon\n",
                     path.c_str());
        return false;
    }
    ::unlink(path.c_str());  // dead remnant (or absent): clear it
    return true;
}

/** Serve connections on a unix socket until a shutdown request or a
 *  stop signal; drains in-flight work before returning. */
int
serveSocket(VipServer &server, const std::string &path)
{
    const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
        std::perror("vip-serve: socket");
        return 1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "vip-serve: socket path too long: %s\n",
                     path.c_str());
        ::close(listener);
        return 1;
    }
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  path.c_str());
    if (!removeStaleSocket(addr, path)) {
        ::close(listener);
        return 1;
    }
    if (::bind(listener, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listener, 8) < 0) {
        std::perror("vip-serve: bind/listen");
        ::close(listener);
        ::unlink(path.c_str());  // bind may have created the file
        return 1;
    }
    std::fprintf(stderr, "vip-serve: listening on %s\n", path.c_str());

    ClientRegistry clients;

    struct Conn
    {
        std::thread th;
        std::shared_ptr<std::atomic<bool>> done;
    };
    std::list<Conn> conns;

    const auto reap = [&conns](bool all) {
        for (auto it = conns.begin(); it != conns.end();) {
            if (all || it->done->load(std::memory_order_acquire)) {
                it->th.join();
                it = conns.erase(it);
            } else {
                ++it;
            }
        }
    };

    for (;;) {
        if (g_signal != 0 || server.shutdownRequested())
            break;
        const int client = ::accept(listener, nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR)
                continue;  // signal checked at the top of the loop
            if (server.shutdownRequested())
                break;  // a connection shut the listener down under us
            std::perror("vip-serve: accept");
            break;
        }
        reap(false);
        clients.add(client);
        auto done = std::make_shared<std::atomic<bool>>(false);
        conns.push_back(Conn{
            std::thread([&server, &clients, client, listener, done] {
                const std::uint64_t before = server.requests();
                {
                    __gnu_cxx::stdio_filebuf<char> inbuf(client,
                                                         std::ios::in);
                    __gnu_cxx::stdio_filebuf<char> outbuf(
                        ::dup(client), std::ios::out);
                    std::istream in(&inbuf);
                    std::ostream out(&outbuf);
                    server.serve(in, out);
                    clients.remove(client);  // streams close fd next
                }
                std::fprintf(
                    stderr,
                    "vip-serve: connection closed after %llu requests\n",
                    static_cast<unsigned long long>(server.requests() -
                                                    before));
                if (server.shutdownRequested()) {
                    // Wake the accept loop: nothing else will.
                    ::shutdown(listener, SHUT_RDWR);
                }
                done->store(true, std::memory_order_release);
            }),
            done});
    }

    // Drain-then-exit: wake every connection still blocked in a read,
    // let each serve() finish its in-flight responses, then leave no
    // trace of the socket.
    clients.shutdownAll();
    reap(true);
    ::close(listener);
    ::unlink(path.c_str());
    if (g_signal != 0) {
        std::fprintf(stderr,
                     "vip-serve: signal %d: drained in-flight work, "
                     "exiting\n",
                     static_cast<int>(g_signal));
    }
    return 0;
}
#endif

} // namespace

int
main(int argc, char **argv)
{
    cli::CommonOptions common;
    common.jobs = 1;  // deterministic by default; opt into parallelism
    std::string socketPath;
    ServeOptions opts;
    bool useStdin = true;

    for (int i = 1; i < argc; ++i) {
        if (cli::consumeCommon(argc, argv, i,
                               cli::kJobs | cli::kIslands |
                                   cli::kFastPath,
                               common))
            continue;
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::exit(usage());
            }
            return argv[++i];
        };
        if (arg == "--stdin") {
            useStdin = true;
        } else if (arg == "--socket") {
            socketPath = next();
            useStdin = false;
        } else if (arg == "--cache") {
            opts.cacheEntries = static_cast<std::size_t>(
                cli::parseNum(argv[0], "--cache", next()));
        } else if (arg == "--journal") {
            opts.journalPath = next();
        } else if (arg == "--max-queue") {
            opts.maxQueuedRuns = static_cast<std::size_t>(
                cli::parseNum(argv[0], "--max-queue", next()));
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else {
            return usage();
        }
    }

    installSignalHandlers();

    opts.jobs = common.jobs;
    opts.defaultIslands = common.islands;
    opts.defaultFastPath = common.fastPath;
    // Drain-then-exit on SIGINT/SIGTERM: serve() polls this between
    // request lines and returns after finishing in-flight work.
    opts.stopRequested = [] { return g_signal != 0; };
    bool oversubscribed = false;
    const unsigned budget =
        hostThreadBudget(common.jobs, common.islands, &oversubscribed);
    if (oversubscribed) {
        std::fprintf(stderr,
                     "vip-serve: warning: --jobs x --islands wants %u "
                     "host threads but the host has %u; expect "
                     "thrashing, not throughput\n",
                     budget, SweepEngine::hardwareJobs());
    }

    try {
        VipServer server(opts);
        if (useStdin) {
            server.serve(std::cin, std::cout);
            if (g_signal != 0) {
                std::fprintf(stderr,
                             "vip-serve: signal %d: drained in-flight "
                             "work, exiting\n",
                             static_cast<int>(g_signal));
            }
            return 0;
        }
#ifdef __unix__
        return serveSocket(server, socketPath);
#else
        std::fprintf(stderr,
                     "vip-serve: --socket requires a unix platform\n");
        return 1;
#endif
    } catch (const SimError &e) {
        // Startup failures (an unopenable journal) — requests never
        // get here; their errors are responses.
        std::fprintf(stderr, "vip-serve: %s\n", e.what());
        return 1;
    }
}
