/**
 * @file
 * Command-line VIP runner — a thin client of the RunSpec execution
 * path (system/runspec.hh). The flags assemble a RunSpec, the same
 * serializable description of a run that the vip-serve daemon accepts
 * over its JSON-lines protocol, and both front ends execute it
 * through buildSimulation(); what differs here is purely
 * presentation: the --dump-* flags inspect the machine afterwards
 * and --json-stats wraps the structured result in a document with a
 * host-timing section.
 *
 *   vip-run prog.s [options]
 *     --reg N=V            seed scalar register N (repeatable)
 *     --dram ADDR=V16      store a 16-bit value before running
 *                          (repeatable; ADDR/V accept 0x hex)
 *     --dump-dram A,N      print N int16 values at DRAM address A
 *     --dump-sp A,N        print N int16 scratchpad values
 *     --dump-regs          print the scalar register file
 *     --dump-spec          print the run as RunSpec JSON (a valid
 *                          vip-serve request body) and exit
 *     --stats              dump the statistics tree
 *     --json-stats FILE    write statistics as JSON ("-" = stdout):
 *                          a "host" section with wall-clock timing
 *                          plus the deterministic RunResult document
 *     --inject SPEC        run a fault-injection campaign (see
 *                          sim/fault.hh); adds a "faults" section
 *     --max-cycles N       simulation budget (default 100M)
 *     --timeout-ms N       wall-clock budget: a run still going after
 *                          N host milliseconds stops with a
 *                          structured "timeout" error (exit 1)
 *     --vaults N           machine size (default 1 vault; the torus
 *                          shape is derived with nocDimsFor)
 *     --islands N          shard the run across N host threads
 *                          (bit-identical results; N must divide the
 *                          NoC X dimension)
 *     --no-fast-forward    tick every cycle instead of warping over
 *                          provably dead ones (same results, slower)
 *     --no-fast-path       interpret every instruction instead of
 *                          replaying decoded µops and fast blocks
 *                          (same results, slower)
 *     --strict             panic on vector timing hazards
 *
 * Campaign recovery (no source file; pairs with vip-serve --journal):
 *
 *   vip-run --resume PATH    finish an interrupted campaign journal:
 *                            completed entries print their recorded
 *                            response verbatim, the unanswered tail
 *                            is executed (and journaled under its
 *                            original sequence numbers, so repeated
 *                            resumes are idempotent), and stdout is
 *                            the full in-order response stream —
 *                            byte-identical to an uninterrupted run
 *
 * On a recoverable failure (bad config, assembly error, deadlock) the
 * runner prints the error to stderr, writes {"error": {...}} to the
 * --json-stats target when one was given, and exits nonzero — it never
 * aborts for conditions the input can cause. SIGINT/SIGTERM trip the
 * run's CancelToken: the run stops at the next poll boundary and the
 * runner emits {"error":{"kind":"cancelled"}} on stdout (kind
 * "timeout" for an expired --timeout-ms) before exiting 1.
 *
 * Example — a dot product of two 8-element vectors staged at 0x1000
 * and 0x1100, result at 0x2000:
 *
 *   vip-run dot.s --dram 0x1000=3 ... --dump-dram 0x2000,1
 */

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli.hh"
#include "serve/journal.hh"
#include "serve/serve.hh"
#include "sim/cancel.hh"
#include "sim/error.hh"
#include "sim/fault.hh"
#include "sim/json.hh"
#include "sim/sweep.hh"
#include "system/runspec.hh"

using namespace vip;

namespace {

/** The run's stop signal. SIGINT/SIGTERM trip it (CancelToken::cancel
 *  is an async-signal-safe atomic store); the simulation loop polls
 *  it and throws CancelledError at the next boundary. */
CancelToken g_token;
volatile std::sig_atomic_t g_signal = 0;

void
onStopSignal(int sig)
{
    g_signal = sig;
    g_token.cancel();
}

void
installSignalHandlers()
{
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: vip-run <prog.s> [--reg N=V] [--dram A=V] "
        "[--dump-dram A,N]\n"
        "       [--dump-sp A,N] [--dump-regs] [--dump-spec] [--stats]\n"
        "       [--max-cycles N] [--timeout-ms N] [--vaults N] "
        "[--strict] [--trace]\n"
        "       | vip-run --resume JOURNAL "
        "%s\n%s",
        cli::commonUsage(cli::kJsonStats | cli::kInject |
                         cli::kIslands | cli::kFastForward |
                         cli::kFastPath)
            .c_str(),
        cli::commonHelp(cli::kJsonStats | cli::kInject |
                        cli::kIslands | cli::kFastForward |
                        cli::kFastPath)
            .c_str());
    return 2;
}

/** {"error": {kind, message, detail}} for the --json-stats target. */
std::string
errorResponseJson(const std::string &kind, const std::string &message,
                  const std::string &detail)
{
    Json err = Json::object();
    err.set("kind", kind);
    err.set("message", message);
    err.set("detail", detail);
    Json doc = Json::object();
    doc.set("error", std::move(err));
    return doc.str(0) + "\n";
}

/** Write @p body to the --json-stats target ("-" = stdout). */
bool
emitJson(const std::string &path, const std::string &body)
{
    if (path == "-") {
        std::cout << body;
        return true;
    }
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "vip-run: cannot write %s\n", path.c_str());
        return false;
    }
    os << body;
    return true;
}

struct Options
{
    std::string sourcePath;
    cli::CommonOptions common;
    std::vector<std::pair<unsigned, std::uint64_t>> regs;
    std::vector<std::pair<Addr, std::int16_t>> pokes;
    std::vector<std::pair<Addr, unsigned>> dumpDram, dumpSp;
    bool dumpRegs = false, dumpSpec = false;
    bool wantStats = false, strict = false, trace = false;
    Cycles maxCycles = 100'000'000;
    std::uint64_t timeoutMs = 0;
    unsigned vaults = 1;
    std::string resumePath;
};

/** The flags as a RunSpec — the serializable half of the run. */
RunSpec
specFromOptions(const Options &opt, const std::string &source)
{
    RunSpec spec;
    spec.config = makeSystemConfig(opt.vaults, 1);
    spec.config.pe.strictHazards = opt.strict;
    spec.config.fastForward = opt.common.fastForward;
    spec.config.islands = opt.common.islands;
    spec.config.fastPath = opt.common.fastPath;
    if (!opt.common.injectSpec.empty())
        spec.config.faults = FaultPlan::parse(opt.common.injectSpec);
    spec.programs.push_back({0, source});
    for (const auto &[addr, val] : opt.pokes)
        spec.pokes.push_back({addr, {val}});
    for (const auto &[r, v] : opt.regs)
        spec.regs.push_back({0, r, v});
    spec.maxCycles = opt.maxCycles;
    spec.budgetMs = opt.timeoutMs;
    return spec;
}

/**
 * Finish an interrupted campaign journal (vip-serve --journal): emit
 * completed responses verbatim, execute the unanswered tail through
 * the same VipServer code path the daemon uses, and journal the new
 * responses under their *original* sequence numbers — no duplicate
 * request entries, so resuming an already-complete journal just
 * replays it. stdout is the full in-order response stream,
 * byte-identical to what an uninterrupted daemon would have emitted
 * (the simulator is deterministic and the journal stores exact
 * response bytes).
 */
int
resumeCampaign(const std::string &path)
{
    const auto entries = CampaignJournal::load(path);
    ServeOptions sopts;
    sopts.jobs = 1;  // inline: deterministic, ordered
    sopts.stopRequested = [] { return g_signal != 0; };
    VipServer server(sopts);
    CampaignJournal journal(path);
    for (const CampaignJournal::Entry &e : entries) {
        if (g_signal != 0) {
            std::fprintf(stderr, "vip-run: signal %d: resume stopped\n",
                         static_cast<int>(g_signal));
            return 1;
        }
        if (e.answered) {
            std::cout << e.response << "\n";
            continue;
        }
        std::istringstream in(e.request + "\n");
        std::ostringstream out;
        server.serve(in, out);
        std::string resp = out.str();
        while (!resp.empty() && resp.back() == '\n')
            resp.pop_back();
        journal.appendResponse(e.seq, resp);
        std::cout << resp << "\n";
    }
    std::cout << std::flush;
    return 0;
}

int
run(const Options &opt)
{
    std::ifstream in(opt.sourcePath);
    if (!in) {
        std::fprintf(stderr, "vip-run: cannot open %s\n",
                     opt.sourcePath.c_str());
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();

    const RunSpec spec = specFromOptions(opt, ss.str());
    if (opt.dumpSpec) {
        std::cout << spec.toJson().str(0) << "\n";
        return 0;
    }

    const auto sim = buildSimulation(spec);
    if (opt.trace) {
        sim->trace(0, [](Cycles at, std::size_t pc,
                         const Instruction &inst) {
            std::printf("%8llu  %4zu: %s\n",
                        static_cast<unsigned long long>(at), pc,
                        disassemble(inst).c_str());
        });
    }

    g_token.setBudgetMs(spec.budgetMs);
    const RunResult result = sim->run(spec.maxCycles, &g_token);
    std::printf("halted=%d cycles=%llu (%.3f us)\n",
                result.haltedCleanly,
                static_cast<unsigned long long>(result.cycles),
                static_cast<double>(result.cycles) * 0.8e-3);
    if (result.faultInjectionEnabled) {
        const FaultStats &f = result.faults;
        std::printf("faults: dram-flips=%llu retention=%llu "
                    "ecc-corrected=%llu ecc-detected=%llu "
                    "ecc-silent=%llu noc-dropped=%llu "
                    "noc-corrupted=%llu sp-flips=%llu\n",
                    (unsigned long long)f.dramBitFlips,
                    (unsigned long long)f.retentionErrors,
                    (unsigned long long)f.eccCorrected,
                    (unsigned long long)f.eccDetected,
                    (unsigned long long)f.eccSilent,
                    (unsigned long long)f.nocDropped,
                    (unsigned long long)f.nocCorrupted,
                    (unsigned long long)f.spBitFlips);
    }

    VipSystem &sys = sim->system();
    if (opt.dumpRegs) {
        for (unsigned r = 0; r < kNumScalarRegs; r += 4) {
            std::printf("r%-2u %16llx  r%-2u %16llx  r%-2u %16llx  "
                        "r%-2u %16llx\n",
                        r, (unsigned long long)sys.pe(0).reg(r), r + 1,
                        (unsigned long long)sys.pe(0).reg(r + 1), r + 2,
                        (unsigned long long)sys.pe(0).reg(r + 2), r + 3,
                        (unsigned long long)sys.pe(0).reg(r + 3));
        }
    }
    for (const auto &[addr, count] : opt.dumpSp) {
        std::printf("sp[0x%llx]:", (unsigned long long)addr);
        for (unsigned k = 0; k < count; ++k) {
            std::printf(" %d", sys.pe(0).scratchpad().load<std::int16_t>(
                                   static_cast<SpAddr>(addr + 2 * k)));
        }
        std::printf("\n");
    }
    for (const auto &[addr, count] : opt.dumpDram) {
        std::printf("dram[0x%llx]:", (unsigned long long)addr);
        for (const std::int16_t v : sim->peekDram(addr, count))
            std::printf(" %d", v);
        std::printf("\n");
    }
    if (opt.wantStats)
        std::fputs(result.stats.c_str(), stdout);
    if (!opt.common.jsonStatsPath.empty()) {
        // The deterministic RunResult document (counters, formulas,
        // faults — byte-identical run to run) plus a "host" section
        // carrying the wall-clock figures, which are not.
        Json doc = result.toJson();
        Json host = Json::object();
        host.set("hostSeconds", result.hostSeconds);
        host.set("simCyclesPerHostSecond",
                 result.simCyclesPerHostSecond);
        doc.set("host", std::move(host));
        // Like "host", the fastpath section is observability outside
        // the deterministic document: the aggregated µop-cache
        // counters (Pe::FastPathStats) plus the mode that produced
        // them.
        Json fp = Json::object();
        fp.set("enabled", result.fastPathEnabled);
        for (const auto &[name, value] : result.fastpath)
            fp.set(name, value);
        doc.set("fastpath", std::move(fp));
        if (result.faultInjectionEnabled) {
            // Readers of the faults section also want the campaign.
            Json f = doc.at("faults");
            f.set("plan", spec.config.faults.toString());
            doc.set("faults", std::move(f));
        }
        if (!emitJson(opt.common.jsonStatsPath, doc.str(0) + "\n"))
            return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    constexpr unsigned kFlags = cli::kJsonStats | cli::kInject |
                                cli::kIslands | cli::kFastForward |
                                cli::kFastPath;
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (cli::consumeCommon(argc, argv, i, kFlags, opt.common))
            continue;
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::exit(usage());
            }
            return argv[++i];
        };
        auto num = [&](const std::string &text) {
            return cli::parseNum(argv[0], arg.c_str(), text.c_str());
        };
        if (arg == "--reg") {
            const std::string v = next();
            const auto eq = v.find('=');
            opt.regs.emplace_back(std::stoul(v.substr(0, eq)),
                                  num(v.substr(eq + 1)));
        } else if (arg == "--dram") {
            const std::string v = next();
            const auto eq = v.find('=');
            opt.pokes.emplace_back(num(v.substr(0, eq)),
                                   static_cast<std::int16_t>(std::stol(
                                       v.substr(eq + 1), nullptr, 0)));
        } else if (arg == "--dump-dram" || arg == "--dump-sp") {
            const std::string v = next();
            const auto comma = v.find(',');
            auto &list = arg == "--dump-dram" ? opt.dumpDram : opt.dumpSp;
            list.emplace_back(num(v.substr(0, comma)),
                              static_cast<unsigned>(
                                  num(v.substr(comma + 1))));
        } else if (arg == "--dump-regs") {
            opt.dumpRegs = true;
        } else if (arg == "--dump-spec") {
            opt.dumpSpec = true;
        } else if (arg == "--stats") {
            opt.wantStats = true;
        } else if (arg == "--strict") {
            opt.strict = true;
        } else if (arg == "--trace") {
            opt.trace = true;
        } else if (arg == "--max-cycles") {
            opt.maxCycles = num(next());
        } else if (arg == "--timeout-ms") {
            opt.timeoutMs = num(next());
        } else if (arg == "--resume") {
            opt.resumePath = next();
        } else if (arg == "--vaults") {
            opt.vaults = static_cast<unsigned>(num(next()));
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg[0] == '-') {
            return usage();
        } else {
            opt.sourcePath = arg;
        }
    }
    installSignalHandlers();

    if (!opt.resumePath.empty()) {
        try {
            return resumeCampaign(opt.resumePath);
        } catch (const SimError &e) {
            std::fprintf(stderr, "vip-run: error: %s\n", e.what());
            return 1;
        }
    }
    if (opt.sourcePath.empty())
        return usage();

    bool oversubscribed = false;
    hostThreadBudget(1, opt.common.islands, &oversubscribed);
    if (oversubscribed) {
        std::fprintf(stderr,
                     "vip-run: warning: --islands %u exceeds the "
                     "host's %u hardware threads; expect slowdown, "
                     "not speedup\n",
                     opt.common.islands, SweepEngine::hardwareJobs());
    }

    try {
        return run(opt);
    } catch (const AssemblyFailure &e) {
        // Re-anchor the assembler's line number on the source path.
        std::fprintf(stderr, "%s:%u: error: %s\n",
                     opt.sourcePath.c_str(), e.line(), e.what());
        if (!opt.common.jsonStatsPath.empty()) {
            emitJson(opt.common.jsonStatsPath,
                     errorResponseJson(e.kind(),
                                       opt.sourcePath + ":" +
                                           std::to_string(e.line()) +
                                           ": " + e.message(),
                                       e.detail()));
        }
        return 1;
    } catch (const SimError &e) {
        std::fprintf(stderr, "vip-run: error: %s\n", e.what());
        if (e.kind() == "cancelled" || e.kind() == "timeout") {
            // The structured form on stdout: a scripted caller learns
            // *why* the run stopped without scraping stderr.
            std::cout << errorResponse(e) << "\n" << std::flush;
        }
        if (!opt.common.jsonStatsPath.empty()) {
            emitJson(opt.common.jsonStatsPath,
                     errorResponseJson(e.kind(), e.message(),
                                       e.detail()));
        }
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "vip-run: error: %s\n", e.what());
        if (!opt.common.jsonStatsPath.empty()) {
            emitJson(opt.common.jsonStatsPath,
                     errorResponseJson("exception", e.what(), ""));
        }
        return 1;
    }
}
