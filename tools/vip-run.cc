/**
 * @file
 * Command-line VIP runner: load an assembly program onto one simulated
 * PE, optionally stage DRAM contents, run to completion, and dump
 * registers, scratchpad, DRAM ranges, and statistics.
 *
 *   vip-run prog.s [options]
 *     --reg N=V            seed scalar register N (repeatable)
 *     --dram ADDR=V16      store a 16-bit value before running
 *                          (repeatable; ADDR/V accept 0x hex)
 *     --dump-dram A,N      print N int16 values at DRAM address A
 *     --dump-sp A,N        print N int16 scratchpad values
 *     --dump-regs          print the scalar register file
 *     --stats              dump the statistics tree
 *     --json-stats FILE    write the statistics tree as JSON (stable
 *                          key order; "-" writes to stdout), plus a
 *                          "host" section with wall-clock timing and
 *                          fast-forward figures
 *     --max-cycles N       simulation budget (default 100M)
 *     --no-fast-forward    tick every cycle instead of warping over
 *                          provably dead ones (same results, slower)
 *     --strict             panic on vector timing hazards
 *
 * Example — a dot product of two 8-element vectors staged at 0x1000
 * and 0x1100, result at 0x2000:
 *
 *   vip-run dot.s --dram 0x1000=3 ... --dump-dram 0x2000,1
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "system/simulation.hh"

using namespace vip;

namespace {

std::uint64_t
parseNum(const std::string &s)
{
    return std::stoull(s, nullptr, 0);
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: vip-run <prog.s> [--reg N=V] [--dram A=V] "
                 "[--dump-dram A,N]\n"
                 "       [--dump-sp A,N] [--dump-regs] [--stats] "
                 "[--json-stats FILE]\n"
                 "       [--max-cycles N] [--no-fast-forward] "
                 "[--strict] [--trace]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string source_path;
    std::string json_stats_path;
    std::vector<std::pair<unsigned, std::uint64_t>> regs;
    std::vector<std::pair<Addr, std::int16_t>> pokes;
    std::vector<std::pair<Addr, unsigned>> dump_dram, dump_sp;
    bool dump_regs = false, want_stats = false, strict = false;
    bool trace = false, fast_forward = true;
    Cycles max_cycles = 100'000'000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::exit(usage());
            }
            return argv[++i];
        };
        if (arg == "--reg") {
            const std::string v = next();
            const auto eq = v.find('=');
            regs.emplace_back(std::stoul(v.substr(0, eq)),
                              parseNum(v.substr(eq + 1)));
        } else if (arg == "--dram") {
            const std::string v = next();
            const auto eq = v.find('=');
            pokes.emplace_back(parseNum(v.substr(0, eq)),
                               static_cast<std::int16_t>(std::stol(
                                   v.substr(eq + 1), nullptr, 0)));
        } else if (arg == "--dump-dram" || arg == "--dump-sp") {
            const std::string v = next();
            const auto comma = v.find(',');
            auto &list = arg == "--dump-dram" ? dump_dram : dump_sp;
            list.emplace_back(parseNum(v.substr(0, comma)),
                              static_cast<unsigned>(
                                  parseNum(v.substr(comma + 1))));
        } else if (arg == "--dump-regs") {
            dump_regs = true;
        } else if (arg == "--stats") {
            want_stats = true;
        } else if (arg == "--json-stats") {
            json_stats_path = next();
        } else if (arg == "--strict") {
            strict = true;
        } else if (arg == "--trace") {
            trace = true;
        } else if (arg == "--max-cycles") {
            max_cycles = parseNum(next());
        } else if (arg == "--no-fast-forward") {
            fast_forward = false;
        } else if (arg[0] == '-') {
            return usage();
        } else {
            source_path = arg;
        }
    }
    if (source_path.empty())
        return usage();

    std::ifstream in(source_path);
    if (!in) {
        std::fprintf(stderr, "vip-run: cannot open %s\n",
                     source_path.c_str());
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();

    // Assemble outside the facade so errors carry the source path.
    AssemblyError err;
    auto prog = assemble(ss.str(), &err);
    if (!err.message.empty()) {
        std::fprintf(stderr, "%s:%u: error: %s\n", source_path.c_str(),
                     err.line, err.message.c_str());
        return 1;
    }

    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = strict;
    cfg.fastForward = fast_forward;
    Simulation sim(cfg);
    for (const auto &[addr, val] : pokes)
        sim.pokeDram(addr, val);
    for (const auto &[r, v] : regs)
        sim.setReg(0, r, v);
    if (trace) {
        sim.trace(0, [](Cycles at, std::size_t pc,
                        const Instruction &inst) {
            std::printf("%8llu  %4zu: %s\n",
                        static_cast<unsigned long long>(at), pc,
                        disassemble(inst).c_str());
        });
    }
    sim.loadProgram(0, std::move(prog));

    const RunResult result = sim.run(max_cycles);
    std::printf("halted=%d cycles=%llu (%.3f us)\n",
                result.haltedCleanly,
                static_cast<unsigned long long>(result.cycles),
                static_cast<double>(result.cycles) * 0.8e-3);

    VipSystem &sys = sim.system();
    if (dump_regs) {
        for (unsigned r = 0; r < kNumScalarRegs; r += 4) {
            std::printf("r%-2u %16llx  r%-2u %16llx  r%-2u %16llx  "
                        "r%-2u %16llx\n",
                        r, (unsigned long long)sys.pe(0).reg(r), r + 1,
                        (unsigned long long)sys.pe(0).reg(r + 1), r + 2,
                        (unsigned long long)sys.pe(0).reg(r + 2), r + 3,
                        (unsigned long long)sys.pe(0).reg(r + 3));
        }
    }
    for (const auto &[addr, count] : dump_sp) {
        std::printf("sp[0x%llx]:", (unsigned long long)addr);
        for (unsigned k = 0; k < count; ++k) {
            std::printf(" %d", sys.pe(0).scratchpad().load<std::int16_t>(
                                   static_cast<SpAddr>(addr + 2 * k)));
        }
        std::printf("\n");
    }
    for (const auto &[addr, count] : dump_dram) {
        std::printf("dram[0x%llx]:", (unsigned long long)addr);
        for (const std::int16_t v : sim.peekDram(addr, count))
            std::printf(" %d", v);
        std::printf("\n");
    }
    if (want_stats)
        std::fputs(result.stats.c_str(), stdout);
    if (!json_stats_path.empty()) {
        // The "system" section is the simulated statistics tree and is
        // bit-identical run to run; the "host" section carries the
        // wall-clock figures, which are not.
        auto emit = [&](std::ostream &os) {
            char buf[32];
            os << "{\n  \"host\": {\n"
               << "    \"fastForwardedCycles\": "
               << result.fastForwardedCycles << ",\n";
            std::snprintf(buf, sizeof(buf), "%.17g", result.hostSeconds);
            os << "    \"hostSeconds\": " << buf << ",\n";
            std::snprintf(buf, sizeof(buf), "%.17g",
                          result.simCyclesPerHostSecond);
            os << "    \"simCyclesPerHostSecond\": " << buf << ",\n"
               << "    \"memRequestPoolHighWater\": "
               << result.memRequestPoolHighWater << ",\n"
               << "    \"peRequestAllocations\": [";
            for (std::size_t i = 0;
                 i < result.peRequestAllocations.size(); ++i) {
                os << (i ? ", " : "") << result.peRequestAllocations[i];
            }
            os << "]\n"
               << "  },\n  \"system\": ";
            sys.stats().dumpJsonValue(os, 1);
            os << "\n}\n";
        };
        if (json_stats_path == "-") {
            emit(std::cout);
        } else {
            std::ofstream os(json_stats_path);
            if (!os) {
                std::fprintf(stderr, "vip-run: cannot write %s\n",
                             json_stats_path.c_str());
                return 1;
            }
            emit(os);
        }
    }
    return 0;
}
