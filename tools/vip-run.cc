/**
 * @file
 * Command-line VIP runner: load an assembly program onto one simulated
 * PE, optionally stage DRAM contents, run to completion, and dump
 * registers, scratchpad, DRAM ranges, and statistics.
 *
 *   vip-run prog.s [options]
 *     --reg N=V            seed scalar register N (repeatable)
 *     --dram ADDR=V16      store a 16-bit value before running
 *                          (repeatable; ADDR/V accept 0x hex)
 *     --dump-dram A,N      print N int16 values at DRAM address A
 *     --dump-sp A,N        print N int16 scratchpad values
 *     --dump-regs          print the scalar register file
 *     --stats              dump the statistics tree
 *     --json-stats FILE    write the statistics tree as JSON (stable
 *                          key order; "-" writes to stdout), plus a
 *                          "host" section with wall-clock timing and
 *                          fast-forward figures
 *     --inject SPEC        run a fault-injection campaign; SPEC is a
 *                          comma-separated key=value list, e.g.
 *                          seed=7,dram-read=1e-7,retention=1e-6,
 *                          noc-drop=1e-8,noc-corrupt=1e-8,
 *                          sp-flip=1e-9,ecc=on  (see sim/fault.hh);
 *                          adds a "faults" section to the JSON
 *     --max-cycles N       simulation budget (default 100M)
 *     --no-fast-forward    tick every cycle instead of warping over
 *                          provably dead ones (same results, slower)
 *     --strict             panic on vector timing hazards
 *
 * On a recoverable failure (bad config, assembly error, deadlock) the
 * runner prints the error to stderr, writes {"error": {...}} to the
 * --json-stats target when one was given, and exits nonzero — it never
 * aborts for conditions the input can cause.
 *
 * Example — a dot product of two 8-element vectors staged at 0x1000
 * and 0x1100, result at 0x2000:
 *
 *   vip-run dot.s --dram 0x1000=3 ... --dump-dram 0x2000,1
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "sim/error.hh"
#include "sim/fault.hh"
#include "system/simulation.hh"

using namespace vip;

namespace {

std::uint64_t
parseNum(const std::string &s)
{
    return std::stoull(s, nullptr, 0);
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: vip-run <prog.s> [--reg N=V] [--dram A=V] "
                 "[--dump-dram A,N]\n"
                 "       [--dump-sp A,N] [--dump-regs] [--stats] "
                 "[--json-stats FILE]\n"
                 "       [--inject SPEC] [--max-cycles N] "
                 "[--no-fast-forward]\n"
                 "       [--strict] [--trace]\n");
    return 2;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Write @p body to the --json-stats target ("-" = stdout). */
bool
emitJson(const std::string &path, const std::string &body)
{
    if (path == "-") {
        std::cout << body;
        return true;
    }
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "vip-run: cannot write %s\n", path.c_str());
        return false;
    }
    os << body;
    return true;
}

/** {"error": {kind, message, detail}} for the --json-stats target. */
std::string
errorJson(const std::string &kind, const std::string &message,
          const std::string &detail)
{
    std::ostringstream os;
    os << "{\n  \"error\": {\n"
       << "    \"kind\": \"" << jsonEscape(kind) << "\",\n"
       << "    \"message\": \"" << jsonEscape(message) << "\",\n"
       << "    \"detail\": \"" << jsonEscape(detail) << "\"\n"
       << "  }\n}\n";
    return os.str();
}

struct Options
{
    std::string sourcePath;
    std::string jsonStatsPath;
    std::vector<std::pair<unsigned, std::uint64_t>> regs;
    std::vector<std::pair<Addr, std::int16_t>> pokes;
    std::vector<std::pair<Addr, unsigned>> dumpDram, dumpSp;
    bool dumpRegs = false, wantStats = false, strict = false;
    bool trace = false, fastForward = true;
    std::string injectSpec;
    Cycles maxCycles = 100'000'000;
};

int
run(const Options &opt)
{
    std::ifstream in(opt.sourcePath);
    if (!in) {
        std::fprintf(stderr, "vip-run: cannot open %s\n",
                     opt.sourcePath.c_str());
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();

    // Assemble outside the facade so errors carry the source path.
    AssemblyError err;
    auto prog = assemble(ss.str(), &err);
    if (!err.message.empty()) {
        std::fprintf(stderr, "%s:%u: error: %s\n",
                     opt.sourcePath.c_str(), err.line,
                     err.message.c_str());
        if (!opt.jsonStatsPath.empty()) {
            emitJson(opt.jsonStatsPath,
                     errorJson("assembly",
                               opt.sourcePath + ":" +
                                   std::to_string(err.line) + ": " +
                                   err.message,
                               ""));
        }
        return 1;
    }

    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = opt.strict;
    cfg.fastForward = opt.fastForward;
    if (!opt.injectSpec.empty())
        cfg.faults = FaultPlan::parse(opt.injectSpec);
    Simulation sim(cfg);
    for (const auto &[addr, val] : opt.pokes)
        sim.pokeDram(addr, val);
    for (const auto &[r, v] : opt.regs)
        sim.setReg(0, r, v);
    if (opt.trace) {
        sim.trace(0, [](Cycles at, std::size_t pc,
                        const Instruction &inst) {
            std::printf("%8llu  %4zu: %s\n",
                        static_cast<unsigned long long>(at), pc,
                        disassemble(inst).c_str());
        });
    }
    sim.loadProgram(0, std::move(prog));

    const RunResult result = sim.run(opt.maxCycles);
    std::printf("halted=%d cycles=%llu (%.3f us)\n",
                result.haltedCleanly,
                static_cast<unsigned long long>(result.cycles),
                static_cast<double>(result.cycles) * 0.8e-3);
    if (result.faultInjectionEnabled) {
        const FaultStats &f = result.faults;
        std::printf("faults: dram-flips=%llu retention=%llu "
                    "ecc-corrected=%llu ecc-detected=%llu "
                    "ecc-silent=%llu noc-dropped=%llu "
                    "noc-corrupted=%llu sp-flips=%llu\n",
                    (unsigned long long)f.dramBitFlips,
                    (unsigned long long)f.retentionErrors,
                    (unsigned long long)f.eccCorrected,
                    (unsigned long long)f.eccDetected,
                    (unsigned long long)f.eccSilent,
                    (unsigned long long)f.nocDropped,
                    (unsigned long long)f.nocCorrupted,
                    (unsigned long long)f.spBitFlips);
    }

    VipSystem &sys = sim.system();
    if (opt.dumpRegs) {
        for (unsigned r = 0; r < kNumScalarRegs; r += 4) {
            std::printf("r%-2u %16llx  r%-2u %16llx  r%-2u %16llx  "
                        "r%-2u %16llx\n",
                        r, (unsigned long long)sys.pe(0).reg(r), r + 1,
                        (unsigned long long)sys.pe(0).reg(r + 1), r + 2,
                        (unsigned long long)sys.pe(0).reg(r + 2), r + 3,
                        (unsigned long long)sys.pe(0).reg(r + 3));
        }
    }
    for (const auto &[addr, count] : opt.dumpSp) {
        std::printf("sp[0x%llx]:", (unsigned long long)addr);
        for (unsigned k = 0; k < count; ++k) {
            std::printf(" %d", sys.pe(0).scratchpad().load<std::int16_t>(
                                   static_cast<SpAddr>(addr + 2 * k)));
        }
        std::printf("\n");
    }
    for (const auto &[addr, count] : opt.dumpDram) {
        std::printf("dram[0x%llx]:", (unsigned long long)addr);
        for (const std::int16_t v : sim.peekDram(addr, count))
            std::printf(" %d", v);
        std::printf("\n");
    }
    if (opt.wantStats)
        std::fputs(result.stats.c_str(), stdout);
    if (!opt.jsonStatsPath.empty()) {
        // The "system" section is the simulated statistics tree and is
        // bit-identical run to run; the "host" section carries the
        // wall-clock figures, which are not. The "faults" section only
        // appears when a campaign ran, so uninjected goldens are
        // untouched.
        std::ostringstream os;
        char buf[32];
        os << "{\n  \"host\": {\n"
           << "    \"fastForwardedCycles\": "
           << result.fastForwardedCycles << ",\n";
        std::snprintf(buf, sizeof(buf), "%.17g", result.hostSeconds);
        os << "    \"hostSeconds\": " << buf << ",\n";
        std::snprintf(buf, sizeof(buf), "%.17g",
                      result.simCyclesPerHostSecond);
        os << "    \"simCyclesPerHostSecond\": " << buf << ",\n"
           << "    \"memRequestPoolHighWater\": "
           << result.memRequestPoolHighWater << ",\n"
           << "    \"peRequestAllocations\": [";
        for (std::size_t i = 0;
             i < result.peRequestAllocations.size(); ++i) {
            os << (i ? ", " : "") << result.peRequestAllocations[i];
        }
        os << "]\n  },\n";
        if (result.faultInjectionEnabled) {
            const FaultStats &f = result.faults;
            os << "  \"faults\": {\n"
               << "    \"plan\": \""
               << jsonEscape(sim.system().config().faults.toString())
               << "\",\n"
               << "    \"dramBitFlips\": " << f.dramBitFlips << ",\n"
               << "    \"retentionErrors\": " << f.retentionErrors
               << ",\n"
               << "    \"eccCorrected\": " << f.eccCorrected << ",\n"
               << "    \"eccDetected\": " << f.eccDetected << ",\n"
               << "    \"eccSilent\": " << f.eccSilent << ",\n"
               << "    \"nocDropped\": " << f.nocDropped << ",\n"
               << "    \"nocCorrupted\": " << f.nocCorrupted << ",\n"
               << "    \"nocRetransmits\": " << f.nocRetransmits
               << ",\n"
               << "    \"spBitFlips\": " << f.spBitFlips << "\n"
               << "  },\n";
        }
        os << "  \"system\": ";
        sys.stats().dumpJsonValue(os, 1);
        os << "\n}\n";
        if (!emitJson(opt.jsonStatsPath, os.str()))
            return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::exit(usage());
            }
            return argv[++i];
        };
        if (arg == "--reg") {
            const std::string v = next();
            const auto eq = v.find('=');
            opt.regs.emplace_back(std::stoul(v.substr(0, eq)),
                                  parseNum(v.substr(eq + 1)));
        } else if (arg == "--dram") {
            const std::string v = next();
            const auto eq = v.find('=');
            opt.pokes.emplace_back(parseNum(v.substr(0, eq)),
                                   static_cast<std::int16_t>(std::stol(
                                       v.substr(eq + 1), nullptr, 0)));
        } else if (arg == "--dump-dram" || arg == "--dump-sp") {
            const std::string v = next();
            const auto comma = v.find(',');
            auto &list = arg == "--dump-dram" ? opt.dumpDram : opt.dumpSp;
            list.emplace_back(parseNum(v.substr(0, comma)),
                              static_cast<unsigned>(
                                  parseNum(v.substr(comma + 1))));
        } else if (arg == "--dump-regs") {
            opt.dumpRegs = true;
        } else if (arg == "--stats") {
            opt.wantStats = true;
        } else if (arg == "--json-stats") {
            opt.jsonStatsPath = next();
        } else if (arg == "--inject") {
            opt.injectSpec = next();
        } else if (arg == "--strict") {
            opt.strict = true;
        } else if (arg == "--trace") {
            opt.trace = true;
        } else if (arg == "--max-cycles") {
            opt.maxCycles = parseNum(next());
        } else if (arg == "--no-fast-forward") {
            opt.fastForward = false;
        } else if (arg[0] == '-') {
            return usage();
        } else {
            opt.sourcePath = arg;
        }
    }
    if (opt.sourcePath.empty())
        return usage();

    try {
        return run(opt);
    } catch (const SimError &e) {
        std::fprintf(stderr, "vip-run: error: %s\n", e.what());
        if (!opt.jsonStatsPath.empty()) {
            emitJson(opt.jsonStatsPath,
                     errorJson(e.kind(), e.message(), e.detail()));
        }
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "vip-run: error: %s\n", e.what());
        if (!opt.jsonStatsPath.empty()) {
            emitJson(opt.jsonStatsPath,
                     errorJson("exception", e.what(), ""));
        }
        return 1;
    }
}
