/**
 * @file
 * Shared command-line parsing for the VIP executables.
 *
 * Every front end (vip-run, vip-serve, the table/figure bench mains)
 * grew its own copy of the same flag handling: `--jobs N`,
 * `--json-stats FILE`, `--no-fast-forward`, `--inject SPEC`. This
 * header is the single home for those flags — one parser, one piece
 * of --help text per flag, one error style — so a flag behaves
 * identically everywhere it is accepted.
 *
 * Usage: pick the flags a tool accepts with a `Flag` mask, call
 * consumeCommon() once per unrecognized argv element before the
 * tool's own flags, and splice commonHelp() into the usage message:
 *
 *   cli::CommonOptions common;
 *   for (int i = 1; i < argc; ++i) {
 *       if (cli::consumeCommon(argc, argv, i,
 *                              cli::kJobs | cli::kFastForward, common))
 *           continue;
 *       // tool-specific flags...
 *   }
 *
 * A malformed value (non-numeric --jobs, missing argument) prints
 * "<tool>: <problem>" to stderr and exits 2, matching the historical
 * behaviour of every main this replaces.
 */

#ifndef VIP_TOOLS_CLI_HH
#define VIP_TOOLS_CLI_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace vip::cli {

/** Which shared flags a tool accepts (or-able mask). */
enum Flag : unsigned
{
    kJobs = 1u << 0,         ///< --jobs N
    kJsonStats = 1u << 1,    ///< --json-stats FILE
    kFastForward = 1u << 2,  ///< --no-fast-forward
    kInject = 1u << 3,       ///< --inject SPEC
    kIslands = 1u << 4,      ///< --islands N
    kFastPath = 1u << 5,     ///< --no-fast-path
};

/** Values of the shared flags, pre-set to their defaults. */
struct CommonOptions
{
    unsigned jobs = 0;          ///< 0 = hardware concurrency
    std::string jsonStatsPath;  ///< empty = no JSON dump; "-" = stdout
    bool fastForward = true;    ///< false after --no-fast-forward
    std::string injectSpec;     ///< empty = no fault campaign
    unsigned islands = 1;       ///< 1 = serial tick loop
    bool fastPath = true;       ///< false after --no-fast-path
};

/** Parse "N" or "0xN"; exits 2 with @p tool's name on garbage. */
inline std::uint64_t
parseNum(const char *tool, const char *flag, const char *text)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "%s: %s: '%s' is not a number\n", tool,
                     flag, text);
        std::exit(2);
    }
    return v;
}

/**
 * If argv[i] is one of the shared flags enabled in @p flags, consume
 * it (advancing @p i past its value where it takes one), record it in
 * @p out, and return true. Exits 2 on a missing or malformed value.
 */
inline bool
consumeCommon(int argc, char **argv, int &i, unsigned flags,
              CommonOptions &out)
{
    const char *arg = argv[i];
    const auto value = [&](const char *flag) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                         flag);
            std::exit(2);
        }
        return argv[++i];
    };
    if ((flags & kJobs) && std::strcmp(arg, "--jobs") == 0) {
        out.jobs = static_cast<unsigned>(
            parseNum(argv[0], "--jobs", value("--jobs")));
        return true;
    }
    if ((flags & kJsonStats) && std::strcmp(arg, "--json-stats") == 0) {
        out.jsonStatsPath = value("--json-stats");
        return true;
    }
    if ((flags & kFastForward) &&
        std::strcmp(arg, "--no-fast-forward") == 0) {
        out.fastForward = false;
        return true;
    }
    if ((flags & kInject) && std::strcmp(arg, "--inject") == 0) {
        out.injectSpec = value("--inject");
        return true;
    }
    if ((flags & kFastPath) && std::strcmp(arg, "--no-fast-path") == 0) {
        out.fastPath = false;
        return true;
    }
    if ((flags & kIslands) && std::strcmp(arg, "--islands") == 0) {
        // Range/divisibility validation lives with the rest of config
        // validation (validateIslandCount, dotted-path ConfigError);
        // here we only require a number.
        out.islands = static_cast<unsigned>(
            parseNum(argv[0], "--islands", value("--islands")));
        return true;
    }
    return false;
}

/** One usage line ("[--jobs N] [--no-fast-forward]") for the mask. */
inline std::string
commonUsage(unsigned flags)
{
    std::string out;
    const auto add = [&out](const char *piece) {
        if (!out.empty())
            out += ' ';
        out += piece;
    };
    if (flags & kJobs)
        add("[--jobs N]");
    if (flags & kJsonStats)
        add("[--json-stats FILE]");
    if (flags & kInject)
        add("[--inject SPEC]");
    if (flags & kIslands)
        add("[--islands N]");
    if (flags & kFastForward)
        add("[--no-fast-forward]");
    if (flags & kFastPath)
        add("[--no-fast-path]");
    return out;
}

/** Aligned per-flag help lines for the mask, for --help output. */
inline std::string
commonHelp(unsigned flags)
{
    std::string out;
    if (flags & kJobs) {
        out += "  --jobs N            worker threads "
               "(0 = hardware concurrency)\n";
    }
    if (flags & kJsonStats) {
        out += "  --json-stats FILE   write statistics as JSON "
               "(\"-\" = stdout)\n";
    }
    if (flags & kInject) {
        out += "  --inject SPEC       fault campaign, e.g. "
               "seed=7,dram-read=1e-7,ecc=on\n";
    }
    if (flags & kIslands) {
        out += "  --islands N         shard the run across N host "
               "threads (must divide the\n"
               "                      NoC X dimension; 1 = serial, "
               "output is bit-identical)\n";
    }
    if (flags & kFastForward) {
        out += "  --no-fast-forward   tick every cycle instead of "
               "warping dead ones\n";
    }
    if (flags & kFastPath) {
        out += "  --no-fast-path      interpret every instruction "
               "instead of replaying\n"
               "                      decoded µops (output is "
               "bit-identical)\n";
    }
    return out;
}

} // namespace vip::cli

#endif // VIP_TOOLS_CLI_HH
