/**
 * @file
 * Regenerates Figure 5: achieved memory bandwidth and execution time
 * for (a) one full-HD BP-M iteration and (b) a VGG-16 convolution
 * workload under eight memory configurations derived from Table III —
 * open vs. closed page, 4x more/fewer ranks, 4x wider/narrower rows,
 * and refresh at 4x (default), 2x, and 1x rates.
 *
 * Bandwidths are per-vault measurements scaled to the 32-vault stack;
 * runtimes extrapolate from the default-configuration baseline by the
 * measured cycle ratio.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "common.hh"

using namespace vip;

namespace {

struct Knob
{
    const char *name;
    MemKnobs knobs;
};

const std::vector<Knob> &
knobList()
{
    static const std::vector<Knob> list = {
        {"open page", {}},
        {"closed page", {.closedPage = true}},
        {"narrow row", {.rowScale = -1}},
        {"wide row", {.rowScale = +1}},
        {"fewer ranks", {.rankScale = -1}},
        {"more ranks", {.rankScale = +1}},
        {"refresh 2x", {.refreshScale = 2}},
        {"refresh 1x", {.refreshScale = 4}},
    };
    return list;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchOptions(argc, argv, 0.3);
    const double frac = opts.frac;
    const auto &knobs = knobList();

    // Sixteen independent points (8 memory configs x 2 workloads):
    // sweep them all at once, then print by submission index.
    std::vector<std::function<SliceResult()>> points;
    for (const auto &k : knobs) {
        points.push_back(
            [&k] { return runBpTilePhase(60, 34, 16, 1, k.knobs); });
    }
    // c2_2: 128 -> 128 channels at 112x112 — mid-network, z-sharded.
    LayerDesc layer;
    layer.kind = LayerDesc::Kind::Conv;
    layer.name = "c2_2";
    layer.inChannels = 128;
    layer.outChannels = 128;
    layer.inHeight = 112;
    layer.inWidth = 112;
    for (const auto &k : knobs) {
        points.push_back([&k, &layer, frac] {
            return runConvShare(layer, 32, frac, k.knobs);
        });
    }
    const auto results = runSweep(points, opts.jobs);

    std::printf("=== Figure 5a: BP, full-HD iteration ===\n\n");
    std::printf("%-12s %14s %14s\n", "config", "bandwidth(GB/s)",
                "time(ms)");
    for (std::size_t i = 0; i < knobs.size(); ++i) {
        const SliceResult &r = results[i];
        std::printf("%-12s %14.1f %14.2f\n", knobs[i].name,
                    r.bandwidthGBs() * 32, r.ms() * 32);
    }

    std::printf("\n=== Figure 5b: VGG-16 convolution (c2_2 "
                "representative tile, scaled) ===\n\n");
    std::printf("%-12s %14s %14s\n", "config", "bandwidth(GB/s)",
                "vgg16(ms est)");
    // Anchor: the default config corresponds to the paper's
    // ~32 ms full network; other configs scale by cycle ratio.
    const double base_ms = results[knobs.size()].ms();
    for (std::size_t i = 0; i < knobs.size(); ++i) {
        const SliceResult &r = results[knobs.size() + i];
        const double vgg_est = 32.3 * r.ms() / base_ms;
        std::printf("%-12s %14.1f %14.2f\n", knobs[i].name,
                    r.bandwidthGBs() * 32, vgg_est);
    }

    std::printf("\npaper's qualitative findings to check against the "
                "numbers above:\n"
                "  - closed page hurts both workloads\n"
                "  - fewer ranks hurts both (less memory-level "
                "parallelism)\n"
                "  - slower refresh (1x) hurts BP much more than CNN\n"
                "  - BP prefers narrow rows; CNN prefers wide rows\n");
    return 0;
}
