/**
 * @file
 * google-benchmark micro-benchmarks of the simulator's own components:
 * assembler throughput, instruction encode/decode, DRAM vault access
 * patterns, torus traversal, PE simulation rate, and the reference
 * workload implementations. These track the cost of simulation itself,
 * not VIP's modeled performance.
 */

#include <benchmark/benchmark.h>

#include <sstream>

#include "isa/assembler.hh"
#include "isa/builder.hh"
#include "kernels/bp_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/runner.hh"
#include "mem/hmc.hh"
#include "noc/torus.hh"
#include "sim/rng.hh"
#include "tools/cli.hh"
#include "workloads/mrf.hh"
#include "workloads/nn.hh"

namespace vip {
namespace {

/** Set by --no-fast-path (consumed by main() before google-benchmark
 *  sees argv); every simulated-machine bench below applies it, so the
 *  same binary measures the interpreter and the µop replay. */
bool g_fast_path = true;

void
BM_AssembleBpFragment(benchmark::State &state)
{
    const std::string src = R"(
loop:
    ld.sram[16] r11, r7, r61
    ld.sram[16] r12, r8, r61
    ld.sram[16] r13, r9, r61
    v.v.add[16] r11, r11, r12
    v.v.add[16] r11, r11, r13
    m.v.add.min[16] r10, r15, r11
    st.sram[16] r10, r14, r61
    add.imm r7, r7, 32
    blt r7, r20, loop
    halt
)";
    for (auto _ : state) {
        auto prog = assemble(src);
        benchmark::DoNotOptimize(prog);
    }
}
BENCHMARK(BM_AssembleBpFragment);

void
BM_EncodeDecodeRoundTrip(benchmark::State &state)
{
    AsmBuilder b;
    for (int i = 0; i < 100; ++i) {
        b.movImm(1, i * 1024);
        b.vv(VecOp::Add, 2, 3, 4);
        b.mv(VecOp::Mul, RedOp::Add, 5, 6, 7);
    }
    b.halt();
    const auto prog = b.finish();
    for (auto _ : state) {
        auto words = encodeProgram(prog);
        auto back = decodeProgram(words);
        benchmark::DoNotOptimize(back);
    }
}
BENCHMARK(BM_EncodeDecodeRoundTrip);

void
BM_VaultSequentialReads(benchmark::State &state)
{
    MemConfig cfg;
    cfg.geom.vaults = 1;
    for (auto _ : state) {
        state.PauseTiming();
        HmcStack hmc(cfg);
        unsigned outstanding = 0;
        state.ResumeTiming();
        Cycles now = 0;
        for (unsigned i = 0; i < 256; ++i) {
            auto req = std::make_unique<MemRequest>();
            req->addr = i * 32;
            req->bytes = 32;
            req->issuedAt = now;
            req->onComplete = [&](MemRequest &) { --outstanding; };
            ++outstanding;
            hmc.enqueue(std::move(req));
            // Drain a little so the queue never fills.
            for (int t = 0; t < 8; ++t)
                hmc.tick(now++);
        }
        while (outstanding > 0)
            hmc.tick(now++);
        benchmark::DoNotOptimize(now);
    }
}
BENCHMARK(BM_VaultSequentialReads);

void
BM_TorusAllToOne(benchmark::State &state)
{
    for (auto _ : state) {
        TorusNoc noc(8, 4);
        unsigned delivered = 0;
        Cycles now = 0;
        for (unsigned n = 1; n < 32; ++n) {
            Packet p;
            p.src = n;
            p.dst = 0;
            p.payloadBytes = 32;
            p.onArrive = [&](Packet &) { ++delivered; };
            noc.send(std::move(p), now);
        }
        while (delivered < 31)
            noc.tick(now++);
        benchmark::DoNotOptimize(now);
    }
}
BENCHMARK(BM_TorusAllToOne);

void
BM_PeScalarLoop(benchmark::State &state)
{
    // Simulation rate of a PE running a tight scalar loop — the
    // decoded-µop fast path's headline bench (run with --no-fast-path
    // for the interpreter baseline; cycles are bit-identical).
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg = makeSystemConfig(1, 1);
        cfg.fastPath = g_fast_path;
        VipSystem sys(cfg);
        AsmBuilder b;
        b.movImm(1, 0);
        b.movImm(2, 10000);
        const auto loop = b.newLabel();
        b.bind(loop);
        b.addImm(1, 1, 1);
        b.branch(BranchCond::Lt, 1, 2, loop);
        b.halt();
        sys.pe(0).loadProgram(b.finish());
        state.ResumeTiming();
        benchmark::DoNotOptimize(sys.run());
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_PeScalarLoop);

void
BM_SimulatedBpSweep(benchmark::State &state)
{
    // End-to-end simulation cost of one generated BP sweep.
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg = makeSystemConfig(1, 4);
        cfg.fastPath = g_fast_path;
        VipSystem sys(cfg);
        MrfDramLayout layout(sys.vaultBase(0), 32, 16, 8);
        for (unsigned pe = 0; pe < 4; ++pe) {
            sys.pe(pe).loadProgram(genBpSweep(
                layout, BpVariant{},
                BpSweepJob{SweepDir::Right, pe * 4,
                           (pe + 1) * 4}));
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize(sys.run());
    }
}
BENCHMARK(BM_SimulatedBpSweep);

void
BM_FastForwardStreamCopy(benchmark::State &state)
{
    // Memory-bound tile: one PE copies DRAM through the scratchpad
    // with a fence per chunk, so it spends most cycles stalled on the
    // round trip. Arg(1) warps over those dead cycles, Arg(0) ticks
    // through them; the machines are cycle-identical, so the runtime
    // gap is the event-horizon fast-forward win. `skip_ratio` reports
    // the fraction of simulated cycles that were warped over.
    const bool ff = state.range(0) != 0;
    Cycles simulated = 0;
    Cycles skipped = 0;
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg = makeSystemConfig(1, 1);
        cfg.fastForward = ff;
        cfg.fastPath = g_fast_path;
        VipSystem sys(cfg);
        AsmBuilder b;
        const Addr src = sys.vaultBase(0);
        const Addr dst = src + (8ull << 20);
        b.movImm(1, 0);
        b.movImm(2, 64);     // chunks to copy
        b.movImm(3, static_cast<std::int64_t>(src));
        b.movImm(4, static_cast<std::int64_t>(dst));
        b.movImm(5, 1024);   // chunk stride (bytes)
        b.movImm(6, 512);    // elements per chunk
        b.movImm(7, 0);      // scratchpad buffer
        const auto loop = b.newLabel();
        b.bind(loop);
        b.ldSram(7, 3, 6);
        b.stSram(7, 4, 6);
        b.memfence();        // serialize: expose the full DRAM latency
        b.scalar(ScalarOp::Add, 3, 3, 5);
        b.scalar(ScalarOp::Add, 4, 4, 5);
        b.addImm(1, 1, 1);
        b.branch(BranchCond::Lt, 1, 2, loop);
        b.halt();
        sys.pe(0).loadProgram(b.finish());
        state.ResumeTiming();
        simulated += sys.run();
        skipped += sys.fastForwardStats().skippedCycles;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(simulated));
    state.counters["skip_ratio"] =
        simulated ? static_cast<double>(skipped) /
                        static_cast<double>(simulated)
                  : 0.0;
}
BENCHMARK(BM_FastForwardStreamCopy)->Arg(0)->Arg(1);

void
BM_IslandStreamCopy(benchmark::State &state)
{
    // Host-parallel speedup probe: 16 vaults (a 4x4 torus), one PE
    // each, every PE streaming a copy inside its own vault. All
    // traffic is island-local, so Arg = island count just shards the
    // same machine across host threads. Simulated cycles are
    // bit-identical for every Arg; the wall-clock gap between Arg(1)
    // and Arg(4) is the island win this bench tracks.
    const unsigned islands = static_cast<unsigned>(state.range(0));
    Cycles simulated = 0;
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg = makeSystemConfig(16, 1);
        cfg.islands = islands;
        cfg.fastPath = g_fast_path;
        VipSystem sys(cfg);
        for (unsigned v = 0; v < 16; ++v) {
            AsmBuilder b;
            const Addr src = sys.vaultBase(v);
            const Addr dst = src + (8ull << 20);
            b.movImm(1, 0);
            b.movImm(2, 64);     // chunks to copy
            b.movImm(3, static_cast<std::int64_t>(src));
            b.movImm(4, static_cast<std::int64_t>(dst));
            b.movImm(5, 1024);   // chunk stride (bytes)
            b.movImm(6, 512);    // elements per chunk
            b.movImm(7, 0);      // scratchpad buffer
            const auto loop = b.newLabel();
            b.bind(loop);
            b.ldSram(7, 3, 6);
            b.stSram(7, 4, 6);
            b.scalar(ScalarOp::Add, 3, 3, 5);
            b.scalar(ScalarOp::Add, 4, 4, 5);
            b.addImm(1, 1, 1);
            b.branch(BranchCond::Lt, 1, 2, loop);
            b.memfence();
            b.halt();
            sys.pe(v).loadProgram(b.finish());
        }
        state.ResumeTiming();
        simulated += sys.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(simulated));
}
BENCHMARK(BM_IslandStreamCopy)->Arg(1)->Arg(2)->Arg(4);

void
BM_ReferenceBpIteration(benchmark::State &state)
{
    Rng rng(3);
    MrfProblem p;
    p.width = 64;
    p.height = 32;
    p.labels = 16;
    p.smoothCost = truncatedLinearSmoothness(16, 3, 12);
    p.dataCost.resize(64ull * 32 * 16);
    for (auto &c : p.dataCost)
        c = static_cast<Fx16>(rng.nextBelow(25));
    BpState bp(p);
    for (auto _ : state) {
        bp.iterate();
        benchmark::DoNotOptimize(bp.msgAt(FromLeft, 1, 1));
    }
    state.SetItemsProcessed(state.iterations() * 4 * 64 * 32);
}
BENCHMARK(BM_ReferenceBpIteration);

void
BM_ReferenceConvLayer(benchmark::State &state)
{
    Rng rng(4);
    FeatureMap in(16, 28, 28);
    for (auto &v : in.data)
        v = static_cast<Fx16>(rng.nextRange(-10, 10));
    const auto filt = randomWeights(32ull * 16 * 9, rng, 3);
    const auto bias = randomWeights(32, rng, 10);
    for (auto _ : state) {
        auto out = convLayer(in, filt, bias, 32, 3);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * 32ull * 28 * 28 * 16 *
                            9);
}
BENCHMARK(BM_ReferenceConvLayer);

} // namespace
} // namespace vip

int
main(int argc, char **argv)
{
    // Peel off the shared simulator flags before google-benchmark
    // parses argv (it rejects flags it doesn't know).
    vip::cli::CommonOptions common;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (vip::cli::consumeCommon(argc, argv, i, vip::cli::kFastPath,
                                    common))
            continue;
        argv[kept++] = argv[i];
    }
    argc = kept;
    argv[argc] = nullptr;
    vip::g_fast_path = common.fastPath;

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
