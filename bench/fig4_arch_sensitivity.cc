/**
 * @file
 * Regenerates Figure 4: BP-M message updates over a 64x32 tile (one
 * vault, four PEs) under the four architectural configurations —
 * scratchpad or emulated vector-register file, with or without the
 * horizontal reduction unit. The register-file emulation follows the
 * paper's maximally favorable setup: sixteen 256 B registers, eight
 * 32 B vectors packed per register, one contiguous 256 B load per
 * eight updates, and per-update unpack/repack copies at dN/we cycles.
 *
 * (The paper sweeps the vertical direction over a 64x32 tile laid out
 * so eight consecutive message vectors load contiguously; we sweep the
 * geometrically identical transposed tile along its contiguous axis.)
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "common.hh"

using namespace vip;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchOptions(argc, argv);
    const unsigned tile_w = 64, tile_h = 32, labels = 16;

    struct Config
    {
        const char *name;
        bool reduction;
        bool registerFile;
    };
    const Config configs[4] = {
        {"SP+R", true, false},
        {"SP-R", false, false},
        {"RF+R", true, true},
        {"RF-R", false, true},
    };

    std::printf("=== Figure 4: BP-M updates, 64x32 tile, %u labels "
                "===\n\n", labels);
    std::printf("%-6s %12s %12s %10s\n", "config", "runtime(ms)",
                "cycles", "vs SP+R");

    // The four variants are independent simulations: sweep them in
    // parallel and print in submission order.
    std::vector<std::function<SliceResult()>> points;
    for (const Config &c : configs) {
        points.push_back([&, c] {
            return runBpSweepVariant(tile_w, tile_h, labels,
                                     c.reduction, c.registerFile);
        });
    }
    const auto results = runSweep(points, opts.jobs);

    const double base_ms = results[0].ms();
    double ms_of[4] = {};
    for (unsigned i = 0; i < 4; ++i) {
        const SliceResult &r = results[i];
        ms_of[i] = r.ms();
        std::printf("%-6s %12.4f %12llu %9.2fx\n", configs[i].name,
                    r.ms(),
                    static_cast<unsigned long long>(r.cycles),
                    r.ms() / base_ms);
    }

    std::printf("\npaper's qualitative findings:\n");
    std::printf("  reduction unit helps:     SP+R < SP-R: %s, "
                "RF+R < RF-R: %s\n",
                ms_of[0] < ms_of[1] ? "yes" : "NO",
                ms_of[2] < ms_of[3] ? "yes" : "NO");
    std::printf("  scratchpad beats regfile: SP+R < RF+R: %s, "
                "SP-R < RF-R: %s\n",
                ms_of[0] < ms_of[2] ? "yes" : "NO",
                ms_of[1] < ms_of[3] ? "yes" : "NO");
    return 0;
}
