#include "common.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "isa/builder.hh"
#include "kernels/bp_kernel.hh"
#include "kernels/conv_kernel.hh"
#include "kernels/fc_kernel.hh"
#include "kernels/hier_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/pool_kernel.hh"
#include "kernels/runner.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/sweep.hh"
#include "tools/cli.hh"

namespace vip {

namespace {

/** Set by --no-fast-forward; read by every run* helper below. */
bool g_fast_forward = true;

/** Set by --no-fast-path; read by every run* helper below. */
bool g_fast_path = true;

/** Set by --islands; clamped per machine shape via islandsFor(). */
unsigned g_islands = 1;

/**
 * Island count a bench machine actually runs with: the largest count
 * dividing both the request and the NoC X dimension. Single-vault
 * helpers (nocX == 1) stay serial no matter what --islands asks for;
 * the 32-vault machine (nocX == 8) shards for --islands 2/4/8.
 */
unsigned
islandsFor(unsigned noc_x)
{
    return std::gcd(g_islands, noc_x);
}

} // namespace

BenchOptions
parseBenchOptions(int argc, char **argv, double default_frac)
{
    constexpr unsigned kFlags = cli::kJobs | cli::kFastForward |
                                cli::kIslands | cli::kFastPath;
    BenchOptions opts;
    opts.frac = default_frac;
    cli::CommonOptions common;
    for (int i = 1; i < argc; ++i) {
        if (cli::consumeCommon(argc, argv, i, kFlags, common))
            continue;
        const char *arg = argv[i];
        if (arg[0] != '-' && default_frac > 0) {
            opts.frac = std::atof(arg);
        } else {
            std::fprintf(stderr, "usage: %s %s%s\n%s", argv[0],
                         default_frac > 0 ? "[FRAC] " : "",
                         cli::commonUsage(kFlags).c_str(),
                         cli::commonHelp(kFlags).c_str());
            std::exit(2);
        }
    }
    opts.jobs = common.jobs;
    opts.fastForward = common.fastForward;
    opts.fastPath = common.fastPath;
    opts.islands = common.islands;
    g_fast_forward = common.fastForward;
    g_fast_path = common.fastPath;
    g_islands = common.islands;
    bool oversubscribed = false;
    const unsigned budget =
        hostThreadBudget(opts.jobs, opts.islands, &oversubscribed);
    if (oversubscribed) {
        std::fprintf(stderr,
                     "%s: warning: --jobs x --islands wants %u host "
                     "threads but the host has %u; timings will show "
                     "contention, not speedup\n",
                     argv[0], budget, SweepEngine::hardwareJobs());
    }
    return opts;
}

std::vector<SliceResult>
runSweep(const std::vector<std::function<SliceResult()>> &points,
         unsigned jobs)
{
    SweepEngine engine(jobs);
    const auto outcomes = engine.runResilient<SliceResult>(points);
    std::vector<SliceResult> results;
    results.reserve(outcomes.size());
    unsigned failed = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto &o = outcomes[i];
        if (!o.ok) {
            ++failed;
            std::fprintf(stderr,
                         "warning: sweep point %zu failed (%s): %s\n",
                         i, o.failure.kind.c_str(),
                         o.failure.message.c_str());
        }
        results.push_back(o.result);
    }
    if (failed > 0) {
        std::fprintf(stderr,
                     "warning: %u of %zu sweep points failed; their "
                     "rows are zeroed below\n",
                     failed, outcomes.size());
    }
    return results;
}

void
applyKnobs(MemConfig &cfg, const MemKnobs &knobs)
{
    if (knobs.closedPage)
        cfg.pagePolicy = PagePolicy::Closed;
    if (knobs.rankScale > 0)
        cfg.geom.scaleBanks(true);
    else if (knobs.rankScale < 0)
        cfg.geom.scaleBanks(false);
    if (knobs.rowScale > 0)
        cfg.geom.scaleRowWidth(true);
    else if (knobs.rowScale < 0)
        cfg.geom.scaleRowWidth(false);
    if (knobs.refreshScale > 1)
        cfg.timing.scaleRefresh(knobs.refreshScale);
}

namespace {

SliceResult
collect(const VipSystem &sys, Cycles cycles, std::uint64_t work)
{
    SliceResult r;
    r.cycles = cycles;
    r.vectorOps = sys.totalVectorOps();
    r.dramBytes = sys.hmc().totalBytesMoved();
    r.workItems = work;
    return r;
}

} // namespace

SliceResult
runBpTilePhase(unsigned tile_w, unsigned tile_h, unsigned labels,
               unsigned iterations, const MemKnobs &knobs)
{
    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.fastForward = g_fast_forward;
    cfg.fastPath = g_fast_path;
    cfg.islands = islandsFor(cfg.nocX);
    applyKnobs(cfg.mem, knobs);
    Simulation sim(cfg);

    MrfDramLayout layout(sim.vaultBase(), tile_w, tile_h, labels);

    // Random data costs: timing is data-independent, but the messages
    // exercise realistic value ranges.
    Rng rng(1);
    MrfProblem prob;
    prob.width = tile_w;
    prob.height = tile_h;
    prob.labels = labels;
    prob.smoothCost = truncatedLinearSmoothness(labels, 3, 12);
    prob.dataCost.resize(static_cast<std::size_t>(tile_w) * tile_h *
                         labels);
    for (auto &c : prob.dataCost)
        c = static_cast<Fx16>(rng.nextBelow(25));
    layout.upload(prob, sim.system().dram());

    const Addr flag_base = layout.end() + 64;
    const unsigned num_pes = 4;
    for (unsigned pe = 0; pe < num_pes; ++pe) {
        auto slice = [&](unsigned lanes) {
            const unsigned per = (lanes + num_pes - 1) / num_pes;
            const unsigned begin = std::min(lanes, pe * per);
            return std::make_pair(begin, std::min(lanes, begin + per));
        };
        const auto [hb, he] = slice(tile_h);
        const auto [vb, ve] = slice(tile_w);
        BpSweepJob jobs[4] = {{SweepDir::Right, hb, he},
                              {SweepDir::Left, hb, he},
                              {SweepDir::Down, vb, ve},
                              {SweepDir::Up, vb, ve}};
        sim.loadProgram(pe, genBpIterations(layout, BpVariant{}, jobs,
                                            iterations, flag_base, pe,
                                            num_pes));
    }
    const Cycles cycles = sim.run().cycles;
    return collect(sim.system(), cycles,
                   4ull * tile_w * tile_h * iterations);
}

SliceResult
runBpSweepVariant(unsigned tile_w, unsigned tile_h, unsigned labels,
                  bool reduction, bool register_file)
{
    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.fastForward = g_fast_forward;
    cfg.fastPath = g_fast_path;
    cfg.islands = islandsFor(cfg.nocX);
    Simulation sim(cfg);
    MrfDramLayout layout(sim.vaultBase(), tile_w, tile_h, labels);

    const unsigned num_pes = 4;
    BpVariant variant;
    variant.reduction = reduction;
    variant.registerFile = register_file;
    variant.normalize = false;  // Fig. 4 compares raw update costs
    for (unsigned pe = 0; pe < num_pes; ++pe) {
        const unsigned per = (tile_h + num_pes - 1) / num_pes;
        const unsigned begin = std::min(tile_h, pe * per);
        const unsigned end = std::min(tile_h, begin + per);
        if (begin == end)
            continue;
        sim.loadProgram(pe, genBpSweep(
            layout, variant, BpSweepJob{SweepDir::Right, begin, end}));
    }
    const Cycles cycles = sim.run().cycles;
    return collect(sim.system(), cycles,
                   static_cast<std::uint64_t>(tile_w - 1) * tile_h);
}

SliceResult
runConvShare(const LayerDesc &layer, unsigned vaults_active,
             double row_fraction, const MemKnobs &knobs)
{
    vip_assert(layer.kind == LayerDesc::Kind::Conv, "not a conv layer");
    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.fastForward = g_fast_forward;
    cfg.fastPath = g_fast_path;
    cfg.islands = islandsFor(cfg.nocX);
    applyKnobs(cfg.mem, knobs);

    const unsigned in_c = layer.inChannels;
    const unsigned out_c = layer.outChannels;
    const unsigned shards = (in_c + 63) / 64;
    vip_assert(in_c % shards == 0, "channel count not shardable");
    const unsigned zc = in_c / shards;
    vip_assert(vaults_active % shards == 0,
               "shards must divide the active vaults");
    const unsigned xy_tiles = vaults_active / shards;

    // Factor the X-Y tile grid. Favor wide tiles: the kernel's steady
    // state runs along a row, so row-boundary ramp costs amortize over
    // the tile width.
    unsigned tx = 1, ty = 1;
    while (tx * ty < xy_tiles) {
        if (ty <= tx)
            ty *= 2;
        else
            tx *= 2;
    }
    vip_assert(layer.inWidth % tx == 0 && layer.inHeight % ty == 0,
               "tile grid does not divide the layer");
    const unsigned tile_w = layer.inWidth / tx;
    const unsigned tile_h = layer.inHeight / ty;

    const unsigned F = std::min(convFiltersResident(zc), out_c);
    vip_assert(out_c % F == 0, "filter groups must divide out channels");
    const unsigned groups = out_c / F;

    // Rows per PE at this fraction (>= 1).
    const unsigned pes = 4;
    const unsigned rows_per_pe = std::max(
        1u, static_cast<unsigned>(tile_h * row_fraction / pes));

    Simulation sim(cfg);
    const Addr base = sim.vaultBase();
    // Column-major placement: each window column is one contiguous
    // transfer (the inter-layer data placement of Sec. IV-B).
    FmapDramLayout in_lay(base, zc, tile_h, tile_w, 1, true);
    FmapDramLayout out_lay(in_lay.end() + 4096, out_c, tile_h, tile_w,
                           1, true);
    // Filter blobs for every group, packed back to back.
    const std::uint64_t blob_elems =
        static_cast<std::uint64_t>(F) * 3 * 3 * zc;
    const Addr filt_base = out_lay.end() + 4096;
    const Addr bias_base = filt_base + groups * blob_elems * 2 + 4096;

    Cycles total_cycles = 0;
    std::uint64_t macs = 0;

    for (unsigned pe = 0; pe < pes; ++pe) {
        ConvJob job;
        job.in = &in_lay;
        job.out = &out_lay;
        job.filterBlob = filt_base;
        job.biasBlob = bias_base;
        job.zShard = zc;
        job.filters = F;
        job.filterOffset = 0;
        job.groups = groups;
        job.rowBegin = pe * rows_per_pe;
        job.rowEnd = (pe + 1) * rows_per_pe;
        job.width = tile_w;
        job.finalize = shards == 1;
        sim.loadProgram(pe, genConvPass(job));
    }
    total_cycles = sim.run().cycles;
    macs = static_cast<std::uint64_t>(groups) * F * pes * rows_per_pe *
           tile_w * 9 * zc;

    // Shard accumulation: this vault combines its 1/shards slice of
    // the tile's rows across all shard partials.
    if (shards > 1) {
        const unsigned acc_rows = std::max(
            1u, static_cast<unsigned>(tile_h * row_fraction / shards));
        ConvAccumJob acc;
        std::vector<const FmapDramLayout *> parts(shards, &out_lay);
        acc.partials = parts;  // identical layouts stand in for the
                               // remote shards' partial maps
        acc.out = &out_lay;
        acc.biasRowBlob = bias_base + 4096;
        acc.rowBegin = 0;
        acc.rowEnd = acc_rows;
        acc.chunkElems = out_c;
        acc.chunksPerRow = tile_w;
        sim.loadProgram(0, genConvAccum(acc));
        total_cycles = sim.run().cycles;
    }

    return collect(sim.system(), total_cycles, macs);
}

SliceResult
runPoolShare(const LayerDesc &layer, unsigned vaults_active,
             double row_fraction, const MemKnobs &knobs)
{
    vip_assert(layer.kind == LayerDesc::Kind::Pool, "not a pool layer");
    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.fastForward = g_fast_forward;
    cfg.fastPath = g_fast_path;
    cfg.islands = islandsFor(cfg.nocX);
    applyKnobs(cfg.mem, knobs);
    Simulation sim(cfg);

    const unsigned C = layer.inChannels;
    const unsigned out_h = layer.outHeight();
    const unsigned out_w = layer.outWidth();
    // Simulate a representative strip: the vault's row share.
    const unsigned rows_total = std::max(
        1u, static_cast<unsigned>(out_h * row_fraction *
                                  (out_h >= vaults_active
                                       ? 1.0 / vaults_active
                                       : 1.0)));
    const unsigned pes = 4;
    const unsigned rows_per_pe = std::max(1u, rows_total / pes);

    FmapDramLayout in_lay(sim.vaultBase(), C, 2 * pes * rows_per_pe,
                          layer.inWidth, 0);
    FmapDramLayout out_lay(in_lay.end() + 4096, C, pes * rows_per_pe,
                           out_w, 0);
    for (unsigned pe = 0; pe < pes; ++pe) {
        PoolJob job;
        job.in = &in_lay;
        job.out = &out_lay;
        job.rowBegin = pe * rows_per_pe;
        job.rowEnd = (pe + 1) * rows_per_pe;
        job.width = out_w;
        job.chunk = std::min(C, 256u);
        sim.loadProgram(pe, genPool(job));
    }
    const Cycles cycles = sim.run().cycles;
    return collect(sim.system(), cycles,
                   static_cast<std::uint64_t>(pes) * rows_per_pe * out_w *
                       C * 4);
}

SliceResult
runFcLayer(unsigned inputs, unsigned outputs, double row_fraction,
           const MemKnobs &knobs)
{
    SystemConfig cfg = makeSystemConfig(32, 4);
    cfg.fastForward = g_fast_forward;
    cfg.fastPath = g_fast_path;
    cfg.islands = islandsFor(cfg.nocX);
    applyKnobs(cfg.mem, knobs);
    Simulation sim(cfg);
    VipSystem &sys = sim.system();

    const unsigned vaults = 32, pes_per_vault = 4;
    const unsigned seg = inputs / (vaults * pes_per_vault);
    vip_assert(seg > 0 && inputs % (vaults * pes_per_vault) == 0,
               "input length must split across 128 PEs");

    unsigned out_block = 64;
    while (outputs % out_block)
        out_block /= 2;
    vip_assert(out_block >= 8, "outputs not block-alignable");

    unsigned rows = static_cast<unsigned>(outputs * row_fraction);
    rows = std::max(out_block, rows - rows % out_block);

    // Per-vault local regions: weight tiles, the partial arrays, and
    // (in vault 0) the input, bias, and final outputs.
    const Addr in_addr = sys.vaultBase(0);
    const Addr bias_addr = in_addr + 2ull * inputs + 4096;
    const Addr out_addr = bias_addr + 2ull * outputs + 4096;
    const std::uint64_t local_off = 1ull << 22;  // 4 MiB into each vault
    const std::uint64_t part_off = local_off / 2;
    const std::uint64_t part_stride = 2ull * outputs + 256;

    std::uint64_t macs = 0;
    for (unsigned v = 0; v < vaults; ++v) {
        for (unsigned p = 0; p < pes_per_vault; ++p) {
            FcPartialJob job;
            // Weight tile [outputs x seg] resident in the local vault.
            job.weightBase = sys.vaultBase(v) + local_off +
                             p * (2ull * outputs * seg + 256);
            job.inputBase = in_addr +
                            2ull * seg * (v * pes_per_vault + p);
            job.outBase = sys.vaultBase(v) + part_off + p * part_stride;
            job.inputs = seg;  // local tile row stride
            job.segOffset = 0;
            job.segLen = seg;
            job.rowBegin = 0;
            job.rowEnd = rows;
            job.outBlock = out_block;
            sim.loadProgram(v * pes_per_vault + p, genFcPartial(job));
            macs += static_cast<std::uint64_t>(rows) * seg;
        }
    }
    Cycles cycles = sim.run().cycles;

    // Accumulation on the left-column vaults' PEs.
    unsigned acc_pes = 32;
    while (rows % acc_pes)
        acc_pes /= 2;
    const unsigned chunk_total = rows / acc_pes;
    unsigned chunk = chunk_total;
    while (chunk > 512)
        chunk /= 2;
    if (chunk_total % chunk)
        chunk = chunk_total;

    for (unsigned a = 0; a < acc_pes; ++a) {
        FcAccumJob acc;
        acc.partialBase0 = sys.vaultBase(0) + part_off;
        acc.strideOuter = cfg.mem.geom.bytesPerVault();
        acc.countOuter = vaults;
        acc.strideInner = part_stride;
        acc.countInner = pes_per_vault;
        acc.outBase = out_addr;
        acc.biasBase = bias_addr;
        acc.outBegin = a * chunk_total;
        acc.outEnd = (a + 1) * chunk_total;
        acc.chunk = chunk;
        // Left-column vaults: one per torus row -> vaults 0, 8, 16, 24.
        const unsigned vault = (a % 8) * 4 / 8 * 8 + (a / 8) * 8 % 32;
        const unsigned pe = (vault % 32) * pes_per_vault + (a % 4);
        sim.loadProgram(pe % sys.numPes(), genFcAccum(acc));
    }
    cycles = sim.run().cycles;

    return collect(sys, cycles, macs);
}

SliceResult
runConstructPhase(unsigned fine_w, unsigned fine_h, unsigned labels,
                  unsigned coarse_rows)
{
    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.fastForward = g_fast_forward;
    cfg.fastPath = g_fast_path;
    cfg.islands = islandsFor(cfg.nocX);
    Simulation sim(cfg);
    MrfDramLayout fine(sim.vaultBase(), fine_w, fine_h, labels);
    MrfDramLayout coarse(fine.end() + 64, fine_w / 2, fine_h / 2,
                         labels);
    const unsigned pes = 4;
    const unsigned per = std::max(1u, coarse_rows / pes);
    for (unsigned pe = 0; pe < pes; ++pe) {
        ConstructJob job;
        job.fine = &fine;
        job.coarse = &coarse;
        job.rowBegin = pe * per;
        job.rowEnd = (pe + 1) * per;
        sim.loadProgram(pe, genConstruct(job));
    }
    const Cycles cycles = sim.run().cycles;
    return collect(sim.system(), cycles,
                   static_cast<std::uint64_t>(pes) * per * (fine_w / 2));
}

SliceResult
runCopyPhase(unsigned fine_w, unsigned fine_h, unsigned labels,
             unsigned fine_rows)
{
    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.fastForward = g_fast_forward;
    cfg.fastPath = g_fast_path;
    cfg.islands = islandsFor(cfg.nocX);
    Simulation sim(cfg);
    MrfDramLayout fine(sim.vaultBase(), fine_w, fine_h, labels);
    MrfDramLayout coarse(fine.end() + 64, fine_w / 2, fine_h / 2,
                         labels);
    const unsigned pes = 4;
    const unsigned per = std::max(2u, fine_rows / pes) & ~1u;
    for (unsigned pe = 0; pe < pes; ++pe) {
        CopyJob job;
        job.coarse = &coarse;
        job.fine = &fine;
        job.rowBegin = pe * per;
        job.rowEnd = (pe + 1) * per;
        sim.loadProgram(pe, genCopyMessages(job));
    }
    const Cycles cycles = sim.run().cycles;
    return collect(sim.system(), cycles,
                   static_cast<std::uint64_t>(pes) * per * fine_w);
}

SliceResult
runStreamCopy(std::uint64_t bytes_per_pe, const MemKnobs &knobs)
{
    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.fastForward = g_fast_forward;
    cfg.fastPath = g_fast_path;
    cfg.islands = islandsFor(cfg.nocX);
    applyKnobs(cfg.mem, knobs);
    Simulation sim(cfg);

    const std::uint64_t chunk = 1024;  // bytes per ld/st pair
    const std::uint64_t iters = bytes_per_pe / (2 * chunk);
    vip_assert(iters > 0, "copy too small");

    for (unsigned pe = 0; pe < 4; ++pe) {
        AsmBuilder b;
        const Addr src = sim.vaultBase() + pe * (16ull << 20);
        const Addr dst = src + (8ull << 20);
        b.movImm(1, 0);                       // r1 = loop counter
        b.movImm(2, static_cast<std::int64_t>(iters));
        b.movImm(3, static_cast<std::int64_t>(src));
        b.movImm(4, static_cast<std::int64_t>(dst));
        b.movImm(5, static_cast<std::int64_t>(chunk));   // stride
        b.movImm(6, static_cast<std::int64_t>(chunk / 2)); // elems
        b.movImm(7, 0);                       // sp buffer A
        b.movImm(8, 2048);                    // sp buffer B
        const auto loop = b.newLabel();
        b.bind(loop);
        // Double-buffered streaming copy.
        b.ldSram(7, 3, 6);
        b.stSram(8, 4, 6);
        b.scalar(ScalarOp::Add, 3, 3, 5);
        b.scalar(ScalarOp::Add, 4, 4, 5);
        // Swap buffers.
        b.scalar(ScalarOp::Xor, 7, 7, 8);
        b.scalar(ScalarOp::Xor, 8, 8, 7);
        b.scalar(ScalarOp::Xor, 7, 7, 8);
        b.addImm(1, 1, 1);
        b.branch(BranchCond::Lt, 1, 2, loop);
        b.memfence();
        b.halt();
        sim.loadProgram(pe, b.finish());
    }
    const Cycles cycles = sim.run().cycles;
    return collect(sim.system(), cycles, 4 * bytes_per_pe);
}

} // namespace vip
