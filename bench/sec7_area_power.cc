/**
 * @file
 * Regenerates Sec. VII (RTL synthesis): per-PE area breakdown and
 * activity-driven power for the BP and CNN kernels, scaled to the
 * 128-PE array, plus the HMC power estimates the paper quotes.
 */

#include <cstdio>

#include "common.hh"
#include "kernels/bp_kernel.hh"
#include "kernels/conv_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/runner.hh"
#include "model/power.hh"
#include "sim/rng.hh"

using namespace vip;

namespace {

/** Run a BP sweep on one PE and return (stats-driven) power. */
double
bpPeWatts(const PePowerModel &model)
{
    SystemConfig cfg = makeSystemConfig(1, 1);
    VipSystem sys(cfg);
    MrfDramLayout layout(sys.vaultBase(0), 64, 32, 16);
    sys.pe(0).loadProgram(genBpSweep(
        layout, BpVariant{},
        BpSweepJob{SweepDir::Right, 0, 32}));
    const Cycles cycles = sys.run();
    return model.peWatts(sys.pe(0).stats(), cycles, /*mul_fraction=*/0.0);
}

/** Run a conv pass on one PE and return power. */
double
cnnPeWatts(const PePowerModel &model)
{
    SystemConfig cfg = makeSystemConfig(1, 1);
    VipSystem sys(cfg);
    FmapDramLayout in_lay(sys.vaultBase(0), 64, 16, 28, 1);
    FmapDramLayout out_lay(in_lay.end() + 4096, 64, 16, 28, 1);
    ConvJob job;
    job.in = &in_lay;
    job.out = &out_lay;
    job.filterBlob = out_lay.end() + 4096;
    job.biasBlob = job.filterBlob + (1 << 16);
    job.zShard = 64;
    job.filters = 2;
    job.rowBegin = 0;
    job.rowEnd = 16;
    job.width = 28;
    sys.pe(0).loadProgram(genConvPass(job));
    const Cycles cycles = sys.run();
    // m.v.mul lanes are half multiply (vertical), half add (reduce).
    return model.peWatts(sys.pe(0).stats(), cycles, 0.5);
}

} // namespace

int
main()
{
    std::printf("=== Sec. VII: area and power ===\n\n");

    const PeAreaBreakdown area;
    std::printf("PE area breakdown (mm2, 28 nm):\n");
    std::printf("  scratchpad (8x 512x8 SRAM) : %.3f\n", area.scratchpad);
    std::printf("  vector units (vert+horiz)  : %.3f\n", area.vectorUnits);
    std::printf("  instruction buffer         : %.3f\n", area.instBuffer);
    std::printf("  scalar unit + regfile      : %.3f\n", area.scalarUnit);
    std::printf("  load-store unit            : %.3f\n", area.loadStore);
    std::printf("  front end                  : %.3f\n", area.frontend);
    std::printf("  ARC                        : %.3f\n", area.arc);
    std::printf("  total                      : %.3f  (paper: 0.141)\n",
                area.total());

    const PePowerModel model;
    const double bp_w = bpPeWatts(model);
    const double cnn_w = cnnPeWatts(model);
    const ArrayPowerSummary s = arrayPowerSummary(bp_w, cnn_w);

    std::printf("\nper-PE power from simulated activity:\n");
    std::printf("  BP kernel  : %5.1f mW  (paper: 27)\n", bp_w * 1e3);
    std::printf("  CNN kernel : %5.1f mW  (paper: 38)\n", cnn_w * 1e3);

    std::printf("\n128-PE array:\n");
    std::printf("  area  : %5.1f mm2        (paper: 18)\n",
                s.arrayAreaMm2);
    std::printf("  power : %4.2f - %4.2f W   (paper: 3.5 - 4.8)\n",
                s.bpWatts, s.cnnWatts);

    std::printf("\nmemory-stack power (paper's quoted estimates):\n");
    std::printf("  early HMC prototype, 10 pJ/bit at 320 GB/s: %.1f W "
                "(paper: 25.6)\n", s.hmcProtoWatts);
    std::printf("  IBM 14 nm estimate: %.1f W (paper: 5)\n",
                s.hmcIbmWatts);
    return 0;
}
