/**
 * @file
 * Regenerates Table IV's Markov-random-field section and the Sec. VI-A
 * BP timing narrative: baseline BP-M (8 iterations) and hierarchical
 * BP-M (construct + coarse iterations + copy + fine iterations) on a
 * full-HD, 16-label depth-from-stereo MRF, against the GPU model and
 * the published accelerator baselines.
 *
 * Methodology: cycle-accurate simulation of one vault's tile phase
 * (the paper's independent-tile method, Sec. V-A); a full-HD iteration
 * is 32 sequential tile phases per vault with all 32 vaults in
 * parallel. The hierarchical construct/copy phases are measured with
 * their own generated kernels on a representative strip.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "common.hh"
#include "model/baselines.hh"
#include "model/gpu_model.hh"

using namespace vip;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchOptions(argc, argv);

    std::printf("=== Table IV: Markov random fields (full-HD, 16 "
                "labels) ===\n\n");

    // One vault tile: 1920/32 x ~1080/32.
    const unsigned tile_w = 60, tile_h = 34, labels = 16;
    const unsigned phases_per_iteration = 32;

    std::printf("simulating tile, construct, and copy phase slices "
                "(%ux%u, L=%u)...\n", tile_w, tile_h, labels);
    // The four phase measurements are independent simulations: sweep
    // them in parallel, collect by submission index.
    const std::vector<std::function<SliceResult()>> points = {
        [&] { return runBpTilePhase(tile_w, tile_h, labels); },
        [&] { return runBpTilePhase(tile_w / 2, tile_h / 2, labels); },
        [&] { return runConstructPhase(512, 256, labels, 8); },
        [&] { return runCopyPhase(512, 256, labels, 8); },
    };
    const auto results = runSweep(points, opts.jobs);

    const SliceResult &fhd = results[0];
    const double fhd_iter_ms = fhd.ms() * phases_per_iteration;
    const SliceResult &qhd = results[1];
    const double qhd_iter_ms = qhd.ms() * phases_per_iteration;

    // One vault handles 1/32nd of the coarse (construct) and fine
    // (copy) grids. Per-pixel cost is size-independent, so a
    // representative strip of a smaller grid scales by pixel count.
    const SliceResult &cons = results[2];
    const double construct_ms =
        cons.ms() * (960.0 * 540 / 32) /
        static_cast<double>(cons.workItems);
    const SliceResult &copy = results[3];
    const double copy_ms = copy.ms() * (1920.0 * 1080 / 32) /
                           static_cast<double>(copy.workItems);

    const double baseline_ms = 8 * fhd_iter_ms;
    const double hier_ms = construct_ms + copy_ms + 5 * qhd_iter_ms +
                           5 * fhd_iter_ms;

    const GpuBpEstimate gpu = gpuBpIteration(1920, 1080, labels);

    std::printf("\n%-28s %10s %10s %8s %6s %8s\n", "System", "Iter",
                "Time(ms)", "Power(W)", "Tech", "Area");
    for (const auto &s : tableIvBaselines()) {
        if (s.workload != "MRF")
            continue;
        std::printf("%-28s %10d %10.1f %8.3f %4.0fnm %6.0fmm2%s\n",
                    s.name.c_str(), s.iterations, s.timeMs, s.powerW,
                    s.techNm, s.areaMm2,
                    s.differentAlgorithm ? " *" : "");
    }
    std::printf("%-28s %10d %10.1f %8.3f %4.0fnm %6.0fmm2\n",
                "VIP (baseline BP-M)", 8, baseline_ms, kVipPowerBpW,
                kVipTechNm, kVipAreaMm2);
    std::printf("%-28s %10d %10.1f %8.3f %4.0fnm %6.0fmm2\n",
                "VIP (hierarchical BP-M)", 5, hier_ms, kVipPowerBpW,
                kVipTechNm, kVipAreaMm2);

    std::printf("\n--- Sec. VI-A phase breakdown (paper in "
                "parentheses) ---\n");
    std::printf("full-HD iteration : %7.2f ms  (5.2)\n", fhd_iter_ms);
    std::printf("8 iterations      : %7.2f ms  (41.3)\n", baseline_ms);
    std::printf("quarter-HD iter   : %7.2f ms  (1.8)\n", qhd_iter_ms);
    std::printf("construct         : %7.2f ms  (0.36)\n", construct_ms);
    std::printf("copy              : %7.2f ms  (1.26)\n", copy_ms);
    std::printf("hierarchical total: %7.2f ms  (36.3)\n", hier_ms);
    std::printf("GPU model iter    : %7.2f ms  (11.5), 8 iters %.1f "
                "(92.2), %2.0f%% of steps latency-bound\n",
                gpu.iterationMs, 8 * gpu.iterationMs,
                100 * gpu.latencyBoundFraction);

    const double fps_baseline = 1000.0 / baseline_ms;
    const double fps_hier = 1000.0 / hier_ms;
    std::printf("\nreal-time check: baseline %.1f fps, hierarchical "
                "%.1f fps (paper: both >= 24)\n", fps_baseline,
                fps_hier);
    std::printf("speedup vs Titan X (8 iters): %.2fx (paper: 2.2x)\n",
                92.2 / baseline_ms);
    return 0;
}
