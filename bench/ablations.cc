/**
 * @file
 * Ablations of the microarchitectural choices the paper makes but does
 * not sweep (DESIGN.md "key design choices"):
 *
 *  1. Exposed vector latency vs. hardware interlocks: the paper keeps
 *     vector latency visible to software and notes the ARC *could*
 *     cover the vector pipeline at extra cost (Sec. III-B). We run the
 *     same BP tile both ways.
 *  2. ARC capacity (the paper's twenty entries vs. smaller/larger).
 *  3. Software-pipelining depth (the paper's code prefetches four
 *     iterations ahead, Sec. IV-A).
 *  4. Load-store queue depth (the paper's 64 outstanding accesses).
 *  5. Vault transaction queue depth (Table III's 32).
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "common.hh"
#include "kernels/bp_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/runner.hh"
#include "sim/sweep.hh"

using namespace vip;

namespace {

/** One vault, 4 PEs, one full BP tile phase under a PE config tweak. */
Cycles
bpPhase(const std::function<void(SystemConfig &)> &tweak,
        unsigned prefetch_depth = 4)
{
    SystemConfig cfg = makeSystemConfig(1, 4);
    tweak(cfg);
    VipSystem sys(cfg);
    MrfDramLayout layout(sys.vaultBase(0), 60, 34, 16);
    const Addr flags = layout.end() + 64;
    BpVariant variant;
    variant.prefetchDepth = prefetch_depth;
    for (unsigned pe = 0; pe < 4; ++pe) {
        auto slice = [&](unsigned lanes) {
            const unsigned per = (lanes + 3) / 4;
            const unsigned b = std::min(lanes, pe * per);
            return std::make_pair(b, std::min(lanes, b + per));
        };
        const auto [hb, he] = slice(34);
        const auto [vb, ve] = slice(60);
        BpSweepJob jobs[4] = {{SweepDir::Right, hb, he},
                              {SweepDir::Left, hb, he},
                              {SweepDir::Down, vb, ve},
                              {SweepDir::Up, vb, ve}};
        sys.pe(pe).loadProgram(genBpIterations(layout, variant, jobs, 1,
                                               flags, pe, 4));
    }
    return sys.run();
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchOptions(argc, argv);

    // Every ablation point is an independent one-vault simulation:
    // sweep them all in parallel via the engine's generic interface.
    std::vector<std::function<Cycles()>> points;
    points.push_back([] { return bpPhase([](SystemConfig &) {}); });
    points.push_back([] {
        return bpPhase(
            [](SystemConfig &c) { c.pe.arcCoversVector = true; });
    });
    const std::vector<unsigned> arc_entries = {4, 8, 20, 40};
    for (const unsigned entries : arc_entries) {
        points.push_back([entries] {
            return bpPhase(
                [&](SystemConfig &s) { s.pe.arcEntries = entries; });
        });
    }
    const std::vector<unsigned> depths = {1, 2, 3, 4};
    for (const unsigned depth : depths) {
        points.push_back(
            [depth] { return bpPhase([](SystemConfig &) {}, depth); });
    }
    const std::vector<unsigned> lsqs = {8, 16, 32, 64};
    for (const unsigned lsq : lsqs) {
        points.push_back([lsq] {
            return bpPhase(
                [&](SystemConfig &s) { s.pe.lsqEntries = lsq; });
        });
    }
    const std::vector<unsigned> tqs = {4, 8, 16, 32};
    for (const unsigned tq : tqs) {
        points.push_back([tq] {
            return bpPhase(
                [&](SystemConfig &s) { s.mem.transQueueDepth = tq; });
        });
    }

    SweepEngine engine(opts.jobs);
    const std::vector<Cycles> cycles = engine.run(points);
    std::size_t at = 0;

    std::printf("=== Ablations (BP-M tile phase, 60x34, L=16, one "
                "vault) ===\n");

    const Cycles base = cycles[at++];
    std::printf("\nbaseline (paper config): %llu cycles\n\n",
                static_cast<unsigned long long>(base));

    std::printf("--- 1. exposed latency vs ARC-covered vector pipe "
                "---\n");
    const Cycles covered = cycles[at++];
    std::printf("%-26s %10llu cycles  %+5.1f%%\n", "hardware interlock",
                static_cast<unsigned long long>(covered),
                100.0 * (static_cast<double>(covered) - base) / base);
    std::printf("(the paper's software-scheduled code pays ~nothing "
                "for exposed latency;\n the interlock would add ARC "
                "ports and power for no speedup on tuned kernels)\n");

    std::printf("\n--- 2. ARC capacity (paper: 20) ---\n");
    for (const unsigned entries : arc_entries) {
        const Cycles c = cycles[at++];
        std::printf("%3u entries: %10llu cycles  %+5.1f%%\n", entries,
                    static_cast<unsigned long long>(c),
                    100.0 * (static_cast<double>(c) - base) / base);
    }

    std::printf("\n--- 3. software-pipeline depth (paper: 4) ---\n");
    for (const unsigned depth : depths) {
        const Cycles c = cycles[at++];
        std::printf("depth %u: %10llu cycles  %+5.1f%%\n", depth,
                    static_cast<unsigned long long>(c),
                    100.0 * (static_cast<double>(c) - base) / base);
    }

    std::printf("\n--- 4. load-store queue depth (paper: 64) ---\n");
    for (const unsigned lsq : lsqs) {
        const Cycles c = cycles[at++];
        std::printf("%3u entries: %10llu cycles  %+5.1f%%\n", lsq,
                    static_cast<unsigned long long>(c),
                    100.0 * (static_cast<double>(c) - base) / base);
    }

    std::printf("\n--- 5. transaction queue depth (paper: 32) ---\n");
    for (const unsigned tq : tqs) {
        const Cycles c = cycles[at++];
        std::printf("%3u entries: %10llu cycles  %+5.1f%%\n", tq,
                    static_cast<unsigned long long>(c),
                    100.0 * (static_cast<double>(c) - base) / base);
    }
    return 0;
}
