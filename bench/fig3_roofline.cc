/**
 * @file
 * Regenerates Figure 3: roofline placements for BP kernels (a), the
 * VGG-16 layers at batch 1 (b), and batch 16 (c).
 *
 * Performance counts 16-bit vector-unit lane operations; arithmetic
 * intensity counts every DRAM byte moved, including scalar
 * synchronization traffic (the paper's accounting). Per-vault
 * measurements scale to the machine by the active vault count.
 *
 * Every data point is an independent tile simulation, so the sweep
 * runs through the parallel SweepEngine (`--jobs N`; results are
 * collected by submission index, making the output byte-identical for
 * any jobs value).
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "common.hh"
#include "model/roofline.hh"

using namespace vip;

namespace {

void
printPoint(const Roofline &roof, const char *name, double ai,
           double gops)
{
    std::printf("%-10s %12.3f %12.1f %12.1f %9.0f%%\n", name, ai, gops,
                roof.attainable(ai), 100.0 * gops / roof.attainable(ai));
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchOptions(argc, argv, 0.12);
    const double frac = opts.frac;
    const Roofline roof = vipRoofline();

    // Stage the whole sweep up front: each point simulates its own
    // private system, so the engine may run them on any host thread.
    std::vector<std::function<SliceResult()>> points;
    const std::size_t pt_fhd = points.size();
    points.push_back([] { return runBpTilePhase(60, 34, 16); });
    const std::size_t pt_qhd = points.size();
    points.push_back([] { return runBpTilePhase(30, 17, 16); });
    const std::size_t pt_stream = points.size();
    points.push_back([] { return runStreamCopy(1 << 20); });

    const auto layers = vgg16Layers();
    // A layer's timing is batch-independent (conv/pool traffic and
    // compute both scale with batch), so each layer is measured once
    // and its point is reused by the batch-1 and batch-16 sections.
    std::vector<std::size_t> layer_point(layers.size(), SIZE_MAX);
    std::vector<unsigned> layer_vaults(layers.size(), 32);
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const LayerDesc l = layers[i];
        switch (l.kind) {
          case LayerDesc::Kind::Conv: {
            const unsigned vaults = l.inWidth <= 14 ? 16 : 32;
            layer_vaults[i] = vaults;
            layer_point[i] = points.size();
            points.push_back(
                [l, vaults, frac] { return runConvShare(l, vaults, frac); });
            break;
          }
          case LayerDesc::Kind::Pool: {
            if (l.name != "p3" && l.name != "p4" && l.name != "p5")
                break;  // the paper plots p3..p5
            layer_point[i] = points.size();
            points.push_back(
                [l, frac] { return runPoolShare(l, 32, frac); });
            break;
          }
          case LayerDesc::Kind::Fc: {
            layer_point[i] = points.size();
            points.push_back([l, frac] {
                return runFcLayer(l.inputs, l.outputs, frac);
            });
            break;
          }
        }
    }

    const std::vector<SliceResult> results = runSweep(points, opts.jobs);

    std::printf("=== Figure 3: VIP roofline (peak %.0f GOp/s, "
                "%.0f GB/s, knee at %.1f op/B) ===\n\n", roof.peakGops,
                roof.peakBandwidthGBs, roof.knee());
    std::printf("%-10s %12s %12s %12s %10s\n", "kernel", "ops/byte",
                "GOp/s", "attainable", "of roof");

    std::printf("\n--- (a) belief propagation ---\n");
    {
        const SliceResult &fhd = results[pt_fhd];
        printPoint(roof, "fhd", fhd.opsPerByte(), fhd.gops() * 32);
        const SliceResult &qhd = results[pt_qhd];
        printPoint(roof, "qhd", qhd.opsPerByte(), qhd.gops() * 32);
        // construct adds four vectors per output: 3L ops, 5L elements.
        const SliceResult &stream = results[pt_stream];
        const double ai = 3.0 / (5.0 * 2.0);
        printPoint(roof, "fhd_cons", ai,
                   ai * stream.bandwidthGBs() * 32);
    }

    for (int batch : {1, 16}) {
        std::printf("\n--- (%c) VGG-16, batch %d ---\n",
                    batch == 1 ? 'b' : 'c', batch);
        for (std::size_t i = 0; i < layers.size(); ++i) {
            if (layer_point[i] == SIZE_MAX)
                continue;
            const LayerDesc &l = layers[i];
            const SliceResult &s = results[layer_point[i]];
            switch (l.kind) {
              case LayerDesc::Kind::Conv:
                // Conv traffic and compute both scale with batch.
                printPoint(roof, l.name.c_str(), s.opsPerByte(),
                           s.gops() * layer_vaults[i]);
                break;
              case LayerDesc::Kind::Pool:
                printPoint(roof, l.name.c_str(), s.opsPerByte(),
                           s.gops() * 32);
                break;
              case LayerDesc::Kind::Fc: {
                if (batch == 1) {
                    printPoint(roof, l.name.c_str(), s.opsPerByte(),
                               s.gops());
                } else {
                    // Batch-16 reuses the resident weights: ops x16,
                    // weight bytes x1, activation bytes x16.
                    const double w_bytes = 2.0 * l.macs();
                    const double act_bytes =
                        2.0 * (l.inputs + 2.0 * l.outputs);
                    const double ai16 =
                        16.0 * 2.0 * l.macs() /
                        (w_bytes + 16.0 * act_bytes) *
                        (s.opsPerByte() * w_bytes / (2.0 * l.macs()));
                    const double eff =
                        s.gops() / roof.attainable(s.opsPerByte());
                    printPoint(roof, l.name.c_str(), ai16,
                               eff * roof.attainable(ai16));
                }
                break;
              }
            }
            std::fflush(stdout);
        }
    }
    return 0;
}
