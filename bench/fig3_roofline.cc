/**
 * @file
 * Regenerates Figure 3: roofline placements for BP kernels (a), the
 * VGG-16 layers at batch 1 (b), and batch 16 (c).
 *
 * Performance counts 16-bit vector-unit lane operations; arithmetic
 * intensity counts every DRAM byte moved, including scalar
 * synchronization traffic (the paper's accounting). Per-vault
 * measurements scale to the machine by the active vault count.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "model/roofline.hh"

using namespace vip;

namespace {

void
printPoint(const Roofline &roof, const char *name, double ai,
           double gops)
{
    std::printf("%-10s %12.3f %12.1f %12.1f %9.0f%%\n", name, ai, gops,
                roof.attainable(ai), 100.0 * gops / roof.attainable(ai));
}

} // namespace

int
main(int argc, char **argv)
{
    const double frac = argc > 1 ? std::atof(argv[1]) : 0.12;
    const Roofline roof = vipRoofline();

    std::printf("=== Figure 3: VIP roofline (peak %.0f GOp/s, "
                "%.0f GB/s, knee at %.1f op/B) ===\n\n", roof.peakGops,
                roof.peakBandwidthGBs, roof.knee());
    std::printf("%-10s %12s %12s %12s %10s\n", "kernel", "ops/byte",
                "GOp/s", "attainable", "of roof");

    std::printf("\n--- (a) belief propagation ---\n");
    {
        const SliceResult fhd = runBpTilePhase(60, 34, 16);
        printPoint(roof, "fhd", fhd.opsPerByte(), fhd.gops() * 32);
        const SliceResult qhd = runBpTilePhase(30, 17, 16);
        printPoint(roof, "qhd", qhd.opsPerByte(), qhd.gops() * 32);
        // construct adds four vectors per output: 3L ops, 5L elements.
        const SliceResult stream = runStreamCopy(1 << 20);
        const double ai = 3.0 / (5.0 * 2.0);
        printPoint(roof, "fhd_cons", ai,
                   ai * stream.bandwidthGBs() * 32);
    }

    for (int batch : {1, 16}) {
        std::printf("\n--- (%c) VGG-16, batch %d ---\n",
                    batch == 1 ? 'b' : 'c', batch);
        for (const auto &l : vgg16Layers()) {
            switch (l.kind) {
              case LayerDesc::Kind::Conv: {
                const unsigned vaults = l.inWidth <= 14 ? 16 : 32;
                const SliceResult s = runConvShare(l, vaults, frac);
                // Conv traffic and compute both scale with batch.
                printPoint(roof, l.name.c_str(), s.opsPerByte(),
                           s.gops() * vaults);
                break;
              }
              case LayerDesc::Kind::Pool: {
                if (l.name != "p3" && l.name != "p4" && l.name != "p5")
                    break;  // the paper plots p3..p5
                const SliceResult s = runPoolShare(l, 32, frac);
                printPoint(roof, l.name.c_str(), s.opsPerByte(),
                           s.gops() * 32);
                break;
              }
              case LayerDesc::Kind::Fc: {
                const SliceResult s = runFcLayer(l.inputs, l.outputs,
                                                 frac);
                if (batch == 1) {
                    printPoint(roof, l.name.c_str(), s.opsPerByte(),
                               s.gops());
                } else {
                    // Batch-16 reuses the resident weights: ops x16,
                    // weight bytes x1, activation bytes x16.
                    const double w_bytes = 2.0 * l.macs();
                    const double act_bytes =
                        2.0 * (l.inputs + 2.0 * l.outputs);
                    const double ai16 =
                        16.0 * 2.0 * l.macs() /
                        (w_bytes + 16.0 * act_bytes) *
                        (s.opsPerByte() * w_bytes / (2.0 * l.macs()));
                    const double eff =
                        s.gops() / roof.attainable(s.opsPerByte());
                    printPoint(roof, l.name.c_str(), ai16,
                               eff * roof.attainable(ai16));
                }
                break;
              }
            }
            std::fflush(stdout);
        }
    }
    return 0;
}
