/**
 * @file
 * Shared measurement harness for the table/figure benches.
 *
 * Follows the paper's methodology (Sec. V-A): cycle-accurate
 * simulation of one independent tile (a slice of work sharing no PEs,
 * DRAM, or network with its peers), scaled deterministically to the
 * full machine. Every function returns raw observations (cycles, ops,
 * bytes); the benches own the scaling arithmetic and print it.
 */

#ifndef VIP_BENCH_COMMON_HH
#define VIP_BENCH_COMMON_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "workloads/nn.hh"

namespace vip {

/** Raw observations from one simulated slice. */
struct SliceResult
{
    Cycles cycles = 0;          ///< simulated duration
    std::uint64_t vectorOps = 0; ///< 16-bit vector lane operations
    std::uint64_t dramBytes = 0; ///< DRAM bytes moved (both directions)
    std::uint64_t workItems = 0; ///< updates / MACs / elements simulated

    double ms() const { return cyclesToMs(cycles); }

    double
    gops() const
    {
        const double s = static_cast<double>(cycles) * kSecondsPerCycle;
        return s > 0 ? static_cast<double>(vectorOps) / s / 1e9 : 0;
    }

    double
    bandwidthGBs() const
    {
        const double s = static_cast<double>(cycles) * kSecondsPerCycle;
        return s > 0 ? static_cast<double>(dramBytes) / s / 1e9 : 0;
    }

    double
    opsPerByte() const
    {
        return dramBytes ? static_cast<double>(vectorOps) /
                               static_cast<double>(dramBytes)
                         : 0;
    }
};

/**
 * Command-line options shared by every sweep bench.
 *
 * Each bench accepts an optional positional fidelity fraction (where
 * meaningful) plus `--jobs N`: the number of host threads the sweep
 * engine may use. The default (0) is the host's hardware concurrency;
 * `--jobs 1` runs the sweep inline, byte-identically reproducing the
 * old serial behaviour. Output is deterministic for any jobs value:
 * every sweep point simulates its own private VipSystem and results
 * are collected by submission index before anything is printed.
 */
struct BenchOptions
{
    unsigned jobs = 0;  ///< sweep threads; 0 = hardware concurrency
    double frac = 0;    ///< bench-specific fidelity fraction

    /** False after --no-fast-forward: tick every dead cycle. */
    bool fastForward = true;

    /** False after --no-fast-path: interpret every instruction
     *  instead of replaying decoded µops. */
    bool fastPath = true;

    /** Requested island count (1 = serial tick loop). Each run*
     *  helper clamps this to what its machine can shard: the applied
     *  count is gcd(islands, nocX), so single-vault benches stay
     *  serial while the 32-vault ones split into column bands. */
    unsigned islands = 1;
};

/**
 * Parse `[FRAC] [--jobs N] [--islands N] [--no-fast-forward]
 * [--no-fast-path]`; exits with usage on bad arguments.
 * `--no-fast-forward`, `--no-fast-path`, and `--islands` also apply
 * globally: every subsequent run* helper in this translation unit
 * builds its systems with those execution-strategy settings and the
 * (clamped) island count. Results are identical either way; the
 * flags exist to measure and regression-test exactly that.
 */
BenchOptions parseBenchOptions(int argc, char **argv,
                               double default_frac = 0);

/**
 * Run every sweep point through a SweepEngine with @p jobs workers
 * (0 = hardware concurrency) and return results keyed by submission
 * index. Each point must build, run, and destroy its own system —
 * which every run* helper below does. A point that throws (bad
 * config, watchdog deadlock) is reported on stderr and its row left
 * default-constructed; the rest of the sweep completes.
 */
std::vector<SliceResult>
runSweep(const std::vector<std::function<SliceResult()>> &points,
         unsigned jobs);

/** Overrides for the Fig. 5 memory-parameter sweep. */
struct MemKnobs
{
    bool closedPage = false;
    int rankScale = 0;      ///< -1: 4x fewer banks, +1: 4x more
    int rowScale = 0;       ///< -1: 4x narrower rows, +1: 4x wider
    unsigned refreshScale = 1;  ///< 1 = 4x mode (default), 2, 4 = 1x
};

/**
 * One vault (4 PEs) executing a full BP-M tile phase: all four sweep
 * directions with barriers over a tile_w x tile_h tile with L labels —
 * 4 * tile_w * tile_h message updates (one 1/32nd slice of a full-HD
 * iteration when the tile is 60x34).
 */
SliceResult runBpTilePhase(unsigned tile_w, unsigned tile_h,
                           unsigned labels, unsigned iterations = 1,
                           const MemKnobs &knobs = {});

/**
 * Fig. 4 experiment: one vault sweeping a tile_w x tile_h tile in one
 * direction under the given architectural variant (reduction on/off,
 * scratchpad vs register file).
 */
SliceResult runBpSweepVariant(unsigned tile_w, unsigned tile_h,
                              unsigned labels, bool reduction,
                              bool register_file);

/**
 * One vault's share of a convolutional layer: a tile_w x rows output
 * region over a z-shard of the inputs with all out_channels filters,
 * cycling filter groups through the scratchpad; includes the shard
 * accumulation pass when shards > 1.
 *
 * @param row_fraction  simulate only this share of the vault's rows
 *                      (>= 1 row per PE); work scales linearly
 */
SliceResult runConvShare(const LayerDesc &layer, unsigned vaults_active,
                         double row_fraction = 1.0,
                         const MemKnobs &knobs = {});

/** One vault's share of a pooling layer. */
SliceResult runPoolShare(const LayerDesc &layer, unsigned vaults_active,
                         double row_fraction = 1.0,
                         const MemKnobs &knobs = {});

/**
 * A fully-connected layer on the full 32-vault, 128-PE machine
 * (partial pass on every PE + accumulation pass), as the paper
 * simulates FC layers end to end.
 *
 * @param row_fraction  simulate this share of the output rows
 */
SliceResult runFcLayer(unsigned inputs, unsigned outputs,
                       double row_fraction = 1.0,
                       const MemKnobs &knobs = {});

/**
 * Streaming copy bandwidth: 4 PEs of one vault moving @p bytes
 * through ld.sram/st.sram.
 */
SliceResult runStreamCopy(std::uint64_t bytes_per_pe,
                          const MemKnobs &knobs = {});

/**
 * One vault's slice of hierarchical BP's construct phase: 4 PEs pool
 * a strip of a fine_w x fine_h, L-label grid into its quarter grid.
 * workItems = coarse pixels produced.
 */
SliceResult runConstructPhase(unsigned fine_w, unsigned fine_h,
                              unsigned labels, unsigned coarse_rows);

/**
 * One vault's slice of the copy (message upsampling) phase.
 * workItems = fine pixels seeded.
 */
SliceResult runCopyPhase(unsigned fine_w, unsigned fine_h,
                         unsigned labels, unsigned fine_rows);

/** Apply Fig. 5 knobs to a memory configuration. */
void applyKnobs(struct MemConfig &cfg, const MemKnobs &knobs);

} // namespace vip

#endif // VIP_BENCH_COMMON_HH
