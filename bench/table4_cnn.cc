/**
 * @file
 * Regenerates Table IV's CNN sections and the Sec. VI-A layer
 * narrative: per-layer VGG-16 and VGG-19 times on VIP, full-network
 * totals at batch 1/3/16, and the Eyeriss / Titan X / Volta / Jetson
 * comparisons with the paper's normalization arithmetic.
 *
 * Methodology: each conv/pool layer is measured as one vault's
 * independent tile share (Sec. V-A); FC layers run on the full
 * 32-vault, 128-PE machine. Convolution time scales linearly with
 * batch (the paper observes the same); FC batching reuses the resident
 * weights, so t(B) = t(1) + (B-1) * t_compute.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common.hh"
#include "model/baselines.hh"

using namespace vip;

namespace {

struct LayerTime
{
    std::string name;
    double ms = 0;
    double computeMs = 0;  // pure-compute share (for FC batch model)
    bool isFc = false;
};

std::vector<LayerTime>
measureNetwork(const std::vector<LayerDesc> &layers, double frac,
               unsigned jobs)
{
    // Every layer is an independent tile simulation (Sec. V-A):
    // sweep the whole network in parallel, then derive and print the
    // per-layer times in network order.
    std::vector<std::function<SliceResult()>> points;
    for (const auto &l : layers) {
        switch (l.kind) {
          case LayerDesc::Kind::Conv: {
            // The paper uses half the vaults for the tiny c5 maps.
            const unsigned vaults = l.inWidth <= 14 ? 16 : 32;
            points.push_back(
                [l, vaults, frac] { return runConvShare(l, vaults, frac); });
            break;
          }
          case LayerDesc::Kind::Pool:
            points.push_back(
                [l, frac] { return runPoolShare(l, 32, frac); });
            break;
          case LayerDesc::Kind::Fc:
            points.push_back([l, frac] {
                return runFcLayer(l.inputs, l.outputs, frac);
            });
            break;
        }
    }
    const std::vector<SliceResult> results = runSweep(points, jobs);

    std::vector<LayerTime> out;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const LayerDesc &l = layers[i];
        const SliceResult &s = results[i];
        LayerTime t;
        t.name = l.name;
        switch (l.kind) {
          case LayerDesc::Kind::Conv: {
            const unsigned vaults = l.inWidth <= 14 ? 16 : 32;
            const double share = static_cast<double>(l.macs()) / vaults;
            t.ms = s.ms() * share / static_cast<double>(s.workItems);
            break;
          }
          case LayerDesc::Kind::Pool: {
            const double share = static_cast<double>(l.macs()) / 32.0;
            t.ms = s.ms() * share / static_cast<double>(s.workItems);
            break;
          }
          case LayerDesc::Kind::Fc: {
            // workItems = simulated rows * inputs; the full layer is
            // outputs * inputs multiply-accumulates.
            const double scale = static_cast<double>(l.macs()) /
                                 static_cast<double>(s.workItems);
            t.ms = s.ms() * scale;
            // Compute-bound share: MACs at the 640 GMAC/s peak.
            t.computeMs = static_cast<double>(l.macs()) /
                          (128.0 * 4.0 * 1.25e9) * 1e3;
            t.isFc = true;
            break;
          }
        }
        std::printf("  %-6s %9.3f ms\n", t.name.c_str(), t.ms);
        std::fflush(stdout);
        out.push_back(t);
    }
    return out;
}

double
totalMs(const std::vector<LayerTime> &ts, int batch, bool conv_only)
{
    double total = 0;
    for (const auto &t : ts) {
        if (t.isFc) {
            if (conv_only)
                continue;
            total += t.ms + (batch - 1) * t.computeMs;
        } else {
            total += batch * t.ms;
        }
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    // A fraction of each layer's rows is simulated; pass a larger
    // fraction for higher fidelity.
    const BenchOptions opts = parseBenchOptions(argc, argv, 0.3);
    const double frac = opts.frac;

    std::printf("=== Table IV: CNNs (simulated row fraction %.2f) "
                "===\n\nVGG-16 layers:\n", frac);
    const auto vgg16 = measureNetwork(vgg16Layers(), frac, opts.jobs);
    std::printf("\nVGG-19 layers:\n");
    const auto vgg19 = measureNetwork(vgg19Layers(), frac, opts.jobs);

    const double v16_conv_b1 = totalMs(vgg16, 1, true);
    const double v16_b1 = totalMs(vgg16, 1, false);
    const double v16_conv_b3 = totalMs(vgg16, 3, true);
    const double v16_b16 = totalMs(vgg16, 16, false);
    const double v19_b1 = totalMs(vgg19, 1, false);
    const double v19_conv_b1 = totalMs(vgg19, 1, true);
    const double fc_b1 = v16_b1 - v16_conv_b1;
    const double fc_b3 = totalMs(vgg16, 3, false) - v16_conv_b3;
    const double fc_b16 = v16_b16 - totalMs(vgg16, 16, true);

    std::printf("\n--- Sec. VI-A totals (paper in parentheses) ---\n");
    std::printf("VGG-16 conv+pool, batch 1 : %8.1f ms  (30.9)\n",
                v16_conv_b1);
    std::printf("VGG-19 conv+pool, batch 1 : %8.1f ms  (39.2)\n",
                v19_conv_b1);
    std::printf("VGG-16 conv, batch 3      : %8.1f ms  (91.6)\n",
                v16_conv_b3);
    std::printf("fc layers batch 1/3/16    : %.2f / %.2f / %.2f ms "
                "(1.4 / 1.8 / 4.4)\n", fc_b1, fc_b3, fc_b16);
    std::printf("VGG-16 full, batch 1      : %8.1f ms  (32.3)\n",
                v16_b1);
    std::printf("VGG-16 full, batch 16     : %8.1f ms  (492.4)\n",
                v16_b16);
    std::printf("VGG-19 full, batch 1      : %8.1f ms  (40.6)\n",
                v19_b1);

    std::printf("\n--- Table IV comparisons ---\n");
    const double eyeriss_scaled = eyerissScaledTimeMs(4309.0);
    std::printf("Eyeriss reported (conv, batch 3): 4309 ms @ 65nm, "
                "12mm2, 200MHz\n");
    std::printf("Eyeriss scaled to VIP area/tech/clock: %.1f ms; "
                "VIP: %.1f ms (paper: <10%% worse)\n", eyeriss_scaled,
                v16_conv_b3);
    std::printf("VIP vs Eyeriss-scaled: %+.1f%%\n",
                100.0 * (v16_conv_b3 - eyeriss_scaled) / eyeriss_scaled);
    std::printf("Titan X VGG-16 batch 16: 41.6 ms @ 250 W, 471 mm2 "
                "(VIP: %.1f ms @ 4.8 W, 18 mm2)\n", v16_b16);
    std::printf("Volta VGG-19 batch 1: 2.2 ms; area ratio vs VIP: "
                "%.0fx (paper ~250x)\n", areaRatioVsVip(815.0, 12.0));
    std::printf("Jetson TX2 VGG-19 batch 1: 42.2 ms @ 10 W "
                "(VIP: %.1f ms @ 4.8 W)\n", v19_b1);
    std::printf("\nreal-time check: VGG-16 batch 1 = %.1f fps "
                "(paper >= 24)\n", 1000.0 / v16_b1);
    return 0;
}
