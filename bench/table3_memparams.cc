/**
 * @file
 * Prints the active memory-system configuration in the form of
 * Table III, with the raw nanosecond values and their cycle
 * equivalents at the 0.8 ns clock.
 */

#include <cstdio>
#include <string>

#include "mem/timing.hh"

using namespace vip;

int
main()
{
    const MemConfig cfg;

    std::printf("=== Table III: memory simulation parameters ===\n\n");
    std::printf("%-22s %s\n", "HMC vaults",
                std::to_string(cfg.geom.vaults).c_str());
    std::printf("%-22s %u bit\n", "HMC vault data width", 32u);
    std::printf("%-22s %s\n", "Row buffer policy",
                cfg.pagePolicy == PagePolicy::Open ? "open-page"
                                                   : "closed-page");
    std::printf("%-22s %s\n", "Address mapping",
                cfg.addrMap == AddrMap::VaultRowBankCol
                    ? "vault-row-bank-col"
                    : "row-bank-col-vault");
    std::printf("%-22s %u\n", "Banks per vault", cfg.geom.banksPerVault);
    std::printf("%-22s %u (32 B columns)\n", "Burst length", 8u);
    std::printf("%-22s %u\n", "Cmd queue depth", cfg.cmdQueueDepth);
    std::printf("%-22s %u\n", "Trans queue depth", cfg.transQueueDepth);
    std::printf("%-22s %llu rows x %u B\n", "Bank geometry",
                static_cast<unsigned long long>(cfg.geom.rowsPerBank),
                cfg.geom.rowBytes);

    std::printf("\n%-8s %10s %10s\n", "param", "ns", "cycles");
    const struct { const char *name; double ns; Cycles cyc; } rows[] = {
        {"tCK", 0.8, 1},
        {"tCL", 13.75, cfg.timing.tCL},
        {"tRCD", 13.75, cfg.timing.tRCD},
        {"tRP", 13.75, cfg.timing.tRP},
        {"tRAS", 27.5, cfg.timing.tRAS},
        {"tWR", 15.0, cfg.timing.tWR},
        {"tCCD", 5.0, cfg.timing.tCCD},
        {"tRFC", 81.5, cfg.timing.tRFC},
        {"tREFI", 1950.0, cfg.timing.tREFI},
    };
    for (const auto &r : rows) {
        std::printf("%-8s %10.2f %10llu\n", r.name, r.ns,
                    static_cast<unsigned long long>(r.cyc));
    }
    std::printf("\nstack bandwidth: %u vaults x 10 GB/s = %u GB/s\n",
                cfg.geom.vaults, cfg.geom.vaults * 10);
    std::printf("capacity: %llu MiB\n",
                static_cast<unsigned long long>(cfg.geom.capacity() >>
                                                20));
    return 0;
}
