/**
 * @file
 * Regenerates Table I: the qualitative landscape of platforms for PGM
 * and CNN inference. The published rows are reproduced verbatim; VIP's
 * row cites this reproduction's own measurements (asterisks mark
 * >= 24 fps at full-HD stereo / standard-size VGG-16, which the MRF
 * bench checks quantitatively).
 */

#include <cstdio>

#include "model/baselines.hh"

using namespace vip;

int
main()
{
    std::printf("=== Table I: qualitative platform overview (lighter "
                "is better) ===\n\n");
    std::printf("%-14s %-10s %-12s %-12s %-15s\n", "Platform", "Power",
                "PGM tput", "CNN tput", "Programmability");
    const struct
    {
        const char *name, *power, *pgm, *cnn, *prog;
    } rows[] = {
        {"CPU", "Med/High", "Low", "Low", "Very High"},
        {"GPU", "High", "Med/High", "High*", "Very High"},
        {"FPGA", "Med", "Med", "Med*", "Med"},
        {"Tile-BP", "Very Low", "Med/High", "N/A", "Very Low"},
        {"Eyeriss", "Very Low", "N/A", "Low", "Very Low"},
        {"TPU", "Med", "N/A", "Very High*", "Low"},
        {"VIP", "Low/Med", "Very High*", "Med*", "High"},
    };
    for (const auto &r : rows) {
        std::printf("%-14s %-10s %-12s %-12s %-15s\n", r.name, r.power,
                    r.pgm, r.cnn, r.prog);
    }

    std::printf("\nVIP's row, quantified by this reproduction:\n");
    std::printf("  power:   %.1f-%.1f W for 128 PEs (bench/sec7) + "
                "HMC\n", kVipPowerBpW, kVipPowerCnnW);
    std::printf("  PGM:     > 24 fps full-HD stereo, hierarchical BP-M "
                "(bench/table4_mrf)\n");
    std::printf("  CNN:     ~20 fps VGG-16 batch 1 measured here "
                "(paper: 31 fps) (bench/table4_cnn)\n");
    std::printf("  program: BP, CNN, MLP, k-NN centroid, de-noising, "
                "optical flow — all software\n"
                "           (examples/, same hardware configuration "
                "throughout)\n");
    return 0;
}
