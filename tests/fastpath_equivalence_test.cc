/**
 * @file
 * Decoded-µop fast-path equivalence harness: replaying pre-decoded
 * µops and executing eligible basic blocks in one step (cfg.fastPath,
 * pe/decode.hh) must be invisible in every deterministic observable —
 * the full RunResult JSON (cycles, the complete stats tree, fault
 * section), the DRAM fingerprint, and the fault counters — while the
 * fast-path counters themselves (which live outside the stats tree)
 * prove the fast path actually ran. Scenarios cover a tight scalar
 * loop (the fast path's best case), the BP and CNN kernels (vector /
 * memory heavy, mostly fallback), a fault campaign (per-µop ordinal
 * keys must not shift), and an island-sharded run.
 *
 * Four scenarios additionally pin the seed goldens from
 * hotpath_equivalence_test with the fast path on AND off, so the two
 * execution strategies cannot drift together unnoticed.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "isa/builder.hh"
#include "kernels/bp_kernel.hh"
#include "kernels/conv_kernel.hh"
#include "kernels/fc_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/pool_kernel.hh"
#include "kernels/runner.hh"
#include "sim/fault.hh"
#include "sim/json.hh"
#include "sim/rng.hh"
#include "workloads/mrf.hh"
#include "workloads/nn.hh"

namespace vip {
namespace {

/** Everything the fast path must not perturb, plus the counters that
 *  prove it ran. */
struct Observed
{
    Cycles cycles = 0;
    std::string resultJson;
    std::uint64_t dramDigest = 0;
    FaultStats faults;
    std::uint64_t fastUops = 0;
    std::uint64_t blockRuns = 0;
    bool halted = false;
};

Observed
observe(SystemConfig cfg, bool fast, unsigned islands,
        const std::function<void(Simulation &)> &drive)
{
    cfg.fastPath = fast;
    cfg.islands = islands;
    Simulation sim(cfg);
    drive(sim);
    const RunResult result = sim.run(50'000'000);
    Observed o;
    o.cycles = result.cycles;
    o.resultJson = result.toJson().str();
    o.dramDigest = sim.system().dram().fingerprint();
    o.faults = result.faults;
    const auto fu = result.fastpath.find("fast_uops");
    if (fu != result.fastpath.end())
        o.fastUops = fu->second;
    const auto br = result.fastpath.find("block_runs");
    if (br != result.fastpath.end())
        o.blockRuns = br->second;
    o.halted = result.haltedCleanly;
    return o;
}

/**
 * The core assertion: with the fast path on and off (and across the
 * given island counts), runs are indistinguishable in every
 * deterministic observable. Returns the fast-path-on observation so
 * scenarios can additionally pin goldens or require coverage.
 */
Observed
expectFastPathEquivalent(const SystemConfig &cfg,
                         const std::function<void(Simulation &)> &drive,
                         std::initializer_list<unsigned> island_counts = {1u})
{
    Observed first_on;
    bool have_first = false;
    for (const unsigned islands : island_counts) {
        const Observed off = observe(cfg, false, islands, drive);
        const Observed on = observe(cfg, true, islands, drive);
        EXPECT_TRUE(off.halted) << "islands=" << islands;
        EXPECT_TRUE(on.halted) << "islands=" << islands;
        EXPECT_EQ(off.cycles, on.cycles) << "islands=" << islands;
        EXPECT_EQ(off.resultJson, on.resultJson)
            << "islands=" << islands;
        EXPECT_EQ(off.dramDigest, on.dramDigest)
            << "islands=" << islands;
        EXPECT_EQ(off.faults.dramBitFlips, on.faults.dramBitFlips);
        EXPECT_EQ(off.faults.retentionErrors, on.faults.retentionErrors);
        EXPECT_EQ(off.faults.eccCorrected, on.faults.eccCorrected);
        EXPECT_EQ(off.faults.eccSilent, on.faults.eccSilent);
        EXPECT_EQ(off.faults.spBitFlips, on.faults.spBitFlips);
        // The interpreter must not touch the µop machinery at all;
        // the replay must account every issued µop.
        EXPECT_EQ(off.fastUops, 0u);
        EXPECT_EQ(off.blockRuns, 0u);
        if (!have_first) {
            first_on = on;
            have_first = true;
        }
    }
    return first_on;
}

MrfProblem
makeProblem(unsigned w, unsigned h, unsigned labels, std::uint64_t seed)
{
    Rng rng(seed);
    MrfProblem p;
    p.width = w;
    p.height = h;
    p.labels = labels;
    p.smoothCost = truncatedLinearSmoothness(labels, 3, 12);
    p.dataCost.resize(static_cast<std::size_t>(w) * h * labels);
    for (auto &c : p.dataCost)
        c = static_cast<Fx16>(rng.nextBelow(25));
    return p;
}

TEST(FastPathEquivalence, ScalarLoop)
{
    // The headline case (BM_PeScalarLoop's program): a pure scalar
    // loop whose body is one eligible block, so nearly every µop
    // should retire through block replay.
    SystemConfig cfg = makeSystemConfig(1, 1);
    const Observed on =
        expectFastPathEquivalent(cfg, [](Simulation &sim) {
            AsmBuilder b;
            b.movImm(1, 0);
            b.movImm(2, 10000);
            const auto loop = b.newLabel();
            b.bind(loop);
            b.addImm(1, 1, 1);
            b.branch(BranchCond::Lt, 1, 2, loop);
            b.halt();
            sim.loadProgram(0, b.finish());
        });
    EXPECT_GT(on.blockRuns, 0u);
    // 20000 loop µops plus prologue; the fast path must carry the
    // overwhelming majority of them.
    EXPECT_GT(on.fastUops, 15000u);
}

TEST(FastPathEquivalence, BpSweepFourPes)
{
    // The hotpath_equivalence_test BP scenario, pinned to the same
    // seed golden with the fast path off and on.
    const unsigned W = 12, H = 8, L = 8;
    const MrfProblem problem = makeProblem(W, H, L, 42);
    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;

    auto drive = [&](Simulation &sim) {
        VipSystem &sys = sim.system();
        MrfDramLayout layout(sys.vaultBase(0), W, H, L);
        layout.upload(problem, sys.dram());
        const unsigned per = H / 4;
        for (unsigned pe = 0; pe < 4; ++pe) {
            sim.loadProgram(pe, genBpSweep(
                layout, BpVariant{},
                BpSweepJob{SweepDir::Right, pe * per, (pe + 1) * per}));
        }
    };
    const Observed on = expectFastPathEquivalent(cfg, drive);
    EXPECT_EQ(on.cycles, 2048u);
    EXPECT_EQ(observe(cfg, false, 1, drive).dramDigest,
              8335395983873963827ull);
    EXPECT_EQ(on.dramDigest, 8335395983873963827ull);
}

TEST(FastPathEquivalence, ConvSingleShard)
{
    // The hotpath CNN slice: vector/memory dominated, so the fast
    // path mostly falls back — the equivalence still has to hold at
    // every fallback boundary. Pinned to the seed golden.
    const unsigned C = 8, H = 10, W = 12, OC = 4, K = 3;
    Rng rng(11);
    FeatureMap in(C, H, W);
    for (auto &v : in.data)
        v = static_cast<Fx16>(rng.nextRange(-10, 10));
    const auto filters = randomWeights(
        static_cast<std::size_t>(OC) * C * K * K, rng, 3);
    const auto bias = randomWeights(OC, rng, 20);

    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = true;

    auto drive = [&](Simulation &sim) {
        VipSystem &sys = sim.system();
        const Addr base = sys.vaultBase(0);
        FmapDramLayout in_lay(base, C, H, W, 1);
        FmapDramLayout out_lay(in_lay.end() + 64, OC, H, W, 0);
        const Addr filt_addr = out_lay.end() + 64;
        const auto blob = packFilters(filters, C, K, 0, OC, 0, C);
        sys.dram().write(filt_addr, blob.data(), blob.size() * 2);
        const Addr bias_addr = filt_addr + blob.size() * 2 + 64;
        sys.dram().write(bias_addr, bias.data(), bias.size() * 2);
        in_lay.upload(in, sys.dram());

        ConvJob job;
        job.in = &in_lay;
        job.out = &out_lay;
        job.filterBlob = filt_addr;
        job.biasBlob = bias_addr;
        job.zShard = C;
        job.filters = OC;
        job.rowBegin = 0;
        job.rowEnd = H;
        job.width = W;
        sim.loadProgram(0, genConvPass(job));
    };
    const Observed on = expectFastPathEquivalent(cfg, drive);
    EXPECT_EQ(on.cycles, 14448u);
    EXPECT_EQ(on.dramDigest, 17936303181918984730ull);
}

TEST(FastPathEquivalence, PoolLayer)
{
    const unsigned C = 16, H = 8, W = 12;
    Rng rng(14);
    FeatureMap in(C, H, W);
    for (auto &v : in.data)
        v = static_cast<Fx16>(rng.nextRange(-1000, 1000));

    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = true;

    const Observed on =
        expectFastPathEquivalent(cfg, [&](Simulation &sim) {
            VipSystem &sys = sim.system();
            FmapDramLayout in_lay(sys.vaultBase(0), C, H, W, 0);
            FmapDramLayout out_lay(in_lay.end() + 64, C, H / 2, W / 2,
                                   0);
            in_lay.upload(in, sys.dram());

            PoolJob job;
            job.in = &in_lay;
            job.out = &out_lay;
            job.rowBegin = 0;
            job.rowEnd = H / 2;
            job.width = W / 2;
            job.chunk = C;
            sim.loadProgram(0, genPool(job));
        });
    EXPECT_EQ(on.cycles, 1834u);
    EXPECT_EQ(on.dramDigest, 8116046076812699434ull);
}

TEST(FastPathEquivalence, FcPartialOnePass)
{
    // The FC partial pass from the hotpath FC scenario (the accum
    // pass there reloads programs between runs, which the one-run
    // Simulation harness here doesn't model — the partial pass alone
    // still exercises the matvec/accumulate hot loop).
    const unsigned IN = 128, OUT = 64, SEGS = 4;
    Rng rng(16);
    const auto input = randomWeights(IN, rng, 30);
    const auto weights = randomWeights(
        static_cast<std::size_t>(OUT) * IN, rng, 5);

    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;

    expectFastPathEquivalent(cfg, [&](Simulation &sim) {
        VipSystem &sys = sim.system();
        const Addr base = sys.vaultBase(0);
        const Addr w_addr = base;
        const Addr in_addr = w_addr + weights.size() * 2 + 64;
        const Addr part_base = in_addr + input.size() * 2 + 64;
        const std::uint64_t part_stride = OUT * 2 + 64;
        sys.dram().write(w_addr, weights.data(), weights.size() * 2);
        sys.dram().write(in_addr, input.data(), input.size() * 2);

        for (unsigned s = 0; s < SEGS; ++s) {
            FcPartialJob job;
            job.weightBase = w_addr;
            job.inputBase = in_addr;
            job.outBase = part_base + s * part_stride;
            job.inputs = IN;
            job.segOffset = s * (IN / SEGS);
            job.segLen = IN / SEGS;
            job.rowBegin = 0;
            job.rowEnd = OUT;
            job.outBlock = 32;
            sim.loadProgram(s, genFcPartial(job));
        }
    });
}

TEST(FastPathEquivalence, FaultCampaign)
{
    // Scratchpad flips are keyed by (peId, committed-instruction
    // ordinal): block replay must charge the exact same ordinals the
    // interpreter does, or flips land on different instructions and
    // the DRAM image diverges.
    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.faults = FaultPlan::parse(
        "seed=7,dram-read=1e-3,retention=1e-4,sp-flip=1e-4,ecc=on");

    auto drive = [](Simulation &sim) {
        VipSystem &sys = sim.system();
        Rng rng(11);
        for (unsigned pe = 0; pe < 4; ++pe) {
            std::vector<std::int16_t> data(4096);
            for (auto &d : data)
                d = static_cast<std::int16_t>(rng.nextRange(-99, 99));
            const Addr src =
                sys.vaultBase(0) + pe * (16ull << 20);
            sys.dram().write(src, data.data(), data.size() * 2);
            AsmBuilder b;
            b.movImm(1, 0);
            b.movImm(2, 8);  // chunks
            b.movImm(3, static_cast<std::int64_t>(src));
            b.movImm(4, static_cast<std::int64_t>(src + (4ull << 20)));
            b.movImm(5, 1024);
            b.movImm(6, 512);
            b.movImm(7, 0);
            const auto loop = b.newLabel();
            b.bind(loop);
            b.ldSram(7, 3, 6);
            b.stSram(7, 4, 6);
            b.memfence();
            b.scalar(ScalarOp::Add, 3, 3, 5);
            b.scalar(ScalarOp::Add, 4, 4, 5);
            b.addImm(1, 1, 1);
            b.branch(BranchCond::Lt, 1, 2, loop);
            b.halt();
            sim.loadProgram(pe, b.finish());
        }
    };
    expectFastPathEquivalent(cfg, drive);

    // The campaign must actually fire for the equivalence to mean
    // anything.
    const Observed on = observe(cfg, true, 1, drive);
    EXPECT_GT(on.faults.dramBitFlips + on.faults.retentionErrors +
                  on.faults.spBitFlips,
              0u);
}

TEST(FastPathEquivalence, IslandShardedBp)
{
    // Every vault of a 16-vault machine runs the BP sweep; the fast
    // path must compose with the island scheduler (2 and 4 cuts) and
    // still match the serial interpreter bit for bit.
    const unsigned W = 12, H = 8, L = 8;
    const MrfProblem problem = makeProblem(W, H, L, 42);
    SystemConfig cfg = makeSystemConfig(16, 4);
    cfg.pe.strictHazards = true;

    expectFastPathEquivalent(cfg, [&](Simulation &sim) {
        VipSystem &sys = sim.system();
        for (unsigned v = 0; v < 16; ++v) {
            MrfDramLayout layout(sys.vaultBase(v), W, H, L);
            layout.upload(problem, sys.dram());
            const unsigned per = H / 4;
            for (unsigned pe = 0; pe < 4; ++pe) {
                sim.loadProgram(v * 4 + pe, genBpSweep(
                    layout, BpVariant{},
                    BpSweepJob{SweepDir::Right, pe * per,
                               (pe + 1) * per}));
            }
        }
    }, {1u, 2u, 4u});
}

} // namespace
} // namespace vip
