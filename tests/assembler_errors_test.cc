/**
 * @file
 * The assembler's error paths: every malformed input must come back as
 * an AssemblyError carrying the right 1-based source line — never a
 * crash, never a partial program — and the Simulation facade must
 * surface the same failure as a structured AssemblyFailure.
 */

#include <gtest/gtest.h>

#include <string>

#include "isa/assembler.hh"
#include "sim/error.hh"
#include "system/simulation.hh"

namespace vip {
namespace {

/** Assemble expecting failure; returns the reported error. */
AssemblyError
expectError(const std::string &source)
{
    AssemblyError err;
    const auto prog = assemble(source, &err);
    EXPECT_FALSE(err.message.empty()) << "assembled without error:\n"
                                      << source;
    EXPECT_TRUE(prog.empty());
    return err;
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    const AssemblyError err = expectError("mov.imm r1, 8\n"
                                          "frobnicate r1, r2\n"
                                          "halt\n");
    EXPECT_EQ(err.line, 2u);
    EXPECT_NE(err.message.find("frobnicate"), std::string::npos)
        << err.message;
}

TEST(AssemblerErrors, OutOfRangeRegister)
{
    // r64 is one past the 64-entry scalar register file.
    const AssemblyError err = expectError("mov.imm r64, 1\n");
    EXPECT_EQ(err.line, 1u);
    EXPECT_NE(err.message.find("r64"), std::string::npos) << err.message;
}

TEST(AssemblerErrors, MalformedRegisterToken)
{
    const AssemblyError err = expectError("mov.imm rx, 1\n");
    EXPECT_EQ(err.line, 1u);
    EXPECT_NE(err.message.find("register"), std::string::npos)
        << err.message;
}

TEST(AssemblerErrors, UndefinedLabel)
{
    const AssemblyError err = expectError("mov.imm r1, 0\n"
                                          "mov.imm r2, 4\n"
                                          "blt r1, r2, nowhere\n"
                                          "halt\n");
    // The fixup pass reports the line of the branch that referenced
    // the missing label, not the end of the file.
    EXPECT_EQ(err.line, 3u);
    EXPECT_NE(err.message.find("nowhere"), std::string::npos)
        << err.message;
}

TEST(AssemblerErrors, DuplicateLabel)
{
    const AssemblyError err = expectError("loop:\n"
                                          "  halt\n"
                                          "loop:\n"
                                          "  halt\n");
    EXPECT_EQ(err.line, 3u);
    EXPECT_NE(err.message.find("loop"), std::string::npos) << err.message;
}

TEST(AssemblerErrors, WrongOperandCount)
{
    const AssemblyError err = expectError("mov.imm r1\n");
    EXPECT_EQ(err.line, 1u);
    EXPECT_NE(err.message.find("operand"), std::string::npos)
        << err.message;
}

TEST(AssemblerErrors, BadImmediate)
{
    const AssemblyError err = expectError("mov.imm r1, 12abc\n");
    EXPECT_EQ(err.line, 1u);
    EXPECT_NE(err.message.find("immediate"), std::string::npos)
        << err.message;
}

TEST(AssemblerErrors, BadWidthTag)
{
    const AssemblyError err = expectError("mov.imm r1, 8\n"
                                          "v.v.add[24] r2, r3, r4\n");
    EXPECT_EQ(err.line, 2u);
    EXPECT_NE(err.message.find("width"), std::string::npos)
        << err.message;
}

TEST(AssemblerErrors, MalformedLabel)
{
    // A label token containing whitespace can never be referenced.
    const AssemblyError err = expectError("bad label: halt\n");
    EXPECT_EQ(err.line, 1u);
    EXPECT_NE(err.message.find("label"), std::string::npos)
        << err.message;
}

TEST(AssemblerErrors, OnlyTheFirstErrorIsReported)
{
    const AssemblyError err = expectError("bogus1 r1\n"
                                          "bogus2 r2\n");
    EXPECT_EQ(err.line, 1u);
    EXPECT_NE(err.message.find("bogus1"), std::string::npos)
        << err.message;
}

TEST(AssemblerErrors, FacadeThrowsStructuredFailure)
{
    Simulation sim(makeSystemConfig(1, 1));
    try {
        sim.loadProgram(0, "mov.imm r1, 8\nfrobnicate r1\n");
        FAIL() << "expected AssemblyFailure";
    } catch (const AssemblyFailure &e) {
        EXPECT_EQ(e.kind(), "assembly");
        EXPECT_EQ(e.line(), 2u);
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("frobnicate"),
                  std::string::npos);
    }
    // The facade (and its machine) survives: a corrected program loads
    // and runs on the same instance.
    const RunResult r = sim.loadProgram(0, "halt\n").run(1000);
    EXPECT_TRUE(r.haltedCleanly);
}

} // namespace
} // namespace vip
