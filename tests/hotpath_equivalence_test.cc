/**
 * @file
 * Hot-path equivalence pin: the inner-loop overhauls (width-templated
 * vector kernels, zero-copy DMA, pooled MemRequests, per-bank vault
 * queues) must be invisible in every architectural observable. Each
 * scenario runs a representative kernel (BP, conv, pool, FC) and
 * asserts the final cycle count, the committed-instruction count, and
 * the DRAM fingerprint against golden values captured from the seed
 * implementation — a regression pin that complements
 * ff_equivalence_test (which checks warped-vs-ticked equivalence but
 * would not notice both runs drifting together).
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "isa/builder.hh"
#include "kernels/bp_kernel.hh"
#include "kernels/conv_kernel.hh"
#include "kernels/fc_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/pool_kernel.hh"
#include "kernels/runner.hh"
#include "sim/rng.hh"
#include "workloads/mrf.hh"
#include "workloads/nn.hh"

namespace vip {
namespace {

/** The observables the optimizations must not perturb. */
struct Golden
{
    Cycles cycles;
    std::uint64_t instructions;
    std::uint64_t dramDigest;
};

void
expectGolden(SystemConfig cfg,
             const std::function<void(VipSystem &)> &drive,
             const Golden &want)
{
    VipSystem sys(cfg);
    drive(sys);
    ASSERT_TRUE(sys.allIdle());
    std::uint64_t instructions = 0;
    for (unsigned pe = 0; pe < sys.numPes(); ++pe)
        instructions += sys.pe(pe).stats().instructions.value();
    EXPECT_EQ(sys.now(), want.cycles);
    EXPECT_EQ(instructions, want.instructions);
    EXPECT_EQ(sys.dram().fingerprint(), want.dramDigest);
}

MrfProblem
makeProblem(unsigned w, unsigned h, unsigned labels, std::uint64_t seed)
{
    Rng rng(seed);
    MrfProblem p;
    p.width = w;
    p.height = h;
    p.labels = labels;
    p.smoothCost = truncatedLinearSmoothness(labels, 3, 12);
    p.dataCost.resize(static_cast<std::size_t>(w) * h * labels);
    for (auto &c : p.dataCost)
        c = static_cast<Fx16>(rng.nextBelow(25));
    return p;
}

TEST(HotpathEquivalence, BpSweepFourPes)
{
    const unsigned W = 12, H = 8, L = 8;
    const MrfProblem problem = makeProblem(W, H, L, 42);
    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;

    expectGolden(cfg, [&](VipSystem &sys) {
        MrfDramLayout layout(sys.vaultBase(0), W, H, L);
        layout.upload(problem, sys.dram());
        const unsigned per = H / 4;
        for (unsigned pe = 0; pe < 4; ++pe) {
            sys.pe(pe).loadProgram(genBpSweep(
                layout, BpVariant{},
                BpSweepJob{SweepDir::Right, pe * per, (pe + 1) * per}));
        }
        sys.run(50'000'000);
        // Cycles re-pinned (2043 -> 2048) when NoC events gained the
        // canonical (cycle, node, lane key) total order for island
        // determinism: same-cycle deliveries at one router now tie-break
        // by packet identity instead of heap happenstance, which shifts
        // link-contention timing slightly. Instructions and the DRAM
        // digest are order-invariant and did not move.
    }, Golden{2048, 3064, 8335395983873963827ull});
}

TEST(HotpathEquivalence, ConvSingleShard)
{
    const unsigned C = 8, H = 10, W = 12, OC = 4, K = 3;
    Rng rng(11);
    FeatureMap in(C, H, W);
    for (auto &v : in.data)
        v = static_cast<Fx16>(rng.nextRange(-10, 10));
    const auto filters = randomWeights(
        static_cast<std::size_t>(OC) * C * K * K, rng, 3);
    const auto bias = randomWeights(OC, rng, 20);

    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = true;

    expectGolden(cfg, [&](VipSystem &sys) {
        const Addr base = sys.vaultBase(0);
        FmapDramLayout in_lay(base, C, H, W, 1);
        FmapDramLayout out_lay(in_lay.end() + 64, OC, H, W, 0);
        const Addr filt_addr = out_lay.end() + 64;
        const auto blob = packFilters(filters, C, K, 0, OC, 0, C);
        sys.dram().write(filt_addr, blob.data(), blob.size() * 2);
        const Addr bias_addr = filt_addr + blob.size() * 2 + 64;
        sys.dram().write(bias_addr, bias.data(), bias.size() * 2);
        in_lay.upload(in, sys.dram());

        ConvJob job;
        job.in = &in_lay;
        job.out = &out_lay;
        job.filterBlob = filt_addr;
        job.biasBlob = bias_addr;
        job.zShard = C;
        job.filters = OC;
        job.rowBegin = 0;
        job.rowEnd = H;
        job.width = W;
        sys.pe(0).loadProgram(genConvPass(job));
        sys.run(50'000'000);
    }, Golden{14448, 7337, 17936303181918984730ull});
}

TEST(HotpathEquivalence, PoolLayer)
{
    const unsigned C = 16, H = 8, W = 12;
    Rng rng(14);
    FeatureMap in(C, H, W);
    for (auto &v : in.data)
        v = static_cast<Fx16>(rng.nextRange(-1000, 1000));

    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = true;

    expectGolden(cfg, [&](VipSystem &sys) {
        FmapDramLayout in_lay(sys.vaultBase(0), C, H, W, 0);
        FmapDramLayout out_lay(in_lay.end() + 64, C, H / 2, W / 2, 0);
        in_lay.upload(in, sys.dram());

        PoolJob job;
        job.in = &in_lay;
        job.out = &out_lay;
        job.rowBegin = 0;
        job.rowEnd = H / 2;
        job.width = W / 2;
        job.chunk = C;
        sys.pe(0).loadProgram(genPool(job));
        sys.run(50'000'000);
    }, Golden{1834, 563, 8116046076812699434ull});
}

TEST(HotpathEquivalence, FcPartialThenAccum)
{
    const unsigned IN = 128, OUT = 64, SEGS = 4;
    Rng rng(16);
    const auto input = randomWeights(IN, rng, 30);
    const auto weights = randomWeights(
        static_cast<std::size_t>(OUT) * IN, rng, 5);
    const auto bias = randomWeights(OUT, rng, 50);

    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;

    expectGolden(cfg, [&](VipSystem &sys) {
        const Addr base = sys.vaultBase(0);
        const Addr w_addr = base;
        const Addr in_addr = w_addr + weights.size() * 2 + 64;
        const Addr bias_addr = in_addr + input.size() * 2 + 64;
        const Addr out_addr = bias_addr + bias.size() * 2 + 64;
        const Addr part_base = out_addr + OUT * 2 + 64;
        const std::uint64_t part_stride = OUT * 2 + 64;
        sys.dram().write(w_addr, weights.data(), weights.size() * 2);
        sys.dram().write(in_addr, input.data(), input.size() * 2);
        sys.dram().write(bias_addr, bias.data(), bias.size() * 2);

        for (unsigned s = 0; s < SEGS; ++s) {
            FcPartialJob job;
            job.weightBase = w_addr;
            job.inputBase = in_addr;
            job.outBase = part_base + s * part_stride;
            job.inputs = IN;
            job.segOffset = s * (IN / SEGS);
            job.segLen = IN / SEGS;
            job.rowBegin = 0;
            job.rowEnd = OUT;
            job.outBlock = 32;
            sys.pe(s).loadProgram(genFcPartial(job));
        }
        sys.run(50'000'000);

        FcAccumJob acc;
        acc.partialBase0 = part_base;
        acc.strideOuter = part_stride;
        acc.countOuter = SEGS;
        acc.strideInner = 0;
        acc.countInner = 1;
        acc.outBase = out_addr;
        acc.biasBase = bias_addr;
        acc.outBegin = 0;
        acc.outEnd = OUT;
        acc.chunk = 32;
        sys.pe(0).loadProgram(genFcAccum(acc));
        sys.run(50'000'000);
       // Cycles re-pinned (3676 -> 3667) with the canonical NoC event
       // order (see BpSweepFourPes); instructions/digest unchanged.
    }, Golden{3667, 3592, 2280018211753887088ull});
}

} // namespace
} // namespace vip
