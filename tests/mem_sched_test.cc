/**
 * @file
 * Focused tests of the vault scheduler's timing behavior: write
 * recovery, bank-level pipelining, FR-FCFS reordering, per-bank tCCD
 * pacing, closed-page row-burst retention, and latency histograms.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/vault.hh"

namespace vip {
namespace {

struct Harness
{
    explicit Harness(const MemConfig &c)
        : cfg(c), mapper(c.geom, c.addrMap), vault(0, c, mapper, nullptr)
    {}

    /** Enqueue a request; records completion time into @p out. */
    void
    issue(Addr addr, unsigned bytes, bool write, Cycles *out)
    {
        auto req = std::make_unique<MemRequest>();
        req->addr = addr;
        req->bytes = bytes;
        req->isWrite = write;
        req->issuedAt = now;
        req->onComplete = [out](MemRequest &r) { *out = r.completedAt; };
        ASSERT_TRUE(vault.enqueue(std::move(req)));
    }

    void
    drain()
    {
        while (!vault.idle() && now < 1'000'000)
            vault.tick(now++);
        ASSERT_TRUE(vault.idle());
    }

    MemConfig cfg;
    AddressMapper mapper;
    VaultController vault;
    Cycles now = 0;
};

MemConfig
oneVault()
{
    MemConfig cfg;
    cfg.geom.vaults = 1;
    return cfg;
}

TEST(VaultSched, WriteRecoveryDelaysRowClose)
{
    // Write to row A, then read row B of the SAME bank: the precharge
    // must wait out tWR after the write's data, so the read completes
    // later than in the read-read case.
    const MemConfig cfg = oneVault();
    const Addr row_a = 0;
    // Next row of the same bank: rows advance above the bank bits.
    const Addr row_b =
        static_cast<Addr>(cfg.geom.rowBytes) * cfg.geom.banksPerVault;
    ASSERT_EQ(AddressMapper(cfg.geom, cfg.addrMap).decode(row_b).bank,
              0u);
    ASSERT_EQ(AddressMapper(cfg.geom, cfg.addrMap).decode(row_b).row, 1u);

    Cycles after_write = 0, after_read = 0;
    {
        Harness h(cfg);
        Cycles w = 0;
        h.issue(row_a, 32, true, &w);
        h.issue(row_b, 32, false, &after_write);
        h.drain();
    }
    {
        Harness h(cfg);
        Cycles r = 0;
        h.issue(row_a, 32, false, &r);
        h.issue(row_b, 32, false, &after_read);
        h.drain();
    }
    EXPECT_GT(after_write, after_read + cfg.timing.tWR / 2);
}

TEST(VaultSched, BankParallelismPipelinesActivates)
{
    // Eight accesses: all to one bank's distinct rows vs spread over
    // eight banks. The spread case must finish much sooner.
    auto run = [&](bool spread) {
        const MemConfig cfg = oneVault();
        Harness h(cfg);
        const Addr bank_stride = cfg.geom.rowBytes;   // next bank
        const Addr row_stride =
            static_cast<Addr>(cfg.geom.rowBytes) * cfg.geom.banksPerVault;
        Cycles done[8] = {};
        for (unsigned i = 0; i < 8; ++i) {
            const Addr addr = spread ? i * bank_stride
                                     : i * row_stride;
            h.issue(addr, 32, false, &done[i]);
        }
        h.drain();
        Cycles last = 0;
        for (Cycles d : done)
            last = std::max(last, d);
        return last;
    };
    const Cycles same_bank = run(false);
    const Cycles spread = run(true);
    EXPECT_LT(spread * 2, same_bank);
}

TEST(VaultSched, FrFcfsServesRowHitsFirst)
{
    // Queue: [row A col 0, row B, row A col 1]. Under FR-FCFS the
    // second row-A access is serviced before row B's activate path
    // finishes, i.e. it completes before the row-B access.
    const MemConfig cfg = oneVault();
    const Addr row_b =
        static_cast<Addr>(cfg.geom.rowBytes) * cfg.geom.banksPerVault;
    Harness h(cfg);
    Cycles a0 = 0, b0 = 0, a1 = 0;
    h.issue(0, 32, false, &a0);
    h.issue(row_b, 32, false, &b0);
    h.issue(32, 32, false, &a1);
    h.drain();
    EXPECT_LT(a0, b0);
    EXPECT_LT(a1, b0) << "row hit should bypass the pending miss";
}

TEST(VaultSched, PerBankCcdAllowsCrossBankStreaming)
{
    // Alternating columns across two banks can issue every tBurst;
    // consecutive columns in one bank are paced by tCCD.
    auto run = [&](bool two_banks) {
        const MemConfig cfg = oneVault();
        Harness h(cfg);
        Cycles done[8] = {};
        for (unsigned i = 0; i < 8; ++i) {
            const Addr addr =
                two_banks
                    ? (i % 2) * cfg.geom.rowBytes + (i / 2) * 32
                    : i * 32;
            h.issue(addr, 32, false, &done[i]);
        }
        h.drain();
        Cycles last = 0;
        for (Cycles d : done)
            last = std::max(last, d);
        return last;
    };
    // With tCCD (7) > tBurst (4), two banks should be faster.
    EXPECT_LT(run(true), run(false));
}

TEST(VaultSched, ClosedPageKeepsRowForQueuedHits)
{
    // Closed-page auto-precharge is suppressed while more queued
    // accesses target the same row: a 128 B request (4 columns) should
    // activate its row exactly once.
    MemConfig cfg = oneVault();
    cfg.pagePolicy = PagePolicy::Closed;
    Harness h(cfg);
    Cycles done = 0;
    h.issue(0, 128, false, &done);
    h.drain();
    EXPECT_EQ(h.vault.stats().rowMisses.value(), 1u);
    EXPECT_EQ(h.vault.stats().colCommands.value(), 4u);
}

TEST(VaultSched, LatencyHistogramTracksCompletions)
{
    const MemConfig cfg = oneVault();
    Harness h(cfg);
    Cycles done[4] = {};
    for (unsigned i = 0; i < 4; ++i)
        h.issue(i * 32, 32, false, &done[i]);
    h.drain();
    const Histogram &hist = h.vault.latencyHistogram();
    EXPECT_EQ(hist.count(), 4u);
    EXPECT_GT(hist.mean(), static_cast<double>(cfg.timing.tCL));
    EXPECT_GE(hist.max(), static_cast<Cycles>(hist.mean()));
}

TEST(VaultSched, ReadsAndWritesShareTheDataBus)
{
    // Mixed traffic still totals correctly.
    const MemConfig cfg = oneVault();
    Harness h(cfg);
    Cycles sink[6] = {};
    for (unsigned i = 0; i < 6; ++i)
        h.issue(i * 64, 64, i % 2 == 0, &sink[i]);
    h.drain();
    EXPECT_EQ(h.vault.stats().writeBytes.value(), 3u * 64);
    EXPECT_EQ(h.vault.stats().readBytes.value(), 3u * 64);
    EXPECT_EQ(h.vault.stats().reqCount.value(), 6u);
}

} // namespace
} // namespace vip
