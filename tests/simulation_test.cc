/**
 * @file
 * Tests for the vip::Simulation facade and the parallel SweepEngine:
 * end-to-end program execution through the fluent API, parallel-vs-
 * serial sweep equivalence, error propagation, configuration helpers,
 * and the JSON statistics dump.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/sweep.hh"
#include "system/simulation.hh"

namespace vip {
namespace {

/// The paper's Fig. 2-style dot product: A . B via m.v.mul.add with
/// one matrix row; result stored as a single 16-bit word.
const char *kDotProduct = R"(
    mov.imm r1, 8
    set.vl r1
    mov.imm r2, 1
    set.mr r2
    mov.imm r10, 0x1000
    mov.imm r11, 0x1100
    mov.imm r12, 0x2000
    mov.imm r20, 0
    mov.imm r21, 64
    mov.imm r22, 128
    ld.sram[16] r20, r10, r1
    ld.sram[16] r21, r11, r1
    m.v.mul.add[16] r22, r20, r21
    v.drain
    st.sram[16] r22, r12, r2
    memfence
    halt
)";

TEST(Simulation, FluentDotProductEndToEnd)
{
    const std::vector<std::int16_t> a = {2, 3, 5, 7, 11, 13, 17, 19};
    const std::vector<std::int16_t> b = {1, 2, 3, 4, 5, 6, 7, 8};
    std::int16_t want = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        want = static_cast<std::int16_t>(want + a[i] * b[i]);

    Simulation sim(makeSystemConfig(1, 1));
    const RunResult result = sim.pokeDram(0x1000, a)
                                 .pokeDram(0x1100, b)
                                 .loadProgram(0, kDotProduct)
                                 .run();

    EXPECT_TRUE(result.haltedCleanly);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.ms(), 0.0);
    // The typed counter map replaces parsing the stats text (which
    // stays debug-only).
    EXPECT_GT(result.counter("system.pe0.instructions"), 0u);
    EXPECT_FALSE(result.counters.empty());
    EXPECT_EQ(result.counter("system.no.such.counter"), 0u);
    EXPECT_EQ(sim.peekDram(0x2000), want);
    EXPECT_EQ(sim.peekDram(0x2000, 1),
              std::vector<std::int16_t>{want});
}

TEST(Simulation, RunResultReportsBudgetExhaustion)
{
    // An empty program never halts; a tiny budget must end the run
    // with haltedCleanly == false.
    Simulation sim(makeSystemConfig(1, 1));
    sim.loadProgram(0, "spin:\n    jmp spin\n");
    const RunResult result = sim.run(64);
    EXPECT_FALSE(result.haltedCleanly);
    EXPECT_GE(result.cycles, 64u);
}

TEST(Simulation, NocDimsForCoversPowersOfTwoRejectsOthers)
{
    const auto check = [](unsigned vaults, unsigned x, unsigned y) {
        const auto d = nocDimsFor(vaults);
        EXPECT_EQ(d.first, x) << vaults << " vaults";
        EXPECT_EQ(d.second, y) << vaults << " vaults";
        EXPECT_EQ(d.first * d.second, vaults);
    };
    check(1, 1, 1);
    check(2, 2, 1);
    check(4, 2, 2);
    check(8, 4, 2);
    check(16, 4, 4);
    check(32, 8, 4);
    check(64, 8, 8);
    // Non-power-of-two (and zero) counts have no mesh mapping; the
    // address interleave requires a power of two anyway, so reject
    // them up front instead of silently degrading to a ring.
    EXPECT_THROW(nocDimsFor(0), ConfigError);
    EXPECT_THROW(nocDimsFor(3), ConfigError);
    EXPECT_THROW(nocDimsFor(6), ConfigError);
    EXPECT_THROW(nocDimsFor(48), ConfigError);
}

TEST(Simulation, MakeSystemConfigMatchesNocDims)
{
    for (const unsigned vaults : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const SystemConfig cfg = makeSystemConfig(vaults, 4);
        EXPECT_EQ(cfg.mem.geom.vaults, vaults);
        EXPECT_EQ(cfg.nocX * cfg.nocY, vaults);
        EXPECT_EQ(cfg.pesPerVault, 4u);
    }
}

/// One independent sweep point: run the dot product on fresh inputs
/// derived from the point index and return the simulated result word.
std::int16_t
dotPoint(std::size_t index)
{
    std::vector<std::int16_t> a, b;
    for (unsigned i = 0; i < 8; ++i) {
        a.push_back(static_cast<std::int16_t>(index + i + 1));
        b.push_back(static_cast<std::int16_t>(2 * i + 1));
    }
    Simulation sim(makeSystemConfig(1, 1));
    sim.pokeDram(0x1000, a).pokeDram(0x1100, b)
        .loadProgram(0, kDotProduct).run();
    return sim.peekDram(0x2000);
}

TEST(SweepEngine, ParallelMatchesSerial)
{
    std::vector<std::function<std::int16_t()>> points;
    for (std::size_t i = 0; i < 12; ++i)
        points.push_back([i] { return dotPoint(i); });

    SweepEngine serial(1);
    const std::vector<std::int16_t> want = serial.run(points);
    ASSERT_EQ(want.size(), points.size());

    SweepEngine pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    EXPECT_EQ(pool.run(points), want);
}

TEST(SweepEngine, ResultsKeyedBySubmissionIndex)
{
    std::vector<std::function<int()>> points;
    for (int i = 0; i < 64; ++i)
        points.push_back([i] { return 1000 + i; });
    SweepEngine engine(3);
    const std::vector<int> results = engine.run(points);
    ASSERT_EQ(results.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(results[i], 1000 + i);
}

TEST(SweepEngine, RethrowsLowestIndexError)
{
    std::vector<std::function<int()>> points;
    for (int i = 0; i < 8; ++i) {
        points.push_back([i]() -> int {
            if (i == 2 || i == 5)
                throw std::runtime_error("point " + std::to_string(i));
            return i;
        });
    }
    SweepEngine engine(2);
    try {
        engine.run(points);
        FAIL() << "expected the sweep to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "point 2");
    }
}

TEST(SweepEngine, JobSeedIsDeterministicAndDistinct)
{
    EXPECT_EQ(jobSeed(7), jobSeed(7));
    EXPECT_NE(jobSeed(0), jobSeed(1));
    EXPECT_NE(jobSeed(1), jobSeed(2));
    EXPECT_NE(jobSeed(3, 1), jobSeed(3, 2));
}

TEST(Stats, DumpJsonSortsKeysAndIsStable)
{
    StatGroup root("root");
    StatGroup zeta("zeta", &root);
    StatGroup alpha("alpha", &root);
    Counter c(&root, "charlie", "third");
    Counter a(&root, "able", "first");
    Counter z(&zeta, "zz", "nested");
    c += 3;
    a += 1;
    z += 9;
    root.addFormula("baker", "in between", [] { return 0.5; });

    std::ostringstream first, second;
    root.dumpJson(first);
    root.dumpJson(second);
    EXPECT_EQ(first.str(), second.str());

    const std::string json = first.str();
    // Keys appear in sorted order regardless of registration order.
    const auto p_able = json.find("\"able\"");
    const auto p_alpha = json.find("\"alpha\"");
    const auto p_baker = json.find("\"baker\"");
    const auto p_charlie = json.find("\"charlie\"");
    const auto p_zeta = json.find("\"zeta\"");
    ASSERT_NE(p_able, std::string::npos);
    ASSERT_NE(p_alpha, std::string::npos);
    ASSERT_NE(p_baker, std::string::npos);
    ASSERT_NE(p_charlie, std::string::npos);
    ASSERT_NE(p_zeta, std::string::npos);
    EXPECT_LT(p_able, p_alpha);
    EXPECT_LT(p_alpha, p_baker);
    EXPECT_LT(p_baker, p_charlie);
    EXPECT_LT(p_charlie, p_zeta);
    EXPECT_NE(json.find("\"charlie\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"baker\": 0.5"), std::string::npos);
    EXPECT_NE(json.find("\"zz\": 9"), std::string::npos);
}

} // namespace
} // namespace vip
