/**
 * @file
 * Island equivalence harness: sharding a run across host threads
 * (cfg.islands > 1, system/partition.hh) must be invisible in every
 * deterministic observable — final cycle count, the complete dumped
 * statistics tree, and the DRAM fingerprint — for any island count,
 * with and without fast-forward, and under an island-local fault
 * campaign. Each scenario drives the same machine serially and with
 * 2 and 4 islands and requires bit-identical results.
 *
 * Scenario limits (the documented divergences, system/partition.hh):
 * no scenario combines NoC faults with cross-island traffic, and the
 * fault campaign keeps every PE inside its own vault — those are the
 * two cases outside the bit-identity contract.
 */

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>

#include "isa/builder.hh"
#include "kernels/bp_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/runner.hh"
#include "sim/fault.hh"
#include "sim/rng.hh"
#include "system/partition.hh"
#include "workloads/mrf.hh"

namespace vip {
namespace {

/** Everything an island cut must not perturb. */
struct Observed
{
    Cycles cycles = 0;
    std::string statsJson;
    std::uint64_t dramDigest = 0;
    FaultStats faults;
};

Observed
observe(SystemConfig cfg, unsigned islands, bool ff,
        const std::function<void(VipSystem &)> &drive)
{
    cfg.islands = islands;
    cfg.fastForward = ff;
    VipSystem sys(cfg);
    drive(sys);
    EXPECT_TRUE(sys.allIdle());
    Observed o;
    o.cycles = sys.now();
    std::ostringstream os;
    sys.stats().dumpJson(os);
    o.statsJson = os.str();
    o.dramDigest = sys.dram().fingerprint();
    if (const FaultInjector *inj = sys.faultInjector())
        o.faults = inj->stats();
    return o;
}

/**
 * The core assertion: for each fast-forward setting, runs at 1, 2,
 * and 4 islands are indistinguishable. The config must be a 16-vault
 * (4x4 torus) machine so 4 divides nocX.
 */
void
expectIslandEquivalent(const SystemConfig &cfg,
                       const std::function<void(VipSystem &)> &drive)
{
    for (const bool ff : {true, false}) {
        const Observed serial = observe(cfg, 1, ff, drive);
        for (const unsigned islands : {2u, 4u}) {
            const Observed cut = observe(cfg, islands, ff, drive);
            EXPECT_EQ(serial.cycles, cut.cycles)
                << "islands=" << islands << " ff=" << ff;
            EXPECT_EQ(serial.statsJson, cut.statsJson)
                << "islands=" << islands << " ff=" << ff;
            EXPECT_EQ(serial.dramDigest, cut.dramDigest)
                << "islands=" << islands << " ff=" << ff;
            EXPECT_EQ(serial.faults.dramBitFlips, cut.faults.dramBitFlips);
            EXPECT_EQ(serial.faults.retentionErrors,
                      cut.faults.retentionErrors);
            EXPECT_EQ(serial.faults.eccCorrected, cut.faults.eccCorrected);
            EXPECT_EQ(serial.faults.eccSilent, cut.faults.eccSilent);
            EXPECT_EQ(serial.faults.spBitFlips, cut.faults.spBitFlips);
        }
    }
}

MrfProblem
makeProblem(unsigned w, unsigned h, unsigned labels, std::uint64_t seed)
{
    Rng rng(seed);
    MrfProblem p;
    p.width = w;
    p.height = h;
    p.labels = labels;
    p.smoothCost = truncatedLinearSmoothness(labels, 3, 12);
    p.dataCost.resize(static_cast<std::size_t>(w) * h * labels);
    for (auto &c : p.dataCost)
        c = static_cast<Fx16>(rng.nextBelow(25));
    return p;
}

/** A small fenced DRAM copy from @p src into @p dst. */
std::vector<Instruction>
copyProgram(Addr src, Addr dst, unsigned chunks)
{
    AsmBuilder b;
    b.movImm(1, 0);
    b.movImm(2, chunks);
    b.movImm(3, static_cast<std::int64_t>(src));
    b.movImm(4, static_cast<std::int64_t>(dst));
    b.movImm(5, 1024);  // chunk stride (bytes)
    b.movImm(6, 512);   // elements per chunk
    b.movImm(7, 0);     // scratchpad buffer
    const auto loop = b.newLabel();
    b.bind(loop);
    b.ldSram(7, 3, 6);
    b.stSram(7, 4, 6);
    b.memfence();
    b.scalar(ScalarOp::Add, 3, 3, 5);
    b.scalar(ScalarOp::Add, 4, 4, 5);
    b.addImm(1, 1, 1);
    b.branch(BranchCond::Lt, 1, 2, loop);
    b.halt();
    return b.finish();
}

TEST(IslandEquivalence, ReplicatedBpAcrossVaults)
{
    // Every vault of a 16-vault machine runs the same 4-PE BP sweep
    // on its own copy of the tile: dense island-local compute on all
    // four columns at once.
    const unsigned W = 12, H = 8, L = 8;
    const MrfProblem problem = makeProblem(W, H, L, 42);
    SystemConfig cfg = makeSystemConfig(16, 4);
    cfg.pe.strictHazards = true;

    auto drive = [&](VipSystem &sys) {
        for (unsigned v = 0; v < 16; ++v) {
            MrfDramLayout layout(sys.vaultBase(v), W, H, L);
            layout.upload(problem, sys.dram());
            const unsigned per = H / 4;
            for (unsigned pe = 0; pe < 4; ++pe) {
                sys.pe(v * 4 + pe).loadProgram(genBpSweep(
                    layout, BpVariant{},
                    BpSweepJob{SweepDir::Right, pe * per,
                               (pe + 1) * per}));
            }
        }
        sys.run(50'000'000);
    };
    expectIslandEquivalent(cfg, drive);

    // Anchor to the serial seed golden: every vault runs the exact
    // scenario hotpath_equivalence_test pins at 2048 cycles on a
    // 1-vault machine, and identical vaults finish together — so the
    // island path is transitively pinned to the same golden.
    EXPECT_EQ(observe(cfg, 4, true, drive).cycles, 2048u);
}

TEST(IslandEquivalence, CrossIslandTraffic)
{
    // Each vault's PE streams a copy out of the vault two torus
    // columns away, so every transfer crosses at least one island
    // boundary at 2 and 4 islands — the mailbox exchange path, not
    // just the local tick loop. Fault-free: cross-island timing with
    // NoC faults is a documented divergence.
    SystemConfig cfg = makeSystemConfig(16, 1);

    expectIslandEquivalent(cfg, [](VipSystem &sys) {
        Rng rng(7);
        for (unsigned v = 0; v < 16; ++v) {
            std::vector<std::int16_t> data(2048);
            for (auto &d : data)
                d = static_cast<std::int16_t>(rng.nextRange(-99, 99));
            sys.dram().write(sys.vaultBase(v), data.data(),
                             data.size() * 2);
        }
        for (unsigned v = 0; v < 16; ++v) {
            const unsigned remote = (v + 8) % 16;
            sys.pe(v).loadProgram(
                copyProgram(sys.vaultBase(remote),
                            sys.vaultBase(v) + (4ull << 20), 4));
        }
        sys.run(50'000'000);
    });
}

TEST(IslandEquivalence, IslandLocalFaultCampaign)
{
    // A vault-tiled copy under a fault campaign whose draws are all
    // keyed by island-local identity (each PE touches only its own
    // vault): the merged fault counters and the scrubbed DRAM image
    // must not depend on the island cut.
    SystemConfig cfg = makeSystemConfig(16, 1);
    cfg.faults = FaultPlan::parse(
        "seed=7,dram-read=1e-3,retention=1e-4,sp-flip=1e-4,ecc=on");

    expectIslandEquivalent(cfg, [](VipSystem &sys) {
        Rng rng(11);
        for (unsigned v = 0; v < 16; ++v) {
            std::vector<std::int16_t> data(4096);
            for (auto &d : data)
                d = static_cast<std::int16_t>(rng.nextRange(-99, 99));
            sys.dram().write(sys.vaultBase(v), data.data(),
                             data.size() * 2);
            sys.pe(v).loadProgram(
                copyProgram(sys.vaultBase(v),
                            sys.vaultBase(v) + (4ull << 20), 8));
        }
        sys.run(50'000'000);
    });

    // The campaign must actually fire for the equivalence above to
    // mean anything.
    Observed o = observe(cfg, 4, true, [](VipSystem &sys) {
        Rng rng(11);
        for (unsigned v = 0; v < 16; ++v) {
            std::vector<std::int16_t> data(4096);
            for (auto &d : data)
                d = static_cast<std::int16_t>(rng.nextRange(-99, 99));
            sys.dram().write(sys.vaultBase(v), data.data(),
                             data.size() * 2);
            sys.pe(v).loadProgram(
                copyProgram(sys.vaultBase(v),
                            sys.vaultBase(v) + (4ull << 20), 8));
        }
        sys.run(50'000'000);
    });
    EXPECT_GT(o.faults.dramBitFlips + o.faults.retentionErrors +
                  o.faults.spBitFlips,
              0u);
}

TEST(IslandEquivalence, IslandCountValidation)
{
    // The column-band partition rejects impossible cuts with the
    // dotted config path in the message, both through the helper and
    // through system construction.
    EXPECT_THROW(validateIslandCount(0, 4), ConfigError);
    EXPECT_THROW(validateIslandCount(3, 4), ConfigError);
    EXPECT_THROW(validateIslandCount(8, 4), ConfigError);
    validateIslandCount(1, 4);
    validateIslandCount(2, 4);
    validateIslandCount(4, 4);

    try {
        validateIslandCount(3, 4);
        FAIL() << "islands = 3 on a 4-wide torus must throw";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("islands"),
                  std::string::npos);
    }

    SystemConfig cfg = makeSystemConfig(16, 1);
    cfg.islands = 3;
    EXPECT_THROW(VipSystem{cfg}, ConfigError);
}

TEST(IslandEquivalence, PartitionShape)
{
    // 4x4 torus, 2 islands: columns {0,1} and {2,3}, row-major node
    // ids (node = y * nocX + x).
    const IslandPartition p = IslandPartition::make(2, 4, 4);
    ASSERT_EQ(p.islands, 2u);
    ASSERT_EQ(p.islandOfNode.size(), 16u);
    for (unsigned n = 0; n < 16; ++n)
        EXPECT_EQ(p.islandOf(n), (n % 4) / 2) << "node " << n;
    ASSERT_EQ(p.nodesOf.size(), 2u);
    EXPECT_EQ(p.nodesOf[0].size() + p.nodesOf[1].size(), 16u);
    // nodesOf is ascending — the fixed merge order.
    for (const auto &nodes : p.nodesOf) {
        for (std::size_t i = 1; i < nodes.size(); ++i)
            EXPECT_LT(nodes[i - 1], nodes[i]);
    }
}

} // namespace
} // namespace vip
