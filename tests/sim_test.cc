/**
 * @file
 * Tests for the simulation substrate: statistics, histograms, the
 * deterministic RNG, logging counters, and type conversions.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/histogram.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vip {
namespace {

TEST(Types, CycleConversions)
{
    EXPECT_EQ(nsToCycles(0.8), 1u);    // tCK
    EXPECT_EQ(nsToCycles(13.75), 18u); // tCL rounds up
    EXPECT_EQ(nsToCycles(27.5), 35u);  // tRAS
    EXPECT_EQ(nsToCycles(1950.0), 2438u);
    EXPECT_NEAR(cyclesToMs(1'250'000), 1.0, 1e-9);
}

TEST(Stats, CountersAndDump)
{
    StatGroup root("root");
    StatGroup child("child", &root);
    Counter a(&root, "a", "counter a");
    Counter b(&child, "b", "counter b");
    a += 5;
    ++a;
    b += 2;
    root.addFormula("ratio", "a per b", [&] {
        return static_cast<double>(a.value()) /
               static_cast<double>(b.value());
    });

    EXPECT_EQ(a.value(), 6u);
    EXPECT_EQ(root.findCounter("a"), &a);
    EXPECT_EQ(root.findCounter("missing"), nullptr);
    EXPECT_DOUBLE_EQ(root.evalFormula("ratio"), 3.0);

    std::ostringstream os;
    root.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("root.a 6 # counter a"), std::string::npos);
    EXPECT_NE(text.find("root.child.b 2 # counter b"),
              std::string::npos);
    EXPECT_NE(text.find("root.ratio 3"), std::string::npos);

    root.resetStats();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(Histogram, BucketsAndPercentiles)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    for (unsigned i = 0; i < 99; ++i)
        h.sample(10);
    h.sample(5000);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.max(), 5000u);
    EXPECT_NEAR(h.mean(), (99 * 10 + 5000) / 100.0, 1e-9);
    // 99% of samples fit under the bucket containing 10.
    EXPECT_LE(h.percentileBound(0.99), 16u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(Rng, DeterministicAndUniform)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng d(42), e(43);
    EXPECT_NE(d.next(), e.next());

    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.nextBelow(10);
        EXPECT_LT(v, 10u);
        const auto s = r.nextRange(-5, 5);
        EXPECT_GE(s, -5);
        EXPECT_LE(s, 5);
        const double f = r.nextDouble();
        EXPECT_GE(f, 0.0);
        EXPECT_LT(f, 1.0);
    }

    // Rough uniformity: each decile of nextBelow(10) within 3x of
    // expectation over 10k draws.
    unsigned hist[10] = {};
    Rng u(11);
    for (int i = 0; i < 10000; ++i)
        ++hist[u.nextBelow(10)];
    for (unsigned dec : hist) {
        EXPECT_GT(dec, 1000u / 3);
        EXPECT_LT(dec, 3000u);
    }
}

TEST(Logging, WarnCounterAdvances)
{
    const auto before = warnCount();
    warn("test warning ", 42);
    EXPECT_EQ(warnCount(), before + 1);
    inform("informational message");
    EXPECT_EQ(warnCount(), before + 1);
}

} // namespace
} // namespace vip
