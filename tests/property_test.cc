/**
 * @file
 * Property-style sweeps: kernel/reference bit-exactness across
 * parameterized shapes, and a random-program fuzzer that exercises the
 * PE's issue logic, interlocks, and memory plumbing with arbitrary
 * (but structurally valid) instruction sequences.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "kernels/bp_kernel.hh"
#include "kernels/conv_kernel.hh"
#include "kernels/fc_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/pool_kernel.hh"
#include "kernels/runner.hh"
#include "sim/rng.hh"
#include "workloads/flow.hh"
#include "workloads/nn.hh"

namespace vip {
namespace {

// --- BP sweeps over grid shapes and label counts ----------------------

struct BpShape
{
    unsigned w, h, labels;
    SweepDir dir;
};

class BpShapeSweep : public ::testing::TestWithParam<BpShape>
{
};

TEST_P(BpShapeSweep, KernelMatchesReference)
{
    const auto [W, H, L, dir] = GetParam();
    Rng rng(W * 131 + H * 17 + L);
    MrfProblem p;
    p.width = W;
    p.height = H;
    p.labels = L;
    p.smoothCost = truncatedLinearSmoothness(L, 2, 9);
    p.dataCost.resize(static_cast<std::size_t>(W) * H * L);
    for (auto &c : p.dataCost)
        c = static_cast<Fx16>(rng.nextBelow(30));

    BpState ref(p);
    switch (dir) {
      case SweepDir::Right: ref.sweepRight(); break;
      case SweepDir::Left: ref.sweepLeft(); break;
      case SweepDir::Down: ref.sweepDown(); break;
      case SweepDir::Up: ref.sweepUp(); break;
    }

    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    MrfDramLayout layout(sys.vaultBase(0), W, H, L);
    layout.upload(p, sys.dram());
    const bool vertical = dir == SweepDir::Down || dir == SweepDir::Up;
    sys.pe(0).loadProgram(genBpSweep(
        layout, BpVariant{}, BpSweepJob{dir, 0, vertical ? W : H}));
    sys.run(50'000'000);
    ASSERT_TRUE(sys.allIdle());

    BpState got(p);
    layout.downloadMessages(got, sys.dram());
    for (unsigned d = 0; d < NumMsgDirs; ++d) {
        for (unsigned y = 0; y < H; ++y) {
            for (unsigned x = 0; x < W; ++x) {
                for (unsigned l = 0; l < L; ++l) {
                    ASSERT_EQ(ref.msgAt(static_cast<MsgDir>(d), x, y)[l],
                              got.msgAt(static_cast<MsgDir>(d), x, y)[l])
                        << W << "x" << H << " L" << L;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BpShapeSweep,
    ::testing::Values(BpShape{6, 5, 2, SweepDir::Right},
                      BpShape{5, 9, 4, SweepDir::Down},
                      BpShape{17, 3, 8, SweepDir::Left},
                      BpShape{3, 13, 16, SweepDir::Up},
                      BpShape{9, 9, 9, SweepDir::Right},   // odd L
                      BpShape{2, 2, 16, SweepDir::Down},   // minimal
                      BpShape{31, 2, 5, SweepDir::Left},
                      BpShape{2, 33, 12, SweepDir::Up}));

// --- Convolution shapes ------------------------------------------------

struct ConvShape
{
    unsigned c, oc, h, w, f;  // channels, filters, fmap, group size
};

class ConvShapeSweep : public ::testing::TestWithParam<ConvShape>
{
};

TEST_P(ConvShapeSweep, KernelMatchesReference)
{
    const auto [C, OC, H, W, F] = GetParam();
    Rng rng(C * 7 + OC * 5 + H + W);
    FeatureMap in(C, H, W);
    for (auto &v : in.data)
        v = static_cast<Fx16>(rng.nextRange(-12, 12));
    const auto filters = randomWeights(
        static_cast<std::size_t>(OC) * C * 9, rng, 3);
    const auto bias = randomWeights(OC, rng, 15);
    const FeatureMap want = convLayerVip(in, filters, bias, OC, 3, C);

    for (bool col_major : {false, true}) {
        SystemConfig cfg = makeSystemConfig(1, 1);
        cfg.pe.strictHazards = true;
        VipSystem sys(cfg);
        FmapDramLayout in_lay(sys.vaultBase(0), C, H, W, 1, col_major);
        FmapDramLayout out_lay(in_lay.end() + 4096, OC, H, W, 0,
                               col_major);
        const Addr filt = out_lay.end() + 4096;
        Addr cursor = filt;
        for (unsigned g = 0; g < OC / F; ++g) {
            const auto blob = packFilters(filters, C, 3, g * F, F, 0, C);
            sys.dram().write(cursor, blob.data(), blob.size() * 2);
            cursor += blob.size() * 2;
        }
        const Addr bias_addr = cursor + 64;
        sys.dram().write(bias_addr, bias.data(), bias.size() * 2);
        in_lay.upload(in, sys.dram());

        ConvJob job;
        job.in = &in_lay;
        job.out = &out_lay;
        job.filterBlob = filt;
        job.biasBlob = bias_addr;
        job.zShard = C;
        job.filters = F;
        job.groups = OC / F;
        job.rowBegin = 0;
        job.rowEnd = H;
        job.width = W;
        sys.pe(0).loadProgram(genConvPass(job));
        sys.run(100'000'000);
        ASSERT_TRUE(sys.allIdle());
        EXPECT_EQ(want.data, out_lay.download(sys.dram()).data)
            << "col_major=" << col_major;
        EXPECT_EQ(sys.pe(0).stats().timingHazards.value(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvShapeSweep,
    ::testing::Values(ConvShape{4, 4, 5, 6, 2},
                      ConvShape{8, 8, 4, 9, 4},
                      ConvShape{3, 32, 4, 6, 16},   // c1_1-like
                      ConvShape{16, 2, 7, 5, 2},
                      ConvShape{8, 12, 3, 8, 4},    // uneven groups? 12/4=3
                      ConvShape{2, 6, 6, 4, 6}));

// --- Pooling shapes -----------------------------------------------------

struct PoolShape
{
    unsigned c, h, w, chunk;
};

class PoolShapeSweep : public ::testing::TestWithParam<PoolShape>
{
};

TEST_P(PoolShapeSweep, KernelMatchesReference)
{
    const auto [C, H, W, chunk] = GetParam();
    Rng rng(C + H * 3 + W * 11);
    FeatureMap in(C, H, W);
    for (auto &v : in.data)
        v = static_cast<Fx16>(rng.nextRange(-30000, 30000));
    const FeatureMap want = maxPool(in, 2);

    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    FmapDramLayout in_lay(sys.vaultBase(0), C, H, W, 0);
    FmapDramLayout out_lay(in_lay.end() + 4096, C, H / 2, W / 2, 0);
    in_lay.upload(in, sys.dram());

    PoolJob job;
    job.in = &in_lay;
    job.out = &out_lay;
    job.rowBegin = 0;
    job.rowEnd = H / 2;
    job.width = W / 2;
    job.chunk = chunk;
    sys.pe(0).loadProgram(genPool(job));
    sys.run(50'000'000);
    ASSERT_TRUE(sys.allIdle());
    EXPECT_EQ(want.data, out_lay.download(sys.dram()).data);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PoolShapeSweep,
                         ::testing::Values(PoolShape{4, 4, 4, 4},
                                           PoolShape{8, 6, 10, 2},
                                           PoolShape{64, 4, 8, 64},
                                           PoolShape{6, 8, 6, 3},
                                           PoolShape{512, 2, 4, 256}));

// --- FC shapes ----------------------------------------------------------

struct FcShape
{
    unsigned in, out, block;
};

class FcShapeSweep : public ::testing::TestWithParam<FcShape>
{
};

TEST_P(FcShapeSweep, KernelMatchesReference)
{
    const auto [IN, OUT, OB] = GetParam();
    Rng rng(IN + OUT * 3);
    const auto input = randomWeights(IN, rng, 25);
    const auto weights = randomWeights(
        static_cast<std::size_t>(OUT) * IN, rng, 4);
    const auto bias = randomWeights(OUT, rng, 40);
    const auto want = fcLayerSegmented(input, weights, bias, OUT, 1);

    SystemConfig cfg = makeSystemConfig(1, 1);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    const Addr base = sys.vaultBase(0);
    const Addr w_addr = base;
    const Addr in_addr = w_addr + weights.size() * 2 + 64;
    const Addr bias_addr = in_addr + input.size() * 2 + 64;
    const Addr out_addr = bias_addr + bias.size() * 2 + 64;
    sys.dram().write(w_addr, weights.data(), weights.size() * 2);
    sys.dram().write(in_addr, input.data(), input.size() * 2);
    sys.dram().write(bias_addr, bias.data(), bias.size() * 2);

    FcPartialJob job;
    job.weightBase = w_addr;
    job.inputBase = in_addr;
    job.outBase = out_addr;
    job.biasBase = bias_addr;
    job.inputs = IN;
    job.segLen = IN;
    job.rowBegin = 0;
    job.rowEnd = OUT;
    job.outBlock = OB;
    job.finalize = true;
    sys.pe(0).loadProgram(genFcPartial(job));
    sys.run(50'000'000);
    ASSERT_TRUE(sys.allIdle());

    std::vector<Fx16> got(OUT);
    sys.dram().read(out_addr, got.data(), got.size() * 2);
    EXPECT_EQ(want, got);
}

INSTANTIATE_TEST_SUITE_P(Shapes, FcShapeSweep,
                         ::testing::Values(FcShape{16, 8, 8},
                                           FcShape{100, 32, 16},
                                           FcShape{33, 64, 64},
                                           FcShape{512, 16, 8},
                                           FcShape{7, 128, 32}));

// --- Random-program fuzzing --------------------------------------------

/**
 * Generate a structurally valid random program: bounded scratchpad
 * ranges, in-range DRAM addresses, forward-only branches, and a
 * terminal halt. The machine must never panic and must reach the halt.
 */
std::vector<Instruction>
randomProgram(Rng &rng, Addr dram_base)
{
    AsmBuilder b;
    // r1..r8: scratchpad bases (vector operands fit below 4096).
    for (unsigned r = 1; r <= 8; ++r)
        b.movImm(r, 64 * r + rng.nextBelow(32) * 2);
    // r10: DRAM base; r11: element count; r12: VL candidates.
    b.movImm(10, static_cast<std::int64_t>(dram_base +
                                           rng.nextBelow(1 << 16)));
    b.movImm(11, 1 + rng.nextBelow(16));
    b.movImm(12, 1 + rng.nextBelow(16));
    b.movImm(13, 1 + rng.nextBelow(8));
    b.setVl(12);
    b.setMr(13);

    const unsigned body = 20 + static_cast<unsigned>(rng.nextBelow(60));
    std::vector<std::pair<AsmBuilder::Label, unsigned>> pending;
    for (unsigned i = 0; i < body; ++i) {
        // Resolve any forward branch that lands here.
        for (auto it = pending.begin(); it != pending.end();) {
            if (it->second == i) {
                b.bind(it->first);
                it = pending.erase(it);
            } else {
                ++it;
            }
        }
        const auto sp_reg = [&] {
            return 1 + static_cast<unsigned>(rng.nextBelow(8));
        };
        switch (rng.nextBelow(10)) {
          case 0:
            b.vv(static_cast<VecOp>(rng.nextBelow(5)), sp_reg(),
                 sp_reg(), sp_reg());
            break;
          case 1:
            b.vs(static_cast<VecOp>(rng.nextBelow(5)), sp_reg(),
                 sp_reg(), 11);
            break;
          case 2:
            // Matrix fits: MR(<=8) * VL(<=16) * 2 <= 256 from base r1.
            b.mv(static_cast<VecOp>(rng.nextBelow(6)),
                 static_cast<RedOp>(rng.nextBelow(3)), sp_reg(), 1,
                 sp_reg());
            break;
          case 3:
            b.ldSram(sp_reg(), 10, 11);
            break;
          case 4:
            b.stSram(sp_reg(), 10, 11);
            break;
          case 5:
            b.scalar(static_cast<ScalarOp>(rng.nextBelow(8)),
                     40 + rng.nextBelow(8), 11,
                     40 + rng.nextBelow(8));
            break;
          case 6:
            b.scalarImm(static_cast<ScalarOp>(rng.nextBelow(8)),
                        40 + rng.nextBelow(8), 11,
                        static_cast<std::int64_t>(rng.nextBelow(64)));
            break;
          case 7: {
            // Forward branch over a small window.
            const auto target = b.newLabel();
            pending.emplace_back(
                target, i + 1 + static_cast<unsigned>(rng.nextBelow(5)));
            b.branch(static_cast<BranchCond>(rng.nextBelow(4)),
                     40 + rng.nextBelow(8), 41, target);
            break;
          }
          case 8:
            b.memfence();
            break;
          case 9:
            b.vdrain();
            break;
        }
    }
    // Bind any labels that point past the body.
    for (auto &[label, at] : pending)
        b.bind(label);
    b.memfence();
    b.halt();
    return b.finish();
}

TEST(Fuzz, RandomProgramsRunToCompletion)
{
    Rng rng(20260704);
    for (unsigned trial = 0; trial < 60; ++trial) {
        SystemConfig cfg = makeSystemConfig(1, 2);
        VipSystem sys(cfg);
        sys.pe(0).loadProgram(randomProgram(rng, sys.vaultBase(0)));
        sys.pe(1).loadProgram(randomProgram(rng, sys.vaultBase(0)));
        sys.run(2'000'000);
        EXPECT_TRUE(sys.allIdle()) << "trial " << trial;
        EXPECT_TRUE(sys.pe(0).halted());
        EXPECT_TRUE(sys.pe(1).halted());
    }
}

TEST(Fuzz, RandomProgramsSurviveEncodingRoundTrip)
{
    Rng rng(99887766);
    for (unsigned trial = 0; trial < 40; ++trial) {
        const auto prog = randomProgram(rng, 0);
        const auto back = decodeProgram(encodeProgram(prog));
        ASSERT_EQ(back.size(), prog.size());
        for (std::size_t i = 0; i < prog.size(); ++i)
            EXPECT_EQ(encode(back[i]), encode(prog[i]));
    }
}

// --- Optical flow end to end -------------------------------------------

TEST(OpticalFlow, KernelRecoversMotionBitExact)
{
    Rng rng(5);
    const FlowPair pair = makeSyntheticFlow(24, 16, 1, rng);
    MrfProblem mrf = flowMrf(pair, 20, 5, 20);

    BpState ref(mrf);
    ref.iterate();
    ref.iterate();

    SystemConfig cfg = makeSystemConfig(1, 4);
    cfg.pe.strictHazards = true;
    VipSystem sys(cfg);
    MrfDramLayout layout(sys.vaultBase(0), 24, 16, mrf.labels);
    layout.upload(mrf, sys.dram());
    const Addr flags = layout.end() + 64;
    for (unsigned pe = 0; pe < 4; ++pe) {
        auto slice = [&](unsigned lanes) {
            const unsigned per = (lanes + 3) / 4;
            const unsigned b2 = std::min(lanes, pe * per);
            return std::make_pair(b2, std::min(lanes, b2 + per));
        };
        const auto [hb, he] = slice(16u);
        const auto [vb, ve] = slice(24u);
        BpSweepJob jobs[4] = {{SweepDir::Right, hb, he},
                              {SweepDir::Left, hb, he},
                              {SweepDir::Down, vb, ve},
                              {SweepDir::Up, vb, ve}};
        sys.pe(pe).loadProgram(
            genBpIterations(layout, BpVariant{}, jobs, 2, flags, pe, 4));
    }
    sys.run(100'000'000);
    ASSERT_TRUE(sys.allIdle());

    BpState got(mrf);
    layout.downloadMessages(got, sys.dram());
    const auto labels = got.decode();
    EXPECT_EQ(ref.decode(), labels);
    EXPECT_GT(flowAccuracy(pair, labels), 0.7);
}

} // namespace
} // namespace vip
