/**
 * @file
 * Unit and property tests for the VIP ISA: assembler syntax (the full
 * Table II surface), error reporting, disassembler round trips, and
 * the binary encoding.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/builder.hh"
#include "isa/isa.hh"
#include "sim/rng.hh"

namespace vip {
namespace {

Instruction
assembleOne(const std::string &line)
{
    const auto prog = assemble(line);
    EXPECT_EQ(prog.size(), 1u) << line;
    return prog.at(0);
}

TEST(Assembler, VectorInstructions)
{
    Instruction i = assembleOne("m.v.add.min[16] r10, r15, r11");
    EXPECT_EQ(i.op, Opcode::MatVec);
    EXPECT_EQ(i.vop, VecOp::Add);
    EXPECT_EQ(i.rop, RedOp::Min);
    EXPECT_EQ(i.width, ElemWidth::W16);
    EXPECT_EQ(i.rd, 10);
    EXPECT_EQ(i.rs1, 15);
    EXPECT_EQ(i.rs2, 11);

    i = assembleOne("m.v.nop.max[8] r1, r2, r3");
    EXPECT_EQ(i.vop, VecOp::Nop);
    EXPECT_EQ(i.rop, RedOp::Max);
    EXPECT_EQ(i.width, ElemWidth::W8);

    i = assembleOne("v.v.mul[32] r4, r5, r6");
    EXPECT_EQ(i.op, Opcode::VecVec);
    EXPECT_EQ(i.vop, VecOp::Mul);
    EXPECT_EQ(i.width, ElemWidth::W32);

    i = assembleOne("v.s.max[64] r7, r8, r9");
    EXPECT_EQ(i.op, Opcode::VecScalar);
    EXPECT_EQ(i.vop, VecOp::Max);
    EXPECT_EQ(i.width, ElemWidth::W64);

    // The paper's verbose width tag.
    i = assembleOne("v.v.add[16-bit] r1, r2, r3");
    EXPECT_EQ(i.width, ElemWidth::W16);

    // Default width is 16 bit.
    i = assembleOne("v.v.sub r1, r2, r3");
    EXPECT_EQ(i.width, ElemWidth::W16);
    EXPECT_EQ(i.vop, VecOp::Sub);
}

TEST(Assembler, ConfigInstructions)
{
    EXPECT_EQ(assembleOne("set.vl r61").op, Opcode::SetVl);
    EXPECT_EQ(assembleOne("set.mr r3").op, Opcode::SetMr);
    EXPECT_EQ(assembleOne("v.drain").op, Opcode::VDrain);
}

TEST(Assembler, ScalarInstructions)
{
    Instruction i = assembleOne("add r3, r1, r2");
    EXPECT_EQ(i.op, Opcode::ScalarRR);
    EXPECT_EQ(i.sop, ScalarOp::Add);

    i = assembleOne("sra.imm r3, r1, 5");
    EXPECT_EQ(i.op, Opcode::ScalarRI);
    EXPECT_EQ(i.sop, ScalarOp::Sra);
    EXPECT_EQ(i.imm, 5);

    i = assembleOne("xor r1, r1, r1");
    EXPECT_EQ(i.sop, ScalarOp::Xor);

    i = assembleOne("mov r5, r6");
    EXPECT_EQ(i.op, Opcode::Mov);

    i = assembleOne("mov.imm r5, -0x10");
    EXPECT_EQ(i.op, Opcode::MovImm);
    EXPECT_EQ(i.imm, -16);
}

TEST(Assembler, LoadStoreInstructions)
{
    Instruction i = assembleOne("ld.sram[16] r11, r7, r61");
    EXPECT_EQ(i.op, Opcode::LdSram);
    i = assembleOne("st.sram[16] r10, r14, r61");
    EXPECT_EQ(i.op, Opcode::StSram);
    i = assembleOne("ld.reg[64] r1, r2");
    EXPECT_EQ(i.op, Opcode::LdReg);
    EXPECT_EQ(i.width, ElemWidth::W64);
    i = assembleOne("st.reg[16] r1, r2");
    EXPECT_EQ(i.op, Opcode::StReg);
    EXPECT_EQ(assembleOne("memfence").op, Opcode::Memfence);
}

TEST(Assembler, LabelsAndBranches)
{
    const auto prog = assemble(R"(
start:
    mov.imm r1, 0
loop:   add.imm r1, r1, 1
    blt r1, r2, loop
    bge r1, r3, start
    beq r1, r4, end
    bne r1, r5, 2
    jmp start
end:
    halt
)");
    ASSERT_EQ(prog.size(), 8u);
    EXPECT_EQ(prog[1].op, Opcode::ScalarRI);  // loop: is index 1
    EXPECT_EQ(prog[2].op, Opcode::Branch);
    EXPECT_EQ(prog[2].cond, BranchCond::Lt);
    EXPECT_EQ(prog[2].imm, 1);
    EXPECT_EQ(prog[3].cond, BranchCond::Ge);
    EXPECT_EQ(prog[3].imm, 0);
    EXPECT_EQ(prog[4].imm, 7);  // forward reference to end:
    EXPECT_EQ(prog[5].imm, 2);  // numeric absolute target
    EXPECT_EQ(prog[6].op, Opcode::Jmp);
    EXPECT_EQ(prog[7].op, Opcode::Halt);
}

TEST(Assembler, CommentsAndWhitespace)
{
    const auto prog = assemble(
        "  nop ; trailing comment\n"
        "# full-line comment\n"
        "   \n"
        "halt # another\n");
    ASSERT_EQ(prog.size(), 2u);
    EXPECT_EQ(prog[0].op, Opcode::Nop);
    EXPECT_EQ(prog[1].op, Opcode::Halt);
}

struct ErrorCase
{
    const char *source;
    const char *fragment;  ///< expected substring of the message
};

class AssemblerErrors : public ::testing::TestWithParam<ErrorCase>
{
};

TEST_P(AssemblerErrors, Reported)
{
    AssemblyError err;
    const auto prog = assemble(GetParam().source, &err);
    EXPECT_TRUE(prog.empty());
    EXPECT_NE(err.message.find(GetParam().fragment), std::string::npos)
        << "message was: " << err.message;
}

INSTANTIATE_TEST_SUITE_P(
    Syntax, AssemblerErrors,
    ::testing::Values(
        ErrorCase{"frob r1, r2", "unknown mnemonic"},
        ErrorCase{"add r1, r2", "expected 3 operands"},
        ErrorCase{"add r1, r2, r99", "bad register"},
        ErrorCase{"add r1, r2, x3", "bad register"},
        ErrorCase{"mov.imm r1, zzz", "bad immediate"},
        ErrorCase{"blt r1, r2, nowhere\nhalt", "undefined label"},
        ErrorCase{"a:\na:\nhalt", "duplicate label"},
        ErrorCase{"v.v.add[13] r1, r2, r3", "bad width tag"},
        ErrorCase{"v.v.nop r1, r2, r3", "bad vector operator"},
        ErrorCase{"m.v.add.mul r1, r2, r3", "composition"},
        ErrorCase{"set.pc r1", "unknown config register"}));

TEST(Assembler, RejectsOversizedPrograms)
{
    std::string src;
    for (unsigned i = 0; i < kInstBufferEntries + 1; ++i)
        src += "nop\n";
    AssemblyError err;
    EXPECT_TRUE(assemble(src, &err).empty());
    EXPECT_NE(err.message.find("instruction buffer"), std::string::npos);
}

TEST(Encoding, RoundTripsRandomInstructions)
{
    Rng rng(99);
    std::vector<Instruction> prog;
    for (unsigned n = 0; n < 500; ++n) {
        Instruction i;
        i.op = static_cast<Opcode>(rng.nextBelow(
            static_cast<unsigned>(Opcode::Nop) + 1));
        i.width = static_cast<ElemWidth>(1u << rng.nextBelow(4));
        i.vop = static_cast<VecOp>(rng.nextBelow(6));
        i.rop = static_cast<RedOp>(rng.nextBelow(3));
        i.sop = static_cast<ScalarOp>(rng.nextBelow(8));
        i.cond = static_cast<BranchCond>(rng.nextBelow(4));
        i.rd = static_cast<std::uint8_t>(rng.nextBelow(64));
        i.rs1 = static_cast<std::uint8_t>(rng.nextBelow(64));
        i.rs2 = static_cast<std::uint8_t>(rng.nextBelow(64));
        i.imm = rng.nextRange(-(1 << 24), (1 << 24));
        if (i.op == Opcode::MovImm && rng.nextBelow(2) == 0) {
            // Exercise the two-word wide-immediate form.
            i.imm = static_cast<std::int64_t>(rng.next());
            i.rs2 = 0;
        }
        prog.push_back(i);
    }
    const auto words = encodeProgram(prog);
    const auto back = decodeProgram(words);
    ASSERT_EQ(back.size(), prog.size());
    for (std::size_t n = 0; n < prog.size(); ++n) {
        EXPECT_EQ(back[n].op, prog[n].op) << n;
        EXPECT_EQ(back[n].width, prog[n].width) << n;
        EXPECT_EQ(back[n].rd, prog[n].rd) << n;
        EXPECT_EQ(back[n].rs1, prog[n].rs1) << n;
        EXPECT_EQ(back[n].imm, prog[n].imm) << n;
    }
}

TEST(Disassembler, RoundTripsThroughAssembler)
{
    // Disassembled text (for non-branch instructions) reassembles to
    // the same instruction.
    const char *lines[] = {
        "set.vl r61",          "set.mr r3",
        "v.drain",             "m.v.add.min[16] r10, r15, r11",
        "m.v.mul.add[16] r1, r2, r3",
        "v.v.add[16] r11, r11, r12",
        "v.s.mul[8] r4, r5, r6",
        "add r3, r1, r2",      "sll.imm r3, r1, 4",
        "mov r5, r6",          "mov.imm r5, 1000",
        "ld.sram[16] r11, r7, r61",
        "st.sram[16] r10, r14, r61",
        "ld.reg[64] r1, r2",   "st.reg[16] r1, r2",
        "memfence",            "halt",
        "nop",
    };
    for (const char *line : lines) {
        const Instruction first = assembleOne(line);
        const Instruction second = assembleOne(disassemble(first));
        EXPECT_EQ(encode(second), encode(first)) << line;
    }
}

TEST(Builder, MatchesAssembler)
{
    AsmBuilder b;
    const auto loop = b.newLabel();
    b.movImm(1, 0);
    b.bind(loop);
    b.addImm(1, 1, 1);
    b.vv(VecOp::Add, 11, 11, 12);
    b.mv(VecOp::Add, RedOp::Min, 10, 15, 11);
    b.branch(BranchCond::Lt, 1, 2, loop);
    b.halt();
    const auto built = b.finish();

    const auto assembled = assemble(R"(
    mov.imm r1, 0
loop:
    add.imm r1, r1, 1
    v.v.add[16] r11, r11, r12
    m.v.add.min[16] r10, r15, r11
    blt r1, r2, loop
    halt
)");
    ASSERT_EQ(built.size(), assembled.size());
    for (std::size_t i = 0; i < built.size(); ++i)
        EXPECT_EQ(encode(built[i]), encode(assembled[i])) << i;
}

TEST(Builder, ForwardLabels)
{
    AsmBuilder b;
    const auto end = b.newLabel();
    b.jmp(end);
    b.nop();
    b.bind(end);
    b.halt();
    const auto prog = b.finish();
    EXPECT_EQ(prog[0].imm, 2);
}

} // namespace
} // namespace vip
