/**
 * @file
 * Unit tests for the 2D torus NoC: routing distances, the
 * 3-cycles-per-hop latency model, per-link serialization, contention,
 * wraparound, and the intra-vault star lanes.
 */

#include <gtest/gtest.h>

#include "noc/torus.hh"

namespace vip {
namespace {

Cycles
deliverOne(TorusNoc &noc, unsigned src, unsigned dst, unsigned bytes,
           unsigned src_lane = 4, unsigned dst_lane = 4)
{
    Cycles delivered = 0;
    Packet p;
    p.src = src;
    p.dst = dst;
    p.payloadBytes = bytes;
    p.srcLane = src_lane;
    p.dstLane = dst_lane;
    p.onArrive = [&](Packet &pkt) { delivered = pkt.deliveredAt; };
    noc.send(std::move(p), 0);
    Cycles now = 0;
    while (delivered == 0 && now < 10000)
        noc.tick(now++);
    return delivered;
}

TEST(Torus, HopCountsWithWraparound)
{
    TorusNoc noc(8, 4);
    EXPECT_EQ(noc.hopCount(0, 0), 0u);
    EXPECT_EQ(noc.hopCount(0, 1), 1u);
    EXPECT_EQ(noc.hopCount(0, 7), 1u);   // x wraps: 7 is one hop left
    EXPECT_EQ(noc.hopCount(0, 4), 4u);   // halfway around the x ring
    EXPECT_EQ(noc.hopCount(0, 8), 1u);   // one hop in y
    EXPECT_EQ(noc.hopCount(0, 24), 1u);  // y wraps
    EXPECT_EQ(noc.hopCount(0, 12), 5u);  // 4 in x + 1 in y
    // Symmetry.
    for (unsigned a = 0; a < 32; a += 5) {
        for (unsigned b = 0; b < 32; b += 3)
            EXPECT_EQ(noc.hopCount(a, b), noc.hopCount(b, a));
    }
}

TEST(Torus, LatencyFormulaSinglePacket)
{
    TorusNoc noc(8, 4);
    // Latency = inject ser + hops * (3 + ser) + eject ser, with
    // ser = ceil((payload + 8) / 8).
    for (unsigned payload : {0u, 32u, 256u}) {
        const Cycles ser = (payload + 8 + 7) / 8;
        for (unsigned dst : {0u, 1u, 12u}) {
            TorusNoc fresh(8, 4);
            const unsigned hops = fresh.hopCount(0, dst);
            const Cycles want = ser + hops * (3 + ser) + ser;
            EXPECT_EQ(deliverOne(fresh, 0, dst, payload), want)
                << "payload " << payload << " dst " << dst;
        }
    }
}

TEST(Torus, ContentionSerializesSharedLinks)
{
    // Two same-size packets over the same route: the second's delivery
    // trails by at least one serialization unit.
    TorusNoc noc(8, 4);
    Cycles first = 0, second = 0;
    for (int i = 0; i < 2; ++i) {
        Packet p;
        p.src = 0;
        p.dst = 2;
        p.payloadBytes = 64;
        p.onArrive = [&, i](Packet &pkt) {
            (i == 0 ? first : second) = pkt.deliveredAt;
        };
        noc.send(std::move(p), 0);
    }
    Cycles now = 0;
    while (second == 0 && now < 10000)
        noc.tick(now++);
    const Cycles ser = (64 + 8) / 8;
    EXPECT_GE(second, first + ser);
}

TEST(Torus, StarLanesDoNotContend)
{
    // Packets injected by different PEs of the same vault use private
    // star links: both arrive with single-packet latency.
    TorusNoc noc(8, 4);
    Cycles t[2] = {0, 0};
    for (unsigned lane = 0; lane < 2; ++lane) {
        Packet p;
        p.src = 0;
        p.dst = 0;
        p.payloadBytes = 64;
        p.srcLane = lane;
        p.dstLane = 4;
        p.onArrive = [&, lane](Packet &pkt) {
            t[lane] = pkt.deliveredAt;
        };
        noc.send(std::move(p), 0);
    }
    Cycles now = 0;
    while ((t[0] == 0 || t[1] == 0) && now < 10000)
        noc.tick(now++);
    // Both share only the ejection lane (the vault controller's), so
    // the second trails by exactly one ejection serialization.
    const Cycles ser = (64 + 8) / 8;
    EXPECT_EQ(std::min(t[0], t[1]), 2 * ser);
    EXPECT_EQ(std::max(t[0], t[1]), 3 * ser);
}

TEST(Torus, ManyPacketsAllDelivered)
{
    TorusNoc noc(8, 4);
    unsigned delivered = 0;
    Cycles now = 0;
    for (unsigned src = 0; src < 32; ++src) {
        for (unsigned dst = 0; dst < 32; ++dst) {
            Packet p;
            p.src = src;
            p.dst = dst;
            p.payloadBytes = 32;
            p.onArrive = [&](Packet &) { ++delivered; };
            noc.send(std::move(p), now);
        }
    }
    while (!noc.idle() && now < 100000)
        noc.tick(now++);
    EXPECT_EQ(delivered, 32u * 32u);
    EXPECT_EQ(noc.delivered(), 32u * 32u);
    EXPECT_GT(noc.avgLatency(), 0.0);
}

TEST(Torus, DimensionOrderRoutingIsMinimal)
{
    // Every delivery time respects the minimal-hop lower bound.
    for (unsigned dst = 1; dst < 32; dst += 3) {
        TorusNoc noc(8, 4);
        const Cycles t = deliverOne(noc, 5, dst, 0);
        const Cycles ser = 1;
        EXPECT_GE(t, noc.hopCount(5, dst) * (3 + ser)) << dst;
    }
}

} // namespace
} // namespace vip
