/**
 * @file
 * Tests of the analytical models: roofline geometry, the paper's
 * normalization arithmetic, the GPU BP-M model's calibration, and the
 * area/power model's agreement with the Sec. VII synthesis numbers.
 */

#include <gtest/gtest.h>

#include "kernels/bp_kernel.hh"
#include "kernels/layout.hh"
#include "kernels/runner.hh"
#include "model/baselines.hh"
#include "model/gpu_model.hh"
#include "model/power.hh"
#include "isa/builder.hh"
#include "model/roofline.hh"

namespace vip {
namespace {

TEST(Roofline, VipPeaksMatchThePaper)
{
    const Roofline roof = vipRoofline();
    // 1,280 GOp/s at 16-bit (Sec. III) and 320 GB/s.
    EXPECT_NEAR(roof.peakGops, 1280.0, 1.0);
    EXPECT_NEAR(roof.peakBandwidthGBs, 320.0, 0.1);
    EXPECT_NEAR(roof.knee(), 4.0, 0.1);
    // Memory-bound region slopes up; compute-bound region is flat.
    EXPECT_NEAR(roof.attainable(1.0), 320.0, 0.5);
    EXPECT_NEAR(roof.attainable(100.0), 1280.0, 0.5);
}

TEST(Roofline, PointArithmetic)
{
    const RooflinePoint p = makePoint("x", 1000, 500, 125);
    EXPECT_NEAR(p.opsPerByte, 2.0, 1e-9);
    // 1000 ops in 125 cycles at 1.25 GHz = 10 GOp/s.
    EXPECT_NEAR(p.gops, 10.0, 1e-6);
}

TEST(Baselines, EyerissNormalizationMatchesPaperNarrative)
{
    // The paper: after area, technology, and clock scaling, VIP's
    // 91.6 ms is "less than 10% worse" than Eyeriss' 4,309 ms.
    const double scaled = eyerissScaledTimeMs(4309.0);
    EXPECT_GT(scaled, 80.0);
    EXPECT_LT(scaled, 105.0);
    EXPECT_LT(std::abs(91.6 - scaled) / scaled, 0.12);
}

TEST(Baselines, VoltaAreaRatioIsAbout250x)
{
    const double ratio = areaRatioVsVip(815.0, 12.0);
    EXPECT_GT(ratio, 220.0);
    EXPECT_LT(ratio, 270.0);
}

TEST(Baselines, TableIvRowsPresent)
{
    const auto rows = tableIvBaselines();
    EXPECT_EQ(rows.size(), 7u);
    unsigned mrf = 0;
    for (const auto &r : rows) {
        if (r.workload == "MRF")
            ++mrf;
    }
    EXPECT_EQ(mrf, 3u);
}

TEST(GpuModel, CalibratedToTheMeasuredIteration)
{
    const GpuBpEstimate e = gpuBpIteration(1920, 1080, 16);
    EXPECT_NEAR(e.iterationMs, 11.5, 0.4);
    // The paper's profiling: latency-limited, not throughput-limited.
    EXPECT_GT(e.latencyBoundFraction, 0.9);
}

TEST(GpuModel, LargerProblemsBecomeThroughputBound)
{
    // With far more parallel work per step, the floor stops binding.
    const GpuBpEstimate big = gpuBpIteration(1920, 16384, 64);
    EXPECT_LT(big.latencyBoundFraction, 1.0);
}

TEST(GpuModel, ScalesWithProblemSize)
{
    const double fhd = gpuBpIteration(1920, 1080, 16).iterationMs;
    const double qhd = gpuBpIteration(960, 540, 16).iterationMs;
    EXPECT_GT(fhd, qhd);
    EXPECT_NEAR(fhd / qhd, 2.0, 0.3);  // steps halve, floor dominates
}

TEST(Power, AreaBreakdownSumsToSynthesis)
{
    const PeAreaBreakdown area;
    EXPECT_NEAR(area.total(), 0.141, 0.002);
    EXPECT_NEAR(128 * area.total(), 18.0, 0.3);
}

TEST(Power, ActivityModelReproducesSynthesisRange)
{
    const PePowerModel model;

    // BP kernel on one PE.
    SystemConfig cfg = makeSystemConfig(1, 1);
    VipSystem bp_sys(cfg);
    MrfDramLayout layout(bp_sys.vaultBase(0), 64, 32, 16);
    bp_sys.pe(0).loadProgram(genBpSweep(
        layout, BpVariant{},
        BpSweepJob{SweepDir::Right, 0, 32}));
    const Cycles bp_cycles = bp_sys.run();
    const double bp_w = model.peWatts(bp_sys.pe(0).stats(), bp_cycles,
                                      0.0);
    EXPECT_GT(bp_w, 0.018);
    EXPECT_LT(bp_w, 0.036);  // paper: 27 mW

    // An idle PE burns only leakage.
    EXPECT_NEAR(model.peWatts(Pe::Stats{}, 0, 0.0) * 1e3,
                model.staticW * 1e3, 1e-9);

    const ArrayPowerSummary s = arrayPowerSummary(bp_w, bp_w * 1.4);
    EXPECT_GT(s.bpWatts, 2.0);
    EXPECT_LT(s.cnnWatts, 6.5);  // paper: 3.5 - 4.8 W
    EXPECT_NEAR(s.hmcProtoWatts, 25.6, 0.1);
}

TEST(Power, MultipliesCostMoreThanAdds)
{
    const PePowerModel model;
    Pe::Stats fake{};
    // Counters can't be set directly; drive two tiny sims instead —
    // the mul_fraction parameter is the lever.
    SystemConfig cfg = makeSystemConfig(1, 1);
    VipSystem sys(cfg);
    AsmBuilder b;
    b.movImm(1, 64);
    b.setVl(1);
    b.movImm(2, 0);
    b.movImm(3, 256);
    for (int i = 0; i < 16; ++i)
        b.vv(VecOp::Add, 3, 2, 2);
    b.halt();
    sys.pe(0).loadProgram(b.finish());
    const Cycles c = sys.run();
    const double as_adds = model.peWatts(sys.pe(0).stats(), c, 0.0);
    const double as_muls = model.peWatts(sys.pe(0).stats(), c, 1.0);
    EXPECT_GT(as_muls, as_adds);
    (void)fake;
}

} // namespace
} // namespace vip
