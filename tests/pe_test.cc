/**
 * @file
 * Unit and property tests for the PE microarchitecture: scalar
 * semantics, subword vector semantics with saturation, the composed
 * matrix-vector operations, ARC interlocking, valid-bit stalls,
 * memfence, v.drain, and the hazard checker.
 */

#include <gtest/gtest.h>

#include <limits>

#include "isa/builder.hh"
#include "kernels/runner.hh"
#include "sim/rng.hh"
#include "system/system.hh"
#include "workloads/fixed.hh"

namespace vip {
namespace {

/** One-PE fixture with direct scratchpad access. */
class PeTest : public ::testing::Test
{
  protected:
    PeTest() : sys_(makeConfig()) {}

    static SystemConfig
    makeConfig()
    {
        SystemConfig cfg = makeSystemConfig(1, 1);
        cfg.pe.strictHazards = false;
        return cfg;
    }

    Pe &pe() { return sys_.pe(0); }

    /** Run a program to completion; returns cycles simulated. */
    Cycles
    run(const std::vector<Instruction> &prog)
    {
        sys_.pe(0).loadProgram(prog);
        const Cycles start = sys_.now();
        sys_.run(10'000'000);
        EXPECT_TRUE(sys_.allIdle());
        return sys_.now() - start;
    }

    VipSystem sys_;
};

TEST_F(PeTest, ScalarAluSemantics)
{
    AsmBuilder b;
    b.movImm(1, 100);
    b.movImm(2, -7);
    b.scalar(ScalarOp::Add, 10, 1, 2);
    b.scalar(ScalarOp::Sub, 11, 1, 2);
    b.movImm(3, 3);
    b.scalar(ScalarOp::Sll, 12, 1, 3);
    b.scalarImm(ScalarOp::Srl, 13, 2, 1);
    b.scalarImm(ScalarOp::Sra, 14, 2, 1);
    b.scalarImm(ScalarOp::And, 15, 1, 0x6);
    b.scalarImm(ScalarOp::Or, 16, 1, 0x3);
    b.scalarImm(ScalarOp::Xor, 17, 1, 0xff);
    b.mov(18, 2);
    b.halt();
    run(b.finish());

    EXPECT_EQ(pe().reg(10), 93u);
    EXPECT_EQ(pe().reg(11), 107u);
    EXPECT_EQ(pe().reg(12), 800u);
    EXPECT_EQ(pe().reg(13), static_cast<std::uint64_t>(-7) >> 1);
    EXPECT_EQ(static_cast<std::int64_t>(pe().reg(14)), -4);
    EXPECT_EQ(pe().reg(15), 100u & 0x6);
    EXPECT_EQ(pe().reg(16), 100u | 0x3);
    EXPECT_EQ(pe().reg(17), 100u ^ 0xff);
    EXPECT_EQ(static_cast<std::int64_t>(pe().reg(18)), -7);
}

TEST_F(PeTest, BranchConditionsAreSigned)
{
    AsmBuilder b;
    b.movImm(1, -5);
    b.movImm(2, 3);
    b.movImm(10, 0);
    const auto skip = b.newLabel();
    b.branch(BranchCond::Lt, 1, 2, skip);  // -5 < 3: taken
    b.movImm(10, 1);                       // skipped
    b.bind(skip);
    b.movImm(11, 0);
    const auto skip2 = b.newLabel();
    b.branch(BranchCond::Ge, 1, 2, skip2); // -5 >= 3: not taken
    b.movImm(11, 1);
    b.bind(skip2);
    b.halt();
    run(b.finish());
    EXPECT_EQ(pe().reg(10), 0u);
    EXPECT_EQ(pe().reg(11), 1u);
}

struct VecCase
{
    VecOp op;
    ElemWidth width;
};

class VecVecSemantics : public ::testing::TestWithParam<VecCase>
{
};

TEST_P(VecVecSemantics, MatchesScalarModel)
{
    const auto [op, width] = GetParam();
    const unsigned w = widthBytes(width);
    const unsigned vl = 16 / w * 3;  // odd multiple of the lane count

    SystemConfig cfg = makeSystemConfig(1, 1);
    VipSystem sys(cfg);
    Pe &pe = sys.pe(0);

    Rng rng(static_cast<unsigned>(op) * 16 + w);
    std::vector<std::int64_t> a(vl), c(vl);
    for (unsigned i = 0; i < vl; ++i) {
        a[i] = rng.nextRange(-1000, 1000);
        c[i] = rng.nextRange(-1000, 1000);
        // Write operands directly into the scratchpad.
        const std::int64_t av = a[i], cv = c[i];
        switch (width) {
          case ElemWidth::W8:
            pe.scratchpad().store<std::int8_t>(0 + i * w,
                                               static_cast<std::int8_t>(
                                                   av % 100));
            pe.scratchpad().store<std::int8_t>(512 + i * w,
                                               static_cast<std::int8_t>(
                                                   cv % 100));
            a[i] = static_cast<std::int8_t>(av % 100);
            c[i] = static_cast<std::int8_t>(cv % 100);
            break;
          case ElemWidth::W16:
            pe.scratchpad().store<std::int16_t>(0 + i * w,
                                                static_cast<std::int16_t>(
                                                    av));
            pe.scratchpad().store<std::int16_t>(512 + i * w,
                                                static_cast<std::int16_t>(
                                                    cv));
            break;
          case ElemWidth::W32:
            pe.scratchpad().store<std::int32_t>(0 + i * w,
                                                static_cast<std::int32_t>(
                                                    av));
            pe.scratchpad().store<std::int32_t>(512 + i * w,
                                                static_cast<std::int32_t>(
                                                    cv));
            break;
          case ElemWidth::W64:
            pe.scratchpad().store<std::int64_t>(0 + i * w, av);
            pe.scratchpad().store<std::int64_t>(512 + i * w, cv);
            break;
        }
    }

    AsmBuilder b;
    b.movImm(1, vl);
    b.setVl(1);
    b.movImm(2, 1024);  // dst
    b.movImm(3, 0);     // src a
    b.movImm(4, 512);   // src b
    b.vv(op, 2, 3, 4, width);
    b.halt();
    pe.loadProgram(b.finish());
    sys.run(1'000'000);
    ASSERT_TRUE(sys.allIdle());

    for (unsigned i = 0; i < vl; ++i) {
        std::int64_t want = 0;
        switch (op) {
          case VecOp::Mul: want = a[i] * c[i]; break;
          case VecOp::Add: want = a[i] + c[i]; break;
          case VecOp::Sub: want = a[i] - c[i]; break;
          case VecOp::Min: want = std::min(a[i], c[i]); break;
          case VecOp::Max: want = std::max(a[i], c[i]); break;
          case VecOp::Nop: want = a[i]; break;
        }
        std::int64_t got = 0;
        switch (width) {
          case ElemWidth::W8:
            want = std::clamp<std::int64_t>(want, INT8_MIN, INT8_MAX);
            got = pe.scratchpad().load<std::int8_t>(1024 + i * w);
            break;
          case ElemWidth::W16:
            want = std::clamp<std::int64_t>(want, INT16_MIN, INT16_MAX);
            got = pe.scratchpad().load<std::int16_t>(1024 + i * w);
            break;
          case ElemWidth::W32:
            want = std::clamp<std::int64_t>(want, INT32_MIN, INT32_MAX);
            got = pe.scratchpad().load<std::int32_t>(1024 + i * w);
            break;
          case ElemWidth::W64:
            got = pe.scratchpad().load<std::int64_t>(1024 + i * w);
            break;
        }
        EXPECT_EQ(got, want) << "lane " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAndWidths, VecVecSemantics,
    ::testing::Values(VecCase{VecOp::Add, ElemWidth::W8},
                      VecCase{VecOp::Add, ElemWidth::W16},
                      VecCase{VecOp::Add, ElemWidth::W32},
                      VecCase{VecOp::Add, ElemWidth::W64},
                      VecCase{VecOp::Sub, ElemWidth::W16},
                      VecCase{VecOp::Mul, ElemWidth::W16},
                      VecCase{VecOp::Mul, ElemWidth::W32},
                      VecCase{VecOp::Min, ElemWidth::W16},
                      VecCase{VecOp::Max, ElemWidth::W8},
                      VecCase{VecOp::Max, ElemWidth::W64}));

struct MvCase
{
    VecOp vop;
    RedOp rop;
};

class MatVecSemantics : public ::testing::TestWithParam<MvCase>
{
};

TEST_P(MatVecSemantics, MatchesScalarModel)
{
    const auto [vop, rop] = GetParam();
    const unsigned mr = 5, vl = 7;

    SystemConfig cfg = makeSystemConfig(1, 1);
    VipSystem sys(cfg);
    Pe &pe = sys.pe(0);

    Rng rng(static_cast<unsigned>(vop) * 3 + static_cast<unsigned>(rop));
    std::vector<Fx16> mat(mr * vl), vec(vl);
    for (auto &m : mat)
        m = static_cast<Fx16>(rng.nextRange(-500, 500));
    for (auto &v : vec)
        v = static_cast<Fx16>(rng.nextRange(-500, 500));
    for (unsigned i = 0; i < mat.size(); ++i)
        pe.scratchpad().store<Fx16>(0 + i * 2, mat[i]);
    for (unsigned i = 0; i < vl; ++i)
        pe.scratchpad().store<Fx16>(512 + i * 2, vec[i]);

    AsmBuilder b;
    b.movImm(1, vl);
    b.setVl(1);
    b.movImm(2, mr);
    b.setMr(2);
    b.movImm(3, 1024);  // dst
    b.movImm(4, 0);     // matrix
    b.movImm(5, 512);   // vector
    b.mv(vop, rop, 3, 4, 5);
    b.halt();
    pe.loadProgram(b.finish());
    sys.run(1'000'000);
    ASSERT_TRUE(sys.allIdle());

    for (unsigned r = 0; r < mr; ++r) {
        std::int64_t acc = rop == RedOp::Add
                               ? 0
                               : (rop == RedOp::Min
                                      ? std::numeric_limits<
                                            std::int64_t>::max()
                                      : std::numeric_limits<
                                            std::int64_t>::min());
        for (unsigned i = 0; i < vl; ++i) {
            std::int64_t e = 0;
            const std::int64_t m = mat[r * vl + i], v = vec[i];
            switch (vop) {
              case VecOp::Mul: e = m * v; break;
              case VecOp::Add: e = m + v; break;
              case VecOp::Sub: e = m - v; break;
              case VecOp::Min: e = std::min(m, v); break;
              case VecOp::Max: e = std::max(m, v); break;
              case VecOp::Nop: e = m; break;
            }
            switch (rop) {
              case RedOp::Add: acc += e; break;
              case RedOp::Min: acc = std::min(acc, e); break;
              case RedOp::Max: acc = std::max(acc, e); break;
            }
        }
        EXPECT_EQ(pe.scratchpad().load<Fx16>(1024 + r * 2), sat16(acc))
            << "row " << r;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Compositions, MatVecSemantics,
    ::testing::Values(MvCase{VecOp::Add, RedOp::Min},    // BP update
                      MvCase{VecOp::Mul, RedOp::Add},    // dot product
                      MvCase{VecOp::Add, RedOp::Add},
                      MvCase{VecOp::Sub, RedOp::Max},
                      MvCase{VecOp::Min, RedOp::Min},
                      MvCase{VecOp::Max, RedOp::Add},
                      MvCase{VecOp::Nop, RedOp::Min},    // row minimum
                      MvCase{VecOp::Nop, RedOp::Add}));  // row sum

TEST_F(PeTest, SaturationAtElementWidth)
{
    // 30000 + 30000 saturates int16 to 32767 (the dynamic-fixed-point
    // writeback rule).
    pe().scratchpad().store<Fx16>(0, 30000);
    pe().scratchpad().store<Fx16>(32, 30000);
    pe().scratchpad().store<Fx16>(2, -30000);
    pe().scratchpad().store<Fx16>(34, -30000);
    AsmBuilder b;
    b.movImm(1, 2);
    b.setVl(1);
    b.movImm(2, 64);
    b.movImm(3, 0);
    b.movImm(4, 32);
    b.vv(VecOp::Add, 2, 3, 4);
    b.halt();
    run(b.finish());
    EXPECT_EQ(pe().scratchpad().load<Fx16>(64), 32767);
    EXPECT_EQ(pe().scratchpad().load<Fx16>(66), -32768);
}

TEST_F(PeTest, LdRegClearsValidBitUntilCompletion)
{
    sys_.dram().store<std::int64_t>(512, 4242);
    AsmBuilder b;
    b.movImm(1, 512);
    b.ldReg(2, 1, ElemWidth::W64);
    b.mov(3, 2);  // must stall until the load completes
    b.halt();
    const Cycles cycles = run(b.finish());
    EXPECT_EQ(pe().reg(3), 4242u);
    // The round trip through vault timing takes tens of cycles.
    EXPECT_GT(cycles, 40u);
    EXPECT_GT(pe().stats().stallScalar.value(), 10u);
}

TEST_F(PeTest, LdRegSignExtends)
{
    sys_.dram().store<std::int16_t>(512, -5);
    AsmBuilder b;
    b.movImm(1, 512);
    b.ldReg(2, 1, ElemWidth::W16);
    b.halt();
    run(b.finish());
    EXPECT_EQ(static_cast<std::int64_t>(pe().reg(2)), -5);
}

TEST_F(PeTest, ArcInterlocksUseBeforeLoad)
{
    for (unsigned i = 0; i < 8; ++i)
        sys_.dram().store<Fx16>(1024 + i * 2, static_cast<Fx16>(i + 1));
    AsmBuilder b;
    b.movImm(1, 8);
    b.setVl(1);
    b.movImm(2, 0);     // sp dst of load
    b.movImm(3, 1024);  // dram
    b.ldSram(2, 3, 1);
    b.movImm(4, 64);    // result
    // Consume immediately: the ARC must stall this until data lands.
    b.vv(VecOp::Add, 4, 2, 2);
    b.halt();
    run(b.finish());
    EXPECT_GT(pe().stats().stallArc.value(), 5u);
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_EQ(pe().scratchpad().load<Fx16>(64 + i * 2),
                  2 * static_cast<int>(i + 1));
    }
    // Correctly interlocked code is not a timing hazard.
    EXPECT_EQ(pe().stats().timingHazards.value(), 0u);
}

TEST_F(PeTest, BackToBackAddsChainLegally)
{
    // Classic vector chaining: a dependent add issued right as the
    // producer's occupancy clears never outruns the data (the paper's
    // Fig. 2 relies on this).
    AsmBuilder b;
    b.movImm(1, 16);
    b.setVl(1);
    b.movImm(2, 0);
    b.movImm(3, 64);
    b.movImm(4, 128);
    b.vv(VecOp::Add, 3, 2, 2);
    b.vv(VecOp::Add, 4, 3, 3);
    b.halt();
    run(b.finish());
    EXPECT_EQ(pe().stats().timingHazards.value(), 0u);
}

TEST_F(PeTest, HazardCheckerFlagsUnscheduledUse)
{
    // A short multiply (4-stage pipe, 1 cycle of streaming) followed
    // immediately by a consumer IS a hazard: the consumer's first
    // element is read before the producer's pipeline drains.
    AsmBuilder b;
    b.movImm(1, 4);
    b.setVl(1);
    b.movImm(2, 0);
    b.movImm(3, 64);
    b.movImm(4, 128);
    b.vv(VecOp::Mul, 3, 2, 2);  // writes sp[64..72) at issue+4
    b.vv(VecOp::Add, 4, 3, 3);  // reads it at issue+1
    b.halt();
    run(b.finish());
    EXPECT_GT(pe().stats().timingHazards.value(), 0u);
    // The conservative fence removes the hazard.
    AsmBuilder b2;
    b2.movImm(1, 4);
    b2.setVl(1);
    b2.movImm(2, 0);
    b2.movImm(3, 64);
    b2.movImm(4, 128);
    b2.vv(VecOp::Mul, 3, 2, 2);
    b2.vdrain();
    b2.vv(VecOp::Add, 4, 3, 3);
    b2.halt();
    SystemConfig cfg = makeConfig();
    VipSystem fresh(cfg);
    fresh.pe(0).loadProgram(b2.finish());
    fresh.run(1'000'000);
    EXPECT_EQ(fresh.pe(0).stats().timingHazards.value(), 0u);
}

TEST_F(PeTest, MemfenceWaitsForOutstandingStores)
{
    AsmBuilder b;
    b.movImm(1, 4);
    b.setVl(1);
    b.movImm(2, 0);
    b.movImm(3, 2048);
    b.stSram(2, 3, 1);
    b.memfence();
    b.halt();
    const Cycles cycles = run(b.finish());
    EXPECT_GT(pe().stats().stallFence.value(), 5u);
    EXPECT_GT(cycles, 30u);
}

TEST_F(PeTest, VDrainWaitsForVectorPipe)
{
    AsmBuilder b;
    b.movImm(1, 256);
    b.setVl(1);
    b.movImm(2, 0);
    b.movImm(3, 1024);
    b.vv(VecOp::Add, 3, 2, 2);  // 256 elements: 64 cycles of streaming
    b.vdrain();
    b.halt();
    run(b.finish());
    EXPECT_GT(pe().stats().stallDrain.value(), 30u);
}

TEST_F(PeTest, VectorOpsCountMatchesPaperFormula)
{
    // One BP message update: 3 v.v.adds (3L) + m.v (2L^2) = 3L + 2L^2.
    const unsigned L = 16;
    AsmBuilder b;
    b.movImm(1, L);
    b.setVl(1);
    b.setMr(1);
    b.movImm(2, 0);
    b.movImm(3, 64);
    b.movImm(4, 128);
    b.movImm(5, 1024);  // smoothness "matrix"
    for (int i = 0; i < 3; ++i)
        b.vv(VecOp::Add, 2, 3, 4);
    b.mv(VecOp::Add, RedOp::Min, 2, 5, 3);
    b.halt();
    run(b.finish());
    EXPECT_EQ(pe().vectorOps(), 3 * L + 2 * L * L);
}

TEST_F(PeTest, InOrderIssueOneInstructionPerCycle)
{
    // 100 independent scalar adds take at least 100 cycles.
    AsmBuilder b;
    b.movImm(1, 1);
    for (unsigned i = 0; i < 100; ++i)
        b.scalar(ScalarOp::Add, 2 + (i % 8), 1, 1);
    b.halt();
    const Cycles cycles = run(b.finish());
    EXPECT_GE(cycles, 101u);
    EXPECT_EQ(pe().stats().instructions.value(), 102u);
}

TEST_F(PeTest, StSramRoundTripsToDram)
{
    for (unsigned i = 0; i < 4; ++i)
        pe().scratchpad().store<Fx16>(i * 2, static_cast<Fx16>(100 + i));
    AsmBuilder b;
    b.movImm(1, 4);
    b.movImm(2, 0);
    b.movImm(3, 4096);
    b.stSram(2, 3, 1);
    b.memfence();
    b.halt();
    run(b.finish());
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(sys_.dram().load<Fx16>(4096 + i * 2),
                  static_cast<Fx16>(100 + i));
    }
}

} // namespace
} // namespace vip
