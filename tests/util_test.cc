/**
 * @file
 * Small utilities: the shift-add constant multiplier the kernel
 * generators use (the ISA has no scalar multiply), the runner's NoC
 * grid selection, the PE trace hook, and the NoC latency histogram.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "kernels/emit_util.hh"
#include "kernels/runner.hh"
#include "noc/torus.hh"

namespace vip {
namespace {

TEST(EmitMulConst, ComputesProductsWithoutMultiplier)
{
    for (std::uint64_t c : {0ull, 1ull, 2ull, 3ull, 5ull, 18ull, 96ull,
                            384ull, 1152ull, 65535ull}) {
        SystemConfig cfg = makeSystemConfig(1, 1);
        VipSystem sys(cfg);
        AsmBuilder b;
        b.movImm(1, 37);  // src
        emitMulConst(b, 2, 1, c, 3);
        b.halt();
        sys.pe(0).loadProgram(b.finish());
        sys.run(100000);
        ASSERT_TRUE(sys.allIdle());
        EXPECT_EQ(sys.pe(0).reg(2), 37ull * c) << "c=" << c;
    }
}

TEST(EmitMulConst, CostMatchesPopcount)
{
    EXPECT_EQ(mulConstCost(0), 1u);
    EXPECT_EQ(mulConstCost(8), 1u);    // one shift
    EXPECT_EQ(mulConstCost(6), 3u);    // shift, shift, add
    EXPECT_EQ(mulConstCost(0xff), 15u);
}

TEST(Runner, NocGridsMatchVaultCounts)
{
    EXPECT_EQ(nocDimsFor(1), (std::pair<unsigned, unsigned>{1, 1}));
    EXPECT_EQ(nocDimsFor(4), (std::pair<unsigned, unsigned>{2, 2}));
    EXPECT_EQ(nocDimsFor(32), (std::pair<unsigned, unsigned>{8, 4}));
    for (unsigned v : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const auto [x, y] = nocDimsFor(v);
        EXPECT_EQ(x * y, v);
    }
}

TEST(Tracer, FiresOncePerIssuedInstruction)
{
    SystemConfig cfg = makeSystemConfig(1, 1);
    VipSystem sys(cfg);
    AsmBuilder b;
    b.movImm(1, 0);
    b.movImm(2, 5);
    const auto loop = b.newLabel();
    b.bind(loop);
    b.addImm(1, 1, 1);
    b.branch(BranchCond::Lt, 1, 2, loop);
    b.halt();

    std::vector<std::pair<std::size_t, Opcode>> trace;
    sys.pe(0).setTracer([&](Cycles, std::size_t pc,
                            const Instruction &inst) {
        trace.emplace_back(pc, inst.op);
    });
    sys.pe(0).loadProgram(b.finish());
    sys.run(100000);
    ASSERT_TRUE(sys.allIdle());

    // 2 movs + 5 * (add + branch) + halt.
    EXPECT_EQ(trace.size(), 2u + 10u + 1u);
    EXPECT_EQ(trace.front().second, Opcode::MovImm);
    EXPECT_EQ(trace.back().second, Opcode::Halt);
    EXPECT_EQ(trace[2].first, 2u);  // the loop body starts at pc 2
}

TEST(NocHistogram, RecordsPacketLatencies)
{
    TorusNoc noc(4, 2);
    unsigned done = 0;
    for (unsigned d = 0; d < 8; ++d) {
        Packet p;
        p.src = 0;
        p.dst = d;
        p.payloadBytes = 16;
        p.onArrive = [&](Packet &) { ++done; };
        noc.send(std::move(p), 0);
    }
    Cycles now = 0;
    while (done < 8 && now < 10000)
        noc.tick(now++);
    EXPECT_EQ(noc.latencyHistogram().count(), 8u);
    EXPECT_GT(noc.latencyHistogram().mean(), 0.0);
    EXPECT_GE(noc.latencyHistogram().max(),
              static_cast<Cycles>(noc.avgLatency()));
}

} // namespace
} // namespace vip
