/**
 * @file
 * Integration tests of the full machine: request routing across
 * vaults, vault locality, the software synchronization idioms
 * (full/empty flags, barriers), and system-level accounting.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "kernels/runner.hh"
#include "kernels/sync.hh"
#include "workloads/fixed.hh"
#include "system/system.hh"

namespace vip {
namespace {

TEST(System, FullMachineShape)
{
    SystemConfig cfg = makeSystemConfig(32, 4);
    VipSystem sys(cfg);
    EXPECT_EQ(sys.numPes(), 128u);
    EXPECT_EQ(sys.hmc().numVaults(), 32u);
    EXPECT_EQ(sys.vaultOf(0), 0u);
    EXPECT_EQ(sys.vaultOf(127), 31u);
    EXPECT_EQ(sys.hmc().config().geom.capacity(), 8ull << 30);
}

TEST(System, RemoteAccessCostsMoreThanLocal)
{
    SystemConfig cfg = makeSystemConfig(32, 4);
    VipSystem sys(cfg);

    auto timed_load = [&](unsigned pe, Addr addr) {
        AsmBuilder b;
        b.movImm(1, static_cast<std::int64_t>(addr));
        b.ldReg(2, 1, ElemWidth::W64);
        b.mov(3, 2);  // forces a wait for the valid bit
        b.halt();
        sys.pe(pe).loadProgram(b.finish());
        const Cycles start = sys.now();
        sys.run(1'000'000);
        EXPECT_TRUE(sys.allIdle());
        return sys.now() - start;
    };

    const Cycles local = timed_load(0, sys.vaultBase(0) + 64);
    // Vault 4 is 4 torus hops from vault 0 on the 8x4 grid.
    const Cycles remote = timed_load(0, sys.vaultBase(4) + 64);
    EXPECT_GT(remote, local + 8)
        << "round trip must include torus hops both ways";
}

TEST(System, ProducerConsumerThroughFullEmptyFlags)
{
    SystemConfig cfg = makeSystemConfig(1, 2);
    VipSystem sys(cfg);
    const Addr data = sys.vaultBase(0) + 4096;
    const Addr flag = sys.vaultBase(0) + 8192;

    // Producer: write 8 values, fence, signal.
    {
        AsmBuilder b;
        for (unsigned i = 0; i < 8; ++i)
            sys.pe(0).scratchpad().store<Fx16>(i * 2,
                                               static_cast<Fx16>(i * 3));
        b.movImm(1, 8);
        b.movImm(2, 0);
        b.movImm(3, static_cast<std::int64_t>(data));
        b.stSram(2, 3, 1);
        emitSignal(b, flag, 1, SyncRegs{10, 11, 12});
        b.halt();
        sys.pe(0).loadProgram(b.finish());
    }
    // Consumer: wait, then read into its scratchpad.
    {
        AsmBuilder b;
        emitWaitGe(b, flag, 1, SyncRegs{10, 11, 12});
        b.movImm(1, 8);
        b.movImm(2, 0);
        b.movImm(3, static_cast<std::int64_t>(data));
        b.ldSram(2, 3, 1);
        b.memfence();
        b.halt();
        sys.pe(1).loadProgram(b.finish());
    }
    sys.run(1'000'000);
    ASSERT_TRUE(sys.allIdle());
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_EQ(sys.pe(1).scratchpad().load<Fx16>(i * 2),
                  static_cast<Fx16>(i * 3));
    }
}

TEST(System, BarrierSynchronizesAllPes)
{
    // Each PE writes its arrival stamp, barriers, then reads every
    // other PE's stamp; all stamps must be visible after the barrier.
    SystemConfig cfg = makeSystemConfig(1, 4);
    VipSystem sys(cfg);
    const unsigned n = 4;
    const Addr stamps = sys.vaultBase(0) + 4096;
    const Addr flags = sys.vaultBase(0) + 8192;

    for (unsigned pe = 0; pe < n; ++pe) {
        AsmBuilder b;
        // Delay PEs by different amounts.
        b.movImm(1, 0);
        b.movImm(2, 50 * (pe + 1));
        const auto spin = b.newLabel();
        b.bind(spin);
        b.addImm(1, 1, 1);
        b.branch(BranchCond::Lt, 1, 2, spin);
        // Publish our stamp.
        b.movImm(3, static_cast<std::int64_t>(stamps + pe * 8));
        b.movImm(4, 1000 + pe);
        b.stReg(4, 3, ElemWidth::W64);
        b.movImm(30, 0);  // generation register
        emitBarrier(b, flags, pe, n, SyncRegs{30, 31, 32});
        // Read all stamps into r40..r43.
        for (unsigned j = 0; j < n; ++j) {
            b.movImm(3, static_cast<std::int64_t>(stamps + j * 8));
            b.ldReg(40 + j, 3, ElemWidth::W64);
        }
        b.memfence();
        b.halt();
        sys.pe(pe).loadProgram(b.finish());
    }
    sys.run(5'000'000);
    ASSERT_TRUE(sys.allIdle());
    for (unsigned pe = 0; pe < n; ++pe) {
        for (unsigned j = 0; j < n; ++j)
            EXPECT_EQ(sys.pe(pe).reg(40 + j), 1000 + j)
                << "pe " << pe << " stamp " << j;
    }
}

TEST(System, ReusableBarrierAcrossGenerations)
{
    // Two PEs alternately increment a shared counter across three
    // barrier generations; interleaving must be strict.
    SystemConfig cfg = makeSystemConfig(1, 2);
    VipSystem sys(cfg);
    const Addr flags = sys.vaultBase(0) + 8192;
    const Addr counter = sys.vaultBase(0) + 4096;

    for (unsigned pe = 0; pe < 2; ++pe) {
        AsmBuilder b;
        b.movImm(30, 0);
        for (unsigned round = 0; round < 3; ++round) {
            if (round % 2 == pe) {
                // This PE increments in this round.
                b.movImm(1, static_cast<std::int64_t>(counter));
                b.ldReg(2, 1, ElemWidth::W64);
                b.addImm(2, 2, 1);
                b.stReg(2, 1, ElemWidth::W64);
            }
            emitBarrier(b, flags, pe, 2, SyncRegs{30, 31, 32});
        }
        b.memfence();
        b.halt();
        sys.pe(pe).loadProgram(b.finish());
    }
    sys.run(5'000'000);
    ASSERT_TRUE(sys.allIdle());
    EXPECT_EQ(sys.dram().load<std::uint64_t>(counter), 3u);
}

TEST(System, RunStopsAtDeadline)
{
    SystemConfig cfg = makeSystemConfig(1, 1);
    VipSystem sys(cfg);
    AsmBuilder b;
    b.movImm(1, 0);
    b.movImm(2, 1);
    const auto spin = b.newLabel();
    b.bind(spin);
    b.branch(BranchCond::Lt, 1, 2, spin);  // spins forever
    b.halt();
    sys.pe(0).loadProgram(b.finish());
    const Cycles simulated = sys.run(5000);
    EXPECT_EQ(simulated, 5000u);
    EXPECT_FALSE(sys.allIdle());
}

TEST(System, BandwidthAndGopsAccounting)
{
    SystemConfig cfg = makeSystemConfig(1, 1);
    VipSystem sys(cfg);
    AsmBuilder b;
    b.movImm(1, 512);  // elements
    b.movImm(2, 0);
    b.movImm(3, static_cast<std::int64_t>(sys.vaultBase(0)));
    b.ldSram(2, 3, 1);
    b.movImm(4, 16);
    b.setVl(4);
    b.movImm(5, 2048);
    b.vv(VecOp::Add, 5, 2, 2);
    b.memfence();
    b.halt();
    sys.pe(0).loadProgram(b.finish());
    sys.run(1'000'000);
    ASSERT_TRUE(sys.allIdle());
    EXPECT_EQ(sys.totalVectorOps(), 16u);
    EXPECT_EQ(sys.hmc().totalBytesMoved(), 1024u);
    EXPECT_GT(sys.achievedBandwidthGBs(), 0.0);
    EXPECT_GT(sys.achievedGops(), 0.0);
}

TEST(System, PesStayInTheirLocalVaultByDefault)
{
    // The vault-high mapping keeps a PE's vault-base-relative
    // addresses inside its own vault (Sec. III-C).
    SystemConfig cfg = makeSystemConfig(32, 4);
    VipSystem sys(cfg);
    for (unsigned pe = 0; pe < 128; pe += 17) {
        const unsigned vault = sys.vaultOf(pe);
        const Addr local = sys.vaultBase(vault) + 12345;
        EXPECT_EQ(sys.hmc().homeVault(local), vault);
    }
}

} // namespace
} // namespace vip
